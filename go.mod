module vtmig

go 1.24
