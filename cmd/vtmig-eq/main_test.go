package main

import "testing"

func TestRunDefault(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunUniformVMUs(t *testing.T) {
	if err := run([]string{"-n", "6", "-alpha", "5"}); err != nil {
		t.Fatalf("run -n 6: %v", err)
	}
}

func TestRunCustomSizes(t *testing.T) {
	if err := run([]string{"-dmb", "150, 250,100", "-cost", "7", "-bmax", "0"}); err != nil {
		t.Fatalf("run custom: %v", err)
	}
}

func TestRunBadDmb(t *testing.T) {
	if err := run([]string{"-dmb", "abc"}); err == nil {
		t.Fatal("bad -dmb accepted")
	}
}

func TestRunBadGame(t *testing.T) {
	if err := run([]string{"-cost", "60"}); err == nil {
		t.Fatal("pmax below cost accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
