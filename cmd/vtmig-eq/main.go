// Command vtmig-eq solves the AoTM-based Stackelberg game in closed form
// and prints the full equilibrium report: the MSP's optimal price, every
// VMU's bandwidth demand, utilities, AoTMs, and a Definition-1
// verification.
//
// Usage:
//
//	vtmig-eq [-n 2] [-alpha 5] [-dmb 200,100] [-cost 5] [-pmax 50] [-bmax 0.5]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"vtmig/internal/aotm"
	"vtmig/internal/channel"
	"vtmig/internal/stackelberg"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vtmig-eq:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vtmig-eq", flag.ContinueOnError)
	var (
		n     = fs.Int("n", 0, "number of identical VMUs (overrides -dmb when > 0)")
		alpha = fs.Float64("alpha", 5, "immersion coefficient α per VMU")
		dmb   = fs.String("dmb", "200,100", "comma-separated VT data sizes in MB")
		cost  = fs.Float64("cost", 5, "unit transmission cost C")
		pmax  = fs.Float64("pmax", 50, "maximum bandwidth price")
		bmax  = fs.Float64("bmax", 0.5, "MSP bandwidth pool in MHz (0 = unconstrained)")
		dist  = fs.Float64("dist", 500, "RSU-to-RSU distance in meters")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var vmus []stackelberg.VMU
	if *n > 0 {
		for i := 0; i < *n; i++ {
			vmus = append(vmus, stackelberg.VMU{ID: i, Alpha: *alpha, DataSize: aotm.FromMB(100)})
		}
	} else {
		for i, part := range strings.Split(*dmb, ",") {
			mb, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return fmt.Errorf("parsing -dmb entry %q: %w", part, err)
			}
			vmus = append(vmus, stackelberg.VMU{ID: i, Alpha: *alpha, DataSize: aotm.FromMB(mb)})
		}
	}
	ch := channel.DefaultParams()
	ch.DistanceM = *dist
	game, err := stackelberg.NewGame(vmus, ch, *cost, *pmax, *bmax)
	if err != nil {
		return err
	}

	// The scratch-backed solve is the allocation-free entry point; the
	// report aliases scratch, which stays live for the whole printout.
	var scratch stackelberg.EvalScratch
	eq := game.SolveInto(&scratch)
	fmt.Printf("Spectral efficiency e = log2(1+SNR) = %.4f bit/s/Hz\n", game.SpectralEfficiency())
	fmt.Printf("Unconstrained closed-form price  p* = %.4f\n", game.UnconstrainedOptimalPrice())
	fmt.Printf("Equilibrium price                p* = %.4f (capacity bound: %v)\n", eq.Price, eq.CapacityBound)
	fmt.Printf("MSP utility                     U_s = %.4f\n", eq.MSPUtility)
	fmt.Printf("Total bandwidth                  Σb = %.4f MHz (%.1f ×10kHz)\n",
		eq.TotalBandwidth, eq.TotalBandwidth*100)
	ages := game.AoTMs(eq.Demands)
	for i := range game.VMUs {
		fmt.Printf("  VMU %d: b* = %.4f MHz  U = %.4f  AoTM = %.4f s\n",
			i, eq.Demands[i], eq.VMUUtilities[i], ages[i])
	}

	res := game.VerifyEquilibrium(eq, 400, 1e-6)
	if res.OK {
		fmt.Println("Definition 1 verification: OK (no profitable unilateral deviation)")
	} else {
		fmt.Printf("Definition 1 verification: FAILED (%d violations, leader gain %.3g, follower gain %.3g)\n",
			len(res.Violations), res.MaxLeaderGain, res.MaxFollowerGain)
	}
	return nil
}
