// Command vtmig-experiments regenerates every figure of the paper's
// evaluation section and the reproduction's ablations.
//
// Usage:
//
//	vtmig-experiments -fig all                 # fig2a fig2b fig3a fig3b fig3c fig3d
//	vtmig-experiments -fig 3a -episodes 500    # one panel, full training
//	vtmig-experiments -ablation history        # L ∈ {1,2,4,8}
//	vtmig-experiments -ablation reward         # binary vs shaped
//	vtmig-experiments -ablation solver         # closed form vs IBR
//	vtmig-experiments -ablation multimsp       # monopoly vs competition
//	vtmig-experiments -nonstationary           # frozen vs online under workload drift
//	vtmig-experiments -nonstationary -static-scenario a.json -ns-scenario b.toml
//	vtmig-experiments -fig all -csv out/       # also write CSV files
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"vtmig/internal/experiments"
	"vtmig/internal/scenario"
	"vtmig/internal/stackelberg"
)

func main() {
	// The first interrupt cancels the experiment context — trainings stop
	// at the next episode boundary instead of being killed mid-figure —
	// and stop() restores default handling so a second interrupt kills
	// the process outright. The solver and multi-MSP ablations are
	// training-free and fast enough not to need cancellation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vtmig-experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("vtmig-experiments", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "", "figure to regenerate: 2a, 2b, 3a, 3b, 3c, 3d, or all")
		ablation = fs.String("ablation", "", "ablation to run: history, reward, solver, multimsp, baselines, or seeds")
		episodes = fs.Int("episodes", 300, "DRL training episodes per sweep point")
		seed     = fs.Int64("seed", 1, "random seed")
		csvDir   = fs.String("csv", "", "also write each table as CSV into this directory")
		nonstat  = fs.Bool("nonstationary", false, "run the frozen-vs-online study under workload drift (2×2 scenario × pricer)")
		statFile = fs.String("static-scenario", "", "stationary scenario file for -nonstationary (default: in-code static highway)")
		nsFile   = fs.String("ns-scenario", "", "drifting scenario file for -nonstationary (default: in-code grid+churn+outages+demand)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fig == "" && *ablation == "" && !*nonstat {
		return fmt.Errorf("nothing to do: pass -fig, -ablation, or -nonstationary (try -fig all)")
	}

	cfg := experiments.DefaultDRLConfig()
	cfg.Episodes = *episodes
	cfg.Seed = *seed

	var tables []*experiments.Table
	emit := func(ts ...*experiments.Table) {
		for _, t := range ts {
			fmt.Println(t.String())
			tables = append(tables, t)
		}
	}

	if *fig != "" {
		want := strings.ToLower(*fig)
		wants := func(name string) bool { return want == "all" || want == name }

		if wants("2a") || wants("2b") {
			res, err := experiments.RunFig2Ctx(ctx, stackelberg.DefaultGame(), cfg)
			if err != nil {
				return err
			}
			ts := res.Tables()
			if wants("2a") {
				emit(ts[0])
			}
			if wants("2b") {
				emit(ts[1])
			}
			fmt.Printf("fig2 summary: final return %.1f/%d, learned price %.3f (eq %.3f)\n\n",
				res.Return.Tail(10), cfg.Rounds, res.Train.EvalPrice, res.Train.OracleOutcome.Price)
		}
		if wants("3a") || wants("3b") {
			res, err := experiments.RunCostSweepCtx(ctx, []float64{5, 6, 7, 8, 9}, cfg)
			if err != nil {
				return err
			}
			if wants("3a") {
				emit(res.Fig3a)
			}
			if wants("3b") {
				emit(res.Fig3b)
			}
		}
		if wants("3c") || wants("3d") {
			res, err := experiments.RunVMUSweepCtx(ctx, []int{1, 2, 3, 4, 5, 6}, cfg)
			if err != nil {
				return err
			}
			if wants("3c") {
				emit(res.Fig3c)
			}
			if wants("3d") {
				emit(res.Fig3d)
			}
		}
		if len(tables) == 0 {
			return fmt.Errorf("unknown figure %q (want 2a, 2b, 3a, 3b, 3c, 3d, or all)", *fig)
		}
	}

	switch *ablation {
	case "":
	case "history":
		t, err := experiments.RunHistoryAblationCtx(ctx, []int{1, 2, 4, 8}, cfg)
		if err != nil {
			return err
		}
		emit(t)
	case "reward":
		t, err := experiments.RunRewardAblationCtx(ctx, cfg)
		if err != nil {
			return err
		}
		emit(t)
	case "solver":
		emit(experiments.RunSolverAblation())
	case "multimsp":
		t, err := experiments.RunMultiMSPAblation([]int{1, 2, 3})
		if err != nil {
			return err
		}
		emit(t)
	case "seeds":
		study, err := experiments.RunSeedStudyCtx(ctx, stackelberg.DefaultGame(), cfg, 8)
		if err != nil {
			return err
		}
		emit(study.Table())
		fmt.Println("metric rows: 0 = price, 1 = MSP utility, 2 = regret (%)")
	case "baselines":
		t, err := experiments.RunBaselineComparisonCtx(ctx, stackelberg.DefaultGame(), cfg, 10)
		if err != nil {
			return err
		}
		emit(t)
		fmt.Println("scheme rows (in order):", strings.Join(experiments.BaselineSchemes, ", "))
	default:
		return fmt.Errorf("unknown ablation %q (want history, reward, solver, multimsp, baselines, or seeds)", *ablation)
	}

	if *nonstat {
		scfg := experiments.NonstationaryStudyConfig{DRL: cfg}
		if *statFile != "" {
			s, err := scenario.Load(*statFile)
			if err != nil {
				return err
			}
			scfg.Static = s
		}
		if *nsFile != "" {
			s, err := scenario.Load(*nsFile)
			if err != nil {
				return err
			}
			scfg.NonStationary = s
		}
		study, err := experiments.RunNonstationaryStudyCtx(ctx, scfg)
		if err != nil {
			return err
		}
		emit(study.Table())
		fmt.Println("cell rows (in order): static/frozen-drl, static/online-warm, nonstationary/frozen-drl, nonstationary/online-warm")
		fmt.Printf("online margin: static %+.4f, nonstationary %+.4f, gain under drift %+.4f\n",
			study.StaticMargin, study.NonstationaryMargin, study.MarginGain)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("creating csv dir: %w", err)
		}
		for _, t := range tables {
			name := sanitize(t.Title) + ".csv"
			f, err := os.Create(filepath.Join(*csvDir, name))
			if err != nil {
				return fmt.Errorf("creating %s: %w", name, err)
			}
			if err := t.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("closing %s: %w", name, err)
			}
			fmt.Printf("wrote %s\n", filepath.Join(*csvDir, name))
		}
	}
	return nil
}

// sanitize converts a table title into a file-name stem.
func sanitize(title string) string {
	stem := title
	if i := strings.IndexByte(stem, ':'); i >= 0 {
		stem = stem[:i]
	}
	stem = strings.TrimSpace(stem)
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '_'
		}
	}, stem)
}
