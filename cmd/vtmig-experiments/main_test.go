package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func TestRunNothingToDo(t *testing.T) {
	if err := run(context.Background(), nil); err == nil {
		t.Fatal("no -fig/-ablation accepted")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run(context.Background(), []string{"-fig", "7z", "-episodes", "2"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunUnknownAblation(t *testing.T) {
	if err := run(context.Background(), []string{"-ablation", "nonsense"}); err == nil {
		t.Fatal("unknown ablation accepted")
	}
}

func TestRunSolverAblation(t *testing.T) {
	if err := run(context.Background(), []string{"-ablation", "solver"}); err != nil {
		t.Fatalf("run solver: %v", err)
	}
}

func TestRunFig2aTinyWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), []string{"-fig", "2a", "-episodes", "3", "-csv", dir}); err != nil {
		t.Fatalf("run fig 2a: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no CSV written (err=%v)", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil || len(data) == 0 {
		t.Fatalf("empty CSV (err=%v)", err)
	}
}

func TestRunFig3cTiny(t *testing.T) {
	if err := run(context.Background(), []string{"-fig", "3c", "-episodes", "2"}); err != nil {
		t.Fatalf("run fig 3c: %v", err)
	}
}

func TestSanitize(t *testing.T) {
	tests := []struct{ in, want string }{
		{"fig3a: MSP utility & price vs transmission cost", "fig3a"},
		{"ablation: binary (Eq. 12) vs shaped reward", "ablation"},
		{"Already-Clean_Name", "already-clean_name"},
	}
	for _, tt := range tests {
		if got := sanitize(tt.in); got != tt.want {
			t.Errorf("sanitize(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestRunMultiMSPAblationCLI(t *testing.T) {
	if err := run(context.Background(), []string{"-ablation", "multimsp"}); err != nil {
		t.Fatalf("run multimsp: %v", err)
	}
}
