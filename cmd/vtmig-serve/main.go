// Command vtmig-serve runs the journaled online-pricing daemon: an HTTP
// server answering price-quote requests from the online continual-learning
// pricer, with audit-grade durability in a state directory. Every
// accepted quote is journaled before it is applied, full resume
// checkpoints rotate at optimization-phase boundaries, and restarting the
// daemon over the same directory — cleanly or after a crash — rebuilds the
// exact serving state by checkpoint restore + journal replay (same
// quotes, same learner weights, bit for bit).
//
// The learner hyper-parameters (-lr and the fixed PPO defaults) and the
// reference game are pinned into the state: restarting with different
// ones fails loudly instead of silently continuing a different learner.
//
// With -replica-of the daemon instead serves quote-only read traffic
// from another daemon's state directory: it freezes the latest rotated
// checkpoint, answers each quote with exactly the price the primary
// posts for its first round after that snapshot (contract rule 8), and
// re-freezes on the -refresh cadence as the primary rotates. Replicas
// never write to the state directory.
//
// Usage:
//
//	vtmig-serve -dir state/ [-addr :8080] [-update-every 20]
//	            [-snapshot-every 1] [-keep 2] [-history 4] [-seed 1]
//	            [-lr 3e-4] [-warm-start-file ck.bin] [-batch-max 16]
//	vtmig-serve -replica-of state/ [-addr :8081] [-refresh 2s]
//
// API:
//
//	POST /v1/quote  {"vmus":[{"id":0,"alpha":5,"data_mb":200}],
//	                 "distance_m":500,"available_mhz":0.5}
//	GET  /v1/stats
//	GET  /healthz
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vtmig/internal/experiments"
	"vtmig/internal/rl"
	"vtmig/internal/serve"
	"vtmig/internal/stackelberg"
)

func main() {
	if err := run(os.Args[1:], nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "vtmig-serve:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until SIGINT/SIGTERM (or stop closes),
// then shuts down gracefully: in-flight quotes finish, the journal
// closes, and the state directory is left ready for the next start. When
// ready is non-nil it receives the bound listen address once the server
// accepts connections (tests listen on :0 through it).
func run(args []string, ready chan<- string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("vtmig-serve", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "HTTP listen address")
		dir       = fs.String("dir", "", "durable state directory (journal + rotated checkpoints); required unless -replica-of")
		updEvery  = fs.Int("update-every", 20, "online optimization cadence in quoted rounds")
		snapEvery = fs.Int("snapshot-every", 1, "checkpoint-rotation cadence in optimization phases")
		keep      = fs.Int("keep", 2, "rotated checkpoints to retain besides the bound one")
		history   = fs.Int("history", 0, "observation history length L (0: the paper's 4, or the warm-start checkpoint's)")
		seed      = fs.Int64("seed", 1, "seed for the cold-start learner and initial history")
		lr        = fs.Float64("lr", experiments.DefaultDRLConfig().PPO.LR, "Adam learning rate (keep it identical across restarts of one state dir)")
		warmFile  = fs.String("warm-start-file", "", "warm-start a FRESH state dir from a vtmig-train checkpoint (ignored rule: resuming an existing dir must not pass this)")
		batchMax  = fs.Int("batch-max", 0, "max quotes coalesced per intake batch (0: the serving default, 1: disable batching); a pure throughput knob — any value is bit-identical")
		replicaOf = fs.String("replica-of", "", "serve quote-only reads from this primary state dir's rotated checkpoints instead of running a primary")
		refresh   = fs.Duration("refresh", 2*time.Second, "replica re-freeze cadence (0: freeze once at start, never refresh)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	explicit := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	game := stackelberg.DefaultGame()
	ppo := experiments.DefaultDRLConfig().PPO
	ppo.LR = *lr

	var (
		handler http.Handler
		closeFn func() error
	)
	if *replicaOf != "" {
		if *dir != "" {
			return fmt.Errorf("-dir and -replica-of are mutually exclusive: a replica never writes to the state directory")
		}
		if *warmFile != "" {
			return fmt.Errorf("-warm-start-file makes no sense for a replica: it freezes the primary's rotated checkpoints")
		}
		r, err := serve.OpenReplica(serve.ReplicaConfig{
			Dir:        *replicaOf,
			Game:       game,
			HistoryLen: *history,
			PPO:        ppo,
			Refresh:    *refresh,
		})
		if err != nil {
			return err
		}
		rst := r.Stats()
		fmt.Printf("vtmig-serve: replica of %s: frozen at snapshot %d (%d rounds, %d updates), refresh every %s\n",
			*replicaOf, rst.Snapshots, rst.Rounds, rst.Updates, *refresh)
		handler, closeFn = r.Handler(), r.Close
	} else {
		if *dir == "" {
			return fmt.Errorf("-dir is required")
		}
		cfg := serve.Config{
			Dir:             *dir,
			Game:            game,
			HistoryLen:      *history,
			UpdateEvery:     *updEvery,
			Seed:            *seed,
			PPO:             ppo,
			SnapshotEvery:   *snapEvery,
			KeepCheckpoints: *keep,
			BatchMax:        *batchMax,
		}
		if *warmFile != "" {
			agent, historyLen, err := warmStartAgent(*warmFile, game, ppo, *history, explicit["lr"], *lr)
			if err != nil {
				return err
			}
			cfg.Agent = agent
			cfg.HistoryLen = historyLen
		}
		s, err := serve.Open(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("vtmig-serve: state dir %s: %d rounds, %d updates, %d snapshots (replayed %d journaled rounds)\n",
			*dir, s.Stats().Rounds, s.Stats().Updates, s.Stats().Snapshots, s.Stats().ReplayedRounds)
		handler, closeFn = s.Handler(), s.Close
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		closeFn()
		return err
	}
	srv := serve.NewHTTPServer(*addr, handler)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Printf("vtmig-serve: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case <-sig:
	case <-stop:
	case err := <-serveErr:
		closeFn()
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "vtmig-serve: HTTP shutdown: %v\n", err)
	}
	if err := closeFn(); err != nil {
		return fmt.Errorf("closing server state: %w", err)
	}
	if *replicaOf != "" {
		fmt.Println("vtmig-serve: replica shut down cleanly")
	} else {
		fmt.Printf("vtmig-serve: shut down cleanly; %s resumes from checkpoint + journal\n", *dir)
	}
	return nil
}

// warmStartAgent loads a vtmig-train checkpoint for a fresh state
// directory through the shared adopt-or-match resolver (the same
// convention as vtmig-sim -warm-start-file: a full checkpoint's history
// length and learning rate are adopted, explicit conflicting flags fail).
func warmStartAgent(path string, game *stackelberg.Game, ppo rl.PPOConfig, history int, lrExplicit bool, lrFlag float64) (*rl.PPO, int, error) {
	lr := 0.0 // unset: adopt the checkpoint's (or keep ppo.LR)
	if lrExplicit {
		lr = lrFlag
	}
	res, err := experiments.ResolveWarmStart(path, game, ppo, history, lr)
	if err != nil {
		return nil, 0, err
	}
	if res.Checkpoint.Pricer != nil {
		return nil, 0, fmt.Errorf("%s is a mid-run pricer checkpoint; vtmig-serve resumes serving state from its own -dir, not from pricer checkpoints", path)
	}
	agent, _, err := experiments.WarmStartAgent(game, res.HistoryLen, res.PPO, res.Checkpoint)
	if err != nil {
		return nil, 0, err
	}
	return agent, res.HistoryLen, nil
}
