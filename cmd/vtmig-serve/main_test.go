package main

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"vtmig/internal/serve"
)

// startDaemon runs the command against dir on an ephemeral port and
// returns the base URL plus a shutdown func that blocks until run
// returns.
func startDaemon(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	ready := make(chan string, 1)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() { errc <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), ready, stop) }()
	select {
	case addr := <-ready:
		return "http://" + addr, func() error {
			close(stop)
			return <-errc
		}
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v", err)
		return "", nil
	}
}

func postQuote(t *testing.T, base, body string) serve.QuoteResponse {
	t.Helper()
	resp, err := http.Post(base+"/v1/quote", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quote status %d", resp.StatusCode)
	}
	var q serve.QuoteResponse
	if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
		t.Fatal(err)
	}
	return q
}

func TestServeDaemonQuoteRestartResume(t *testing.T) {
	dir := t.TempDir()
	base, shutdown := startDaemon(t, "-dir", dir, "-update-every", "3", "-seed", "11")

	const round = `{"vmus":[{"id":0,"alpha":6,"data_mb":180},{"id":1,"alpha":14,"data_mb":120}],"distance_m":450}`
	var prices []float64
	for i := 0; i < 5; i++ {
		q := postQuote(t, base, round)
		if q.Round != i+1 {
			t.Fatalf("round %d, want %d", q.Round, i+1)
		}
		prices = append(prices, q.Price)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Restart over the same state dir: counters continue, the next quote
	// matches what an uninterrupted daemon would have answered.
	base2, shutdown2 := startDaemon(t, "-dir", dir, "-update-every", "3", "-seed", "11")
	resp, err := http.Get(base2 + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Rounds != 5 || st.Updates != 1 {
		t.Fatalf("restarted stats %+v, want rounds=5 updates=1", st)
	}
	q := postQuote(t, base2, round)
	if q.Round != 6 {
		t.Fatalf("post-restart round %d, want 6", q.Round)
	}
	if err := shutdown2(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}

	// Reference: the same six rounds on one uninterrupted daemon.
	base3, shutdown3 := startDaemon(t, "-dir", t.TempDir(), "-update-every", "3", "-seed", "11")
	for i := 0; i < 5; i++ {
		if got := postQuote(t, base3, round); got.Price != prices[i] {
			t.Fatalf("reference price %d = %v, daemon answered %v", i, got.Price, prices[i])
		}
	}
	if got := postQuote(t, base3, round); got.Price != q.Price {
		t.Fatalf("restarted daemon's 6th quote %v, uninterrupted %v", q.Price, got.Price)
	}
	if err := shutdown3(); err != nil {
		t.Fatalf("third shutdown: %v", err)
	}
}

func TestServeDaemonRequiresDir(t *testing.T) {
	if err := run(nil, nil, nil); err == nil || !strings.Contains(err.Error(), "-dir") {
		t.Fatalf("run without -dir: %v", err)
	}
}

// TestServeDaemonReplica runs a primary and a -replica-of daemon over one
// state directory and pins the serving contract end to end: the replica
// answers with exactly the price the primary posts for its first round
// after the shared snapshot, and its /v1/stats carries the replica shape.
func TestServeDaemonReplica(t *testing.T) {
	dir := t.TempDir()
	base, shutdown := startDaemon(t, "-dir", dir, "-update-every", "2", "-seed", "7", "-batch-max", "4")

	const round = `{"vmus":[{"id":0,"alpha":6,"data_mb":180},{"id":1,"alpha":14,"data_mb":120}],"distance_m":450}`
	// Four quotes with UpdateEvery=2, SnapshotEvery=1 → rotations at
	// rounds 2 and 4; the latest checkpoint freezes the round-4 state.
	for i := 0; i < 4; i++ {
		postQuote(t, base, round)
	}

	rbase, rshutdown := startDaemon(t, "-replica-of", dir, "-refresh", "0")
	resp, err := http.Get(rbase + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var rst serve.ReplicaStats
	if err := json.NewDecoder(resp.Body).Decode(&rst); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !rst.Replica || rst.Rounds != 4 || rst.Snapshots != 2 {
		t.Fatalf("replica daemon stats %+v, want replica at snapshot 2 / 4 rounds", rst)
	}

	fromReplica := postQuote(t, rbase, round)
	fromPrimary := postQuote(t, base, round) // primary's round 5: first after the snapshot
	if fromReplica.Price != fromPrimary.Price {
		t.Fatalf("replica daemon price %v, primary %v", fromReplica.Price, fromPrimary.Price)
	}
	if fromReplica.Round != 4 {
		t.Fatalf("replica reports round %d, want the frozen 4", fromReplica.Round)
	}

	if err := rshutdown(); err != nil {
		t.Fatalf("replica shutdown: %v", err)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("primary shutdown: %v", err)
	}
}

// TestServeDaemonReplicaFlagExclusion pins the flag surface: a replica
// must not be pointed at its own -dir or warm-started.
func TestServeDaemonReplicaFlagExclusion(t *testing.T) {
	err := run([]string{"-dir", t.TempDir(), "-replica-of", t.TempDir()}, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("run with -dir and -replica-of: %v", err)
	}
	err = run([]string{"-replica-of", t.TempDir(), "-warm-start-file", "ck.bin"}, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "warm-start") {
		t.Fatalf("run with -replica-of and -warm-start-file: %v", err)
	}
}

func TestServeDaemonRefusesChangedLR(t *testing.T) {
	dir := t.TempDir()
	base, shutdown := startDaemon(t, "-dir", dir, "-update-every", "2")
	// Roll past a rotation so the restart resumes from a checkpoint whose
	// fingerprint pins the learning rate.
	for i := 0; i < 2; i++ {
		postQuote(t, base, `{"vmus":[{"id":0,"alpha":6,"data_mb":180}]}`)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	err := run([]string{"-addr", "127.0.0.1:0", "-dir", dir, "-update-every", "2", "-lr", "0.009"}, nil, nil)
	if err == nil {
		t.Fatalf("restart with a different -lr succeeded; the checkpoint fingerprint should refuse it")
	}
}
