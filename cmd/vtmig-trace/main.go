// Command vtmig-trace summarizes a simulation trace produced with
// vtmig-sim -trace (or sim.Config.TraceWriter): event counts, time range,
// mean posted price, and an optional per-vehicle migration breakdown.
//
// Usage:
//
//	vtmig-sim -duration 600 -trace run.jsonl
//	vtmig-trace -in run.jsonl [-vehicles]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"vtmig/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vtmig-trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vtmig-trace", flag.ContinueOnError)
	var (
		in       = fs.String("in", "", "trace file (JSON lines); required")
		vehicles = fs.Bool("vehicles", false, "print a per-vehicle migration breakdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -in trace file")
	}
	f, err := os.Open(*in)
	if err != nil {
		return fmt.Errorf("opening trace: %w", err)
	}
	defer f.Close()

	events, err := trace.Read(f)
	if err != nil {
		return err
	}
	sum := trace.Summarize(events)

	fmt.Printf("events           %d over [%.1f s, %.1f s]\n", len(events), sum.FirstS, sum.LastS)
	kinds := make([]string, 0, len(sum.Counts))
	for k := range sum.Counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  %-20s %d\n", k, sum.Counts[trace.Kind(k)])
	}
	if sum.MeanRoundPrice > 0 {
		fmt.Printf("mean round price %.3f\n", sum.MeanRoundPrice)
	}

	if *vehicles {
		type agg struct {
			migrations int
			aotmSum    float64
		}
		perVehicle := make(map[int]*agg)
		for _, e := range events {
			if e.Kind != trace.KindMigrationComplete {
				continue
			}
			a := perVehicle[e.Vehicle]
			if a == nil {
				a = &agg{}
				perVehicle[e.Vehicle] = a
			}
			a.migrations++
			a.aotmSum += e.AoTM
		}
		ids := make([]int, 0, len(perVehicle))
		for id := range perVehicle {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		fmt.Println("\nvehicle  migrations  mean_AoTM(s)")
		for _, id := range ids {
			a := perVehicle[id]
			fmt.Printf("%7d  %10d  %12.3f\n", id, a.migrations, a.aotmSum/float64(a.migrations))
		}
	}
	return nil
}
