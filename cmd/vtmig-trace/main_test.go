package main

import (
	"os"
	"path/filepath"
	"testing"

	"vtmig/internal/sim"
)

// writeTrace runs a short simulation with tracing into a temp file.
func writeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cfg := sim.DefaultConfig()
	cfg.DurationS = 200
	cfg.TraceWriter = f
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	return path
}

func TestRunSummarizesTrace(t *testing.T) {
	path := writeTrace(t)
	if err := run([]string{"-in", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-in", path, "-vehicles"}); err != nil {
		t.Fatalf("run -vehicles: %v", err)
	}
}

func TestRunMissingInput(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent/file.jsonl"}); err == nil {
		t.Fatal("nonexistent file accepted")
	}
}

func TestRunGarbageTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path}); err == nil {
		t.Fatal("garbage trace accepted")
	}
}
