package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunTinyTraining(t *testing.T) {
	if err := run([]string{"-episodes", "3", "-rounds", "20"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunShapedReward(t *testing.T) {
	if err := run([]string{"-episodes", "3", "-rounds", "20", "-reward", "shaped"}); err != nil {
		t.Fatalf("run shaped: %v", err)
	}
}

func TestRunVectorizedCollection(t *testing.T) {
	if err := run([]string{"-episodes", "4", "-rounds", "20", "-collect-envs", "2", "-collect-workers", "3"}); err != nil {
		t.Fatalf("run vectorized: %v", err)
	}
}

func TestRunBadCollectFlags(t *testing.T) {
	if err := run([]string{"-collect-envs", "0"}); err == nil {
		t.Fatal("collect-envs=0 accepted")
	}
	if err := run([]string{"-collect-workers", "-1"}); err == nil {
		t.Fatal("collect-workers=-1 accepted")
	}
}

func TestRunUnknownReward(t *testing.T) {
	if err := run([]string{"-reward", "nonsense"}); err == nil {
		t.Fatal("unknown reward accepted")
	}
}

func TestRunCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := run([]string{"-episodes", "2", "-rounds", "10", "-checkpoint", path}); err != nil {
		t.Fatalf("run with checkpoint: %v", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	if info.Size() == 0 {
		t.Error("checkpoint is empty")
	}
}

func TestRunCheckpointBadPath(t *testing.T) {
	if err := run([]string{"-episodes", "2", "-rounds", "10", "-checkpoint", "/nonexistent-dir/x.json"}); err == nil {
		t.Fatal("unwritable checkpoint path accepted")
	}
}

func TestRunResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := run([]string{"-episodes", "2", "-rounds", "10", "-checkpoint", path}); err != nil {
		t.Fatalf("run with checkpoint: %v", err)
	}
	if err := run([]string{"-episodes", "4", "-rounds", "10", "-resume", path}); err != nil {
		t.Fatalf("resume: %v", err)
	}
}

func TestRunResumeRejectsMismatchedFlags(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := run([]string{"-episodes", "2", "-rounds", "10", "-checkpoint", path}); err != nil {
		t.Fatalf("run with checkpoint: %v", err)
	}
	if err := run([]string{"-episodes", "4", "-rounds", "15", "-resume", path}); err == nil {
		t.Fatal("resume with mismatched -rounds accepted")
	}
	if err := run([]string{"-episodes", "2", "-rounds", "10", "-resume", path}); err == nil {
		t.Fatal("resume with no episodes left accepted")
	}
	if err := run([]string{"-episodes", "4", "-resume", filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Fatal("resume from missing file accepted")
	}
}

func TestRunBinaryCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.bin")
	if err := run([]string{"-episodes", "2", "-rounds", "10", "-checkpoint", path}); err != nil {
		t.Fatalf("run with binary checkpoint: %v", err)
	}
	// The file must actually be the binary encoding, not JSON.
	head := make([]byte, 4)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(head); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if string(head) != "vtck" {
		t.Fatalf("checkpoint head %q, want the binary magic", head)
	}
	if err := run([]string{"-episodes", "4", "-rounds", "10", "-resume", path}); err != nil {
		t.Fatalf("resume from binary checkpoint: %v", err)
	}
}
