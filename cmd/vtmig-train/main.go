// Command vtmig-train trains the MSP's DRL pricing agent (Algorithm 1) on
// the paper's two-VMU benchmark under incomplete information, prints the
// learning curve, and compares the learned policy against the closed-form
// Stackelberg equilibrium and the baseline schemes.
//
// Usage:
//
//	vtmig-train [-episodes 500] [-rounds 100] [-history 4] [-lr 3e-4]
//	            [-reward binary|shaped] [-seed 1] [-checkpoint out.json]
//	            [-resume ck.json] [-collect-envs 1] [-collect-workers 0]
//
// -collect-envs W ≥ 2 enables vectorized collection: episodes run in
// lockstep blocks of W independently seeded environments with the policy
// evaluated for all of them in one batched pass per round.
// -collect-workers sets the environment-stepping goroutine count
// (0 = automatic); any worker count produces bit-identical results.
//
// -checkpoint writes a FULL training checkpoint — weights, Adam state,
// RNG stream positions, environment streams, episode count — and -resume
// continues training from one: with -resume ck.json and -episodes E, the
// run picks the stream up at the checkpointed episode and trains to E
// total, bit-identical to a run that never stopped (the training flags
// must match the checkpointed configuration; -seed is taken from the
// checkpoint, and -restarts does not apply since a checkpoint pins one
// training stream).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vtmig/internal/baselines"
	"vtmig/internal/experiments"
	"vtmig/internal/nn"
	"vtmig/internal/pomdp"
	"vtmig/internal/stackelberg"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vtmig-train:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vtmig-train", flag.ContinueOnError)
	var (
		episodes   = fs.Int("episodes", 500, "training episodes E")
		rounds     = fs.Int("rounds", 100, "game rounds per episode K")
		history    = fs.Int("history", 4, "observation history length L")
		lr         = fs.Float64("lr", 3e-4, "Adam learning rate")
		reward     = fs.String("reward", "binary", "reward signal: binary (Eq. 12) or shaped")
		seed       = fs.Int64("seed", 1, "random seed (ignored under -resume: the checkpoint pins the stream seed)")
		checkpoint = fs.String("checkpoint", "", "write the full training checkpoint (weights, optimizer, RNG, env streams) to this file — compact binary when the name ends in .bin, JSON otherwise")
		resume     = fs.String("resume", "", "resume training from this full checkpoint (either encoding; -episodes is the TOTAL episode budget)")

		collectEnvs    = fs.Int("collect-envs", 1, "parallel training environments for vectorized collection (≥2 enables lockstep episode blocks)")
		collectWorkers = fs.Int("collect-workers", 0, "environment-stepping goroutines during collection; 0 = auto, any value is bit-identical")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.DefaultDRLConfig()
	cfg.Episodes = *episodes
	cfg.Rounds = *rounds
	cfg.HistoryLen = *history
	cfg.PPO.LR = *lr
	cfg.Seed = *seed
	if *collectEnvs < 1 {
		return fmt.Errorf("collect-envs must be at least 1, got %d", *collectEnvs)
	}
	if *collectWorkers < 0 {
		return fmt.Errorf("collect-workers must be non-negative, got %d", *collectWorkers)
	}
	cfg.CollectEnvs = *collectEnvs
	cfg.CollectWorkers = *collectWorkers
	switch *reward {
	case "binary":
		cfg.Reward = pomdp.RewardBinary
	case "shaped":
		cfg.Reward = pomdp.RewardShaped
	default:
		return fmt.Errorf("unknown reward %q (want binary or shaped)", *reward)
	}

	game := stackelberg.DefaultGame()
	fmt.Printf("Training PPO agent: E=%d K=%d L=%d |I|=%d M=%d lr=%g reward=%s\n",
		cfg.Episodes, cfg.Rounds, cfg.HistoryLen, cfg.UpdateEvery, cfg.PPO.Epochs, cfg.PPO.LR, *reward)
	if cfg.CollectEnvs > 1 {
		fmt.Printf("Vectorized collection: %d envs per episode block, collect-workers=%d (0 = auto)\n",
			cfg.CollectEnvs, cfg.CollectWorkers)
	}
	var res *experiments.TrainResult
	var err error
	if *resume != "" {
		ck, err2 := loadCheckpointFile(*resume)
		if err2 != nil {
			return err2
		}
		if ck.Meta == nil {
			return fmt.Errorf("%s is not a full training checkpoint", *resume)
		}
		fmt.Printf("Resuming from %s at episode %d\n", *resume, ck.Meta.Episodes)
		res, err = experiments.ResumeAgent(game, cfg, ck)
	} else {
		res, err = experiments.TrainAgent(game, cfg)
	}
	if err != nil {
		return err
	}
	if len(res.Episodes) == 0 {
		return fmt.Errorf("no episodes left to train (checkpoint already at the requested budget)")
	}

	// Print the learning curve at one-tenth resolution.
	stride := len(res.Episodes) / 10
	if stride == 0 {
		stride = 1
	}
	fmt.Println("\nepisode  return")
	for i := 0; i < len(res.Episodes); i += stride {
		fmt.Printf("%7d  %6.1f\n", res.Episodes[i].Episode, res.Episodes[i].Return)
	}
	last := res.Episodes[len(res.Episodes)-1]
	fmt.Printf("%7d  %6.1f (final)\n", last.Episode, last.Return)

	eq := res.OracleOutcome
	fmt.Printf("\nLearned price  %.3f   (Stackelberg equilibrium %.3f)\n", res.EvalPrice, eq.Price)
	fmt.Printf("Learned U_s    %.4f  (Stackelberg equilibrium %.4f, regret %.2f%%)\n",
		res.EvalOutcome.MSPUtility, eq.MSPUtility,
		(eq.MSPUtility-res.EvalOutcome.MSPUtility)/eq.MSPUtility*100)

	for _, name := range []string{"greedy", "random"} {
		var p baselines.Policy
		if name == "greedy" {
			p = baselines.NewGreedy(game.Cost, game.PMax, 0.1, *seed)
		} else {
			p = baselines.NewRandom(game.Cost, game.PMax, *seed)
		}
		r := baselines.RunEpisode(game, p, cfg.Rounds)
		fmt.Printf("Baseline %-7s mean U_s %.4f\n", name, r.MeanUtility)
	}

	if *checkpoint != "" {
		f, err := os.Create(*checkpoint)
		if err != nil {
			return fmt.Errorf("creating checkpoint: %w", err)
		}
		defer f.Close()
		save, encoding := res.Checkpoint.Save, "JSON"
		if strings.HasSuffix(*checkpoint, ".bin") {
			save, encoding = res.Checkpoint.SaveBinary, "binary"
		}
		if err := save(f); err != nil {
			return err
		}
		fmt.Printf("Full training checkpoint written to %s (%s, episode %d; resume with -resume)\n",
			*checkpoint, encoding, res.Checkpoint.Meta.Episodes)
	}
	return nil
}

// loadCheckpointFile reads and validates a checkpoint file.
func loadCheckpointFile(path string) (*nn.Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening checkpoint: %w", err)
	}
	defer f.Close()
	ck, err := nn.LoadCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	return ck, nil
}
