// Command vtmig-sim runs the end-to-end vehicular-metaverse simulation:
// vehicles on a circular highway, handover-triggered VT migrations priced
// by the Stackelberg incentive mechanism, pre-copy migration over OFDMA
// bandwidth, and AoTM accounting.
//
// Besides the analytic pricers, the MSP can deploy a DRL pricing agent:
// `-pricer drl` trains one offline on the paper's benchmark game and
// deploys it frozen; `-pricer online` keeps it learning from the live
// pricing rounds (warm-started from the same offline training, or from
// scratch with `-warm-start=false`), running a sharded PPO optimization
// phase every `-update-every` rounds.
//
// Instead of training in-process, `-warm-start-file ck.json` warm-starts
// the online pricer from a checkpoint written by vtmig-train -checkpoint
// (JSON or the compact binary encoding — the loader auto-detects). A
// full checkpoint restores the complete learner state (optimizer moments
// and RNG stream included, so continued learning picks the training
// stream up exactly) and carries its own architecture metadata: the
// history length and learning rate are read from the checkpoint, and
// explicitly passed -history/-lr flags are only checked against it — a
// conflict fails loudly before the simulation starts. A legacy
// weights-only checkpoint has no metadata and keeps using the flags. A
// mid-run pricer checkpoint (written by -snapshot-out) additionally
// restores the belief window, best tracker, and stream counters, so the
// online run resumes exactly where it stopped.
//
// `-snapshot-every N -snapshot-out ck.bin` writes such a resume
// checkpoint after every Nth online optimization phase (binary when the
// name ends in .bin, JSON otherwise).
//
// Usage:
//
//	vtmig-sim [-vehicles 6] [-rsus 8] [-duration 600]
//	          [-pricer oracle|random|fixed|drl|online] [-price 25]
//	          [-train-episodes 30] [-update-every 20] [-warm-start]
//	          [-warm-start-file ck.json] [-history 4] [-lr 3e-4]
//	          [-snapshot-every 0] [-snapshot-out ck.bin]
//	          [-failure 0] [-seed 1] [-verbose]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vtmig/internal/experiments"
	"vtmig/internal/nn"
	"vtmig/internal/rl"
	"vtmig/internal/sim"
	"vtmig/internal/stackelberg"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vtmig-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vtmig-sim", flag.ContinueOnError)
	var (
		vehicles    = fs.Int("vehicles", 6, "number of vehicles (VMUs)")
		rsus        = fs.Int("rsus", 8, "number of RSUs on the highway")
		duration    = fs.Float64("duration", 600, "simulated seconds")
		pricer      = fs.String("pricer", "oracle", "MSP pricing strategy: oracle, random, fixed, drl, or online")
		price       = fs.Float64("price", 25, "price for -pricer fixed")
		episodes    = fs.Int("train-episodes", 30, "offline training episodes for -pricer drl / warm-started online")
		updateEvery = fs.Int("update-every", 20, "online optimization cadence in pricing rounds (-pricer online)")
		warmStart   = fs.Bool("warm-start", true, "warm-start -pricer online from offline training (false: learn from scratch)")
		warmFile    = fs.String("warm-start-file", "", "warm-start -pricer online from this checkpoint file instead of training in-process")
		history     = fs.Int("history", 4, "observation history length L of a legacy weights-only -warm-start-file checkpoint (full checkpoints carry it themselves)")
		lr          = fs.Float64("lr", 3e-4, "Adam learning rate of a legacy weights-only -warm-start-file checkpoint's training (full checkpoints carry it themselves)")
		snapEvery   = fs.Int("snapshot-every", 0, "write a resume checkpoint after every Nth online optimization phase (-pricer online; 0 disables)")
		snapOut     = fs.String("snapshot-out", "", "file the mid-run resume checkpoints go to (binary when the name ends in .bin; required with -snapshot-every)")
		failure     = fs.Float64("failure", 0, "pricing-round failure probability in [0, 1)")
		seed        = fs.Int64("seed", 1, "random seed")
		verbose     = fs.Bool("verbose", false, "print every migration record")
		traceOut    = fs.String("trace", "", "write a JSONL event trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	explicit := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	cfg := sim.DefaultConfig()
	cfg.Vehicles = *vehicles
	cfg.RSUCount = *rsus
	cfg.DurationS = *duration
	cfg.PricingFailureRate = *failure
	cfg.Seed = *seed
	switch *pricer {
	case "oracle":
		cfg.Pricer = sim.NewOraclePricer()
	case "random":
		cfg.Pricer = sim.NewRandomPricer(*seed)
	case "fixed":
		cfg.Pricer = sim.NewFixedPricer(*price)
	case "drl":
		res, err := trainOffline(*episodes, *seed)
		if err != nil {
			return err
		}
		frozen, err := experiments.FrozenPricer(res)
		if err != nil {
			return err
		}
		cfg.Pricer = frozen
	case "online":
		game := stackelberg.DefaultGame()
		onlineCfg := sim.OnlinePricerConfig{
			Game:        game,
			UpdateEvery: *updateEvery,
			Seed:        *seed,
		}
		if *snapEvery > 0 {
			if *snapOut == "" {
				return fmt.Errorf("-snapshot-every %d needs -snapshot-out", *snapEvery)
			}
			out := *snapOut
			onlineCfg.SnapshotEvery = *snapEvery
			onlineCfg.OnSnapshot = func(ck *nn.Checkpoint) {
				if err := writeCheckpointFile(out, ck); err != nil {
					fmt.Fprintf(os.Stderr, "vtmig-sim: writing resume checkpoint: %v\n", err)
				}
			}
		}
		// Reject a broken configuration before spending the offline
		// training budget on it.
		if err := onlineCfg.Validate(); err != nil {
			return err
		}
		var online *sim.OnlinePricer
		switch {
		case *warmFile != "":
			ck, err := loadCheckpointFile(*warmFile)
			if err != nil {
				return err
			}
			full := ck.Opt != nil && ck.RNG != nil
			historyLen, lrEff := *history, *lr
			if full {
				// A full checkpoint carries its own architecture metadata;
				// the flags may only confirm it.
				historyLen, err = experiments.HistoryLenFromCheckpoint(ck, game)
				if err != nil {
					return err
				}
				if explicit["history"] && *history != historyLen {
					return fmt.Errorf("-history %d conflicts with %s, which was trained with history length %d (drop the flag to adopt it)",
						*history, *warmFile, historyLen)
				}
				if ck.Meta != nil {
					if v, ok := rl.LRFromFingerprint(ck.Meta.PPO); ok {
						if explicit["lr"] && *lr != v {
							return fmt.Errorf("-lr %g conflicts with %s, which was trained with learning rate %g (drop the flag to adopt it)",
								*lr, *warmFile, v)
						}
						lrEff = v
					}
				}
			}
			ppo := experiments.DefaultDRLConfig().PPO
			ppo.LR = lrEff
			if ck.Pricer != nil {
				// Mid-run pricer checkpoint: resume the online run exactly
				// (belief window, best tracker, stream counters, learner).
				onlineCfg.PPO = ppo
				onlineCfg.HistoryLen = 0
				if explicit["history"] {
					onlineCfg.HistoryLen = *history
				}
				if !explicit["update-every"] {
					onlineCfg.UpdateEvery = 0 // adopt the checkpointed cadence
				}
				fmt.Printf("Resuming online pricer from %s at round %d (update %d)\n",
					*warmFile, ck.Pricer.Rounds, ck.Pricer.Updates)
				if online, err = sim.NewOnlinePricerFromCheckpoint(onlineCfg, ck); err != nil {
					return err
				}
				break
			}
			agent, _, err := experiments.WarmStartAgent(game, historyLen, ppo, ck)
			if err != nil {
				return err
			}
			kind := fmt.Sprintf("full training state (history %d, lr %g)", historyLen, lrEff)
			if !full {
				kind = "weights only (legacy checkpoint; optimizer and RNG start fresh, -history/-lr flags apply)"
			}
			fmt.Printf("Warm-starting online pricer from %s: %s\n", *warmFile, kind)
			onlineCfg.Agent = agent
			onlineCfg.HistoryLen = historyLen
		case *warmStart:
			res, err := trainOffline(*episodes, *seed)
			if err != nil {
				return err
			}
			onlineCfg.Agent = res.Agent
			onlineCfg.HistoryLen = res.Env.Config().HistoryLen
		}
		if online == nil {
			var err error
			if online, err = sim.NewOnlinePricer(onlineCfg); err != nil {
				return err
			}
		}
		cfg.Pricer = online
	default:
		return fmt.Errorf("unknown pricer %q (want oracle, random, fixed, drl, or online)", *pricer)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("creating trace file: %w", err)
		}
		defer f.Close()
		cfg.TraceWriter = f
	}

	s, err := sim.New(cfg)
	if err != nil {
		return err
	}
	rep := s.Run()

	fmt.Printf("Simulated %.0f s with %d vehicles over %d RSUs (pricer: %s)\n",
		rep.SimulatedS, cfg.Vehicles, cfg.RSUCount, rep.PricerName)
	fmt.Printf("Handovers          %d\n", rep.Handovers)
	fmt.Printf("Pricing rounds     %d (failed: %d, deferred: %d, opted out: %d)\n",
		rep.PricingRounds, rep.FailedRounds, rep.Deferred, rep.OptedOut)
	fmt.Printf("Migrations done    %d\n", len(rep.Migrations))
	fmt.Printf("MSP revenue        %.4f\n", rep.MSPRevenue)
	fmt.Printf("Mean / max AoTM    %.4f / %.4f s\n", rep.MeanAoTM, rep.MaxAoTM)
	fmt.Printf("Mean VMU utility   %.4f\n", rep.MeanVMUUtility)
	fmt.Printf("Mean sensing AoI   %.4f s\n", rep.MeanSensingAoI)
	if rep.PlacementFailures > 0 {
		fmt.Printf("Placement failures %d\n", rep.PlacementFailures)
	}
	if online, ok := cfg.Pricer.(*sim.OnlinePricer); ok {
		online.Flush() // learn from the trailing partial round segment too
		fmt.Printf("Online updates     %d (every %d rounds; best live utility %.4f)\n",
			online.Updates(), online.UpdateEvery(), online.BestUtility())
	}

	if *verbose {
		fmt.Println("\nstart    veh  from→to  price   bw(MHz)  AoTM(s)  data(MB)  downtime(s)")
		for _, m := range rep.Migrations {
			fmt.Printf("%7.1f  %3d  %3d→%-3d  %6.2f  %7.4f  %7.3f  %8.1f  %10.4f\n",
				m.StartS, m.VehicleID, m.FromRSU, m.ToRSU, m.Price, m.BandwidthMHz, m.AoTM, m.DataMovedMB, m.DowntimeS)
		}
	}
	return nil
}

// loadCheckpointFile reads a checkpoint file in either encoding (the
// loader auto-detects the binary format by its magic).
func loadCheckpointFile(path string) (*nn.Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening checkpoint: %w", err)
	}
	defer f.Close()
	ck, err := nn.LoadCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	return ck, nil
}

// writeCheckpointFile writes a checkpoint atomically (temp file + rename)
// so a crash mid-write never leaves a truncated checkpoint behind, in the
// compact binary encoding when the name ends in .bin and JSON otherwise.
func writeCheckpointFile(path string, ck *nn.Checkpoint) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".bin") {
		err = ck.SaveBinary(f)
	} else {
		err = ck.Save(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// trainOffline trains the MSP agent on the paper's benchmark game for the
// drl and warm-started online pricers.
func trainOffline(episodes int, seed int64) (*experiments.TrainResult, error) {
	drlCfg := experiments.DefaultDRLConfig()
	drlCfg.Episodes = episodes
	drlCfg.Restarts = 1
	drlCfg.Seed = seed
	fmt.Printf("Training PPO pricing agent offline (%d episodes x %d rounds)...\n", drlCfg.Episodes, drlCfg.Rounds)
	res, err := experiments.TrainAgent(stackelberg.DefaultGame(), drlCfg)
	if err != nil {
		return nil, fmt.Errorf("offline training: %w", err)
	}
	return res, nil
}
