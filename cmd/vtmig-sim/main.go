// Command vtmig-sim runs the end-to-end vehicular-metaverse simulation:
// vehicles on a circular highway, handover-triggered VT migrations priced
// by the Stackelberg incentive mechanism, pre-copy migration over OFDMA
// bandwidth, and AoTM accounting.
//
// Besides the analytic pricers, the MSP can deploy a DRL pricing agent:
// `-pricer drl` trains one offline on the paper's benchmark game and
// deploys it frozen; `-pricer online` keeps it learning from the live
// pricing rounds (warm-started from the same offline training, or from
// scratch with `-warm-start=false`), running a sharded PPO optimization
// phase every `-update-every` rounds.
//
// Instead of training in-process, `-warm-start-file ck.json` warm-starts
// the online pricer from a checkpoint written by vtmig-train -checkpoint
// (JSON or the compact binary encoding — the loader auto-detects). A
// full checkpoint restores the complete learner state (optimizer moments
// and RNG stream included, so continued learning picks the training
// stream up exactly) and carries its own architecture metadata: the
// history length and learning rate are read from the checkpoint, and
// explicitly passed -history/-lr flags are only checked against it — a
// conflict fails loudly before the simulation starts. A legacy
// weights-only checkpoint has no metadata and keeps using the flags. A
// mid-run pricer checkpoint (written by -snapshot-out) additionally
// restores the belief window, best tracker, and stream counters, so the
// online run resumes exactly where it stopped.
//
// `-snapshot-every N -snapshot-out ck.bin` writes such a resume
// checkpoint after every Nth online optimization phase (binary when the
// name ends in .bin, JSON otherwise).
//
// Instead of workload flags, `-scenario city.json` runs a declarative
// scenario file (JSON or TOML, see internal/scenario): road world,
// fleet, churn, outages, demand cycle, and the pricer all come from the
// file, and passing a workload or pricer flag alongside -scenario is an
// explicit conflict error. Host-side flags (-verbose, -trace, -shards,
// -snapshot-every, -snapshot-out) still apply — -shards selects the
// region count for parallel stepping, which determinism contract rule 7
// guarantees is bit-identical at any value, so it composes freely with
// scenario files:
//
//	vtmig-sim -scenario testdata/scenarios/metro-10k.json -shards 8
//
// Usage:
//
//	vtmig-sim [-scenario city.json] [-shards N]
//	          [-vehicles 6] [-rsus 8] [-duration 600]
//	          [-pricer oracle|random|fixed|drl|online] [-price 25]
//	          [-train-episodes 30] [-update-every 20] [-warm-start]
//	          [-warm-start-file ck.json] [-history 4] [-lr 3e-4]
//	          [-snapshot-every 0] [-snapshot-out ck.bin]
//	          [-failure 0] [-seed 1] [-verbose]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	// Registers the "drl" and "online" pricer builders with the sim
	// pricer registry.
	_ "vtmig/internal/experiments"
	"vtmig/internal/nn"
	"vtmig/internal/scenario"
	"vtmig/internal/sim"
)

// scenarioConflictFlags are the legacy flags a scenario file replaces:
// passing any of them explicitly alongside -scenario is an error rather
// than a silent override in either direction.
var scenarioConflictFlags = []string{
	"vehicles", "rsus", "duration", "failure", "seed",
	"pricer", "price", "train-episodes", "update-every",
	"warm-start", "warm-start-file", "history", "lr",
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vtmig-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vtmig-sim", flag.ContinueOnError)
	var (
		scenarioF   = fs.String("scenario", "", "run a declarative scenario file (.json or .toml) instead of the workload flags")
		vehicles    = fs.Int("vehicles", 6, "number of vehicles (VMUs)")
		rsus        = fs.Int("rsus", 8, "number of RSUs on the highway")
		duration    = fs.Float64("duration", 600, "simulated seconds")
		pricer      = fs.String("pricer", "oracle", "MSP pricing strategy: oracle, random, fixed, drl, or online")
		price       = fs.Float64("price", 25, "price for -pricer fixed")
		episodes    = fs.Int("train-episodes", 30, "offline training episodes for -pricer drl / warm-started online")
		updateEvery = fs.Int("update-every", 20, "online optimization cadence in pricing rounds (-pricer online)")
		warmStart   = fs.Bool("warm-start", true, "warm-start -pricer online from offline training (false: learn from scratch)")
		warmFile    = fs.String("warm-start-file", "", "warm-start -pricer online from this checkpoint file instead of training in-process")
		history     = fs.Int("history", 4, "observation history length L of a legacy weights-only -warm-start-file checkpoint (full checkpoints carry it themselves)")
		lr          = fs.Float64("lr", 3e-4, "Adam learning rate of a legacy weights-only -warm-start-file checkpoint's training (full checkpoints carry it themselves)")
		snapEvery   = fs.Int("snapshot-every", 0, "write a resume checkpoint after every Nth online optimization phase (-pricer online; 0 disables)")
		snapOut     = fs.String("snapshot-out", "", "file the mid-run resume checkpoints go to (binary when the name ends in .bin; required with -snapshot-every)")
		failure     = fs.Float64("failure", 0, "pricing-round failure probability in [0, 1)")
		seed        = fs.Int64("seed", 1, "random seed")
		shards      = fs.Int("shards", -1, "region count for sharded parallel stepping (0: serial; -1: adopt the scenario's; bit-identical either way)")
		verbose     = fs.Bool("verbose", false, "print every migration record")
		traceOut    = fs.String("trace", "", "write a JSONL event trace to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	explicit := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	opts := sim.PricerBuildOptions{
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}
	if *snapEvery > 0 {
		if *snapOut == "" {
			return fmt.Errorf("-snapshot-every %d needs -snapshot-out", *snapEvery)
		}
		out := *snapOut
		opts.SnapshotEvery = *snapEvery
		opts.OnSnapshot = func(ck *nn.Checkpoint) {
			if err := writeCheckpointFile(out, ck); err != nil {
				fmt.Fprintf(os.Stderr, "vtmig-sim: writing resume checkpoint: %v\n", err)
			}
		}
	}

	var cfg sim.Config
	if *scenarioF != "" {
		// Scenario mode: the file defines the workload and the pricer;
		// a zero opts.DefaultSeed makes stochastic pricers adopt the
		// scenario seed.
		for _, name := range scenarioConflictFlags {
			if explicit[name] {
				return fmt.Errorf("-%s conflicts with -scenario %s: the scenario file defines the workload and pricer", name, *scenarioF)
			}
		}
		s, err := scenario.Load(*scenarioF)
		if err != nil {
			return err
		}
		if cfg, err = s.CompileConfig(); err != nil {
			return err
		}
		p, err := s.BuildPricer(opts)
		if err != nil {
			return err
		}
		cfg.Pricer = p
	} else {
		// Legacy mode compiles the workload flags into an equivalent
		// in-memory scenario, then pins the flag values verbatim so an
		// explicitly passed zero (e.g. -vehicles 0) still fails
		// validation instead of adopting a default.
		s := &scenario.Scenario{Name: "cli"}
		var err error
		if cfg, err = s.CompileConfig(); err != nil {
			return err
		}
		cfg.Vehicles = *vehicles
		cfg.RSUCount = *rsus
		cfg.DurationS = *duration
		cfg.PricingFailureRate = *failure
		cfg.Seed = *seed

		// The flags compile into a declarative sim.PricerSpec. Only explicitly
		// passed flags enter the spec — an unset spec field means "adopt the
		// default (or the checkpoint's metadata)", while an explicitly set one
		// must match what a warm-start checkpoint was trained with. The -price
		// default applies to -pricer fixed even unflagged, as it always has.
		spec := sim.PricerSpec{Name: *pricer, WarmStartFile: *warmFile}
		if explicit["price"] || *pricer == "fixed" {
			spec.Price = *price
		}
		if explicit["train-episodes"] {
			spec.TrainEpisodes = *episodes
		}
		if explicit["update-every"] {
			spec.UpdateEvery = *updateEvery
		}
		if explicit["warm-start"] {
			spec.WarmStart = warmStart
		}
		if explicit["history"] {
			spec.HistoryLen = *history
		}
		if explicit["lr"] {
			spec.LR = *lr
		}
		opts.DefaultSeed = *seed
		p, err := sim.NewPricerFromSpec(spec, opts)
		if err != nil {
			return err
		}
		cfg.Pricer = p
	}

	// -shards is a host-side knob like -trace, deliberately NOT a scenario
	// conflict: rule 7 guarantees any region count is bit-identical to the
	// scenario's own setting, so overriding it never changes results.
	if *shards >= 0 {
		cfg.Shards.Regions = *shards
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("creating trace file: %w", err)
		}
		defer f.Close()
		cfg.TraceWriter = f
	}

	s, err := sim.New(cfg)
	if err != nil {
		return err
	}
	rep := s.Run()

	fmt.Printf("Simulated %.0f s with %d vehicles over %d RSUs (pricer: %s)\n",
		rep.SimulatedS, cfg.Vehicles, cfg.EffectiveRSUCount(), rep.PricerName)
	fmt.Printf("Handovers          %d\n", rep.Handovers)
	fmt.Printf("Pricing rounds     %d (failed: %d, deferred: %d, opted out: %d)\n",
		rep.PricingRounds, rep.FailedRounds, rep.Deferred, rep.OptedOut)
	fmt.Printf("Migrations done    %d\n", rep.Completed)
	fmt.Printf("MSP revenue        %.4f\n", rep.MSPRevenue)
	fmt.Printf("Mean / max AoTM    %.4f / %.4f s\n", rep.MeanAoTM, rep.MaxAoTM)
	fmt.Printf("Mean VMU utility   %.4f\n", rep.MeanVMUUtility)
	fmt.Printf("Mean sensing AoI   %.4f s\n", rep.MeanSensingAoI)
	if rep.PlacementFailures > 0 {
		fmt.Printf("Placement failures %d\n", rep.PlacementFailures)
	}
	if online, ok := cfg.Pricer.(*sim.OnlinePricer); ok {
		online.Flush() // learn from the trailing partial round segment too
		fmt.Printf("Online updates     %d (every %d rounds; best live utility %.4f)\n",
			online.Updates(), online.UpdateEvery(), online.BestUtility())
	}

	if *verbose {
		fmt.Println("\nstart    veh  from→to  price   bw(MHz)  AoTM(s)  data(MB)  downtime(s)")
		for _, m := range rep.Migrations {
			fmt.Printf("%7.1f  %3d  %3d→%-3d  %6.2f  %7.4f  %7.3f  %8.1f  %10.4f\n",
				m.StartS, m.VehicleID, m.FromRSU, m.ToRSU, m.Price, m.BandwidthMHz, m.AoTM, m.DataMovedMB, m.DowntimeS)
		}
	}
	return nil
}

// writeCheckpointFile writes a checkpoint atomically (temp file + rename)
// so a crash mid-write never leaves a truncated checkpoint behind, in the
// compact binary encoding when the name ends in .bin and JSON otherwise.
func writeCheckpointFile(path string, ck *nn.Checkpoint) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".bin") {
		err = ck.SaveBinary(f)
	} else {
		err = ck.Save(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
