package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vtmig/internal/experiments"
	"vtmig/internal/stackelberg"
)

func TestRunShortSimulation(t *testing.T) {
	if err := run([]string{"-duration", "120", "-verbose"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunPricers(t *testing.T) {
	for _, pricer := range []string{"oracle", "random", "fixed"} {
		if err := run([]string{"-duration", "60", "-pricer", pricer}); err != nil {
			t.Errorf("pricer %s: %v", pricer, err)
		}
	}
}

func TestRunDRLPricer(t *testing.T) {
	if testing.Short() {
		t.Skip("training run skipped in -short mode")
	}
	if err := run([]string{"-duration", "60", "-pricer", "drl", "-train-episodes", "2"}); err != nil {
		t.Fatalf("drl pricer: %v", err)
	}
}

func TestRunOnlinePricer(t *testing.T) {
	if testing.Short() {
		t.Skip("training run skipped in -short mode")
	}
	if err := run([]string{"-duration", "120", "-pricer", "online", "-train-episodes", "2", "-update-every", "5"}); err != nil {
		t.Fatalf("online warm pricer: %v", err)
	}
	if err := run([]string{"-duration", "120", "-pricer", "online", "-warm-start=false", "-update-every", "5"}); err != nil {
		t.Fatalf("online cold pricer: %v", err)
	}
}

func TestRunOnlineWarmStartFile(t *testing.T) {
	if testing.Short() {
		t.Skip("training run skipped in -short mode")
	}
	// Write a full checkpoint with vtmig-train's exact format by training
	// through the experiments harness (the same path vtmig-train takes).
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	drlCfg := experiments.DefaultDRLConfig()
	drlCfg.Episodes = 2
	drlCfg.Rounds = 10
	drlCfg.Restarts = 1
	res, err := experiments.TrainAgent(stackelberg.DefaultGame(), drlCfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Checkpoint.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := run([]string{"-duration", "120", "-pricer", "online", "-warm-start-file", path,
		"-history", "4", "-update-every", "5"}); err != nil {
		t.Fatalf("online pricer with warm-start file: %v", err)
	}
	// Architecture mismatch (wrong history length) must fail loudly.
	if err := run([]string{"-duration", "60", "-pricer", "online", "-warm-start-file", path,
		"-history", "3"}); err == nil {
		t.Fatal("mismatched -history accepted")
	}
	// Learner-hyper-parameter mismatch (different training -lr) must fail
	// loudly instead of continuing the restored Adam moments under a
	// different step size.
	if err := run([]string{"-duration", "60", "-pricer", "online", "-warm-start-file", path,
		"-history", "4", "-lr", "0.001"}); err == nil {
		t.Fatal("mismatched -lr accepted")
	}
	if err := run([]string{"-duration", "60", "-pricer", "online",
		"-warm-start-file", filepath.Join(dir, "missing.json")}); err == nil {
		t.Fatal("missing warm-start file accepted")
	}
}

func TestRunOnlineWarmStartFileDerivesFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("training run skipped in -short mode")
	}
	// A full checkpoint carries its architecture metadata, so the run
	// works with no -history/-lr flags at all.
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	drlCfg := experiments.DefaultDRLConfig()
	drlCfg.Episodes = 2
	drlCfg.Rounds = 10
	drlCfg.HistoryLen = 3 // differs from the -history flag default of 4
	drlCfg.Restarts = 1
	res, err := experiments.TrainAgent(stackelberg.DefaultGame(), drlCfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Checkpoint.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := run([]string{"-duration", "120", "-pricer", "online", "-warm-start-file", path,
		"-update-every", "5"}); err != nil {
		t.Fatalf("online pricer with derived flags: %v", err)
	}
}

func TestRunOnlineSnapshotResume(t *testing.T) {
	if testing.Short() {
		t.Skip("training run skipped in -short mode")
	}
	dir := t.TempDir()
	snap := filepath.Join(dir, "resume.bin")
	// Cold-start online run writing binary mid-run resume checkpoints.
	if err := run([]string{"-duration", "120", "-pricer", "online", "-warm-start=false",
		"-update-every", "5", "-snapshot-every", "1", "-snapshot-out", snap}); err != nil {
		t.Fatalf("snapshotting run: %v", err)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("no resume checkpoint written: %v", err)
	}
	// Resume it: cadence and architecture are adopted from the file.
	if err := run([]string{"-duration", "60", "-pricer", "online", "-warm-start-file", snap}); err != nil {
		t.Fatalf("resuming run: %v", err)
	}
	// An explicitly conflicting cadence must fail loudly.
	if err := run([]string{"-duration", "60", "-pricer", "online", "-warm-start-file", snap,
		"-update-every", "7"}); err == nil {
		t.Fatal("conflicting -update-every accepted")
	}
	if err := run([]string{"-duration", "60", "-pricer", "online", "-warm-start=false",
		"-snapshot-every", "1"}); err == nil {
		t.Fatal("-snapshot-every without -snapshot-out accepted")
	}
}

func TestRunOnlineInvalidUpdateEvery(t *testing.T) {
	if err := run([]string{"-pricer", "online", "-warm-start=false", "-update-every", "-3"}); err == nil {
		t.Fatal("negative update interval accepted")
	}
}

func TestRunUnknownPricer(t *testing.T) {
	if err := run([]string{"-pricer", "nonsense"}); err == nil {
		t.Fatal("unknown pricer accepted")
	}
}

func TestRunInvalidConfig(t *testing.T) {
	if err := run([]string{"-vehicles", "0"}); err == nil {
		t.Fatal("zero vehicles accepted")
	}
}

func TestRunFailureInjection(t *testing.T) {
	if err := run([]string{"-duration", "60", "-failure", "0.4"}); err != nil {
		t.Fatalf("run with failure injection: %v", err)
	}
}

func TestRunScenarioFile(t *testing.T) {
	for _, file := range []string{"urban-grid.json", "churn.toml"} {
		path := filepath.Join("..", "..", "testdata", "scenarios", file)
		if err := run([]string{"-scenario", path}); err != nil {
			t.Errorf("run -scenario %s: %v", file, err)
		}
	}
}

func TestRunScenarioConflictsWithWorkloadFlags(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "scenarios", "static-highway.json")
	for _, extra := range [][]string{
		{"-vehicles", "4"},
		{"-duration", "60"},
		{"-pricer", "oracle"},
		{"-seed", "7"},
		{"-warm-start=false"},
	} {
		args := append([]string{"-scenario", path}, extra...)
		err := run(args)
		if err == nil {
			t.Errorf("%v: conflicting flag accepted", extra)
			continue
		}
		flagName, _, _ := strings.Cut(strings.TrimPrefix(extra[0], "-"), "=")
		if !strings.Contains(err.Error(), "conflicts with -scenario") || !strings.Contains(err.Error(), flagName) {
			t.Errorf("%v: error should name the conflicting flag, got %v", extra, err)
		}
	}
}

func TestRunScenarioHostFlagsStillApply(t *testing.T) {
	path := filepath.Join("..", "..", "testdata", "scenarios", "static-highway.json")
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := run([]string{"-scenario", path, "-verbose", "-trace", trace}); err != nil {
		t.Fatalf("run -scenario with host flags: %v", err)
	}
	if fi, err := os.Stat(trace); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file not written: %v", err)
	}
}

func TestRunScenarioMissingFile(t *testing.T) {
	if err := run([]string{"-scenario", "no-such-scenario.json"}); err == nil {
		t.Fatal("missing scenario file accepted")
	}
}
