package main

import "testing"

func TestRunShortSimulation(t *testing.T) {
	if err := run([]string{"-duration", "120", "-verbose"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunPricers(t *testing.T) {
	for _, pricer := range []string{"oracle", "random", "fixed"} {
		if err := run([]string{"-duration", "60", "-pricer", pricer}); err != nil {
			t.Errorf("pricer %s: %v", pricer, err)
		}
	}
}

func TestRunUnknownPricer(t *testing.T) {
	if err := run([]string{"-pricer", "nonsense"}); err == nil {
		t.Fatal("unknown pricer accepted")
	}
}

func TestRunInvalidConfig(t *testing.T) {
	if err := run([]string{"-vehicles", "0"}); err == nil {
		t.Fatal("zero vehicles accepted")
	}
}

func TestRunFailureInjection(t *testing.T) {
	if err := run([]string{"-duration", "60", "-failure", "0.4"}); err != nil {
		t.Fatalf("run with failure injection: %v", err)
	}
}
