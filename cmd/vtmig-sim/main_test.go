package main

import "testing"

func TestRunShortSimulation(t *testing.T) {
	if err := run([]string{"-duration", "120", "-verbose"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunPricers(t *testing.T) {
	for _, pricer := range []string{"oracle", "random", "fixed"} {
		if err := run([]string{"-duration", "60", "-pricer", pricer}); err != nil {
			t.Errorf("pricer %s: %v", pricer, err)
		}
	}
}

func TestRunDRLPricer(t *testing.T) {
	if testing.Short() {
		t.Skip("training run skipped in -short mode")
	}
	if err := run([]string{"-duration", "60", "-pricer", "drl", "-train-episodes", "2"}); err != nil {
		t.Fatalf("drl pricer: %v", err)
	}
}

func TestRunOnlinePricer(t *testing.T) {
	if testing.Short() {
		t.Skip("training run skipped in -short mode")
	}
	if err := run([]string{"-duration", "120", "-pricer", "online", "-train-episodes", "2", "-update-every", "5"}); err != nil {
		t.Fatalf("online warm pricer: %v", err)
	}
	if err := run([]string{"-duration", "120", "-pricer", "online", "-warm-start=false", "-update-every", "5"}); err != nil {
		t.Fatalf("online cold pricer: %v", err)
	}
}

func TestRunOnlineInvalidUpdateEvery(t *testing.T) {
	if err := run([]string{"-pricer", "online", "-warm-start=false", "-update-every", "-3"}); err == nil {
		t.Fatal("negative update interval accepted")
	}
}

func TestRunUnknownPricer(t *testing.T) {
	if err := run([]string{"-pricer", "nonsense"}); err == nil {
		t.Fatal("unknown pricer accepted")
	}
}

func TestRunInvalidConfig(t *testing.T) {
	if err := run([]string{"-vehicles", "0"}); err == nil {
		t.Fatal("zero vehicles accepted")
	}
}

func TestRunFailureInjection(t *testing.T) {
	if err := run([]string{"-duration", "60", "-failure", "0.4"}); err != nil {
		t.Fatalf("run with failure injection: %v", err)
	}
}
