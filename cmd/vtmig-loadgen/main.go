// Command vtmig-loadgen drives concurrent synthetic quote traffic
// against one or more running vtmig-serve daemons and reports throughput
// and latency percentiles per target. Each client goroutine draws rounds
// from its own seeded stream — 1–3 VMUs with the paper's α ∈ [5, 20] and
// data sizes in [100, 300] MB, distances in [200, 1000] m — and the
// clients share a global request budget, so the total load is exact
// regardless of how the clients interleave. With several -addr targets
// (comma-separated, e.g. a primary plus its read replicas) the clients
// are spread round-robin across them and the report carries one
// per-target block besides the aggregate.
//
// Usage:
//
//	vtmig-loadgen -addr http://localhost:8080[,http://localhost:8081,...]
//	              [-clients 256] [-requests 10000] [-seed 1]
//	              [-out loadgen.json]
//
// The report (stdout, or -out as JSON) records requests, errors, wall
// seconds, requests/second, and nearest-rank p50/p95/p99 quote latency
// in milliseconds — aggregate and per target.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vtmig-loadgen:", err)
		os.Exit(1)
	}
}

// TargetReport is one target's slice of the load: the requests its
// clients completed against it, with that target's own throughput and
// nearest-rank latency percentiles.
type TargetReport struct {
	Addr     string  `json:"addr"`
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	RPS      float64 `json:"rps"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// Report is the loadgen's result document: the aggregate across all
// targets plus one TargetReport per -addr entry.
type Report struct {
	Addrs    []string       `json:"addrs"`
	Clients  int            `json:"clients"`
	Requests int            `json:"requests"`
	Errors   int            `json:"errors"`
	Seconds  float64        `json:"seconds"`
	RPS      float64        `json:"rps"`
	P50Ms    float64        `json:"p50_ms"`
	P95Ms    float64        `json:"p95_ms"`
	P99Ms    float64        `json:"p99_ms"`
	Targets  []TargetReport `json:"targets"`
}

type quoteVMU struct {
	ID     int     `json:"id"`
	Alpha  float64 `json:"alpha"`
	DataMB float64 `json:"data_mb"`
}

type quoteRequest struct {
	VMUs      []quoteVMU `json:"vmus"`
	DistanceM float64    `json:"distance_m,omitempty"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("vtmig-loadgen", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "http://localhost:8080", "vtmig-serve base URL, or a comma-separated list (primary plus replicas)")
		clients  = fs.Int("clients", 256, "concurrent client goroutines, spread round-robin across the targets")
		requests = fs.Int("requests", 10000, "total quote requests across all clients and targets")
		seed     = fs.Int64("seed", 1, "base seed for the synthetic round streams")
		out      = fs.String("out", "", "write the JSON report to this file (default stdout only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clients <= 0 || *requests <= 0 {
		return fmt.Errorf("-clients and -requests must be positive")
	}
	var targets []string
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			targets = append(targets, a)
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("-addr lists no targets")
	}
	if *clients < len(targets) {
		return fmt.Errorf("%d clients cannot cover %d targets; raise -clients", *clients, len(targets))
	}

	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConns = *clients
	transport.MaxIdleConnsPerHost = *clients
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}

	var (
		next       atomic.Int64 // shared request budget
		wg         sync.WaitGroup
		latencies  = make([][]time.Duration, *clients)
		clientErrs = make([]int, *clients)
	)
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			url := targets[c%len(targets)] + "/v1/quote"
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			var lats []time.Duration
			for {
				if next.Add(1) > int64(*requests) {
					break
				}
				body, _ := json.Marshal(randRound(rng))
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					clientErrs[c]++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					clientErrs[c]++
					continue
				}
				lats = append(lats, time.Since(t0))
			}
			latencies[c] = lats
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	perTarget := make([][]time.Duration, len(targets))
	perTargetErrs := make([]int, len(targets))
	for c := 0; c < *clients; c++ {
		tg := c % len(targets)
		all = append(all, latencies[c]...)
		perTarget[tg] = append(perTarget[tg], latencies[c]...)
		perTargetErrs[tg] += clientErrs[c]
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep := Report{
		Addrs:    targets,
		Clients:  *clients,
		Requests: *requests,
		Seconds:  wall.Seconds(),
		RPS:      float64(len(all)) / wall.Seconds(),
		P50Ms:    percentileMs(all, 0.50),
		P95Ms:    percentileMs(all, 0.95),
		P99Ms:    percentileMs(all, 0.99),
	}
	for tg, lats := range perTarget {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rep.Errors += perTargetErrs[tg]
		rep.Targets = append(rep.Targets, TargetReport{
			Addr:     targets[tg],
			Requests: len(lats) + perTargetErrs[tg],
			Errors:   perTargetErrs[tg],
			RPS:      float64(len(lats)) / wall.Seconds(),
			P50Ms:    percentileMs(lats, 0.50),
			P95Ms:    percentileMs(lats, 0.95),
			P99Ms:    percentileMs(lats, 0.99),
		})
	}
	fmt.Fprintf(stdout, "vtmig-loadgen: %d ok / %d errors in %.2fs — %.0f req/s, p50 %.3fms p95 %.3fms p99 %.3fms\n",
		len(all), rep.Errors, rep.Seconds, rep.RPS, rep.P50Ms, rep.P95Ms, rep.P99Ms)
	if len(targets) > 1 {
		for _, tr := range rep.Targets {
			fmt.Fprintf(stdout, "  %s: %d ok / %d errors — %.0f req/s, p50 %.3fms p95 %.3fms p99 %.3fms\n",
				tr.Addr, tr.Requests-tr.Errors, tr.Errors, tr.RPS, tr.P50Ms, tr.P95Ms, tr.P99Ms)
		}
	}
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if rep.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed", rep.Errors, *requests)
	}
	return nil
}

// randRound draws one synthetic pricing round from the client's stream.
func randRound(rng *rand.Rand) quoteRequest {
	vmus := make([]quoteVMU, 1+rng.Intn(3))
	for i := range vmus {
		vmus[i] = quoteVMU{
			ID:     i,
			Alpha:  5 + 15*rng.Float64(),
			DataMB: 100 + 200*rng.Float64(),
		}
	}
	return quoteRequest{VMUs: vmus, DistanceM: 200 + 800*rng.Float64()}
}

// percentileMs returns the q-quantile of the sorted latency slice in
// milliseconds (nearest-rank).
func percentileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}
