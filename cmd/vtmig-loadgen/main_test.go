package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"vtmig/internal/rl"
	"vtmig/internal/serve"
)

func TestLoadgenAgainstServeHandler(t *testing.T) {
	ppo := rl.DefaultPPOConfig()
	ppo.Hidden = []int{8, 8}
	ppo.Epochs = 2
	ppo.MiniBatch = 5
	s, err := serve.Open(serve.Config{
		Dir:         t.TempDir(),
		UpdateEvery: 10,
		Seed:        3,
		PPO:         ppo,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "loadgen.json")
	var stdout bytes.Buffer
	if err := run([]string{
		"-addr", ts.URL, "-clients", "8", "-requests", "120", "-out", out,
	}, &stdout); err != nil {
		t.Fatalf("run: %v (output %q)", err, stdout.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Requests != 120 || rep.RPS <= 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.P50Ms <= 0 || rep.P95Ms < rep.P50Ms || rep.P99Ms < rep.P95Ms {
		t.Fatalf("percentiles not monotone: %+v", rep)
	}
	if len(rep.Targets) != 1 || rep.Targets[0].Addr != ts.URL || rep.Targets[0].Requests != 120 {
		t.Fatalf("single-target report carries targets %+v", rep.Targets)
	}
	// Every request reached the learner, in some serial order.
	if st := s.Stats(); st.Rounds != 120 {
		t.Fatalf("server rounds = %d, want 120", st.Rounds)
	}
}

// TestLoadgenMultiTarget spreads the budget across a primary and one of
// its read replicas and checks the per-target accounting: every request
// lands on exactly one target, both targets get traffic, and each
// target's percentiles are self-consistent.
func TestLoadgenMultiTarget(t *testing.T) {
	ppo := rl.DefaultPPOConfig()
	ppo.Hidden = []int{4}
	ppo.Epochs = 1
	ppo.MiniBatch = 2
	dir := t.TempDir()
	cfg := serve.Config{Dir: dir, HistoryLen: 2, UpdateEvery: 2, Seed: 9, PPO: ppo}
	s, err := serve.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Roll past one rotation so a replica has a checkpoint to freeze.
	var stdoutWarm bytes.Buffer
	tsPrimary := httptest.NewServer(s.Handler())
	defer tsPrimary.Close()
	if err := run([]string{"-addr", tsPrimary.URL, "-clients", "2", "-requests", "4"}, &stdoutWarm); err != nil {
		t.Fatalf("warm-up load: %v", err)
	}

	r, err := serve.OpenReplica(serve.ReplicaConfig{Dir: dir, HistoryLen: 2, PPO: ppo})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	tsReplica := httptest.NewServer(r.Handler())
	defer tsReplica.Close()

	out := filepath.Join(t.TempDir(), "loadgen.json")
	var stdout bytes.Buffer
	if err := run([]string{
		"-addr", tsPrimary.URL + "," + tsReplica.URL,
		"-clients", "8", "-requests", "80", "-out", out,
	}, &stdout); err != nil {
		t.Fatalf("run: %v (output %q)", err, stdout.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Targets) != 2 || rep.Errors != 0 {
		t.Fatalf("report %+v", rep)
	}
	total := 0
	for _, tr := range rep.Targets {
		if tr.Requests == 0 {
			t.Fatalf("target %s got no traffic: %+v", tr.Addr, rep.Targets)
		}
		if tr.P50Ms <= 0 || tr.P95Ms < tr.P50Ms || tr.P99Ms < tr.P95Ms {
			t.Fatalf("target %s percentiles not monotone: %+v", tr.Addr, tr)
		}
		total += tr.Requests
	}
	if total != 80 {
		t.Fatalf("targets account for %d of 80 requests", total)
	}
	if rep.Targets[0].Addr != tsPrimary.URL || rep.Targets[1].Addr != tsReplica.URL {
		t.Fatalf("target order %+v", rep.Targets)
	}
}

func TestLoadgenFlagValidation(t *testing.T) {
	if err := run([]string{"-clients", "0"}, &bytes.Buffer{}); err == nil {
		t.Fatal("run with -clients 0 succeeded")
	}
	if err := run([]string{"-addr", " , "}, &bytes.Buffer{}); err == nil {
		t.Fatal("run with empty -addr targets succeeded")
	}
	if err := run([]string{"-addr", "a,b,c", "-clients", "2"}, &bytes.Buffer{}); err == nil {
		t.Fatal("run with fewer clients than targets succeeded")
	}
}
