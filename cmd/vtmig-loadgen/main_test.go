package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"vtmig/internal/rl"
	"vtmig/internal/serve"
)

func TestLoadgenAgainstServeHandler(t *testing.T) {
	ppo := rl.DefaultPPOConfig()
	ppo.Hidden = []int{8, 8}
	ppo.Epochs = 2
	ppo.MiniBatch = 5
	s, err := serve.Open(serve.Config{
		Dir:         t.TempDir(),
		UpdateEvery: 10,
		Seed:        3,
		PPO:         ppo,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "loadgen.json")
	var stdout bytes.Buffer
	if err := run([]string{
		"-addr", ts.URL, "-clients", "8", "-requests", "120", "-out", out,
	}, &stdout); err != nil {
		t.Fatalf("run: %v (output %q)", err, stdout.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Requests != 120 || rep.RPS <= 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.P50Ms <= 0 || rep.P95Ms < rep.P50Ms || rep.P99Ms < rep.P95Ms {
		t.Fatalf("percentiles not monotone: %+v", rep)
	}
	// Every request reached the learner, in some serial order.
	if st := s.Stats(); st.Rounds != 120 {
		t.Fatalf("server rounds = %d, want 120", st.Rounds)
	}
}

func TestLoadgenFlagValidation(t *testing.T) {
	if err := run([]string{"-clients", "0"}, &bytes.Buffer{}); err == nil {
		t.Fatal("run with -clients 0 succeeded")
	}
}
