// Online pricing: deploy the MSP's DRL pricing agent in the end-to-end
// vehicular-metaverse simulator and let it keep learning from the live
// pricing rounds — online continual learning on top of (or instead of)
// the paper's offline Algorithm 1.
//
// The walkthrough runs the identical fixed-seed highway scenario four
// times: priced by the complete-information Stackelberg oracle, by an
// offline-trained agent deployed frozen, by the same agent continuing to
// learn online, and by an online learner starting from scratch. The live
// rounds differ from the training game — the participant set, the channel
// distance, and the remaining bandwidth pool change every round — so the
// frozen agent is off its training distribution and online adaptation
// recovers part of the gap to the oracle.
//
// Run with: go run ./examples/online_pricing
// (trains a small offline agent and simulates 4 × 30 minutes; takes a
// few seconds)
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"vtmig"
)

func main() {
	cfg := vtmig.DefaultOnlineStudyConfig()
	cfg.Sim.DurationS = 1800
	cfg.DRL.Episodes = 10

	// VTMIG_DURATION overrides the simulated horizon in seconds — the
	// smoke tests run this example with a short one to keep CI fast.
	if s := os.Getenv("VTMIG_DURATION"); s != "" {
		d, err := strconv.ParseFloat(s, 64)
		if err != nil || d <= 0 {
			log.Fatalf("invalid VTMIG_DURATION=%q", s)
		}
		cfg.Sim.DurationS = d
	}

	fmt.Printf("Scenario: %d vehicles over %d RSUs for %.0f simulated seconds\n",
		cfg.Sim.Vehicles, cfg.Sim.RSUCount, cfg.Sim.DurationS)
	fmt.Printf("Offline budget: %d episodes x %d rounds (deliberately small)\n\n",
		cfg.DRL.Episodes, cfg.DRL.Rounds)

	study, err := vtmig.RunOnlineStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("arm           leader U/round   revenue   migrations  online updates")
	for _, arm := range study.Arms {
		fmt.Printf("%-12s  %14.4f  %8.2f  %10d  %14d\n",
			arm.Name, arm.LeaderUtility, arm.Report.MSPRevenue, len(arm.Report.Migrations), arm.Updates)
	}

	oracle := study.Arm("oracle")
	frozen := study.Arm("frozen-drl")
	warm := study.Arm("online-warm")
	if gap := oracle.LeaderUtility - frozen.LeaderUtility; gap > 0 {
		recovered := (warm.LeaderUtility - frozen.LeaderUtility) / gap * 100
		fmt.Printf("\nOnline learning recovered %.0f%% of the frozen agent's gap to the oracle.\n", recovered)
	}
}
