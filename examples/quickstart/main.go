// Quickstart: build the paper's two-VMU benchmark game, solve the
// Stackelberg equilibrium in closed form, and inspect the Age of Twin
// Migration each VMU obtains at the equilibrium.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vtmig"
)

func main() {
	// Two vehicular metaverse users: one migrating a 200 MB twin, one a
	// 100 MB twin, both with immersion coefficient α = 5.
	vmus := []vtmig.VMU{
		{ID: 0, Alpha: 5, DataSize: vtmig.FromMB(200)},
		{ID: 1, Alpha: 5, DataSize: vtmig.FromMB(100)},
	}

	// The MSP sells bandwidth at unit cost C=5, capped at pmax=50, from a
	// 0.5 MHz pool, over the paper's default RSU-to-RSU channel.
	game, err := vtmig.NewGame(vmus, vtmig.DefaultChannel(), 5, 50, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	eq := game.Solve()
	fmt.Printf("Stackelberg equilibrium price: %.2f\n", eq.Price)
	fmt.Printf("MSP utility:                   %.2f\n", eq.MSPUtility)

	for i, v := range game.VMUs {
		rate := game.Channel.Rate(eq.Demands[i]) // model data units per second
		age := vtmig.AoTM(v.DataSize, rate)
		fmt.Printf("VMU %d buys %.3f MHz -> AoTM %.3f s, immersion %.2f, utility %.2f\n",
			i, eq.Demands[i], age, vtmig.Immersion(v.Alpha, age), eq.VMUUtilities[i])
	}

	// What would a naive flat price do to the MSP?
	for _, p := range []float64{10, eq.Price, 40} {
		out := game.Evaluate(p)
		fmt.Printf("price %5.2f -> MSP utility %.2f (total demand %.3f MHz)\n",
			p, out.MSPUtility, out.TotalBandwidth)
	}
}
