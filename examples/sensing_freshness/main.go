// Sensing freshness: the Age-of-Information machinery behind the paper's
// AoTM metric, applied to the VMU sensing stream that keeps a Vehicular
// Twin synchronized. Shows the exact sawtooth age process, the closed
// forms for periodic and M/M/1 sources, and how to pick a sampling period
// for a target freshness.
//
// Run with: go run ./examples/sensing_freshness
package main

import (
	"fmt"

	"vtmig/internal/aoi"
)

func main() {
	sawtooth()
	closedForms()
	samplingDesign()
}

// sawtooth builds an explicit age process from delivered updates.
func sawtooth() {
	p := aoi.NewProcess(0)
	// Updates generated every 2 s, delivered 0.3 s later — with one lost
	// update at t=6 (e.g. during a migration's stop-and-copy pause).
	for _, gen := range []float64{2, 4, 8, 10} {
		if err := p.Deliver(gen, gen+0.3); err != nil {
			panic(err)
		}
	}
	fmt.Println("Sawtooth age of a sensing stream (update lost at t=6):")
	fmt.Println("t     age(s)")
	for t := 0.0; t <= 12; t += 2 {
		fmt.Printf("%4.1f  %6.2f\n", t, p.Age(t))
	}
	fmt.Printf("average over [0, 12]: %.3f s; peak: %.3f s\n\n", p.AverageAge(12), p.PeakAge(12))
}

// closedForms compares the analytic AoI formulas.
func closedForms() {
	fmt.Println("Closed forms:")
	fmt.Printf("periodic, period 0.5 s, delay 50 ms: avg AoI = %.3f s\n",
		aoi.PeriodicAverageAge(0.5, 0.05))
	fmt.Printf("M/M/1, lambda 2/s, mu 10/s:          avg AoI = %.3f s\n",
		aoi.MM1AverageAge(2, 10))
	fmt.Printf("optimal M/M/1 utilization:           rho* = %.3f\n\n",
		aoi.OptimalMM1Utilization())
}

// samplingDesign sizes the sensing period for a freshness target.
func samplingDesign() {
	const delay = 0.05
	fmt.Println("Sampling period needed for a target average freshness (delay 50 ms):")
	for _, target := range []float64{0.1, 0.25, 0.5, 1.0} {
		period := aoi.SamplingForTargetAge(target, delay)
		fmt.Printf("target %.2f s -> sample every %.2f s (%.1f Hz)\n",
			target, period, 1/period)
	}
}
