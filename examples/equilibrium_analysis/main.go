// Equilibrium analysis: sweep the unit transmission cost and the VMU
// population size and print how the Stackelberg equilibrium responds —
// the analytic backbone of Fig. 3 of the paper, without any learning.
//
// Run with: go run ./examples/equilibrium_analysis
package main

import (
	"fmt"
	"log"

	"vtmig"
)

func main() {
	costSweep()
	populationSweep()
}

// costSweep reproduces the economics of Fig. 3(a)/(b): higher transmission
// cost pushes the price up and demand down. One EvalScratch serves the
// whole sweep — each row is printed before the next solve overwrites it.
func costSweep() {
	fmt.Println("Cost sweep (2 VMUs, D = 200/100 MB, α = 5):")
	fmt.Println("cost  price   MSP_utility  total_bw(x10kHz)  VMU_utility_sum")
	var scratch vtmig.EvalScratch
	for _, c := range []float64{5, 6, 7, 8, 9} {
		game := vtmig.DefaultGame()
		game.Cost = c
		eq := game.SolveInto(&scratch)
		var vmuSum float64
		for _, u := range eq.VMUUtilities {
			vmuSum += u
		}
		fmt.Printf("%4.0f  %5.2f  %11.3f  %16.1f  %15.3f\n",
			c, eq.Price, eq.MSPUtility, eq.TotalBandwidth*100, vmuSum)
	}
	fmt.Println()
}

// populationSweep reproduces the economics of Fig. 3(c)/(d): the price is
// flat while the MSP's pool is slack and rises once Σb hits Bmax.
func populationSweep() {
	fmt.Println("Population sweep (D = 100 MB, α = 5, C = 5, Bmax = 0.5 MHz):")
	fmt.Println("n  price   bound  MSP_utility  avg_bw(x10kHz)  avg_VMU_utility")
	var scratch vtmig.EvalScratch
	for n := 1; n <= 6; n++ {
		vmus := make([]vtmig.VMU, n)
		for i := range vmus {
			vmus[i] = vtmig.VMU{ID: i, Alpha: 5, DataSize: vtmig.FromMB(100)}
		}
		game, err := vtmig.NewGame(vmus, vtmig.DefaultChannel(), 5, 50, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		eq := game.SolveInto(&scratch)
		var avgU float64
		for _, u := range eq.VMUUtilities {
			avgU += u / float64(n)
		}
		fmt.Printf("%d  %5.2f  %5v  %11.3f  %14.1f  %15.3f\n",
			n, eq.Price, eq.CapacityBound, eq.MSPUtility,
			eq.TotalBandwidth/float64(n)*100, avgU)
	}
}
