// Highway migration: run the end-to-end vehicular-metaverse simulation —
// vehicles hand over between RSUs, each handover triggers a Stackelberg
// pricing round, and the granted bandwidth drives a pre-copy live
// migration whose Age of Twin Migration is recorded. Compares the oracle
// incentive mechanism with random pricing, and shows failure injection.
//
// Run with: go run ./examples/highway_migration
package main

import (
	"fmt"
	"log"

	"vtmig"
	"vtmig/internal/sim"
)

func main() {
	fmt.Println("pricer             failrate  migrations  revenue  mean_AoTM(s)  mean_VMU_utility  sensing_AoI(s)")
	for _, tc := range []struct {
		pricer   sim.Pricer
		failRate float64
	}{
		{sim.NewOraclePricer(), 0},
		{sim.NewRandomPricer(7), 0},
		{sim.NewFixedPricer(45), 0},
		{sim.NewOraclePricer(), 0.3},
	} {
		cfg := vtmig.DefaultSimConfig()
		cfg.DurationS = 900
		cfg.Pricer = tc.pricer
		cfg.PricingFailureRate = tc.failRate
		cfg.Seed = 42

		rep, err := vtmig.RunSimulation(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %8.1f  %10d  %7.1f  %12.3f  %16.3f  %14.3f\n",
			rep.PricerName, tc.failRate, len(rep.Migrations),
			rep.MSPRevenue, rep.MeanAoTM, rep.MeanVMUUtility, rep.MeanSensingAoI)
	}

	// A closer look at one oracle run.
	cfg := vtmig.DefaultSimConfig()
	cfg.DurationS = 300
	cfg.Seed = 42
	rep, err := vtmig.RunSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFirst migrations of the oracle run:")
	fmt.Println("t(s)   vehicle  route    price  bw(MHz)  AoTM(s)  data(MB)")
	limit := 8
	if len(rep.Migrations) < limit {
		limit = len(rep.Migrations)
	}
	for _, m := range rep.Migrations[:limit] {
		fmt.Printf("%5.0f  %7d  %2d → %-2d  %5.2f  %7.3f  %7.3f  %8.1f\n",
			m.StartS, m.VehicleID, m.FromRSU, m.ToRSU, m.Price, m.BandwidthMHz, m.AoTM, m.DataMovedMB)
	}
}
