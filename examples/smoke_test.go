// Package examples holds a table-driven smoke test that builds and runs
// every example program with a reduced iteration budget, asserting each
// produces non-empty, finite output. The examples double as end-to-end
// checks of the public vtmig facade.
package examples

import (
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// smokeRuns lists every example program with the environment that keeps
// its runtime test-sized.
var smokeRuns = []struct {
	name string
	env  []string
}{
	{name: "equilibrium_analysis"},
	{name: "highway_migration"},
	{name: "incentive_training", env: []string{"VTMIG_EPISODES=3"}},
	{name: "online_pricing", env: []string{"VTMIG_DURATION=120"}},
	{name: "quickstart"},
	{name: "sensing_freshness"},
}

func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example subprocess runs skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	for _, tc := range smokeRuns {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+tc.name)
			cmd.Dir = ".."
			cmd.Env = append(os.Environ(), tc.env...)
			start := time.Now()
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run failed after %v: %v\noutput:\n%s", time.Since(start), err, out)
			}
			text := string(out)
			if strings.TrimSpace(text) == "" {
				t.Fatal("example produced no output")
			}
			for _, bad := range []string{"NaN", "nan", "+Inf", "-Inf", "panic:"} {
				if strings.Contains(text, bad) {
					t.Errorf("output contains %q:\n%s", bad, text)
				}
			}
		})
	}
}
