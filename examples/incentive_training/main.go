// Incentive training: train the MSP's PPO pricing agent under incomplete
// information (the paper's Algorithm 1) and compare the learned policy
// against the complete-information Stackelberg equilibrium and the
// greedy/random baselines — a compact version of Fig. 2 plus the baseline
// comparison of Fig. 3(a).
//
// Run with: go run ./examples/incentive_training
// (≈200 episodes; takes a few seconds)
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"vtmig"
)

func main() {
	game := vtmig.DefaultGame()

	cfg := vtmig.DefaultDRLConfig()
	cfg.Episodes = 200
	// One training stream, so the checkpoint/resume split below is
	// bit-identical to a straight run end to end (with restarts, a
	// checkpoint pins only the winning restart's stream).
	cfg.Restarts = 1
	// VTMIG_EPISODES overrides the episode budget — the smoke tests run
	// this example with a handful of episodes to keep CI fast.
	if s := os.Getenv("VTMIG_EPISODES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			log.Fatalf("invalid VTMIG_EPISODES=%q", s)
		}
		cfg.Episodes = n
	}

	// Train in two legs through a full checkpoint to demonstrate
	// bit-identical resume (determinism contract rule 6): the first leg
	// stops halfway and persists its complete training state — weights,
	// Adam moments, RNG positions, environment streams — and the second
	// leg resumes it to the full budget. The combined run is bit-for-bit
	// the run a single uninterrupted training would have produced.
	half := cfg
	half.Episodes = cfg.Episodes / 2
	if half.Episodes < 1 {
		half.Episodes = 1
	}
	fmt.Printf("Training PPO pricing agent: %d of %d episodes × %d rounds...\n",
		half.Episodes, cfg.Episodes, cfg.Rounds)
	firstLeg, err := vtmig.TrainAgent(game, half)
	if err != nil {
		log.Fatal(err)
	}

	ckFile, err := os.CreateTemp("", "vtmig-ck-*.json")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(ckFile.Name())
	if err := firstLeg.Checkpoint.Save(ckFile); err != nil {
		log.Fatal(err)
	}
	if err := ckFile.Close(); err != nil {
		log.Fatal(err)
	}

	in, err := os.Open(ckFile.Name())
	if err != nil {
		log.Fatal(err)
	}
	ck, err := vtmig.LoadCheckpoint(in)
	in.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Checkpoint saved at episode %d; resuming to %d episodes...\n",
		ck.Meta.Episodes, cfg.Episodes)
	res, err := vtmig.ResumeTraining(game, cfg, ck)
	if err != nil {
		log.Fatal(err)
	}

	// Learning curve across both legs, decimated.
	curve := append(firstLeg.Episodes[:len(firstLeg.Episodes):len(firstLeg.Episodes)], res.Episodes...)
	fmt.Println("\nepisode  return (max", cfg.Rounds, "= matching the best utility every round)")
	for i := 0; i < len(curve); i += 25 {
		e := curve[i]
		fmt.Printf("%7d  %6.1f\n", e.Episode, e.Return)
	}

	eq := res.OracleOutcome
	fmt.Printf("\nLearned price:   %6.2f   (equilibrium %6.2f)\n", res.EvalPrice, eq.Price)
	fmt.Printf("Learned utility: %6.3f   (equilibrium %6.3f)\n",
		res.EvalOutcome.MSPUtility, eq.MSPUtility)

	for _, name := range []string{"greedy", "random"} {
		u, err := vtmig.RunBaseline(game, name, cfg.Rounds, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Baseline %-7s %6.3f (mean utility per round)\n", name+":", u)
	}
}
