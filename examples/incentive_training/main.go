// Incentive training: train the MSP's PPO pricing agent under incomplete
// information (the paper's Algorithm 1) and compare the learned policy
// against the complete-information Stackelberg equilibrium and the
// greedy/random baselines — a compact version of Fig. 2 plus the baseline
// comparison of Fig. 3(a).
//
// Run with: go run ./examples/incentive_training
// (≈200 episodes; takes a few seconds)
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"vtmig"
)

func main() {
	game := vtmig.DefaultGame()

	cfg := vtmig.DefaultDRLConfig()
	cfg.Episodes = 200
	// VTMIG_EPISODES overrides the episode budget — the smoke tests run
	// this example with a handful of episodes to keep CI fast.
	if s := os.Getenv("VTMIG_EPISODES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			log.Fatalf("invalid VTMIG_EPISODES=%q", s)
		}
		cfg.Episodes = n
	}

	fmt.Printf("Training PPO pricing agent for %d episodes × %d rounds...\n",
		cfg.Episodes, cfg.Rounds)
	res, err := vtmig.TrainAgent(game, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Learning curve, decimated.
	fmt.Println("\nepisode  return (max", cfg.Rounds, "= matching the best utility every round)")
	for i := 0; i < len(res.Episodes); i += 25 {
		e := res.Episodes[i]
		fmt.Printf("%7d  %6.1f\n", e.Episode, e.Return)
	}

	eq := res.OracleOutcome
	fmt.Printf("\nLearned price:   %6.2f   (equilibrium %6.2f)\n", res.EvalPrice, eq.Price)
	fmt.Printf("Learned utility: %6.3f   (equilibrium %6.3f)\n",
		res.EvalOutcome.MSPUtility, eq.MSPUtility)

	for _, name := range []string{"greedy", "random"} {
		u, err := vtmig.RunBaseline(game, name, cfg.Rounds, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Baseline %-7s %6.3f (mean utility per round)\n", name+":", u)
	}
}
