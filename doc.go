// Package vtmig is a Go reproduction of "Learning-based Incentive
// Mechanism for Task Freshness-aware Vehicular Twin Migration"
// (Zhang et al., ICDCS 2023, arXiv:2309.04929).
//
// The library implements, from scratch on the standard library:
//
//   - the Age of Twin Migration (AoTM) freshness metric and the VMU
//     immersion model (internal/aotm);
//   - the wireless substrate: path loss, SNR, spectral efficiency, and an
//     OFDMA bandwidth allocator (internal/channel);
//   - the AoTM-based Stackelberg game between a monopolist Metaverse
//     Service Provider and N Vehicular Metaverse Users, with closed-form
//     and numeric equilibrium solvers and a Definition-1 verifier
//     (internal/stackelberg);
//   - the POMDP formulation of the game under incomplete information
//     (internal/pomdp) and a full PPO/GAE deep-reinforcement-learning
//     stack, including the neural-network substrate with manual
//     backpropagation (internal/nn, internal/rl), built on an
//     allocation-free batched linear-algebra kernel layer (internal/mat);
//   - the comparison schemes (random, greedy, fixed, oracle) of the
//     evaluation (internal/baselines);
//   - pre-copy live migration, highway mobility, and an end-to-end
//     discrete-event vehicular-metaverse simulator (internal/migration,
//     internal/mobility, internal/sim), whose MSP can deploy the trained
//     agent frozen (sim.NewDRLPricer) or keep it learning online from the
//     live pricing rounds (sim.NewOnlinePricer over rl.StreamCollector);
//   - the paper's future-work extension to multiple competing MSPs
//     (internal/multimsp);
//   - a journaled online-pricing daemon (internal/serve behind
//     cmd/vtmig-serve, load-tested by cmd/vtmig-loadgen) that puts the
//     online pricer behind live HTTP traffic with audit-grade
//     crash recovery;
//   - a declarative scenario layer (internal/scenario behind vtmig-sim
//     -scenario): strict JSON/TOML workload files — Manhattan-grid
//     mobility, vehicle churn, heterogeneous vehicle classes, RSU
//     outages, day/night demand cycles — compiled deterministically into
//     simulator configurations;
//   - and a harness that regenerates every figure of the evaluation
//     (internal/experiments).
//
// This root package re-exports the most commonly used entry points so
// that typical applications only import "vtmig". The runnable programs
// live under cmd/ and examples/.
//
// # Performance architecture
//
// The training hot path is allocation-free in steady state. internal/mat
// provides destination-passing GEMM kernels (MulTo, MulABTTo,
// MulATBAddTo) whose accumulation order is fixed per destination element,
// internal/nn adds batched forward/backward passes that reuse per-layer
// scratch across minibatches, and the PPO learner pushes every minibatch
// through the network as one batched pass. PPO minibatches additionally
// shard across workers (PPOConfig.Shards): each shard runs the per-row
// forward/backward work on a clone of the network sharing the parameters,
// and the cross-row gradient sums reduce serially in fixed shard order.
// The Stackelberg evaluation is destination-passing as well
// (Game.EvaluateInto / Game.SolveInto over an EvalScratch), which keeps
// the per-round follower response inside the POMDP's Step free of report
// allocations. Algorithm 1's collection phase is vectorized
// (rl.VecEnv / rl.VecCollector / rl.NewVecTrainer): episode blocks step
// W independently seeded environment instances in lockstep, the policy
// is evaluated for every live env in one batched pass per round, and the
// env stepping fans out across collection workers. The online-learning
// path reuses the same machinery: rl.StreamCollector accumulates
// externally produced transitions (the simulator's pricing rounds) into
// the arena-backed rollout and triggers the same sharded optimization
// phases, so continual learning inside the simulator stays
// allocation-free in steady state too. Experiment fan-outs (restarts,
// seed studies, sweep points, ablation cells, online-study arms) run
// through a shared bounded, context-cancellable worker pool in
// internal/experiments.
//
// # Checkpointing
//
// Training state persists through a versioned checkpoint format
// (nn.Checkpoint, version 2): parameter values, per-parameter Adam
// moments and the optimizer step count, the policy RNG stream — as a
// (seed, advance-count) pair over a counting source
// (mathx.CountingSource) plus, since version 2, the generator's captured
// lagged-Fibonacci state vector, so restore is an O(1) reconstruction
// instead of an O(calls) replay — each training-environment stream's
// state (RNG position plus the running-best reference of Eq. 12), and
// training metadata (episode count, configuration fingerprint). A
// checkpoint written by sim.OnlinePricer.Snapshot additionally carries
// the version-2 pricer section: the POMDP encoder's belief window, the
// current observation, the best-price tracker, the stream-collector
// round/update counters, and the pricer hyper-parameters — everything
// sim.NewOnlinePricerFromCheckpoint needs to continue the same
// simulation stream bit-identically. Snapshots are taken at
// episode-block boundaries (rl.PPO.Snapshot, rl.Trainer.Snapshot,
// experiments.TrainResult.Checkpoint) and at online update boundaries
// (sim.OnlinePricer.Snapshot, its SnapshotEvery hook), and restores are
// strict: unknown, missing, mis-sized, empty, or non-finite entries are
// rejected before anything is applied, so a checkpoint from a different
// architecture or a hand-edited file fails loudly. Version negotiation
// is checked in both directions: version-2-only sections (RNG state
// vectors, the pricer section) are rejected on older versions, while
// legacy version-0 params-only files still load for weight-only warm
// starts (rl.PPO.RestoreWeights) and version-1 files restore through
// counted replay.
//
// Checkpoints serialize as JSON (Checkpoint.Save) or as a compact binary
// encoding (Checkpoint.SaveBinary) — "vtck" magic, little-endian version,
// tagged sections in fixed order (params, optimizer, RNG, envs, meta,
// pricer), uvarint lengths with hard caps against hostile inputs, and a
// CRC-32 trailer so truncation and bit corruption fail loudly. The
// binary form is ~2.7x smaller and an order of magnitude faster to
// encode and decode than the JSON form; nn.LoadCheckpoint auto-detects
// either encoding by the leading magic. Resume entry points:
// rl.ResumeTrainer, experiments.ResumeAgent,
// sim.NewOnlinePricerFromCheckpoint, vtmig-train -resume, vtmig-sim
// -warm-start-file (with -snapshot-every/-snapshot-out writing mid-run
// resume checkpoints).
//
// # Serving
//
// internal/serve (cmd/vtmig-serve) puts the online pricer behind a
// long-running request/response front end, layered so each concern is a
// separate, separately testable component:
//
//   - Intake: concurrent quote requests funnel through one serializing
//     intake goroutine that also forms batches at the natural queue
//     boundary — whatever requests are waiting when the loop turns (up to
//     Config.BatchMax) become one arrival-ordered batch. Learning
//     transitions therefore enter the stream strictly in arrival order —
//     rule 5 of the determinism contract applied at a process boundary.
//   - Engine: a pure pricing core that maps (state, ordered batch) to
//     (state, responses, journal entries). Per-request validation, game
//     construction, and the shaped-reward oracle solve (which consume no
//     RNG) fan out across worker goroutines in arrival-order slots, while
//     the policy/belief/learning pass stays strictly serial — the belief
//     window chains each round's observation through the previous round's
//     outcome, so the serial core is what makes any batch size
//     bit-identical to one-at-a-time intake (contract rule 8 below).
//   - Persistence: every accepted round is staged to a JSONL write-ahead
//     journal and the whole batch is flushed in one write before any of
//     its quotes is acknowledged (acknowledged ⇒ durable), while the
//     pricer's SnapshotEvery hook rotates full binary checkpoints at
//     optimization-phase boundaries, truncating the journal to extend the
//     new checkpoint. The journal header binds its checkpoint by snapshot
//     ordinal and file CRC-32 plus a fingerprint of the reference game,
//     so recovery is rule 6's strictly-or-not-at-all: reopening the state
//     directory restores the bound checkpoint and replays the journaled
//     rounds through the identical engine path — same quotes, same
//     learner weights, bit for bit — while a journal whose checkpoint is
//     missing, mismatched, or corrupt refuses loudly instead of
//     cold-starting (FuzzJournalRecover drives hostile journal bytes
//     through the full recovery path). The only tolerated irregularity is
//     a torn trailing journal line (a crash mid-append): that quote was
//     never acknowledged, so dropping it reconstructs exactly the state
//     every answered quote saw.
//   - Read replicas: serve.OpenReplica (vtmig-serve -replica-of) scales
//     quote reads horizontally by freezing the primary's latest rotated
//     checkpoint into a sim.FrozenPricer — the deterministic mean-price
//     readout of the checkpointed belief state, clamped per round, with
//     no RNG and no learning — and re-freezing on a refresh cadence as
//     the primary rotates. A replica's answer is byte-identical to the
//     price the primary posts for its first round after the same
//     snapshot, and /v1/stats reports the replica's staleness
//     (checkpoint age plus the frozen round/update ordinals). Replicas
//     never write to the state directory.
//
// The HTTP front end (serve.NewHTTPServer) bounds header reads and idle
// connections, and both primary and replica serve the same /v1/quote,
// /v1/stats, /healthz surface. `make serve-smoke` pins the batched
// crash-recovery bit-identity, the rule-8 batch×workers tables, and the
// replica identity under the race detector; cmd/vtmig-loadgen records
// serving throughput and latency percentiles — per target, across a
// primary and its replicas — into the BENCH_pr*.json files.
//
// # Scenarios
//
// internal/scenario is the simulator's declarative workload layer: a
// scenario is a named, self-contained description of one simulation —
// road world, fleet, churn, outages, demand cycle, and the MSP pricer —
// stated as what it changes about the default 6-vehicle highway world.
// Scenario files are strict JSON or TOML (a dependency-free subset
// parser funnels TOML through the same JSON schema, so both formats
// share one unknown-field policy); loading validates everything, so a
// loaded scenario always compiles. Compilation is deterministic:
// the same (schema, seed) always yields the same sim.Config, including
// the expansion of generator blocks like OutageGen, whose windows are
// drawn from a dedicated splitmix64-derived stream
// (mathx.SplitMix64) that never collides with the simulation's own
// draws. The pricer side is declarative too: sim.PricerSpec names a
// registered builder ("oracle", "fixed", "random", plus "drl" and
// "online" from the experiments layer) with zero-valued fields adopting
// defaults or checkpoint metadata, and scenario files, vtmig-sim, and
// vtmig-serve all build pricers through this one registry
// (sim.NewPricerFromSpec). The committed matrix under
// testdata/scenarios/ — static highway, urban grid, churn, outages,
// demand cycle, and the combined non-stationary workload — is pinned by
// per-pricer golden reports in internal/scenario/testdata, and
// experiments.RunNonstationaryStudy uses the scenario layer to measure
// whether online continual learning beats a frozen agent by a wider
// margin when the workload actually drifts. Entry points:
// vtmig.LoadScenario / vtmig.RunScenario, scenario.Load,
// Scenario.Compile, and vtmig-sim -scenario (workload flags conflict
// explicitly; -verbose, -trace, and the snapshot flags still apply).
//
// # Fleet-scale sharding
//
// The simulator scales to metropolitan fleets by sharding the vehicle
// phase across regions (sim.Config.Shards / sim.ShardConfig): the RSU
// lattice splits into ShardConfig.Regions contiguous, balanced index
// blocks, every vehicle is resident in the region of its serving RSU,
// and each tick steps the regions' residents on one goroutine per
// region. The parallel phase covers exactly the per-vehicle work —
// kinematics, sensing delivery, staged serving-RSU lookup — while
// vehicles that cross a region boundary stage into per-shard outboxes
// that drain in fixed shard-index order, and everything stateful
// (handover collection, the Stackelberg pricing round, the bandwidth
// pool) stays serial in global fleet order. That split is what makes
// the shard count a pure throughput knob (determinism contract rule 7
// below). Memory and allocations stay flat as the fleet grows: reports
// aggregate streamingly as migrations complete
// (Config.DiscardMigrationRecords drops the per-migration records for
// fleet-scale runs while leaving every aggregate untouched), sensing
// histories compact behind aoi.NewBoundedProcess, the round game reuses
// one scratch across pricing rounds, and the admission hot paths
// (channel.OFDMAAllocator.TryAllocate, rsu.Cluster.TryPlaceOn/TryPlace)
// reject without constructing errors. The committed
// testdata/scenarios/metro-10k.json — a 12×16 RSU grid serving 10,000
// vehicles under churn and generated outages — runs end to end in
// seconds (vtmig-sim -scenario testdata/scenarios/metro-10k.json
// -shards 8), is pinned by the scenario golden matrix like every other
// committed scenario, and is measured by BenchmarkSimFleetSharded with
// the steady-state allocation gate in
// internal/sim/steady_alloc_test.go. The rule-7 bit-identity tables
// (`make race-shardsim`) compare sharded against serial runs across
// region counts and GOMAXPROCS values at simulator, scenario, and
// online-learning level, and FuzzShardPartition stresses the partition
// invariants under randomized grids, churn, and outages.
//
// # Determinism contract
//
// The same seed yields the same figures, bit for bit. Eight rules
// enforce it:
//
//  1. Batched kernels accumulate in exactly the order of the
//     sample-at-a-time loops they replaced (k-ascending, one accumulator
//     per destination element; row-ascending gradient accumulation).
//  2. Parallel experiment tasks are independently seeded with results
//     assembled in input order.
//  3. Sharded gradient accumulation reduces per-worker buffers in fixed
//     shard order: shards are contiguous row ranges, workers perform only
//     per-row computation, and every cross-row sum runs in the serial
//     reduction with the same row-ascending kernels as the serial pass —
//     so any shard count yields bit-identical weights regardless of
//     GOMAXPROCS.
//  4. Vectorized collection merges independently seeded per-env streams
//     in fixed env-index order: the per-round policy evaluation is one
//     batched pass over the live envs ascending, action sampling consumes
//     the single policy RNG serially in that same order, collection
//     workers perform only per-env stepping into per-env staging buffers,
//     and the merge replays the staged transitions env-ascending with
//     per-env GAE segments — so any worker count yields rollouts (and
//     training runs) bit-identical to serial collection regardless of
//     GOMAXPROCS, and a single-env vectorized trainer is bit-identical to
//     the classic serial collect loop.
//  5. Online continual learning adds no ordering of its own: externally
//     produced transitions enter the rollout strictly in
//     simulator-round order (the producing loop is serial and the
//     rl.StreamCollector consumes no RNG), and every online optimization
//     phase runs through the rule-3 sharded reduction — so a fixed
//     simulator seed yields a bit-identical sim.Report and bit-identical
//     final network weights regardless of CollectWorkers (of the
//     warm-start training), the learner's shard count, and GOMAXPROCS.
//  6. Checkpoint/resume carries the COMPLETE training state — parameter
//     values, per-parameter Adam moments and step count, the policy RNG
//     stream position, and every environment stream's RNG position and
//     running-best reference — with RNG streams restored from their
//     captured generator state in O(1) (version-1 files fall back to
//     replaying a counted source to its recorded position). Training K
//     episodes, snapshotting at an episode-block boundary, restoring
//     into freshly built environments and learner, and training K more
//     is then bit-identical to training 2K straight; the throughput
//     knobs (CollectWorkers, shard count, GOMAXPROCS) may even change
//     between the legs. The same holds at simulator level: an online
//     pricer snapshot additionally carries the encoder belief window,
//     current observation, best tracker, and stream counters, so running
//     a simulation to an update boundary, snapshotting, restoring with
//     NewOnlinePricerFromCheckpoint, and finishing the run is
//     bit-identical — same sim.Report, same final weights — to never
//     having stopped. A full restore requires every section — and a
//     matching learner-hyper-parameter fingerprint — or fails before the
//     agent is touched, so a partial state can never silently cold-start
//     (the pre-PR-5 params-only restore did exactly that for the Adam
//     moments and the policy RNG, and the pre-PR-6 online snapshot
//     dropped the pricer-side state the same way).
//  7. Region-sharded simulation is a throughput knob, not a workload
//     dimension: with sim.ShardConfig the RSU lattice splits into
//     contiguous regions and each region's resident vehicles step on
//     their own goroutine, but the vehicle phase touches only
//     per-vehicle state and per-vehicle RNG streams, cross-region
//     handoffs apply in fixed shard-index order, and handover
//     collection and pricing stay serial in global fleet order — so any
//     region count (zero, one, more regions than RSUs) under any
//     GOMAXPROCS yields a bit-identical sim.Report, event trace, and
//     (for an online pricer) final network weights. The shard count
//     therefore composes freely with everything above: scenario files
//     may suggest one (Scenario.Shards) and vtmig-sim -shards may
//     override it without touching results.
//  8. Serving batch size is a pure throughput knob, not a semantic one:
//     the intake loop may cut the arrival-ordered request stream into
//     batches of any size (Config.BatchMax) and fan the pure per-request
//     prework — validation, game construction, the shaped-reward oracle
//     solve, none of which consume RNG — across any number of workers in
//     arrival-order slots, but journal entries are staged in arrival
//     order and flushed once per batch before any acknowledgement, and
//     the policy/belief/learning core runs strictly serially in that
//     same order — so any batch size under any GOMAXPROCS yields
//     bit-identical responses, journal bytes, and learner weights to
//     one-at-a-time intake. Read replicas are the same rule across
//     processes: a replica frozen at snapshot ordinal k answers with
//     exactly the price the primary posts for its first round after
//     rotation k — same float bits — because the frozen readout is the
//     deterministic mean of the checkpointed belief state, which the
//     request cannot perturb.
//
// The golden-file tests under internal/experiments/testdata pin the exact
// fixed-seed outputs of every figure pipeline, those under
// internal/sim/testdata the per-pricer simulator reports, those under
// internal/scenario/testdata the committed scenario matrix (7 scenarios
// × 3 analytic pricers, the 10,000-vehicle metro-10k included), and the
// determinism tests in internal/rl, internal/pomdp, internal/sim, and
// internal/stackelberg pin the rules at unit level (rule 6 by the
// resume-equality tables in internal/rl/resume_test.go,
// internal/pomdp/resume_test.go, internal/experiments/resume_test.go,
// and — at simulator level — internal/sim/online_resume_test.go;
// `make race-resume` runs them under the race detector; rule 8 by the
// batch×workers bit-identity tables and the replica byte-identity tests
// in internal/serve and the chunked-quote tables in
// internal/sim/frozen_test.go, all under `make serve-smoke`'s race
// pass). Regenerate the golden files after an
// intentional numeric change with
//
//	go test ./internal/experiments -run Golden -update
//	go test ./internal/sim -run Golden -update
//	go test ./internal/scenario -run Golden -update
//
// (`make golden` runs all three.)
//
// # Benchmarks
//
// The per-figure benchmarks and the kernel/PPO microbenchmarks live in
// bench_test.go at the repository root:
//
//	go test -run '^$' -bench . -benchmem
//
// BENCH_seed.json records the frozen seed baseline and BENCH_pr*.json the
// measured state after each performance PR.
package vtmig
