// Package vtmig is a Go reproduction of "Learning-based Incentive
// Mechanism for Task Freshness-aware Vehicular Twin Migration"
// (Zhang et al., ICDCS 2023, arXiv:2309.04929).
//
// The library implements, from scratch on the standard library:
//
//   - the Age of Twin Migration (AoTM) freshness metric and the VMU
//     immersion model (internal/aotm);
//   - the wireless substrate: path loss, SNR, spectral efficiency, and an
//     OFDMA bandwidth allocator (internal/channel);
//   - the AoTM-based Stackelberg game between a monopolist Metaverse
//     Service Provider and N Vehicular Metaverse Users, with closed-form
//     and numeric equilibrium solvers and a Definition-1 verifier
//     (internal/stackelberg);
//   - the POMDP formulation of the game under incomplete information
//     (internal/pomdp) and a full PPO/GAE deep-reinforcement-learning
//     stack, including the neural-network substrate with manual
//     backpropagation (internal/nn, internal/rl);
//   - the comparison schemes (random, greedy, fixed, oracle) of the
//     evaluation (internal/baselines);
//   - pre-copy live migration, highway mobility, and an end-to-end
//     discrete-event vehicular-metaverse simulator (internal/migration,
//     internal/mobility, internal/sim);
//   - the paper's future-work extension to multiple competing MSPs
//     (internal/multimsp);
//   - and a harness that regenerates every figure of the evaluation
//     (internal/experiments).
//
// This root package re-exports the most commonly used entry points so
// that typical applications only import "vtmig". The runnable programs
// live under cmd/ and examples/.
package vtmig
