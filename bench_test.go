// Benchmarks: one per figure of the paper's evaluation (the harness that
// regenerates each panel), plus microbenchmarks of the hot paths.
//
// The per-figure benchmarks run reduced-size trainings per iteration so
// that `go test -bench=.` completes quickly; the full-size runs are
// produced by cmd/vtmig-experiments (see EXPERIMENTS.md for the recorded
// outputs).
package vtmig_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"vtmig"
	"vtmig/internal/experiments"
	"vtmig/internal/mat"
	"vtmig/internal/nn"
	"vtmig/internal/pomdp"
	"vtmig/internal/rl"
	"vtmig/internal/scenario"
	"vtmig/internal/serve"
	"vtmig/internal/sim"
	"vtmig/internal/stackelberg"
)

// benchCfg returns a reduced DRL configuration for benchmark iterations.
func benchCfg() experiments.DRLConfig {
	cfg := experiments.DefaultDRLConfig()
	cfg.Episodes = 5
	cfg.Rounds = 40
	return cfg
}

// BenchmarkFig2aReturnConvergence regenerates Fig. 2(a): per-episode
// return of the DRL incentive mechanism on the two-VMU benchmark.
func BenchmarkFig2aReturnConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.Seed = int64(i + 1)
		res, err := experiments.RunFig2(stackelberg.DefaultGame(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Return.Len() != cfg.Episodes {
			b.Fatal("missing return curve")
		}
	}
}

// BenchmarkFig2bUtilityConvergence regenerates Fig. 2(b): the MSP's
// utility converging to the Stackelberg equilibrium.
func BenchmarkFig2bUtilityConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.Seed = int64(i + 1)
		res, err := experiments.RunFig2(stackelberg.DefaultGame(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Utility.Len() != cfg.Episodes || res.OracleUtility <= 0 {
			b.Fatal("missing utility curve")
		}
	}
}

// BenchmarkFig3aCostSweep regenerates Fig. 3(a): MSP utility and price vs
// transmission cost, DRL vs equilibrium vs greedy vs random.
func BenchmarkFig3aCostSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.Seed = int64(i + 1)
		res, err := experiments.RunCostSweep([]float64{5, 7, 9}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Fig3a.Rows) != 3 {
			b.Fatal("missing fig3a rows")
		}
	}
}

// BenchmarkFig3bVMUCostSweep regenerates Fig. 3(b): total VMU utility and
// bandwidth vs transmission cost.
func BenchmarkFig3bVMUCostSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.Seed = int64(i + 1)
		res, err := experiments.RunCostSweep([]float64{5, 7, 9}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Fig3b.Rows) != 3 {
			b.Fatal("missing fig3b rows")
		}
	}
}

// BenchmarkFig3cVMUCountSweep regenerates Fig. 3(c): MSP utility and price
// vs the number of VMUs (capacity-binding regime included).
func BenchmarkFig3cVMUCountSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.Seed = int64(i + 1)
		res, err := experiments.RunVMUSweep([]int{2, 6}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Fig3c.Rows) != 2 {
			b.Fatal("missing fig3c rows")
		}
	}
}

// BenchmarkFig3dAvgVMUSweep regenerates Fig. 3(d): average VMU utility and
// bandwidth vs the number of VMUs.
func BenchmarkFig3dAvgVMUSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.Seed = int64(i + 1)
		res, err := experiments.RunVMUSweep([]int{2, 6}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Fig3d.Rows) != 2 {
			b.Fatal("missing fig3d rows")
		}
	}
}

// BenchmarkAblationHistory regenerates the observation-history ablation.
func BenchmarkAblationHistory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.Seed = int64(i + 1)
		if _, err := experiments.RunHistoryAblation([]int{1, 4}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationReward regenerates the binary-vs-shaped reward
// ablation.
func BenchmarkAblationReward(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.Seed = int64(i + 1)
		if _, err := experiments.RunRewardAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFollowerSolvers regenerates the closed-form vs
// iterated-best-response solver comparison.
func BenchmarkFollowerSolvers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.RunSolverAblation(); len(tab.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkAblationMultiMSP regenerates the monopoly-vs-competition
// ablation (the paper's future-work extension).
func BenchmarkAblationMultiMSP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunMultiMSPAblation([]int{1, 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- microbenchmarks of the hot paths ---

// BenchmarkStackelbergSolve measures the constrained equilibrium solver.
func BenchmarkStackelbergSolve(b *testing.B) {
	g := stackelberg.DefaultGame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eq := g.Solve()
		if eq.Price <= 0 {
			b.Fatal("bad solve")
		}
	}
}

// BenchmarkBestResponses measures the follower best-response evaluation
// (the inner loop of every pricing round).
func BenchmarkBestResponses(b *testing.B) {
	g := stackelberg.DefaultGame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if d := g.BestResponses(25.3); len(d) != 2 {
			b.Fatal("bad demands")
		}
	}
}

// BenchmarkPPOSelectAction measures one policy forward + sampling pass.
func BenchmarkPPOSelectAction(b *testing.B) {
	env := newBenchEnv(b)
	lo, hi := env.ActionBounds()
	agent := rl.NewPPO(env.ObsDim(), env.ActDim(), lo, hi, rl.DefaultPPOConfig())
	obs := env.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, v := agent.SelectAction(obs); v != v {
			b.Fatal("NaN value")
		}
	}
}

// BenchmarkPPOUpdate measures one optimization phase over a K=100 buffer.
func BenchmarkPPOUpdate(b *testing.B) {
	env := newBenchEnv(b)
	lo, hi := env.ActionBounds()
	agent := rl.NewPPO(env.ObsDim(), env.ActDim(), lo, hi, rl.DefaultPPOConfig())
	buf := rl.NewRollout(100)
	obs := env.Reset()
	for k := 0; k < 100; k++ {
		raw, envAct, logP, value := agent.SelectAction(obs)
		next, reward, done := env.Step(envAct)
		buf.Add(obs, raw, logP, reward, value, done)
		obs = next
		if done {
			obs = env.Reset()
		}
	}
	buf.ComputeGAE(0.95, 0.95, 0)
	agent.Update(buf) // warm-up: grows minibatch scratch and Adam state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Update(buf)
	}
}

// BenchmarkPPOUpdateSharded measures one optimization phase with sharded
// gradient accumulation over a 400-step buffer and 100-row minibatches —
// the workload where per-shard GEMMs are large enough to amortize the
// fan-out. shards=1 is the serial reference; every shard count produces
// bit-identical weights (see the determinism contract), so the comparison
// is purely about throughput.
func BenchmarkPPOUpdateSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			env := newBenchEnv(b)
			cfg := rl.DefaultPPOConfig()
			cfg.MiniBatch = 100
			cfg.Shards = shards
			lo, hi := env.ActionBounds()
			agent := rl.NewPPO(env.ObsDim(), env.ActDim(), lo, hi, cfg)
			buf := rl.NewRollout(400)
			obs := env.Reset()
			for k := 0; k < 400; k++ {
				raw, envAct, logP, value := agent.SelectAction(obs)
				next, reward, done := env.Step(envAct)
				buf.Add(obs, raw, logP, reward, value, done)
				obs = next
				if done {
					obs = env.Reset()
				}
			}
			buf.ComputeGAE(0.95, 0.95, 0)
			agent.Update(buf) // warm-up: grows worker and minibatch scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agent.Update(buf)
			}
		})
	}
}

// newBenchVecEnv builds n independently seeded copies of the paper's
// POMDP for collection benchmarks.
func newBenchVecEnv(b *testing.B, n int) *rl.EnvSlice {
	b.Helper()
	vec, err := pomdp.NewVecEnv(pomdp.Config{
		Game:       stackelberg.DefaultGame(),
		HistoryLen: 4,
		Rounds:     100,
		Reward:     pomdp.RewardBinary,
		Seed:       1,
	}, n)
	if err != nil {
		b.Fatal(err)
	}
	return vec
}

// BenchmarkCollect measures Algorithm 1's collection phase in isolation
// (no optimization): 100 rounds of experience per op. serial-loop is the
// classic per-step SelectAction/Step/Add sequence; the envs=W cases run
// the VecCollector, whose per-round policy evaluation is one batched pass
// over all live envs. Note the per-op work scales with the env count
// (envs=4 collects 400 transitions per op, so compare ns/op ÷ envs);
// every worker count produces bit-identical rollouts (determinism
// contract rule 4), so the worker axis is purely about throughput.
func BenchmarkCollect(b *testing.B) {
	b.Run("serial-loop", func(b *testing.B) {
		env := newBenchEnv(b)
		lo, hi := env.ActionBounds()
		agent := rl.NewPPO(env.ObsDim(), env.ActDim(), lo, hi, rl.DefaultPPOConfig())
		buf := rl.NewRollout(100)
		op := func() {
			buf.Reset()
			obs := env.Reset()
			for k := 0; k < 100; k++ {
				raw, envAct, logP, value := agent.SelectAction(obs)
				next, reward, done := env.Step(envAct)
				buf.Add(obs, raw, logP, reward, value, done || k == 99)
				obs = next
				if done {
					break
				}
			}
			buf.ComputeGAE(0.95, 0.95, 0)
		}
		op() // warm-up grows arenas and scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
	for _, tc := range []struct{ envs, workers int }{{1, 1}, {4, 1}, {4, 4}} {
		b.Run(fmt.Sprintf("envs=%d/workers=%d", tc.envs, tc.workers), func(b *testing.B) {
			vec := newBenchVecEnv(b, tc.envs)
			lo, hi := vec.ActionBounds()
			agent := rl.NewPPO(vec.ObsDim(), vec.ActDim(), lo, hi, rl.DefaultPPOConfig())
			col := rl.NewVecCollector(vec, agent, tc.workers)
			buf := rl.NewRollout(100 * tc.envs)
			op := func() {
				buf.Reset()
				col.Begin(tc.envs)
				for k := 0; k < 100 && col.Live() > 0; k++ {
					col.Step(k == 99)
				}
				col.Merge(buf)
			}
			op() // warm-up grows staging buffers, matrices, workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op()
			}
		})
	}
}

// BenchmarkTrainerEpisode measures one full episode block of Algorithm 1
// — collection plus the interleaved PPO optimization phases — through the
// Trainer. envs=1 is the paper's serial loop; envs=4 trains four episodes
// per op in lockstep (compare ns/op ÷ envs for per-episode cost).
func BenchmarkTrainerEpisode(b *testing.B) {
	for _, tc := range []struct{ envs, workers int }{{1, 1}, {4, 1}, {4, 4}} {
		b.Run(fmt.Sprintf("envs=%d/workers=%d", tc.envs, tc.workers), func(b *testing.B) {
			vec := newBenchVecEnv(b, tc.envs)
			lo, hi := vec.ActionBounds()
			agent := rl.NewPPO(vec.ObsDim(), vec.ActDim(), lo, hi, rl.DefaultPPOConfig())
			trainer := rl.NewVecTrainer(vec, agent, rl.TrainerConfig{
				Episodes:         tc.envs, // exactly one lockstep block per Run
				RoundsPerEpisode: 100,
				UpdateEvery:      20,
				CollectWorkers:   tc.workers,
			})
			trainer.Run() // warm-up
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				trainer.Rewind() // each Run measures one full episode block
				trainer.Run()
			}
		})
	}
}

// BenchmarkSnapshot measures a full training snapshot — weights, Adam
// moments, RNG positions, env streams — at the end of a short training
// (the per-call cost of the online pricer's SnapshotEvery hook and of
// TrainResult.Checkpoint).
func BenchmarkSnapshot(b *testing.B) {
	vec := newBenchVecEnv(b, 1)
	lo, hi := vec.ActionBounds()
	agent := rl.NewPPO(vec.ObsDim(), vec.ActDim(), lo, hi, rl.DefaultPPOConfig())
	trainer := rl.NewVecTrainer(vec, agent, rl.TrainerConfig{
		Episodes: 2, RoundsPerEpisode: 40, UpdateEvery: 20,
	})
	trainer.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trainer.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResume measures a full restore into a freshly built trainer —
// strict state application plus the O(1) reconstruction of the counted
// RNG streams from their captured generator state (legacy checkpoints
// without the state replay the stream instead).
func BenchmarkResume(b *testing.B) {
	vec := newBenchVecEnv(b, 1)
	lo, hi := vec.ActionBounds()
	agent := rl.NewPPO(vec.ObsDim(), vec.ActDim(), lo, hi, rl.DefaultPPOConfig())
	tcfg := rl.TrainerConfig{Episodes: 2, RoundsPerEpisode: 40, UpdateEvery: 20}
	rl.NewVecTrainer(vec, agent, tcfg).Run()
	ck, err := agent.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	target := rl.NewPPO(vec.ObsDim(), vec.ActDim(), lo, hi, rl.DefaultPPOConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := target.Restore(ck); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCheckpoint builds a full training checkpoint (weights, optimizer,
// RNG state, meta) for the encoding benchmarks.
func benchCheckpoint(b *testing.B) *nn.Checkpoint {
	b.Helper()
	vec := newBenchVecEnv(b, 1)
	lo, hi := vec.ActionBounds()
	agent := rl.NewPPO(vec.ObsDim(), vec.ActDim(), lo, hi, rl.DefaultPPOConfig())
	rl.NewVecTrainer(vec, agent, rl.TrainerConfig{
		Episodes: 2, RoundsPerEpisode: 40, UpdateEvery: 20,
	}).Run()
	ck, err := agent.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	return ck
}

// BenchmarkCheckpointJSON measures encoding and decoding a full training
// checkpoint in the JSON format, reporting the encoded size.
func BenchmarkCheckpointJSON(b *testing.B) {
	ck := benchCheckpoint(b)
	var buf bytes.Buffer
	if err := ck.Save(&buf); err != nil {
		b.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		b.ReportMetric(float64(len(data)), "bytes")
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := ck.Save(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := nn.LoadCheckpoint(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCheckpointBinary measures the same checkpoint through the
// compact binary encoding — the size and decode-time advantage over JSON
// is the point of the format (see BENCH_pr6.json for recorded numbers).
func BenchmarkCheckpointBinary(b *testing.B) {
	ck := benchCheckpoint(b)
	var buf bytes.Buffer
	if err := ck.SaveBinary(&buf); err != nil {
		b.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		b.ReportMetric(float64(len(data)), "bytes")
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := ck.SaveBinary(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := nn.LoadCheckpoint(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEvaluate measures one equilibrium report for a posted price —
// the per-round cost inside every POMDP Step. The scratch variant is the
// hot path (0 allocs/op in steady state); the alloc variant is the
// legacy convenience entry point.
func BenchmarkEvaluate(b *testing.B) {
	g := stackelberg.DefaultGame()
	b.Run("scratch", func(b *testing.B) {
		var s stackelberg.EvalScratch
		g.EvaluateInto(&s, 25.3) // warm-up grows the scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if eq := g.EvaluateInto(&s, 25.3); eq.MSPUtility <= 0 {
				b.Fatal("bad evaluation")
			}
		}
	})
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if eq := g.Evaluate(25.3); eq.MSPUtility <= 0 {
				b.Fatal("bad evaluation")
			}
		}
	})
}

// BenchmarkSolveScratch measures the scratch-backed constrained
// equilibrium solver (0 allocs/op in steady state).
func BenchmarkSolveScratch(b *testing.B) {
	g := stackelberg.DefaultGame()
	var s stackelberg.EvalScratch
	g.SolveInto(&s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if eq := g.SolveInto(&s); eq.Price <= 0 {
			b.Fatal("bad solve")
		}
	}
}

// BenchmarkMLPForward measures the paper's 64×64 tanh network forward
// pass.
func BenchmarkMLPForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := nn.NewMLP("bench", []int{12, 64, 64, 1}, nn.ActTanh, rng)
	x := make([]float64, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := m.Forward(x); len(out) != 1 {
			b.Fatal("bad forward")
		}
	}
}

// BenchmarkMLPForwardBatch measures the batched-inference entry point on a
// PPO-minibatch-sized input (20 rows through the 64×64 tanh network).
func BenchmarkMLPForwardBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := nn.NewMLP("bench", []int{12, 64, 64, 1}, nn.ActTanh, rng)
	x := mat.New(20, 12)
	x.Randomize(rng, 1)
	m.ForwardBatch(x) // grow scratch outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := m.ForwardBatch(x); out.Rows != 20 {
			b.Fatal("bad batch forward")
		}
	}
}

// BenchmarkMLPBackwardBatch measures a full batched forward+backward pass,
// the per-minibatch cost of one PPO gradient accumulation.
func BenchmarkMLPBackwardBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := nn.NewMLP("bench", []int{12, 64, 64, 1}, nn.ActTanh, rng)
	x := mat.New(20, 12)
	x.Randomize(rng, 1)
	dy := mat.New(20, 1)
	dy.Fill(1)
	m.ForwardBatch(x)
	m.BackwardBatch(dy)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ForwardBatch(x)
		m.BackwardBatch(dy)
	}
}

// --- microbenchmarks of the mat kernel layer (PPO-minibatch shapes) ---

// benchKernelMats builds the operand shapes of the paper network's widest
// layer under a minibatch of 20: X 20×64, W 64×64, dY 20×64.
func benchKernelMats() (x, w, dy *mat.Matrix) {
	rng := rand.New(rand.NewSource(2))
	x = mat.New(20, 64)
	x.Randomize(rng, 1)
	w = mat.New(64, 64)
	w.Randomize(rng, 1)
	dy = mat.New(20, 64)
	dy.Randomize(rng, 1)
	return x, w, dy
}

// BenchmarkMatMulABTTo measures the batched forward kernel Y = X·Wᵀ.
func BenchmarkMatMulABTTo(b *testing.B) {
	x, w, _ := benchKernelMats()
	dst := mat.New(20, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.MulABTTo(dst, x, w)
	}
}

// BenchmarkMatMulTo measures the batched input-gradient kernel dX = dY·W.
func BenchmarkMatMulTo(b *testing.B) {
	_, w, dy := benchKernelMats()
	dst := mat.New(20, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.MulTo(dst, dy, w)
	}
}

// BenchmarkMatMulATBAddTo measures the batched weight-gradient kernel
// dW += dYᵀ·X.
func BenchmarkMatMulATBAddTo(b *testing.B) {
	x, _, dy := benchKernelMats()
	dst := mat.New(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.MulATBAddTo(dst, dy, x)
	}
}

// BenchmarkStreamCollect measures the online-learning collection path in
// isolation: one externally produced transition staged into the
// StreamCollector per op, including the amortized cost of the PPO
// optimization phase that fires every 20 transitions (the paper's |I|).
// Steady state is allocation-free like the rest of the training hot path.
func BenchmarkStreamCollect(b *testing.B) {
	env := newBenchEnv(b)
	lo, hi := env.ActionBounds()
	agent := rl.NewPPO(env.ObsDim(), env.ActDim(), lo, hi, rl.DefaultPPOConfig())
	col := rl.NewStreamCollector(agent, 20)
	obs := env.Reset()
	step := func() {
		raw, envAct, logP, value := agent.SelectAction(obs)
		next, reward, done := env.Step(envAct)
		col.Add(obs, raw, logP, reward, value, done, next)
		obs = next
		if done {
			obs = env.Reset()
		}
	}
	for i := 0; i < 40; i++ {
		step() // warm-up: grows arenas, minibatch scratch, Adam state
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// BenchmarkSimRoundOnline measures the online pricer's per-round cost
// inside the simulator's pricing loop: one PriceFor on the benchmark game
// — policy forward, per-round oracle solve and equilibrium evaluation,
// observation-window update, staging, and the amortized optimization
// phase every 20 rounds.
func BenchmarkSimRoundOnline(b *testing.B) {
	game := stackelberg.DefaultGame()
	pricer, err := sim.NewOnlinePricer(sim.OnlinePricerConfig{Game: game})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		pricer.PriceFor(game) // warm-up
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := pricer.PriceFor(game); p < game.Cost || p > game.PMax {
			b.Fatalf("price %g out of bounds", p)
		}
	}
}

// BenchmarkSimulationOnline measures a 60-second end-to-end simulator
// slice priced by a cold-started online learner (cf. BenchmarkSimulation
// for the oracle-priced reference).
func BenchmarkSimulationOnline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pricer, err := sim.NewOnlinePricer(sim.OnlinePricerConfig{
			Game: stackelberg.DefaultGame(),
			Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		cfg := sim.DefaultConfig()
		cfg.DurationS = 60
		cfg.Seed = int64(i + 1)
		cfg.Pricer = pricer
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		s.Run()
	}
}

// BenchmarkSimulation measures a 60-second end-to-end simulator slice.
func BenchmarkSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		cfg.DurationS = 60
		cfg.Seed = int64(i + 1)
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		s.Run()
	}
}

// benchScenarioTOML is a mid-size scenario exercising every workload
// dimension of the declarative layer: grid mobility, vehicle classes,
// churn, explicit + generated outages, and a demand cycle.
const benchScenarioTOML = `
name = "bench"
seed = 7
duration_s = 60.0

[mobility]
kind = "grid"
rows = 3
cols = 4
spacing_m = 400.0
radius_m = 300.0

[[classes]]
name = "sedan"
weight = 3.0

[[classes]]
name = "truck"
weight = 1.0
speed_min_mps = 8.0
speed_max_mps = 12.0

[churn]
arrival_rate_per_s = 0.05
mean_dwell_s = 120.0
max_vehicles = 12

[[outages]]
rsu = 2
start_s = 10.0
end_s = 25.0

[outage_gen]
count = 2
mean_duration_s = 20.0

[demand]
period_s = 30.0
day_fraction = 0.6
night_speed_factor = 0.5
night_sensing_factor = 2.0

[pricer]
name = "oracle"
`

// BenchmarkScenarioLoad measures the declarative layer's full load path
// on the mid-size scenario: TOML-subset parse, strict schema decode,
// validation, and the deterministic compile with generator expansion.
func BenchmarkScenarioLoad(b *testing.B) {
	data := []byte(benchScenarioTOML)
	for i := 0; i < b.N; i++ {
		s, err := scenario.Parse(data, scenario.FormatTOML)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.CompileConfig(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioSim measures a 60-second end-to-end slice of the
// mid-size scenario — the non-stationary counterpart of
// BenchmarkSimulation (grid handovers, churn spawns/despawns, outage
// re-homing, and demand modulation on top of the base simulator loop).
func BenchmarkScenarioSim(b *testing.B) {
	s, err := scenario.Parse([]byte(benchScenarioTOML), scenario.FormatTOML)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		sc := *s
		sc.Seed = int64(i + 1)
		cfg, err := sc.Compile(sim.PricerBuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		sm, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sm.Run()
	}
}

// BenchmarkSimFleetSharded measures the steady-state per-tick cost of the
// committed metro-scale scenario across fleet sizes and region counts.
// shards=0 is the serial simulator; rule 7 makes every region count
// bit-identical to it, so the axis is purely about throughput (on a
// single-core host the sharded rows just price the goroutine fan-out).
// Migration records are discarded by the scenario, so allocs/op reports
// the streaming-aggregation steady state, which must stay flat in fleet
// size.
func BenchmarkSimFleetSharded(b *testing.B) {
	base, err := scenario.Load("testdata/scenarios/metro-10k.json")
	if err != nil {
		b.Fatal(err)
	}
	for _, fleet := range []int{1000, 10000} {
		for _, regions := range []int{0, 4, 8} {
			b.Run(fmt.Sprintf("fleet=%d/shards=%d", fleet, regions), func(b *testing.B) {
				sc := *base
				sc.Vehicles = fleet
				sc.Shards = regions
				// Churn off: the timed window steps b.N simulated
				// seconds past warm-up, and with arrivals enabled the
				// population (and so the per-tick cost) would drift
				// with b.N, making recordings incomparable across
				// -benchtime values. Fixing the fleet pins the regime
				// the row claims to measure.
				sc.Churn = nil
				cfg, err := sc.CompileConfig()
				if err != nil {
					b.Fatal(err)
				}
				pricer, err := sim.NewPricerFromSpec(
					sim.PricerSpec{Name: "random"},
					sim.PricerBuildOptions{DefaultSeed: sc.Seed},
				)
				if err != nil {
					b.Fatal(err)
				}
				cfg.Pricer = pricer
				sm, err := sim.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				// Warm-up into steady state: the attach storm, scratch
				// growth, and sensing-history ramp (compaction starts at
				// 64 breakpoints, ~130 simulated seconds in) all settle
				// before the timed ticks.
				sm.RunFor(200)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sm.Step()
				}
			})
		}
	}
}

// BenchmarkFacadeSolve measures the public-API entry point.
func BenchmarkFacadeSolve(b *testing.B) {
	g := vtmig.DefaultGame()
	for i := 0; i < b.N; i++ {
		if eq := g.Solve(); eq.MSPUtility <= 0 {
			b.Fatal("bad solve")
		}
	}
}

// newBenchEnv builds the paper's POMDP for benchmarks.
func newBenchEnv(b *testing.B) *pomdp.GameEnv {
	b.Helper()
	env, err := pomdp.NewGameEnv(pomdp.Config{
		Game:       stackelberg.DefaultGame(),
		HistoryLen: 4,
		Rounds:     100,
		Reward:     pomdp.RewardBinary,
		Seed:       1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return env
}

// BenchmarkServeQuote measures the serving path end to end inside the
// process: request validation, the write-ahead journal append, the
// intake-goroutine handoff, and the pricing round itself — with the
// periodic PPO optimization phases and checkpoint rotations amortized in,
// exactly as a live vtmig-serve daemon pays them.
func BenchmarkServeQuote(b *testing.B) {
	s, err := serve.Open(serve.Config{
		Dir:         b.TempDir(),
		UpdateEvery: 20,
		Seed:        1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	req := serve.QuoteRequest{
		VMUs: []serve.QuoteVMU{
			{ID: 0, Alpha: 5, DataMB: 200},
			{ID: 1, Alpha: 5, DataMB: 100},
		},
		DistanceM: 500,
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Quote(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeQuoteBatched measures the same serving path under
// concurrent clients, so the intake loop actually coalesces batches:
// the per-request game prework fans out across workers, the journal is
// flushed once per batch, and the learning core stays serial — contract
// rule 8 makes the batch size a pure throughput knob, so this benchmark
// prices exactly the same work as BenchmarkServeQuote, just cut
// differently.
func BenchmarkServeQuoteBatched(b *testing.B) {
	s, err := serve.Open(serve.Config{
		Dir:         b.TempDir(),
		UpdateEvery: 20,
		Seed:        1,
		BatchMax:    16,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	req := serve.QuoteRequest{
		VMUs: []serve.QuoteVMU{
			{ID: 0, Alpha: 5, DataMB: 200},
			{ID: 1, Alpha: 5, DataMB: 100},
		},
		DistanceM: 500,
	}
	ctx := context.Background()
	b.SetParallelism(4) // 4×GOMAXPROCS clients keep the intake queue non-empty
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := s.Quote(ctx, req); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
