package mathx

import "math"

// invPhi is 1/φ, the golden-section step ratio.
var invPhi = (math.Sqrt(5) - 1) / 2

// GoldenMax maximizes a unimodal function f on [lo, hi] by golden-section
// search and returns the maximizing argument and the maximum value. The
// search runs until the bracket is narrower than tol or maxIter iterations
// have elapsed. For strictly concave f the result is within tol of the true
// maximizer.
func GoldenMax(f func(float64) float64, lo, hi, tol float64, maxIter int) (x, fx float64) {
	if lo > hi {
		lo, hi = hi, lo
	}
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for i := 0; i < maxIter && (b-a) > tol; i++ {
		if fc > fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	x = (a + b) / 2
	return x, f(x)
}

// Bisect finds a root of f on [lo, hi] by bisection, assuming f(lo) and
// f(hi) have opposite signs. It returns the midpoint of the final bracket
// and whether a sign change was present. The search stops once the bracket
// is narrower than tol or after maxIter iterations.
func Bisect(f func(float64) float64, lo, hi, tol float64, maxIter int) (float64, bool) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, true
	}
	if fhi == 0 {
		return hi, true
	}
	if (flo > 0) == (fhi > 0) {
		return 0, false
	}
	for i := 0; i < maxIter && (hi-lo) > tol; i++ {
		mid := (lo + hi) / 2
		fmid := f(mid)
		if fmid == 0 {
			return mid, true
		}
		if (fmid > 0) == (flo > 0) {
			lo, flo = mid, fmid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, true
}
