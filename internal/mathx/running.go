package mathx

import "math"

// RunningStat accumulates streaming mean and variance using Welford's
// algorithm. The zero value is ready to use.
type RunningStat struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (r *RunningStat) Add(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// Count returns the number of observations seen.
func (r *RunningStat) Count() int { return r.n }

// Mean returns the running mean, or 0 before any observation.
func (r *RunningStat) Mean() float64 { return r.mean }

// Variance returns the sample variance (n-1 denominator), or 0 when fewer
// than two observations have been added.
func (r *RunningStat) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *RunningStat) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation, or 0 before any observation.
func (r *RunningStat) Min() float64 { return r.min }

// Max returns the largest observation, or 0 before any observation.
func (r *RunningStat) Max() float64 { return r.max }

// EWMA is an exponentially weighted moving average.
// The zero value is not ready to use; construct with NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1].
// Larger alpha weights recent observations more heavily.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("mathx: EWMA alpha must be in (0, 1]")
	}
	return &EWMA{alpha: alpha}
}

// Add incorporates one observation and returns the updated average.
func (e *EWMA) Add(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average, or 0 before any observation.
func (e *EWMA) Value() float64 { return e.value }
