package mathx

import (
	"fmt"
	"math/rand"
)

// The standard math/rand source is an additive lagged-Fibonacci generator
// over a table of rngLen 64-bit words with lag rngTap:
//
//	x[n] = x[n-rngLen] + x[n-(rngLen-rngTap)]  (mod 2^64)
//
// Each draw both RETURNS the new word and STORES it back into the table,
// so the generator's entire state equals its last rngLen raw outputs plus
// the position of the table cursors — which advance by exactly one slot
// per draw. That is what makes direct state capture possible without
// touching the unexported stdlib internals: record the trailing rngLen
// outputs in a ring and the table can be rebuilt exactly (StateSnapshot /
// NewCountingSourceFromState).
const (
	rngLen = 607
	rngTap = 273
	// rngFeed is the feed cursor's initial index in a freshly seeded
	// standard source; the tap cursor starts at 0. Draw c (0-based)
	// decrements both cursors first, so it writes table index
	// (rngFeed-1-c) mod rngLen, and after C draws the cursors sit at
	// tap = -C mod rngLen, feed = (rngFeed-C) mod rngLen.
	rngFeed = rngLen - rngTap
	rngMask = 1<<63 - 1
)

// StateLen is the length of the slice returned by
// CountingSource.StateSnapshot: the standard generator's lag-table size.
const StateLen = rngLen

// CountingSource is a math/rand Source64 that wraps the standard source
// and counts how many times the generator has advanced. An RNG stream
// built on it becomes checkpointable: every draw a rand.Rand makes —
// Float64, NormFloat64, Shuffle, Intn, ... — reaches the source through
// Int63 or Uint64, and both step the generator exactly once, so the
// stream's state is the (seed, calls) pair plus — once the stream is at
// least StateLen draws old — the directly captured generator state
// (StateSnapshot), from which NewCountingSourceFromState rebuilds the
// stream in O(StateLen) regardless of how long it has run.
// NewCountingSourceAt restores from the (seed, calls) pair alone by
// replaying the stream. The wrapper forwards values unchanged, so a
// rand.Rand over a CountingSource is bit-identical to one over the bare
// standard source.
//
// CountingSource is not safe for concurrent use, matching the underlying
// standard source.
type CountingSource struct {
	src   rand.Source64
	calls uint64
	// ring records the last rngLen raw outputs; pos == calls mod rngLen
	// is the slot the next output lands in, so ring[pos] is currently the
	// oldest recorded output.
	ring [rngLen]uint64
	pos  int
}

// newStdSource seeds a fresh standard source.
func newStdSource(seed int64) rand.Source64 {
	src, ok := rand.NewSource(seed).(rand.Source64)
	if !ok {
		// The standard source has implemented Source64 since Go 1.8.
		panic("mathx: standard rand source does not implement Source64")
	}
	return src
}

// NewCountingSource returns a counting source seeded with seed, with the
// counter at zero.
func NewCountingSource(seed int64) *CountingSource {
	return &CountingSource{src: newStdSource(seed)}
}

// NewCountingSourceAt returns a counting source seeded with seed and
// fast-forwarded calls steps — the state described by a checkpoint's
// (seed, calls) pair alone. Replay costs a few nanoseconds per step, so
// restore time grows linearly with stream length; checkpoints that carry
// the captured generator state restore in constant time via
// NewCountingSourceFromState instead.
func NewCountingSourceAt(seed int64, calls uint64) *CountingSource {
	s := NewCountingSource(seed)
	for i := uint64(0); i < calls; i++ {
		s.next()
	}
	return s
}

// NewCountingSourceFromState restores a counting source directly from a
// captured generator state (StateSnapshot), in O(StateLen) work
// regardless of calls. An empty state falls back to replay
// (NewCountingSourceAt) — the cheap case, since StateSnapshot only
// returns empty for streams younger than StateLen draws. The restored
// source continues the stream bit-identically: the lag table, both
// cursors, and the output ring are rebuilt exactly as the snapshotted
// source had them.
func NewCountingSourceFromState(seed int64, calls uint64, state []uint64) (*CountingSource, error) {
	if len(state) == 0 {
		return NewCountingSourceAt(seed, calls), nil
	}
	if len(state) != rngLen {
		return nil, fmt.Errorf("mathx: RNG state has %d words, want %d", len(state), rngLen)
	}
	if calls < rngLen {
		return nil, fmt.Errorf("mathx: RNG state with only %d calls is impossible (a full state needs at least %d draws)", calls, rngLen)
	}
	l := &lfsrSource{
		tap:  int((rngLen - calls%rngLen) % rngLen),
		feed: ((rngFeed-int(calls%rngLen))%rngLen + rngLen) % rngLen,
	}
	s := &CountingSource{src: l, calls: calls, pos: int(calls % rngLen)}
	// state[i] is the output of draw calls-rngLen+i (oldest first); draw c
	// wrote table index (rngFeed-1-c) mod rngLen and ring slot c mod rngLen.
	for i, x := range state {
		c := calls - rngLen + uint64(i)
		idx := ((rngFeed-1-int(c%rngLen))%rngLen + rngLen) % rngLen
		l.vec[idx] = int64(x)
		s.ring[c%rngLen] = x
	}
	return s, nil
}

// next advances the generator once, recording the raw output in the ring.
func (s *CountingSource) next() uint64 {
	x := s.src.Uint64()
	s.ring[s.pos] = x
	s.pos++
	if s.pos == rngLen {
		s.pos = 0
	}
	s.calls++
	return x
}

// Int63 implements rand.Source. The standard source derives Int63 from
// the same single generator advance as Uint64 (the top bit masked off),
// so routing it through next keeps the stream bit-identical while the
// ring sees every raw word.
func (s *CountingSource) Int63() int64 {
	return int64(s.next() & rngMask)
}

// Uint64 implements rand.Source64.
func (s *CountingSource) Uint64() uint64 {
	return s.next()
}

// Seed reseeds with a fresh standard source and rewinds the counter, so
// the (seed, calls) pair keeps describing the state.
func (s *CountingSource) Seed(seed int64) {
	s.src = newStdSource(seed)
	s.calls = 0
	s.pos = 0
}

// Calls returns the number of generator advances consumed so far.
func (s *CountingSource) Calls() uint64 { return s.calls }

// StateSnapshot captures the generator state as the last StateLen raw
// outputs, oldest first — enough to rebuild the standard generator's
// entire lag table (see the package comment on the recurrence). It
// returns nil while the stream is younger than StateLen draws; there the
// (seed, calls) replay restore is just as fast. The returned slice is a
// copy.
func (s *CountingSource) StateSnapshot() []uint64 {
	if s.calls < rngLen {
		return nil
	}
	out := make([]uint64, rngLen)
	n := copy(out, s.ring[s.pos:])
	copy(out[n:], s.ring[:s.pos])
	return out
}

// String renders the state pair, for error messages.
func (s *CountingSource) String() string {
	return fmt.Sprintf("CountingSource(calls=%d)", s.calls)
}

// lfsrSource continues the standard generator's additive lagged-Fibonacci
// recurrence from a rebuilt lag table. It exists only as the engine
// behind NewCountingSourceFromState; a fresh stream always starts from
// the standard source so seeding stays stdlib-defined.
type lfsrSource struct {
	vec       [rngLen]int64
	tap, feed int
}

// Uint64 reproduces the standard source's step exactly: decrement both
// cursors (wrapping), add the lagged words, store the sum back at the
// feed cursor, return it.
func (r *lfsrSource) Uint64() uint64 {
	r.tap--
	if r.tap < 0 {
		r.tap += rngLen
	}
	r.feed--
	if r.feed < 0 {
		r.feed += rngLen
	}
	x := r.vec[r.feed] + r.vec[r.tap]
	r.vec[r.feed] = x
	return uint64(x)
}

// Int63 matches the standard source's derivation from Uint64.
func (r *lfsrSource) Int63() int64 { return int64(r.Uint64() & rngMask) }

// Seed is unreachable: CountingSource.Seed replaces the source wholesale.
func (r *lfsrSource) Seed(int64) {
	panic("mathx: reseeding a state-restored source (CountingSource.Seed replaces the source)")
}
