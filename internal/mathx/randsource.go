package mathx

import (
	"fmt"
	"math/rand"
)

// CountingSource is a math/rand Source64 that wraps the standard source
// and counts how many times the generator has advanced. An RNG stream
// built on it becomes checkpointable as a (seed, calls) pair: every draw
// a rand.Rand makes — Float64, NormFloat64, Shuffle, Intn, ... — reaches
// the source through Int63 or Uint64, and both step the standard
// generator exactly once, so replaying calls advances from a fresh seed
// restores the stream's exact state (NewCountingSourceAt). The wrapper
// forwards values unchanged, so a rand.Rand over a CountingSource is
// bit-identical to one over the bare standard source.
//
// CountingSource is not safe for concurrent use, matching the underlying
// standard source.
type CountingSource struct {
	src   rand.Source64
	calls uint64
}

// NewCountingSource returns a counting source seeded with seed, with the
// counter at zero.
func NewCountingSource(seed int64) *CountingSource {
	src, ok := rand.NewSource(seed).(rand.Source64)
	if !ok {
		// The standard source has implemented Source64 since Go 1.8.
		panic("mathx: standard rand source does not implement Source64")
	}
	return &CountingSource{src: src}
}

// NewCountingSourceAt returns a counting source seeded with seed and
// fast-forwarded calls steps — the state captured by a checkpoint's
// (seed, calls) pair. Replay costs a few nanoseconds per step; even the
// longest training runs in this repository restore in milliseconds.
func NewCountingSourceAt(seed int64, calls uint64) *CountingSource {
	s := NewCountingSource(seed)
	for i := uint64(0); i < calls; i++ {
		s.src.Uint64()
	}
	s.calls = calls
	return s
}

// Int63 implements rand.Source.
func (s *CountingSource) Int63() int64 {
	s.calls++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *CountingSource) Uint64() uint64 {
	s.calls++
	return s.src.Uint64()
}

// Seed reseeds the underlying source and rewinds the counter, so the
// (seed, calls) pair keeps describing the state.
func (s *CountingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.calls = 0
}

// Calls returns the number of generator advances consumed so far.
func (s *CountingSource) Calls() uint64 { return s.calls }

// String renders the state pair, for error messages.
func (s *CountingSource) String() string {
	return fmt.Sprintf("CountingSource(calls=%d)", s.calls)
}
