package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDBConversions(t *testing.T) {
	tests := []struct {
		name string
		db   float64
		lin  float64
	}{
		{"zero dB", 0, 1},
		{"10 dB", 10, 10},
		{"20 dB", 20, 100},
		{"-20 dB", -20, 0.01},
		{"3 dB", 3, 1.9952623149688795},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := DBToLinear(tt.db); !AlmostEqual(got, tt.lin, DefaultTol) {
				t.Errorf("DBToLinear(%v) = %v, want %v", tt.db, got, tt.lin)
			}
			if got := LinearToDB(tt.lin); !AlmostEqual(got, tt.db, DefaultTol) {
				t.Errorf("LinearToDB(%v) = %v, want %v", tt.lin, got, tt.db)
			}
		})
	}
}

func TestDBmConversions(t *testing.T) {
	tests := []struct {
		name string
		dbm  float64
		watt float64
	}{
		{"0 dBm is 1 mW", 0, 0.001},
		{"30 dBm is 1 W", 30, 1},
		{"40 dBm is 10 W", 40, 10},
		{"-150 dBm", -150, 1e-18},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := DBmToWatt(tt.dbm); !AlmostEqual(got, tt.watt, 1e-9) {
				t.Errorf("DBmToWatt(%v) = %v, want %v", tt.dbm, got, tt.watt)
			}
			if got := WattToDBm(tt.watt); !AlmostEqual(got, tt.dbm, 1e-9) {
				t.Errorf("WattToDBm(%v) = %v, want %v", tt.watt, got, tt.dbm)
			}
		})
	}
}

func TestDBRoundTripProperty(t *testing.T) {
	f := func(db float64) bool {
		db = math.Mod(db, 200) // keep in a numerically sane range
		return AlmostEqual(LinearToDB(DBToLinear(db)), db, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearToDBNonPositive(t *testing.T) {
	if got := LinearToDB(0); !math.IsInf(got, -1) {
		t.Errorf("LinearToDB(0) = %v, want -Inf", got)
	}
	if got := WattToDBm(-1); !math.IsInf(got, -1) {
		t.Errorf("WattToDBm(-1) = %v, want -Inf", got)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		name      string
		v, lo, hi float64
		want      float64
	}{
		{"below", -1, 0, 1, 0},
		{"above", 2, 0, 1, 1},
		{"inside", 0.5, 0, 1, 0.5},
		{"at lo", 0, 0, 1, 0},
		{"at hi", 1, 0, 1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Clamp(tt.v, tt.lo, tt.hi); got != tt.want {
				t.Errorf("Clamp(%v, %v, %v) = %v, want %v", tt.v, tt.lo, tt.hi, got, tt.want)
			}
		})
	}
}

func TestClampPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Clamp with lo > hi did not panic")
		}
	}()
	Clamp(0, 1, 0)
}

func TestClampInt(t *testing.T) {
	if got := ClampInt(5, 0, 3); got != 3 {
		t.Errorf("ClampInt(5,0,3) = %d, want 3", got)
	}
	if got := ClampInt(-5, 0, 3); got != 0 {
		t.Errorf("ClampInt(-5,0,3) = %d, want 0", got)
	}
	if got := ClampInt(2, 0, 3); got != 2 {
		t.Errorf("ClampInt(2,0,3) = %d, want 2", got)
	}
}

func TestClampProperty(t *testing.T) {
	f := func(v, a, b float64) bool {
		if math.IsNaN(v) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		got := Clamp(v, lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlmostEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b float64
		tol  float64
		want bool
	}{
		{"identical", 1, 1, 1e-12, true},
		{"close small", 1, 1 + 1e-12, 1e-9, true},
		{"close large", 1e12, 1e12 + 1, 1e-9, true},
		{"far", 1, 2, 1e-9, false},
		{"nan left", math.NaN(), 1, 1, false},
		{"nan right", 1, math.NaN(), 1, false},
		{"both inf", math.Inf(1), math.Inf(1), 1e-9, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := AlmostEqual(tt.a, tt.b, tt.tol); got != tt.want {
				t.Errorf("AlmostEqual(%v, %v, %v) = %v, want %v", tt.a, tt.b, tt.tol, got, tt.want)
			}
		})
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(got) != len(want) {
		t.Fatalf("Linspace length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !AlmostEqual(got[i], want[i], DefaultTol) {
			t.Errorf("Linspace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLinspaceEndpointsExact(t *testing.T) {
	got := Linspace(5, 9, 7)
	if got[0] != 5 || got[6] != 9 {
		t.Errorf("Linspace endpoints = %v, %v, want 5, 9", got[0], got[6])
	}
}

func TestLinspacePanicsOnShort(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Linspace(0,1,1) did not panic")
		}
	}()
	Linspace(0, 1, 1)
}

func TestSumMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Sum(xs); got != 40 {
		t.Errorf("Sum = %v, want 40", got)
	}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample std dev of this classic dataset is sqrt(32/7).
	if got, want := StdDev(xs), math.Sqrt(32.0/7.0); !AlmostEqual(got, want, 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
}

func TestEmptyStats(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := StdDev([]float64{1}); got != 0 {
		t.Errorf("StdDev(single) = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 4, 1, 5})
	if lo != -1 || hi != 5 {
		t.Errorf("MinMax = (%v, %v), want (-1, 5)", lo, hi)
	}
}

func TestLog2OnePlus(t *testing.T) {
	if got := Log2OnePlus(1); got != 1 {
		t.Errorf("Log2OnePlus(1) = %v, want 1", got)
	}
	if got := Log2OnePlus(3); got != 2 {
		t.Errorf("Log2OnePlus(3) = %v, want 2", got)
	}
}

func TestLog2OnePlusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log2OnePlus(-1) did not panic")
		}
	}()
	Log2OnePlus(-1)
}

func TestRunningStatMatchesBatch(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var rs RunningStat
	for _, x := range xs {
		rs.Add(x)
	}
	if rs.Count() != len(xs) {
		t.Errorf("Count = %d, want %d", rs.Count(), len(xs))
	}
	if !AlmostEqual(rs.Mean(), Mean(xs), 1e-12) {
		t.Errorf("running mean = %v, batch mean = %v", rs.Mean(), Mean(xs))
	}
	if !AlmostEqual(rs.StdDev(), StdDev(xs), 1e-12) {
		t.Errorf("running stddev = %v, batch stddev = %v", rs.StdDev(), StdDev(xs))
	}
	if rs.Min() != 2 || rs.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", rs.Min(), rs.Max())
	}
}

func TestRunningStatProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var rs RunningStat
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				continue
			}
			clean = append(clean, x)
			rs.Add(x)
		}
		if len(clean) == 0 {
			return rs.Count() == 0
		}
		return AlmostEqual(rs.Mean(), Mean(clean), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if got := e.Add(10); got != 10 {
		t.Errorf("first Add = %v, want 10 (seeds the average)", got)
	}
	if got := e.Add(0); got != 5 {
		t.Errorf("second Add = %v, want 5", got)
	}
	if got := e.Value(); got != 5 {
		t.Errorf("Value = %v, want 5", got)
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%v) did not panic", alpha)
				}
			}()
			NewEWMA(alpha)
		}()
	}
}

func TestGoldenMaxQuadratic(t *testing.T) {
	// f(x) = -(x-3)^2 + 7 has its maximum at x=3.
	f := func(x float64) float64 { return -(x-3)*(x-3) + 7 }
	x, fx := GoldenMax(f, -10, 10, 1e-10, 200)
	if !AlmostEqual(x, 3, 1e-6) {
		t.Errorf("argmax = %v, want 3", x)
	}
	if !AlmostEqual(fx, 7, 1e-9) {
		t.Errorf("max = %v, want 7", fx)
	}
}

func TestGoldenMaxInvertedBounds(t *testing.T) {
	f := func(x float64) float64 { return -x * x }
	x, _ := GoldenMax(f, 5, -5, 1e-10, 200)
	if !AlmostEqual(x, 0, 1e-6) {
		t.Errorf("argmax = %v, want 0", x)
	}
}

func TestGoldenMaxProperty(t *testing.T) {
	// For any concave quadratic with vertex inside the bracket, golden
	// search must find the vertex.
	f := func(center float64) bool {
		c := math.Mod(center, 50)
		q := func(x float64) float64 { return -(x - c) * (x - c) }
		x, _ := GoldenMax(q, -60, 60, 1e-9, 300)
		return AlmostEqual(x, c, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBisect(t *testing.T) {
	// Root of x^3 - 2 is 2^(1/3).
	f := func(x float64) float64 { return x*x*x - 2 }
	root, ok := Bisect(f, 0, 2, 1e-12, 200)
	if !ok {
		t.Fatal("Bisect reported no sign change")
	}
	if want := math.Cbrt(2); !AlmostEqual(root, want, 1e-9) {
		t.Errorf("root = %v, want %v", root, want)
	}
}

func TestBisectNoSignChange(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, ok := Bisect(f, -1, 1, 1e-9, 100); ok {
		t.Error("Bisect found a root where none exists")
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	f := func(x float64) float64 { return x }
	root, ok := Bisect(f, 0, 1, 1e-9, 100)
	if !ok || root != 0 {
		t.Errorf("Bisect endpoint root = (%v, %v), want (0, true)", root, ok)
	}
}
