package mathx

import (
	"math"
	"math/rand"
	"testing"
)

// TestCountingSourceBitIdentical pins the transparency contract: a
// rand.Rand over a CountingSource produces exactly the stream of one over
// the bare standard source, across the draw kinds the learners use.
func TestCountingSourceBitIdentical(t *testing.T) {
	bare := rand.New(rand.NewSource(7))
	counted := rand.New(NewCountingSource(7))
	for i := 0; i < 200; i++ {
		switch i % 4 {
		case 0:
			if a, b := bare.Float64(), counted.Float64(); math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("draw %d: Float64 %v vs %v", i, a, b)
			}
		case 1:
			if a, b := bare.NormFloat64(), counted.NormFloat64(); math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("draw %d: NormFloat64 %v vs %v", i, a, b)
			}
		case 2:
			if a, b := bare.Intn(97), counted.Intn(97); a != b {
				t.Fatalf("draw %d: Intn %d vs %d", i, a, b)
			}
		case 3:
			pa, pb := bare.Perm(5), counted.Perm(5)
			for j := range pa {
				if pa[j] != pb[j] {
					t.Fatalf("draw %d: Perm %v vs %v", i, pa, pb)
				}
			}
		}
	}
}

// TestCountingSourceReplay pins the checkpoint contract: recreating a
// source at (seed, calls) continues the original stream bit for bit.
func TestCountingSourceReplay(t *testing.T) {
	src := NewCountingSource(42)
	rng := rand.New(src)
	for i := 0; i < 137; i++ {
		rng.NormFloat64()
		rng.Float64()
		rng.Shuffle(7, func(int, int) {})
	}
	calls := src.Calls()
	if calls == 0 {
		t.Fatal("no calls counted")
	}

	resumed := rand.New(NewCountingSourceAt(42, calls))
	for i := 0; i < 100; i++ {
		a, b := rng.NormFloat64(), resumed.NormFloat64()
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("resumed draw %d: %v vs %v", i, a, b)
		}
	}
}

// TestCountingSourceSeedRewinds checks that Seed rewinds the counter so
// the (seed, calls) pair stays meaningful.
func TestCountingSourceSeedRewinds(t *testing.T) {
	src := NewCountingSource(1)
	rand.New(src).Float64()
	if src.Calls() == 0 {
		t.Fatal("Float64 did not advance the counter")
	}
	src.Seed(2)
	if src.Calls() != 0 {
		t.Fatalf("Seed left the counter at %d", src.Calls())
	}
	if got, want := rand.New(src).Float64(), rand.New(rand.NewSource(2)).Float64(); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("after Seed(2): %v, want %v", got, want)
	}
}
