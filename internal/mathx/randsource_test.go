package mathx

import (
	"math"
	"math/rand"
	"testing"
)

// TestCountingSourceBitIdentical pins the transparency contract: a
// rand.Rand over a CountingSource produces exactly the stream of one over
// the bare standard source, across the draw kinds the learners use.
func TestCountingSourceBitIdentical(t *testing.T) {
	bare := rand.New(rand.NewSource(7))
	counted := rand.New(NewCountingSource(7))
	for i := 0; i < 200; i++ {
		switch i % 4 {
		case 0:
			if a, b := bare.Float64(), counted.Float64(); math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("draw %d: Float64 %v vs %v", i, a, b)
			}
		case 1:
			if a, b := bare.NormFloat64(), counted.NormFloat64(); math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("draw %d: NormFloat64 %v vs %v", i, a, b)
			}
		case 2:
			if a, b := bare.Intn(97), counted.Intn(97); a != b {
				t.Fatalf("draw %d: Intn %d vs %d", i, a, b)
			}
		case 3:
			pa, pb := bare.Perm(5), counted.Perm(5)
			for j := range pa {
				if pa[j] != pb[j] {
					t.Fatalf("draw %d: Perm %v vs %v", i, pa, pb)
				}
			}
		}
	}
}

// TestCountingSourceReplay pins the checkpoint contract: recreating a
// source at (seed, calls) continues the original stream bit for bit.
func TestCountingSourceReplay(t *testing.T) {
	src := NewCountingSource(42)
	rng := rand.New(src)
	for i := 0; i < 137; i++ {
		rng.NormFloat64()
		rng.Float64()
		rng.Shuffle(7, func(int, int) {})
	}
	calls := src.Calls()
	if calls == 0 {
		t.Fatal("no calls counted")
	}

	resumed := rand.New(NewCountingSourceAt(42, calls))
	for i := 0; i < 100; i++ {
		a, b := rng.NormFloat64(), resumed.NormFloat64()
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("resumed draw %d: %v vs %v", i, a, b)
		}
	}
}

// TestCountingSourceSeedRewinds checks that Seed rewinds the counter so
// the (seed, calls) pair stays meaningful.
func TestCountingSourceSeedRewinds(t *testing.T) {
	src := NewCountingSource(1)
	rand.New(src).Float64()
	if src.Calls() == 0 {
		t.Fatal("Float64 did not advance the counter")
	}
	src.Seed(2)
	if src.Calls() != 0 {
		t.Fatalf("Seed left the counter at %d", src.Calls())
	}
	if got, want := rand.New(src).Float64(), rand.New(rand.NewSource(2)).Float64(); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("after Seed(2): %v, want %v", got, want)
	}
}

// TestCountingSourceStateSnapshotContinues pins the direct-state restore
// contract: a source rebuilt from StateSnapshot continues the original
// stream bit for bit without replaying it — across the draw kinds the
// learners use, and at stream positions that wrap the internal ring more
// than once.
func TestCountingSourceStateSnapshotContinues(t *testing.T) {
	for _, warm := range []int{StateLen, StateLen + 1, 3*StateLen + 17, 5000} {
		src := NewCountingSource(9)
		rng := rand.New(src)
		for i := 0; i < warm; i++ {
			rng.NormFloat64()
		}
		calls := src.Calls()
		state := src.StateSnapshot()
		if len(state) != StateLen {
			t.Fatalf("warm=%d: state has %d words, want %d", warm, len(state), StateLen)
		}

		restored, err := NewCountingSourceFromState(9, calls, state)
		if err != nil {
			t.Fatalf("warm=%d: %v", warm, err)
		}
		if restored.Calls() != calls {
			t.Fatalf("warm=%d: restored counter %d, want %d", warm, restored.Calls(), calls)
		}
		resumed := rand.New(restored)
		for i := 0; i < 3*StateLen; i++ {
			var a, b float64
			switch i % 3 {
			case 0:
				a, b = rng.Float64(), resumed.Float64()
			case 1:
				a, b = rng.NormFloat64(), resumed.NormFloat64()
			case 2:
				a, b = float64(rng.Intn(1000)), float64(resumed.Intn(1000))
			}
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("warm=%d draw %d: %v vs %v", warm, i, a, b)
			}
		}
	}
}

// TestCountingSourceStateSnapshotRoundTrip checks that a restored source
// snapshots back to the identical state and keeps its ring consistent
// through further draws.
func TestCountingSourceStateSnapshotRoundTrip(t *testing.T) {
	src := NewCountingSource(5)
	for i := 0; i < 2*StateLen+13; i++ {
		src.Uint64()
	}
	state := src.StateSnapshot()
	restored, err := NewCountingSourceFromState(5, src.Calls(), state)
	if err != nil {
		t.Fatal(err)
	}
	again := restored.StateSnapshot()
	for i := range state {
		if state[i] != again[i] {
			t.Fatalf("state word %d: %d vs %d", i, again[i], state[i])
		}
	}
	// Advance both and re-snapshot: the restored source's ring must track
	// the live one's.
	for i := 0; i < StateLen/2; i++ {
		if a, b := src.Uint64(), restored.Uint64(); a != b {
			t.Fatalf("draw %d after round trip: %d vs %d", i, b, a)
		}
	}
	a, b := src.StateSnapshot(), restored.StateSnapshot()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("post-advance state word %d: %d vs %d", i, b[i], a[i])
		}
	}
}

// TestCountingSourceStateSnapshotYoung pins the young-stream behavior:
// no state before StateLen draws (replay covers that cheaply), and the
// from-state constructor falls back to replay on an empty state.
func TestCountingSourceStateSnapshotYoung(t *testing.T) {
	src := NewCountingSource(3)
	for i := 0; i < StateLen-1; i++ {
		src.Uint64()
	}
	if st := src.StateSnapshot(); st != nil {
		t.Fatalf("young stream returned a %d-word state", len(st))
	}
	src.Uint64()
	if st := src.StateSnapshot(); len(st) != StateLen {
		t.Fatalf("at %d calls: state has %d words, want %d", src.Calls(), len(st), StateLen)
	}

	fallback, err := NewCountingSourceFromState(3, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := NewCountingSourceAt(3, 100)
	for i := 0; i < 50; i++ {
		if a, b := want.Uint64(), fallback.Uint64(); a != b {
			t.Fatalf("fallback draw %d: %d vs %d", i, b, a)
		}
	}
}

// TestCountingSourceFromStateRejects pins the validation: wrong state
// length and an impossible calls count fail loudly.
func TestCountingSourceFromStateRejects(t *testing.T) {
	if _, err := NewCountingSourceFromState(1, uint64(StateLen), make([]uint64, StateLen-1)); err == nil {
		t.Fatal("short state accepted")
	}
	if _, err := NewCountingSourceFromState(1, uint64(StateLen-1), make([]uint64, StateLen)); err == nil {
		t.Fatal("full state with too few calls accepted")
	}
}

// TestCountingSourceSeedAfterStateRestore checks that Seed on a
// state-restored source swaps back to a fresh standard stream.
func TestCountingSourceSeedAfterStateRestore(t *testing.T) {
	src := NewCountingSource(2)
	for i := 0; i < StateLen+5; i++ {
		src.Uint64()
	}
	restored, err := NewCountingSourceFromState(2, src.Calls(), src.StateSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	restored.Seed(11)
	if restored.Calls() != 0 {
		t.Fatalf("Seed left the counter at %d", restored.Calls())
	}
	if got, want := restored.Uint64(), NewCountingSource(11).Uint64(); got != want {
		t.Fatalf("after Seed(11): %d, want %d", got, want)
	}
}
