// Package mathx provides small numeric helpers shared across the vtmig
// modules: decibel conversions, clamping, approximate float comparison,
// sequence generation, and streaming statistics.
//
// All helpers are pure functions or small value types; none of them
// allocate beyond their obvious outputs.
package mathx

import (
	"fmt"
	"math"
)

// DefaultTol is the default relative tolerance used by AlmostEqual.
const DefaultTol = 1e-9

// DBToLinear converts a decibel value (a power ratio in dB) to linear scale.
func DBToLinear(db float64) float64 {
	return math.Pow(10, db/10)
}

// LinearToDB converts a linear power ratio to decibels.
// It returns -Inf for non-positive inputs.
func LinearToDB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}

// DBmToWatt converts a power level in dBm to Watts.
func DBmToWatt(dbm float64) float64 {
	return math.Pow(10, dbm/10) / 1000
}

// WattToDBm converts a power level in Watts to dBm.
// It returns -Inf for non-positive inputs.
func WattToDBm(w float64) float64 {
	if w <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(w*1000)
}

// Clamp limits v to the closed interval [lo, hi].
// It panics if lo > hi, which always indicates a programming error.
func Clamp(v, lo, hi float64) float64 {
	if lo > hi {
		panic(fmt.Sprintf("mathx: Clamp bounds inverted: lo=%g > hi=%g", lo, hi))
	}
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}

// ClampInt limits v to the closed interval [lo, hi].
func ClampInt(v, lo, hi int) int {
	if lo > hi {
		panic(fmt.Sprintf("mathx: ClampInt bounds inverted: lo=%d > hi=%d", lo, hi))
	}
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}

// AlmostEqual reports whether a and b agree to within tol, using a mixed
// absolute/relative criterion: |a-b| <= tol * max(1, |a|, |b|).
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n must be at least 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic(fmt.Sprintf("mathx: Linspace needs n >= 2, got %d", n))
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi // avoid accumulated rounding at the endpoint
	return out
}

// Sum returns the sum of xs. An empty slice sums to zero.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator),
// or 0 when fewer than two samples are given.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// MinMax returns the minimum and maximum of xs.
// It panics on an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("mathx: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Log2OnePlus returns log2(1+x), guarding against negative arguments that
// would make the logarithm undefined. It panics when 1+x <= 0.
func Log2OnePlus(x float64) float64 {
	if 1+x <= 0 {
		panic(fmt.Sprintf("mathx: Log2OnePlus domain error: 1+%g <= 0", x))
	}
	return math.Log2(1 + x)
}

// SplitMix64 derives an independent RNG seed from (seed, stream) with
// the splitmix64 finalizer: adjacent seeds or streams produce
// uncorrelated stdlib generator states, unlike an additive offset, which
// would collide with nearby user-chosen seeds. The result is
// non-negative, so it can seed rand.NewSource directly.
func SplitMix64(seed int64, stream uint64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64((z ^ (z >> 31)) & math.MaxInt64)
}
