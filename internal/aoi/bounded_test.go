package aoi

import (
	"math/rand"
	"testing"
)

// TestBoundedProcessBitIdentical drives an unbounded and a tightly
// bounded process through the same randomized delivery stream — jittered
// periods, delivery delays that run ahead of the generation clock, stale
// updates — and requires every query at or after the compaction boundary
// to agree bit for bit. The fold is the prefix of the query's own
// accumulation, so even float rounding must match exactly.
func TestBoundedProcessBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		full := NewProcess(0)
		bounded := NewBoundedProcess(0, 1+r.Intn(8))
		gen, lastDel := 0.0, 0.0
		for i := 0; i < 500; i++ {
			gen += 0.1 + r.Float64()
			// Deliveries must arrive in non-decreasing order; the jittered
			// delay is clamped so a fast update never overtakes a slow one.
			del := gen + r.Float64()*2
			if del < lastDel {
				del = lastDel
			}
			lastDel = del
			if r.Intn(10) == 0 {
				// Stale: generated before the freshest delivered update.
				if err := full.Deliver(gen-5, del); err != nil {
					t.Fatal(err)
				}
				if err := bounded.Deliver(gen-5, del); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if err := full.Deliver(gen, del); err != nil {
				t.Fatal(err)
			}
			if err := bounded.Deliver(gen, del); err != nil {
				t.Fatal(err)
			}
			// Query at the "caller clock" — at or after the newest
			// generation time, where compaction guarantees equivalence.
			for _, h := range []float64{gen, gen + 0.5, gen + 3} {
				if a, b := full.AverageAge(h), bounded.AverageAge(h); a != b {
					t.Fatalf("trial %d step %d: AverageAge(%g) = %g (full) vs %g (bounded)", trial, i, h, a, b)
				}
				if a, b := full.PeakAge(h), bounded.PeakAge(h); a != b {
					t.Fatalf("trial %d step %d: PeakAge(%g) = %g (full) vs %g (bounded)", trial, i, h, a, b)
				}
				if a, b := full.Age(h), bounded.Age(h); a != b {
					t.Fatalf("trial %d step %d: Age(%g) = %g (full) vs %g (bounded)", trial, i, h, a, b)
				}
			}
			if a, b := full.Deliveries(), bounded.Deliveries(); a != b {
				t.Fatalf("trial %d step %d: Deliveries() = %d (full) vs %d (bounded)", trial, i, a, b)
			}
		}
	}
}

// TestBoundedProcessFlatMemory pins the point of the bound: the buffered
// breakpoint count stays at most bound+1 no matter how long the stream
// runs.
func TestBoundedProcessFlatMemory(t *testing.T) {
	const bound = 16
	p := NewBoundedProcess(0, bound)
	for i := 1; i <= 10000; i++ {
		gt := float64(i)
		if err := p.Deliver(gt, gt+0.25); err != nil {
			t.Fatal(err)
		}
		if n := len(p.deliveries); n > bound+1 {
			t.Fatalf("step %d: %d breakpoints buffered, bound %d", i, n, bound)
		}
	}
	if got := p.Deliveries(); got != 10000 {
		t.Fatalf("Deliveries() = %d, want 10000", got)
	}
}

// TestBoundedProcessRejectsPreFoldQueries pins the failure mode
// compaction introduces: a query before the folded boundary panics
// instead of answering from history it no longer has.
func TestBoundedProcessRejectsPreFoldQueries(t *testing.T) {
	p := NewBoundedProcess(0, 1)
	for i := 1; i <= 10; i++ {
		if err := p.Deliver(float64(i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for name, query := range map[string]func(){
		"Age":        func() { p.Age(1) },
		"AverageAge": func() { p.AverageAge(1) },
		"PeakAge":    func() { p.PeakAge(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s before the fold boundary did not panic", name)
				}
			}()
			query()
		}()
	}
}

// TestBoundedProcessConstructorValidation pins the bound precondition.
func TestBoundedProcessConstructorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bound 0 did not panic")
		}
	}()
	NewBoundedProcess(0, 0)
}
