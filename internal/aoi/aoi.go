// Package aoi implements the Age of Information machinery that the
// paper's AoTM metric is derived from (Section III-A cites Yates et al.'s
// AoI survey): the sawtooth age process of a monitored source, exact
// average/peak age computation from update timestamps, and closed-form
// averages for the classic sampling disciplines.
//
// In the vehicular metaverse, VMUs stream sensing data (vehicle pose,
// driver state) to the MSP to keep their twins synchronized; the age of
// that data bounds how faithful the twin is between migrations. The
// simulator uses this package to report sensing-freshness alongside the
// migration-freshness (AoTM) of the core paper.
package aoi

import (
	"fmt"
	"sort"
)

// Process tracks the age of information of a single source at a monitor.
// Age grows linearly with time and resets to the delivery delay of each
// received update. The zero value is not usable; construct with
// NewProcess.
type Process struct {
	// lastGen is the generation timestamp of the freshest delivered
	// update.
	lastGen float64
	// updates stores (deliveryTime, ageAfterReset) breakpoints.
	deliveries []delivery
	started    bool
	startTime  float64

	// Compaction state (see NewBoundedProcess). The checkpoint is the
	// left-to-right fold of the dropped breakpoints — exactly the prefix
	// of the accumulation AverageAge/PeakAge would have performed over
	// them — so queries at or after foldT are bit-identical to the
	// unbounded process. An unbounded process keeps the zero fold
	// (foldT = startTime, age/area/peak 0), which is the accumulators'
	// starting state.
	bound     int     // > 0: compact when more breakpoints are buffered
	foldT     float64 // time of the last folded breakpoint
	foldAge   float64 // age immediately after it
	foldArea  float64 // integrated sawtooth area over [startTime, foldT]
	foldPeak  float64 // peak age reached within [startTime, foldT]
	foldCount int     // folded (dropped) breakpoints
}

// delivery is one received update.
type delivery struct {
	at  float64 // delivery time
	age float64 // age immediately after the reset: at - generated
}

// NewProcess returns an age process that starts observing at startTime
// with age zero (the monitor is assumed synchronized at start). It keeps
// every delivery breakpoint, so memory grows with the update count; use
// NewBoundedProcess for long-running monitors.
func NewProcess(startTime float64) *Process {
	return &Process{started: true, startTime: startTime, lastGen: startTime, foldT: startTime}
}

// NewBoundedProcess is NewProcess with flat memory: whenever more than
// bound breakpoints are buffered, the prefix up to the newest update's
// generation time is folded into a running checkpoint and dropped.
// Queries (Age, AverageAge, PeakAge) at or after the folded boundary are
// bit-identical to the unbounded process — the fold performs exactly the
// prefix of the query's own left-to-right accumulation — and panic for
// earlier times. Monitors that query at a monotone clock (the simulator's
// per-vehicle sensing streams) never notice the difference.
func NewBoundedProcess(startTime float64, bound int) *Process {
	if bound < 1 {
		panic(fmt.Sprintf("aoi: compaction bound must be >= 1, got %d", bound))
	}
	p := NewProcess(startTime)
	p.bound = bound
	return p
}

// Deliver records an update generated at genTime and delivered at
// delTime. Deliveries must be reported in non-decreasing delivery order;
// stale updates (generated before the freshest delivered one) are ignored
// per the standard "fresh packet wins" monitor model.
func (p *Process) Deliver(genTime, delTime float64) error {
	if delTime < genTime {
		return fmt.Errorf("aoi: delivery at %g precedes generation at %g", delTime, genTime)
	}
	if n := len(p.deliveries); n > 0 && delTime < p.deliveries[n-1].at {
		return fmt.Errorf("aoi: out-of-order delivery at %g (last %g)", delTime, p.deliveries[n-1].at)
	}
	if p.foldCount > 0 && delTime < p.foldT {
		return fmt.Errorf("aoi: out-of-order delivery at %g (last %g)", delTime, p.foldT)
	}
	if genTime <= p.lastGen {
		return nil // stale: the monitor already has fresher data
	}
	p.lastGen = genTime
	p.deliveries = append(p.deliveries, delivery{at: delTime, age: delTime - genTime})
	if p.bound > 0 && len(p.deliveries) > p.bound {
		// Fold only up to the new update's generation time: breakpoints
		// past it may still precede a query horizon (delTime can run
		// ahead of the caller's clock by the delivery delay), while
		// anything at or before genTime is safely behind every admissible
		// future query.
		p.compact(genTime)
	}
	return nil
}

// compact folds the breakpoints delivered at or before watermark into the
// checkpoint and drops them, preserving the buffer's backing array.
func (p *Process) compact(watermark float64) {
	n := 0
	for _, d := range p.deliveries {
		if d.at > watermark {
			break
		}
		dt := d.at - p.foldT
		p.foldArea += dt * (p.foldAge + p.foldAge + dt) / 2
		if a := p.foldAge + dt; a > p.foldPeak {
			p.foldPeak = a
		}
		p.foldT = d.at
		p.foldAge = d.age
		n++
	}
	if n > 0 {
		p.foldCount += n
		p.deliveries = append(p.deliveries[:0], p.deliveries[n:]...)
	}
}

// Age returns the instantaneous age at time t (t must be at or after the
// observation start).
func (p *Process) Age(t float64) float64 {
	if t < p.startTime {
		panic(fmt.Sprintf("aoi: query at %g before start %g", t, p.startTime))
	}
	if t < p.foldT {
		panic(fmt.Sprintf("aoi: query at %g precedes history compacted through %g", t, p.foldT))
	}
	// Find the last delivery at or before t.
	i := sort.Search(len(p.deliveries), func(i int) bool { return p.deliveries[i].at > t })
	if i == 0 {
		// No buffered breakpoint at or before t: age grows linearly from
		// the checkpoint (the observation start for an uncompacted
		// process, where foldT = startTime and foldAge = 0).
		return p.foldAge + (t - p.foldT)
	}
	d := p.deliveries[i-1]
	return d.age + (t - d.at)
}

// AverageAge integrates the sawtooth age over [startTime, horizon] and
// divides by the interval length — the exact time-average AoI.
func (p *Process) AverageAge(horizon float64) float64 {
	if horizon <= p.startTime {
		panic(fmt.Sprintf("aoi: horizon %g not after start %g", horizon, p.startTime))
	}
	if horizon < p.foldT {
		panic(fmt.Sprintf("aoi: horizon %g precedes history compacted through %g", horizon, p.foldT))
	}
	area := p.foldArea
	prevT := p.foldT
	prevAge := p.foldAge
	for _, d := range p.deliveries {
		if d.at > horizon {
			break
		}
		// Age grows linearly from prevAge over (d.at - prevT), then
		// resets to d.age.
		dt := d.at - prevT
		area += dt * (prevAge + prevAge + dt) / 2
		prevT = d.at
		prevAge = d.age
	}
	dt := horizon - prevT
	area += dt * (prevAge + prevAge + dt) / 2
	return area / (horizon - p.startTime)
}

// PeakAge returns the largest age reached just before any delivery within
// the horizon (the peak-AoI metric), or the age at the horizon when no
// delivery occurred.
func (p *Process) PeakAge(horizon float64) float64 {
	if horizon < p.foldT {
		panic(fmt.Sprintf("aoi: horizon %g precedes history compacted through %g", horizon, p.foldT))
	}
	peak := p.foldPeak
	prevT := p.foldT
	prevAge := p.foldAge
	for _, d := range p.deliveries {
		if d.at > horizon {
			break
		}
		if a := prevAge + (d.at - prevT); a > peak {
			peak = a
		}
		prevT = d.at
		prevAge = d.age
	}
	if a := prevAge + (horizon - prevT); a > peak {
		peak = a
	}
	return peak
}

// Deliveries returns the number of accepted (non-stale) updates,
// compacted ones included.
func (p *Process) Deliveries() int { return p.foldCount + len(p.deliveries) }

// PeriodicAverageAge returns the exact time-average age of a source that
// generates an update every period and delivers it after a constant
// delay: avg = period/2 + delay (steady state).
func PeriodicAverageAge(period, delay float64) float64 {
	if period <= 0 {
		panic(fmt.Sprintf("aoi: period must be positive, got %g", period))
	}
	if delay < 0 {
		panic(fmt.Sprintf("aoi: delay must be non-negative, got %g", delay))
	}
	return period/2 + delay
}

// MM1AverageAge returns the classic average AoI of an M/M/1 FCFS status
// update system with arrival rate lambda and service rate mu (Kaul, Yates
// & Gruteser 2012): (1/μ)·(1 + 1/ρ + ρ²/(1−ρ)) with ρ = λ/μ. It panics
// unless 0 < λ < μ.
func MM1AverageAge(lambda, mu float64) float64 {
	if lambda <= 0 || mu <= 0 || lambda >= mu {
		panic(fmt.Sprintf("aoi: MM1 requires 0 < lambda < mu, got lambda=%g mu=%g", lambda, mu))
	}
	rho := lambda / mu
	return (1 / mu) * (1 + 1/rho + rho*rho/(1-rho))
}

// OptimalMM1Utilization returns the load ρ* ≈ 0.53 that minimizes the
// M/M/1 average AoI for a fixed service rate, found numerically.
func OptimalMM1Utilization() float64 {
	// Minimize f(ρ) = 1 + 1/ρ + ρ²/(1−ρ) on (0, 1) by ternary search.
	lo, hi := 1e-6, 1-1e-6
	f := func(rho float64) float64 { return 1 + 1/rho + rho*rho/(1-rho) }
	for i := 0; i < 200; i++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if f(m1) < f(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	return (lo + hi) / 2
}

// SamplingForTargetAge returns the update period needed to hold a
// periodic source's average age at target given a constant delivery
// delay. It panics when the target is unreachable (target <= delay).
func SamplingForTargetAge(target, delay float64) float64 {
	if target <= delay {
		panic(fmt.Sprintf("aoi: target age %g unreachable with delay %g", target, delay))
	}
	return 2 * (target - delay)
}
