package aoi

import (
	"math"
	"testing"
	"testing/quick"

	"vtmig/internal/mathx"
)

func TestAgeGrowsLinearlyWithoutDeliveries(t *testing.T) {
	p := NewProcess(0)
	if got := p.Age(0); got != 0 {
		t.Errorf("Age(0) = %v, want 0", got)
	}
	if got := p.Age(5); got != 5 {
		t.Errorf("Age(5) = %v, want 5", got)
	}
}

func TestAgeResetsToDeliveryDelay(t *testing.T) {
	p := NewProcess(0)
	// Generated at 3, delivered at 4: age at 4 resets to 1.
	if err := p.Deliver(3, 4); err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	if got := p.Age(4); got != 1 {
		t.Errorf("Age(4) = %v, want 1", got)
	}
	if got := p.Age(6); got != 3 {
		t.Errorf("Age(6) = %v, want 3", got)
	}
	// Before the delivery the age is still the initial ramp.
	if got := p.Age(3.5); got != 3.5 {
		t.Errorf("Age(3.5) = %v, want 3.5", got)
	}
}

func TestStaleUpdateIgnored(t *testing.T) {
	p := NewProcess(0)
	if err := p.Deliver(5, 6); err != nil {
		t.Fatal(err)
	}
	// Older generation delivered later must not regress freshness.
	if err := p.Deliver(4, 7); err != nil {
		t.Fatal(err)
	}
	if p.Deliveries() != 1 {
		t.Errorf("Deliveries = %d, want 1 (stale dropped)", p.Deliveries())
	}
	if got := p.Age(7); got != 2 {
		t.Errorf("Age(7) = %v, want 2 (from the gen-5 update)", got)
	}
}

func TestDeliverValidation(t *testing.T) {
	p := NewProcess(0)
	if err := p.Deliver(5, 4); err == nil {
		t.Error("delivery before generation must error")
	}
	if err := p.Deliver(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.Deliver(8, 9); err == nil {
		t.Error("out-of-order delivery must error")
	}
}

func TestAgeQueryBeforeStartPanics(t *testing.T) {
	p := NewProcess(10)
	defer func() {
		if recover() == nil {
			t.Fatal("query before start did not panic")
		}
	}()
	p.Age(5)
}

func TestAverageAgeNoDeliveries(t *testing.T) {
	p := NewProcess(0)
	// Pure ramp: average over [0, 10] is 5.
	if got := p.AverageAge(10); got != 5 {
		t.Errorf("AverageAge = %v, want 5", got)
	}
}

func TestAverageAgeHandComputed(t *testing.T) {
	p := NewProcess(0)
	// Delivery generated at 2, delivered at 2 (zero delay): age resets to
	// 0 at t=2. Over [0,4]: area = 2*2/2 + 2*2/2 = 4 ⇒ avg = 1.
	if err := p.Deliver(2, 2); err != nil {
		t.Fatal(err)
	}
	if got := p.AverageAge(4); !mathx.AlmostEqual(got, 1, 1e-12) {
		t.Errorf("AverageAge = %v, want 1", got)
	}
}

func TestAverageAgeMatchesNumericIntegration(t *testing.T) {
	p := NewProcess(0)
	updates := [][2]float64{{1, 1.5}, {3, 3.2}, {5, 6}, {8, 8.1}}
	for _, u := range updates {
		if err := p.Deliver(u[0], u[1]); err != nil {
			t.Fatal(err)
		}
	}
	const horizon = 10.0
	const steps = 200000
	var sum float64
	for i := 0; i < steps; i++ {
		sum += p.Age((float64(i) + 0.5) * horizon / steps)
	}
	numeric := sum / steps
	if got := p.AverageAge(horizon); !mathx.AlmostEqual(got, numeric, 1e-3) {
		t.Errorf("AverageAge = %v, numeric %v", got, numeric)
	}
}

func TestPeakAge(t *testing.T) {
	p := NewProcess(0)
	if err := p.Deliver(4, 5); err != nil { // age just before: 5; resets to 1
		t.Fatal(err)
	}
	if err := p.Deliver(6, 7); err != nil { // age just before: 3; resets to 1
		t.Fatal(err)
	}
	if got := p.PeakAge(8); got != 5 {
		t.Errorf("PeakAge = %v, want 5", got)
	}
	// With a long tail the final ramp dominates.
	if got := p.PeakAge(20); got != 14 {
		t.Errorf("PeakAge(20) = %v, want 14", got)
	}
}

func TestPeriodicAverageAge(t *testing.T) {
	// Period 4, delay 1 ⇒ steady-state average 3.
	if got := PeriodicAverageAge(4, 1); got != 3 {
		t.Errorf("PeriodicAverageAge = %v, want 3", got)
	}
}

func TestPeriodicAverageAgeMatchesProcess(t *testing.T) {
	// Simulate many periods and compare to the closed form.
	p := NewProcess(0)
	period, delay := 2.0, 0.5
	for k := 1; k <= 1000; k++ {
		gen := float64(k) * period
		if err := p.Deliver(gen, gen+delay); err != nil {
			t.Fatal(err)
		}
	}
	horizon := 1000 * period
	got := p.AverageAge(horizon)
	want := PeriodicAverageAge(period, delay)
	if !mathx.AlmostEqual(got, want, 1e-2) {
		t.Errorf("simulated periodic average %v, closed form %v", got, want)
	}
}

func TestPeriodicValidation(t *testing.T) {
	for _, tc := range []struct{ period, delay float64 }{{0, 1}, {-1, 1}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PeriodicAverageAge(%v, %v) did not panic", tc.period, tc.delay)
				}
			}()
			PeriodicAverageAge(tc.period, tc.delay)
		}()
	}
}

func TestMM1AverageAgeKnownValue(t *testing.T) {
	// At ρ = 0.5, μ = 1: 1 + 2 + 0.25/0.5 = 3.5.
	if got := MM1AverageAge(0.5, 1); !mathx.AlmostEqual(got, 3.5, 1e-12) {
		t.Errorf("MM1AverageAge = %v, want 3.5", got)
	}
}

func TestMM1Validation(t *testing.T) {
	for _, tc := range []struct{ l, m float64 }{{0, 1}, {1, 1}, {2, 1}, {0.5, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MM1AverageAge(%v, %v) did not panic", tc.l, tc.m)
				}
			}()
			MM1AverageAge(tc.l, tc.m)
		}()
	}
}

func TestOptimalMM1Utilization(t *testing.T) {
	rho := OptimalMM1Utilization()
	// The literature value is ρ* ≈ 0.53.
	if math.Abs(rho-0.53) > 0.01 {
		t.Errorf("optimal utilization = %v, want ≈0.53", rho)
	}
	// It must actually be a minimum.
	f := func(r float64) float64 { return 1 + 1/r + r*r/(1-r) }
	if f(rho) > f(rho-0.05) || f(rho) > f(rho+0.05) {
		t.Error("reported utilization is not a local minimum")
	}
}

func TestSamplingForTargetAge(t *testing.T) {
	// target 3, delay 1 ⇒ period 4 (since avg = period/2 + delay).
	if got := SamplingForTargetAge(3, 1); got != 4 {
		t.Errorf("SamplingForTargetAge = %v, want 4", got)
	}
	if got := PeriodicAverageAge(SamplingForTargetAge(2.5, 0.5), 0.5); !mathx.AlmostEqual(got, 2.5, 1e-12) {
		t.Errorf("round trip = %v, want 2.5", got)
	}
}

func TestSamplingForTargetAgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unreachable target did not panic")
		}
	}()
	SamplingForTargetAge(1, 2)
}

// Property: average age decreases (weakly) as the update period shrinks.
func TestFasterSamplingFresherProperty(t *testing.T) {
	f := func(seed uint8) bool {
		period := 1 + float64(seed%10)
		delay := 0.2
		return PeriodicAverageAge(period/2, delay) <= PeriodicAverageAge(period, delay)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: instantaneous age is always non-negative and at most the time
// since start.
func TestAgeBoundsProperty(t *testing.T) {
	f := func(gens [8]uint8) bool {
		p := NewProcess(0)
		tNow := 0.0
		for _, g := range gens {
			gen := tNow + float64(g%5)
			del := gen + float64(g%3)
			if err := p.Deliver(gen, del); err != nil {
				continue
			}
			tNow = del
		}
		for _, q := range []float64{tNow, tNow + 1, tNow + 10} {
			a := p.Age(q)
			if a < 0 || a > q+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
