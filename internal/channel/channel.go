// Package channel models the wireless link between the source and
// destination RSUs used for Vehicular Twin migration: free-space path loss
// with a path-loss exponent, SNR, Shannon spectral efficiency, and an
// OFDMA sub-channel allocator that keeps concurrent migrations orthogonal.
package channel

import (
	"fmt"
	"math"

	"vtmig/internal/mathx"
)

// Params describes the RSU-to-RSU radio link with the paper's notation.
type Params struct {
	// TxPowerDBm is ρ, the transmit power of the source RSU in dBm
	// (paper: 40 dBm).
	TxPowerDBm float64
	// UnitGainDB is h0, the unit channel power gain in dB (paper: −20 dB).
	UnitGainDB float64
	// DistanceM is d, the distance between the RSUs in meters
	// (paper: 500 m).
	DistanceM float64
	// PathLossExp is ε, the path-loss exponent (paper: 2).
	PathLossExp float64
	// NoiseDBm is N0, the average noise power in dBm (paper: −150 dBm).
	NoiseDBm float64
}

// DefaultParams returns the channel parameters of Section V of the paper.
func DefaultParams() Params {
	return Params{
		TxPowerDBm:  40,
		UnitGainDB:  -20,
		DistanceM:   500,
		PathLossExp: 2,
		NoiseDBm:    -150,
	}
}

// Validate reports whether the parameters are physically meaningful.
func (p Params) Validate() error {
	if p.DistanceM <= 0 {
		return fmt.Errorf("channel: distance must be positive, got %g m", p.DistanceM)
	}
	if p.PathLossExp < 0 {
		return fmt.Errorf("channel: path-loss exponent must be non-negative, got %g", p.PathLossExp)
	}
	return nil
}

// SNR returns the linear signal-to-noise ratio ρ·h0·d^-ε / N0.
func (p Params) SNR() float64 {
	rho := mathx.DBmToWatt(p.TxPowerDBm)
	h0 := mathx.DBToLinear(p.UnitGainDB)
	n0 := mathx.DBmToWatt(p.NoiseDBm)
	return rho * h0 / (math.Pow(p.DistanceM, p.PathLossExp) * n0)
}

// SpectralEfficiency returns e = log2(1 + SNR) in bit/s/Hz — the factor
// that converts purchased bandwidth into migration throughput. With the
// paper's defaults e ≈ 38.54.
func (p Params) SpectralEfficiency() float64 {
	return mathx.Log2OnePlus(p.SNR())
}

// Rate returns the achievable transmission rate γ = b·log2(1+SNR) for
// bandwidth b. With b in MHz and the data unit of 100 MB used throughout
// the reproduction, γ is directly the denominator of the AoTM.
func (p Params) Rate(bandwidth float64) float64 {
	if bandwidth < 0 {
		panic(fmt.Sprintf("channel: negative bandwidth %g", bandwidth))
	}
	return bandwidth * p.SpectralEfficiency()
}
