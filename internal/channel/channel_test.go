package channel

import (
	"math"
	"testing"
	"testing/quick"

	"vtmig/internal/mathx"
)

func TestDefaultSNRMatchesPaper(t *testing.T) {
	// ρ=10 W, h0=0.01, d^-2=4e-6, N0=1e-18 W ⇒ SNR = 4e11.
	p := DefaultParams()
	if got := p.SNR(); !mathx.AlmostEqual(got, 4e11, 1e-9) {
		t.Errorf("SNR = %v, want 4e11", got)
	}
}

func TestDefaultSpectralEfficiency(t *testing.T) {
	p := DefaultParams()
	got := p.SpectralEfficiency()
	want := math.Log2(1 + 4e11) // ≈ 38.54
	if !mathx.AlmostEqual(got, want, 1e-12) {
		t.Errorf("e = %v, want %v", got, want)
	}
	if got < 38.5 || got > 38.6 {
		t.Errorf("e = %v, expected ≈38.54 from the paper's parameters", got)
	}
}

func TestRateLinearInBandwidth(t *testing.T) {
	p := DefaultParams()
	r1 := p.Rate(1)
	r2 := p.Rate(2)
	if !mathx.AlmostEqual(r2, 2*r1, 1e-12) {
		t.Errorf("rate not linear: Rate(2)=%v, 2*Rate(1)=%v", r2, 2*r1)
	}
	if p.Rate(0) != 0 {
		t.Errorf("Rate(0) = %v, want 0", p.Rate(0))
	}
}

func TestRateNegativeBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Rate(-1) did not panic")
		}
	}()
	DefaultParams().Rate(-1)
}

func TestSNRDecreasesWithDistance(t *testing.T) {
	p := DefaultParams()
	near := p
	near.DistanceM = 100
	far := p
	far.DistanceM = 1000
	if near.SNR() <= far.SNR() {
		t.Errorf("SNR must decrease with distance: near %v, far %v", near.SNR(), far.SNR())
	}
}

func TestSNRMonotoneProperty(t *testing.T) {
	f := func(seed uint8) bool {
		d := 10 + float64(seed)*10
		p := DefaultParams()
		p.DistanceM = d
		q := p
		q.DistanceM = d * 2
		// ε=2 ⇒ doubling distance divides SNR by 4.
		return mathx.AlmostEqual(p.SNR()/q.SNR(), 4, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Params)
		wantErr bool
	}{
		{"defaults ok", func(*Params) {}, false},
		{"zero distance", func(p *Params) { p.DistanceM = 0 }, true},
		{"negative exponent", func(p *Params) { p.PathLossExp = -1 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			if err := p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestOFDMAAllocateRelease(t *testing.T) {
	a := NewOFDMAAllocator(10)
	if err := a.Allocate(1, 4); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := a.Allocate(2, 6); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if got := a.Available(); got != 0 {
		t.Errorf("Available = %v, want 0", got)
	}
	if err := a.Allocate(3, 0.1); err == nil {
		t.Error("over-subscription succeeded")
	}
	if err := a.Release(1); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if got := a.Available(); got != 4 {
		t.Errorf("Available after release = %v, want 4", got)
	}
	if a.Grant(2) != 6 {
		t.Errorf("Grant(2) = %v, want 6", a.Grant(2))
	}
	if a.Grant(1) != 0 {
		t.Errorf("Grant(1) after release = %v, want 0", a.Grant(1))
	}
}

// TestOFDMAAvailableNeverNegative pins the rounding-residue clamp: the
// Allocate slack admits grants whose float sum exceeds capacity by one
// ulp (the fixture is a real ScaleToFit output for a 0.5 MHz pool whose
// scaled demands sum to 0.5 + 2⁻⁵³), and Available must report that full
// pool as 0, not as a negative residue. Found by FuzzShardPartition —
// the simulator treats negative availability as corrupted accounting.
func TestOFDMAAvailableNeverNegative(t *testing.T) {
	a := NewOFDMAAllocator(0.5)
	grants := []float64{
		0.19058546444871988,
		0.13466694581334054,
		0.08869872999763292,
		0.08604885974030677,
	}
	for owner, bw := range grants {
		if err := a.Allocate(owner, bw); err != nil {
			t.Fatalf("Allocate(%d, %v): %v", owner, bw, err)
		}
	}
	if a.Used() <= a.Capacity() {
		t.Fatalf("fixture no longer overshoots: used %v <= capacity %v", a.Used(), a.Capacity())
	}
	if got := a.Available(); got != 0 {
		t.Errorf("Available = %v, want exactly 0", got)
	}
}

func TestOFDMARejectsDuplicateOwner(t *testing.T) {
	a := NewOFDMAAllocator(10)
	if err := a.Allocate(1, 1); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := a.Allocate(1, 1); err == nil {
		t.Error("duplicate owner allocation succeeded")
	}
}

func TestOFDMARejectsNonPositive(t *testing.T) {
	a := NewOFDMAAllocator(10)
	if err := a.Allocate(1, 0); err == nil {
		t.Error("zero allocation succeeded")
	}
	if err := a.Allocate(1, -2); err == nil {
		t.Error("negative allocation succeeded")
	}
}

func TestOFDMAReleaseUnknownOwner(t *testing.T) {
	a := NewOFDMAAllocator(10)
	if err := a.Release(7); err == nil {
		t.Error("releasing unknown owner succeeded")
	}
}

func TestOFDMAGrantsSorted(t *testing.T) {
	a := NewOFDMAAllocator(10)
	for _, owner := range []int{3, 1, 2} {
		if err := a.Allocate(owner, 1); err != nil {
			t.Fatalf("Allocate(%d): %v", owner, err)
		}
	}
	grants := a.Grants()
	if len(grants) != 3 {
		t.Fatalf("grants = %d, want 3", len(grants))
	}
	for i, want := range []int{1, 2, 3} {
		if grants[i].Owner != want {
			t.Errorf("grants[%d].Owner = %d, want %d", i, grants[i].Owner, want)
		}
	}
}

func TestOFDMACapacityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewOFDMAAllocator(0) did not panic")
		}
	}()
	NewOFDMAAllocator(0)
}

func TestScaleToFitNoScalingNeeded(t *testing.T) {
	a := NewOFDMAAllocator(10)
	out, scale := a.ScaleToFit([]float64{2, 3})
	if scale != 1 {
		t.Errorf("scale = %v, want 1", scale)
	}
	if out[0] != 2 || out[1] != 3 {
		t.Errorf("out = %v, want [2 3]", out)
	}
}

func TestScaleToFitShrinksProportionally(t *testing.T) {
	a := NewOFDMAAllocator(10)
	out, scale := a.ScaleToFit([]float64{15, 5})
	if !mathx.AlmostEqual(scale, 0.5, 1e-12) {
		t.Errorf("scale = %v, want 0.5", scale)
	}
	if !mathx.AlmostEqual(out[0], 7.5, 1e-12) || !mathx.AlmostEqual(out[1], 2.5, 1e-12) {
		t.Errorf("out = %v, want [7.5 2.5]", out)
	}
	if !mathx.AlmostEqual(mathx.Sum(out), 10, 1e-12) {
		t.Errorf("scaled sum = %v, want capacity 10", mathx.Sum(out))
	}
}

// Conservation property: Σ grants + available == capacity under any
// sequence of allocations and releases.
func TestOFDMAConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		a := NewOFDMAAllocator(100)
		for i, op := range ops {
			owner := i % 7
			if op%2 == 0 {
				_ = a.Allocate(owner, float64(op%50)+0.5)
			} else {
				_ = a.Release(owner)
			}
			var total float64
			for _, g := range a.Grants() {
				total += g.Bandwidth
			}
			if !mathx.AlmostEqual(total+a.Available(), a.Capacity(), 1e-9) {
				return false
			}
			if a.Used() > a.Capacity()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
