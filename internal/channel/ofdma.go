package channel

import (
	"fmt"
	"sort"
)

// Allocation records one OFDMA bandwidth grant.
type Allocation struct {
	// Owner identifies the grantee (e.g. a VMU id).
	Owner int
	// Bandwidth is the granted bandwidth in MHz.
	Bandwidth float64
}

// OFDMAAllocator hands out orthogonal slices of a shared bandwidth pool.
// The paper assumes OFDMA keeps all migration channels between the source
// and destination RSUs orthogonal; this allocator enforces the capacity
// constraint Σ b_n ≤ Bmax that the MSP's Problem 2 imposes.
//
// The allocator is not safe for concurrent use; the discrete-event
// simulator serializes access.
type OFDMAAllocator struct {
	capacity float64
	grants   map[int]float64
	used     float64
}

// NewOFDMAAllocator returns an allocator with the given total capacity in
// MHz (the MSP's Bmax).
func NewOFDMAAllocator(capacity float64) *OFDMAAllocator {
	if capacity <= 0 {
		panic(fmt.Sprintf("channel: OFDMA capacity must be positive, got %g", capacity))
	}
	return &OFDMAAllocator{capacity: capacity, grants: make(map[int]float64)}
}

// Capacity returns the total pool size in MHz.
func (a *OFDMAAllocator) Capacity() float64 { return a.capacity }

// Available returns the unallocated bandwidth in MHz. The Allocate slack
// admits rounding overshoot of at most 1e-12 on a full pool, so the
// difference is clamped at zero rather than exposing a negative rounding
// residue to callers that treat negative availability as corruption.
func (a *OFDMAAllocator) Available() float64 {
	if avail := a.capacity - a.used; avail > 0 {
		return avail
	}
	return 0
}

// Used returns the currently allocated bandwidth in MHz.
func (a *OFDMAAllocator) Used() float64 { return a.used }

// Allocate grants bw MHz to owner. It fails when the owner already holds a
// grant or the pool has insufficient headroom.
func (a *OFDMAAllocator) Allocate(owner int, bw float64) error {
	if a.TryAllocate(owner, bw) {
		return nil
	}
	if bw <= 0 {
		return fmt.Errorf("channel: allocation for owner %d must be positive, got %g MHz", owner, bw)
	}
	if _, exists := a.grants[owner]; exists {
		return fmt.Errorf("channel: owner %d already holds a grant", owner)
	}
	return fmt.Errorf("channel: insufficient capacity: want %g MHz, available %g MHz", bw, a.Available())
}

// TryAllocate is Allocate without the error construction, under exactly
// the same admission checks. It exists for the simulator's pricing loop:
// a fleet-scale round can defer thousands of grants per tick, and
// building a rejection error for each dominated the round's allocations.
func (a *OFDMAAllocator) TryAllocate(owner int, bw float64) bool {
	if bw <= 0 {
		return false
	}
	if _, exists := a.grants[owner]; exists {
		return false
	}
	const slack = 1e-12 // absorb float rounding in Σb ≤ Bmax checks
	if a.used+bw > a.capacity+slack {
		return false
	}
	a.grants[owner] = bw
	a.used += bw
	return true
}

// Release returns owner's grant to the pool.
func (a *OFDMAAllocator) Release(owner int) error {
	bw, ok := a.grants[owner]
	if !ok {
		return fmt.Errorf("channel: owner %d holds no grant", owner)
	}
	delete(a.grants, owner)
	a.used -= bw
	if a.used < 0 {
		a.used = 0
	}
	return nil
}

// Grant returns the bandwidth currently held by owner (0 if none).
func (a *OFDMAAllocator) Grant(owner int) float64 { return a.grants[owner] }

// Grants returns all current allocations sorted by owner id.
func (a *OFDMAAllocator) Grants() []Allocation {
	out := make([]Allocation, 0, len(a.grants))
	for owner, bw := range a.grants {
		out = append(out, Allocation{Owner: owner, Bandwidth: bw})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Owner < out[j].Owner })
	return out
}

// ScaleToFit proportionally shrinks the requested demands so that their sum
// fits within capacity, mirroring how a bandwidth-constrained MSP would
// admit an over-subscribed round. It returns the scaled demands (a new
// slice) and the applied scale factor (1 when no scaling was needed).
func (a *OFDMAAllocator) ScaleToFit(demands []float64) ([]float64, float64) {
	out := make([]float64, len(demands))
	copy(out, demands)
	return out, ScaleDemandsInPlace(out, a.capacity)
}

// ScaleDemandsInPlace is ScaleToFit without the allocator and the result
// slice: it shrinks demands in place so their sum fits within capacity
// and returns the applied scale factor (1 when none was needed). Same
// arithmetic as ScaleToFit — d*scale per element — so the two are
// bit-identical.
func ScaleDemandsInPlace(demands []float64, capacity float64) float64 {
	if capacity <= 0 {
		panic(fmt.Sprintf("channel: OFDMA capacity must be positive, got %g", capacity))
	}
	var total float64
	for _, d := range demands {
		if d < 0 {
			panic(fmt.Sprintf("channel: negative demand %g", d))
		}
		total += d
	}
	if total <= capacity || total == 0 {
		return 1
	}
	scale := capacity / total
	for i, d := range demands {
		demands[i] = d * scale
	}
	return scale
}
