package mat

import (
	"fmt"
	"math"
)

// Dot returns the inner product of x and y, which must have equal length.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// AxpyInto computes dst = a·x + y element-wise. All slices must have the
// same length. dst may alias x or y. It returns dst.
func AxpyInto(dst []float64, a float64, x, y []float64) []float64 {
	if len(x) != len(y) || len(dst) != len(x) {
		panic(fmt.Sprintf("mat: AxpyInto length mismatch dst=%d x=%d y=%d", len(dst), len(x), len(y)))
	}
	for i := range dst {
		dst[i] = a*x[i] + y[i]
	}
	return dst
}

// ScaleInto computes dst = a·x element-wise. dst may alias x.
func ScaleInto(dst []float64, a float64, x []float64) []float64 {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("mat: ScaleInto length mismatch %d vs %d", len(dst), len(x)))
	}
	for i := range dst {
		dst[i] = a * x[i]
	}
	return dst
}

// AddInto computes dst = x + y element-wise. dst may alias either input.
func AddInto(dst, x, y []float64) []float64 {
	return AxpyInto(dst, 1, x, y)
}

// SubInto computes dst = x - y element-wise. dst may alias either input.
func SubInto(dst, x, y []float64) []float64 {
	if len(x) != len(y) || len(dst) != len(x) {
		panic(fmt.Sprintf("mat: SubInto length mismatch dst=%d x=%d y=%d", len(dst), len(x), len(y)))
	}
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
	return dst
}

// MulInto computes the Hadamard product dst = x ⊙ y.
func MulInto(dst, x, y []float64) []float64 {
	if len(x) != len(y) || len(dst) != len(x) {
		panic(fmt.Sprintf("mat: MulInto length mismatch dst=%d x=%d y=%d", len(dst), len(x), len(y)))
	}
	for i := range dst {
		dst[i] = x[i] * y[i]
	}
	return dst
}

// MapInto applies f element-wise: dst = f(x). dst may alias x.
func MapInto(dst []float64, f func(float64) float64, x []float64) []float64 {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("mat: MapInto length mismatch %d vs %d", len(dst), len(x)))
	}
	for i, v := range x {
		dst[i] = f(v)
	}
	return dst
}

// DivSubInto computes the fused quotient-difference dst = x/s − y
// element-wise: dst[i] = x[i]/s − y[i]. dst may alias x or y. The
// per-element expression is exactly one division and one subtraction —
// no reciprocal-multiply rewrite — so results are bit-identical to the
// scalar form a/s − b evaluated element by element.
func DivSubInto(dst, x []float64, s float64, y []float64) []float64 {
	if len(x) != len(y) || len(dst) != len(x) {
		panic(fmt.Sprintf("mat: DivSubInto length mismatch dst=%d x=%d y=%d", len(dst), len(x), len(y)))
	}
	for i := range dst {
		dst[i] = x[i]/s - y[i]
	}
	return dst
}

// ClampMinInto computes dst[i] = x[i] floored at lo, using the branch
// form `if v < lo { v = lo }` rather than math.Max — the branch keeps
// −0.0 and NaN inputs bit-identical to a scalar `if v < lo` clamp
// (math.Max(+0, −0) would flip the sign bit). dst may alias x.
func ClampMinInto(dst, x []float64, lo float64) []float64 {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("mat: ClampMinInto length mismatch %d vs %d", len(dst), len(x)))
	}
	for i, v := range x {
		if v < lo {
			v = lo
		}
		dst[i] = v
	}
	return dst
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var ss float64
	for _, v := range x {
		ss += v * v
	}
	return math.Sqrt(ss)
}

// CloneSlice returns a copy of x.
func CloneSlice(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}
