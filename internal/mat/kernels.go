package mat

import "fmt"

// This file holds the allocation-free GEMM kernel layer: every routine
// writes into a caller-supplied destination, never allocates, and uses a
// fixed per-element accumulation order (k ascending, one accumulator per
// destination element) so results are bit-for-bit deterministic and
// identical to the naive sample-at-a-time loops they replace. Throughput
// comes from loop order and register blocking, not from reassociating
// floating-point sums:
//
//   - MulTo uses the cache-friendly i-k-j loop order (unit stride over both
//     B and C) with row blocking.
//   - MulABTTo consumes Bᵀ without materializing the transpose: row-major
//     A·Bᵀ reads both operands at unit stride, and a 4×4 register tile
//     reuses each loaded element four times.
//   - MulATBAddTo accumulates Aᵀ·B directly into dst, preserving the
//     element-wise accumulation order of repeated rank-1 updates
//     (AddOuterScaled), which gradient accumulation relies on.

// blockRows is the row-panel size for MulTo: 64 rows of C (and A) are
// processed per panel so the panel of B stays hot in L1/L2 across the
// panel's k sweep.
const blockRows = 64

func checkShape(op string, gotR, gotC, wantR, wantC int) {
	if gotR != wantR || gotC != wantC {
		panic(fmt.Sprintf("mat: %s shape %dx%d, want %dx%d", op, gotR, gotC, wantR, wantC))
	}
}

// MulTo computes dst = a·b. Shapes: a is m×k, b is k×n, dst is m×n.
// dst must not alias a or b. It returns dst.
//
// Per destination element the sum runs over k ascending — the same order
// as a row-times-column dot product — so the result is bit-identical to
// the textbook triple loop.
func MulTo(dst, a, b *Matrix) *Matrix {
	checkShape("MulTo b", b.Rows, b.Cols, a.Cols, b.Cols)
	checkShape("MulTo dst", dst.Rows, dst.Cols, a.Rows, b.Cols)
	dst.Zero()
	return MulAddTo(dst, a, b)
}

// MulAddTo computes dst += a·b with the same shape rules and accumulation
// order as MulTo. Each dst element is updated k-ascending with a single
// accumulator, so the result is bit-identical to accumulating k rank-1
// updates in order; unrolling k by 4 keeps the accumulator in a register
// across four fused updates instead of bouncing through memory.
func MulAddTo(dst, a, b *Matrix) *Matrix {
	checkShape("MulAddTo b", b.Rows, b.Cols, a.Cols, b.Cols)
	checkShape("MulAddTo dst", dst.Rows, dst.Cols, a.Rows, b.Cols)
	m, kk, n := a.Rows, a.Cols, b.Cols
	for i0 := 0; i0 < m; i0 += blockRows {
		i1 := i0 + blockRows
		if i1 > m {
			i1 = m
		}
		for i := i0; i < i1; i++ {
			arow := a.Data[i*kk : (i+1)*kk]
			crow := dst.Data[i*n : (i+1)*n]
			k := 0
			for ; k+4 <= kk; k += 4 {
				u0, u1, u2, u3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
				b0 := b.Data[k*n : (k+1)*n]
				b1 := b.Data[(k+1)*n : (k+2)*n]
				b2 := b.Data[(k+2)*n : (k+3)*n]
				b3 := b.Data[(k+3)*n : (k+4)*n]
				for j, c := range crow {
					c += u0 * b0[j]
					c += u1 * b1[j]
					c += u2 * b2[j]
					c += u3 * b3[j]
					crow[j] = c
				}
			}
			for ; k < kk; k++ {
				u := arow[k]
				brow := b.Data[k*n : (k+1)*n]
				for j, bv := range brow {
					crow[j] += u * bv
				}
			}
		}
	}
	return dst
}

// MulABTTo computes dst = a·bᵀ without materializing the transpose.
// Shapes: a is m×k, b is n×k, dst is m×n. dst must not alias a or b.
//
// Element (i, j) is the dot product of row i of a and row j of b,
// accumulated over k ascending in a single accumulator — bit-identical to
// Matrix.MulVec applied row by row. A 4×4 register tile supplies the
// instruction-level parallelism.
func MulABTTo(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulABTTo inner dims %d vs %d", a.Cols, b.Cols))
	}
	checkShape("MulABTTo dst", dst.Rows, dst.Cols, a.Rows, b.Rows)
	mulABT(dst, a, b, nil)
	return dst
}

// MulABTBiasTo computes dst = a·bᵀ + bias, broadcasting bias (length
// b.Rows) across the rows of dst. The bias is added after the full dot
// product, matching "y = W·x then y += b" bit for bit.
func MulABTBiasTo(dst, a, b *Matrix, bias []float64) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulABTBiasTo inner dims %d vs %d", a.Cols, b.Cols))
	}
	checkShape("MulABTBiasTo dst", dst.Rows, dst.Cols, a.Rows, b.Rows)
	if len(bias) != b.Rows {
		panic(fmt.Sprintf("mat: MulABTBiasTo bias length %d, want %d", len(bias), b.Rows))
	}
	mulABT(dst, a, b, bias)
	return dst
}

// mulABT is the shared kernel behind MulABTTo and MulABTBiasTo. A nil
// bias skips the broadcast add. The 2×4 register tile (8 accumulators
// plus 6 live operands) is sized to the 16 vector registers of amd64 —
// a 4×4 tile spills and measures ~1.8× slower.
func mulABT(dst, a, b *Matrix, bias []float64) {
	m, kk, n := a.Rows, a.Cols, b.Rows
	i := 0
	for ; i+2 <= m; i += 2 {
		a0 := a.Data[i*kk : (i+1)*kk]
		a1 := a.Data[(i+1)*kk : (i+2)*kk]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b.Data[j*kk : (j+1)*kk]
			b1 := b.Data[(j+1)*kk : (j+2)*kk]
			b2 := b.Data[(j+2)*kk : (j+3)*kk]
			b3 := b.Data[(j+3)*kk : (j+4)*kk]
			var c00, c01, c02, c03 float64
			var c10, c11, c12, c13 float64
			for k := 0; k < kk; k++ {
				v0, v1, v2, v3 := b0[k], b1[k], b2[k], b3[k]
				u0, u1 := a0[k], a1[k]
				c00 += u0 * v0
				c01 += u0 * v1
				c02 += u0 * v2
				c03 += u0 * v3
				c10 += u1 * v0
				c11 += u1 * v1
				c12 += u1 * v2
				c13 += u1 * v3
			}
			if bias != nil {
				w0, w1, w2, w3 := bias[j], bias[j+1], bias[j+2], bias[j+3]
				c00, c01, c02, c03 = c00+w0, c01+w1, c02+w2, c03+w3
				c10, c11, c12, c13 = c10+w0, c11+w1, c12+w2, c13+w3
			}
			d0 := dst.Data[i*n+j:]
			d1 := dst.Data[(i+1)*n+j:]
			d0[0], d0[1], d0[2], d0[3] = c00, c01, c02, c03
			d1[0], d1[1], d1[2], d1[3] = c10, c11, c12, c13
		}
		for ; j < n; j++ {
			brow := b.Data[j*kk : (j+1)*kk]
			var c0, c1 float64
			for k, bv := range brow {
				c0 += a0[k] * bv
				c1 += a1[k] * bv
			}
			if bias != nil {
				w := bias[j]
				c0, c1 = c0+w, c1+w
			}
			dst.Data[i*n+j] = c0
			dst.Data[(i+1)*n+j] = c1
		}
	}
	for ; i < m; i++ {
		arow := a.Data[i*kk : (i+1)*kk]
		crow := dst.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*kk : (j+1)*kk]
			var c float64
			for k, bv := range brow {
				c += arow[k] * bv
			}
			if bias != nil {
				c += bias[j]
			}
			crow[j] = c
		}
	}
}

// MulATBAddTo computes dst += aᵀ·b without materializing the transpose.
// Shapes: a is k×m, b is k×n, dst is m×n. dst must not alias a or b.
//
// Each dst element starts from its current value and accumulates the k
// terms in ascending order — bit-identical to applying k scaled rank-1
// updates (AddOuterScaled) one at a time, which is exactly how
// sample-at-a-time gradient accumulation orders its sums. Unrolling k by
// 4 keeps each dst element in a register across four fused updates.
func MulATBAddTo(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: MulATBAddTo outer dims %d vs %d", a.Rows, b.Rows))
	}
	checkShape("MulATBAddTo dst", dst.Rows, dst.Cols, a.Cols, b.Cols)
	kk, m, n := a.Rows, a.Cols, b.Cols
	k := 0
	for ; k+4 <= kk; k += 4 {
		a0 := a.Data[k*m : (k+1)*m]
		a1 := a.Data[(k+1)*m : (k+2)*m]
		a2 := a.Data[(k+2)*m : (k+3)*m]
		a3 := a.Data[(k+3)*m : (k+4)*m]
		b0 := b.Data[k*n : (k+1)*n]
		b1 := b.Data[(k+1)*n : (k+2)*n]
		b2 := b.Data[(k+2)*n : (k+3)*n]
		b3 := b.Data[(k+3)*n : (k+4)*n]
		for i := 0; i < m; i++ {
			u0, u1, u2, u3 := a0[i], a1[i], a2[i], a3[i]
			crow := dst.Data[i*n : (i+1)*n]
			for j, c := range crow {
				c += u0 * b0[j]
				c += u1 * b1[j]
				c += u2 * b2[j]
				c += u3 * b3[j]
				crow[j] = c
			}
		}
	}
	for ; k < kk; k++ {
		arow := a.Data[k*m : (k+1)*m]
		brow := b.Data[k*n : (k+1)*n]
		for i, av := range arow {
			crow := dst.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return dst
}

// AddTo computes dst = a + b element-wise. Shapes must match; dst may
// alias either operand. It returns dst.
func AddTo(dst, a, b *Matrix) *Matrix {
	checkShape("AddTo b", b.Rows, b.Cols, a.Rows, a.Cols)
	checkShape("AddTo dst", dst.Rows, dst.Cols, a.Rows, a.Cols)
	for i, v := range a.Data {
		dst.Data[i] = v + b.Data[i]
	}
	return dst
}

// ScaleTo computes dst = s·a element-wise. Shapes must match; dst may
// alias a. It returns dst.
func ScaleTo(dst *Matrix, s float64, a *Matrix) *Matrix {
	checkShape("ScaleTo dst", dst.Rows, dst.Cols, a.Rows, a.Cols)
	for i, v := range a.Data {
		dst.Data[i] = s * v
	}
	return dst
}

// AddColSumTo accumulates the column sums of a into dst: dst[j] += Σᵢ
// a[i][j], rows ascending — the batched form of repeated bias-gradient
// adds. dst must have length a.Cols.
func AddColSumTo(dst []float64, a *Matrix) []float64 {
	if len(dst) != a.Cols {
		panic(fmt.Sprintf("mat: AddColSumTo dst length %d, want %d", len(dst), a.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			dst[j] += v
		}
	}
	return dst
}

// Resize reshapes m to rows×cols in place, reusing the backing storage
// when its capacity allows and allocating otherwise. The contents are
// unspecified afterwards; callers must fully overwrite them.
func (m *Matrix) Resize(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid shape %dx%d", rows, cols))
	}
	n := rows * cols
	if cap(m.Data) >= n {
		m.Data = m.Data[:n]
	} else {
		m.Data = make([]float64, n)
	}
	m.Rows, m.Cols = rows, cols
	return m
}
