package mat

import "sync"

// Pool recycles scratch buffers for the kernel layer: destination-passing
// callers that need transient matrices or vectors whose peak shape is not
// known up front can Get/Put instead of allocating per call. The
// steady-state hot loops in this repository (the PPO update, layer
// caches, the sharded-update worker clones, the Stackelberg EvalScratch)
// deliberately do NOT use it — they keep scratch in struct fields, which
// stays allocation-free even when GC pressure empties a sync.Pool, a
// property the AllocsPerRun regression tests depend on — so Pool
// currently has no in-repo callers outside its tests; it is provided for
// future transient-scratch call sites.
//
// The zero value is ready to use and safe for concurrent callers.
type Pool struct {
	mats sync.Pool
	vecs sync.Pool
}

// GetMatrix returns a rows×cols matrix with unspecified contents. Call
// Zero on it if the kernel does not fully overwrite the destination.
func (p *Pool) GetMatrix(rows, cols int) *Matrix {
	if m, ok := p.mats.Get().(*Matrix); ok && m != nil {
		return m.Resize(rows, cols)
	}
	return New(rows, cols)
}

// PutMatrix returns a matrix to the pool. The caller must not use m
// afterwards.
func (p *Pool) PutMatrix(m *Matrix) {
	if m != nil {
		p.mats.Put(m)
	}
}

// GetVec returns a length-n slice with unspecified contents.
func (p *Pool) GetVec(n int) []float64 {
	if v, ok := p.vecs.Get().(*[]float64); ok && v != nil && cap(*v) >= n {
		return (*v)[:n]
	}
	return make([]float64, n)
}

// PutVec returns a slice to the pool. The caller must not use v
// afterwards.
func (p *Pool) PutVec(v []float64) {
	if v == nil {
		return
	}
	p.vecs.Put(&v)
}
