// Package mat implements the small dense linear-algebra kernel used by the
// vtmig neural-network substrate: row-major matrices, vectors, products,
// and element-wise maps.
//
// The package favours explicitness over generality — shapes are validated
// eagerly and mismatches panic, because a shape error is always a
// programming bug, never a runtime condition to handle.
package mat

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	// Data holds the elements in row-major order: element (i, j) lives at
	// Data[i*Cols+j]. len(Data) == Rows*Cols always holds.
	Data []float64
}

// New returns a zero-initialized rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice returns a rows×cols matrix that adopts data (no copy).
// len(data) must equal rows*cols.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid shape %dx%d", rows, cols))
	}
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: FromSlice data length %d does not match shape %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: index (%d, %d) out of range for %dx%d matrix", i, j, m.Rows, m.Cols))
	}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("mat: row %d out of range for %dx%d matrix", i, m.Rows, m.Cols))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element of m to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v in place.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Randomize fills m with samples from N(0, stddev²) using rng.
func (m *Matrix) Randomize(rng *rand.Rand, stddev float64) {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * stddev
	}
}

// XavierInit fills m with the Glorot/Xavier uniform initialization for a
// layer with fanIn inputs and fanOut outputs.
func (m *Matrix) XavierInit(rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// MulVec computes m · x and stores the result in dst, which must have
// length m.Rows. x must have length m.Cols. It returns dst.
//
// Four output rows are computed per pass with independent accumulators,
// which hides the floating-point add latency of a single dot-product
// chain; each output element still accumulates k-ascending in one
// accumulator, so results are bit-identical to the plain row loop.
func (m *Matrix) MulVec(x, dst []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("mat: MulVec input length %d, want %d", len(x), m.Cols))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: MulVec output length %d, want %d", len(dst), m.Rows))
	}
	cols := m.Cols
	i := 0
	for ; i+4 <= m.Rows; i += 4 {
		r0 := m.Data[i*cols : (i+1)*cols]
		r1 := m.Data[(i+1)*cols : (i+2)*cols]
		r2 := m.Data[(i+2)*cols : (i+3)*cols]
		r3 := m.Data[(i+3)*cols : (i+4)*cols]
		var s0, s1, s2, s3 float64
		for j, xv := range x {
			s0 += r0[j] * xv
			s1 += r1[j] * xv
			s2 += r2[j] * xv
			s3 += r3[j] * xv
		}
		dst[i], dst[i+1], dst[i+2], dst[i+3] = s0, s1, s2, s3
	}
	for ; i < m.Rows; i++ {
		row := m.Data[i*cols : (i+1)*cols]
		var s float64
		for j, w := range row {
			s += w * x[j]
		}
		dst[i] = s
	}
	return dst
}

// MulVecT computes mᵀ · x (x has length m.Rows) and stores the result in
// dst, which must have length m.Cols. It returns dst.
func (m *Matrix) MulVecT(x, dst []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("mat: MulVecT input length %d, want %d", len(x), m.Rows))
	}
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("mat: MulVecT output length %d, want %d", len(dst), m.Cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			dst[j] += w * xi
		}
	}
	return dst
}

// AddOuterScaled accumulates scale · (x ⊗ y) into m, where x has length
// m.Rows and y has length m.Cols. It is the rank-1 update used by gradient
// accumulation.
func (m *Matrix) AddOuterScaled(x, y []float64, scale float64) {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("mat: AddOuterScaled x length %d, want %d", len(x), m.Rows))
	}
	if len(y) != m.Cols {
		panic(fmt.Sprintf("mat: AddOuterScaled y length %d, want %d", len(y), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		s := x[i] * scale
		if s == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			row[j] += s * y[j]
		}
	}
}

// AddScaled accumulates scale · other into m. Shapes must match.
func (m *Matrix) AddScaled(other *Matrix, scale float64) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("mat: AddScaled shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	for i, v := range other.Data {
		m.Data[i] += scale * v
	}
}

// Scale multiplies every element of m by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var ss float64
	for _, v := range m.Data {
		ss += v * v
	}
	return math.Sqrt(ss)
}

// Equal reports whether m and other have the same shape and identical
// elements.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != other.Data[i] {
			return false
		}
	}
	return true
}

// String formats the matrix for debugging.
func (m *Matrix) String() string {
	return fmt.Sprintf("mat.Matrix{%dx%d}", m.Rows, m.Cols)
}
