package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestDivSubIntoMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 20
			y[i] = rng.NormFloat64() * 20
		}
		s := 0.1 + rng.Float64()*49.9
		dst := DivSubInto(make([]float64, n), x, s, y)
		for i := range dst {
			want := x[i]/s - y[i]
			if math.Float64bits(dst[i]) != math.Float64bits(want) {
				t.Fatalf("trial %d: dst[%d] = %v, want %v (bit mismatch)", trial, i, dst[i], want)
			}
		}
	}
}

func TestDivSubIntoAliases(t *testing.T) {
	x := []float64{10, 20, 30}
	y := []float64{1, 2, 3}
	DivSubInto(x, x, 10, y)
	for i, want := range []float64{0, 0, 0} {
		if x[i] != want {
			t.Errorf("aliased dst[%d] = %v, want %v", i, x[i], want)
		}
	}
}

func TestClampMinIntoMatchesBranch(t *testing.T) {
	negZero := math.Copysign(0, -1)
	x := []float64{-1, negZero, 0, 2.5, math.Inf(-1), math.NaN()}
	dst := ClampMinInto(make([]float64, len(x)), x, 0)
	for i, v := range x {
		want := v
		if want < 0 {
			want = 0
		}
		if math.Float64bits(dst[i]) != math.Float64bits(want) {
			t.Errorf("dst[%d] = %x, want %x", i, math.Float64bits(dst[i]), math.Float64bits(want))
		}
	}
	// The branch form must preserve −0.0 (−0 < 0 is false) where
	// math.Max(0, −0) would return +0.
	if math.Signbit(dst[1]) != true {
		t.Errorf("ClampMinInto flipped −0.0 to +0.0")
	}
	// NaN passes through: NaN < 0 is false.
	if !math.IsNaN(dst[5]) {
		t.Errorf("ClampMinInto altered NaN to %v", dst[5])
	}
}

func TestFusedKernelLengthPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"DivSubInto/x":   func() { DivSubInto(make([]float64, 2), make([]float64, 3), 1, make([]float64, 2)) },
		"DivSubInto/y":   func() { DivSubInto(make([]float64, 2), make([]float64, 2), 1, make([]float64, 3)) },
		"ClampMinInto/x": func() { ClampMinInto(make([]float64, 2), make([]float64, 3), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestFusedKernelsAllocationFree(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{4, 3, 2, 1}
	dst := make([]float64, 4)
	if n := testing.AllocsPerRun(100, func() {
		DivSubInto(dst, x, 3, y)
		ClampMinInto(dst, dst, 0)
	}); n != 0 {
		t.Errorf("fused kernels allocate %v per run, want 0", n)
	}
}
