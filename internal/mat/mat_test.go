package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vtmig/internal/mathx"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) shape = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Errorf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", shape[0], shape[1])
				}
			}()
			New(shape[0], shape[1])
		}()
	}
}

func TestFromSlice(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if got := m.At(0, 2); got != 3 {
		t.Errorf("At(0,2) = %v, want 3", got)
	}
	if got := m.At(1, 0); got != 4 {
		t.Errorf("At(1,0) = %v, want 4", got)
	}
}

func TestFromSlicePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestAtSetRoundTrip(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 1, 42)
	if got := m.At(1, 1); got != 42 {
		t.Errorf("At(1,1) = %v, want 42", got)
	}
}

func TestIndexOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	for _, idx := range [][2]int{{2, 0}, {0, 2}, {-1, 0}, {0, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) did not panic", idx[0], idx[1])
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestRowAliases(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	r := m.Row(1)
	r[0] = 99
	if got := m.At(1, 0); got != 99 {
		t.Errorf("Row must alias storage; At(1,0) = %v, want 99", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) != 1 {
		t.Error("Clone is not a deep copy")
	}
	if !m.Equal(m.Clone()) {
		t.Error("Clone should be Equal to the original")
	}
}

func TestMulVec(t *testing.T) {
	// [1 2; 3 4] * [5, 6] = [17, 39]
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	got := m.MulVec([]float64{5, 6}, make([]float64, 2))
	if got[0] != 17 || got[1] != 39 {
		t.Errorf("MulVec = %v, want [17 39]", got)
	}
}

func TestMulVecT(t *testing.T) {
	// [1 2; 3 4]^T * [5, 6] = [1*5+3*6, 2*5+4*6] = [23, 34]
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	got := m.MulVecT([]float64{5, 6}, make([]float64, 2))
	if got[0] != 23 || got[1] != 34 {
		t.Errorf("MulVecT = %v, want [23 34]", got)
	}
}

func TestMulVecShapePanics(t *testing.T) {
	m := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("MulVec with wrong input length did not panic")
		}
	}()
	m.MulVec(make([]float64, 2), make([]float64, 2))
}

// Property: for random m, x, y we have (m·x)·y == x·(mᵀ·y) — the adjoint
// identity that backpropagation depends on.
func TestMulVecAdjointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		rows := 1 + rng.Intn(8)
		cols := 1 + rng.Intn(8)
		m := New(rows, cols)
		m.Randomize(rng, 1)
		x := randVec(rng, cols)
		y := randVec(rng, rows)
		lhs := Dot(m.MulVec(x, make([]float64, rows)), y)
		rhs := Dot(x, m.MulVecT(y, make([]float64, cols)))
		if !mathx.AlmostEqual(lhs, rhs, 1e-9) {
			t.Fatalf("adjoint identity violated: %v vs %v (shape %dx%d)", lhs, rhs, rows, cols)
		}
	}
}

func TestAddOuterScaled(t *testing.T) {
	m := New(2, 2)
	m.AddOuterScaled([]float64{1, 2}, []float64{3, 4}, 2)
	want := FromSlice(2, 2, []float64{6, 8, 12, 16})
	if !m.Equal(want) {
		t.Errorf("AddOuterScaled = %v, want %v", m.Data, want.Data)
	}
}

func TestAddOuterScaledAccumulates(t *testing.T) {
	m := FromSlice(1, 1, []float64{10})
	m.AddOuterScaled([]float64{2}, []float64{3}, 1)
	if got := m.At(0, 0); got != 16 {
		t.Errorf("accumulated value = %v, want 16", got)
	}
}

func TestAddScaledAndScale(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	n := FromSlice(1, 2, []float64{10, 20})
	m.AddScaled(n, 0.5)
	if m.At(0, 0) != 6 || m.At(0, 1) != 12 {
		t.Errorf("AddScaled = %v, want [6 12]", m.Data)
	}
	m.Scale(2)
	if m.At(0, 0) != 12 || m.At(0, 1) != 24 {
		t.Errorf("Scale = %v, want [12 24]", m.Data)
	}
}

func TestAddScaledShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddScaled shape mismatch did not panic")
		}
	}()
	New(2, 2).AddScaled(New(2, 3), 1)
}

func TestZeroFill(t *testing.T) {
	m := FromSlice(1, 3, []float64{1, 2, 3})
	m.Fill(7)
	for _, v := range m.Data {
		if v != 7 {
			t.Fatalf("Fill: got %v", m.Data)
		}
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatalf("Zero: got %v", m.Data)
		}
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromSlice(1, 2, []float64{3, 4})
	if got := m.FrobeniusNorm(); got != 5 {
		t.Errorf("FrobeniusNorm = %v, want 5", got)
	}
}

func TestXavierInitWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := New(64, 64)
	m.XavierInit(rng, 64, 64)
	limit := math.Sqrt(6.0 / 128.0)
	for _, v := range m.Data {
		if math.Abs(v) > limit {
			t.Fatalf("Xavier sample %v exceeds limit %v", v, limit)
		}
	}
	// The draw should not be degenerate.
	if m.FrobeniusNorm() == 0 {
		t.Error("Xavier init produced an all-zero matrix")
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot length mismatch did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestVectorOps(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{10, 20}
	if got := AxpyInto(make([]float64, 2), 2, x, y); got[0] != 12 || got[1] != 24 {
		t.Errorf("AxpyInto = %v, want [12 24]", got)
	}
	if got := AddInto(make([]float64, 2), x, y); got[0] != 11 || got[1] != 22 {
		t.Errorf("AddInto = %v, want [11 22]", got)
	}
	if got := SubInto(make([]float64, 2), y, x); got[0] != 9 || got[1] != 18 {
		t.Errorf("SubInto = %v, want [9 18]", got)
	}
	if got := MulInto(make([]float64, 2), x, y); got[0] != 10 || got[1] != 40 {
		t.Errorf("MulInto = %v, want [10 40]", got)
	}
	if got := ScaleInto(make([]float64, 2), 3, x); got[0] != 3 || got[1] != 6 {
		t.Errorf("ScaleInto = %v, want [3 6]", got)
	}
	if got := MapInto(make([]float64, 2), func(v float64) float64 { return v * v }, x); got[0] != 1 || got[1] != 4 {
		t.Errorf("MapInto = %v, want [1 4]", got)
	}
}

func TestVectorOpsAlias(t *testing.T) {
	x := []float64{1, 2}
	AddInto(x, x, x)
	if x[0] != 2 || x[1] != 4 {
		t.Errorf("aliased AddInto = %v, want [2 4]", x)
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Errorf("Norm2(nil) = %v, want 0", got)
	}
}

func TestCloneSlice(t *testing.T) {
	x := []float64{1, 2}
	c := CloneSlice(x)
	c[0] = 9
	if x[0] != 1 {
		t.Error("CloneSlice is not a copy")
	}
}

func TestDotSymmetryProperty(t *testing.T) {
	f := func(a, b [4]float64) bool {
		for _, v := range append(a[:], b[:]...) {
			// Huge magnitudes overflow to ±Inf, and a sum containing
			// Inf-Inf yields NaN, which is not equal to itself.
			if math.IsNaN(v) || math.Abs(v) > 1e150 {
				return true
			}
		}
		return Dot(a[:], b[:]) == Dot(b[:], a[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
