package mat

import (
	"math/rand"
	"testing"
)

// randMat returns a rows×cols matrix with standard-normal entries.
func randMat(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	m.Randomize(rng, 1)
	return m
}

// naiveMul is the textbook triple loop with k-ascending dot products, the
// reference accumulation order the kernels must reproduce bit for bit.
func naiveMul(a, b *Matrix) *Matrix {
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func TestMulToMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sz := range [][3]int{{1, 1, 1}, {3, 5, 4}, {20, 21, 64}, {65, 130, 67}} {
		a := randMat(rng, sz[0], sz[1])
		b := randMat(rng, sz[1], sz[2])
		got := MulTo(New(sz[0], sz[2]), a, b)
		want := naiveMul(a, b)
		if !got.Equal(want) {
			t.Errorf("MulTo %v: result differs from naive reference", sz)
		}
	}
}

func TestMulAddToAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 7, 9)
	b := randMat(rng, 9, 5)
	dst := randMat(rng, 7, 5)
	want := dst.Clone()
	// Reference: replicate the kernel's exact accumulation order —
	// element-wise dst += one k-term at a time, k ascending.
	for i := 0; i < 7; i++ {
		for k := 0; k < 9; k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			for j := 0; j < 5; j++ {
				want.Set(i, j, want.At(i, j)+aik*b.At(k, j))
			}
		}
	}
	if got := MulAddTo(dst, a, b); !got.Equal(want) {
		t.Error("MulAddTo differs from in-order accumulation reference")
	}
}

// TestMulABTToMatchesMulVec checks bit-exact agreement with the
// sample-at-a-time path it replaces: each row of A pushed through
// Matrix.MulVec against W.
func TestMulABTToMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, sz := range [][3]int{{1, 3, 2}, {4, 4, 4}, {5, 17, 9}, {20, 20, 64}, {23, 13, 66}} {
		batch, in, out := sz[0], sz[1], sz[2]
		x := randMat(rng, batch, in)
		w := randMat(rng, out, in)
		got := MulABTTo(New(batch, out), x, w)
		dst := make([]float64, out)
		for b := 0; b < batch; b++ {
			w.MulVec(x.Row(b), dst)
			for j, v := range dst {
				if got.At(b, j) != v {
					t.Fatalf("size %v: element (%d,%d) = %v, MulVec gives %v", sz, b, j, got.At(b, j), v)
				}
			}
		}
	}
}

// TestMulABTBiasToMatchesForward checks the fused bias add against the
// sequential "dot then add bias" order.
func TestMulABTBiasToMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	batch, in, out := 6, 11, 7
	x := randMat(rng, batch, in)
	w := randMat(rng, out, in)
	bias := make([]float64, out)
	for i := range bias {
		bias[i] = rng.NormFloat64()
	}
	got := MulABTBiasTo(New(batch, out), x, w, bias)
	dst := make([]float64, out)
	for b := 0; b < batch; b++ {
		w.MulVec(x.Row(b), dst)
		for j := range dst {
			want := dst[j] + bias[j]
			if got.At(b, j) != want {
				t.Fatalf("element (%d,%d) = %v, want %v", b, j, got.At(b, j), want)
			}
		}
	}
}

// TestMulATBAddToMatchesOuterUpdates checks bit-exact agreement with the
// gradient-accumulation path it replaces: one AddOuterScaled rank-1 update
// per batch row, applied in row order.
func TestMulATBAddToMatchesOuterUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	batch, out, in := 9, 6, 13
	dy := randMat(rng, batch, out)
	x := randMat(rng, batch, in)
	got := randMat(rng, out, in)
	want := got.Clone()
	for b := 0; b < batch; b++ {
		want.AddOuterScaled(dy.Row(b), x.Row(b), 1)
	}
	if MulATBAddTo(got, dy, x); !got.Equal(want) {
		t.Error("MulATBAddTo differs from sequential AddOuterScaled updates")
	}
}

// TestMulToMatchesMulVecT checks that dX = dY·W agrees bit for bit with
// per-row MulVecT, the backward input-gradient path it replaces.
func TestMulToMatchesMulVecT(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	batch, out, in := 8, 10, 12
	dy := randMat(rng, batch, out)
	w := randMat(rng, out, in)
	got := MulTo(New(batch, in), dy, w)
	dst := make([]float64, in)
	for b := 0; b < batch; b++ {
		w.MulVecT(dy.Row(b), dst)
		for j, v := range dst {
			if got.At(b, j) != v {
				t.Fatalf("element (%d,%d) = %v, MulVecT gives %v", b, j, got.At(b, j), v)
			}
		}
	}
}

func TestAddToScaleToAddColSumTo(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{10, 20, 30, 40})
	sum := AddTo(New(2, 2), a, b)
	if sum.At(1, 1) != 44 {
		t.Errorf("AddTo = %v, want 44", sum.At(1, 1))
	}
	sc := ScaleTo(New(2, 2), 2, a)
	if sc.At(0, 1) != 4 {
		t.Errorf("ScaleTo = %v, want 4", sc.At(0, 1))
	}
	cs := []float64{1, 1}
	AddColSumTo(cs, a)
	if cs[0] != 5 || cs[1] != 7 {
		t.Errorf("AddColSumTo = %v, want [5 7]", cs)
	}
}

func TestKernelShapePanics(t *testing.T) {
	a := New(2, 3)
	b := New(4, 5)
	for name, fn := range map[string]func(){
		"MulTo":       func() { MulTo(New(2, 5), a, b) },
		"MulABTTo":    func() { MulABTTo(New(2, 4), a, b) },
		"MulATBAddTo": func() { MulATBAddTo(New(3, 5), a, b) },
		"AddTo":       func() { AddTo(New(2, 3), a, b) },
		"Resize":      func() { New(1, 1).Resize(0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: shape mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestResizeReusesStorage(t *testing.T) {
	m := New(4, 8)
	data := &m.Data[0]
	m.Resize(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("Resize gave %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	if &m.Data[0] != data {
		t.Error("Resize to smaller shape reallocated")
	}
	m.Resize(10, 10)
	if len(m.Data) != 100 {
		t.Fatalf("Resize grow gave len %d", len(m.Data))
	}
}

func TestPoolRoundTrip(t *testing.T) {
	var p Pool
	m := p.GetMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("GetMatrix shape %dx%d", m.Rows, m.Cols)
	}
	p.PutMatrix(m)
	m2 := p.GetMatrix(2, 2)
	if m2.Rows != 2 || m2.Cols != 2 {
		t.Fatalf("GetMatrix shape %dx%d", m2.Rows, m2.Cols)
	}
	v := p.GetVec(7)
	if len(v) != 7 {
		t.Fatalf("GetVec len %d", len(v))
	}
	p.PutVec(v)
	if v2 := p.GetVec(3); len(v2) != 3 {
		t.Fatalf("GetVec len %d", len(v2))
	}
}

// TestKernelsAllocationFree locks in the zero-allocation contract of the
// destination-passing kernels.
func TestKernelsAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randMat(rng, 20, 24)
	w := randMat(rng, 64, 24)
	b := randMat(rng, 24, 16)
	dstABT := New(20, 64)
	dstMul := New(20, 16)
	dstATB := New(20, 16)
	bias := make([]float64, 64)
	cs := make([]float64, 24)
	dy := randMat(rng, 24, 20)
	for name, fn := range map[string]func(){
		"MulTo":        func() { MulTo(dstMul, a, b) },
		"MulABTTo":     func() { MulABTTo(dstABT, a, w) },
		"MulABTBiasTo": func() { MulABTBiasTo(dstABT, a, w, bias) },
		"MulATBAddTo":  func() { MulATBAddTo(dstATB, dy, b) },
		"AddColSumTo":  func() { AddColSumTo(cs, a) },
	} {
		if n := testing.AllocsPerRun(10, fn); n != 0 {
			t.Errorf("%s allocates %v times per call, want 0", name, n)
		}
	}
}
