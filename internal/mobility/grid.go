package mobility

import (
	"fmt"
	"math"
	"math/rand"

	"vtmig/internal/mathx"
)

// Grid is a Manhattan street grid: Rows horizontal and Cols vertical
// streets crossing at Rows×Cols intersections spaced SpacingM apart, one
// RSU per intersection. Vehicles drive along streets and pick a random
// turn at every intersection from a per-vehicle RNG stream, so each
// trajectory depends only on (TurnSeed, vehicle id, spawn state) — never
// on which other vehicles exist (determinism contract rule 2 applied to
// mobility).
type Grid struct {
	// Rows and Cols count the horizontal and vertical streets.
	Rows, Cols int
	// SpacingM is the distance between adjacent parallel streets.
	SpacingM float64
	// RadiusM is every intersection RSU's coverage radius.
	RadiusM float64
	// TurnSeed salts the per-vehicle turn-decision streams.
	TurnSeed int64

	turnRngs map[int]*rand.Rand
}

// NewGrid builds a Manhattan grid world.
func NewGrid(rows, cols int, spacingM, radiusM float64, turnSeed int64) (*Grid, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("mobility: grid needs at least 2 rows and 2 cols, got %dx%d", rows, cols)
	}
	if spacingM <= 0 {
		return nil, fmt.Errorf("mobility: grid spacing must be positive, got %g", spacingM)
	}
	if radiusM <= 0 {
		return nil, fmt.Errorf("mobility: coverage radius must be positive, got %g", radiusM)
	}
	return &Grid{
		Rows: rows, Cols: cols,
		SpacingM: spacingM, RadiusM: radiusM,
		TurnSeed: turnSeed,
		turnRngs: make(map[int]*rand.Rand),
	}, nil
}

// WidthM and HeightM are the grid extents.
func (g *Grid) WidthM() float64  { return float64(g.Cols-1) * g.SpacingM }
func (g *Grid) HeightM() float64 { return float64(g.Rows-1) * g.SpacingM }

// RSUCount implements World: one RSU per intersection.
func (g *Grid) RSUCount() int { return g.Rows * g.Cols }

// rsuXY returns an intersection RSU's planar position.
func (g *Grid) rsuXY(id int) (float64, float64) {
	row, col := id/g.Cols, id%g.Cols
	return float64(col) * g.SpacingM, float64(row) * g.SpacingM
}

// RSUDistance implements World: street (Manhattan/L1) distance between
// the two intersections — backhaul runs along the streets.
func (g *Grid) RSUDistance(a, b int) float64 {
	ax, ay := g.rsuXY(a)
	bx, by := g.rsuXY(b)
	return math.Abs(ax-bx) + math.Abs(ay-by)
}

// Place implements World: the vehicle spawns uniformly on a random
// street, heading in a random along-street direction. Three rng draws,
// always.
//
// Place also pre-creates the vehicle's private turn-decision stream (no
// draws from it), so the turnRngs map is never mutated during Advance —
// the invariant that lets region shards advance their residents on
// concurrent goroutines without a lock around the map.
func (g *Grid) Place(v *Vehicle, rng *rand.Rand) {
	g.turnRng(v.ID)
	street := int(rng.Float64() * float64(g.Rows+g.Cols))
	if street >= g.Rows+g.Cols {
		street = g.Rows + g.Cols - 1 // Float64 can return values snapping to the bound
	}
	pos := rng.Float64()
	forward := rng.Float64() < 0.5
	if street < g.Rows {
		// Horizontal street y = street*spacing.
		v.Y = float64(street) * g.SpacingM
		v.X = pos * g.WidthM()
		v.DirX, v.DirY = 1, 0
		if !forward {
			v.DirX = -1
		}
	} else {
		// Vertical street x = (street-Rows)*spacing.
		v.X = float64(street-g.Rows) * g.SpacingM
		v.Y = pos * g.HeightM()
		v.DirX, v.DirY = 0, 1
		if !forward {
			v.DirY = -1
		}
	}
}

// turnRng returns the vehicle's private turn-decision stream, derived
// from (TurnSeed, id) with a splitmix64 scramble so adjacent ids do not
// produce correlated stdlib streams.
func (g *Grid) turnRng(id int) *rand.Rand {
	if r, ok := g.turnRngs[id]; ok {
		return r
	}
	r := rand.New(rand.NewSource(mathx.SplitMix64(g.TurnSeed, uint64(id))))
	g.turnRngs[id] = r
	return r
}

// Advance implements World: the vehicle moves SpeedMps·dt along its
// street, turning at each intersection it reaches — uniformly among the
// in-bounds continuations, never reversing unless the intersection is a
// dead end for its heading (grid corners/edges).
func (g *Grid) Advance(v *Vehicle, dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("mobility: negative time step %g", dt))
	}
	dist := v.SpeedMps * dt
	for dist > 0 {
		ahead := g.distToNextIntersection(v)
		if dist < ahead {
			v.X += float64(v.DirX) * dist
			v.Y += float64(v.DirY) * dist
			return
		}
		// Snap exactly onto the intersection and turn there.
		v.X += float64(v.DirX) * ahead
		v.Y += float64(v.DirY) * ahead
		dist -= ahead
		v.X = g.snap(v.X, g.WidthM())
		v.Y = g.snap(v.Y, g.HeightM())
		g.turnAt(v)
	}
}

// distToNextIntersection measures along the current heading to the next
// street crossing (always > 0: callers sit exactly on an intersection
// only right after turnAt, which leaves a fresh heading).
func (g *Grid) distToNextIntersection(v *Vehicle) float64 {
	if v.DirX != 0 {
		return nextCrossing(v.X, float64(v.DirX), g.SpacingM, g.WidthM())
	}
	return nextCrossing(v.Y, float64(v.DirY), g.SpacingM, g.HeightM())
}

// nextCrossing returns the positive distance from coordinate p (moving in
// direction dir ∈ {+1,-1}) to the next multiple of spacing within
// [0, limit].
func nextCrossing(p, dir, spacing, limit float64) float64 {
	idx := p / spacing
	if dir > 0 {
		next := math.Floor(idx+1e-9) + 1
		target := math.Min(next*spacing, limit)
		return target - p
	}
	prev := math.Ceil(idx-1e-9) - 1
	target := math.Max(prev*spacing, 0)
	return p - target
}

// snap collapses float dust onto exact intersection coordinates and
// clamps to the grid extent.
func (g *Grid) snap(p, limit float64) float64 {
	idx := math.Round(p / g.SpacingM)
	if snapped := idx * g.SpacingM; math.Abs(snapped-p) < 1e-6 {
		p = snapped
	}
	return math.Min(math.Max(p, 0), limit)
}

// turnAt picks the vehicle's next heading at the intersection it is
// standing on: uniform among in-bounds directions excluding the reverse,
// falling back to the reverse at dead ends. One rng draw, always.
func (g *Grid) turnAt(v *Vehicle) {
	u := g.turnRng(v.ID).Float64()
	type dir struct{ dx, dy int }
	options := make([]dir, 0, 3)
	for _, d := range [4]dir{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
		if d.dx == -v.DirX && d.dy == -v.DirY {
			continue
		}
		nx := v.X + float64(d.dx)*g.SpacingM
		ny := v.Y + float64(d.dy)*g.SpacingM
		if nx < -1e-9 || nx > g.WidthM()+1e-9 || ny < -1e-9 || ny > g.HeightM()+1e-9 {
			continue
		}
		options = append(options, d)
	}
	if len(options) == 0 {
		v.DirX, v.DirY = -v.DirX, -v.DirY
		return
	}
	pick := int(u * float64(len(options)))
	if pick >= len(options) {
		pick = len(options) - 1
	}
	v.DirX, v.DirY = options[pick].dx, options[pick].dy
}

// ServingRSU implements World: the nearest live intersection RSU by
// Euclidean distance.
//
// With no outages the answer comes from an O(1) fast path instead of the
// O(Rows×Cols) scan: a vehicle always sits exactly on a street (Place and
// snap keep the perpendicular coordinate an exact multiple of SpacingM),
// so the nearest RSU is among the few intersections of that street around
// the vehicle, and every off-street RSU is strictly farther whenever the
// on-street minimum beats the adjacent parallel streets' perpendicular
// offsets. The fast path replicates the scan's id-ascending strict-<
// tie-breaking and falls back to the full scan whenever any of its
// exactness or domination checks fail, so results are bit-identical.
func (g *Grid) ServingRSU(v *Vehicle, down []bool) (int, bool) {
	if len(down) == 0 {
		if id, d, ok := g.nearestOnStreet(v); ok {
			return id, d <= g.RadiusM
		}
	}
	best, bestDist := -1, math.Inf(1)
	fallback, fallbackDist := -1, math.Inf(1)
	for id := 0; id < g.RSUCount(); id++ {
		x, y := g.rsuXY(id)
		d := math.Hypot(v.X-x, v.Y-y)
		if d < fallbackDist {
			fallback, fallbackDist = id, d
		}
		if len(down) > id && down[id] {
			continue
		}
		if d < bestDist {
			best, bestDist = id, d
		}
	}
	if best < 0 {
		return fallback, false
	}
	return best, bestDist <= g.RadiusM
}

// nearestOnStreet resolves the nearest RSU for a vehicle sitting exactly
// on a street. It reports ok=false when the vehicle is on no exact street
// (float dust the caller's snap has not collapsed yet) or when a
// domination check fails; callers then run the full scan.
func (g *Grid) nearestOnStreet(v *Vehicle) (int, float64, bool) {
	if row, ok := g.exactStreetIndex(v.Y, g.Rows); ok {
		return g.nearestInRow(v, row)
	}
	if col, ok := g.exactStreetIndex(v.X, g.Cols); ok {
		return g.nearestInCol(v, col)
	}
	return 0, 0, false
}

// exactStreetIndex reports whether p is exactly idx*SpacingM for an
// in-range street index idx. Exact float equality is the point: only then
// does the scan's Hypot collapse to a pure 1-D distance on this street.
func (g *Grid) exactStreetIndex(p float64, count int) (int, bool) {
	idx := int(math.Round(p / g.SpacingM))
	if idx < 0 || idx >= count {
		return 0, false
	}
	return idx, float64(idx)*g.SpacingM == p
}

// nearestInRow finds the nearest RSU of a horizontal street (fixed row),
// checking the candidate columns around the vehicle in ascending-id order
// with the scan's strict-< rule, then verifying the winner strictly beats
// the perpendicular offset to both adjacent rows — which lower-bounds
// (via Hypot ≥ |Δy|, monotone in the row gap) the distance to every RSU
// outside this row.
func (g *Grid) nearestInRow(v *Vehicle, row int) (int, float64, bool) {
	col, d, ok := g.nearestAlong(v.X, g.Cols)
	if !ok {
		return 0, 0, false
	}
	if row > 0 && !(d < math.Abs(v.Y-float64(row-1)*g.SpacingM)) {
		return 0, 0, false
	}
	if row+1 < g.Rows && !(d < math.Abs(float64(row+1)*g.SpacingM-v.Y)) {
		return 0, 0, false
	}
	return row*g.Cols + col, d, true
}

// nearestInCol is nearestInRow's transpose for a vertical street: within
// the column, ascending row equals ascending id, so the same strict-<
// candidate order replicates the scan.
func (g *Grid) nearestInCol(v *Vehicle, col int) (int, float64, bool) {
	row, d, ok := g.nearestAlong(v.Y, g.Rows)
	if !ok {
		return 0, 0, false
	}
	if col > 0 && !(d < math.Abs(v.X-float64(col-1)*g.SpacingM)) {
		return 0, 0, false
	}
	if col+1 < g.Cols && !(d < math.Abs(float64(col+1)*g.SpacingM-v.X)) {
		return 0, 0, false
	}
	return row*g.Cols + col, d, true
}

// nearestAlong picks the street index minimizing |p − idx*SpacingM| among
// the candidates around p, iterating in ascending index order with strict
// < — exactly the scan's first-minimum-wins tie-breaking. The ±1 window
// around the floored quotient absorbs float-division slop.
func (g *Grid) nearestAlong(p float64, count int) (int, float64, bool) {
	c0 := int(math.Floor(p / g.SpacingM))
	lo, hi := c0-1, c0+2
	if lo < 0 {
		lo = 0
	}
	if hi > count-1 {
		hi = count - 1
	}
	if lo > hi {
		return 0, 0, false
	}
	best, bestDist := -1, math.Inf(1)
	for c := lo; c <= hi; c++ {
		if d := math.Abs(p - float64(c)*g.SpacingM); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best, bestDist, best >= 0
}

var _ World = (*Grid)(nil)
var _ World = (*Highway)(nil)
