package mobility

import (
	"math"
	"math/rand"
	"testing"
)

func mustGrid(t *testing.T, rows, cols int, spacing, radius float64, seed int64) *Grid {
	t.Helper()
	g, err := NewGrid(rows, cols, spacing, radius, seed)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	return g
}

func TestNewGridValidation(t *testing.T) {
	cases := []struct {
		name            string
		rows, cols      int
		spacing, radius float64
	}{
		{"one row", 1, 4, 100, 150},
		{"one col", 4, 1, 100, 150},
		{"zero spacing", 3, 3, 0, 150},
		{"negative radius", 3, 3, 100, -1},
	}
	for _, c := range cases {
		if _, err := NewGrid(c.rows, c.cols, c.spacing, c.radius, 1); err == nil {
			t.Errorf("%s: want error, got nil", c.name)
		}
	}
}

func TestGridGeometry(t *testing.T) {
	g := mustGrid(t, 3, 4, 100, 80, 1)
	if got := g.RSUCount(); got != 12 {
		t.Fatalf("RSUCount = %d, want 12", got)
	}
	if w, h := g.WidthM(), g.HeightM(); w != 300 || h != 200 {
		t.Fatalf("extent = %gx%g, want 300x200", w, h)
	}
	// RSU 0 is at (0,0); RSU 11 is row 2, col 3 → (300,200); Manhattan
	// street distance 500.
	if d := g.RSUDistance(0, 11); d != 500 {
		t.Fatalf("RSUDistance(0,11) = %g, want 500", d)
	}
	if d := g.RSUDistance(5, 5); d != 0 {
		t.Fatalf("RSUDistance(5,5) = %g, want 0", d)
	}
	if d, want := g.RSUDistance(1, 2), 100.0; d != want {
		t.Fatalf("RSUDistance(1,2) = %g, want %g", d, want)
	}
}

// vehicles must stay on streets and inside the grid under long advances.
func TestGridAdvanceStaysOnStreets(t *testing.T) {
	g := mustGrid(t, 4, 5, 250, 180, 7)
	rng := rand.New(rand.NewSource(42))
	for id := 0; id < 10; id++ {
		v := &Vehicle{ID: id, SpeedMps: 10 + rng.Float64()*25}
		g.Place(v, rng)
		for step := 0; step < 500; step++ {
			g.Advance(v, 1.0)
			if v.X < -1e-9 || v.X > g.WidthM()+1e-9 || v.Y < -1e-9 || v.Y > g.HeightM()+1e-9 {
				t.Fatalf("vehicle %d escaped grid at step %d: (%g,%g)", id, step, v.X, v.Y)
			}
			onVert := math.Abs(v.X-math.Round(v.X/g.SpacingM)*g.SpacingM) < 1e-6
			onHoriz := math.Abs(v.Y-math.Round(v.Y/g.SpacingM)*g.SpacingM) < 1e-6
			if !onVert && !onHoriz {
				t.Fatalf("vehicle %d off-street at step %d: (%g,%g)", id, step, v.X, v.Y)
			}
			if (v.DirX != 0) == (v.DirY != 0) {
				t.Fatalf("vehicle %d has invalid heading (%d,%d)", id, v.DirX, v.DirY)
			}
		}
	}
}

// a vehicle's trajectory must depend only on (TurnSeed, id, spawn state),
// never on which other vehicles share the grid (determinism rule 2).
func TestGridTrajectoryIndependence(t *testing.T) {
	run := func(ids []int, track int) []Vehicle {
		g := mustGrid(t, 4, 4, 200, 150, 99)
		vs := make(map[int]*Vehicle)
		rng := rand.New(rand.NewSource(5))
		for _, id := range ids {
			v := &Vehicle{ID: id, SpeedMps: 15}
			if id == track {
				// Fixed spawn for the tracked vehicle so both runs start it
				// identically regardless of rng interleaving.
				v.X, v.Y, v.DirX, v.DirY = 0, 200, 1, 0
			} else {
				g.Place(v, rng)
			}
			vs[id] = v
		}
		var traj []Vehicle
		for step := 0; step < 200; step++ {
			for _, id := range ids {
				g.Advance(vs[id], 1.0)
			}
			traj = append(traj, *vs[track])
		}
		return traj
	}
	alone := run([]int{3}, 3)
	crowded := run([]int{0, 1, 2, 3, 4, 5}, 3)
	for i := range alone {
		if alone[i] != crowded[i] {
			t.Fatalf("step %d: trajectory differs with other vehicles present: alone %+v crowded %+v", i, alone[i], crowded[i])
		}
	}
}

func TestGridPlaceDeterministic(t *testing.T) {
	g := mustGrid(t, 3, 3, 100, 80, 1)
	a := rand.New(rand.NewSource(11))
	b := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		va := &Vehicle{ID: i}
		vb := &Vehicle{ID: i}
		g.Place(va, a)
		g.Place(vb, b)
		if *va != *vb {
			t.Fatalf("Place not deterministic: %+v vs %+v", va, vb)
		}
		onVert := math.Abs(va.X-math.Round(va.X/g.SpacingM)*g.SpacingM) < 1e-6
		onHoriz := math.Abs(va.Y-math.Round(va.Y/g.SpacingM)*g.SpacingM) < 1e-6
		if !onVert && !onHoriz {
			t.Fatalf("Place off-street: (%g,%g)", va.X, va.Y)
		}
	}
}

func TestGridServingRSU(t *testing.T) {
	g := mustGrid(t, 3, 3, 100, 60, 1)
	v := &Vehicle{X: 10, Y: 0}
	id, covered := g.ServingRSU(v, nil)
	if id != 0 || !covered {
		t.Fatalf("ServingRSU near origin = (%d,%v), want (0,true)", id, covered)
	}
	// Mid-block: nearest RSU is 50 m away, within the 60 m radius.
	v = &Vehicle{X: 50, Y: 0}
	if _, covered := g.ServingRSU(v, nil); !covered {
		t.Fatal("mid-block position should be covered with radius 60")
	}
	// RSU 0 down: the vehicle at (10,0) re-homes to RSU 1 at (100,0),
	// 90 m away — outside coverage.
	down := make([]bool, g.RSUCount())
	down[0] = true
	id, covered = g.ServingRSU(&Vehicle{X: 10, Y: 0}, down)
	if id != 1 || covered {
		t.Fatalf("ServingRSU with RSU0 down = (%d,%v), want (1,false)", id, covered)
	}
	// Everything down: fall back to the nearest RSU, uncovered.
	for i := range down {
		down[i] = true
	}
	id, covered = g.ServingRSU(&Vehicle{X: 10, Y: 0}, down)
	if id != 0 || covered {
		t.Fatalf("ServingRSU all down = (%d,%v), want (0,false)", id, covered)
	}
}

func TestHighwayServingRSUMatchesNearest(t *testing.T) {
	h, err := NewHighway(8000, 8, 600)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0.0; pos < 8000; pos += 37.5 {
		v := &Vehicle{PositionM: pos}
		id, covered := h.ServingRSU(v, nil)
		r, wantCovered := h.NearestRSU(pos)
		if id != r.ID || covered != wantCovered {
			t.Fatalf("pos %g: ServingRSU = (%d,%v), NearestRSU = (%d,%v)", pos, id, covered, r.ID, wantCovered)
		}
	}
	// With an outage the serving RSU moves to a live neighbour.
	down := make([]bool, 8)
	down[2] = true
	v := &Vehicle{PositionM: 2000} // exactly on RSU 2
	id, _ := h.ServingRSU(v, down)
	if id == 2 {
		t.Fatal("down RSU must never serve")
	}
}

func TestTrackerObserveForget(t *testing.T) {
	h, err := NewHighway(1000, 2, 400)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(h)
	ho, changed := tr.Observe(7, 1)
	if !changed || ho.FromRSU != -1 || ho.ToRSU != 1 {
		t.Fatalf("first observe = (%+v,%v)", ho, changed)
	}
	if _, changed := tr.Observe(7, 1); changed {
		t.Fatal("same RSU should not be a handover")
	}
	ho, changed = tr.Observe(7, 0)
	if !changed || ho.FromRSU != 1 || ho.ToRSU != 0 {
		t.Fatalf("handover = (%+v,%v)", ho, changed)
	}
	tr.Forget(7)
	if got := tr.Serving(7); got != -1 {
		t.Fatalf("Serving after Forget = %d, want -1", got)
	}
	ho, _ = tr.Observe(7, 0)
	if ho.FromRSU != -1 {
		t.Fatalf("re-attach after Forget should look like a first attach, got from=%d", ho.FromRSU)
	}
}
