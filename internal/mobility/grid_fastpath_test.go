package mobility

import (
	"math"
	"math/rand"
	"testing"
)

// referenceServingRSU is the original O(Rows×Cols) scan, kept verbatim as
// the oracle for the fast path.
func referenceServingRSU(g *Grid, v *Vehicle, down []bool) (int, bool) {
	best, bestDist := -1, math.Inf(1)
	fallback, fallbackDist := -1, math.Inf(1)
	for id := 0; id < g.RSUCount(); id++ {
		x, y := g.rsuXY(id)
		d := math.Hypot(v.X-x, v.Y-y)
		if d < fallbackDist {
			fallback, fallbackDist = id, d
		}
		if len(down) > id && down[id] {
			continue
		}
		if d < bestDist {
			best, bestDist = id, d
		}
	}
	if best < 0 {
		return fallback, false
	}
	return best, bestDist <= g.RadiusM
}

// TestServingRSUFastPathMatchesScan drives vehicles along randomized
// grids (including irrational spacings that stress the float-exactness
// checks) and requires the fast path to agree with the reference scan at
// every step of every trajectory.
func TestServingRSUFastPathMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		rows := 2 + rng.Intn(6)
		cols := 2 + rng.Intn(6)
		spacing := []float64{500, 333.3, 1000 * math.Sqrt2, 0.125, 77.7}[rng.Intn(5)]
		g, err := NewGrid(rows, cols, spacing, spacing*0.75, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		v := &Vehicle{ID: trial, SpeedMps: 5 + rng.Float64()*30}
		g.Place(v, rng)
		for step := 0; step < 200; step++ {
			g.Advance(v, 0.5+rng.Float64())
			gotID, gotCov := g.ServingRSU(v, nil)
			wantID, wantCov := referenceServingRSU(g, v, nil)
			if gotID != wantID || gotCov != wantCov {
				t.Fatalf("trial %d step %d at (%v, %v): fast path (%d, %v), scan (%d, %v)",
					trial, step, v.X, v.Y, gotID, gotCov, wantID, wantCov)
			}
		}
	}
}

// TestServingRSUFastPathOffStreetFallsBack plants vehicles off any exact
// street coordinate — the fast path must decline and the scan answer.
func TestServingRSUFastPathOffStreetFallsBack(t *testing.T) {
	g, err := NewGrid(3, 4, 500, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		v := &Vehicle{X: rng.Float64() * g.WidthM(), Y: rng.Float64() * g.HeightM()}
		if _, _, ok := g.nearestOnStreet(v); ok {
			// A random planar point can land exactly on a street only with
			// probability ~0; if it does, the fast path must still agree.
			t.Logf("point (%v, %v) resolved on-street", v.X, v.Y)
		}
		gotID, gotCov := g.ServingRSU(v, nil)
		wantID, wantCov := referenceServingRSU(g, v, nil)
		if gotID != wantID || gotCov != wantCov {
			t.Fatalf("off-street (%v, %v): fast path (%d, %v), scan (%d, %v)", v.X, v.Y, gotID, gotCov, wantID, wantCov)
		}
	}
}

// TestServingRSUWithOutagesUsesScan pins that a non-empty down mask
// bypasses the fast path entirely: a down nearest RSU must re-home the
// vehicle exactly like the scan.
func TestServingRSUWithOutagesUsesScan(t *testing.T) {
	g, err := NewGrid(3, 3, 500, 600, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := &Vehicle{X: 500, Y: 0} // exactly on RSU 1
	down := make([]bool, g.RSUCount())
	down[1] = true
	gotID, gotCov := g.ServingRSU(v, down)
	wantID, wantCov := referenceServingRSU(g, v, down)
	if gotID != wantID || gotCov != wantCov {
		t.Fatalf("down mask: fast path (%d, %v), scan (%d, %v)", gotID, gotCov, wantID, wantCov)
	}
	if gotID == 1 {
		t.Fatalf("vehicle attached to a down RSU")
	}
}

// TestPlacePrewarmsTurnStream pins the sharding invariant: after Place,
// Advance never mutates the turnRngs map (all lookups hit).
func TestPlacePrewarmsTurnStream(t *testing.T) {
	g, err := NewGrid(3, 3, 100, 120, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for id := 0; id < 10; id++ {
		v := &Vehicle{ID: id, SpeedMps: 50}
		g.Place(v, rng)
		if _, ok := g.turnRngs[v.ID]; !ok {
			t.Fatalf("Place did not pre-create the turn stream for vehicle %d", id)
		}
	}
	if len(g.turnRngs) != 10 {
		t.Fatalf("turnRngs has %d entries, want 10", len(g.turnRngs))
	}
	before := len(g.turnRngs)
	for id := 0; id < 10; id++ {
		v := &Vehicle{ID: id, SpeedMps: 50, DirX: 1}
		g.Advance(v, 10)
	}
	if len(g.turnRngs) != before {
		t.Fatalf("Advance grew turnRngs from %d to %d entries", before, len(g.turnRngs))
	}
}
