package mobility

import (
	"testing"
	"testing/quick"

	"vtmig/internal/mathx"
)

func highway(t *testing.T) *Highway {
	t.Helper()
	h, err := NewHighway(4000, 4, 500)
	if err != nil {
		t.Fatalf("NewHighway: %v", err)
	}
	return h
}

func TestNewHighwaySpacing(t *testing.T) {
	h := highway(t)
	wantPos := []float64{0, 1000, 2000, 3000}
	if len(h.RSUs) != 4 {
		t.Fatalf("RSU count = %d, want 4", len(h.RSUs))
	}
	for i, r := range h.RSUs {
		if r.PositionM != wantPos[i] {
			t.Errorf("RSU %d at %v, want %v", i, r.PositionM, wantPos[i])
		}
	}
}

func TestNewHighwayValidation(t *testing.T) {
	for _, tc := range []struct {
		name           string
		length, radius float64
		count          int
	}{
		{"zero length", 0, 500, 4},
		{"zero rsus", 4000, 500, 0},
		{"zero radius", 4000, 0, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewHighway(tc.length, tc.count, tc.radius); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestFullCoverage(t *testing.T) {
	full, err := NewHighway(4000, 4, 500) // spacing 1000, radius 500 => covered
	if err != nil {
		t.Fatal(err)
	}
	if !full.FullCoverage() {
		t.Error("radius = spacing/2 should give full coverage")
	}
	gaps, err := NewHighway(4000, 4, 400)
	if err != nil {
		t.Fatal(err)
	}
	if gaps.FullCoverage() {
		t.Error("radius < spacing/2 cannot give full coverage")
	}
}

func TestNearestRSU(t *testing.T) {
	h := highway(t)
	tests := []struct {
		pos     float64
		wantID  int
		covered bool
	}{
		{0, 0, true},
		{100, 0, true},
		{600, 1, true},  // closer to RSU 1 at 1000
		{1499, 1, true}, // just inside RSU 1
		{3900, 0, true}, // wraps: closer to RSU 0 at 0
		{2500, 2, true}, // equidistant boundary between 2 and 3; ties to 2
	}
	for _, tt := range tests {
		rsu, cov := h.NearestRSU(tt.pos)
		if rsu.ID != tt.wantID || cov != tt.covered {
			t.Errorf("NearestRSU(%v) = (%d, %v), want (%d, %v)", tt.pos, rsu.ID, cov, tt.wantID, tt.covered)
		}
	}
}

func TestRSUDistanceWraps(t *testing.T) {
	h := highway(t)
	if got := h.RSUDistance(0, 1); got != 1000 {
		t.Errorf("distance(0,1) = %v, want 1000", got)
	}
	// RSU 0 at 0 m and RSU 3 at 3000 m are 1000 m apart around the wrap.
	if got := h.RSUDistance(0, 3); got != 1000 {
		t.Errorf("distance(0,3) = %v, want 1000 (circular)", got)
	}
}

func TestVehicleAdvanceWraps(t *testing.T) {
	v := &Vehicle{ID: 0, PositionM: 3900, SpeedMps: 30}
	v.Advance(10, 4000) // 3900 + 300 = 4200 -> 200
	if !mathx.AlmostEqual(v.PositionM, 200, 1e-9) {
		t.Errorf("position = %v, want 200", v.PositionM)
	}
}

func TestVehicleAdvanceNegativeDtPanics(t *testing.T) {
	v := &Vehicle{}
	defer func() {
		if recover() == nil {
			t.Fatal("negative dt did not panic")
		}
	}()
	v.Advance(-1, 4000)
}

func TestTrackerFirstAttachIsHandover(t *testing.T) {
	h := highway(t)
	tr := NewTracker(h)
	v := &Vehicle{ID: 7, PositionM: 100}
	ho, changed := tr.Update(v)
	if !changed {
		t.Fatal("first attach must report a handover")
	}
	if ho.FromRSU != -1 || ho.ToRSU != 0 || ho.VehicleID != 7 {
		t.Errorf("handover = %+v, want from=-1 to=0 vehicle=7", ho)
	}
	if tr.Serving(7) != 0 {
		t.Errorf("Serving = %d, want 0", tr.Serving(7))
	}
}

func TestTrackerNoHandoverWithinCell(t *testing.T) {
	h := highway(t)
	tr := NewTracker(h)
	v := &Vehicle{ID: 1, PositionM: 100}
	tr.Update(v)
	v.PositionM = 300
	if _, changed := tr.Update(v); changed {
		t.Error("movement within the same cell must not hand over")
	}
}

func TestTrackerHandoverSequenceAroundTheLoop(t *testing.T) {
	h := highway(t)
	tr := NewTracker(h)
	v := &Vehicle{ID: 2, PositionM: 0, SpeedMps: 25}
	var seq []int
	for step := 0; step < 200; step++ {
		if ho, changed := tr.Update(v); changed {
			seq = append(seq, ho.ToRSU)
		}
		v.Advance(1, h.LengthM)
	}
	// 200 s × 25 m/s = 5000 m: a full loop plus a quarter. The serving
	// sequence must be 0,1,2,3,0,1 without skips.
	want := []int{0, 1, 2, 3, 0, 1}
	if len(seq) != len(want) {
		t.Fatalf("handover sequence = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("handover sequence = %v, want %v", seq, want)
		}
	}
}

func TestServingUnknownVehicle(t *testing.T) {
	tr := NewTracker(highway(t))
	if got := tr.Serving(99); got != -1 {
		t.Errorf("Serving(unknown) = %d, want -1", got)
	}
}

// Property: after any advance, the vehicle stays on the highway and the
// nearest RSU is within half the circumference.
func TestAdvanceStaysOnHighwayProperty(t *testing.T) {
	h, err := NewHighway(4000, 4, 500)
	if err != nil {
		t.Fatal(err)
	}
	f := func(pos, speed uint16, dt uint8) bool {
		v := &Vehicle{PositionM: float64(pos % 4000), SpeedMps: float64(speed % 50)}
		v.Advance(float64(dt), h.LengthM)
		if v.PositionM < 0 || v.PositionM >= h.LengthM {
			return false
		}
		rsu, _ := h.NearestRSU(v.PositionM)
		return circularDistance(rsu.PositionM, v.PositionM, h.LengthM) <= h.LengthM/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCircularDistance(t *testing.T) {
	tests := []struct {
		a, b, c, want float64
	}{
		{0, 1000, 4000, 1000},
		{0, 3000, 4000, 1000},
		{500, 3500, 4000, 1000},
		{0, 2000, 4000, 2000},
		{100, 100, 4000, 0},
	}
	for _, tt := range tests {
		if got := circularDistance(tt.a, tt.b, tt.c); got != tt.want {
			t.Errorf("circularDistance(%v,%v,%v) = %v, want %v", tt.a, tt.b, tt.c, got, tt.want)
		}
	}
}
