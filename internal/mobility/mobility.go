// Package mobility provides the vehicular substrate of the simulation: a
// (circular) highway with evenly spaced RSUs of limited coverage, vehicles
// with simple kinematics, and handover detection — the trigger for VT
// migrations in the paper's system model.
package mobility

import (
	"fmt"
	"math"
)

// RSU is one roadside unit.
type RSU struct {
	// ID is unique within a highway.
	ID int
	// PositionM is the RSU's location along the highway in meters.
	PositionM float64
	// RadiusM is the coverage radius in meters.
	RadiusM float64
}

// Covers reports whether the RSU covers a position on a highway of the
// given circular length.
func (r RSU) Covers(posM, highwayLenM float64) bool {
	return circularDistance(r.PositionM, posM, highwayLenM) <= r.RadiusM
}

// Highway is a circular road with RSUs.
type Highway struct {
	// LengthM is the circumference in meters.
	LengthM float64
	// RSUs are sorted by position.
	RSUs []RSU
}

// NewHighway builds a highway of the given length with count RSUs spaced
// evenly, each with the given coverage radius.
func NewHighway(lengthM float64, count int, radiusM float64) (*Highway, error) {
	if lengthM <= 0 {
		return nil, fmt.Errorf("mobility: highway length must be positive, got %g", lengthM)
	}
	if count < 1 {
		return nil, fmt.Errorf("mobility: need at least one RSU, got %d", count)
	}
	if radiusM <= 0 {
		return nil, fmt.Errorf("mobility: coverage radius must be positive, got %g", radiusM)
	}
	h := &Highway{LengthM: lengthM}
	spacing := lengthM / float64(count)
	for i := 0; i < count; i++ {
		h.RSUs = append(h.RSUs, RSU{ID: i, PositionM: float64(i) * spacing, RadiusM: radiusM})
	}
	return h, nil
}

// FullCoverage reports whether every highway position is covered by at
// least one RSU.
func (h *Highway) FullCoverage() bool {
	spacing := h.LengthM / float64(len(h.RSUs))
	// Evenly spaced RSUs cover everything iff radius ≥ spacing/2.
	return h.RSUs[0].RadiusM >= spacing/2
}

// NearestRSU returns the RSU closest to the position (by circular
// distance) and whether that RSU actually covers it.
func (h *Highway) NearestRSU(posM float64) (RSU, bool) {
	best := h.RSUs[0]
	bestDist := circularDistance(best.PositionM, posM, h.LengthM)
	for _, r := range h.RSUs[1:] {
		if d := circularDistance(r.PositionM, posM, h.LengthM); d < bestDist {
			best, bestDist = r, d
		}
	}
	return best, bestDist <= best.RadiusM
}

// RSUDistance returns the circular distance between two RSUs on the
// highway — the d of the migration channel model.
func (h *Highway) RSUDistance(a, b int) float64 {
	return circularDistance(h.RSUs[a].PositionM, h.RSUs[b].PositionM, h.LengthM)
}

// Vehicle is one vehicle (and its VMU) moving along the highway.
type Vehicle struct {
	// ID is unique within a simulation.
	ID int
	// PositionM is the location along the highway in meters.
	PositionM float64
	// SpeedMps is the speed in meters per second (non-negative; the
	// highway is one-way).
	SpeedMps float64
}

// Advance moves the vehicle for dt seconds, wrapping at the highway
// length.
func (v *Vehicle) Advance(dt, highwayLenM float64) {
	if dt < 0 {
		panic(fmt.Sprintf("mobility: negative time step %g", dt))
	}
	v.PositionM = math.Mod(v.PositionM+v.SpeedMps*dt, highwayLenM)
	if v.PositionM < 0 {
		v.PositionM += highwayLenM
	}
}

// Handover describes one serving-RSU change.
type Handover struct {
	VehicleID int
	// FromRSU is the previous serving RSU (-1 on first attach).
	FromRSU int
	// ToRSU is the new serving RSU.
	ToRSU int
}

// Tracker detects handovers by remembering each vehicle's serving RSU.
// The zero value is not usable; construct with NewTracker.
type Tracker struct {
	highway *Highway
	serving map[int]int
}

// NewTracker builds a handover tracker for a highway.
func NewTracker(h *Highway) *Tracker {
	return &Tracker{highway: h, serving: make(map[int]int)}
}

// Serving returns the vehicle's current serving RSU id, or -1 when the
// vehicle has never attached.
func (t *Tracker) Serving(vehicleID int) int {
	if id, ok := t.serving[vehicleID]; ok {
		return id
	}
	return -1
}

// Update re-evaluates the serving RSU for a vehicle and returns a
// handover event if it changed. The first attach also reports a handover
// with FromRSU = -1.
func (t *Tracker) Update(v *Vehicle) (Handover, bool) {
	rsu, _ := t.highway.NearestRSU(v.PositionM)
	prev, attached := t.serving[v.ID]
	if attached && prev == rsu.ID {
		return Handover{}, false
	}
	t.serving[v.ID] = rsu.ID
	from := -1
	if attached {
		from = prev
	}
	return Handover{VehicleID: v.ID, FromRSU: from, ToRSU: rsu.ID}, true
}

// circularDistance returns the shortest distance between two positions on
// a circle of the given circumference.
func circularDistance(a, b, circumference float64) float64 {
	d := math.Abs(a - b)
	d = math.Mod(d, circumference)
	if d > circumference/2 {
		d = circumference - d
	}
	return d
}
