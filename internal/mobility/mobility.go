// Package mobility provides the vehicular substrate of the simulation:
// road worlds (a circular highway and a Manhattan grid) with RSUs of
// limited coverage, vehicles with simple kinematics, and handover
// detection — the trigger for VT migrations in the paper's system model.
package mobility

import (
	"fmt"
	"math"
	"math/rand"
)

// World abstracts a road network for the simulator: it places and moves
// vehicles, owns the RSU layout, decides which RSU serves a vehicle, and
// measures inter-RSU distances (the d of the migration channel model).
//
// Implementations must be deterministic: Place draws only from the rng it
// is handed, and Advance consumes randomness (if any) only from streams
// derived from the vehicle's ID, so one vehicle's trajectory never
// depends on which other vehicles exist.
type World interface {
	// RSUCount is the number of RSUs in the world; ids are 0..RSUCount-1.
	RSUCount() int
	// RSUDistance is the network distance between two RSUs in meters.
	RSUDistance(a, b int) float64
	// Place positions a freshly spawned vehicle using draws from rng.
	Place(v *Vehicle, rng *rand.Rand)
	// Advance moves the vehicle for dt seconds.
	Advance(v *Vehicle, dt float64)
	// ServingRSU returns the id of the RSU serving the vehicle and
	// whether that RSU's coverage actually reaches it. down marks RSUs in
	// outage (nil: all up); a down RSU never serves, so vehicles near it
	// attach to the nearest live one — or, if every RSU is down, to the
	// nearest RSU regardless, uncovered.
	ServingRSU(v *Vehicle, down []bool) (int, bool)
}

// RSU is one roadside unit.
type RSU struct {
	// ID is unique within a highway.
	ID int
	// PositionM is the RSU's location along the highway in meters.
	PositionM float64
	// RadiusM is the coverage radius in meters.
	RadiusM float64
}

// Covers reports whether the RSU covers a position on a highway of the
// given circular length.
func (r RSU) Covers(posM, highwayLenM float64) bool {
	return circularDistance(r.PositionM, posM, highwayLenM) <= r.RadiusM
}

// Highway is a circular road with RSUs.
type Highway struct {
	// LengthM is the circumference in meters.
	LengthM float64
	// RSUs are sorted by position.
	RSUs []RSU
}

// NewHighway builds a highway of the given length with count RSUs spaced
// evenly, each with the given coverage radius.
func NewHighway(lengthM float64, count int, radiusM float64) (*Highway, error) {
	if lengthM <= 0 {
		return nil, fmt.Errorf("mobility: highway length must be positive, got %g", lengthM)
	}
	if count < 1 {
		return nil, fmt.Errorf("mobility: need at least one RSU, got %d", count)
	}
	if radiusM <= 0 {
		return nil, fmt.Errorf("mobility: coverage radius must be positive, got %g", radiusM)
	}
	h := &Highway{LengthM: lengthM}
	spacing := lengthM / float64(count)
	for i := 0; i < count; i++ {
		h.RSUs = append(h.RSUs, RSU{ID: i, PositionM: float64(i) * spacing, RadiusM: radiusM})
	}
	return h, nil
}

// FullCoverage reports whether every highway position is covered by at
// least one RSU.
func (h *Highway) FullCoverage() bool {
	spacing := h.LengthM / float64(len(h.RSUs))
	// Evenly spaced RSUs cover everything iff radius ≥ spacing/2.
	return h.RSUs[0].RadiusM >= spacing/2
}

// NearestRSU returns the RSU closest to the position (by circular
// distance) and whether that RSU actually covers it.
func (h *Highway) NearestRSU(posM float64) (RSU, bool) {
	best := h.RSUs[0]
	bestDist := circularDistance(best.PositionM, posM, h.LengthM)
	for _, r := range h.RSUs[1:] {
		if d := circularDistance(r.PositionM, posM, h.LengthM); d < bestDist {
			best, bestDist = r, d
		}
	}
	return best, bestDist <= best.RadiusM
}

// RSUDistance returns the circular distance between two RSUs on the
// highway — the d of the migration channel model.
func (h *Highway) RSUDistance(a, b int) float64 {
	return circularDistance(h.RSUs[a].PositionM, h.RSUs[b].PositionM, h.LengthM)
}

// RSUCount implements World.
func (h *Highway) RSUCount() int { return len(h.RSUs) }

// Place implements World: the vehicle spawns uniformly along the highway.
func (h *Highway) Place(v *Vehicle, rng *rand.Rand) {
	v.PositionM = rng.Float64() * h.LengthM
}

// Advance implements World.
func (h *Highway) Advance(v *Vehicle, dt float64) {
	v.Advance(dt, h.LengthM)
}

// ServingRSU implements World: the nearest live RSU by circular distance.
// With no outages it selects exactly NearestRSU's pick.
func (h *Highway) ServingRSU(v *Vehicle, down []bool) (int, bool) {
	best, bestDist := -1, math.Inf(1)
	for i, r := range h.RSUs {
		if len(down) > i && down[i] {
			continue
		}
		if d := circularDistance(r.PositionM, v.PositionM, h.LengthM); d < bestDist {
			best, bestDist = i, d
		}
	}
	if best < 0 {
		// Every RSU is down: stay attached to the nearest one, uncovered.
		r, _ := h.NearestRSU(v.PositionM)
		return r.ID, false
	}
	return best, bestDist <= h.RSUs[best].RadiusM
}

// Vehicle is one vehicle (and its VMU) moving through a World.
type Vehicle struct {
	// ID is unique within a simulation.
	ID int
	// PositionM is the location along the highway in meters (highway
	// worlds only).
	PositionM float64
	// SpeedMps is the speed in meters per second (non-negative; roads
	// are one-way).
	SpeedMps float64
	// X and Y are the planar position in meters (grid worlds only).
	X, Y float64
	// DirX and DirY are the unit travel direction, one of (±1,0) or
	// (0,±1) (grid worlds only).
	DirX, DirY int
}

// Advance moves the vehicle for dt seconds, wrapping at the highway
// length.
func (v *Vehicle) Advance(dt, highwayLenM float64) {
	if dt < 0 {
		panic(fmt.Sprintf("mobility: negative time step %g", dt))
	}
	v.PositionM = math.Mod(v.PositionM+v.SpeedMps*dt, highwayLenM)
	if v.PositionM < 0 {
		v.PositionM += highwayLenM
	}
}

// Handover describes one serving-RSU change.
type Handover struct {
	VehicleID int
	// FromRSU is the previous serving RSU (-1 on first attach).
	FromRSU int
	// ToRSU is the new serving RSU.
	ToRSU int
}

// Tracker detects handovers by remembering each vehicle's serving RSU.
// The zero value is not usable; construct with NewTracker.
type Tracker struct {
	highway *Highway
	serving map[int]int
}

// NewTracker builds a handover tracker for a highway.
func NewTracker(h *Highway) *Tracker {
	return &Tracker{highway: h, serving: make(map[int]int)}
}

// NewObserveTracker builds a tracker fed purely through Observe — the
// world-agnostic path where the caller computes serving RSUs itself
// (World.ServingRSU). Update must not be called on it.
func NewObserveTracker() *Tracker {
	return &Tracker{serving: make(map[int]int)}
}

// Serving returns the vehicle's current serving RSU id, or -1 when the
// vehicle has never attached.
func (t *Tracker) Serving(vehicleID int) int {
	if id, ok := t.serving[vehicleID]; ok {
		return id
	}
	return -1
}

// Update re-evaluates the serving RSU for a vehicle and returns a
// handover event if it changed. The first attach also reports a handover
// with FromRSU = -1.
func (t *Tracker) Update(v *Vehicle) (Handover, bool) {
	rsu, _ := t.highway.NearestRSU(v.PositionM)
	return t.Observe(v.ID, rsu.ID)
}

// Observe records an externally computed serving RSU (e.g. from
// World.ServingRSU, which is outage-aware) and returns a handover event
// if it changed. The first attach also reports a handover with
// FromRSU = -1.
func (t *Tracker) Observe(vehicleID, rsuID int) (Handover, bool) {
	prev, attached := t.serving[vehicleID]
	if attached && prev == rsuID {
		return Handover{}, false
	}
	t.serving[vehicleID] = rsuID
	from := -1
	if attached {
		from = prev
	}
	return Handover{VehicleID: vehicleID, FromRSU: from, ToRSU: rsuID}, true
}

// Forget drops a departed vehicle's serving state; a vehicle with the
// same id spawning later attaches afresh.
func (t *Tracker) Forget(vehicleID int) {
	delete(t.serving, vehicleID)
}

// circularDistance returns the shortest distance between two positions on
// a circle of the given circumference.
func circularDistance(a, b, circumference float64) float64 {
	d := math.Abs(a - b)
	d = math.Mod(d, circumference)
	if d > circumference/2 {
		d = circumference - d
	}
	return d
}
