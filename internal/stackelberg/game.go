// Package stackelberg implements the paper's primary contribution: the
// AoTM-based Stackelberg game between a monopolist Metaverse Service
// Provider (MSP, the leader, who prices bandwidth) and N Vehicular
// Metaverse Users (VMUs, the followers, who purchase bandwidth to migrate
// their Vehicular Twins).
//
// The package provides the utility functions of Section III, the
// closed-form follower best response (Eq. 8) and leader optimum
// (Theorem 2), numeric solvers that handle the Bmax capacity constraint of
// Problem 2, an iterated-best-response solver for the followers' subgame,
// and an equilibrium verifier for Definition 1.
//
// Units: bandwidth in MHz, data sizes in units of 100 MB, matching the
// calibration in DESIGN.md that reproduces the paper's reported numbers.
package stackelberg

import (
	"fmt"

	"vtmig/internal/aotm"
	"vtmig/internal/channel"
	"vtmig/internal/mat"
)

// VMU is one follower: a vehicular metaverse user whose twin must be
// migrated.
type VMU struct {
	// ID identifies the VMU (unique within a game).
	ID int
	// Alpha is α_n, the unit immersion profit (paper: sampled from [5, 20]).
	Alpha float64
	// DataSize is D_n, the total migrated VT data in model units of
	// 100 MB (paper: 100–300 MB, i.e. 1–3 units).
	DataSize float64
}

// Validate reports whether the VMU's parameters are admissible.
func (v VMU) Validate() error {
	if v.Alpha <= 0 {
		return fmt.Errorf("stackelberg: VMU %d: alpha must be positive, got %g", v.ID, v.Alpha)
	}
	if v.DataSize <= 0 {
		return fmt.Errorf("stackelberg: VMU %d: data size must be positive, got %g", v.ID, v.DataSize)
	}
	return nil
}

// Game is one instance of the Stackelberg pricing game.
type Game struct {
	// VMUs are the followers.
	VMUs []VMU
	// Channel is the RSU-to-RSU link model shared by all migrations.
	Channel channel.Params
	// Cost is C, the MSP's unit transmission cost (paper: 5).
	Cost float64
	// PMax is the maximum bandwidth price (paper: 50).
	PMax float64
	// BMax is the MSP's total bandwidth in MHz; zero or negative means
	// unconstrained. The paper's "50 MHz" corresponds to 0.5 MHz in model
	// units (see DESIGN.md calibration).
	BMax float64
}

// NewGame constructs a validated game.
func NewGame(vmus []VMU, ch channel.Params, cost, pmax, bmax float64) (*Game, error) {
	g := &Game{VMUs: vmus, Channel: ch, Cost: cost, PMax: pmax, BMax: bmax}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// DefaultGame returns the paper's two-VMU benchmark scenario:
// α₁=α₂=5, D₁=200 MB, D₂=100 MB, C=5, pmax=50, Bmax=0.5 MHz.
func DefaultGame() *Game {
	return &Game{
		VMUs: []VMU{
			{ID: 0, Alpha: 5, DataSize: aotm.FromMB(200)},
			{ID: 1, Alpha: 5, DataSize: aotm.FromMB(100)},
		},
		Channel: channel.DefaultParams(),
		Cost:    5,
		PMax:    50,
		BMax:    0.5,
	}
}

// Validate reports whether the game's parameters are admissible.
func (g *Game) Validate() error {
	if len(g.VMUs) == 0 {
		return fmt.Errorf("stackelberg: game needs at least one VMU")
	}
	seen := make(map[int]bool, len(g.VMUs))
	for _, v := range g.VMUs {
		if err := v.Validate(); err != nil {
			return err
		}
		if seen[v.ID] {
			return fmt.Errorf("stackelberg: duplicate VMU id %d", v.ID)
		}
		seen[v.ID] = true
	}
	if err := g.Channel.Validate(); err != nil {
		return err
	}
	if g.Cost <= 0 {
		return fmt.Errorf("stackelberg: cost must be positive, got %g", g.Cost)
	}
	if g.PMax <= g.Cost {
		return fmt.Errorf("stackelberg: pmax %g must exceed cost %g", g.PMax, g.Cost)
	}
	return nil
}

// N returns the number of followers.
func (g *Game) N() int { return len(g.VMUs) }

// SpectralEfficiency returns e = log2(1+SNR) of the shared channel.
func (g *Game) SpectralEfficiency() float64 { return g.Channel.SpectralEfficiency() }

// VMUUtility evaluates Eq. (2): U_n(b) = α_n·ln(1 + 1/A_n(b)) − p·b for
// follower index n (zero-based position in VMUs, not ID).
func (g *Game) VMUUtility(n int, bandwidth, price float64) float64 {
	v := g.VMUs[n]
	return aotm.ImmersionForBandwidth(v.Alpha, v.DataSize, bandwidth, g.Channel) - price*bandwidth
}

// VMUMarginalUtility evaluates ∂U_n/∂b (Eq. 7, first line):
// α·e/(D + b·e) − p. Its unique zero is the best response.
func (g *Game) VMUMarginalUtility(n int, bandwidth, price float64) float64 {
	v := g.VMUs[n]
	e := g.SpectralEfficiency()
	return v.Alpha*e/(v.DataSize+bandwidth*e) - price
}

// BestResponse evaluates Eq. (8): b*_n = α_n/p − D_n/e, floored at zero
// (the paper implicitly assumes interior solutions; at high prices the
// non-negativity constraint binds and the VMU opts out).
func (g *Game) BestResponse(n int, price float64) float64 {
	if price <= 0 {
		panic(fmt.Sprintf("stackelberg: price must be positive, got %g", price))
	}
	v := g.VMUs[n]
	b := v.Alpha/price - v.DataSize/g.SpectralEfficiency()
	if b < 0 {
		return 0
	}
	return b
}

// BestResponses returns every follower's best response to price. The
// result is freshly allocated; hot loops use BestResponsesInto.
func (g *Game) BestResponses(price float64) []float64 {
	return g.BestResponsesInto(make([]float64, g.N()), price)
}

// BestResponsesInto writes every follower's best response to price into
// dst (length N) and returns dst — the destination-passing form used by
// the allocation-free evaluation path. The spectral efficiency is hoisted
// out of the loop (it is a pure per-game constant), and the per-follower
// expression and zero floor are exactly BestResponse's, so the fused loop
// is bit-identical to the per-element form.
func (g *Game) BestResponsesInto(dst []float64, price float64) []float64 {
	if len(dst) != g.N() {
		panic(fmt.Sprintf("stackelberg: BestResponsesInto dst length %d, want %d", len(dst), g.N()))
	}
	if price <= 0 {
		panic(fmt.Sprintf("stackelberg: price must be positive, got %g", price))
	}
	e := g.SpectralEfficiency()
	for n, v := range g.VMUs {
		b := v.Alpha/price - v.DataSize/e
		if b < 0 {
			b = 0
		}
		dst[n] = b
	}
	return dst
}

// BestResponsesBatchInto is BestResponsesInto routed through the mat
// vector kernels over the scratch's structure-of-arrays follower mirror:
// one fused quotient-difference pass (mat.DivSubInto) and one branch-form
// clamp (mat.ClampMinInto) over the whole batch, instead of a per-vehicle
// loop. Results are bit-identical to BestResponsesInto — the per-element
// expression α/p − D/e and the `< 0` floor are unchanged, only batched.
func (g *Game) BestResponsesBatchInto(s *EvalScratch, dst []float64, price float64) []float64 {
	if len(dst) != g.N() {
		panic(fmt.Sprintf("stackelberg: BestResponsesBatchInto dst length %d, want %d", len(dst), g.N()))
	}
	if price <= 0 {
		panic(fmt.Sprintf("stackelberg: price must be positive, got %g", price))
	}
	s.gather(g)
	mat.DivSubInto(dst, s.alphas, price, s.dOverE)
	return mat.ClampMinInto(dst, dst, 0)
}

// TotalDemand returns Σ_n b*_n(price).
func (g *Game) TotalDemand(price float64) float64 {
	var total float64
	for n := range g.VMUs {
		total += g.BestResponse(n, price)
	}
	return total
}

// MSPUtility evaluates Eq. (4): U_s = Σ_n (p − C)·b_n for an explicit
// demand vector.
func (g *Game) MSPUtility(price float64, demands []float64) float64 {
	if len(demands) != g.N() {
		panic(fmt.Sprintf("stackelberg: demands length %d, want %d", len(demands), g.N()))
	}
	var u float64
	for _, b := range demands {
		u += (price - g.Cost) * b
	}
	return u
}

// MSPUtilityAtPrice evaluates the leader's reduced objective (Eq. 9):
// U_s(p) with followers playing their best responses. It accumulates the
// per-follower terms directly — in follower order, exactly like
// MSPUtility over a BestResponses vector — so it is allocation-free and
// bit-identical to the materialized form.
func (g *Game) MSPUtilityAtPrice(price float64) float64 {
	var u float64
	for n := range g.VMUs {
		u += (price - g.Cost) * g.BestResponse(n, price)
	}
	return u
}

// AoTMs returns each follower's Age of Twin Migration under the given
// demand vector (+Inf for zero bandwidth). The result is freshly
// allocated; hot loops use AoTMsInto.
func (g *Game) AoTMs(demands []float64) []float64 {
	return g.AoTMsInto(make([]float64, g.N()), demands)
}

// AoTMsInto writes each follower's Age of Twin Migration under the given
// demand vector into dst (length N) and returns dst.
func (g *Game) AoTMsInto(dst, demands []float64) []float64 {
	if len(dst) != g.N() || len(demands) != g.N() {
		panic(fmt.Sprintf("stackelberg: AoTMsInto lengths %d/%d, want %d", len(dst), len(demands), g.N()))
	}
	for n, v := range g.VMUs {
		dst[n] = aotm.AoTMForBandwidth(v.DataSize, demands[n], g.Channel)
	}
	return dst
}
