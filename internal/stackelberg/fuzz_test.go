package stackelberg

import (
	"math"
	"testing"

	"vtmig/internal/channel"
)

// fuzzGame builds a valid randomized game from raw fuzz inputs, clamping
// each parameter into its admissible range.
func fuzzGame(t *testing.T, a1, d1, a2, d2, cost, bmax float64) *Game {
	t.Helper()
	clampIn := func(v, lo, hi float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return lo
		}
		return lo + math.Mod(math.Abs(v), hi-lo)
	}
	vmus := []VMU{
		{ID: 0, Alpha: clampIn(a1, 1, 30), DataSize: clampIn(d1, 0.1, 5)},
		{ID: 1, Alpha: clampIn(a2, 1, 30), DataSize: clampIn(d2, 0.1, 5)},
	}
	g, err := NewGame(vmus, channel.DefaultParams(), clampIn(cost, 1, 20), 50, clampIn(bmax, 0, 2))
	if err != nil {
		t.Fatalf("constructed game invalid: %v", err)
	}
	return g
}

// equilibriaEqualBits fails the test unless the two reports are
// bit-identical in every field.
func equilibriaEqualBits(t *testing.T, label string, want, got Equilibrium) {
	t.Helper()
	eq := func(what string, a, b float64) {
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("%s: %s differs: %v (%x) vs %v (%x)",
				label, what, a, math.Float64bits(a), b, math.Float64bits(b))
		}
	}
	eq("price", want.Price, got.Price)
	eq("MSP utility", want.MSPUtility, got.MSPUtility)
	eq("total bandwidth", want.TotalBandwidth, got.TotalBandwidth)
	if want.CapacityBound != got.CapacityBound {
		t.Fatalf("%s: capacity bound differs: %v vs %v", label, want.CapacityBound, got.CapacityBound)
	}
	if len(want.Demands) != len(got.Demands) || len(want.VMUUtilities) != len(got.VMUUtilities) {
		t.Fatalf("%s: slice lengths differ", label)
	}
	for n := range want.Demands {
		eq("demand", want.Demands[n], got.Demands[n])
		eq("VMU utility", want.VMUUtilities[n], got.VMUUtilities[n])
	}
}

// FuzzEvaluateScratch pins the tentpole equivalence of the allocation-free
// evaluation path: for randomized games and prices, EvaluateInto with a
// reused scratch must reproduce the allocating Evaluate bit for bit —
// including immediately after the scratch was dirtied by other calls —
// and SolveInto must reproduce Solve the same way.
func FuzzEvaluateScratch(f *testing.F) {
	f.Add(5.0, 2.0, 5.0, 1.0, 5.0, 0.5, 25.3)
	f.Add(20.0, 3.0, 15.0, 0.1, 9.0, 0.01, 49.0)
	f.Add(5.0, 1.0, 5.0, 1.0, 49.0, 0.0, 1.0)
	f.Fuzz(func(t *testing.T, a1, d1, a2, d2, cost, bmax, price float64) {
		if math.IsNaN(price) || math.IsInf(price, 0) {
			price = 10
		}
		g := fuzzGame(t, a1, d1, a2, d2, cost, bmax)

		var s EvalScratch
		equilibriaEqualBits(t, "Evaluate", g.Evaluate(price), g.EvaluateInto(&s, price))
		// Dirty the scratch with an unrelated price, then re-evaluate:
		// reuse must not leak state between calls.
		g.EvaluateInto(&s, g.Cost+1)
		equilibriaEqualBits(t, "Evaluate after reuse", g.Evaluate(price), g.EvaluateInto(&s, price))
		equilibriaEqualBits(t, "Solve", g.Solve(), g.SolveInto(&s))
	})
}

// FuzzSolve ensures the equilibrium solver stays total over a wide
// parameter space: any valid game must solve to a feasible, in-range,
// non-negative-profit outcome.
func FuzzSolve(f *testing.F) {
	f.Add(5.0, 2.0, 5.0, 1.0, 5.0, 0.5)
	f.Add(20.0, 3.0, 15.0, 0.1, 9.0, 0.01)
	f.Add(5.0, 1.0, 5.0, 1.0, 49.0, 0.0)
	f.Fuzz(func(t *testing.T, a1, d1, a2, d2, cost, bmax float64) {
		g := fuzzGame(t, a1, d1, a2, d2, cost, bmax)
		eq := g.Solve()
		if eq.Price < g.Cost-1e-9 || eq.Price > g.PMax+1e-9 {
			t.Fatalf("price %v outside [C=%v, pmax=%v]", eq.Price, g.Cost, g.PMax)
		}
		if eq.MSPUtility < -1e-9 {
			t.Fatalf("negative MSP utility %v", eq.MSPUtility)
		}
		if g.BMax > 0 && eq.TotalBandwidth > g.BMax+1e-6 {
			t.Fatalf("Σb %v exceeds Bmax %v", eq.TotalBandwidth, g.BMax)
		}
		for n, b := range eq.Demands {
			if b < 0 || math.IsNaN(b) {
				t.Fatalf("demand %d = %v", n, b)
			}
		}
	})
}
