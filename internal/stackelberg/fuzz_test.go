package stackelberg

import (
	"math"
	"testing"

	"vtmig/internal/channel"
)

// FuzzSolve ensures the equilibrium solver stays total over a wide
// parameter space: any valid game must solve to a feasible, in-range,
// non-negative-profit outcome.
func FuzzSolve(f *testing.F) {
	f.Add(5.0, 2.0, 5.0, 1.0, 5.0, 0.5)
	f.Add(20.0, 3.0, 15.0, 0.1, 9.0, 0.01)
	f.Add(5.0, 1.0, 5.0, 1.0, 49.0, 0.0)
	f.Fuzz(func(t *testing.T, a1, d1, a2, d2, cost, bmax float64) {
		clampIn := func(v, lo, hi float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return lo
			}
			return lo + math.Mod(math.Abs(v), hi-lo)
		}
		vmus := []VMU{
			{ID: 0, Alpha: clampIn(a1, 1, 30), DataSize: clampIn(d1, 0.1, 5)},
			{ID: 1, Alpha: clampIn(a2, 1, 30), DataSize: clampIn(d2, 0.1, 5)},
		}
		g, err := NewGame(vmus, channel.DefaultParams(), clampIn(cost, 1, 20), 50, clampIn(bmax, 0, 2))
		if err != nil {
			t.Fatalf("constructed game invalid: %v", err)
		}
		eq := g.Solve()
		if eq.Price < g.Cost-1e-9 || eq.Price > g.PMax+1e-9 {
			t.Fatalf("price %v outside [C=%v, pmax=%v]", eq.Price, g.Cost, g.PMax)
		}
		if eq.MSPUtility < -1e-9 {
			t.Fatalf("negative MSP utility %v", eq.MSPUtility)
		}
		if g.BMax > 0 && eq.TotalBandwidth > g.BMax+1e-6 {
			t.Fatalf("Σb %v exceeds Bmax %v", eq.TotalBandwidth, g.BMax)
		}
		for n, b := range eq.Demands {
			if b < 0 || math.IsNaN(b) {
				t.Fatalf("demand %d = %v", n, b)
			}
		}
	})
}
