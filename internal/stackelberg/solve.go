package stackelberg

import (
	"math"

	"vtmig/internal/mathx"
)

// Equilibrium is a solved Stackelberg outcome.
type Equilibrium struct {
	// Price is the MSP's optimal unit bandwidth price p*.
	Price float64
	// Demands are the followers' bandwidth purchases b*_n in MHz.
	Demands []float64
	// MSPUtility is U_s(p*, b*).
	MSPUtility float64
	// VMUUtilities are U_n(b*_n, p*).
	VMUUtilities []float64
	// TotalBandwidth is Σ b*_n.
	TotalBandwidth float64
	// CapacityBound reports whether the Bmax constraint binds at the
	// optimum (the regime behind the price increase in Fig. 3(c)).
	CapacityBound bool
}

// UnconstrainedOptimalPrice evaluates the closed form of Theorem 2,
// p* = sqrt(C·e·Σα_n / ΣD_n), which is exact when every follower's best
// response is interior (b*_n > 0) and the Bmax constraint is slack.
func (g *Game) UnconstrainedOptimalPrice() float64 {
	var sumAlpha, sumD float64
	for _, v := range g.VMUs {
		sumAlpha += v.Alpha
		sumD += v.DataSize
	}
	return math.Sqrt(g.Cost * g.SpectralEfficiency() * sumAlpha / sumD)
}

// solverTol is the bracket tolerance for the price searches. Prices live
// in [C, pmax] ⊂ [5, 50], so 1e-9 is far below any meaningful digit.
const solverTol = 1e-9

// solverIters bounds the golden-section/bisection iteration counts.
const solverIters = 200

// Solve computes the Stackelberg equilibrium of the full constrained game
// (Problem 1 + Problem 2): the leader maximizes U_s(p) over [C, pmax]
// subject to Σ b*_n(p) ≤ Bmax, followers play best responses.
//
// Strategy: U_s(p) is strictly concave where demands are interior
// (Theorem 2) and total demand is strictly decreasing in p, so
//  1. find the unconstrained maximizer by golden-section search
//     (robust to the max(0,·) kinks of opt-out followers);
//  2. if total demand at that price exceeds Bmax, move the price up to
//     the unique point where Σ b*_n(p) = Bmax (bisection) — U_s is
//     decreasing past the unconstrained optimum, so the binding price is
//     optimal;
//  3. if even pmax cannot damp demand below Bmax, charge pmax and admit
//     demands proportionally scaled to capacity.
func (g *Game) Solve() Equilibrium {
	lo, hi := g.Cost, g.PMax
	price, _ := mathx.GoldenMax(g.MSPUtilityAtPrice, lo, hi, solverTol, solverIters)
	demands := g.BestResponses(price)
	capacityBound := false

	if g.BMax > 0 && mathx.Sum(demands) > g.BMax {
		capacityBound = true
		excess := func(p float64) float64 { return g.TotalDemand(p) - g.BMax }
		if excess(g.PMax) <= 0 {
			// The binding price lies in (price, pmax]: demand is
			// continuous and strictly decreasing there.
			if p, ok := mathx.Bisect(excess, price, g.PMax, solverTol, solverIters); ok {
				price = p
			} else {
				price = g.PMax
			}
			demands = g.BestResponses(price)
			// Wash out residual bisection error so Σb ≤ Bmax exactly.
			if sum := mathx.Sum(demands); sum > g.BMax {
				scale := g.BMax / sum
				for i := range demands {
					demands[i] *= scale
				}
			}
		} else {
			// Demand exceeds capacity even at pmax: admission control.
			price = g.PMax
			demands = g.BestResponses(price)
			scale := g.BMax / mathx.Sum(demands)
			for i := range demands {
				demands[i] *= scale
			}
		}
	}

	return g.equilibriumAt(price, demands, capacityBound)
}

// Evaluate builds the full equilibrium report for an arbitrary price with
// followers playing best responses (subject to proportional admission when
// Bmax binds). This is how learned or baseline prices are scored.
func (g *Game) Evaluate(price float64) Equilibrium {
	price = mathx.Clamp(price, g.Cost, g.PMax)
	demands := g.BestResponses(price)
	bound := false
	if g.BMax > 0 {
		if sum := mathx.Sum(demands); sum > g.BMax {
			bound = true
			scale := g.BMax / sum
			for i := range demands {
				demands[i] *= scale
			}
		}
	}
	return g.equilibriumAt(price, demands, bound)
}

// equilibriumAt assembles the report struct.
func (g *Game) equilibriumAt(price float64, demands []float64, bound bool) Equilibrium {
	utilities := make([]float64, g.N())
	for n := range g.VMUs {
		utilities[n] = g.VMUUtility(n, demands[n], price)
	}
	return Equilibrium{
		Price:          price,
		Demands:        demands,
		MSPUtility:     g.MSPUtility(price, demands),
		VMUUtilities:   utilities,
		TotalBandwidth: mathx.Sum(demands),
		CapacityBound:  bound,
	}
}

// SolveFollowersIBR solves the followers' subgame at a fixed price by
// iterated best response over a bandwidth grid, the generic competitive-
// game solver used to cross-check the closed form (and reusable for
// coupled variants such as the multi-MSP extension). It returns the demand
// vector after convergence.
//
// Because the followers' utilities are decoupled in the base game, IBR
// converges in one sweep; the iteration structure matters only for coupled
// extensions.
func (g *Game) SolveFollowersIBR(price float64, sweeps int, tol float64) []float64 {
	demands := make([]float64, g.N())
	upper := make([]float64, g.N())
	for n, v := range g.VMUs {
		// An upper bracket: utility is negative beyond α/p·e ≫ b*.
		upper[n] = v.Alpha/price + 1
	}
	for s := 0; s < sweeps; s++ {
		maxShift := 0.0
		for n := range g.VMUs {
			obj := func(b float64) float64 { return g.VMUUtility(n, b, price) }
			b, _ := mathx.GoldenMax(obj, 0, upper[n], 1e-12, solverIters)
			if obj(0) >= obj(b) {
				b = 0 // opting out dominates
			}
			if shift := math.Abs(b - demands[n]); shift > maxShift {
				maxShift = shift
			}
			demands[n] = b
		}
		if maxShift < tol {
			break
		}
	}
	return demands
}
