package stackelberg

import (
	"math"

	"vtmig/internal/mat"
	"vtmig/internal/mathx"
)

// Equilibrium is a solved Stackelberg outcome.
//
// Ownership of the slice fields depends on how the value was produced:
// Solve and Evaluate return freshly allocated slices the caller owns,
// while the *Into variants alias the EvalScratch they were given, which
// the next *Into call on the same scratch overwrites. Clone decouples a
// report that must outlive its scratch.
type Equilibrium struct {
	// Price is the MSP's optimal unit bandwidth price p*.
	Price float64
	// Demands are the followers' bandwidth purchases b*_n in MHz.
	Demands []float64
	// MSPUtility is U_s(p*, b*).
	MSPUtility float64
	// VMUUtilities are U_n(b*_n, p*).
	VMUUtilities []float64
	// TotalBandwidth is Σ b*_n.
	TotalBandwidth float64
	// CapacityBound reports whether the Bmax constraint binds at the
	// optimum (the regime behind the price increase in Fig. 3(c)).
	CapacityBound bool
}

// Clone returns a deep copy of eq whose slices are freshly allocated and
// independent of any EvalScratch.
func (eq Equilibrium) Clone() Equilibrium {
	eq.Demands = append([]float64(nil), eq.Demands...)
	eq.VMUUtilities = append([]float64(nil), eq.VMUUtilities...)
	return eq
}

// EvalScratch holds the reusable destination buffers of the *Into
// evaluation path. One scratch serves one game-evaluation loop: every
// EvaluateInto/SolveInto call on it overwrites the slices of the
// previously returned Equilibrium. The zero value is ready to use and
// grows to the follower count on first use; a scratch must not be shared
// between concurrent goroutines.
//
// Besides the result buffers, the scratch carries a structure-of-arrays
// mirror of the followers (α_n and D_n/e) that the batched best-response
// kernels read. The mirror is re-gathered from the game on every
// SolveInto/EvaluateInto entry — never cached across calls — so a scratch
// can serve games whose VMUs change between rounds.
type EvalScratch struct {
	demands   []float64
	utilities []float64

	// alphas and dOverE are the SoA follower mirror; bbuf is the batch
	// destination of the solver's inner objective evaluations, kept
	// separate from demands so objective probes never clobber a result.
	alphas []float64
	dOverE []float64
	bbuf   []float64
}

// grow sizes every buffer to n followers, reusing capacity.
func (s *EvalScratch) grow(n int) {
	if cap(s.demands) < n {
		s.demands = make([]float64, n)
		s.utilities = make([]float64, n)
		s.alphas = make([]float64, n)
		s.dOverE = make([]float64, n)
		s.bbuf = make([]float64, n)
	}
	s.demands = s.demands[:n]
	s.utilities = s.utilities[:n]
	s.alphas = s.alphas[:n]
	s.dOverE = s.dOverE[:n]
	s.bbuf = s.bbuf[:n]
}

// gather refreshes the SoA follower mirror from the game: alphas[i] = α_i
// and dOverE[i] = D_i/e with e hoisted once. The serial path divides
// D_n/e with the same e on every call, so precomputing the quotient here
// is bit-identical to recomputing it per element.
func (s *EvalScratch) gather(g *Game) {
	s.grow(g.N())
	e := g.SpectralEfficiency()
	for i, v := range g.VMUs {
		s.alphas[i] = v.Alpha
		s.dOverE[i] = v.DataSize / e
	}
}

// bestResponsesGathered fills dst with every follower's best response at
// price from the already-gathered mirror — the two mat kernel passes of
// BestResponsesBatchInto without the re-gather, for the solver's inner
// loops where the game is fixed.
func (g *Game) bestResponsesGathered(s *EvalScratch, dst []float64, price float64) []float64 {
	mat.DivSubInto(dst, s.alphas, price, s.dOverE)
	return mat.ClampMinInto(dst, dst, 0)
}

// mspUtilityGathered is MSPUtilityAtPrice over the gathered mirror: one
// batched best-response pass, then the per-term (p−C)·b_n accumulation in
// follower order — the exact summation order of the serial form.
func (g *Game) mspUtilityGathered(s *EvalScratch, price float64) float64 {
	demands := g.bestResponsesGathered(s, s.bbuf, price)
	var u float64
	for _, b := range demands {
		u += (price - g.Cost) * b
	}
	return u
}

// totalDemandGathered is TotalDemand over the gathered mirror; mathx.Sum
// accumulates in index order exactly like the serial loop.
func (g *Game) totalDemandGathered(s *EvalScratch, price float64) float64 {
	return mathx.Sum(g.bestResponsesGathered(s, s.bbuf, price))
}

// UnconstrainedOptimalPrice evaluates the closed form of Theorem 2,
// p* = sqrt(C·e·Σα_n / ΣD_n), which is exact when every follower's best
// response is interior (b*_n > 0) and the Bmax constraint is slack.
func (g *Game) UnconstrainedOptimalPrice() float64 {
	var sumAlpha, sumD float64
	for _, v := range g.VMUs {
		sumAlpha += v.Alpha
		sumD += v.DataSize
	}
	return math.Sqrt(g.Cost * g.SpectralEfficiency() * sumAlpha / sumD)
}

// solverTol is the bracket tolerance for the price searches. Prices live
// in [C, pmax] ⊂ [5, 50], so 1e-9 is far below any meaningful digit.
const solverTol = 1e-9

// solverIters bounds the golden-section/bisection iteration counts.
const solverIters = 200

// Solve computes the Stackelberg equilibrium of the full constrained game
// (Problem 1 + Problem 2): the leader maximizes U_s(p) over [C, pmax]
// subject to Σ b*_n(p) ≤ Bmax, followers play best responses.
//
// Strategy: U_s(p) is strictly concave where demands are interior
// (Theorem 2) and total demand is strictly decreasing in p, so
//  1. find the unconstrained maximizer by golden-section search
//     (robust to the max(0,·) kinks of opt-out followers);
//  2. if total demand at that price exceeds Bmax, move the price up to
//     the unique point where Σ b*_n(p) = Bmax (bisection) — U_s is
//     decreasing past the unconstrained optimum, so the binding price is
//     optimal;
//  3. if even pmax cannot damp demand below Bmax, charge pmax and admit
//     demands proportionally scaled to capacity.
func (g *Game) Solve() Equilibrium {
	var s EvalScratch
	return g.SolveInto(&s)
}

// SolveInto is Solve with caller-provided scratch: the returned report's
// slices alias s and are overwritten by the next *Into call on s. After a
// warm-up call the solve is allocation-free in steady state.
func (g *Game) SolveInto(s *EvalScratch) Equilibrium {
	lo, hi := g.Cost, g.PMax
	s.gather(g)
	obj := func(p float64) float64 { return g.mspUtilityGathered(s, p) }
	price, _ := mathx.GoldenMax(obj, lo, hi, solverTol, solverIters)
	demands := g.bestResponsesGathered(s, s.demands, price)
	capacityBound := false

	if g.BMax > 0 && mathx.Sum(demands) > g.BMax {
		capacityBound = true
		excess := func(p float64) float64 { return g.totalDemandGathered(s, p) - g.BMax }
		if excess(g.PMax) <= 0 {
			// The binding price lies in (price, pmax]: demand is
			// continuous and strictly decreasing there.
			if p, ok := mathx.Bisect(excess, price, g.PMax, solverTol, solverIters); ok {
				price = p
			} else {
				price = g.PMax
			}
			g.bestResponsesGathered(s, demands, price)
			// Wash out residual bisection error so Σb ≤ Bmax exactly.
			if sum := mathx.Sum(demands); sum > g.BMax {
				scale := g.BMax / sum
				for i := range demands {
					demands[i] *= scale
				}
			}
		} else {
			// Demand exceeds capacity even at pmax: admission control.
			price = g.PMax
			g.bestResponsesGathered(s, demands, price)
			scale := g.BMax / mathx.Sum(demands)
			for i := range demands {
				demands[i] *= scale
			}
		}
	}

	return g.equilibriumInto(s, price, capacityBound)
}

// Evaluate builds the full equilibrium report for an arbitrary price with
// followers playing best responses (subject to proportional admission when
// Bmax binds). This is how learned or baseline prices are scored. The
// returned slices are freshly allocated; per-round loops use EvaluateInto.
func (g *Game) Evaluate(price float64) Equilibrium {
	var s EvalScratch
	return g.EvaluateInto(&s, price)
}

// EvaluateInto is Evaluate with caller-provided scratch — the
// allocation-free form used by the POMDP environment's per-round loop.
// The returned report's slices alias s and are overwritten by the next
// *Into call on s; use Clone (or Evaluate) for a report that must be
// retained. Results are bit-identical to Evaluate.
func (g *Game) EvaluateInto(s *EvalScratch, price float64) Equilibrium {
	price = mathx.Clamp(price, g.Cost, g.PMax)
	s.gather(g)
	demands := g.bestResponsesGathered(s, s.demands, price)
	bound := false
	if g.BMax > 0 {
		if sum := mathx.Sum(demands); sum > g.BMax {
			bound = true
			scale := g.BMax / sum
			for i := range demands {
				demands[i] *= scale
			}
		}
	}
	return g.equilibriumInto(s, price, bound)
}

// equilibriumInto assembles the report struct over the scratch buffers
// (s.demands already holds the admitted demand vector).
func (g *Game) equilibriumInto(s *EvalScratch, price float64, bound bool) Equilibrium {
	for n := range g.VMUs {
		s.utilities[n] = g.VMUUtility(n, s.demands[n], price)
	}
	return Equilibrium{
		Price:          price,
		Demands:        s.demands,
		MSPUtility:     g.MSPUtility(price, s.demands),
		VMUUtilities:   s.utilities,
		TotalBandwidth: mathx.Sum(s.demands),
		CapacityBound:  bound,
	}
}

// SolveFollowersIBR solves the followers' subgame at a fixed price by
// iterated best response over a bandwidth grid, the generic competitive-
// game solver used to cross-check the closed form (and reusable for
// coupled variants such as the multi-MSP extension). It returns the demand
// vector after convergence.
//
// Because the followers' utilities are decoupled in the base game, IBR
// converges in one sweep; the iteration structure matters only for coupled
// extensions.
func (g *Game) SolveFollowersIBR(price float64, sweeps int, tol float64) []float64 {
	demands := make([]float64, g.N())
	upper := make([]float64, g.N())
	for n, v := range g.VMUs {
		// An upper bracket: utility is negative beyond α/p·e ≫ b*.
		upper[n] = v.Alpha/price + 1
	}
	for s := 0; s < sweeps; s++ {
		maxShift := 0.0
		for n := range g.VMUs {
			obj := func(b float64) float64 { return g.VMUUtility(n, b, price) }
			b, _ := mathx.GoldenMax(obj, 0, upper[n], 1e-12, solverIters)
			if obj(0) >= obj(b) {
				b = 0 // opting out dominates
			}
			if shift := math.Abs(b - demands[n]); shift > maxShift {
				maxShift = shift
			}
			demands[n] = b
		}
		if maxShift < tol {
			break
		}
	}
	return demands
}
