package stackelberg

import (
	"testing"
)

// The tests in this file lock in the zero-allocation steady state of the
// equilibrium evaluation path: after a warm-up call has grown the scratch
// to the follower count, EvaluateInto, SolveInto, and the destination-
// passing helpers must not touch the heap again. This is what keeps the
// Fig. 2(a) training loop allocation-free (the per-round follower
// response used to cost ~1k allocs/op in report slices).

func TestEvaluateIntoAllocationFree(t *testing.T) {
	g := DefaultGame()
	var s EvalScratch
	g.EvaluateInto(&s, 25.3) // warm-up grows the scratch
	if n := testing.AllocsPerRun(100, func() {
		if eq := g.EvaluateInto(&s, 25.3); eq.MSPUtility <= 0 {
			t.Fatal("bad evaluation")
		}
	}); n != 0 {
		t.Errorf("EvaluateInto allocates %v times per call, want 0 in steady state", n)
	}
}

func TestSolveIntoAllocationFree(t *testing.T) {
	g := DefaultGame()
	var s EvalScratch
	g.SolveInto(&s) // warm-up
	if n := testing.AllocsPerRun(50, func() {
		if eq := g.SolveInto(&s); eq.Price <= 0 {
			t.Fatal("bad solve")
		}
	}); n != 0 {
		t.Errorf("SolveInto allocates %v times per call, want 0 in steady state", n)
	}
}

func TestBestResponsesIntoAllocationFree(t *testing.T) {
	g := DefaultGame()
	dst := make([]float64, g.N())
	ages := make([]float64, g.N())
	if n := testing.AllocsPerRun(100, func() {
		g.BestResponsesInto(dst, 25.3)
		g.AoTMsInto(ages, dst)
	}); n != 0 {
		t.Errorf("BestResponsesInto+AoTMsInto allocate %v times per call, want 0", n)
	}
}

func TestMSPUtilityAtPriceAllocationFree(t *testing.T) {
	g := DefaultGame()
	if n := testing.AllocsPerRun(100, func() {
		if u := g.MSPUtilityAtPrice(25.3); u <= 0 {
			t.Fatal("bad utility")
		}
	}); n != 0 {
		t.Errorf("MSPUtilityAtPrice allocates %v times per call, want 0", n)
	}
}
