package stackelberg

import (
	"math"
	"testing"
	"testing/quick"

	"vtmig/internal/aotm"
	"vtmig/internal/channel"
	"vtmig/internal/mathx"
)

// uniformGame builds the Fig. 3(c)/(d) scenario: n VMUs, D=100 MB, α=5,
// C=5, Bmax=0.5 MHz.
func uniformGame(t *testing.T, n int) *Game {
	t.Helper()
	vmus := make([]VMU, n)
	for i := range vmus {
		vmus[i] = VMU{ID: i, Alpha: 5, DataSize: 1}
	}
	g, err := NewGame(vmus, channel.DefaultParams(), 5, 50, 0.5)
	if err != nil {
		t.Fatalf("NewGame: %v", err)
	}
	return g
}

func TestDefaultGameValidates(t *testing.T) {
	if err := DefaultGame().Validate(); err != nil {
		t.Fatalf("DefaultGame invalid: %v", err)
	}
}

func TestGameValidation(t *testing.T) {
	ch := channel.DefaultParams()
	tests := []struct {
		name string
		vmus []VMU
		cost float64
		pmax float64
	}{
		{"no VMUs", nil, 5, 50},
		{"bad alpha", []VMU{{ID: 0, Alpha: 0, DataSize: 1}}, 5, 50},
		{"bad data", []VMU{{ID: 0, Alpha: 5, DataSize: 0}}, 5, 50},
		{"dup ids", []VMU{{ID: 1, Alpha: 5, DataSize: 1}, {ID: 1, Alpha: 5, DataSize: 1}}, 5, 50},
		{"zero cost", []VMU{{ID: 0, Alpha: 5, DataSize: 1}}, 0, 50},
		{"pmax below cost", []VMU{{ID: 0, Alpha: 5, DataSize: 1}}, 5, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewGame(tt.vmus, ch, tt.cost, tt.pmax, 0.5); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestBestResponseClosedForm(t *testing.T) {
	g := DefaultGame()
	e := g.SpectralEfficiency()
	price := 25.0
	for n, v := range g.VMUs {
		want := v.Alpha/price - v.DataSize/e
		if got := g.BestResponse(n, price); !mathx.AlmostEqual(got, want, 1e-12) {
			t.Errorf("BestResponse(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestBestResponseFloorsAtZero(t *testing.T) {
	g := DefaultGame()
	// At a price above α·e/D the interior optimum is negative; the VMU
	// opts out.
	if got := g.BestResponse(0, 1e6); got != 0 {
		t.Errorf("BestResponse at huge price = %v, want 0", got)
	}
}

func TestBestResponseMaximizesUtility(t *testing.T) {
	// The closed form must beat a dense grid of alternatives (Theorem 1).
	g := DefaultGame()
	for _, price := range []float64{10, 25, 40} {
		for n := range g.VMUs {
			b := g.BestResponse(n, price)
			best := g.VMUUtility(n, b, price)
			for _, alt := range mathx.Linspace(0.0001, 1, 500) {
				if u := g.VMUUtility(n, alt, price); u > best+1e-9 {
					t.Fatalf("VMU %d at p=%v: b=%v beaten by alt=%v (%v > %v)", n, price, b, alt, u, best)
				}
			}
		}
	}
}

func TestMarginalUtilityZeroAtBestResponse(t *testing.T) {
	g := DefaultGame()
	price := 20.0
	for n := range g.VMUs {
		b := g.BestResponse(n, price)
		if d := g.VMUMarginalUtility(n, b, price); !mathx.AlmostEqual(d, 0, 1e-9) {
			t.Errorf("marginal utility at best response = %v, want 0", d)
		}
	}
}

// TestVMUUtilityStrictlyConcave is the computational content of Theorem 1:
// the second difference of U_n(b) is negative everywhere.
func TestVMUUtilityStrictlyConcave(t *testing.T) {
	g := DefaultGame()
	const h = 1e-4
	for _, price := range []float64{6, 25, 49} {
		for n := range g.VMUs {
			for _, b := range mathx.Linspace(0.01, 1, 50) {
				second := g.VMUUtility(n, b+h, price) - 2*g.VMUUtility(n, b, price) + g.VMUUtility(n, b-h, price)
				if second >= 0 {
					t.Fatalf("U_%d not concave at b=%v, p=%v: second difference %v", n, b, price, second)
				}
			}
		}
	}
}

// TestMSPUtilityStrictlyConcave is the computational content of Theorem 2
// on the interior region (all followers active).
func TestMSPUtilityStrictlyConcave(t *testing.T) {
	g := DefaultGame()
	const h = 1e-3
	for _, p := range mathx.Linspace(6, 49, 60) {
		second := g.MSPUtilityAtPrice(p+h) - 2*g.MSPUtilityAtPrice(p) + g.MSPUtilityAtPrice(p-h)
		if second >= 0 {
			t.Fatalf("U_s not concave at p=%v: second difference %v", p, second)
		}
	}
}

func TestUnconstrainedOptimalPriceClosedForm(t *testing.T) {
	g := DefaultGame()
	e := g.SpectralEfficiency()
	want := math.Sqrt(5 * e * 10 / 3) // C=5, Σα=10, ΣD=3
	if got := g.UnconstrainedOptimalPrice(); !mathx.AlmostEqual(got, want, 1e-12) {
		t.Errorf("p* = %v, want %v", got, want)
	}
	// The paper reports ≈25 for this scenario.
	if got := g.UnconstrainedOptimalPrice(); math.Abs(got-25.3) > 0.2 {
		t.Errorf("p* = %v, want ≈25.3 (paper: 25)", got)
	}
}

// TestSolveMatchesPaperAnchors pins the solver to every numeric anchor
// reported in Section V of the paper.
func TestSolveMatchesPaperAnchors(t *testing.T) {
	t.Run("cost sweep prices (Fig 3a)", func(t *testing.T) {
		// C=5 ⇒ p*≈25.3 (paper: 25); C=9 ⇒ p*≈34.0 (paper: 34).
		for _, tc := range []struct{ cost, wantPrice, tol float64 }{
			{5, 25.34, 0.05},
			{9, 34.00, 0.05},
		} {
			g := DefaultGame()
			g.Cost = tc.cost
			eq := g.Solve()
			if math.Abs(eq.Price-tc.wantPrice) > tc.tol {
				t.Errorf("C=%v: price %v, want %v±%v", tc.cost, eq.Price, tc.wantPrice, tc.tol)
			}
			if eq.CapacityBound {
				t.Errorf("C=%v: capacity should not bind with 2 VMUs", tc.cost)
			}
		}
	})

	t.Run("bandwidth at C=8 (Fig 3b)", func(t *testing.T) {
		g := DefaultGame()
		g.Cost = 8
		eq := g.Solve()
		// Paper reports 23.4 in display units of 10 kHz (×100 of MHz).
		if got := eq.TotalBandwidth * 100; math.Abs(got-23.4) > 0.1 {
			t.Errorf("total bandwidth = %v (×10kHz), want 23.4", got)
		}
	})

	t.Run("MSP utility vs N (Fig 3c)", func(t *testing.T) {
		for _, tc := range []struct {
			n         int
			wantUs    float64
			wantBound bool
		}{
			{2, 7.03, false},  // paper: 7.03
			{6, 20.35, false}, // paper: 20.35; capacity binds here
		} {
			g := uniformGame(t, tc.n)
			eq := g.Solve()
			if math.Abs(eq.MSPUtility-tc.wantUs) > 0.05 {
				t.Errorf("N=%d: U_s = %v, want %v", tc.n, eq.MSPUtility, tc.wantUs)
			}
		}
	})

	t.Run("capacity binds for large N (Fig 3c price rise)", func(t *testing.T) {
		small := uniformGame(t, 2).Solve()
		large := uniformGame(t, 6).Solve()
		if small.CapacityBound {
			t.Error("capacity must be slack at N=2")
		}
		if !large.CapacityBound {
			t.Error("capacity must bind at N=6")
		}
		if large.Price <= small.Price {
			t.Errorf("price must rise when capacity binds: N=2 %v, N=6 %v", small.Price, large.Price)
		}
		if got := large.TotalBandwidth; !mathx.AlmostEqual(got, 0.5, 1e-6) {
			t.Errorf("bound total bandwidth = %v, want Bmax=0.5", got)
		}
	})

	t.Run("price flat while capacity slack (Fig 3c)", func(t *testing.T) {
		p2 := uniformGame(t, 2).Solve().Price
		p3 := uniformGame(t, 3).Solve().Price
		if math.Abs(p2-p3) > 0.01 {
			t.Errorf("price should stay ≈constant while slack: N=2 %v, N=3 %v", p2, p3)
		}
	})

	t.Run("average VMU utility falls with N (Fig 3d)", func(t *testing.T) {
		u2 := mathx.Mean(uniformGame(t, 2).Solve().VMUUtilities)
		u6 := mathx.Mean(uniformGame(t, 6).Solve().VMUUtilities)
		if u6 >= u2 {
			t.Errorf("average VMU utility must fall: N=2 %v, N=6 %v", u2, u6)
		}
	})
}

func TestSolveAgreesWithClosedFormWhenUnconstrained(t *testing.T) {
	g := DefaultGame()
	g.BMax = 0 // unconstrained
	eq := g.Solve()
	if want := g.UnconstrainedOptimalPrice(); !mathx.AlmostEqual(eq.Price, want, 1e-5) {
		t.Errorf("Solve price %v, closed form %v", eq.Price, want)
	}
	for n := range g.VMUs {
		if want := g.BestResponse(n, eq.Price); !mathx.AlmostEqual(eq.Demands[n], want, 1e-9) {
			t.Errorf("demand %d = %v, want %v", n, eq.Demands[n], want)
		}
	}
}

func TestSolveRespectsCapacityExactly(t *testing.T) {
	for n := 4; n <= 8; n++ {
		g := uniformGame(t, n)
		eq := g.Solve()
		if eq.TotalBandwidth > g.BMax+1e-9 {
			t.Errorf("N=%d: Σb = %v exceeds Bmax %v", n, eq.TotalBandwidth, g.BMax)
		}
	}
}

func TestSolveAdmissionControlAtPMax(t *testing.T) {
	// Tiny Bmax: even pmax cannot damp demand; the solver must charge
	// pmax and scale admissions.
	g := uniformGame(t, 6)
	g.BMax = 0.01
	eq := g.Solve()
	if !mathx.AlmostEqual(eq.Price, g.PMax, 1e-9) {
		t.Errorf("price = %v, want pmax %v", eq.Price, g.PMax)
	}
	if !mathx.AlmostEqual(eq.TotalBandwidth, 0.01, 1e-9) {
		t.Errorf("Σb = %v, want Bmax 0.01", eq.TotalBandwidth)
	}
	if !eq.CapacityBound {
		t.Error("CapacityBound must be set")
	}
}

func TestEvaluateClampsPrice(t *testing.T) {
	g := DefaultGame()
	eq := g.Evaluate(1000)
	if eq.Price != g.PMax {
		t.Errorf("Evaluate clamped price = %v, want %v", eq.Price, g.PMax)
	}
	eq = g.Evaluate(0.1)
	if eq.Price != g.Cost {
		t.Errorf("Evaluate clamped price = %v, want %v", eq.Price, g.Cost)
	}
}

func TestEvaluateAtOptimumMatchesSolve(t *testing.T) {
	g := DefaultGame()
	eq := g.Solve()
	ev := g.Evaluate(eq.Price)
	if !mathx.AlmostEqual(ev.MSPUtility, eq.MSPUtility, 1e-9) {
		t.Errorf("Evaluate(%v) U_s = %v, Solve U_s = %v", eq.Price, ev.MSPUtility, eq.MSPUtility)
	}
}

func TestIBRMatchesClosedForm(t *testing.T) {
	g := DefaultGame()
	for _, price := range []float64{10, 25, 40} {
		ibr := g.SolveFollowersIBR(price, 10, 1e-10)
		for n := range g.VMUs {
			want := g.BestResponse(n, price)
			if !mathx.AlmostEqual(ibr[n], want, 1e-5) {
				t.Errorf("p=%v VMU %d: IBR %v, closed form %v", price, n, ibr[n], want)
			}
		}
	}
}

func TestIBRHandlesOptOut(t *testing.T) {
	g := DefaultGame()
	// Price just below pmax where D=200MB VMU has a tiny/zero response.
	ibr := g.SolveFollowersIBR(49.9, 10, 1e-10)
	for n := range g.VMUs {
		want := g.BestResponse(n, 49.9)
		if !mathx.AlmostEqual(ibr[n], want, 1e-4) {
			t.Errorf("VMU %d: IBR %v, closed form %v", n, ibr[n], want)
		}
	}
}

func TestVerifyEquilibriumAccepts(t *testing.T) {
	g := DefaultGame()
	eq := g.Solve()
	res := g.VerifyEquilibrium(eq, 200, 1e-6)
	if !res.OK {
		t.Fatalf("equilibrium rejected: %v", res.Violations)
	}
}

func TestVerifyEquilibriumAcceptsCapacityBound(t *testing.T) {
	g := uniformGame(t, 6)
	eq := g.Solve()
	res := g.VerifyEquilibrium(eq, 200, 1e-6)
	if !res.OK {
		t.Fatalf("capacity-bound equilibrium rejected: %v", res.Violations)
	}
}

func TestVerifyEquilibriumRejectsBadPrice(t *testing.T) {
	g := DefaultGame()
	bad := g.Evaluate(10) // far from optimal
	res := g.VerifyEquilibrium(bad, 100, 1e-6)
	if res.OK {
		t.Fatal("suboptimal price passed verification")
	}
	if res.MaxLeaderGain <= 0 {
		t.Error("expected a positive leader gain")
	}
}

func TestVerifyEquilibriumRejectsBadDemand(t *testing.T) {
	g := DefaultGame()
	eq := g.Solve()
	eq.Demands[0] *= 0.2 // follower 0 deviates from best response
	eq.VMUUtilities[0] = g.VMUUtility(0, eq.Demands[0], eq.Price)
	res := g.VerifyEquilibrium(eq, 300, 1e-6)
	if res.OK {
		t.Fatal("non-best-response demand passed verification")
	}
	if res.MaxFollowerGain <= 0 {
		t.Error("expected a positive follower gain")
	}
}

func TestAoTMsAtEquilibrium(t *testing.T) {
	g := DefaultGame()
	eq := g.Solve()
	ages := g.AoTMs(eq.Demands)
	e := g.SpectralEfficiency()
	for n, v := range g.VMUs {
		want := v.DataSize / (eq.Demands[n] * e)
		if !mathx.AlmostEqual(ages[n], want, 1e-12) {
			t.Errorf("AoTM %d = %v, want %v", n, ages[n], want)
		}
	}
	// VMU 0 migrates 200 MB, VMU 1 migrates 100 MB at the same α: the
	// bigger twin must be staler.
	if ages[0] <= ages[1] {
		t.Errorf("expected AoTM_0 > AoTM_1, got %v vs %v", ages[0], ages[1])
	}
}

// Property: the Stackelberg equilibrium price weakly increases in the unit
// cost C (the economics behind Fig. 3(a)).
func TestPriceMonotoneInCostProperty(t *testing.T) {
	f := func(seed uint8) bool {
		c1 := 5 + float64(seed%40)/10 // [5, 9)
		c2 := c1 + 0.5
		g1 := DefaultGame()
		g1.Cost = c1
		g2 := DefaultGame()
		g2.Cost = c2
		return g2.Solve().Price >= g1.Solve().Price-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: total demand is non-increasing in price.
func TestDemandMonotoneInPriceProperty(t *testing.T) {
	g := DefaultGame()
	f := func(seed uint8) bool {
		p := 5 + float64(seed%45)
		return g.TotalDemand(p+1) <= g.TotalDemand(p)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: at the solved equilibrium, MSP utility is non-negative (the
// MSP never sells below cost).
func TestMSPUtilityNonNegativeProperty(t *testing.T) {
	f := func(a1, a2, d1, d2 uint8) bool {
		vmus := []VMU{
			{ID: 0, Alpha: 5 + float64(a1%16), DataSize: 1 + float64(d1%3)},
			{ID: 1, Alpha: 5 + float64(a2%16), DataSize: 1 + float64(d2%3)},
		}
		g, err := NewGame(vmus, channel.DefaultParams(), 5, 50, 0.5)
		if err != nil {
			return false
		}
		eq := g.Solve()
		return eq.MSPUtility >= -1e-9 && eq.Price >= g.Cost && eq.Price <= g.PMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFromMBHelperInGameSetup(t *testing.T) {
	g := DefaultGame()
	if g.VMUs[0].DataSize != aotm.FromMB(200) {
		t.Errorf("default D1 = %v, want 2 (200 MB)", g.VMUs[0].DataSize)
	}
}

func TestVerifyEquilibriumGridValidation(t *testing.T) {
	g := DefaultGame()
	eq := g.Solve()
	defer func() {
		if recover() == nil {
			t.Fatal("gridN=1 did not panic")
		}
	}()
	g.VerifyEquilibrium(eq, 1, 1e-6)
}

func TestBestResponsePriceValidation(t *testing.T) {
	g := DefaultGame()
	defer func() {
		if recover() == nil {
			t.Fatal("zero price did not panic")
		}
	}()
	g.BestResponse(0, 0)
}

func TestMSPUtilityDemandLengthPanics(t *testing.T) {
	g := DefaultGame()
	defer func() {
		if recover() == nil {
			t.Fatal("short demand vector did not panic")
		}
	}()
	g.MSPUtility(10, []float64{0.1})
}
