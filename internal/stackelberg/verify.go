package stackelberg

import (
	"fmt"

	"vtmig/internal/mathx"
)

// VerifyResult reports an equilibrium check per Definition 1.
type VerifyResult struct {
	// OK is true when no profitable unilateral deviation was found.
	OK bool
	// Violations describes each profitable deviation discovered.
	Violations []string
	// MaxLeaderGain is the largest utility improvement the MSP could
	// achieve by deviating (0 when none).
	MaxLeaderGain float64
	// MaxFollowerGain is the largest utility improvement any VMU could
	// achieve by deviating (0 when none).
	MaxFollowerGain float64
}

// VerifyEquilibrium checks Definition 1 on a grid: the MSP must not gain
// by changing the price (with followers re-optimizing), and no VMU must
// gain by changing its own bandwidth at the equilibrium price. gridN sets
// the deviation-grid resolution; tol is the utility slack treated as
// numerical noise.
//
// When the capacity constraint binds, leader deviations are evaluated
// against the same feasibility rule used by Solve (prices that would
// oversubscribe Bmax are admission-scaled), and follower deviations are
// restricted to the follower's feasible interval given the others' fixed
// purchases.
func (g *Game) VerifyEquilibrium(eq Equilibrium, gridN int, tol float64) VerifyResult {
	if gridN < 2 {
		panic(fmt.Sprintf("stackelberg: gridN must be >= 2, got %d", gridN))
	}
	res := VerifyResult{OK: true}

	// Leader deviations over the price range. One scratch serves the whole
	// grid sweep: only alt's scalar fields are read per point.
	var scratch EvalScratch
	for _, p := range mathx.Linspace(g.Cost, g.PMax, gridN) {
		alt := g.EvaluateInto(&scratch, p)
		if gain := alt.MSPUtility - eq.MSPUtility; gain > tol {
			res.OK = false
			if gain > res.MaxLeaderGain {
				res.MaxLeaderGain = gain
			}
			res.Violations = append(res.Violations,
				fmt.Sprintf("MSP gains %.6g by pricing %.6g instead of %.6g", gain, p, eq.Price))
		}
	}

	// Follower deviations at the equilibrium price.
	for n := range g.VMUs {
		current := eq.VMUUtilities[n]
		hi := g.VMUs[n].Alpha/eq.Price + 1
		if g.BMax > 0 {
			othersTotal := eq.TotalBandwidth - eq.Demands[n]
			if headroom := g.BMax - othersTotal; headroom < hi {
				hi = headroom
			}
		}
		if hi <= 0 {
			continue
		}
		for _, b := range mathx.Linspace(0, hi, gridN) {
			var u float64
			if b == 0 {
				u = 0
			} else {
				u = g.VMUUtility(n, b, eq.Price)
			}
			if gain := u - current; gain > tol {
				res.OK = false
				if gain > res.MaxFollowerGain {
					res.MaxFollowerGain = gain
				}
				res.Violations = append(res.Violations,
					fmt.Sprintf("VMU %d gains %.6g by buying %.6g instead of %.6g", n, gain, b, eq.Demands[n]))
			}
		}
	}
	return res
}
