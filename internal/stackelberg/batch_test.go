package stackelberg

import (
	"math"
	"math/rand"
	"testing"

	"vtmig/internal/channel"
	"vtmig/internal/mathx"
)

// solveSerialReference is a verbatim copy of the pre-batching SolveInto:
// golden-section over the per-follower MSPUtilityAtPrice, per-follower
// best responses and TotalDemand, same tolerances.
func solveSerialReference(g *Game) Equilibrium {
	lo, hi := g.Cost, g.PMax
	price, _ := mathx.GoldenMax(g.MSPUtilityAtPrice, lo, hi, solverTol, solverIters)
	demands := make([]float64, g.N())
	for n := range g.VMUs {
		demands[n] = serialBestResponse(g, n, price)
	}
	capacityBound := false
	if g.BMax > 0 && mathx.Sum(demands) > g.BMax {
		capacityBound = true
		excess := func(p float64) float64 { return g.TotalDemand(p) - g.BMax }
		if excess(g.PMax) <= 0 {
			if p, ok := mathx.Bisect(excess, price, g.PMax, solverTol, solverIters); ok {
				price = p
			} else {
				price = g.PMax
			}
			for n := range g.VMUs {
				demands[n] = serialBestResponse(g, n, price)
			}
			if sum := mathx.Sum(demands); sum > g.BMax {
				scale := g.BMax / sum
				for i := range demands {
					demands[i] *= scale
				}
			}
		} else {
			price = g.PMax
			for n := range g.VMUs {
				demands[n] = serialBestResponse(g, n, price)
			}
			scale := g.BMax / mathx.Sum(demands)
			for i := range demands {
				demands[i] *= scale
			}
		}
	}
	utilities := make([]float64, g.N())
	for n := range g.VMUs {
		utilities[n] = g.VMUUtility(n, demands[n], price)
	}
	return Equilibrium{
		Price:          price,
		Demands:        demands,
		MSPUtility:     g.MSPUtility(price, demands),
		VMUUtilities:   utilities,
		TotalBandwidth: mathx.Sum(demands),
		CapacityBound:  capacityBound,
	}
}

// This file pins the batched best-response path introduced for the
// fleet-scale simulator: routing the follower best responses, the
// leader's reduced objective, and the solver through the mat vector
// kernels over an SoA follower mirror must be bit-identical to the
// per-follower serial forms — the committed goldens depend on it.

// randomBatchGame builds a game with a randomized follower population,
// including followers priced out at high prices (zero best responses).
func randomBatchGame(rng *rand.Rand, n int) *Game {
	vmus := make([]VMU, n)
	for i := range vmus {
		vmus[i] = VMU{
			ID:       i,
			Alpha:    0.5 + rng.Float64()*20,
			DataSize: 0.5 + rng.Float64()*3,
		}
	}
	return &Game{
		VMUs:    vmus,
		Channel: channel.DefaultParams(),
		Cost:    5,
		PMax:    50,
		BMax:    0.1 + rng.Float64()*2,
	}
}

// serialBestResponse is the original unfused per-follower form, kept here
// as the reference: e recomputed per element, branch-form zero floor.
func serialBestResponse(g *Game, n int, price float64) float64 {
	v := g.VMUs[n]
	b := v.Alpha/price - v.DataSize/g.SpectralEfficiency()
	if b < 0 {
		return 0
	}
	return b
}

func TestBestResponsesBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var s EvalScratch
	for trial := 0; trial < 40; trial++ {
		g := randomBatchGame(rng, 1+rng.Intn(64))
		price := g.Cost + rng.Float64()*(g.PMax-g.Cost)
		batch := g.BestResponsesBatchInto(&s, make([]float64, g.N()), price)
		for n := range g.VMUs {
			want := serialBestResponse(g, n, price)
			if math.Float64bits(batch[n]) != math.Float64bits(want) {
				t.Fatalf("trial %d: batched b[%d] = %v, want %v (bit mismatch)", trial, n, batch[n], want)
			}
		}
		// The loop form must agree too (it hoists e out of the loop).
		loop := g.BestResponsesInto(make([]float64, g.N()), price)
		for n := range loop {
			if math.Float64bits(loop[n]) != math.Float64bits(batch[n]) {
				t.Fatalf("trial %d: loop b[%d] = %v, batch %v", trial, n, loop[n], batch[n])
			}
		}
	}
}

func TestGatheredObjectivesBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var s EvalScratch
	for trial := 0; trial < 40; trial++ {
		g := randomBatchGame(rng, 1+rng.Intn(64))
		s.gather(g)
		for probe := 0; probe < 10; probe++ {
			p := g.Cost + rng.Float64()*(g.PMax-g.Cost)
			if got, want := g.mspUtilityGathered(&s, p), g.MSPUtilityAtPrice(p); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("trial %d: mspUtilityGathered(%v) = %v, want %v", trial, p, got, want)
			}
			if got, want := g.totalDemandGathered(&s, p), g.TotalDemand(p); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("trial %d: totalDemandGathered(%v) = %v, want %v", trial, p, got, want)
			}
		}
	}
}

// TestSolveMatchesSerialReference re-solves randomized games with a
// hand-rolled copy of the pre-batching SolveInto (per-follower forms
// everywhere) and requires bit-identical equilibria.
func TestSolveMatchesSerialReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		g := randomBatchGame(rng, 1+rng.Intn(32))
		got := g.Solve()
		want := solveSerialReference(g)
		if math.Float64bits(got.Price) != math.Float64bits(want.Price) {
			t.Fatalf("trial %d: price %v, want %v", trial, got.Price, want.Price)
		}
		if got.CapacityBound != want.CapacityBound {
			t.Fatalf("trial %d: capacityBound %v, want %v", trial, got.CapacityBound, want.CapacityBound)
		}
		for n := range want.Demands {
			if math.Float64bits(got.Demands[n]) != math.Float64bits(want.Demands[n]) {
				t.Fatalf("trial %d: demand[%d] %v, want %v", trial, n, got.Demands[n], want.Demands[n])
			}
		}
		if math.Float64bits(got.MSPUtility) != math.Float64bits(want.MSPUtility) {
			t.Fatalf("trial %d: msp utility %v, want %v", trial, got.MSPUtility, want.MSPUtility)
		}
	}
}

func TestBatchPanicsOnNonPositivePrice(t *testing.T) {
	g := DefaultGame()
	var s EvalScratch
	for _, price := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BestResponsesBatchInto(%g) did not panic", price)
				}
			}()
			g.BestResponsesBatchInto(&s, make([]float64, g.N()), price)
		}()
	}
}
