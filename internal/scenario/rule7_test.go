package scenario

import (
	"os"
	"runtime"
	"testing"

	"vtmig/internal/sim"
)

// This file is the scenario-level arm of determinism contract rule 7:
// every committed scenario, compiled with any region count under any
// GOMAXPROCS, must serialize to a byte-identical golden report. The
// shard count is a host-side throughput knob, never a workload
// dimension.

// runShardedScenario compiles one scenario with the given region count
// and returns its serialized report. metro-10k is trimmed to a short
// slice — the full fleet stays covered by the golden matrix; here it
// would multiply the table's cost for no extra order-sensitivity.
func runShardedScenario(t *testing.T, s *Scenario, regions int) string {
	t.Helper()
	trimmed := *s
	if trimmed.Name == "metro-10k" {
		trimmed.DurationS = 20
		trimmed.Vehicles = 2000
	}
	trimmed.Shards = regions
	rep := runScenarioReport(t, &trimmed, sim.PricerSpec{Name: "random"})
	return sim.FormatGoldenReport(rep)
}

func TestScenarioReportsShardIndependent(t *testing.T) {
	for _, path := range committedScenarios(t) {
		s, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		t.Run(s.Name, func(t *testing.T) {
			ref := runShardedScenario(t, s, 0)
			for _, regions := range []int{1, 3} {
				for _, procs := range []int{1, 4} {
					prev := runtime.GOMAXPROCS(procs)
					got := runShardedScenario(t, s, regions)
					runtime.GOMAXPROCS(prev)
					if got != ref {
						t.Errorf("regions=%d gomaxprocs=%d diverged from serial:\n%s",
							regions, procs, firstDiffLine(ref, got))
					}
				}
			}
		})
	}
}

// TestScenarioShardsFieldCompiles pins the schema plumbing: the shards
// and discard_migration_records fields reach the compiled sim.Config.
func TestScenarioShardsFieldCompiles(t *testing.T) {
	s := &Scenario{Name: "t", Shards: 4, DiscardMigrationRecords: true}
	cfg, err := s.CompileConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Shards.Regions != 4 {
		t.Errorf("Shards.Regions = %d, want 4", cfg.Shards.Regions)
	}
	if !cfg.DiscardMigrationRecords {
		t.Error("DiscardMigrationRecords not compiled")
	}
	s.Shards = -1
	if _, err := s.CompileConfig(); err == nil {
		t.Error("negative shards compiled without error")
	}
}

// TestScenarioShardsRejectedInJSONOnlyWhenNegative exercises the strict
// loaders on the new fields for both formats.
func TestScenarioShardsLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for name, src := range map[string]string{
		"a.json": `{"name": "a", "shards": 3, "discard_migration_records": true}`,
		"b.toml": "name = \"b\"\nshards = 3\ndiscard_migration_records = true\n",
	} {
		path := dir + "/" + name
		if err := writeFile(path, src); err != nil {
			t.Fatal(err)
		}
		s, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Shards != 3 || !s.DiscardMigrationRecords {
			t.Errorf("%s: loaded shards=%d discard=%v, want 3/true", name, s.Shards, s.DiscardMigrationRecords)
		}
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
