package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements the minimal TOML subset the scenario loader
// accepts, with no third-party dependency: comments, bare/dotted keys,
// [table] and [[array-of-table]] headers, and single-line values —
// basic strings, integers, floats, booleans, arrays, and inline tables.
// The parser produces a map[string]any that the loader re-encodes as
// JSON and decodes strictly into the Scenario schema, so TOML and JSON
// scenarios share one validation path and unknown TOML keys are rejected
// exactly like unknown JSON fields.
//
// Deliberately unsupported (a descriptive error, never a panic):
// multi-line strings and arrays, literal ('...') strings, dates,
// underscored numbers, and quoted keys.

// parseTOML parses the subset into nested maps/slices.
func parseTOML(src string) (map[string]any, error) {
	root := make(map[string]any)
	cur := root
	for ln, raw := range strings.Split(src, "\n") {
		line, err := stripTOMLComment(raw)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		line = strings.TrimSpace(line)
		switch {
		case line == "":
		case strings.HasPrefix(line, "[["):
			if !strings.HasSuffix(line, "]]") {
				return nil, fmt.Errorf("line %d: unterminated [[table]] header", ln+1)
			}
			path, err := parseTOMLKeyPath(line[2 : len(line)-2])
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", ln+1, err)
			}
			if cur, err = tomlAppendTable(root, path); err != nil {
				return nil, fmt.Errorf("line %d: %w", ln+1, err)
			}
		case strings.HasPrefix(line, "["):
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("line %d: unterminated [table] header", ln+1)
			}
			path, err := parseTOMLKeyPath(line[1 : len(line)-1])
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", ln+1, err)
			}
			if cur, err = tomlMakeTable(root, path); err != nil {
				return nil, fmt.Errorf("line %d: %w", ln+1, err)
			}
		default:
			if err := parseTOMLAssignment(cur, line); err != nil {
				return nil, fmt.Errorf("line %d: %w", ln+1, err)
			}
		}
	}
	return root, nil
}

// stripTOMLComment removes a trailing # comment, respecting strings.
func stripTOMLComment(line string) (string, error) {
	inString := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\\':
			if inString {
				i++ // skip the escaped character
			}
		case '"':
			inString = !inString
		case '#':
			if !inString {
				return line[:i], nil
			}
		}
	}
	if inString {
		return "", fmt.Errorf("unterminated string")
	}
	return line, nil
}

// parseTOMLKeyPath splits a (possibly dotted) bare-key path.
func parseTOMLKeyPath(s string) ([]string, error) {
	parts := strings.Split(strings.TrimSpace(s), ".")
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("empty key segment in %q", s)
		}
		for _, r := range p {
			if !(r == '_' || r == '-' || r >= '0' && r <= '9' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z') {
				return nil, fmt.Errorf("unsupported key %q (bare keys only)", p)
			}
		}
		parts[i] = p
	}
	return parts, nil
}

// tomlDescend walks/creates the intermediate tables of a key path and
// returns the table the final segment lives in.
func tomlDescend(root map[string]any, path []string) (map[string]any, error) {
	cur := root
	for _, seg := range path[:len(path)-1] {
		switch v := cur[seg].(type) {
		case nil:
			next := make(map[string]any)
			cur[seg] = next
			cur = next
		case map[string]any:
			cur = v
		case []any:
			// Dotted access into an array-of-tables targets its last entry.
			if len(v) == 0 {
				return nil, fmt.Errorf("key %q is an empty table array", seg)
			}
			last, ok := v[len(v)-1].(map[string]any)
			if !ok {
				return nil, fmt.Errorf("key %q is not a table array", seg)
			}
			cur = last
		default:
			return nil, fmt.Errorf("key %q is a value, not a table", seg)
		}
	}
	return cur, nil
}

// tomlMakeTable creates (or re-enters) the table a [header] names.
func tomlMakeTable(root map[string]any, path []string) (map[string]any, error) {
	parent, err := tomlDescend(root, path)
	if err != nil {
		return nil, err
	}
	last := path[len(path)-1]
	switch v := parent[last].(type) {
	case nil:
		t := make(map[string]any)
		parent[last] = t
		return t, nil
	case map[string]any:
		return v, nil
	default:
		return nil, fmt.Errorf("key %q already holds a value", last)
	}
}

// tomlAppendTable appends a fresh table to the array a [[header]] names.
func tomlAppendTable(root map[string]any, path []string) (map[string]any, error) {
	parent, err := tomlDescend(root, path)
	if err != nil {
		return nil, err
	}
	last := path[len(path)-1]
	t := make(map[string]any)
	switch v := parent[last].(type) {
	case nil:
		parent[last] = []any{t}
	case []any:
		parent[last] = append(v, t)
	default:
		return nil, fmt.Errorf("key %q already holds a non-array value", last)
	}
	return t, nil
}

// parseTOMLAssignment parses one `key = value` line into the table.
func parseTOMLAssignment(table map[string]any, line string) error {
	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return fmt.Errorf("expected key = value, got %q", line)
	}
	path, err := parseTOMLKeyPath(line[:eq])
	if err != nil {
		return err
	}
	val, rest, err := parseTOMLValue(line[eq+1:])
	if err != nil {
		return err
	}
	if strings.TrimSpace(rest) != "" {
		return fmt.Errorf("trailing content %q after value", strings.TrimSpace(rest))
	}
	parent, err := tomlDescend(table, path)
	if err != nil {
		return err
	}
	last := path[len(path)-1]
	if _, dup := parent[last]; dup {
		return fmt.Errorf("duplicate key %q", last)
	}
	parent[last] = val
	return nil
}

// parseTOMLValue parses one value from the front of s and returns the
// unconsumed remainder.
func parseTOMLValue(s string) (any, string, error) {
	s = strings.TrimLeft(s, " \t")
	if s == "" {
		return nil, "", fmt.Errorf("missing value")
	}
	switch s[0] {
	case '"':
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, "", fmt.Errorf("unterminated string")
		}
		str, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, "", fmt.Errorf("bad string %s: %v", s[:end+1], err)
		}
		return str, s[end+1:], nil
	case '[':
		var arr []any
		rest := strings.TrimLeft(s[1:], " \t")
		if strings.HasPrefix(rest, "]") {
			return []any{}, rest[1:], nil
		}
		for {
			var v any
			var err error
			v, rest, err = parseTOMLValue(rest)
			if err != nil {
				return nil, "", err
			}
			arr = append(arr, v)
			rest = strings.TrimLeft(rest, " \t")
			if strings.HasPrefix(rest, ",") {
				rest = strings.TrimLeft(rest[1:], " \t")
				if strings.HasPrefix(rest, "]") { // trailing comma
					return arr, rest[1:], nil
				}
				continue
			}
			if strings.HasPrefix(rest, "]") {
				return arr, rest[1:], nil
			}
			return nil, "", fmt.Errorf("expected , or ] in array, got %q", rest)
		}
	case '{':
		t := make(map[string]any)
		rest := strings.TrimLeft(s[1:], " \t")
		if strings.HasPrefix(rest, "}") {
			return t, rest[1:], nil
		}
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return nil, "", fmt.Errorf("expected key = value in inline table, got %q", rest)
			}
			path, err := parseTOMLKeyPath(rest[:eq])
			if err != nil {
				return nil, "", err
			}
			if len(path) != 1 {
				return nil, "", fmt.Errorf("dotted keys are not supported in inline tables")
			}
			var v any
			v, rest, err = parseTOMLValue(rest[eq+1:])
			if err != nil {
				return nil, "", err
			}
			if _, dup := t[path[0]]; dup {
				return nil, "", fmt.Errorf("duplicate inline-table key %q", path[0])
			}
			t[path[0]] = v
			rest = strings.TrimLeft(rest, " \t")
			if strings.HasPrefix(rest, ",") {
				rest = strings.TrimLeft(rest[1:], " \t")
				continue
			}
			if strings.HasPrefix(rest, "}") {
				return t, rest[1:], nil
			}
			return nil, "", fmt.Errorf("expected , or } in inline table, got %q", rest)
		}
	}
	// Bare token: boolean or number, ending at a delimiter.
	end := len(s)
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == ',' || c == ']' || c == '}' || c == ' ' || c == '\t' {
			end = i
			break
		}
	}
	tok := s[:end]
	rest := s[end:]
	switch tok {
	case "true":
		return true, rest, nil
	case "false":
		return false, rest, nil
	}
	// ParseFloat accepts Go-style underscored digits; the documented
	// subset does not, so screen them out before number parsing.
	if !strings.ContainsRune(tok, '_') {
		if i, err := strconv.ParseInt(tok, 10, 64); err == nil {
			return i, rest, nil
		}
		if f, err := strconv.ParseFloat(tok, 64); err == nil {
			return f, rest, nil
		}
	}
	return nil, "", fmt.Errorf("unsupported value %q (the loader accepts strings, integers, floats, booleans, arrays, and inline tables)", tok)
}
