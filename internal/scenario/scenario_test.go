package scenario

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"vtmig/internal/sim"
	"vtmig/internal/stackelberg"
)

// scenariosDir is the committed scenario matrix pinned by the goldens.
const scenariosDir = "../../testdata/scenarios"

// committedScenarios returns the sorted paths of the committed matrix.
func committedScenarios(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(scenariosDir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 6 {
		t.Fatalf("expected at least 6 committed scenarios, found %d: %v", len(files), files)
	}
	return files
}

func TestLoadCommittedScenarios(t *testing.T) {
	seen := map[string]bool{}
	for _, path := range committedScenarios(t) {
		s, err := Load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		base := filepath.Base(path)
		stem := strings.TrimSuffix(base, filepath.Ext(base))
		if s.Name != stem {
			t.Errorf("%s: scenario name %q should match the file stem %q", path, s.Name, stem)
		}
		if seen[s.Name] {
			t.Errorf("%s: duplicate scenario name %q", path, s.Name)
		}
		seen[s.Name] = true
		if _, err := s.CompileConfig(); err != nil {
			t.Errorf("%s: compile: %v", path, err)
		}
	}
	// The matrix must cover every workload dimension at least once.
	for _, want := range []string{"static-highway", "urban-grid", "churn", "outages", "demand-cycle", "nonstationary"} {
		if !seen[want] {
			t.Errorf("committed matrix is missing scenario %q", want)
		}
	}
}

func TestLoadRejectsUnknownExtension(t *testing.T) {
	if _, err := Load("nope.yaml"); err == nil || !strings.Contains(err.Error(), "unsupported extension") {
		t.Fatalf("want unsupported-extension error, got %v", err)
	}
}

func TestParseJSONStrict(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown field", `{"name": "x", "vehicels": 4}`, "vehicels"},
		{"trailing content", `{"name": "x"} {"name": "y"}`, "trailing content"},
		{"malformed", `{"name": `, "parsing JSON"},
		{"wrong type", `{"name": "x", "vehicles": "six"}`, "parsing JSON"},
		{"missing name", `{"seed": 7}`, "Name must be set"},
		{"unknown pricer field in spec", `{"name": "x", "pricer": {"name": "oracle", "prize": 3}}`, "prize"},
		{"bad mobility kind", `{"name": "x", "mobility": {"kind": "teleport"}}`, "teleport"},
		{"negative outage count", `{"name": "x", "outage_gen": {"count": -1, "mean_duration_s": 5}}`, "must not be negative"},
		{"outage gen zero duration", `{"name": "x", "outage_gen": {"count": 2}}`, "MeanDurationS"},
		{"invalid compiled config", `{"name": "x", "vehicles": -4}`, `scenario "x"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src), FormatJSON)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}

func TestParseTOMLSharesJSONSchema(t *testing.T) {
	// The same scenario in both formats must decode to the same value.
	jsonSrc := `{
		"name": "twin", "seed": 9, "duration_s": 60, "vehicles": 4,
		"churn": {"arrival_rate_per_s": 0.1, "mean_dwell_s": 80},
		"outages": [{"rsu": 1, "start_s": 5, "end_s": 20}],
		"pricer": {"name": "fixed", "price": 25}
	}`
	tomlSrc := `
name = "twin"
seed = 9
duration_s = 60.0
vehicles = 4

[churn]
arrival_rate_per_s = 0.1
mean_dwell_s = 80.0

[[outages]]
rsu = 1
start_s = 5.0
end_s = 20.0

[pricer]
name = "fixed"
price = 25.0
`
	fromJSON, err := Parse([]byte(jsonSrc), FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	fromTOML, err := Parse([]byte(tomlSrc), FormatTOML)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromJSON, fromTOML) {
		t.Fatalf("JSON and TOML decode diverge:\n json: %+v\n toml: %+v", fromJSON, fromTOML)
	}
}

func TestParseTOMLRejectsUnknownField(t *testing.T) {
	src := "name = \"x\"\nvehicels = 4\n"
	if _, err := Parse([]byte(src), FormatTOML); err == nil || !strings.Contains(err.Error(), "vehicels") {
		t.Fatalf("want unknown-field error naming vehicels, got %v", err)
	}
}

func TestParseUnknownFormat(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"x"}`), "yaml"); err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("want unknown-format error, got %v", err)
	}
}

func TestCompileConfigDefaults(t *testing.T) {
	s := &Scenario{Name: "bare"}
	cfg, err := s.CompileConfig()
	if err != nil {
		t.Fatal(err)
	}
	def := sim.DefaultConfig()
	if cfg.Pricer != nil {
		t.Fatalf("CompileConfig must leave Pricer nil, got %T", cfg.Pricer)
	}
	cfg.Pricer = def.Pricer
	if !reflect.DeepEqual(cfg, def) {
		t.Fatalf("bare scenario should compile to the default config:\n got:  %+v\n want: %+v", cfg, def)
	}
}

func TestCompileConfigOverrides(t *testing.T) {
	s := &Scenario{
		Name: "grid", Seed: 77, DurationS: 90, Vehicles: 9,
		SpeedMinMps: 10, SpeedMaxMps: 15, FailureRate: 0.25,
		Mobility: &Mobility{Kind: KindGrid, Rows: 3, Cols: 4, SpacingM: 400, RadiusM: 300, TurnSeed: 5},
		Classes:  []VehicleClass{{Name: "bus", Weight: 1, SpeedMinMps: 8, SpeedMaxMps: 12}},
		Churn:    &Churn{ArrivalRatePerS: 0.1, MeanDwellS: 60, MaxVehicles: 12, Seed: 3},
		Outages:  []Outage{{RSU: 0, StartS: 10, EndS: 30}},
		Demand:   &Demand{PeriodS: 60, DayFraction: 0.5, NightSpeedFactor: 0.5},
	}
	cfg, err := s.CompileConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 77 || cfg.DurationS != 90 || cfg.Vehicles != 9 {
		t.Errorf("top-level overrides not applied: %+v", cfg)
	}
	if cfg.Mobility != sim.MobilityGrid || cfg.Grid.Rows != 3 || cfg.Grid.Cols != 4 || cfg.Grid.SpacingM != 400 || cfg.Grid.TurnSeed != 5 {
		t.Errorf("grid mapping wrong: %+v", cfg.Grid)
	}
	if cfg.RSURadiusM != 300 {
		t.Errorf("RSURadiusM = %g, want 300", cfg.RSURadiusM)
	}
	if len(cfg.Classes) != 1 || cfg.Classes[0].Name != "bus" || cfg.Classes[0].SpeedMinMps != 8 || cfg.Classes[0].SpeedMaxMps != 12 {
		t.Errorf("classes mapping wrong: %+v", cfg.Classes)
	}
	if cfg.Churn.ArrivalRatePerS != 0.1 || cfg.Churn.Seed != 3 {
		t.Errorf("churn mapping wrong: %+v", cfg.Churn)
	}
	if len(cfg.Outages) != 1 || cfg.Outages[0] != (sim.OutageWindow{RSU: 0, StartS: 10, EndS: 30}) {
		t.Errorf("outage mapping wrong: %+v", cfg.Outages)
	}
	// An unset night sensing factor must compile to the identity.
	if cfg.Demand.NightSpeedFactor != 0.5 || cfg.Demand.NightSensingFactor != 1 {
		t.Errorf("demand mapping wrong: %+v", cfg.Demand)
	}
}

func TestOutageGenDeterministic(t *testing.T) {
	base := Scenario{
		Name: "gen", Seed: 123, DurationS: 200,
		OutageGen: &OutageGen{Count: 4, MeanDurationS: 30},
	}
	cfg1, err := base.CompileConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := base.CompileConfig()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg1.Outages, cfg2.Outages) {
		t.Fatalf("same scenario compiled twice produced different outages:\n %v\n %v", cfg1.Outages, cfg2.Outages)
	}
	if len(cfg1.Outages) != 4 {
		t.Fatalf("want 4 generated windows, got %d", len(cfg1.Outages))
	}

	other := base
	other.Seed = 124
	cfg3, err := other.CompileConfig()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(cfg1.Outages, cfg3.Outages) {
		t.Fatalf("different scenario seeds produced identical generated outages: %v", cfg1.Outages)
	}

	// A dedicated generator seed isolates the windows from the scenario seed.
	pinnedA, pinnedB := base, other
	pinnedA.OutageGen = &OutageGen{Count: 4, MeanDurationS: 30, Seed: 999}
	pinnedB.OutageGen = &OutageGen{Count: 4, MeanDurationS: 30, Seed: 999}
	cfgA, err := pinnedA.CompileConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfgB, err := pinnedB.CompileConfig()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfgA.Outages, cfgB.Outages) {
		t.Fatalf("pinned OutageGen.Seed should make windows independent of the scenario seed:\n %v\n %v", cfgA.Outages, cfgB.Outages)
	}
}

func TestOutageGenWindowsObservable(t *testing.T) {
	// A vanishing mean duration must clamp every window up to one time
	// step, never produce invisible sub-step outages.
	s := Scenario{
		Name: "tiny", Seed: 5, DurationS: 100,
		OutageGen: &OutageGen{Count: 5, MeanDurationS: 1e-9},
	}
	cfg, err := s.CompileConfig()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range cfg.Outages {
		if dur := w.EndS - w.StartS; dur < cfg.TimeStepS {
			t.Errorf("window %+v is shorter than one time step (%g s)", w, cfg.TimeStepS)
		}
	}
}

func TestOutageGenAppendsToExplicitWindows(t *testing.T) {
	s := Scenario{
		Name: "mixed", Seed: 7, DurationS: 100,
		Outages:   []Outage{{RSU: 1, StartS: 2, EndS: 8}},
		OutageGen: &OutageGen{Count: 2, MeanDurationS: 10},
	}
	cfg, err := s.CompileConfig()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Outages) != 3 {
		t.Fatalf("want 1 explicit + 2 generated windows, got %d: %v", len(cfg.Outages), cfg.Outages)
	}
	if cfg.Outages[0] != (sim.OutageWindow{RSU: 1, StartS: 2, EndS: 8}) {
		t.Fatalf("explicit window must come first: %v", cfg.Outages)
	}
}

func TestBuildPricerDefaults(t *testing.T) {
	// An empty pricer spec selects the oracle.
	s := Scenario{Name: "plain", Seed: 42}
	p, err := s.BuildPricer(sim.PricerBuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p == nil {
		t.Fatal("nil pricer")
	}

	// A seedless random pricer adopts the scenario seed: it must price
	// identically to one seeded explicitly.
	s.Pricer = sim.PricerSpec{Name: "random"}
	adopted, err := s.BuildPricer(sim.PricerBuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := sim.NewPricerFromSpec(sim.PricerSpec{Name: "random", Seed: 42}, sim.PricerBuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g := stackelberg.DefaultGame()
	for i := 0; i < 5; i++ {
		a, b := adopted.PriceFor(g), explicit.PriceFor(g)
		if a != b {
			t.Fatalf("draw %d: adopted seed %g != explicit seed %g", i, a, b)
		}
	}
}

func TestCompileUnknownPricer(t *testing.T) {
	s := Scenario{Name: "bad", Pricer: sim.PricerSpec{Name: "nonsense"}}
	if _, err := s.Compile(sim.PricerBuildOptions{}); err == nil || !strings.Contains(err.Error(), "nonsense") {
		t.Fatalf("want unknown-pricer error, got %v", err)
	}
}

func TestScenarioValidateNeedsName(t *testing.T) {
	s := Scenario{}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "Name") {
		t.Fatalf("want missing-name error, got %v", err)
	}
}
