package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"vtmig/internal/sim"
)

// The golden matrix pins the exact numeric sim.Report of every committed
// scenario under every analytic pricer: 6 scenarios × {oracle, fixed,
// random} = 18 files. This is the scenario-level arm of the determinism
// contract — a committed scenario file is a reproducible artifact, and
// any numeric drift in the loader, the generator expansion, or the new
// workload dimensions (grid, churn, outages, demand) shows up as a
// golden diff. Regenerate after an intentional change with
//
//	go test ./internal/scenario -run Golden -update
//
// (or `make golden`, which regenerates all golden suites).
var updateGolden = flag.Bool("update", false, "rewrite the golden files instead of comparing")

// matrixPricers are the pricer specs each committed scenario is run
// under. Only analytic pricers: training in a golden matrix would make
// `make golden` minutes-slow for no extra coverage (the learning pricers
// have their own goldens in internal/sim and internal/experiments).
var matrixPricers = []struct {
	label string
	spec  sim.PricerSpec
}{
	{"oracle", sim.PricerSpec{Name: "oracle"}},
	{"fixed", sim.PricerSpec{Name: "fixed", Price: 25}},
	{"random", sim.PricerSpec{Name: "random"}},
}

// runScenarioReport compiles and runs one (scenario, pricer spec) cell.
func runScenarioReport(t *testing.T, s *Scenario, spec sim.PricerSpec) sim.Report {
	t.Helper()
	withSpec := *s
	withSpec.Pricer = spec
	cfg, err := withSpec.Compile(sim.PricerBuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sm.Run()
}

func TestGoldenScenarioMatrix(t *testing.T) {
	for _, path := range committedScenarios(t) {
		s, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, mp := range matrixPricers {
			name := "report_" + s.Name + "_" + mp.label + "_golden.txt"
			t.Run(s.Name+"/"+mp.label, func(t *testing.T) {
				got := sim.FormatGoldenReport(runScenarioReport(t, s, mp.spec))
				golden := filepath.Join("testdata", name)
				if *updateGolden {
					if err := os.MkdirAll("testdata", 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				wantBytes, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("missing golden file %s (run with -update to record): %v", golden, err)
				}
				if err := sim.DiffGoldenReports(string(wantBytes), got, sim.GoldenTol); err != nil {
					t.Errorf("%s: %v", name, err)
				}
			})
		}
	}
}

// TestScenarioReportsGOMAXPROCSIndependent runs every committed scenario
// at GOMAXPROCS 1 and 4 and demands byte-identical serialized reports:
// scenario workloads obey determinism rule 1 exactly like the base
// simulator.
func TestScenarioReportsGOMAXPROCSIndependent(t *testing.T) {
	for _, path := range committedScenarios(t) {
		s, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		t.Run(s.Name, func(t *testing.T) {
			reports := make([]string, 2)
			for i, procs := range []int{1, 4} {
				prev := runtime.GOMAXPROCS(procs)
				rep := runScenarioReport(t, s, sim.PricerSpec{Name: "random"})
				runtime.GOMAXPROCS(prev)
				reports[i] = sim.FormatGoldenReport(rep)
			}
			if reports[0] != reports[1] {
				t.Errorf("report differs between GOMAXPROCS 1 and 4:\n%s", firstDiffLine(reports[0], reports[1]))
			}
		})
	}
}

// firstDiffLine locates the first differing line of two reports for a
// readable failure message.
func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return "line " + al[i] + "\n  vs " + bl[i]
		}
	}
	return "reports differ in length"
}
