package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseTOMLSubset(t *testing.T) {
	src := `
# top comment
title = "vt migration"   # trailing comment
count = 42
ratio = 0.75
neg = -3
on = true
off = false
empty = []
nums = [1, 2, 3]
mixed = ["a", 2.5, true]
trailing = [1, 2,]
inline = {x = 1, y = "two"}
dotted.key.path = 7

[server]
host = "rsu-0"
port = 8080

[server.limits]
rps = 100

[[fleet]]
name = "sedan"

[[fleet]]
name = "truck"
fleet.note = "dotted into last entry"
`
	got, err := parseTOML(src)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"title":    "vt migration",
		"count":    int64(42),
		"ratio":    0.75,
		"neg":      int64(-3),
		"on":       true,
		"off":      false,
		"empty":    []any{},
		"nums":     []any{int64(1), int64(2), int64(3)},
		"mixed":    []any{"a", 2.5, true},
		"trailing": []any{int64(1), int64(2)},
		"inline":   map[string]any{"x": int64(1), "y": "two"},
		"dotted":   map[string]any{"key": map[string]any{"path": int64(7)}},
		"server": map[string]any{
			"host":   "rsu-0",
			"port":   int64(8080),
			"limits": map[string]any{"rps": int64(100)},
		},
		"fleet": []any{
			map[string]any{"name": "sedan"},
			map[string]any{"name": "truck", "fleet": map[string]any{"note": "dotted into last entry"}},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parse mismatch:\n got:  %#v\n want: %#v", got, want)
	}
}

func TestParseTOMLStringEscapes(t *testing.T) {
	got, err := parseTOML(`s = "a \"quoted\" # not-a-comment \n tab\t"` + "\n")
	if err != nil {
		t.Fatal(err)
	}
	if want := "a \"quoted\" # not-a-comment \n tab\t"; got["s"] != want {
		t.Fatalf("got %q, want %q", got["s"], want)
	}
}

func TestParseTOMLErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"no equals", "just a key\n", "expected key = value"},
		{"duplicate key", "a = 1\na = 2\n", "duplicate key"},
		{"duplicate inline key", "t = {a = 1, a = 2}\n", "duplicate inline-table key"},
		{"unterminated string", `s = "never ends` + "\n", "unterminated string"},
		{"unterminated table header", "[server\n", "unterminated [table] header"},
		{"unterminated array header", "[[fleet]\n", "unterminated [[table]] header"},
		{"quoted key", `"key" = 1` + "\n", "bare keys only"},
		{"empty key segment", "a..b = 1\n", "empty key segment"},
		{"trailing content", "a = 1 2\n", "trailing content"},
		{"missing value", "a =\n", "missing value"},
		{"literal string", "a = 'single'\n", "unsupported value"},
		{"date", "a = 1979-05-27\n", "unsupported value"},
		{"underscored number", "a = 1_000\n", "unsupported value"},
		{"bad array", "a = [1 2]\n", "expected , or ]"},
		{"bad inline table", "a = {x = 1 y = 2}\n", "expected , or }"},
		{"value then table", "a = 1\n[a]\n", "already holds a value"},
		{"value then array table", "a = 1\n[[a]]\n", "already holds a non-array value"},
		{"descend through value", "a = 1\na.b = 2\n", "is a value, not a table"},
		{"dotted inline key", "t = {a.b = 1}\n", "dotted keys are not supported"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseTOML(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
			if !strings.Contains(err.Error(), "line ") {
				t.Fatalf("error should carry a line number: %v", err)
			}
		})
	}
}
