// Package scenario provides the declarative workload layer of the
// simulator: a scenario is a named, self-contained description of one
// simulation — road world, fleet, churn, outages, demand cycle, and the
// MSP pricer — loadable from strict JSON or TOML files and compiled into
// a validated sim.Config.
//
// Scenarios are deterministic artifacts: compiling the same scenario
// (schema + seed) always yields the same configuration, including the
// expansion of generator blocks like OutageGen, whose windows are drawn
// from a dedicated splitmix64-derived stream. Committed scenario files
// under testdata/scenarios/ are pinned by per-pricer golden reports, the
// same convention as the simulator's own goldens (`make golden`).
package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"vtmig/internal/mathx"
	"vtmig/internal/sim"
)

// Mobility kinds.
const (
	KindHighway = "highway"
	KindGrid    = "grid"
)

// Mobility selects and parameterizes the road world. Zero-valued fields
// adopt the simulator defaults (8000 m highway, 8 RSUs, 500 m radius).
type Mobility struct {
	// Kind is the world type: "highway" (circular road) or "grid"
	// (Manhattan street grid, one RSU per intersection).
	Kind string `json:"kind"`
	// LengthM is the highway circumference in meters (highway only).
	LengthM float64 `json:"length_m,omitempty"`
	// RSUs is the RSU count (highway only; the grid derives rows×cols).
	RSUs int `json:"rsus,omitempty"`
	// RadiusM is the RSU coverage radius in meters (both kinds).
	RadiusM float64 `json:"radius_m,omitempty"`
	// Rows and Cols are the grid's street counts (grid only, ≥ 2).
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// SpacingM is the grid's intersection spacing in meters (grid only).
	SpacingM float64 `json:"spacing_m,omitempty"`
	// TurnSeed seeds the per-vehicle turn streams (grid only; 0 adopts
	// the scenario seed).
	TurnSeed int64 `json:"turn_seed,omitempty"`
}

// VehicleClass is one heterogeneous vehicle population; zero-valued
// range fields adopt the scenario's top-level ranges (see
// sim.VehicleClass).
type VehicleClass struct {
	Name           string  `json:"name"`
	Weight         float64 `json:"weight"`
	SpeedMinMps    float64 `json:"speed_min_mps,omitempty"`
	SpeedMaxMps    float64 `json:"speed_max_mps,omitempty"`
	AlphaMin       float64 `json:"alpha_min,omitempty"`
	AlphaMax       float64 `json:"alpha_max,omitempty"`
	VTMemoryMinMB  float64 `json:"vt_memory_min_mb,omitempty"`
	VTMemoryMaxMB  float64 `json:"vt_memory_max_mb,omitempty"`
	SensingPeriodS float64 `json:"sensing_period_s,omitempty"`
}

// Churn configures Poisson vehicle arrivals and exponential-dwell
// departures (see sim.ChurnConfig).
type Churn struct {
	ArrivalRatePerS float64 `json:"arrival_rate_per_s"`
	MeanDwellS      float64 `json:"mean_dwell_s,omitempty"`
	MaxVehicles     int     `json:"max_vehicles,omitempty"`
	Seed            int64   `json:"seed,omitempty"`
}

// Outage is one scheduled RSU downtime window.
type Outage struct {
	RSU    int     `json:"rsu"`
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`
}

// OutageGen declaratively generates outage windows instead of (or in
// addition to) listing them: Count windows with exponentially
// distributed durations of mean MeanDurationS, each on a uniformly drawn
// RSU at a uniformly drawn start time. Expansion is seed-deterministic —
// the windows depend only on the generator's fields, the effective RSU
// count, the scenario duration and time step, and the seed, never on
// anything else in the scenario.
type OutageGen struct {
	// Count is the number of windows to generate.
	Count int `json:"count"`
	// MeanDurationS is the mean window length in seconds.
	MeanDurationS float64 `json:"mean_duration_s"`
	// Seed isolates the generator stream; 0 adopts the scenario seed.
	// Either way the stream is splitmix64-derived, so it never overlaps
	// the simulation's own draws.
	Seed int64 `json:"seed,omitempty"`
}

// Demand configures the day/night demand cycle (see sim.DemandConfig).
// An unset night factor compiles to 1 (no effect), so a scenario states
// only the dimension it modulates.
type Demand struct {
	PeriodS            float64 `json:"period_s"`
	DayFraction        float64 `json:"day_fraction"`
	NightSpeedFactor   float64 `json:"night_speed_factor,omitempty"`
	NightSensingFactor float64 `json:"night_sensing_factor,omitempty"`
}

// Scenario is one declarative simulation description. Zero-valued fields
// adopt the sim.DefaultConfig values, so a scenario states only what it
// changes about the default 6-vehicle highway world.
type Scenario struct {
	// Name identifies the scenario (golden files, reports, logs).
	Name string `json:"name"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
	// Seed drives all simulation randomness (0 adopts the default 1).
	Seed int64 `json:"seed,omitempty"`
	// DurationS is the simulated horizon, TimeStepS the mobility step.
	DurationS float64 `json:"duration_s,omitempty"`
	TimeStepS float64 `json:"time_step_s,omitempty"`
	// Vehicles is the fleet size at t = 0.
	Vehicles int `json:"vehicles,omitempty"`
	// SpeedMinMps/SpeedMaxMps bound the per-vehicle constant speeds.
	SpeedMinMps float64 `json:"speed_min_mps,omitempty"`
	SpeedMaxMps float64 `json:"speed_max_mps,omitempty"`
	// AlphaMin/AlphaMax bound the VMU immersion coefficients.
	AlphaMin float64 `json:"alpha_min,omitempty"`
	AlphaMax float64 `json:"alpha_max,omitempty"`
	// VTMemoryMinMB/VTMemoryMaxMB bound the twins' memory footprints.
	VTMemoryMinMB float64 `json:"vt_memory_min_mb,omitempty"`
	VTMemoryMaxMB float64 `json:"vt_memory_max_mb,omitempty"`
	// SensingPeriodS/SensingDelayS model the sensing stream.
	SensingPeriodS float64 `json:"sensing_period_s,omitempty"`
	SensingDelayS  float64 `json:"sensing_delay_s,omitempty"`
	// FailureRate injects pricing-round control-plane failures.
	FailureRate float64 `json:"failure_rate,omitempty"`
	// Mobility selects the road world; nil keeps the default highway.
	Mobility *Mobility `json:"mobility,omitempty"`
	// Classes partitions spawns into heterogeneous populations.
	Classes []VehicleClass `json:"classes,omitempty"`
	// Churn enables vehicle arrivals/departures.
	Churn *Churn `json:"churn,omitempty"`
	// Outages schedules explicit RSU downtime windows; OutageGen
	// generates additional ones deterministically.
	Outages   []Outage   `json:"outages,omitempty"`
	OutageGen *OutageGen `json:"outage_gen,omitempty"`
	// Demand enables the day/night demand cycle.
	Demand *Demand `json:"demand,omitempty"`
	// Shards enables region-sharded parallel stepping with the given
	// region count (determinism contract rule 7: any value here is
	// bit-identical to 0, the serial path — it is a throughput knob, not a
	// workload dimension, and hosts may override it freely).
	Shards int `json:"shards,omitempty"`
	// DiscardMigrationRecords drops the per-migration records from the
	// report, keeping only the streaming aggregates — the fleet-scale mode
	// whose report memory stays flat in migration count.
	DiscardMigrationRecords bool `json:"discard_migration_records,omitempty"`
	// Pricer is the MSP pricing strategy (empty name: "oracle").
	Pricer sim.PricerSpec `json:"pricer,omitempty"`
}

// Validate checks the scenario: its own structural invariants plus
// everything sim.Config.Validate enforces on the compiled configuration.
// A scenario that validates compiles and constructs.
func (s *Scenario) Validate() error {
	_, err := s.CompileConfig()
	return err
}

// validateShape checks the scenario-level invariants the compiled
// sim.Config cannot express.
func (s *Scenario) validateShape() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: Name must be set")
	}
	if s.Mobility != nil {
		switch s.Mobility.Kind {
		case KindHighway, KindGrid:
		default:
			return fmt.Errorf("scenario: Mobility.Kind %q unknown (want %q or %q)", s.Mobility.Kind, KindHighway, KindGrid)
		}
	}
	if g := s.OutageGen; g != nil {
		if g.Count < 0 {
			return fmt.Errorf("scenario: OutageGen.Count %d must not be negative", g.Count)
		}
		if g.Count > 0 {
			if !(g.MeanDurationS > 0) || math.IsInf(g.MeanDurationS, 0) {
				return fmt.Errorf("scenario: OutageGen.MeanDurationS must be positive and finite, got %g", g.MeanDurationS)
			}
		}
	}
	return nil
}

// CompileConfig compiles the scenario into a validated simulator
// configuration with generator blocks expanded. The returned Config has
// no Pricer — build one from the Pricer spec (BuildPricer or
// sim.NewPricerFromSpec) or assign your own before sim.New.
//
// Compilation is pure and deterministic: the same scenario value always
// yields the same configuration, bit for bit.
func (s *Scenario) CompileConfig() (sim.Config, error) {
	if err := s.validateShape(); err != nil {
		return sim.Config{}, err
	}
	cfg := sim.DefaultConfig()
	cfg.Pricer = nil
	setF := func(dst *float64, v float64) {
		if v != 0 {
			*dst = v
		}
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	setF(&cfg.DurationS, s.DurationS)
	setF(&cfg.TimeStepS, s.TimeStepS)
	if s.Vehicles != 0 {
		cfg.Vehicles = s.Vehicles
	}
	setF(&cfg.SpeedMinMps, s.SpeedMinMps)
	setF(&cfg.SpeedMaxMps, s.SpeedMaxMps)
	setF(&cfg.AlphaMin, s.AlphaMin)
	setF(&cfg.AlphaMax, s.AlphaMax)
	setF(&cfg.VTMemoryMinMB, s.VTMemoryMinMB)
	setF(&cfg.VTMemoryMaxMB, s.VTMemoryMaxMB)
	setF(&cfg.SensingPeriodS, s.SensingPeriodS)
	setF(&cfg.SensingDelayS, s.SensingDelayS)
	setF(&cfg.PricingFailureRate, s.FailureRate)

	if m := s.Mobility; m != nil {
		switch m.Kind {
		case KindHighway:
			setF(&cfg.HighwayLengthM, m.LengthM)
			if m.RSUs != 0 {
				cfg.RSUCount = m.RSUs
			}
			setF(&cfg.RSURadiusM, m.RadiusM)
		case KindGrid:
			cfg.Mobility = sim.MobilityGrid
			cfg.RSUCount = 0
			cfg.Grid = sim.GridConfig{Rows: m.Rows, Cols: m.Cols, SpacingM: m.SpacingM, TurnSeed: m.TurnSeed}
			setF(&cfg.RSURadiusM, m.RadiusM)
		}
	}
	for _, c := range s.Classes {
		cfg.Classes = append(cfg.Classes, sim.VehicleClass{
			Name: c.Name, Weight: c.Weight,
			SpeedMinMps: c.SpeedMinMps, SpeedMaxMps: c.SpeedMaxMps,
			AlphaMin: c.AlphaMin, AlphaMax: c.AlphaMax,
			VTMemoryMinMB: c.VTMemoryMinMB, VTMemoryMaxMB: c.VTMemoryMaxMB,
			SensingPeriodS: c.SensingPeriodS,
		})
	}
	if c := s.Churn; c != nil {
		cfg.Churn = sim.ChurnConfig{
			ArrivalRatePerS: c.ArrivalRatePerS, MeanDwellS: c.MeanDwellS,
			MaxVehicles: c.MaxVehicles, Seed: c.Seed,
		}
	}
	for _, o := range s.Outages {
		cfg.Outages = append(cfg.Outages, sim.OutageWindow{RSU: o.RSU, StartS: o.StartS, EndS: o.EndS})
	}
	if g := s.OutageGen; g != nil && g.Count > 0 {
		windows, err := s.generateOutages(cfg)
		if err != nil {
			return sim.Config{}, err
		}
		cfg.Outages = append(cfg.Outages, windows...)
	}
	if d := s.Demand; d != nil {
		cfg.Demand = sim.DemandConfig{
			PeriodS: d.PeriodS, DayFraction: d.DayFraction,
			NightSpeedFactor: d.NightSpeedFactor, NightSensingFactor: d.NightSensingFactor,
		}
		if cfg.Demand.NightSpeedFactor == 0 {
			cfg.Demand.NightSpeedFactor = 1
		}
		if cfg.Demand.NightSensingFactor == 0 {
			cfg.Demand.NightSensingFactor = 1
		}
	}
	cfg.Shards.Regions = s.Shards
	cfg.DiscardMigrationRecords = s.DiscardMigrationRecords

	// Validate through a probe with a placeholder pricer: the caller
	// supplies the real one, but everything else must already be sound.
	probe := cfg
	probe.Pricer = sim.NewOraclePricer()
	if err := probe.Validate(); err != nil {
		return sim.Config{}, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	return cfg, nil
}

// outageGenStream tags the generator's splitmix64 stream so it can never
// collide with the churn stream (stream 0) derived from the same seed.
const outageGenStream = 0x0106e5

// generateOutages expands an OutageGen block. Draw order per window —
// RSU, start, duration — is part of the scenario format: reordering
// would silently change every generated scenario.
func (s *Scenario) generateOutages(cfg sim.Config) ([]sim.OutageWindow, error) {
	rsus := cfg.EffectiveRSUCount()
	if rsus < 1 {
		return nil, fmt.Errorf("scenario %q: OutageGen needs a world with RSUs", s.Name)
	}
	if !(cfg.DurationS > 0) || math.IsInf(cfg.DurationS, 0) {
		return nil, fmt.Errorf("scenario %q: OutageGen needs a positive finite duration, got %g", s.Name, cfg.DurationS)
	}
	seed := s.OutageGen.Seed
	if seed == 0 {
		seed = cfg.Seed
	}
	rng := rand.New(rand.NewSource(mathx.SplitMix64(seed, outageGenStream)))
	windows := make([]sim.OutageWindow, 0, s.OutageGen.Count)
	for i := 0; i < s.OutageGen.Count; i++ {
		rsu := rng.Intn(rsus)
		start := rng.Float64() * cfg.DurationS
		dur := rng.ExpFloat64() * s.OutageGen.MeanDurationS
		if dur < cfg.TimeStepS {
			// A sub-step window would never be observed; round it up so
			// every generated outage is visible in the simulation.
			dur = cfg.TimeStepS
		}
		windows = append(windows, sim.OutageWindow{RSU: rsu, StartS: start, EndS: start + dur})
	}
	return windows, nil
}

// BuildPricer builds the scenario's pricer spec through the sim registry.
// An empty spec name selects "oracle"; a zero opts.DefaultSeed adopts the
// scenario seed, so stochastic pricers inherit the scenario's
// determinism.
func (s *Scenario) BuildPricer(opts sim.PricerBuildOptions) (sim.Pricer, error) {
	spec := s.Pricer
	if spec.Name == "" {
		spec.Name = "oracle"
	}
	if opts.DefaultSeed == 0 {
		opts.DefaultSeed = s.Seed
		if opts.DefaultSeed == 0 {
			opts.DefaultSeed = 1
		}
	}
	return sim.NewPricerFromSpec(spec, opts)
}

// Compile compiles the scenario AND builds its pricer: the returned
// configuration is ready for sim.New. Learning pricers ("drl", "online")
// may train here; use CompileConfig when you only need the workload.
func (s *Scenario) Compile(opts sim.PricerBuildOptions) (sim.Config, error) {
	cfg, err := s.CompileConfig()
	if err != nil {
		return sim.Config{}, err
	}
	p, err := s.BuildPricer(opts)
	if err != nil {
		return sim.Config{}, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	cfg.Pricer = p
	return cfg, nil
}
