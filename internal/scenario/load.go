package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Scenario file formats.
const (
	FormatJSON = "json"
	FormatTOML = "toml"
)

// Load reads, parses, and fully validates a scenario file. The format
// follows the extension (.json or .toml); anything else is rejected.
// Loading is strict: unknown fields, malformed syntax, and invalid
// values all error — a loaded scenario always compiles.
func Load(path string) (*Scenario, error) {
	var format string
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".json":
		format = FormatJSON
	case ".toml":
		format = FormatTOML
	default:
		return nil, fmt.Errorf("scenario: %s: unsupported extension %q (want .json or .toml)", path, ext)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: reading %s: %w", path, err)
	}
	s, err := Parse(data, format)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return s, nil
}

// Parse decodes and fully validates a scenario from raw bytes in the
// given format (FormatJSON or FormatTOML). Unknown fields are rejected
// in both formats — TOML decodes through the same strict JSON schema.
func Parse(data []byte, format string) (*Scenario, error) {
	var s *Scenario
	var err error
	switch format {
	case FormatJSON:
		s, err = parseJSON(data)
	case FormatTOML:
		s, err = parseTOMLScenario(data)
	default:
		return nil, fmt.Errorf("unknown format %q (want %q or %q)", format, FormatJSON, FormatTOML)
	}
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// parseJSON strictly decodes one JSON scenario document.
func parseJSON(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("parsing JSON: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("trailing content after the scenario document")
	}
	return &s, nil
}

// parseTOMLScenario parses the TOML subset and funnels the result
// through the strict JSON schema, so both formats share one set of
// field names and one unknown-field policy.
func parseTOMLScenario(data []byte) (*Scenario, error) {
	tree, err := parseTOML(string(data))
	if err != nil {
		return nil, fmt.Errorf("parsing TOML: %w", err)
	}
	encoded, err := json.Marshal(tree)
	if err != nil {
		return nil, fmt.Errorf("re-encoding TOML: %w", err)
	}
	s, err := parseJSON(encoded)
	if err != nil {
		return nil, fmt.Errorf("TOML fields: %w", err)
	}
	return s, nil
}
