package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzScenarioParse feeds hostile bytes to both scenario decoders. The
// property under test: Parse never panics, and any input it accepts is a
// scenario that deterministically compiles — the loader's "a loaded
// scenario always compiles" contract holds even for adversarial inputs.
func FuzzScenarioParse(f *testing.F) {
	for _, path := range []string{
		"static-highway.json", "urban-grid.json", "outages.json", "nonstationary.json",
	} {
		data, err := readScenarioFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data, true)
		f.Add(data, false)
	}
	for _, path := range []string{"churn.toml", "demand-cycle.toml"} {
		data, err := readScenarioFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data, false)
		f.Add(data, true)
	}
	f.Add([]byte(`{"name": "x", "outage_gen": {"count": 100000, "mean_duration_s": 1e308}}`), true)
	f.Add([]byte("a = [[[[[\n"), false)
	f.Add([]byte("a = {b = {c = 1}}\n[a.b]\n"), false)
	f.Add([]byte(`{"name":"x","pricer":{"name":"fixed","price":1e999}}`), true)
	f.Add([]byte("name = \"x\"\nseed = 9223372036854775807\n"), false)

	f.Fuzz(func(t *testing.T, data []byte, asJSON bool) {
		format := FormatTOML
		if asJSON {
			format = FormatJSON
		}
		s, err := Parse(data, format)
		if err != nil {
			return
		}
		cfg1, err := s.CompileConfig()
		if err != nil {
			t.Fatalf("accepted scenario failed to compile: %v", err)
		}
		cfg2, err := s.CompileConfig()
		if err != nil {
			t.Fatalf("second compile failed: %v", err)
		}
		if !reflect.DeepEqual(cfg1, cfg2) {
			t.Fatalf("compile is not deterministic:\n %+v\n %+v", cfg1, cfg2)
		}
	})
}

func readScenarioFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(scenariosDir, name))
}
