package migration

import (
	"testing"
	"testing/quick"

	"vtmig/internal/mathx"
)

func spec(memory, dirty float64) VTSpec {
	return VTSpec{ConfigMB: 10, MemoryMB: memory, StateMB: 5, DirtyRateMBps: dirty}
}

func TestZeroDirtyRateSingleRound(t *testing.T) {
	res, err := Simulate(spec(100, 0), 50, DefaultConfig())
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(res.Rounds) != 1 {
		t.Fatalf("rounds = %d, want 1", len(res.Rounds))
	}
	if !mathx.AlmostEqual(res.TotalDataMB, 115, 1e-9) {
		t.Errorf("total data = %v, want 115 (no re-dirtying)", res.TotalDataMB)
	}
	if !res.Converged {
		t.Error("zero dirty rate must converge")
	}
	// Downtime is just the switch overhead (nothing left to copy).
	if !mathx.AlmostEqual(res.DowntimeS, DefaultConfig().SwitchOverheadS, 1e-9) {
		t.Errorf("downtime = %v, want %v", res.DowntimeS, DefaultConfig().SwitchOverheadS)
	}
}

func TestTotalDataGrowsWithDirtyRate(t *testing.T) {
	cfg := DefaultConfig()
	slow, err := Simulate(spec(200, 5), 50, cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	fast, err := Simulate(spec(200, 20), 50, cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if fast.TotalDataMB <= slow.TotalDataMB {
		t.Errorf("dirtier twin must move more data: %v vs %v", fast.TotalDataMB, slow.TotalDataMB)
	}
}

func TestHigherRateReducesTimeAndData(t *testing.T) {
	cfg := DefaultConfig()
	slow, err := Simulate(spec(200, 10), 25, cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	fast, err := Simulate(spec(200, 10), 100, cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if fast.TotalTimeS >= slow.TotalTimeS {
		t.Errorf("faster link must finish sooner: %v vs %v", fast.TotalTimeS, slow.TotalTimeS)
	}
	if fast.TotalDataMB > slow.TotalDataMB {
		t.Errorf("faster link must not move more data: %v vs %v", fast.TotalDataMB, slow.TotalDataMB)
	}
}

func TestDivergingMigrationCutsOver(t *testing.T) {
	// Dirty rate ≥ link rate: pre-copy cannot converge.
	res, err := Simulate(spec(100, 80), 40, DefaultConfig())
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.Converged {
		t.Error("diverging migration reported as converged")
	}
	if res.DowntimeS <= DefaultConfig().SwitchOverheadS {
		t.Error("diverging migration must pay real stop-and-copy downtime")
	}
}

func TestMaxRoundsBound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPreCopyRounds = 3
	// Dirty rate just below the link rate: each round shrinks slowly.
	res, err := Simulate(spec(1000, 45), 50, cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(res.Rounds) > 3 {
		t.Errorf("rounds = %d, want <= 3", len(res.Rounds))
	}
}

func TestClosedFormMatchesSimulation(t *testing.T) {
	// With a tiny threshold and plenty of rounds, the simulated total must
	// track the geometric series M(1-ρ^{n+1})/(1-ρ).
	cfg := Config{StopCopyThresholdMB: 1e-9, MaxPreCopyRounds: 60, SwitchOverheadS: 0}
	vt := VTSpec{MemoryMB: 100, DirtyRateMBps: 10}
	rate := 50.0
	res, err := Simulate(vt, rate, cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	rho := vt.DirtyRateMBps / rate
	want := TotalDataClosedForm(100, rho, len(res.Rounds))
	if !mathx.AlmostEqual(res.TotalDataMB, want, 1e-6) {
		t.Errorf("total data = %v, closed form %v", res.TotalDataMB, want)
	}
}

func TestClosedFormRhoOne(t *testing.T) {
	if got := TotalDataClosedForm(100, 1, 3); got != 400 {
		t.Errorf("closed form at rho=1 = %v, want 400", got)
	}
}

func TestValidationErrors(t *testing.T) {
	cfg := DefaultConfig()
	tests := []struct {
		name string
		vt   VTSpec
		rate float64
		cfg  Config
	}{
		{"zero memory", VTSpec{MemoryMB: 0}, 50, cfg},
		{"negative dirty", VTSpec{MemoryMB: 1, DirtyRateMBps: -1}, 50, cfg},
		{"zero rate", spec(100, 0), 0, cfg},
		{"bad threshold", spec(100, 0), 50, Config{StopCopyThresholdMB: 0, MaxPreCopyRounds: 5}},
		{"bad rounds", spec(100, 0), 50, Config{StopCopyThresholdMB: 1, MaxPreCopyRounds: 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Simulate(tt.vt, tt.rate, tt.cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
}

// Accounting invariants: total data ≥ footprint, downtime ≤ total time,
// per-round sum equals pre-copy total.
func TestAccountingInvariantsProperty(t *testing.T) {
	f := func(memSeed, dirtySeed, rateSeed uint8) bool {
		vt := spec(50+float64(memSeed), float64(dirtySeed%60))
		rate := 20 + float64(rateSeed)
		res, err := Simulate(vt, rate, DefaultConfig())
		if err != nil {
			return false
		}
		var preCopy float64
		for _, r := range res.Rounds {
			preCopy += r.CopiedMB
		}
		return res.TotalDataMB >= vt.BaseSizeMB()-1e-9 &&
			res.DowntimeS <= res.TotalTimeS+1e-9 &&
			mathx.AlmostEqual(preCopy+res.StopCopyMB, res.TotalDataMB, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
