// Package migration models pre-copy live migration of Vehicular Twins
// between RSUs, following the strategy referenced by the paper ([11]): the
// twin's memory is copied in iterative rounds while it keeps running and
// dirtying pages, and a final stop-and-copy round transfers the residual
// working set, incurring downtime.
//
// The model produces the total migrated data D_n that enters the AoTM and
// the Stackelberg game, and lets the simulator study how dirty rates and
// purchased bandwidth shape migration freshness.
package migration

import "fmt"

// VTSpec describes one Vehicular Twin's migratable footprint, following
// the paper's decomposition of D_n into system configuration, historical
// memory data, and real-time state.
type VTSpec struct {
	// ConfigMB is the system-configuration payload (CPU/GPU state) in MB.
	ConfigMB float64
	// MemoryMB is the historical memory data in MB (the bulk).
	MemoryMB float64
	// StateMB is the real-time VMU state payload in MB.
	StateMB float64
	// DirtyRateMBps is the rate at which the running twin dirties memory
	// during migration, in MB/s.
	DirtyRateMBps float64
}

// Validate reports whether the spec is physically meaningful.
func (v VTSpec) Validate() error {
	if v.ConfigMB < 0 || v.MemoryMB <= 0 || v.StateMB < 0 {
		return fmt.Errorf("migration: payload sizes must be positive memory and non-negative config/state, got config=%g memory=%g state=%g",
			v.ConfigMB, v.MemoryMB, v.StateMB)
	}
	if v.DirtyRateMBps < 0 {
		return fmt.Errorf("migration: dirty rate must be non-negative, got %g", v.DirtyRateMBps)
	}
	return nil
}

// BaseSizeMB returns the twin's static payload (config + memory + state).
func (v VTSpec) BaseSizeMB() float64 { return v.ConfigMB + v.MemoryMB + v.StateMB }

// Config tunes the pre-copy algorithm.
type Config struct {
	// StopCopyThresholdMB stops pre-copy once the residual dirty set is
	// at most this size; the residual moves in the stop-and-copy round.
	StopCopyThresholdMB float64
	// MaxPreCopyRounds bounds the iterative phase (protects against
	// non-converging migrations where dirty rate ≥ link rate).
	MaxPreCopyRounds int
	// SwitchOverheadS is the fixed control-plane handover time added to
	// the downtime, in seconds.
	SwitchOverheadS float64
}

// DefaultConfig returns a conventional pre-copy configuration.
func DefaultConfig() Config {
	return Config{
		StopCopyThresholdMB: 1,
		MaxPreCopyRounds:    30,
		SwitchOverheadS:     0.02,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.StopCopyThresholdMB <= 0 {
		return fmt.Errorf("migration: stop-copy threshold must be positive, got %g", c.StopCopyThresholdMB)
	}
	if c.MaxPreCopyRounds < 1 {
		return fmt.Errorf("migration: need at least 1 pre-copy round, got %d", c.MaxPreCopyRounds)
	}
	if c.SwitchOverheadS < 0 {
		return fmt.Errorf("migration: switch overhead must be non-negative, got %g", c.SwitchOverheadS)
	}
	return nil
}

// Round records one pre-copy iteration.
type Round struct {
	// CopiedMB is the data transferred this round.
	CopiedMB float64
	// DurationS is the round's wall-clock duration.
	DurationS float64
}

// Result summarizes a simulated migration.
type Result struct {
	// Rounds are the pre-copy iterations in order.
	Rounds []Round
	// StopCopyMB is the residual moved during downtime.
	StopCopyMB float64
	// TotalDataMB is all data moved (pre-copy + stop-and-copy) — the D_n
	// of the paper.
	TotalDataMB float64
	// DowntimeS is the service interruption (stop-and-copy + switch).
	DowntimeS float64
	// TotalTimeS is the end-to-end migration duration.
	TotalTimeS float64
	// Converged is false when pre-copy hit MaxPreCopyRounds because the
	// dirty rate was too high for the link.
	Converged bool
}

// Simulate runs the pre-copy algorithm for a twin over a link of
// rateMBps megabytes per second.
func Simulate(vt VTSpec, rateMBps float64, cfg Config) (Result, error) {
	if err := vt.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if rateMBps <= 0 {
		return Result{}, fmt.Errorf("migration: link rate must be positive, got %g MB/s", rateMBps)
	}

	var res Result
	// Round 0 copies the full footprint; later rounds copy what was
	// dirtied while the previous round was in flight.
	toCopy := vt.BaseSizeMB()
	converged := false
	for i := 0; i < cfg.MaxPreCopyRounds; i++ {
		dur := toCopy / rateMBps
		res.Rounds = append(res.Rounds, Round{CopiedMB: toCopy, DurationS: dur})
		res.TotalDataMB += toCopy
		res.TotalTimeS += dur

		dirtied := vt.DirtyRateMBps * dur
		if dirtied <= cfg.StopCopyThresholdMB {
			toCopy = dirtied
			converged = true
			break
		}
		if dirtied >= toCopy {
			// Diverging: dirty rate outpaces the link; cut over now with
			// whatever is dirty.
			toCopy = dirtied
			break
		}
		toCopy = dirtied
	}
	res.Converged = converged

	// Stop-and-copy: the twin pauses while the residual moves.
	res.StopCopyMB = toCopy
	stopDur := toCopy / rateMBps
	res.TotalDataMB += toCopy
	res.DowntimeS = stopDur + cfg.SwitchOverheadS
	res.TotalTimeS += res.DowntimeS
	return res, nil
}

// TotalDataClosedForm returns the geometric-series prediction of the total
// migrated data for n pre-copy rounds at dirty/link ratio rho = w/r:
// M·(1 − rho^{n+1})/(1 − rho). It matches Simulate when no threshold
// triggers early exit, and is used to cross-check the simulator.
func TotalDataClosedForm(baseMB, rho float64, rounds int) float64 {
	if rho == 1 {
		return baseMB * float64(rounds+1)
	}
	pow := 1.0
	for i := 0; i <= rounds; i++ {
		pow *= rho
	}
	return baseMB * (1 - pow) / (1 - rho)
}
