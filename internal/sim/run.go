package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"vtmig/internal/aoi"
	"vtmig/internal/aotm"
	"vtmig/internal/channel"
	"vtmig/internal/mathx"
	"vtmig/internal/migration"
	"vtmig/internal/mobility"
	"vtmig/internal/rsu"
	"vtmig/internal/stackelberg"
	"vtmig/internal/trace"
)

// Simulator owns the state of one run. Construct with New, then call Run.
type Simulator struct {
	cfg      Config
	highway  *mobility.Highway
	vehicles []*mobility.Vehicle
	profiles []vmuProfile
	tracker  *mobility.Tracker
	alloc    *channel.OFDMAAllocator
	cluster  *rsu.Cluster
	tracer   *trace.Tracer
	rng      *rand.Rand

	now         float64
	inFlight    map[int]bool
	pending     []pendingMigration
	completions completionHeap
	report      Report

	// sensing holds one AoI process per vehicle; pausedUntil marks the
	// stop-and-copy downtime window during which updates are lost.
	sensing     []*aoi.Process
	nextUpdate  []float64
	pausedFrom  []float64
	pausedUntil []float64

	// demandScratch backs the per-round follower best responses; it is
	// resized to each round's batch and reused across rounds.
	demandScratch []float64
}

// New builds a simulator from the configuration.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hw, err := mobility.NewHighway(cfg.HighwayLengthM, cfg.RSUCount, cfg.RSURadiusM)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Simulator{
		cfg:      cfg,
		highway:  hw,
		tracker:  mobility.NewTracker(hw),
		alloc:    channel.NewOFDMAAllocator(cfg.BMaxMHz),
		tracer:   trace.NewTracer(cfg.TraceWriter),
		rng:      rng,
		inFlight: make(map[int]bool, cfg.Vehicles),
	}
	servers := make([]*rsu.Server, cfg.RSUCount)
	for i := range servers {
		srv, err := rsu.NewServer(i, cfg.RSUCapacity)
		if err != nil {
			return nil, err
		}
		servers[i] = srv
	}
	cluster, err := rsu.NewCluster(servers, rsu.PlaceLeastLoaded)
	if err != nil {
		return nil, err
	}
	s.cluster = cluster

	for i := 0; i < cfg.Vehicles; i++ {
		s.vehicles = append(s.vehicles, &mobility.Vehicle{
			ID:        i,
			PositionM: rng.Float64() * cfg.HighwayLengthM,
			SpeedMps:  cfg.SpeedMinMps + rng.Float64()*(cfg.SpeedMaxMps-cfg.SpeedMinMps),
		})
		memory := cfg.VTMemoryMinMB + rng.Float64()*(cfg.VTMemoryMaxMB-cfg.VTMemoryMinMB)
		s.profiles = append(s.profiles, vmuProfile{
			alpha: cfg.AlphaMin + rng.Float64()*(cfg.AlphaMax-cfg.AlphaMin),
			vt: migration.VTSpec{
				ConfigMB:      0.05 * memory,
				MemoryMB:      0.85 * memory,
				StateMB:       0.10 * memory,
				DirtyRateMBps: cfg.DirtyRateMBps,
			},
		})
		s.sensing = append(s.sensing, aoi.NewProcess(0))
		s.nextUpdate = append(s.nextUpdate, cfg.SensingPeriodS)
		s.pausedFrom = append(s.pausedFrom, 0)
		s.pausedUntil = append(s.pausedUntil, 0)
	}
	s.report.PricerName = cfg.Pricer.Name()
	return s, nil
}

// Run executes the full configured duration and returns the aggregated
// report. It is exactly RunFor(DurationS) followed by Finish — callers
// that need to pause mid-run (e.g. to snapshot and swap an online
// pricer) drive those pieces themselves.
func (s *Simulator) Run() Report {
	s.RunFor(s.cfg.DurationS)
	return s.Finish()
}

// Step advances the simulation by one time step: completions drain,
// vehicles move, sensing updates deliver, handovers queue, and at most
// one pricing round runs.
func (s *Simulator) Step() {
	s.now += s.cfg.TimeStepS
	s.drainCompletions()
	s.moveVehicles()
	s.deliverSensingUpdates()
	s.collectHandovers()
	s.runPricingRound()
}

// runForEpsilon is the relative tolerance within which a span quotient is
// treated as a whole number of steps. Spans that are exact multiples of
// TimeStepS in real arithmetic can land just below the integer in floats
// (1800/0.3 = 5999.999…), and plain truncation would silently drop the
// final step.
const runForEpsilon = 1e-9

// RunFor advances the simulation by the given span of simulated time,
// rounded down to whole steps — where "whole" tolerates float rounding:
// a quotient within a relative 1e-9 of the next integer counts as
// reaching it. Splitting a run into several RunFor calls whose spans are
// individually whole multiples of TimeStepS is bit-identical to one call
// over the total, for fractional step sizes too.
func (s *Simulator) RunFor(seconds float64) {
	q := seconds / s.cfg.TimeStepS
	steps := int(q)
	if next := float64(steps + 1); q >= next-runForEpsilon*next {
		steps++
	}
	for i := 0; i < steps; i++ {
		s.Step()
	}
}

// Finish flushes migrations still in flight at the horizon, finalizes
// the aggregate statistics, and returns the report. Call it once, after
// the last Step/RunFor.
func (s *Simulator) Finish() Report {
	for s.completions.Len() > 0 {
		s.finish(heap.Pop(&s.completions).(completion))
	}
	s.finalizeReport()
	return s.report
}

// Now returns the current simulated time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// SetPricer swaps the pricing strategy between steps — the hook behind
// simulation-level resume: snapshot an online pricer at an
// optimization-phase boundary, rebuild it from the checkpoint
// (NewOnlinePricerFromCheckpoint), swap it in, and the remaining steps
// are bit-identical to never having swapped (determinism contract
// rule 6). The report keeps counting across the swap; only the pricer
// name is refreshed.
func (s *Simulator) SetPricer(p Pricer) error {
	if p == nil {
		return fmt.Errorf("sim: cannot swap in a nil pricer")
	}
	s.cfg.Pricer = p
	s.report.PricerName = p.Name()
	return nil
}

// drainCompletions completes every migration whose finish time has passed.
func (s *Simulator) drainCompletions() {
	for s.completions.Len() > 0 && s.completions[0].at <= s.now {
		s.finish(heap.Pop(&s.completions).(completion))
	}
}

// finish releases the bandwidth grant, moves the twin's edge placement,
// and records the migration.
func (s *Simulator) finish(c completion) {
	if err := s.alloc.Release(c.record.VehicleID); err != nil {
		// A release failure indicates corrupted accounting; the simulator
		// cannot continue meaningfully.
		panic(fmt.Sprintf("sim: releasing grant for vehicle %d: %v", c.record.VehicleID, err))
	}
	delete(s.inFlight, c.record.VehicleID)
	if s.cluster.Locate(c.record.VehicleID) != c.record.ToRSU {
		if err := s.cluster.MigrateTwin(c.record.VehicleID, c.record.ToRSU); err != nil {
			// Destination edge server is full: the twin stays at the
			// source and keeps being served remotely.
			s.report.PlacementFailures++
		}
	}
	s.emit(trace.Event{
		TimeS: s.now, Kind: trace.KindMigrationComplete, Vehicle: c.record.VehicleID,
		FromRSU: c.record.FromRSU, ToRSU: c.record.ToRSU, Bandwidth: c.record.BandwidthMHz, AoTM: c.record.AoTM,
	})
	s.report.Migrations = append(s.report.Migrations, c.record)
}

// moveVehicles advances the kinematics.
func (s *Simulator) moveVehicles() {
	for _, v := range s.vehicles {
		v.Advance(s.cfg.TimeStepS, s.cfg.HighwayLengthM)
	}
}

// collectHandovers queues a pending migration for every handover of a
// vehicle that is not already migrating.
func (s *Simulator) collectHandovers() {
	for _, v := range s.vehicles {
		if s.inFlight[v.ID] {
			continue // twin already moving; re-evaluate after completion
		}
		ho, changed := s.tracker.Update(v)
		if !changed {
			continue
		}
		if ho.FromRSU < 0 {
			// First attach: deploy the twin on the serving RSU's edge
			// server, falling back to the least-loaded server when full.
			req := s.twinRequirement(v.ID)
			if err := s.cluster.PlaceOn(v.ID, ho.ToRSU, req); err != nil {
				if _, err := s.cluster.Place(v.ID, req); err != nil {
					s.report.PlacementFailures++
				}
			}
			continue
		}
		s.report.Handovers++
		s.emit(trace.Event{TimeS: s.now, Kind: trace.KindHandover, Vehicle: v.ID, FromRSU: ho.FromRSU, ToRSU: ho.ToRSU})
		s.pending = append(s.pending, pendingMigration{
			vehicleID: v.ID,
			fromRSU:   ho.FromRSU,
			toRSU:     ho.ToRSU,
		})
	}
}

// runPricingRound runs one Stackelberg round over all pending migrations.
func (s *Simulator) runPricingRound() {
	if len(s.pending) == 0 {
		return
	}
	if s.cfg.PricingFailureRate > 0 && s.rng.Float64() < s.cfg.PricingFailureRate {
		// Control-plane failure: everything retries next step.
		s.report.FailedRounds++
		s.report.Deferred += len(s.pending)
		s.emit(trace.Event{TimeS: s.now, Kind: trace.KindPricingFailure, Vehicle: -1, Participants: len(s.pending)})
		return
	}

	batch := s.pending
	s.pending = s.pending[:0]

	game, err := s.buildGame(batch)
	if err != nil {
		panic(fmt.Sprintf("sim: building round game: %v", err))
	}
	price := mathx.Clamp(s.cfg.Pricer.PriceFor(game), game.Cost, game.PMax)
	if math.IsNaN(price) {
		// Clamp passes NaN through, and a NaN price would flow into NaN
		// demands that corrupt the allocator's accounting unchecked
		// (NaN passes every <= comparison on the allocation path).
		panic(fmt.Sprintf("sim: t=%.3fs: pricer %q returned NaN for a %d-VMU round",
			s.now, s.cfg.Pricer.Name(), game.N()))
	}
	s.report.PricingRounds++
	s.emit(trace.Event{TimeS: s.now, Kind: trace.KindPricingRound, Vehicle: -1, Price: price, Participants: len(batch)})

	// Followers best-respond; the remaining pool bounds this round.
	if cap(s.demandScratch) < game.N() {
		s.demandScratch = make([]float64, game.N())
	}
	demands := game.BestResponsesInto(s.demandScratch[:game.N()], price)
	avail := s.alloc.Available()
	if math.IsNaN(avail) || avail < 0 {
		panic(fmt.Sprintf("sim: t=%.3fs: bandwidth pool accounting corrupt: %g MHz available of %g",
			s.now, avail, s.alloc.Capacity()))
	}
	scaled, scale := channel.NewOFDMAAllocator(math.Max(avail, 1e-12)).ScaleToFit(demands)

	for i, pm := range batch {
		bw := scaled[i]
		if math.IsNaN(bw) || math.IsInf(bw, 0) {
			// A garbage scale result must not reach the allocator: treat it
			// like the other corrupted-accounting paths instead of letting
			// Allocate absorb a NaN into the shared pool.
			panic(fmt.Sprintf("sim: t=%.3fs: scaling %d demands into %g MHz produced %g for vehicle %d (scale %g)",
				s.now, len(batch), avail, bw, pm.vehicleID, scale))
		}
		if bw <= 0 {
			s.report.OptedOut++
			continue
		}
		if err := s.alloc.Allocate(pm.vehicleID, bw); err != nil {
			// Pool exhausted by earlier grants in this batch: retry later.
			s.pending = append(s.pending, pm)
			s.report.Deferred++
			s.emit(trace.Event{TimeS: s.now, Kind: trace.KindDeferred, Vehicle: pm.vehicleID})
			continue
		}
		s.launchMigration(pm, game, i, price, bw)
	}
}

// buildGame assembles the round's Stackelberg game. The channel distance
// is the mean source–destination RSU distance of the batch.
func (s *Simulator) buildGame(batch []pendingMigration) (*stackelberg.Game, error) {
	ch := s.cfg.Channel
	var dist float64
	for _, pm := range batch {
		dist += s.highway.RSUDistance(pm.fromRSU, pm.toRSU)
	}
	if d := dist / float64(len(batch)); d > 0 {
		ch.DistanceM = d
	}
	vmus := make([]stackelberg.VMU, len(batch))
	for i, pm := range batch {
		prof := s.profiles[pm.vehicleID]
		vmus[i] = stackelberg.VMU{
			ID:       pm.vehicleID,
			Alpha:    prof.alpha,
			DataSize: aotm.FromMB(prof.vt.BaseSizeMB()),
		}
	}
	// The round's capacity is what is left in the shared pool.
	bmax := s.alloc.Available()
	return stackelberg.NewGame(vmus, ch, s.cfg.Cost, s.cfg.PMax, bmax)
}

// launchMigration runs the pre-copy model and schedules completion.
func (s *Simulator) launchMigration(pm pendingMigration, game *stackelberg.Game, idx int, price, bw float64) {
	prof := s.profiles[pm.vehicleID]
	// Rate: γ = b·e is in model data units (100 MB) per second.
	rateMBps := game.Channel.Rate(bw) * aotm.DataUnit100MB
	res, err := migration.Simulate(prof.vt, rateMBps, migration.DefaultConfig())
	if err != nil {
		panic(fmt.Sprintf("sim: migrating vehicle %d: %v", pm.vehicleID, err))
	}
	age := aotm.AoTMForBandwidth(aotm.FromMB(prof.vt.BaseSizeMB()), bw, game.Channel)
	rec := MigrationRecord{
		VehicleID:        pm.vehicleID,
		StartS:           s.now,
		FromRSU:          pm.fromRSU,
		ToRSU:            pm.toRSU,
		Price:            price,
		BandwidthMHz:     bw,
		AoTM:             age,
		DataMovedMB:      res.TotalDataMB,
		DowntimeS:        res.DowntimeS,
		DurationS:        res.TotalTimeS,
		VMUUtility:       game.VMUUtility(idx, bw, price),
		MSPProfit:        (price - game.Cost) * bw,
		PreCopyConverged: res.Converged,
	}
	s.inFlight[pm.vehicleID] = true
	s.emit(trace.Event{
		TimeS: s.now, Kind: trace.KindMigrationStart, Vehicle: pm.vehicleID,
		FromRSU: pm.fromRSU, ToRSU: pm.toRSU, Price: price, Bandwidth: bw, AoTM: age,
	})
	// Sensing updates are lost while the twin is paused (stop-and-copy).
	s.pausedFrom[pm.vehicleID] = s.now + res.TotalTimeS - res.DowntimeS
	s.pausedUntil[pm.vehicleID] = s.now + res.TotalTimeS
	heap.Push(&s.completions, completion{at: s.now + res.TotalTimeS, record: rec})
	s.report.MSPRevenue += rec.MSPProfit
}

// twinRequirement derives a twin's edge-resource footprint from its
// memory size: bigger twins need proportionally more of everything.
func (s *Simulator) twinRequirement(vehicleID int) rsu.Resources {
	memGB := s.profiles[vehicleID].vt.BaseSizeMB() / 1024
	return rsu.Resources{
		CPU:       1 + memGB,
		GPU:       0.5,
		MemoryGB:  2 * memGB,
		StorageGB: 4 * memGB,
	}
}

// deliverSensingUpdates advances each vehicle's physical-virtual sensing
// stream up to the current time, dropping updates generated inside the
// twin's migration-downtime window.
func (s *Simulator) deliverSensingUpdates() {
	for id := range s.vehicles {
		p := s.sensing[id]
		for s.nextUpdate[id] <= s.now {
			gen := s.nextUpdate[id]
			s.nextUpdate[id] += s.cfg.SensingPeriodS
			if gen >= s.pausedFrom[id] && gen < s.pausedUntil[id] && s.pausedUntil[id] > 0 {
				continue // twin paused: update lost
			}
			if err := p.Deliver(gen, gen+s.cfg.SensingDelayS); err != nil {
				panic(fmt.Sprintf("sim: sensing delivery for vehicle %d: %v", id, err))
			}
		}
	}
}

// finalizeReport computes the aggregate statistics.
func (s *Simulator) finalizeReport() {
	s.report.SimulatedS = s.now
	if s.now > 0 {
		var sumAoI float64
		for _, p := range s.sensing {
			sumAoI += p.AverageAge(s.now)
		}
		s.report.MeanSensingAoI = sumAoI / float64(len(s.sensing))
	}
	if len(s.report.Migrations) == 0 {
		return
	}
	var ages, utils []float64
	for _, m := range s.report.Migrations {
		ages = append(ages, m.AoTM)
		utils = append(utils, m.VMUUtility)
	}
	s.report.MeanAoTM = mathx.Mean(ages)
	_, s.report.MaxAoTM = mathx.MinMax(ages)
	s.report.MeanVMUUtility = mathx.Mean(utils)
}

// emit writes a trace event, disabling tracing on a broken sink.
func (s *Simulator) emit(e trace.Event) {
	if err := s.tracer.Emit(e); err != nil {
		s.tracer = nil
	}
}
