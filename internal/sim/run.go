package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"vtmig/internal/aoi"
	"vtmig/internal/aotm"
	"vtmig/internal/channel"
	"vtmig/internal/mathx"
	"vtmig/internal/migration"
	"vtmig/internal/mobility"
	"vtmig/internal/rsu"
	"vtmig/internal/stackelberg"
	"vtmig/internal/trace"
)

// vehState is one active vehicle's full simulation state: the kinematic
// body, the VMU game profile, the sensing-AoI stream, and — under churn —
// the lifetime window.
type vehState struct {
	v    *mobility.Vehicle
	prof vmuProfile

	// sensing is the physical-virtual synchronization stream; pausedFrom/
	// pausedUntil mark the stop-and-copy downtime window during which
	// updates are lost.
	sensing        *aoi.Process
	nextUpdate     float64
	sensingPeriodS float64
	pausedFrom     float64
	pausedUntil    float64

	// arrivedAt and departAt bound the vehicle's lifetime; departAt is
	// +Inf when churn is off.
	arrivedAt float64
	departAt  float64
}

// Simulator owns the state of one run. Construct with New, then call Run.
type Simulator struct {
	cfg      Config
	world    mobility.World
	vehicles []*vehState // active fleet in arrival order
	byID     map[int]*vehState
	tracker  *mobility.Tracker
	alloc    *channel.OFDMAAllocator
	cluster  *rsu.Cluster
	tracer   *trace.Tracer
	rng      *rand.Rand

	// churnRng is the dedicated counted arrival/departure stream; nil
	// unless churn is enabled, so legacy runs draw nothing from it.
	churnRng  *rand.Rand
	nextVehID int

	// classes are the resolved heterogeneous populations; classAcc holds
	// cumulative weights for the spawn draw. Both empty without classes.
	classes        []resolvedClass
	classAcc       []float64
	classWeightSum float64
	baseClass      resolvedClass

	// down marks RSUs currently in outage (nil when no outages are
	// scheduled); outageOn tracks per-window activity for trace edges.
	down     []bool
	outageOn []bool

	// departedAoI accumulates the lifetime-average sensing AoI of every
	// departed vehicle, so churn does not drop them from the report.
	departedAoI []float64

	now         float64
	inFlight    map[int]bool
	pending     []pendingMigration
	completions completionHeap
	report      Report

	// demandScratch backs the per-round follower best responses; it is
	// resized to each round's batch and reused across rounds.
	demandScratch []float64
}

// churnSeedFrom derives the default churn-stream seed from the main seed
// with a splitmix64 scramble — an additive offset would collide with
// nearby user-chosen seeds.
func churnSeedFrom(seed int64) int64 {
	return mathx.SplitMix64(seed, 0)
}

// New builds a simulator from the configuration.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var world mobility.World
	switch cfg.Mobility {
	case "", MobilityHighway:
		hw, err := mobility.NewHighway(cfg.HighwayLengthM, cfg.RSUCount, cfg.RSURadiusM)
		if err != nil {
			return nil, err
		}
		world = hw
	case MobilityGrid:
		turnSeed := cfg.Grid.TurnSeed
		if turnSeed == 0 {
			turnSeed = cfg.Seed
		}
		g, err := mobility.NewGrid(cfg.Grid.Rows, cfg.Grid.Cols, cfg.Grid.SpacingM, cfg.RSURadiusM, turnSeed)
		if err != nil {
			return nil, err
		}
		world = g
	}
	s := &Simulator{
		cfg:       cfg,
		world:     world,
		byID:      make(map[int]*vehState, cfg.Vehicles),
		tracker:   mobility.NewObserveTracker(),
		alloc:     channel.NewOFDMAAllocator(cfg.BMaxMHz),
		tracer:    trace.NewTracer(cfg.TraceWriter),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		baseClass: VehicleClass{}.resolve(cfg),
		inFlight:  make(map[int]bool, cfg.Vehicles),
	}
	if cfg.Churn.Enabled() {
		seed := cfg.Churn.Seed
		if seed == 0 {
			seed = churnSeedFrom(cfg.Seed)
		}
		s.churnRng = rand.New(mathx.NewCountingSource(seed))
	}
	for _, cl := range cfg.Classes {
		s.classes = append(s.classes, cl.resolve(cfg))
		s.classWeightSum += cl.Weight
		s.classAcc = append(s.classAcc, s.classWeightSum)
	}
	if len(cfg.Outages) > 0 {
		s.down = make([]bool, world.RSUCount())
		s.outageOn = make([]bool, len(cfg.Outages))
	}
	servers := make([]*rsu.Server, world.RSUCount())
	for i := range servers {
		srv, err := rsu.NewServer(i, cfg.RSUCapacity)
		if err != nil {
			return nil, err
		}
		servers[i] = srv
	}
	cluster, err := rsu.NewCluster(servers, rsu.PlaceLeastLoaded)
	if err != nil {
		return nil, err
	}
	s.cluster = cluster

	for i := 0; i < cfg.Vehicles; i++ {
		s.spawnVehicle(s.rng)
	}
	s.report.PricerName = cfg.Pricer.Name()
	return s, nil
}

// pickClass selects the spawn's population: no draw at all for a
// homogeneous fleet, one weighted draw otherwise.
func (s *Simulator) pickClass(rng *rand.Rand) resolvedClass {
	if len(s.classes) == 0 {
		return s.baseClass
	}
	u := rng.Float64() * s.classWeightSum
	for i, acc := range s.classAcc {
		if u < acc {
			return s.classes[i]
		}
	}
	return s.classes[len(s.classes)-1]
}

// spawnVehicle creates one vehicle drawing its class, spawn state, and
// profile from rng — the main stream for the initial fleet, the churn
// stream for arrivals. The draw order (position, speed, memory, alpha)
// is part of the determinism contract: reordering it would shift every
// later draw and break the committed goldens.
func (s *Simulator) spawnVehicle(rng *rand.Rand) *vehState {
	cls := s.pickClass(rng)
	v := &mobility.Vehicle{ID: s.nextVehID}
	s.nextVehID++
	s.world.Place(v, rng)
	v.SpeedMps = cls.speedMin + rng.Float64()*(cls.speedMax-cls.speedMin)
	memory := cls.memMin + rng.Float64()*(cls.memMax-cls.memMin)
	st := &vehState{
		v: v,
		prof: vmuProfile{
			alpha: cls.alphaMin + rng.Float64()*(cls.alphaMax-cls.alphaMin),
			vt: migration.VTSpec{
				ConfigMB:      0.05 * memory,
				MemoryMB:      0.85 * memory,
				StateMB:       0.10 * memory,
				DirtyRateMBps: s.cfg.DirtyRateMBps,
			},
		},
		sensing:        aoi.NewProcess(s.now),
		nextUpdate:     s.now + cls.sensingPeriodS,
		sensingPeriodS: cls.sensingPeriodS,
		arrivedAt:      s.now,
		departAt:       math.Inf(1),
	}
	if s.churnRng != nil {
		st.departAt = s.now + s.churnRng.ExpFloat64()*s.cfg.Churn.MeanDwellS
	}
	s.vehicles = append(s.vehicles, st)
	s.byID[v.ID] = st
	return st
}

// Run executes the full configured duration and returns the aggregated
// report. It is exactly RunFor(DurationS) followed by Finish — callers
// that need to pause mid-run (e.g. to snapshot and swap an online
// pricer) drive those pieces themselves.
func (s *Simulator) Run() Report {
	s.RunFor(s.cfg.DurationS)
	return s.Finish()
}

// Step advances the simulation by one time step: completions drain,
// outages toggle, churn arrives and departs, vehicles move, sensing
// updates deliver, handovers queue, and at most one pricing round runs.
func (s *Simulator) Step() {
	s.now += s.cfg.TimeStepS
	s.drainCompletions()
	s.applyOutages()
	s.processChurn()
	s.moveVehicles()
	s.deliverSensingUpdates()
	s.collectHandovers()
	s.runPricingRound()
}

// runForEpsilon is the relative tolerance within which a span quotient is
// treated as a whole number of steps. Spans that are exact multiples of
// TimeStepS in real arithmetic can land just below the integer in floats
// (1800/0.3 = 5999.999…), and plain truncation would silently drop the
// final step.
const runForEpsilon = 1e-9

// RunFor advances the simulation by the given span of simulated time,
// rounded down to whole steps — where "whole" tolerates float rounding:
// a quotient within a relative 1e-9 of the next integer counts as
// reaching it. Splitting a run into several RunFor calls whose spans are
// individually whole multiples of TimeStepS is bit-identical to one call
// over the total, for fractional step sizes too.
func (s *Simulator) RunFor(seconds float64) {
	q := seconds / s.cfg.TimeStepS
	steps := int(q)
	if next := float64(steps + 1); q >= next-runForEpsilon*next {
		steps++
	}
	for i := 0; i < steps; i++ {
		s.Step()
	}
}

// Finish flushes migrations still in flight at the horizon, finalizes
// the aggregate statistics, and returns the report. Call it once, after
// the last Step/RunFor.
func (s *Simulator) Finish() Report {
	for s.completions.Len() > 0 {
		s.finish(heap.Pop(&s.completions).(completion))
	}
	s.finalizeReport()
	return s.report
}

// Now returns the current simulated time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// SetPricer swaps the pricing strategy between steps — the hook behind
// simulation-level resume: snapshot an online pricer at an
// optimization-phase boundary, rebuild it from the checkpoint
// (NewOnlinePricerFromCheckpoint), swap it in, and the remaining steps
// are bit-identical to never having swapped (determinism contract
// rule 6). The report keeps counting across the swap; only the pricer
// name is refreshed.
func (s *Simulator) SetPricer(p Pricer) error {
	if p == nil {
		return fmt.Errorf("sim: cannot swap in a nil pricer")
	}
	s.cfg.Pricer = p
	s.report.PricerName = p.Name()
	return nil
}

// drainCompletions completes every migration whose finish time has passed.
func (s *Simulator) drainCompletions() {
	for s.completions.Len() > 0 && s.completions[0].at <= s.now {
		s.finish(heap.Pop(&s.completions).(completion))
	}
}

// finish releases the bandwidth grant, moves the twin's edge placement,
// and records the migration.
func (s *Simulator) finish(c completion) {
	if err := s.alloc.Release(c.record.VehicleID); err != nil {
		// A release failure indicates corrupted accounting; the simulator
		// cannot continue meaningfully.
		panic(fmt.Sprintf("sim: releasing grant for vehicle %d: %v", c.record.VehicleID, err))
	}
	delete(s.inFlight, c.record.VehicleID)
	if s.cluster.Locate(c.record.VehicleID) != c.record.ToRSU {
		if err := s.cluster.MigrateTwin(c.record.VehicleID, c.record.ToRSU); err != nil {
			// Destination edge server is full: the twin stays at the
			// source and keeps being served remotely.
			s.report.PlacementFailures++
		}
	}
	s.emit(trace.Event{
		TimeS: s.now, Kind: trace.KindMigrationComplete, Vehicle: c.record.VehicleID,
		FromRSU: c.record.FromRSU, ToRSU: c.record.ToRSU, Bandwidth: c.record.BandwidthMHz, AoTM: c.record.AoTM,
	})
	s.report.Migrations = append(s.report.Migrations, c.record)
}

// applyOutages recomputes which RSUs are down and traces window edges.
func (s *Simulator) applyOutages() {
	if len(s.cfg.Outages) == 0 {
		return
	}
	for i := range s.down {
		s.down[i] = false
	}
	for wi, w := range s.cfg.Outages {
		active := s.now >= w.StartS && s.now < w.EndS
		if active {
			s.down[w.RSU] = true
		}
		if active != s.outageOn[wi] {
			s.outageOn[wi] = active
			kind := trace.KindOutageStart
			if !active {
				kind = trace.KindOutageEnd
			}
			s.emit(trace.Event{TimeS: s.now, Kind: kind, Vehicle: -1, FromRSU: w.RSU, ToRSU: w.RSU})
		}
	}
}

// night reports whether the demand cycle is in its night phase.
func (s *Simulator) night() bool {
	d := s.cfg.Demand
	if !d.Enabled() {
		return false
	}
	return math.Mod(s.now, d.PeriodS) >= d.DayFraction*d.PeriodS
}

// poissonDraw samples Poisson(lambda) with Knuth's product method. The
// rate is clamped to 100 expected events per draw: beyond that the
// product underflows, and per-step arrival bursts of that size are
// outside the simulator's regime anyway.
func poissonDraw(rng *rand.Rand, lambda float64) int {
	if !(lambda > 0) {
		return 0
	}
	if lambda > 100 {
		lambda = 100
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// processChurn retires vehicles whose dwell expired and spawns Poisson
// arrivals, all from the dedicated churn stream. Departures are deferred
// while the vehicle's migration is in flight so accounting stays whole.
func (s *Simulator) processChurn() {
	if s.churnRng == nil {
		return
	}
	kept := s.vehicles[:0]
	for _, st := range s.vehicles {
		if st.departAt <= s.now && !s.inFlight[st.v.ID] {
			s.depart(st)
			continue
		}
		kept = append(kept, st)
	}
	s.vehicles = kept
	arrivals := poissonDraw(s.churnRng, s.cfg.Churn.ArrivalRatePerS*s.cfg.TimeStepS)
	for i := 0; i < arrivals; i++ {
		if s.cfg.Churn.MaxVehicles > 0 && len(s.vehicles) >= s.cfg.Churn.MaxVehicles {
			break
		}
		st := s.spawnVehicle(s.churnRng)
		s.report.Arrivals++
		s.emit(trace.Event{TimeS: s.now, Kind: trace.KindArrival, Vehicle: st.v.ID})
	}
}

// depart removes one vehicle: its twin is evicted, its serving state
// forgotten, its queued migrations dropped, and its sensing stream's
// lifetime average banked for the report.
func (s *Simulator) depart(st *vehState) {
	id := st.v.ID
	if s.cluster.Locate(id) >= 0 {
		if err := s.cluster.Evict(id); err != nil {
			panic(fmt.Sprintf("sim: evicting twin of departing vehicle %d: %v", id, err))
		}
	}
	s.tracker.Forget(id)
	pending := s.pending[:0]
	for _, pm := range s.pending {
		if pm.vehicleID != id {
			pending = append(pending, pm)
		}
	}
	s.pending = pending
	if s.now > st.arrivedAt {
		s.departedAoI = append(s.departedAoI, st.sensing.AverageAge(s.now))
	}
	delete(s.byID, id)
	s.report.Departures++
	s.emit(trace.Event{TimeS: s.now, Kind: trace.KindDeparture, Vehicle: id})
}

// moveVehicles advances the kinematics; the night phase of a demand
// cycle scales speeds down (less migration demand).
func (s *Simulator) moveVehicles() {
	dt := s.cfg.TimeStepS
	if s.night() {
		dt *= s.cfg.Demand.NightSpeedFactor
	}
	for _, st := range s.vehicles {
		s.world.Advance(st.v, dt)
	}
}

// collectHandovers queues a pending migration for every handover of a
// vehicle that is not already migrating.
func (s *Simulator) collectHandovers() {
	for _, st := range s.vehicles {
		v := st.v
		if s.inFlight[v.ID] {
			continue // twin already moving; re-evaluate after completion
		}
		rsuID, _ := s.world.ServingRSU(v, s.down)
		ho, changed := s.tracker.Observe(v.ID, rsuID)
		if !changed {
			continue
		}
		if ho.FromRSU < 0 {
			// First attach: deploy the twin on the serving RSU's edge
			// server, falling back to the least-loaded server when full.
			req := s.twinRequirement(v.ID)
			if err := s.cluster.PlaceOn(v.ID, ho.ToRSU, req); err != nil {
				if _, err := s.cluster.Place(v.ID, req); err != nil {
					s.report.PlacementFailures++
				}
			}
			continue
		}
		s.report.Handovers++
		s.emit(trace.Event{TimeS: s.now, Kind: trace.KindHandover, Vehicle: v.ID, FromRSU: ho.FromRSU, ToRSU: ho.ToRSU})
		s.pending = append(s.pending, pendingMigration{
			vehicleID: v.ID,
			fromRSU:   ho.FromRSU,
			toRSU:     ho.ToRSU,
		})
	}
}

// runPricingRound runs one Stackelberg round over all pending migrations.
func (s *Simulator) runPricingRound() {
	if len(s.pending) == 0 {
		return
	}
	if s.cfg.PricingFailureRate > 0 && s.rng.Float64() < s.cfg.PricingFailureRate {
		// Control-plane failure: everything retries next step.
		s.report.FailedRounds++
		s.report.Deferred += len(s.pending)
		s.emit(trace.Event{TimeS: s.now, Kind: trace.KindPricingFailure, Vehicle: -1, Participants: len(s.pending)})
		return
	}

	batch := s.pending
	s.pending = s.pending[:0]

	game, err := s.buildGame(batch)
	if err != nil {
		panic(fmt.Sprintf("sim: building round game: %v", err))
	}
	price := mathx.Clamp(s.cfg.Pricer.PriceFor(game), game.Cost, game.PMax)
	if math.IsNaN(price) {
		// Clamp passes NaN through, and a NaN price would flow into NaN
		// demands that corrupt the allocator's accounting unchecked
		// (NaN passes every <= comparison on the allocation path).
		panic(fmt.Sprintf("sim: t=%.3fs: pricer %q returned NaN for a %d-VMU round",
			s.now, s.cfg.Pricer.Name(), game.N()))
	}
	s.report.PricingRounds++
	s.emit(trace.Event{TimeS: s.now, Kind: trace.KindPricingRound, Vehicle: -1, Price: price, Participants: len(batch)})

	// Followers best-respond; the remaining pool bounds this round.
	if cap(s.demandScratch) < game.N() {
		s.demandScratch = make([]float64, game.N())
	}
	demands := game.BestResponsesInto(s.demandScratch[:game.N()], price)
	avail := s.alloc.Available()
	if math.IsNaN(avail) || avail < 0 {
		panic(fmt.Sprintf("sim: t=%.3fs: bandwidth pool accounting corrupt: %g MHz available of %g",
			s.now, avail, s.alloc.Capacity()))
	}
	scaled, scale := channel.NewOFDMAAllocator(math.Max(avail, 1e-12)).ScaleToFit(demands)

	for i, pm := range batch {
		bw := scaled[i]
		if math.IsNaN(bw) || math.IsInf(bw, 0) {
			// A garbage scale result must not reach the allocator: treat it
			// like the other corrupted-accounting paths instead of letting
			// Allocate absorb a NaN into the shared pool.
			panic(fmt.Sprintf("sim: t=%.3fs: scaling %d demands into %g MHz produced %g for vehicle %d (scale %g)",
				s.now, len(batch), avail, bw, pm.vehicleID, scale))
		}
		if bw <= 0 {
			s.report.OptedOut++
			continue
		}
		if err := s.alloc.Allocate(pm.vehicleID, bw); err != nil {
			// Pool exhausted by earlier grants in this batch: retry later.
			s.pending = append(s.pending, pm)
			s.report.Deferred++
			s.emit(trace.Event{TimeS: s.now, Kind: trace.KindDeferred, Vehicle: pm.vehicleID})
			continue
		}
		s.launchMigration(pm, game, i, price, bw)
	}
}

// buildGame assembles the round's Stackelberg game. The channel distance
// is the mean source–destination RSU distance of the batch.
func (s *Simulator) buildGame(batch []pendingMigration) (*stackelberg.Game, error) {
	ch := s.cfg.Channel
	var dist float64
	for _, pm := range batch {
		dist += s.world.RSUDistance(pm.fromRSU, pm.toRSU)
	}
	if d := dist / float64(len(batch)); d > 0 {
		ch.DistanceM = d
	}
	vmus := make([]stackelberg.VMU, len(batch))
	for i, pm := range batch {
		prof := s.byID[pm.vehicleID].prof
		vmus[i] = stackelberg.VMU{
			ID:       pm.vehicleID,
			Alpha:    prof.alpha,
			DataSize: aotm.FromMB(prof.vt.BaseSizeMB()),
		}
	}
	// The round's capacity is what is left in the shared pool.
	bmax := s.alloc.Available()
	return stackelberg.NewGame(vmus, ch, s.cfg.Cost, s.cfg.PMax, bmax)
}

// launchMigration runs the pre-copy model and schedules completion.
func (s *Simulator) launchMigration(pm pendingMigration, game *stackelberg.Game, idx int, price, bw float64) {
	st := s.byID[pm.vehicleID]
	prof := st.prof
	// Rate: γ = b·e is in model data units (100 MB) per second.
	rateMBps := game.Channel.Rate(bw) * aotm.DataUnit100MB
	res, err := migration.Simulate(prof.vt, rateMBps, migration.DefaultConfig())
	if err != nil {
		panic(fmt.Sprintf("sim: migrating vehicle %d: %v", pm.vehicleID, err))
	}
	age := aotm.AoTMForBandwidth(aotm.FromMB(prof.vt.BaseSizeMB()), bw, game.Channel)
	rec := MigrationRecord{
		VehicleID:        pm.vehicleID,
		StartS:           s.now,
		FromRSU:          pm.fromRSU,
		ToRSU:            pm.toRSU,
		Price:            price,
		BandwidthMHz:     bw,
		AoTM:             age,
		DataMovedMB:      res.TotalDataMB,
		DowntimeS:        res.DowntimeS,
		DurationS:        res.TotalTimeS,
		VMUUtility:       game.VMUUtility(idx, bw, price),
		MSPProfit:        (price - game.Cost) * bw,
		PreCopyConverged: res.Converged,
	}
	s.inFlight[pm.vehicleID] = true
	s.emit(trace.Event{
		TimeS: s.now, Kind: trace.KindMigrationStart, Vehicle: pm.vehicleID,
		FromRSU: pm.fromRSU, ToRSU: pm.toRSU, Price: price, Bandwidth: bw, AoTM: age,
	})
	// Sensing updates are lost while the twin is paused (stop-and-copy).
	st.pausedFrom = s.now + res.TotalTimeS - res.DowntimeS
	st.pausedUntil = s.now + res.TotalTimeS
	heap.Push(&s.completions, completion{at: s.now + res.TotalTimeS, record: rec})
	s.report.MSPRevenue += rec.MSPProfit
}

// twinRequirement derives a twin's edge-resource footprint from its
// memory size: bigger twins need proportionally more of everything.
func (s *Simulator) twinRequirement(vehicleID int) rsu.Resources {
	memGB := s.byID[vehicleID].prof.vt.BaseSizeMB() / 1024
	return rsu.Resources{
		CPU:       1 + memGB,
		GPU:       0.5,
		MemoryGB:  2 * memGB,
		StorageGB: 4 * memGB,
	}
}

// deliverSensingUpdates advances each vehicle's physical-virtual sensing
// stream up to the current time, dropping updates generated inside the
// twin's migration-downtime window. The night phase of a demand cycle
// stretches the update period.
func (s *Simulator) deliverSensingUpdates() {
	night := s.night()
	for _, st := range s.vehicles {
		for st.nextUpdate <= s.now {
			gen := st.nextUpdate
			period := st.sensingPeriodS
			if night {
				period *= s.cfg.Demand.NightSensingFactor
			}
			st.nextUpdate += period
			if gen >= st.pausedFrom && gen < st.pausedUntil && st.pausedUntil > 0 {
				continue // twin paused: update lost
			}
			if err := st.sensing.Deliver(gen, gen+s.cfg.SensingDelayS); err != nil {
				panic(fmt.Sprintf("sim: sensing delivery for vehicle %d: %v", st.v.ID, err))
			}
		}
	}
}

// finalizeReport computes the aggregate statistics. The sensing-AoI mean
// covers every vehicle that lived a positive span: departed vehicles
// contribute their banked lifetime averages, active ones their average up
// to the horizon.
func (s *Simulator) finalizeReport() {
	s.report.SimulatedS = s.now
	var sumAoI float64
	included := 0
	for _, a := range s.departedAoI {
		sumAoI += a
		included++
	}
	for _, st := range s.vehicles {
		if s.now > st.arrivedAt {
			sumAoI += st.sensing.AverageAge(s.now)
			included++
		}
	}
	if included > 0 {
		s.report.MeanSensingAoI = sumAoI / float64(included)
	}
	if len(s.report.Migrations) == 0 {
		return
	}
	var ages, utils []float64
	for _, m := range s.report.Migrations {
		ages = append(ages, m.AoTM)
		utils = append(utils, m.VMUUtility)
	}
	s.report.MeanAoTM = mathx.Mean(ages)
	_, s.report.MaxAoTM = mathx.MinMax(ages)
	s.report.MeanVMUUtility = mathx.Mean(utils)
}

// emit writes a trace event, disabling tracing on a broken sink.
func (s *Simulator) emit(e trace.Event) {
	if err := s.tracer.Emit(e); err != nil {
		s.tracer = nil
	}
}
