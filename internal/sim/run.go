package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"vtmig/internal/aoi"
	"vtmig/internal/aotm"
	"vtmig/internal/channel"
	"vtmig/internal/mathx"
	"vtmig/internal/migration"
	"vtmig/internal/mobility"
	"vtmig/internal/rsu"
	"vtmig/internal/stackelberg"
	"vtmig/internal/trace"
)

// vehState is one active vehicle's full simulation state: the kinematic
// body, the VMU game profile, the sensing-AoI stream, and — under churn —
// the lifetime window.
type vehState struct {
	v    *mobility.Vehicle
	prof vmuProfile

	// sensing is the physical-virtual synchronization stream; pausedFrom/
	// pausedUntil mark the stop-and-copy downtime window during which
	// updates are lost.
	sensing        *aoi.Process
	nextUpdate     float64
	sensingPeriodS float64
	pausedFrom     float64
	pausedUntil    float64

	// arrivedAt and departAt bound the vehicle's lifetime; departAt is
	// +Inf when churn is off.
	arrivedAt float64
	departAt  float64

	// stagedRSU is the serving RSU computed during the per-tick vehicle
	// phase (serial or sharded) and consumed by the serial handover
	// collection; region is the index of the shard the vehicle currently
	// resides in (sharded runs only).
	stagedRSU int
	region    int
}

// Simulator owns the state of one run. Construct with New, then call Run.
type Simulator struct {
	cfg      Config
	world    mobility.World
	vehicles []*vehState // active fleet in arrival order
	byID     map[int]*vehState
	tracker  *mobility.Tracker
	alloc    *channel.OFDMAAllocator
	cluster  *rsu.Cluster
	tracer   *trace.Tracer
	rng      *rand.Rand

	// churnRng is the dedicated counted arrival/departure stream; nil
	// unless churn is enabled, so legacy runs draw nothing from it.
	churnRng  *rand.Rand
	nextVehID int

	// classes are the resolved heterogeneous populations; classAcc holds
	// cumulative weights for the spawn draw. Both empty without classes.
	classes        []resolvedClass
	classAcc       []float64
	classWeightSum float64
	baseClass      resolvedClass

	// down marks RSUs currently in outage (nil when no outages are
	// scheduled); outageOn tracks per-window activity for trace edges.
	// downNow aliases down while any window is active and is nil
	// otherwise, so serving-RSU lookups take the no-outage fast path
	// whenever possible (an all-false mask and a nil mask select
	// identically).
	down     []bool
	downNow  []bool
	outageOn []bool

	// departedAoISum and departedAoICount accumulate the lifetime-average
	// sensing AoI of departed vehicles streaming, in departure order —
	// the same accumulation order as the former slice-then-sum form, so
	// churn-heavy fleets cost no per-departure memory.
	departedAoISum   float64
	departedAoICount int

	// shards are the region-sharded stepping state; nil on the serial
	// path (Config.Shards.Regions == 0).
	shards []simShard

	now         float64
	inFlight    map[int]bool
	pending     []pendingMigration
	completions completionHeap
	report      Report

	// pendingIdx maps vehicle ids to their queued entry in pending, rebuilt
	// each handover pass so repeat handovers of a deferred vehicle retarget
	// the queued migration instead of duplicating it.
	pendingIdx map[int]int

	// aotmSum, aotmMax, and utilSum are the streaming migration
	// aggregates, accumulated in completion order exactly like
	// mathx.Mean/MinMax over the record slice would.
	aotmSum, aotmMax, utilSum float64

	// demandScratch backs the per-round follower best responses; it is
	// resized to each round's batch and reused across rounds. evalScratch
	// carries the SoA follower mirror of the batched best-response
	// kernels, and roundGame/vmuScratch/seenScratch back the reused
	// per-round game so steady-state rounds allocate nothing that scales
	// with fleet size.
	demandScratch []float64
	evalScratch   stackelberg.EvalScratch
	roundGame     stackelberg.Game
	vmuScratch    []stackelberg.VMU
	seenScratch   map[int]bool
}

// churnSeedFrom derives the default churn-stream seed from the main seed
// with a splitmix64 scramble — an additive offset would collide with
// nearby user-chosen seeds.
func churnSeedFrom(seed int64) int64 {
	return mathx.SplitMix64(seed, 0)
}

// New builds a simulator from the configuration.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var world mobility.World
	switch cfg.Mobility {
	case "", MobilityHighway:
		hw, err := mobility.NewHighway(cfg.HighwayLengthM, cfg.RSUCount, cfg.RSURadiusM)
		if err != nil {
			return nil, err
		}
		world = hw
	case MobilityGrid:
		turnSeed := cfg.Grid.TurnSeed
		if turnSeed == 0 {
			turnSeed = cfg.Seed
		}
		g, err := mobility.NewGrid(cfg.Grid.Rows, cfg.Grid.Cols, cfg.Grid.SpacingM, cfg.RSURadiusM, turnSeed)
		if err != nil {
			return nil, err
		}
		world = g
	}
	s := &Simulator{
		cfg:       cfg,
		world:     world,
		byID:      make(map[int]*vehState, cfg.Vehicles),
		tracker:   mobility.NewObserveTracker(),
		alloc:     channel.NewOFDMAAllocator(cfg.BMaxMHz),
		tracer:    trace.NewTracer(cfg.TraceWriter),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		baseClass: VehicleClass{}.resolve(cfg),
		inFlight:  make(map[int]bool, cfg.Vehicles),
	}
	if cfg.Churn.Enabled() {
		seed := cfg.Churn.Seed
		if seed == 0 {
			seed = churnSeedFrom(cfg.Seed)
		}
		s.churnRng = rand.New(mathx.NewCountingSource(seed))
	}
	for _, cl := range cfg.Classes {
		s.classes = append(s.classes, cl.resolve(cfg))
		s.classWeightSum += cl.Weight
		s.classAcc = append(s.classAcc, s.classWeightSum)
	}
	if len(cfg.Outages) > 0 {
		s.down = make([]bool, world.RSUCount())
		s.outageOn = make([]bool, len(cfg.Outages))
	}
	if cfg.Shards.Enabled() {
		s.shards = make([]simShard, cfg.Shards.Regions)
	}
	servers := make([]*rsu.Server, world.RSUCount())
	for i := range servers {
		srv, err := rsu.NewServer(i, cfg.RSUCapacity)
		if err != nil {
			return nil, err
		}
		servers[i] = srv
	}
	cluster, err := rsu.NewCluster(servers, rsu.PlaceLeastLoaded)
	if err != nil {
		return nil, err
	}
	s.cluster = cluster

	for i := 0; i < cfg.Vehicles; i++ {
		s.spawnVehicle(s.rng)
	}
	s.report.PricerName = cfg.Pricer.Name()
	return s, nil
}

// pickClass selects the spawn's population: no draw at all for a
// homogeneous fleet, one weighted draw otherwise.
func (s *Simulator) pickClass(rng *rand.Rand) resolvedClass {
	if len(s.classes) == 0 {
		return s.baseClass
	}
	u := rng.Float64() * s.classWeightSum
	for i, acc := range s.classAcc {
		if u < acc {
			return s.classes[i]
		}
	}
	return s.classes[len(s.classes)-1]
}

// spawnVehicle creates one vehicle drawing its class, spawn state, and
// profile from rng — the main stream for the initial fleet, the churn
// stream for arrivals. The draw order (position, speed, memory, alpha)
// is part of the determinism contract: reordering it would shift every
// later draw and break the committed goldens.
func (s *Simulator) spawnVehicle(rng *rand.Rand) *vehState {
	cls := s.pickClass(rng)
	v := &mobility.Vehicle{ID: s.nextVehID}
	s.nextVehID++
	s.world.Place(v, rng)
	v.SpeedMps = cls.speedMin + rng.Float64()*(cls.speedMax-cls.speedMin)
	memory := cls.memMin + rng.Float64()*(cls.memMax-cls.memMin)
	st := &vehState{
		v: v,
		prof: vmuProfile{
			alpha: cls.alphaMin + rng.Float64()*(cls.alphaMax-cls.alphaMin),
			vt: migration.VTSpec{
				ConfigMB:      0.05 * memory,
				MemoryMB:      0.85 * memory,
				StateMB:       0.10 * memory,
				DirtyRateMBps: s.cfg.DirtyRateMBps,
			},
		},
		// Bounded: a vehicle's sensing history compacts past 64
		// breakpoints, keeping fleet memory flat in simulated time.
		// Bit-identical to the unbounded process because the sim only
		// queries AverageAge at the monotone sim clock.
		sensing:        aoi.NewBoundedProcess(s.now, 64),
		nextUpdate:     s.now + cls.sensingPeriodS,
		sensingPeriodS: cls.sensingPeriodS,
		arrivedAt:      s.now,
		departAt:       math.Inf(1),
	}
	if s.churnRng != nil {
		st.departAt = s.now + s.churnRng.ExpFloat64()*s.cfg.Churn.MeanDwellS
	}
	s.vehicles = append(s.vehicles, st)
	s.byID[v.ID] = st
	if s.shards != nil {
		// Home the spawn into the region of its serving RSU. The lookup
		// is pure (no rng draws), so sharded and serial runs consume
		// identical random streams.
		rsuID, _ := s.world.ServingRSU(v, s.downNow)
		st.stagedRSU = rsuID
		st.region = s.regionOf(rsuID)
		s.shards[st.region].residents = append(s.shards[st.region].residents, st)
	}
	return st
}

// Run executes the full configured duration and returns the aggregated
// report. It is exactly RunFor(DurationS) followed by Finish — callers
// that need to pause mid-run (e.g. to snapshot and swap an online
// pricer) drive those pieces themselves.
func (s *Simulator) Run() Report {
	s.RunFor(s.cfg.DurationS)
	return s.Finish()
}

// Step advances the simulation by one time step: completions drain,
// outages toggle, churn arrives and departs, vehicles move, sensing
// updates deliver, handovers queue, and at most one pricing round runs.
//
// The vehicle phase (kinematics, sensing delivery, staged serving-RSU
// lookup) is the only part that parallelizes under region sharding;
// everything before and after it is serial in both modes, and the phase
// itself touches only per-vehicle state and per-vehicle RNG streams, so
// the sharded and serial simulators are bit-identical (rule 7).
func (s *Simulator) Step() {
	s.now += s.cfg.TimeStepS
	s.drainCompletions()
	s.applyOutages()
	s.processChurn()
	if s.shards != nil {
		s.stepShards()
		s.applyHandoffs()
	} else {
		s.stepVehiclesSerial()
	}
	s.collectHandovers()
	s.runPricingRound()
}

// runForEpsilon is the relative tolerance within which a span quotient is
// treated as a whole number of steps. Spans that are exact multiples of
// TimeStepS in real arithmetic can land just below the integer in floats
// (1800/0.3 = 5999.999…), and plain truncation would silently drop the
// final step.
const runForEpsilon = 1e-9

// RunFor advances the simulation by the given span of simulated time,
// rounded down to whole steps — where "whole" tolerates float rounding:
// a quotient within a relative 1e-9 of the next integer counts as
// reaching it. Splitting a run into several RunFor calls whose spans are
// individually whole multiples of TimeStepS is bit-identical to one call
// over the total, for fractional step sizes too.
func (s *Simulator) RunFor(seconds float64) {
	q := seconds / s.cfg.TimeStepS
	steps := int(q)
	if next := float64(steps + 1); q >= next-runForEpsilon*next {
		steps++
	}
	for i := 0; i < steps; i++ {
		s.Step()
	}
}

// Finish flushes migrations still in flight at the horizon, finalizes
// the aggregate statistics, and returns the report. Call it once, after
// the last Step/RunFor.
func (s *Simulator) Finish() Report {
	for s.completions.Len() > 0 {
		s.finish(heap.Pop(&s.completions).(completion))
	}
	s.finalizeReport()
	return s.report
}

// Now returns the current simulated time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// SetPricer swaps the pricing strategy between steps — the hook behind
// simulation-level resume: snapshot an online pricer at an
// optimization-phase boundary, rebuild it from the checkpoint
// (NewOnlinePricerFromCheckpoint), swap it in, and the remaining steps
// are bit-identical to never having swapped (determinism contract
// rule 6). The report keeps counting across the swap; only the pricer
// name is refreshed.
func (s *Simulator) SetPricer(p Pricer) error {
	if p == nil {
		return fmt.Errorf("sim: cannot swap in a nil pricer")
	}
	s.cfg.Pricer = p
	s.report.PricerName = p.Name()
	return nil
}

// drainCompletions completes every migration whose finish time has passed.
func (s *Simulator) drainCompletions() {
	for s.completions.Len() > 0 && s.completions[0].at <= s.now {
		s.finish(heap.Pop(&s.completions).(completion))
	}
}

// finish releases the bandwidth grant, moves the twin's edge placement,
// and records the migration.
func (s *Simulator) finish(c completion) {
	if err := s.alloc.Release(c.record.VehicleID); err != nil {
		// A release failure indicates corrupted accounting; the simulator
		// cannot continue meaningfully.
		panic(fmt.Sprintf("sim: releasing grant for vehicle %d: %v", c.record.VehicleID, err))
	}
	delete(s.inFlight, c.record.VehicleID)
	if s.cluster.Locate(c.record.VehicleID) != c.record.ToRSU {
		if err := s.cluster.MigrateTwin(c.record.VehicleID, c.record.ToRSU); err != nil {
			// Destination edge server is full: the twin stays at the
			// source and keeps being served remotely.
			s.report.PlacementFailures++
		}
	}
	s.emit(trace.Event{
		TimeS: s.now, Kind: trace.KindMigrationComplete, Vehicle: c.record.VehicleID,
		FromRSU: c.record.FromRSU, ToRSU: c.record.ToRSU, Bandwidth: c.record.BandwidthMHz, AoTM: c.record.AoTM,
	})
	// Streaming aggregates, accumulated in completion order with exactly
	// the arithmetic of mathx.Mean/MinMax over the record slice: sums
	// start at zero and add per-record terms in order, the max seeds from
	// the first record and updates on strict >.
	if s.report.Completed == 0 || c.record.AoTM > s.aotmMax {
		s.aotmMax = c.record.AoTM
	}
	s.aotmSum += c.record.AoTM
	s.utilSum += c.record.VMUUtility
	s.report.Completed++
	if !s.cfg.DiscardMigrationRecords {
		s.report.Migrations = append(s.report.Migrations, c.record)
	}
}

// applyOutages recomputes which RSUs are down and traces window edges.
func (s *Simulator) applyOutages() {
	if len(s.cfg.Outages) == 0 {
		return
	}
	for i := range s.down {
		s.down[i] = false
	}
	anyDown := false
	for wi, w := range s.cfg.Outages {
		active := s.now >= w.StartS && s.now < w.EndS
		if active {
			s.down[w.RSU] = true
			anyDown = true
		}
		if active != s.outageOn[wi] {
			s.outageOn[wi] = active
			kind := trace.KindOutageStart
			if !active {
				kind = trace.KindOutageEnd
			}
			s.emit(trace.Event{TimeS: s.now, Kind: kind, Vehicle: -1, FromRSU: w.RSU, ToRSU: w.RSU})
		}
	}
	// An all-false mask selects exactly like a nil one, and nil keeps the
	// serving-RSU fast path live outside active windows.
	s.downNow = nil
	if anyDown {
		s.downNow = s.down
	}
}

// night reports whether the demand cycle is in its night phase.
func (s *Simulator) night() bool {
	d := s.cfg.Demand
	if !d.Enabled() {
		return false
	}
	return math.Mod(s.now, d.PeriodS) >= d.DayFraction*d.PeriodS
}

// poissonDraw samples Poisson(lambda) with Knuth's product method. The
// rate is clamped to 100 expected events per draw: beyond that the
// product underflows, and per-step arrival bursts of that size are
// outside the simulator's regime anyway.
func poissonDraw(rng *rand.Rand, lambda float64) int {
	if !(lambda > 0) {
		return 0
	}
	if lambda > 100 {
		lambda = 100
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// processChurn retires vehicles whose dwell expired and spawns Poisson
// arrivals, all from the dedicated churn stream. Departures are deferred
// while the vehicle's migration is in flight so accounting stays whole.
func (s *Simulator) processChurn() {
	if s.churnRng == nil {
		return
	}
	kept := s.vehicles[:0]
	for _, st := range s.vehicles {
		if st.departAt <= s.now && !s.inFlight[st.v.ID] {
			s.depart(st)
			continue
		}
		kept = append(kept, st)
	}
	s.vehicles = kept
	arrivals := poissonDraw(s.churnRng, s.cfg.Churn.ArrivalRatePerS*s.cfg.TimeStepS)
	for i := 0; i < arrivals; i++ {
		if s.cfg.Churn.MaxVehicles > 0 && len(s.vehicles) >= s.cfg.Churn.MaxVehicles {
			break
		}
		st := s.spawnVehicle(s.churnRng)
		s.report.Arrivals++
		s.emit(trace.Event{TimeS: s.now, Kind: trace.KindArrival, Vehicle: st.v.ID})
	}
}

// depart removes one vehicle: its twin is evicted, its serving state
// forgotten, its queued migrations dropped, and its sensing stream's
// lifetime average banked for the report.
func (s *Simulator) depart(st *vehState) {
	id := st.v.ID
	if s.cluster.Locate(id) >= 0 {
		if err := s.cluster.Evict(id); err != nil {
			panic(fmt.Sprintf("sim: evicting twin of departing vehicle %d: %v", id, err))
		}
	}
	s.tracker.Forget(id)
	pending := s.pending[:0]
	for _, pm := range s.pending {
		if pm.vehicleID != id {
			pending = append(pending, pm)
		}
	}
	s.pending = pending
	if s.now > st.arrivedAt {
		s.departedAoISum += st.sensing.AverageAge(s.now)
		s.departedAoICount++
	}
	if s.shards != nil {
		s.removeResident(st)
	}
	delete(s.byID, id)
	s.report.Departures++
	s.emit(trace.Event{TimeS: s.now, Kind: trace.KindDeparture, Vehicle: id})
}

// moveDt is the kinematics step span; the night phase of a demand cycle
// scales speeds down (less migration demand).
func (s *Simulator) moveDt(night bool) float64 {
	dt := s.cfg.TimeStepS
	if night {
		dt *= s.cfg.Demand.NightSpeedFactor
	}
	return dt
}

// stepVehicle advances one vehicle's per-tick independent state: its
// kinematics, its sensing stream, and its staged serving RSU. Everything
// here reads shared state (inFlight, downNow, the demand phase) without
// writing it and draws randomness only from the vehicle's private turn
// stream, so vehicles can be stepped in any order — or concurrently on
// region shards — with bit-identical results. Sensing failures are
// returned rather than panicked so shard workers can surface them on the
// stepping goroutine.
func (s *Simulator) stepVehicle(st *vehState, moveDt float64, night bool) error {
	s.world.Advance(st.v, moveDt)
	for st.nextUpdate <= s.now {
		gen := st.nextUpdate
		period := st.sensingPeriodS
		if night {
			period *= s.cfg.Demand.NightSensingFactor
		}
		st.nextUpdate += period
		if gen >= st.pausedFrom && gen < st.pausedUntil && st.pausedUntil > 0 {
			continue // twin paused: update lost
		}
		if err := st.sensing.Deliver(gen, gen+s.cfg.SensingDelayS); err != nil {
			return fmt.Errorf("sim: sensing delivery for vehicle %d: %v", st.v.ID, err)
		}
	}
	if !s.inFlight[st.v.ID] {
		// Stage the serving RSU for the serial handover collection. The
		// lookup is pure, so computing it here instead of inside
		// collectHandovers changes nothing numerically.
		st.stagedRSU, _ = s.world.ServingRSU(st.v, s.downNow)
	}
	return nil
}

// stepVehiclesSerial is the unsharded vehicle phase: every vehicle in
// fleet order on the stepping goroutine.
func (s *Simulator) stepVehiclesSerial() {
	night := s.night()
	dt := s.moveDt(night)
	for _, st := range s.vehicles {
		if err := s.stepVehicle(st, dt, night); err != nil {
			panic(err.Error())
		}
	}
}

// collectHandovers queues a pending migration for every handover of a
// vehicle that is not already migrating. It runs serially over the fleet
// in global vehicle order, consuming the serving RSUs staged by the
// vehicle phase — the fixed-order merge that keeps sharded runs
// bit-identical to serial ones (rule 7's analogue of rule 3).
//
// A vehicle can hand over again while an earlier migration of its sits
// deferred (bandwidth exhausted or a failed round) — common once fleets
// outgrow the pool. The queued migration is then retargeted to the new
// destination instead of queueing a second entry: the twin is still at
// the original source, and a duplicate would put the same VMU into one
// Stackelberg round twice (which the game rejects).
func (s *Simulator) collectHandovers() {
	if s.pendingIdx == nil {
		s.pendingIdx = make(map[int]int, len(s.pending))
	}
	clear(s.pendingIdx)
	for i, pm := range s.pending {
		s.pendingIdx[pm.vehicleID] = i
	}
	for _, st := range s.vehicles {
		v := st.v
		if s.inFlight[v.ID] {
			continue // twin already moving; re-evaluate after completion
		}
		ho, changed := s.tracker.Observe(v.ID, st.stagedRSU)
		if !changed {
			continue
		}
		if ho.FromRSU < 0 {
			// First attach: deploy the twin on the serving RSU's edge
			// server, falling back to the least-loaded server when full.
			req := s.twinRequirement(v.ID)
			// Try variants rather than the error-returning ones: outage
			// recovery at fleet scale re-attaches thousands of vehicles
			// per tick, and the rejection errors dominated allocations.
			if !s.cluster.TryPlaceOn(v.ID, ho.ToRSU, req) {
				if _, ok := s.cluster.TryPlace(v.ID, req); !ok {
					s.report.PlacementFailures++
				}
			}
			continue
		}
		s.report.Handovers++
		s.emit(trace.Event{TimeS: s.now, Kind: trace.KindHandover, Vehicle: v.ID, FromRSU: ho.FromRSU, ToRSU: ho.ToRSU})
		if i, ok := s.pendingIdx[v.ID]; ok {
			s.pending[i].toRSU = ho.ToRSU
			continue
		}
		s.pendingIdx[v.ID] = len(s.pending)
		s.pending = append(s.pending, pendingMigration{
			vehicleID: v.ID,
			fromRSU:   ho.FromRSU,
			toRSU:     ho.ToRSU,
		})
	}
}

// runPricingRound runs one Stackelberg round over all pending migrations.
func (s *Simulator) runPricingRound() {
	if len(s.pending) == 0 {
		return
	}
	if s.cfg.PricingFailureRate > 0 && s.rng.Float64() < s.cfg.PricingFailureRate {
		// Control-plane failure: everything retries next step.
		s.report.FailedRounds++
		s.report.Deferred += len(s.pending)
		s.emit(trace.Event{TimeS: s.now, Kind: trace.KindPricingFailure, Vehicle: -1, Participants: len(s.pending)})
		return
	}

	batch := s.pending
	s.pending = s.pending[:0]

	game := s.buildGame(batch)
	price := mathx.Clamp(s.cfg.Pricer.PriceFor(game), game.Cost, game.PMax)
	if math.IsNaN(price) {
		// Clamp passes NaN through, and a NaN price would flow into NaN
		// demands that corrupt the allocator's accounting unchecked
		// (NaN passes every <= comparison on the allocation path).
		panic(fmt.Sprintf("sim: t=%.3fs: pricer %q returned NaN for a %d-VMU round",
			s.now, s.cfg.Pricer.Name(), game.N()))
	}
	s.report.PricingRounds++
	s.emit(trace.Event{TimeS: s.now, Kind: trace.KindPricingRound, Vehicle: -1, Price: price, Participants: len(batch)})

	// Followers best-respond, batched through the mat vector kernels over
	// the whole round instead of a per-vehicle loop (bit-identical to the
	// loop form); the remaining pool bounds this round.
	if cap(s.demandScratch) < game.N() {
		s.demandScratch = make([]float64, game.N())
	}
	demands := game.BestResponsesBatchInto(&s.evalScratch, s.demandScratch[:game.N()], price)
	avail := s.alloc.Available()
	if math.IsNaN(avail) || avail < 0 {
		panic(fmt.Sprintf("sim: t=%.3fs: bandwidth pool accounting corrupt: %g MHz available of %g",
			s.now, avail, s.alloc.Capacity()))
	}
	scale := channel.ScaleDemandsInPlace(demands, math.Max(avail, 1e-12))

	for i, pm := range batch {
		bw := demands[i]
		if math.IsNaN(bw) || math.IsInf(bw, 0) {
			// A garbage scale result must not reach the allocator: treat it
			// like the other corrupted-accounting paths instead of letting
			// Allocate absorb a NaN into the shared pool.
			panic(fmt.Sprintf("sim: t=%.3fs: scaling %d demands into %g MHz produced %g for vehicle %d (scale %g)",
				s.now, len(batch), avail, bw, pm.vehicleID, scale))
		}
		if bw <= 0 {
			s.report.OptedOut++
			continue
		}
		if !s.alloc.TryAllocate(pm.vehicleID, bw) {
			// Pool exhausted by earlier grants in this batch: retry later.
			// (TryAllocate rather than Allocate: at fleet scale thousands
			// of grants defer per tick, and the rejection errors were the
			// round's dominant allocation.)
			s.pending = append(s.pending, pm)
			s.report.Deferred++
			s.emit(trace.Event{TimeS: s.now, Kind: trace.KindDeferred, Vehicle: pm.vehicleID})
			continue
		}
		s.launchMigration(pm, game, i, price, bw)
	}
}

// buildGame assembles the round's Stackelberg game into the simulator's
// reused game value — no per-round VMU slice or validation map, so round
// cost is flat in fleet size. The channel distance is the mean
// source–destination RSU distance of the batch.
//
// The full NewGame validation is replaced by the two checks that can
// actually fail here: per-VMU α and D are positive by construction (the
// config ranges are validated at New), and Cost/PMax were checked there
// too, leaving the channel parameters and the duplicate-id guard —
// enforced with a reused set so the panic behavior matches the former
// NewGame path exactly. No pricer retains the *Game past its PriceFor
// call (they evaluate or solve it within the round), so handing every
// round the same address is safe.
func (s *Simulator) buildGame(batch []pendingMigration) *stackelberg.Game {
	ch := s.cfg.Channel
	var dist float64
	for _, pm := range batch {
		dist += s.world.RSUDistance(pm.fromRSU, pm.toRSU)
	}
	if d := dist / float64(len(batch)); d > 0 {
		ch.DistanceM = d
	}
	if err := ch.Validate(); err != nil {
		panic(fmt.Sprintf("sim: building round game: %v", err))
	}
	if cap(s.vmuScratch) < len(batch) {
		s.vmuScratch = make([]stackelberg.VMU, len(batch))
	}
	if s.seenScratch == nil {
		s.seenScratch = make(map[int]bool, len(batch))
	}
	clear(s.seenScratch)
	vmus := s.vmuScratch[:len(batch)]
	for i, pm := range batch {
		if s.seenScratch[pm.vehicleID] {
			panic(fmt.Sprintf("sim: building round game: stackelberg: duplicate VMU id %d", pm.vehicleID))
		}
		s.seenScratch[pm.vehicleID] = true
		prof := s.byID[pm.vehicleID].prof
		vmus[i] = stackelberg.VMU{
			ID:       pm.vehicleID,
			Alpha:    prof.alpha,
			DataSize: aotm.FromMB(prof.vt.BaseSizeMB()),
		}
	}
	s.roundGame = stackelberg.Game{
		VMUs:    vmus,
		Channel: ch,
		Cost:    s.cfg.Cost,
		PMax:    s.cfg.PMax,
		// The round's capacity is what is left in the shared pool.
		BMax: s.alloc.Available(),
	}
	return &s.roundGame
}

// launchMigration runs the pre-copy model and schedules completion.
func (s *Simulator) launchMigration(pm pendingMigration, game *stackelberg.Game, idx int, price, bw float64) {
	st := s.byID[pm.vehicleID]
	prof := st.prof
	// Rate: γ = b·e is in model data units (100 MB) per second.
	rateMBps := game.Channel.Rate(bw) * aotm.DataUnit100MB
	res, err := migration.Simulate(prof.vt, rateMBps, migration.DefaultConfig())
	if err != nil {
		panic(fmt.Sprintf("sim: migrating vehicle %d: %v", pm.vehicleID, err))
	}
	age := aotm.AoTMForBandwidth(aotm.FromMB(prof.vt.BaseSizeMB()), bw, game.Channel)
	rec := MigrationRecord{
		VehicleID:        pm.vehicleID,
		StartS:           s.now,
		FromRSU:          pm.fromRSU,
		ToRSU:            pm.toRSU,
		Price:            price,
		BandwidthMHz:     bw,
		AoTM:             age,
		DataMovedMB:      res.TotalDataMB,
		DowntimeS:        res.DowntimeS,
		DurationS:        res.TotalTimeS,
		VMUUtility:       game.VMUUtility(idx, bw, price),
		MSPProfit:        (price - game.Cost) * bw,
		PreCopyConverged: res.Converged,
	}
	s.inFlight[pm.vehicleID] = true
	s.emit(trace.Event{
		TimeS: s.now, Kind: trace.KindMigrationStart, Vehicle: pm.vehicleID,
		FromRSU: pm.fromRSU, ToRSU: pm.toRSU, Price: price, Bandwidth: bw, AoTM: age,
	})
	// Sensing updates are lost while the twin is paused (stop-and-copy).
	st.pausedFrom = s.now + res.TotalTimeS - res.DowntimeS
	st.pausedUntil = s.now + res.TotalTimeS
	heap.Push(&s.completions, completion{at: s.now + res.TotalTimeS, record: rec})
	s.report.MSPRevenue += rec.MSPProfit
}

// twinRequirement derives a twin's edge-resource footprint from its
// memory size: bigger twins need proportionally more of everything.
func (s *Simulator) twinRequirement(vehicleID int) rsu.Resources {
	memGB := s.byID[vehicleID].prof.vt.BaseSizeMB() / 1024
	return rsu.Resources{
		CPU:       1 + memGB,
		GPU:       0.5,
		MemoryGB:  2 * memGB,
		StorageGB: 4 * memGB,
	}
}

// finalizeReport computes the aggregate statistics. The sensing-AoI mean
// covers every vehicle that lived a positive span: departed vehicles
// contribute their banked lifetime averages, active ones their average up
// to the horizon.
func (s *Simulator) finalizeReport() {
	s.report.SimulatedS = s.now
	sumAoI := s.departedAoISum
	included := s.departedAoICount
	for _, st := range s.vehicles {
		if s.now > st.arrivedAt {
			sumAoI += st.sensing.AverageAge(s.now)
			included++
		}
	}
	if included > 0 {
		s.report.MeanSensingAoI = sumAoI / float64(included)
	}
	if s.report.Completed == 0 {
		return
	}
	// The streaming sums were accumulated in completion order with
	// mathx.Mean/MinMax's exact arithmetic, so these divisions reproduce
	// the former slice-based aggregation bit for bit.
	s.report.MeanAoTM = s.aotmSum / float64(s.report.Completed)
	s.report.MaxAoTM = s.aotmMax
	s.report.MeanVMUUtility = s.utilSum / float64(s.report.Completed)
}

// emit writes a trace event, disabling tracing on a broken sink.
func (s *Simulator) emit(e trace.Event) {
	if err := s.tracer.Emit(e); err != nil {
		s.tracer = nil
	}
}
