package sim

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// shortConfig is a fast valid baseline for workload-dimension tests.
func shortConfig() Config {
	cfg := DefaultConfig()
	cfg.DurationS = 120
	cfg.Seed = 7
	return cfg
}

func runReport(t *testing.T, cfg Config) Report {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s.Run()
}

// reportsEqual compares the full report including every migration record.
func reportsEqual(a, b Report) bool {
	return reflect.DeepEqual(a, b)
}

func TestGridWorldSimulation(t *testing.T) {
	cfg := shortConfig()
	cfg.Mobility = MobilityGrid
	cfg.RSUCount = 0
	cfg.Grid = GridConfig{Rows: 3, Cols: 3, SpacingM: 400}
	cfg.RSURadiusM = 300
	rep := runReport(t, cfg)
	if rep.Handovers == 0 {
		t.Fatal("grid scenario produced no handovers")
	}
	if !reportsEqual(rep, runReport(t, cfg)) {
		t.Fatal("grid simulation is not deterministic for a fixed seed")
	}
}

func TestChurnArrivalsAndDepartures(t *testing.T) {
	cfg := shortConfig()
	cfg.DurationS = 300
	cfg.Churn = ChurnConfig{ArrivalRatePerS: 0.05, MeanDwellS: 60, MaxVehicles: 12}
	rep := runReport(t, cfg)
	if rep.Arrivals == 0 {
		t.Fatal("churn produced no arrivals over 300 s at rate 0.05/s")
	}
	if rep.Departures == 0 {
		t.Fatal("churn produced no departures with 60 s mean dwell")
	}
	if !reportsEqual(rep, runReport(t, cfg)) {
		t.Fatal("churn simulation is not deterministic for a fixed seed")
	}
	// The churn stream is separate from the main stream: the same run
	// with a different churn seed keeps the initial fleet's profiles (the
	// first pricing rounds match until populations diverge), while the
	// arrival pattern changes.
	cfg2 := cfg
	cfg2.Churn.Seed = 999
	rep2 := runReport(t, cfg2)
	if rep.Arrivals == rep2.Arrivals && rep.Departures == rep2.Departures && reportsEqual(rep, rep2) {
		t.Fatal("changing only Churn.Seed changed nothing — churn stream looks unused")
	}
}

func TestChurnMaxVehiclesCap(t *testing.T) {
	cfg := shortConfig()
	cfg.Vehicles = 4
	cfg.DurationS = 200
	cfg.Churn = ChurnConfig{ArrivalRatePerS: 1.0, MeanDwellS: 1e6, MaxVehicles: 6}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(cfg.DurationS)
	if got := len(s.vehicles); got > 6 {
		t.Fatalf("fleet grew to %d vehicles despite MaxVehicles 6", got)
	}
	rep := s.Finish()
	if rep.Arrivals != 2 {
		t.Fatalf("Arrivals = %d, want 2 (cap 6 minus initial 4, dwell effectively infinite)", rep.Arrivals)
	}
}

func TestOutagesForceRehoming(t *testing.T) {
	cfg := shortConfig()
	// One RSU down for most of the run: vehicles near it must attach
	// elsewhere, changing the handover pattern vs the outage-free run.
	cfg.Outages = []OutageWindow{{RSU: 2, StartS: 10, EndS: 100}}
	rep := runReport(t, cfg)
	base := cfg
	base.Outages = nil
	baseRep := runReport(t, base)
	if reportsEqual(rep, baseRep) {
		t.Fatal("scheduling an outage changed nothing")
	}
	for _, m := range rep.Migrations {
		if m.StartS >= 10 && m.StartS < 100 && m.ToRSU == 2 {
			t.Fatalf("migration at t=%g targets RSU 2 during its outage", m.StartS)
		}
	}
	if !reportsEqual(rep, runReport(t, cfg)) {
		t.Fatal("outage simulation is not deterministic for a fixed seed")
	}
}

func TestDemandCycleChangesWorkload(t *testing.T) {
	cfg := shortConfig()
	cfg.Demand = DemandConfig{PeriodS: 60, DayFraction: 0.5, NightSpeedFactor: 0.2, NightSensingFactor: 4}
	rep := runReport(t, cfg)
	base := cfg
	base.Demand = DemandConfig{}
	baseRep := runReport(t, base)
	if rep.Handovers >= baseRep.Handovers {
		t.Fatalf("night slowdown should cut handovers: %d with cycle, %d without", rep.Handovers, baseRep.Handovers)
	}
	if !reportsEqual(rep, runReport(t, cfg)) {
		t.Fatal("demand-cycle simulation is not deterministic for a fixed seed")
	}
}

func TestVehicleClassesResolveAndDraw(t *testing.T) {
	cfg := shortConfig()
	cfg.Vehicles = 12
	cfg.Classes = []VehicleClass{
		{Name: "sedan", Weight: 3},
		{Name: "sensor-truck", Weight: 1, SpeedMinMps: 8, SpeedMaxMps: 12, SensingPeriodS: 0.1, VTMemoryMinMB: 280, VTMemoryMaxMB: 300},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slow := 0
	for _, st := range s.vehicles {
		if st.v.SpeedMps <= 12 {
			slow++
			if st.sensingPeriodS != 0.1 {
				t.Fatalf("slow-class vehicle has sensing period %g, want the class override 0.1", st.sensingPeriodS)
			}
		} else if st.sensingPeriodS != cfg.SensingPeriodS {
			t.Fatalf("default-class vehicle has sensing period %g, want %g", st.sensingPeriodS, cfg.SensingPeriodS)
		}
	}
	if slow == 0 || slow == len(s.vehicles) {
		t.Fatalf("class mix degenerate: %d/%d slow vehicles", slow, len(s.vehicles))
	}
	rep := s.Run()
	if !reportsEqual(rep, runReport(t, cfg)) {
		t.Fatal("class-heterogeneous simulation is not deterministic for a fixed seed")
	}
}

func TestCombinedNonstationaryRun(t *testing.T) {
	cfg := shortConfig()
	cfg.Mobility = MobilityGrid
	cfg.RSUCount = 0
	cfg.Grid = GridConfig{Rows: 3, Cols: 3, SpacingM: 500}
	cfg.RSURadiusM = 350
	cfg.Churn = ChurnConfig{ArrivalRatePerS: 0.03, MeanDwellS: 80, MaxVehicles: 10}
	cfg.Outages = []OutageWindow{{RSU: 4, StartS: 20, EndS: 70}, {RSU: 0, StartS: 60, EndS: 110}}
	cfg.Demand = DemandConfig{PeriodS: 80, DayFraction: 0.6, NightSpeedFactor: 0.4, NightSensingFactor: 2}
	cfg.Classes = []VehicleClass{{Name: "a", Weight: 2}, {Name: "b", Weight: 1, AlphaMin: 15, AlphaMax: 20}}
	rep := runReport(t, cfg)
	if rep.PricingRounds == 0 {
		t.Fatal("combined non-stationary scenario priced nothing")
	}
	if !reportsEqual(rep, runReport(t, cfg)) {
		t.Fatal("combined non-stationary simulation is not deterministic for a fixed seed")
	}
}

// TestValidateNamedFieldErrors pins that every rejected field names
// itself in the error (the PR 6 convention).
func TestValidateNamedFieldErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"vehicles", func(c *Config) { c.Vehicles = 0 }, "Config.Vehicles"},
		{"speed", func(c *Config) { c.SpeedMinMps = -1 }, "Config.SpeedMinMps"},
		{"speed NaN", func(c *Config) { c.SpeedMinMps = math.NaN() }, "Config.SpeedMinMps"},
		{"time step", func(c *Config) { c.TimeStepS = 0 }, "Config.TimeStepS"},
		{"duration", func(c *Config) { c.DurationS = -1 }, "Config.DurationS"},
		{"alpha", func(c *Config) { c.AlphaMax = c.AlphaMin - 1 }, "Config.AlphaMin"},
		{"memory", func(c *Config) { c.VTMemoryMinMB = 0 }, "Config.VTMemoryMinMB"},
		{"failure rate", func(c *Config) { c.PricingFailureRate = 1.5 }, "Config.PricingFailureRate"},
		{"pricer", func(c *Config) { c.Pricer = nil }, "Config.Pricer"},
		{"prices", func(c *Config) { c.PMax = c.Cost }, "Config.Cost/PMax"},
		{"sensing period", func(c *Config) { c.SensingPeriodS = 0 }, "Config.SensingPeriodS"},
		{"sensing delay", func(c *Config) { c.SensingDelayS = -1 }, "Config.SensingDelayS"},
		{"highway length", func(c *Config) { c.HighwayLengthM = 0 }, "Config.HighwayLengthM"},
		{"rsu count", func(c *Config) { c.RSUCount = 0 }, "Config.RSUCount"},
		{"rsu radius", func(c *Config) { c.RSURadiusM = 0 }, "Config.RSURadiusM"},
		{"mobility kind", func(c *Config) { c.Mobility = "teleport" }, "Config.Mobility"},
		{"grid dims", func(c *Config) {
			c.Mobility = MobilityGrid
			c.RSUCount = 0
			c.Grid = GridConfig{Rows: 1, Cols: 3, SpacingM: 100}
		}, "Config.Grid"},
		{"grid spacing", func(c *Config) { c.Mobility = MobilityGrid; c.RSUCount = 0; c.Grid = GridConfig{Rows: 3, Cols: 3} }, "Config.Grid.SpacingM"},
		{"grid rsu mismatch", func(c *Config) { c.Mobility = MobilityGrid; c.Grid = GridConfig{Rows: 3, Cols: 3, SpacingM: 100} }, "Config.RSUCount"},
		{"class weight", func(c *Config) { c.Classes = []VehicleClass{{Name: "x"}} }, "Config.Classes[0]"},
		{"class range", func(c *Config) { c.Classes = []VehicleClass{{Name: "x", Weight: 1, SpeedMinMps: 5, SpeedMaxMps: 2}} }, "Config.Classes[0]"},
		{"churn rate", func(c *Config) { c.Churn.ArrivalRatePerS = -0.1 }, "Config.Churn.ArrivalRatePerS"},
		{"churn rate NaN", func(c *Config) { c.Churn.ArrivalRatePerS = math.NaN() }, "Config.Churn.ArrivalRatePerS"},
		{"churn dwell", func(c *Config) { c.Churn = ChurnConfig{ArrivalRatePerS: 0.1} }, "Config.Churn.MeanDwellS"},
		{"churn cap", func(c *Config) { c.Churn = ChurnConfig{ArrivalRatePerS: 0.1, MeanDwellS: 10, MaxVehicles: -1} }, "Config.Churn.MaxVehicles"},
		{"outage rsu", func(c *Config) { c.Outages = []OutageWindow{{RSU: 99, StartS: 0, EndS: 1}} }, "Config.Outages[0]"},
		{"outage window", func(c *Config) { c.Outages = []OutageWindow{{RSU: 0, StartS: 5, EndS: 5}} }, "Config.Outages[0]"},
		{"demand period", func(c *Config) { c.Demand.PeriodS = math.Inf(1) }, "Config.Demand.PeriodS"},
		{"demand fraction", func(c *Config) {
			c.Demand = DemandConfig{PeriodS: 60, DayFraction: 1, NightSpeedFactor: 1, NightSensingFactor: 1}
		}, "Config.Demand.DayFraction"},
		{"demand speed", func(c *Config) { c.Demand = DemandConfig{PeriodS: 60, DayFraction: 0.5, NightSensingFactor: 1} }, "Config.Demand.NightSpeedFactor"},
		{"demand sensing", func(c *Config) { c.Demand = DemandConfig{PeriodS: 60, DayFraction: 0.5, NightSpeedFactor: 1} }, "Config.Demand.NightSensingFactor"},
	}
	for _, c := range cases {
		cfg := DefaultConfig()
		c.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the broken config", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not name %q", c.name, err, c.want)
		}
	}
}
