package sim

import (
	"math"
	"testing"

	"vtmig/internal/nn"
	"vtmig/internal/pomdp"
	"vtmig/internal/rl"
	"vtmig/internal/stackelberg"
)

// onlineCfg returns a small online pricer configuration on the paper's
// benchmark game.
func onlineCfg() OnlinePricerConfig {
	ppo := rl.DefaultPPOConfig()
	ppo.MiniBatch = 10
	ppo.Epochs = 4
	return OnlinePricerConfig{
		Game:        stackelberg.DefaultGame(),
		HistoryLen:  3,
		PPO:         ppo,
		UpdateEvery: 10,
		Seed:        9,
	}
}

// TestOnlinePricerDrivesSimulation runs the end-to-end simulator with a
// cold-started online pricer: rounds are priced inside the action
// interval, learning updates actually fire, and the report stays
// consistent.
func TestOnlinePricerDrivesSimulation(t *testing.T) {
	pricer, err := NewOnlinePricer(onlineCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DurationS = 300
	cfg.Seed = 3
	cfg.Pricer = pricer
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Run()

	if rep.PricerName != "online-drl" {
		t.Fatalf("pricer name %q, want online-drl", rep.PricerName)
	}
	if rep.PricingRounds == 0 {
		t.Fatal("no pricing rounds executed")
	}
	if pricer.Rounds() != rep.PricingRounds {
		t.Fatalf("pricer learned from %d rounds, simulator ran %d", pricer.Rounds(), rep.PricingRounds)
	}
	if want := rep.PricingRounds / 10; pricer.Updates() != want {
		t.Fatalf("online updates %d, want %d (every 10 of %d rounds)", pricer.Updates(), want, rep.PricingRounds)
	}
	for _, m := range rep.Migrations {
		if m.Price < cfg.Cost || m.Price > cfg.PMax {
			t.Fatalf("vehicle %d priced at %g outside [%g, %g]", m.VehicleID, m.Price, cfg.Cost, cfg.PMax)
		}
		if math.IsNaN(m.AoTM) || m.AoTM < 0 {
			t.Fatalf("vehicle %d AoTM %g", m.VehicleID, m.AoTM)
		}
	}
	if math.IsInf(pricer.BestUtility(), -1) {
		t.Fatal("no live utility observed")
	}

	// Closing the stream learns from the trailing partial segment exactly
	// when one is pending.
	before := pricer.Updates()
	if _, ran := pricer.Flush(); ran != (rep.PricingRounds%10 != 0) {
		t.Fatalf("Flush ran=%v with %d rounds at cadence 10", ran, rep.PricingRounds)
	}
	if rep.PricingRounds%10 != 0 && pricer.Updates() != before+1 {
		t.Fatalf("Flush did not run an update (%d -> %d)", before, pricer.Updates())
	}
	if _, ran := pricer.Flush(); ran {
		t.Fatal("second Flush ran on an empty segment")
	}
	if pricer.UpdateEvery() != 10 {
		t.Fatalf("UpdateEvery %d, want 10", pricer.UpdateEvery())
	}
}

// TestOnlinePricerWarmStart pins that a warm-started pricer deploys the
// given agent (same instance) and keeps its observation interface.
func TestOnlinePricerWarmStart(t *testing.T) {
	game := stackelberg.DefaultGame()
	env, err := pomdp.NewGameEnv(pomdp.Config{
		Game: game, HistoryLen: 3, Rounds: 20, Reward: pomdp.RewardBinary, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := env.ActionBounds()
	ppo := rl.DefaultPPOConfig()
	ppo.Seed = 4
	agent := rl.NewPPO(env.ObsDim(), env.ActDim(), lo, hi, ppo)

	cfg := onlineCfg()
	cfg.Agent = agent
	pricer, err := NewOnlinePricer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pricer.Agent() != agent {
		t.Fatal("warm start did not deploy the given agent")
	}

	// An agent with the wrong observation dimension is rejected at
	// construction, not at the first round.
	bad := onlineCfg()
	bad.HistoryLen = 5
	bad.Agent = agent
	if _, err := NewOnlinePricer(bad); err == nil {
		t.Fatal("mismatched warm-start agent accepted")
	}
}

// TestOnlinePricerSnapshotHook pins the mid-run snapshot cadence: with
// SnapshotEvery=2, OnSnapshot fires after every second optimization phase
// with a full checkpoint whose restore reproduces the learner's state at
// that phase boundary — the last snapshot's weights match the live
// agent's current weights when the final phase was a snapshot phase.
func TestOnlinePricerSnapshotHook(t *testing.T) {
	var snaps []*nn.Checkpoint
	cfg := onlineCfg()
	cfg.SnapshotEvery = 2
	cfg.OnSnapshot = func(ck *nn.Checkpoint) { snaps = append(snaps, ck) }
	pricer, err := NewOnlinePricer(cfg)
	if err != nil {
		t.Fatal(err)
	}

	game := stackelberg.DefaultGame()
	const rounds = 60 // 6 phases at UpdateEvery=10 → snapshots after phases 2, 4, 6
	for k := 0; k < rounds; k++ {
		pricer.PriceFor(game)
	}
	if pricer.Updates() != 6 {
		t.Fatalf("ran %d phases, want 6", pricer.Updates())
	}
	if len(snaps) != 3 || pricer.Snapshots() != 3 {
		t.Fatalf("took %d snapshots (%d reported), want 3", len(snaps), pricer.Snapshots())
	}
	for i, ck := range snaps {
		if ck.Opt == nil || ck.RNG == nil {
			t.Fatalf("snapshot %d is not a full checkpoint", i)
		}
	}

	// The last phase (6) was a snapshot phase and no rounds followed, so
	// restoring the last snapshot must reproduce the live agent exactly.
	restored := rl.NewPPO(cfg.HistoryLen*(1+game.N()), 1, []float64{game.Cost}, []float64{game.PMax}, cfg.PPO)
	if err := restored.Restore(snaps[2]); err != nil {
		t.Fatal(err)
	}
	live, got := pricer.Agent().Params(), restored.Params()
	for i := range live {
		for j := range live[i].Value {
			if math.Float64bits(live[i].Value[j]) != math.Float64bits(got[i].Value[j]) {
				t.Fatalf("restored snapshot param %q[%d] differs from live agent", live[i].Name, j)
			}
		}
	}

	// A Flush that runs a phase counts toward the cadence.
	pricer.PriceFor(game)
	pricer.PriceFor(game) // phase 7 pending after 2 rounds
	for k := 0; k < 8; k++ {
		pricer.PriceFor(game)
	}
	if _, ran := pricer.Flush(); ran {
		t.Fatal("nothing pending but Flush ran a phase")
	}
	pricer.PriceFor(game)
	if _, ran := pricer.Flush(); !ran {
		t.Fatal("Flush did not close the partial segment")
	}
	if pricer.Updates() != 8 || pricer.Snapshots() != 4 {
		t.Fatalf("after flush: %d phases, %d snapshots; want 8 and 4", pricer.Updates(), pricer.Snapshots())
	}
}

// TestOnlinePricerConfigValidation pins that broken configurations error
// rather than panic.
func TestOnlinePricerConfigValidation(t *testing.T) {
	bad := []OnlinePricerConfig{
		{},                          // nil game
		{Game: &stackelberg.Game{}}, // invalid game
		{Game: stackelberg.DefaultGame(), HistoryLen: -1},               // bad L
		{Game: stackelberg.DefaultGame(), UpdateEvery: -5},              // bad |I|
		{Game: stackelberg.DefaultGame(), Reward: pomdp.RewardKind(99)}, // bad reward
		{Game: stackelberg.DefaultGame(), SnapshotEvery: -1},            // bad cadence
		{Game: stackelberg.DefaultGame(), SnapshotEvery: 3},             // cadence without callback
	}
	for i, cfg := range bad {
		if _, err := NewOnlinePricer(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	// The zero-value conveniences resolve to a usable default.
	if err := (OnlinePricerConfig{Game: stackelberg.DefaultGame()}).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

// TestOnlinePricerLearnsTowardOracle is the subsystem's aha check: on a
// stream of identical rounds, a cold-started online pricer's posted price
// must move toward the closed-form equilibrium price relative to where it
// started. The game widens the benchmark's price interval to [5, 150] so
// the cold policy starts far from the optimum on a part of the utility
// curve with real slope (the benchmark's own [5, 50] interval is nearly
// flat above the equilibrium, leaving no learnable signal within a
// test-sized budget).
func TestOnlinePricerLearnsTowardOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("online training test skipped in -short mode")
	}
	game := stackelberg.DefaultGame()
	game.PMax = 150
	cfg := onlineCfg()
	cfg.Game = game
	cfg.UpdateEvery = 20
	cfg.PPO.MiniBatch = 20
	cfg.PPO.LR = 1e-3 // test-sized budget: learn fast
	pricer, err := NewOnlinePricer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle := game.Solve().Price
	first := pricer.PriceFor(game)
	const rounds, tail = 2000, 100
	var tailSum float64
	for k := 0; k < rounds; k++ {
		price := pricer.PriceFor(game)
		if k >= rounds-tail {
			tailSum += price
		}
	}
	late := tailSum / tail
	if gotErr, startErr := math.Abs(late-oracle), math.Abs(first-oracle); gotErr >= startErr {
		t.Fatalf("price did not move toward the oracle: start %.3f, late mean %.3f, oracle %.3f", first, late, oracle)
	}
}
