package sim

import (
	"fmt"
	"sync"
)

// This file implements region sharding: the RSU lattice is split into
// contiguous index ranges ("regions"), each vehicle resides in the region
// of its serving RSU, and the per-tick vehicle phase steps every region's
// residents on its own goroutine. Vehicles whose staged serving RSU left
// their region are queued on per-shard outboxes and re-homed at the tick
// boundary in fixed shard-index order, so shard membership — like every
// other piece of simulator state — evolves identically for every region
// count. The phase itself is pure per-vehicle work (see stepVehicle), so
// any Regions × GOMAXPROCS combination is bit-identical to the serial
// simulator: determinism contract rule 7.

// simShard is one region's stepping state. residents holds the vehicles
// homed in the region in arrival-within-region order (the order is
// internal only — the serial merge in collectHandovers walks the global
// fleet slice, never the shards). outbox collects the tick's outbound
// handoffs in resident order, and err captures the first per-vehicle
// failure so the stepping goroutine can re-panic it deterministically.
type simShard struct {
	residents []*vehState
	outbox    []*vehState
	err       error
}

// regionOf maps an RSU id to its region: contiguous blocks of the RSU
// index space, balanced to within one RSU. The -1 "unserved" sentinel
// homes into region 0. For 0 ≤ id < RSUCount the result is provably in
// [0, Regions): id·R/M < R because id < M.
func (s *Simulator) regionOf(rsuID int) int {
	if rsuID < 0 {
		return 0
	}
	return rsuID * len(s.shards) / s.world.RSUCount()
}

// stepShards runs the sharded vehicle phase: one goroutine per non-empty
// region, each stepping its residents in resident order. A vehicle whose
// new staged RSU maps outside its region is queued on the shard's outbox;
// in-flight vehicles keep their pre-migration home until the completed
// migration's serving RSU is staged. Errors are captured per shard and
// re-raised here in shard-index order, so a failing run panics with the
// same message regardless of goroutine scheduling.
func (s *Simulator) stepShards() {
	night := s.night()
	dt := s.moveDt(night)
	var wg sync.WaitGroup
	for i := range s.shards {
		sh := &s.shards[i]
		sh.outbox = sh.outbox[:0]
		sh.err = nil
		if len(sh.residents) == 0 {
			continue
		}
		wg.Add(1)
		go func(region int, sh *simShard) {
			defer wg.Done()
			for _, st := range sh.residents {
				if err := s.stepVehicle(st, dt, night); err != nil {
					if sh.err == nil {
						sh.err = err
					}
					continue
				}
				if s.inFlight[st.v.ID] {
					continue // staged RSU frozen while the twin moves
				}
				if s.regionOf(st.stagedRSU) != region {
					sh.outbox = append(sh.outbox, st)
				}
			}
		}(i, sh)
	}
	wg.Wait()
	for i := range s.shards {
		if err := s.shards[i].err; err != nil {
			panic(err.Error())
		}
	}
}

// applyHandoffs drains every shard's outbox in shard-index order (and
// each outbox in resident order), moving each vehicle to the region of
// its staged serving RSU. The fixed drain order makes resident-list
// contents a pure function of simulation history, independent of how the
// shard goroutines were scheduled.
func (s *Simulator) applyHandoffs() {
	for i := range s.shards {
		for _, st := range s.shards[i].outbox {
			s.removeResident(st)
			st.region = s.regionOf(st.stagedRSU)
			s.shards[st.region].residents = append(s.shards[st.region].residents, st)
		}
		s.shards[i].outbox = s.shards[i].outbox[:0]
	}
}

// removeResident detaches a vehicle from its current region's resident
// list, preserving the order of the remaining residents. A vehicle absent
// from its tagged region means conservation is already broken, which the
// simulator must not paper over.
func (s *Simulator) removeResident(st *vehState) {
	residents := s.shards[st.region].residents
	for i, r := range residents {
		if r == st {
			s.shards[st.region].residents = append(residents[:i], residents[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("sim: vehicle %d not resident in its region %d", st.v.ID, st.region))
}

// checkShardInvariants verifies migration conservation across the shard
// partition: every active vehicle resides in exactly one region, its
// region tag matches the list holding it, and no retired vehicle
// lingers. The fuzz and race layers call it between steps.
func (s *Simulator) checkShardInvariants() error {
	if s.shards == nil {
		return nil
	}
	seen := make(map[int]int, len(s.vehicles))
	total := 0
	for region := range s.shards {
		for _, st := range s.shards[region].residents {
			id := st.v.ID
			if prev, dup := seen[id]; dup {
				return fmt.Errorf("vehicle %d resident in regions %d and %d", id, prev, region)
			}
			seen[id] = region
			if st.region != region {
				return fmt.Errorf("vehicle %d in region %d list but tagged region %d", id, region, st.region)
			}
			if s.byID[id] != st {
				return fmt.Errorf("vehicle %d resident state diverged from the fleet index", id)
			}
			total++
		}
	}
	if total != len(s.vehicles) {
		return fmt.Errorf("shards hold %d vehicles, fleet has %d", total, len(s.vehicles))
	}
	for _, st := range s.vehicles {
		if _, ok := seen[st.v.ID]; !ok {
			return fmt.Errorf("vehicle %d active but resident in no region", st.v.ID)
		}
	}
	return nil
}
