package sim

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"vtmig/internal/stackelberg"
)

// TestRunForFractionalSteps pins the truncation fix: spans that are exact
// multiples of TimeStepS in real arithmetic must execute exactly that
// many steps even when the float quotient lands just below the integer
// (1800/0.3 = 5999.999…), while genuinely partial spans still round down.
func TestRunForFractionalSteps(t *testing.T) {
	cases := []struct {
		name      string
		timeStep  float64
		seconds   float64
		wantSteps int
	}{
		{"unit step", 1, 600, 600},
		{"0.3 over 1800s", 0.3, 1800, 6000},
		{"0.3 over 600s", 0.3, 600, 2000},
		{"0.1 over 1s", 0.1, 1, 10},
		{"0.7 x 3", 0.7, 2.1, 3},
		{"partial span rounds down", 0.3, 0.8, 2},
		{"sub-step span", 0.3, 0.1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.TimeStepS = tc.timeStep
			cfg.DurationS = math.Max(tc.seconds, tc.timeStep)
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s.RunFor(tc.seconds)
			steps := int(math.Round(s.Now() / tc.timeStep))
			if steps != tc.wantSteps {
				t.Fatalf("RunFor(%g) at step %g ran %d steps, want %d", tc.seconds, tc.timeStep, steps, tc.wantSteps)
			}
		})
	}
}

// TestRunForSplitMatchesRunFractionalStep is the divergence the bug
// caused: with TimeStepS = 0.3, three RunFor(600) legs dropped a step per
// leg versus one Run over 1800 s. Split and whole must agree exactly.
func TestRunForSplitMatchesRunFractionalStep(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TimeStepS = 0.3
	cfg.DurationS = 1800

	whole, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := whole.Run()

	split, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		split.RunFor(600)
	}
	got := split.Finish()

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("split report diverges from whole run:\n got %+v\nwant %+v", got, want)
	}
	if whole.Now() != split.Now() {
		t.Fatalf("clocks diverge: whole %g, split %g", whole.Now(), split.Now())
	}
}

// nanPricer drives the corrupted-accounting guard in runPricingRound.
type nanPricer struct{}

func (nanPricer) Name() string                       { return "nan" }
func (nanPricer) PriceFor(*stackelberg.Game) float64 { return math.NaN() }

// TestRunPanicsOnNaNPrice pins the ScaleToFit-poisoning fix: a pricer
// returning NaN must stop the simulation with a contextual panic instead
// of silently feeding NaN demands into the shared bandwidth pool.
func TestRunPanicsOnNaNPrice(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationS = 600
	cfg.Pricer = nanPricer{}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("run with a NaN pricer completed; want a corrupted-accounting panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "returned NaN") {
			t.Fatalf("panic = %v, want the NaN-price context", r)
		}
	}()
	s.Run()
}
