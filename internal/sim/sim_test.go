package sim

import (
	"bytes"
	"testing"

	"vtmig/internal/rsu"
	"vtmig/internal/stackelberg"
	"vtmig/internal/trace"
)

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no vehicles", func(c *Config) { c.Vehicles = 0 }},
		{"bad speeds", func(c *Config) { c.SpeedMinMps = 30; c.SpeedMaxMps = 20 }},
		{"zero step", func(c *Config) { c.TimeStepS = 0 }},
		{"bad alpha", func(c *Config) { c.AlphaMin = 0 }},
		{"bad memory", func(c *Config) { c.VTMemoryMinMB = 0 }},
		{"bad failure rate", func(c *Config) { c.PricingFailureRate = 1 }},
		{"nil pricer", func(c *Config) { c.Pricer = nil }},
		{"bad prices", func(c *Config) { c.PMax = c.Cost }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestRunProducesMigrations(t *testing.T) {
	cfg := DefaultConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep := s.Run()
	if rep.Handovers == 0 {
		t.Fatal("no handovers in 600 simulated seconds of 20-35 m/s traffic")
	}
	if len(rep.Migrations) == 0 {
		t.Fatal("no completed migrations")
	}
	if rep.PricingRounds == 0 {
		t.Fatal("no pricing rounds")
	}
	if rep.MSPRevenue <= 0 {
		t.Errorf("MSP revenue = %v, want > 0", rep.MSPRevenue)
	}
	if rep.MeanAoTM <= 0 {
		t.Errorf("mean AoTM = %v, want > 0", rep.MeanAoTM)
	}
	if rep.PricerName != "stackelberg-oracle" {
		t.Errorf("pricer name = %q", rep.PricerName)
	}
}

func TestMigrationRecordsConsistent(t *testing.T) {
	cfg := DefaultConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep := s.Run()
	for i, m := range rep.Migrations {
		if m.BandwidthMHz <= 0 {
			t.Errorf("migration %d: bandwidth %v", i, m.BandwidthMHz)
		}
		if m.Price < cfg.Cost || m.Price > cfg.PMax {
			t.Errorf("migration %d: price %v outside [C, pmax]", i, m.Price)
		}
		if m.AoTM <= 0 {
			t.Errorf("migration %d: AoTM %v", i, m.AoTM)
		}
		if m.DataMovedMB < cfg.VTMemoryMinMB {
			t.Errorf("migration %d: moved %v MB, less than any twin footprint", i, m.DataMovedMB)
		}
		if m.DowntimeS > m.DurationS {
			t.Errorf("migration %d: downtime %v > duration %v", i, m.DowntimeS, m.DurationS)
		}
		if m.FromRSU == m.ToRSU {
			t.Errorf("migration %d: self-migration RSU %d", i, m.FromRSU)
		}
		if m.MSPProfit < 0 {
			t.Errorf("migration %d: negative MSP profit %v", i, m.MSPProfit)
		}
	}
}

func TestBandwidthNeverOversubscribed(t *testing.T) {
	// With many vehicles and small Bmax, concurrent migrations compete;
	// the allocator must keep Σ grants ≤ Bmax at all times. The allocator
	// itself enforces this; here we verify the simulator respects grant
	// accounting end to end (Run panics on corrupted accounting).
	cfg := DefaultConfig()
	cfg.Vehicles = 12
	cfg.BMaxMHz = 0.2
	cfg.DurationS = 400
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep := s.Run()
	for i, m := range rep.Migrations {
		if m.BandwidthMHz > cfg.BMaxMHz+1e-9 {
			t.Errorf("migration %d: grant %v exceeds Bmax %v", i, m.BandwidthMHz, cfg.BMaxMHz)
		}
	}
}

func TestFailureInjectionDefersRounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PricingFailureRate = 0.5
	cfg.Seed = 3
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep := s.Run()
	if rep.FailedRounds == 0 {
		t.Error("failure rate 0.5 produced no failed rounds")
	}
	if rep.Deferred == 0 {
		t.Error("failed rounds must defer migrations")
	}
	// Migrations must still eventually complete.
	if len(rep.Migrations) == 0 {
		t.Error("no migrations completed despite retries")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() Report {
		cfg := DefaultConfig()
		cfg.Seed = 99
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return s.Run()
	}
	a, b := run(), run()
	if len(a.Migrations) != len(b.Migrations) || a.MSPRevenue != b.MSPRevenue {
		t.Errorf("same seed diverged: %d/%v vs %d/%v",
			len(a.Migrations), a.MSPRevenue, len(b.Migrations), b.MSPRevenue)
	}
}

func TestPricerComparisonOracleBeatsRandom(t *testing.T) {
	revenue := func(p Pricer, seed int64) float64 {
		cfg := DefaultConfig()
		cfg.Pricer = p
		cfg.Seed = seed
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return s.Run().MSPRevenue
	}
	var oracle, random float64
	for seed := int64(0); seed < 5; seed++ {
		oracle += revenue(NewOraclePricer(), seed)
		random += revenue(NewRandomPricer(seed), seed)
	}
	if oracle <= random {
		t.Errorf("oracle revenue %v must beat random %v", oracle, random)
	}
}

func TestFixedPricerName(t *testing.T) {
	p := NewFixedPricer(30)
	if p.Name() != "fixed(30)" {
		t.Errorf("name = %q", p.Name())
	}
	if got := p.PriceFor(stackelberg.DefaultGame()); got != 30 {
		t.Errorf("price = %v, want 30", got)
	}
}

func TestPricerFuncAdapter(t *testing.T) {
	p := PricerFunc{Label: "learned", Fn: func(g *stackelberg.Game) float64 { return g.Cost + 1 }}
	if p.Name() != "learned" {
		t.Errorf("name = %q", p.Name())
	}
	if got := p.PriceFor(stackelberg.DefaultGame()); got != 6 {
		t.Errorf("price = %v, want 6", got)
	}
}

func TestHigherDirtyRateMovesMoreData(t *testing.T) {
	run := func(dirty float64) float64 {
		cfg := DefaultConfig()
		cfg.DirtyRateMBps = dirty
		cfg.Seed = 7
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		rep := s.Run()
		var total float64
		for _, m := range rep.Migrations {
			total += m.DataMovedMB
		}
		if len(rep.Migrations) == 0 {
			t.Fatal("no migrations")
		}
		return total / float64(len(rep.Migrations))
	}
	if clean, dirty := run(1), run(60); dirty <= clean {
		t.Errorf("dirtier twins must move more data per migration: %v vs %v", dirty, clean)
	}
}

func TestSensingAoIReported(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationS = 200
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep := s.Run()
	// Steady-state periodic AoI is period/2 + delay = 0.30 s; migration
	// downtime can only push the average up.
	if rep.MeanSensingAoI < 0.29 {
		t.Errorf("mean sensing AoI = %v, want >= 0.29 (period/2 + delay)", rep.MeanSensingAoI)
	}
	if rep.MeanSensingAoI > 5 {
		t.Errorf("mean sensing AoI = %v, implausibly stale", rep.MeanSensingAoI)
	}
}

func TestSensingAoIDegradesWithSlowerSensing(t *testing.T) {
	run := func(period float64) float64 {
		cfg := DefaultConfig()
		cfg.DurationS = 200
		cfg.SensingPeriodS = period
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return s.Run().MeanSensingAoI
	}
	if fast, slow := run(0.5), run(2.0); slow <= fast {
		t.Errorf("slower sensing must be staler: %v vs %v", slow, fast)
	}
}

func TestTwinPlacementFollowsMigrations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationS = 300
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep := s.Run()
	if rep.PlacementFailures > 0 {
		t.Errorf("placement failures = %d with ample capacity", rep.PlacementFailures)
	}
	// After the run, every vehicle's twin must be placed on some server.
	for id := range cfg.Vehicles {
		if s.cluster.Locate(id) < 0 {
			t.Errorf("vehicle %d twin unplaced after run", id)
		}
	}
}

func TestPlacementFailuresWithTinyRSUs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationS = 300
	cfg.Vehicles = 10
	// Each RSU fits at most one twin; co-located twins must fail over.
	cfg.RSUCapacity = rsu.Resources{CPU: 1.6, GPU: 1, MemoryGB: 2, StorageGB: 4}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep := s.Run()
	if rep.PlacementFailures == 0 {
		t.Error("expected placement failures with tiny RSU capacity")
	}
}

func TestSensingConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SensingPeriodS = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero sensing period must fail validation")
	}
	cfg = DefaultConfig()
	cfg.SensingDelayS = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative sensing delay must fail validation")
	}
	cfg = DefaultConfig()
	cfg.RSUCapacity.CPU = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative RSU capacity must fail validation")
	}
}

func TestTraceEmission(t *testing.T) {
	var buf bytes.Buffer
	cfg := DefaultConfig()
	cfg.DurationS = 200
	cfg.TraceWriter = &buf
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep := s.Run()
	events, err := trace.Read(&buf)
	if err != nil {
		t.Fatalf("reading trace: %v", err)
	}
	sum := trace.Summarize(events)
	if got := sum.Counts[trace.KindHandover]; got != rep.Handovers {
		t.Errorf("traced handovers = %d, report %d", got, rep.Handovers)
	}
	if got := sum.Counts[trace.KindPricingRound]; got != rep.PricingRounds {
		t.Errorf("traced pricing rounds = %d, report %d", got, rep.PricingRounds)
	}
	if got := sum.Counts[trace.KindMigrationComplete]; got != len(rep.Migrations) {
		t.Errorf("traced completions = %d, report %d", got, len(rep.Migrations))
	}
	if sum.MeanRoundPrice <= 0 {
		t.Error("mean traced price must be positive")
	}
}
