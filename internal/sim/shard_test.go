package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"vtmig/internal/mobility"
)

// This file pins rule 7 of the determinism contract: a region-sharded
// simulator — any region count, under any GOMAXPROCS — produces a
// bit-identical sim.Report, a byte-identical trace, and (for online
// pricers) bit-identical final network weights to the serial simulator.
// The workload deliberately stacks every order-sensitive subsystem: the
// grid world with per-vehicle turn streams, heterogeneous classes, churn,
// RSU outages, the day/night demand cycle, and injected pricing failures.

// shardWorkloadConfig is the kitchen-sink fixture for the rule-7 tables.
func shardWorkloadConfig() Config {
	cfg := DefaultConfig()
	cfg.Mobility = MobilityGrid
	cfg.RSUCount = 0
	cfg.Grid = GridConfig{Rows: 5, Cols: 6, SpacingM: 400}
	cfg.RSURadiusM = 320
	cfg.Vehicles = 36
	cfg.TimeStepS = 0.5
	cfg.DurationS = 300
	cfg.Seed = 13
	cfg.Classes = []VehicleClass{
		{Name: "commuter", Weight: 3},
		{Name: "freight", Weight: 1, SpeedMinMps: 8, SpeedMaxMps: 14, VTMemoryMinMB: 220, VTMemoryMaxMB: 300},
	}
	cfg.Churn = ChurnConfig{ArrivalRatePerS: 0.2, MeanDwellS: 120, MaxVehicles: 60}
	cfg.Outages = []OutageWindow{
		{RSU: 7, StartS: 40, EndS: 90},
		{RSU: 22, StartS: 120, EndS: 200},
	}
	cfg.Demand = DemandConfig{PeriodS: 100, DayFraction: 0.6, NightSpeedFactor: 0.5, NightSensingFactor: 2}
	cfg.PricingFailureRate = 0.02
	return cfg
}

// runShardWorkload runs the fixture with the given region count and
// returns the report plus the raw trace bytes.
func runShardWorkload(t *testing.T, regions int) (Report, []byte) {
	t.Helper()
	var buf bytes.Buffer
	cfg := shardWorkloadConfig()
	cfg.TraceWriter = &buf
	cfg.Shards.Regions = regions
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s.Run(), buf.Bytes()
}

// TestShardSimBitIdenticalRule7 is the rule-7 table: region count ×
// GOMAXPROCS against the serial reference, DeepEqual on the report (every
// float compared exactly) and byte equality on the trace.
func TestShardSimBitIdenticalRule7(t *testing.T) {
	refRep, refTrace := runShardWorkload(t, 0)
	if refRep.Completed == 0 || refRep.Arrivals == 0 || refRep.FailedRounds == 0 {
		t.Fatalf("reference workload is trivial: %+v", refRep)
	}
	for _, regions := range []int{1, 2, 4, 7} {
		for _, gmp := range []int{1, 4} {
			name := fmt.Sprintf("regions=%d/gomaxprocs=%d", regions, gmp)
			t.Run(name, func(t *testing.T) {
				prev := runtime.GOMAXPROCS(gmp)
				defer runtime.GOMAXPROCS(prev)
				rep, tr := runShardWorkload(t, regions)
				if !reflect.DeepEqual(refRep, rep) {
					t.Fatalf("report diverged from serial reference:\nserial: %+v\ngot:    %+v", refRep, rep)
				}
				if !bytes.Equal(refTrace, tr) {
					t.Fatalf("trace diverged from serial reference (%d vs %d bytes)", len(refTrace), len(tr))
				}
			})
		}
	}
}

// TestShardSimHighwayBitIdentical covers the highway world, including
// more regions than RSUs (empty shards must be inert).
func TestShardSimHighwayBitIdentical(t *testing.T) {
	run := func(regions int) Report {
		cfg := DefaultConfig()
		cfg.DurationS = 400
		cfg.Seed = 17
		cfg.Churn = ChurnConfig{ArrivalRatePerS: 0.05, MeanDwellS: 150}
		cfg.Shards.Regions = regions
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	ref := run(0)
	if ref.Completed == 0 {
		t.Fatalf("reference run is trivial: %+v", ref)
	}
	for _, regions := range []int{1, 3, 8, 11} {
		if rep := run(regions); !reflect.DeepEqual(ref, rep) {
			t.Fatalf("regions=%d diverged:\nserial: %+v\ngot:    %+v", regions, ref, rep)
		}
	}
}

// TestShardOnlineSimBitIdentical extends the rule-5 online table with
// rule 7: sharded stepping under a trained online pricer leaves the
// report and the final network weights bit-identical.
func TestShardOnlineSimBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("online training table skipped in -short mode")
	}
	refRep, refW := onlineSimRun(t, 1, 1, 0)
	for _, regions := range []int{2, 5} {
		for _, gmp := range []int{1, 4} {
			name := fmt.Sprintf("regions=%d/gomaxprocs=%d", regions, gmp)
			t.Run(name, func(t *testing.T) {
				prev := runtime.GOMAXPROCS(gmp)
				defer runtime.GOMAXPROCS(prev)
				rep, w := onlineSimRun(t, 1, 1, regions)
				if !reflect.DeepEqual(refRep, rep) {
					t.Fatalf("report diverged from serial reference:\nserial: %+v\ngot:    %+v", refRep, rep)
				}
				sameBits(t, name, refW, w)
			})
		}
	}
}

// TestShardInvariantsUnderChurnAndOutages steps the kitchen-sink
// workload one tick at a time and checks migration conservation (no
// vehicle lost, duplicated, or stranded in a stale region) after every
// step.
func TestShardInvariantsUnderChurnAndOutages(t *testing.T) {
	cfg := shardWorkloadConfig()
	cfg.DurationS = 150
	cfg.Shards.Regions = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.checkShardInvariants(); err != nil {
		t.Fatalf("before first step: %v", err)
	}
	steps := int(cfg.DurationS / cfg.TimeStepS)
	for i := 0; i < steps; i++ {
		s.Step()
		if err := s.checkShardInvariants(); err != nil {
			t.Fatalf("after step %d (t=%.1fs): %v", i+1, s.Now(), err)
		}
	}
	rep := s.Finish()
	if rep.Completed == 0 {
		t.Fatalf("workload completed no migrations: %+v", rep)
	}
}

// TestDiscardMigrationRecordsKeepsAggregates pins the streaming report:
// discarding per-migration records must change nothing but the record
// slice itself, serial and sharded alike.
func TestDiscardMigrationRecordsKeepsAggregates(t *testing.T) {
	for _, regions := range []int{0, 3} {
		cfg := shardWorkloadConfig()
		cfg.Shards.Regions = regions
		full, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fullRep := full.Run()

		cfg = shardWorkloadConfig()
		cfg.Shards.Regions = regions
		cfg.DiscardMigrationRecords = true
		lean, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		leanRep := lean.Run()

		if leanRep.Migrations != nil {
			t.Fatalf("regions=%d: discard mode kept %d records", regions, len(leanRep.Migrations))
		}
		if leanRep.Completed != len(fullRep.Migrations) {
			t.Fatalf("regions=%d: Completed = %d, want %d", regions, leanRep.Completed, len(fullRep.Migrations))
		}
		fullRep.Migrations = nil
		if !reflect.DeepEqual(fullRep, leanRep) {
			t.Fatalf("regions=%d: aggregates diverged:\nfull: %+v\nlean: %+v", regions, fullRep, leanRep)
		}
	}
}

// TestRegionOfPartition pins the region map: total (every RSU id lands in
// [0, regions)), monotone, contiguous, and balanced to within one RSU.
func TestRegionOfPartition(t *testing.T) {
	for _, rsus := range []int{1, 2, 8, 30, 97} {
		for _, regions := range []int{1, 2, 4, 7, 30, 40} {
			s := &Simulator{shards: make([]simShard, regions), world: fixedRSUWorld{n: rsus}}
			counts := make([]int, regions)
			prev := 0
			for id := 0; id < rsus; id++ {
				r := s.regionOf(id)
				if r < 0 || r >= regions {
					t.Fatalf("rsus=%d regions=%d: regionOf(%d) = %d out of range", rsus, regions, id, r)
				}
				if r < prev {
					t.Fatalf("rsus=%d regions=%d: regionOf(%d) = %d < previous %d (not contiguous)", rsus, regions, id, r, prev)
				}
				prev = r
				counts[r]++
			}
			if got := s.regionOf(-1); got != 0 {
				t.Fatalf("regionOf(-1) = %d, want 0", got)
			}
			min, max := rsus, 0
			for _, c := range counts {
				if c < min {
					min = c
				}
				if c > max {
					max = c
				}
			}
			if regions <= rsus && max-min > 1 {
				t.Fatalf("rsus=%d regions=%d: unbalanced partition %v", rsus, regions, counts)
			}
		}
	}
}

// fixedRSUWorld is a stub world for partition-map tests; only RSUCount is
// ever called.
type fixedRSUWorld struct {
	mobility.World
	n int
}

func (w fixedRSUWorld) RSUCount() int { return w.n }
