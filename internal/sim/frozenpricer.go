package sim

import (
	"fmt"

	"vtmig/internal/mat"
	"vtmig/internal/nn"
	"vtmig/internal/pomdp"
	"vtmig/internal/rl"
	"vtmig/internal/stackelberg"
)

// FrozenPricer is a read-only deployment view of an online pricer's
// state: it posts the deterministic (mean) price of a frozen belief
// window and never learns. The readout is evaluated once at construction
// through the batched evaluation entry (rl.PPO.MeanActionBatch, which
// consumes no RNG and reproduces the serial forward pass bit for bit —
// contract rule 1), so every quote afterwards is a constant read: the
// pricer is immutable, safe for unbounded concurrent use, and answers
// with exactly the price the live pricer would post next at the same
// state. That is what lets checkpoint-fed read replicas
// (serve.OpenReplica) serve quote-only traffic at arbitrary fan-out.
//
// The posted price deliberately ignores the quoted game beyond the
// reference interface — the live pricer's deterministic readout depends
// only on its belief window, never on the round's game (the
// incomplete-information setting of the paper) — so callers clamp to the
// round's [Cost, PMax] exactly like they do for the live pricer.
type FrozenPricer struct {
	price     float64
	rounds    int
	updates   int
	snapshots int
}

var _ Pricer = (*FrozenPricer)(nil)

// NewFrozenPricerFromCheckpoint builds a frozen pricer from a checkpoint
// written by OnlinePricer.Snapshot. Only the policy weights and the
// pricer section are consulted — optimizer and RNG state may be absent
// (a weights-only checkpoint freezes fine; it just cannot resume
// training). cfg follows the NewOnlinePricerFromCheckpoint conventions:
// Agent must be nil, a zero HistoryLen adopts the checkpointed belief
// window, an explicitly set one must match it, and cfg.PPO must describe
// the checkpointed learner's architecture (hidden sizes; the training
// hyper-parameters are irrelevant to a frozen readout).
func NewFrozenPricerFromCheckpoint(cfg OnlinePricerConfig, ck *nn.Checkpoint) (*FrozenPricer, error) {
	if ck == nil || ck.Pricer == nil {
		return nil, fmt.Errorf("sim: checkpoint carries no pricer section; only checkpoints written by OnlinePricer.Snapshot can freeze an online run")
	}
	if err := ck.Validate(); err != nil {
		return nil, err
	}
	if cfg.Agent != nil {
		return nil, fmt.Errorf("sim: OnlinePricerConfig.Agent must be nil when freezing from a checkpoint")
	}
	ps := ck.Pricer
	if cfg.HistoryLen == 0 {
		cfg.HistoryLen = len(ps.History)
	} else if cfg.HistoryLen != len(ps.History) {
		return nil, fmt.Errorf("sim: config history length %d, checkpoint belief window has %d rounds", cfg.HistoryLen, len(ps.History))
	}
	if cfg.UpdateEvery == 0 {
		cfg.UpdateEvery = ps.UpdateEvery
	}
	if cfg.Reward == 0 {
		cfg.Reward = pomdp.RewardKind(ps.Reward)
	}
	if cfg.BestTolFrac == 0 {
		cfg.BestTolFrac = ps.BestTolFrac
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	enc, err := pomdp.NewGameEncoder(cfg.HistoryLen, cfg.Game)
	if err != nil {
		return nil, err
	}
	if len(ps.History) > 0 {
		if width := len(ps.History[0]); width != 1+cfg.Game.N() {
			return nil, fmt.Errorf("sim: checkpoint belief rows have width %d, the reference game needs %d (1 price + %d demand slots) — was the checkpoint written over a different game size?",
				width, 1+cfg.Game.N(), cfg.Game.N())
		}
	}
	if len(ps.Obs) != enc.ObsDim() {
		return nil, fmt.Errorf("sim: checkpoint observation has %d values, history length %d over the reference game needs %d", len(ps.Obs), cfg.HistoryLen, enc.ObsDim())
	}
	ppoCfg := cfg.PPO
	ppoCfg.Seed = cfg.Seed
	agent := rl.NewPPO(enc.ObsDim(), 1, []float64{cfg.Game.Cost}, []float64{cfg.Game.PMax}, ppoCfg)
	if err := agent.RestoreWeights(ck); err != nil {
		return nil, err
	}
	return &FrozenPricer{
		price:     frozenReadout(agent, ps.Obs),
		rounds:    ps.Rounds,
		updates:   ps.Updates,
		snapshots: ps.Snapshots,
	}, nil
}

// FrozenView freezes the pricer's current deterministic readout into a
// FrozenPricer without going through a checkpoint. It consumes no
// learner RNG and leaves the live pricer bit-identical, so interleaving
// FrozenView with live serving is invisible to the training stream; the
// view answers exactly the price the live pricer posts for its next
// quote.
func (p *OnlinePricer) FrozenView() *FrozenPricer {
	return &FrozenPricer{
		price:     frozenReadout(p.agent, p.obs),
		rounds:    p.col.Total(),
		updates:   p.col.Updates(),
		snapshots: p.snapshots,
	}
}

// frozenReadout evaluates the deterministic policy mean at obs through
// the batched no-RNG entry (a 1-row batch), bit-identical to the live
// pricer's SelectActionWithMean mean readout at the same observation.
func frozenReadout(agent *rl.PPO, obs []float64) float64 {
	obsM := mat.New(1, len(obs))
	copy(obsM.Row(0), obs)
	dst := mat.New(1, agent.ActDim())
	agent.MeanActionBatch(obsM, dst)
	return dst.Row(0)[0]
}

// Name implements Pricer.
func (f *FrozenPricer) Name() string { return "frozen-online" }

// PriceFor implements Pricer: the frozen deterministic price, regardless
// of the quoted game (see the type comment). Safe for concurrent use.
func (f *FrozenPricer) PriceFor(_ *stackelberg.Game) float64 { return f.price }

// Price returns the frozen deterministic price.
func (f *FrozenPricer) Price() float64 { return f.price }

// Rounds returns the number of live rounds the frozen state had learned
// from when it was captured.
func (f *FrozenPricer) Rounds() int { return f.rounds }

// Updates returns the number of optimization phases behind the frozen
// state.
func (f *FrozenPricer) Updates() int { return f.updates }

// Snapshots returns the snapshot ordinal of the frozen state (the
// checkpoint counter including the captured one).
func (f *FrozenPricer) Snapshots() int { return f.snapshots }
