package sim_test

import (
	"testing"

	"vtmig/internal/scenario"
	"vtmig/internal/sim"
)

// TestFleetSteadyStateAllocsFlat is the allocation regression gate behind
// BenchmarkSimFleetSharded: once the metro workload reaches steady state
// (history buffers compacted, scratch grown, attach storm over), the
// per-tick allocation count must be small and essentially independent of
// the fleet size — a 10x larger fleet may not cost 10x the allocations.
// The guarded paths are the streaming report aggregates, the bounded
// sensing histories, the reused round-game scratch, and the Try variants
// of the allocator and placement admission checks.
func TestFleetSteadyStateAllocsFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state probe steps a 10k-vehicle fleet for 200 simulated seconds")
	}
	base, err := scenario.Load("../../testdata/scenarios/metro-10k.json")
	if err != nil {
		t.Fatal(err)
	}
	perFleet := make(map[int]float64)
	for _, fleet := range []int{1000, 10000} {
		sc := *base
		sc.Vehicles = fleet
		sc.Shards = 0
		cfg, err := sc.CompileConfig()
		if err != nil {
			t.Fatal(err)
		}
		p, err := sim.NewPricerFromSpec(sim.PricerSpec{Name: "random"}, sim.PricerBuildOptions{DefaultSeed: sc.Seed})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Pricer = p
		sm, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sm.RunFor(200) // past the spawn/attach/history-growth transient
		allocs := testing.AllocsPerRun(20, func() { sm.Step() })
		t.Logf("fleet=%d steady allocs/tick = %v", fleet, allocs)
		perFleet[fleet] = allocs
		if allocs > 150 {
			t.Errorf("fleet=%d: %v allocs/tick in steady state, want <= 150", fleet, allocs)
		}
	}
	if small, big := perFleet[1000], perFleet[10000]; big > 3*small+50 {
		t.Errorf("allocs/tick grew with fleet size: %v at 1000 vehicles, %v at 10000", small, big)
	}
}
