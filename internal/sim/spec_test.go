package sim

import (
	"strings"
	"testing"

	"vtmig/internal/stackelberg"
)

func TestNewPricerFromSpecAnalytic(t *testing.T) {
	cases := []struct {
		spec PricerSpec
		name string
	}{
		{PricerSpec{Name: "oracle"}, "stackelberg-oracle"},
		{PricerSpec{Name: "fixed", Price: 25}, "fixed(25)"},
		{PricerSpec{Name: "random", Seed: 3}, "random"},
		{PricerSpec{Name: "random"}, "random"}, // seed adopts DefaultSeed
	}
	for _, c := range cases {
		p, err := NewPricerFromSpec(c.spec, PricerBuildOptions{DefaultSeed: 1})
		if err != nil {
			t.Errorf("spec %+v: %v", c.spec, err)
			continue
		}
		if p.Name() != c.name {
			t.Errorf("spec %+v built pricer %q, want %q", c.spec, p.Name(), c.name)
		}
	}
}

func TestNewPricerFromSpecRandomSeed(t *testing.T) {
	g := stackelberg.DefaultGame()
	// Seed 0 adopts DefaultSeed: both pricers must post the same prices.
	a, err := NewPricerFromSpec(PricerSpec{Name: "random"}, PricerBuildOptions{DefaultSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPricerFromSpec(PricerSpec{Name: "random", Seed: 7}, PricerBuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if pa, pb := a.PriceFor(g), b.PriceFor(g); pa != pb {
			t.Fatalf("draw %d: DefaultSeed-adopting pricer posted %g, explicit-seed pricer %g", i, pa, pb)
		}
	}
}

func TestNewPricerFromSpecUnknown(t *testing.T) {
	_, err := NewPricerFromSpec(PricerSpec{Name: "nonsense"}, PricerBuildOptions{})
	if err == nil {
		t.Fatal("unknown pricer name accepted")
	}
	// The error teaches the valid names.
	for _, want := range []string{"nonsense", "oracle", "fixed", "random"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-pricer error %q does not mention %q", err, want)
		}
	}
}

func TestNewPricerFromSpecRejectsIrrelevantFields(t *testing.T) {
	cases := []struct {
		spec  PricerSpec
		field string
	}{
		{PricerSpec{Name: "oracle", Price: 25}, "price"},
		{PricerSpec{Name: "oracle", Seed: 3}, "seed"},
		{PricerSpec{Name: "fixed", Price: 25, UpdateEvery: 5}, "update_every"},
		{PricerSpec{Name: "random", HistoryLen: 4}, "history_len"},
	}
	for _, c := range cases {
		_, err := NewPricerFromSpec(c.spec, PricerBuildOptions{})
		if err == nil {
			t.Errorf("spec %+v: irrelevant field accepted", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.field) {
			t.Errorf("spec %+v: error %q does not name the offending field %q", c.spec, err, c.field)
		}
	}
}

func TestNewPricerFromSpecFixedNeedsPrice(t *testing.T) {
	for _, price := range []float64{0, -3} {
		if _, err := NewPricerFromSpec(PricerSpec{Name: "fixed", Price: price}, PricerBuildOptions{}); err == nil {
			t.Errorf("fixed pricer with price %g accepted", price)
		}
	}
}

func TestCheckAllowedFields(t *testing.T) {
	warm := false
	spec := PricerSpec{Name: "x", Price: 1, Seed: 2, TrainEpisodes: 3, UpdateEvery: 4,
		WarmStart: &warm, WarmStartFile: "f", HistoryLen: 5, LR: 6}
	if err := spec.CheckAllowedFields("price", "seed", "train_episodes", "update_every",
		"warm_start", "warm_start_file", "history_len", "lr"); err != nil {
		t.Fatalf("fully allowed spec rejected: %v", err)
	}
	err := spec.CheckAllowedFields("price", "seed")
	if err == nil {
		t.Fatal("disallowed fields accepted")
	}
	for _, f := range []string{"train_episodes", "update_every", "warm_start", "warm_start_file", "history_len", "lr"} {
		if !strings.Contains(err.Error(), f) {
			t.Errorf("error %q does not list %q", err, f)
		}
	}
	for _, f := range []string{"price,", "seed,"} {
		if strings.Contains(err.Error(), f) {
			t.Errorf("error %q lists an allowed field %q", err, f)
		}
	}
	if err := (PricerSpec{Name: "x"}).CheckAllowedFields(); err != nil {
		t.Fatalf("empty spec rejected: %v", err)
	}
}

func TestRegisterPricerPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty name", func() {
		RegisterPricer("", func(PricerSpec, PricerBuildOptions) (Pricer, error) { return nil, nil })
	})
	mustPanic("nil builder", func() { RegisterPricer("nil-builder", nil) })
	mustPanic("duplicate", func() {
		RegisterPricer("oracle", func(PricerSpec, PricerBuildOptions) (Pricer, error) { return nil, nil })
	})
}

func TestRegisteredPricersSorted(t *testing.T) {
	names := RegisteredPricers()
	for _, want := range []string{"oracle", "fixed", "random"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("RegisteredPricers() = %v lacks %q", names, want)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("RegisteredPricers() = %v is not sorted", names)
		}
	}
}
