package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"vtmig/internal/nn"
)

// PricerSpec is the declarative form of an MSP pricing strategy: a
// registered name plus parameters. Scenario files, the CLIs, and the
// facade all describe pricers this way and build them through
// NewPricerFromSpec, so the name→pricer wiring lives in exactly one
// place.
//
// Zero-valued fields mean "unset": builders fill them with their
// defaults or adopt them from checkpoint metadata (the PR 6
// adopt-or-match convention), while an explicitly set field that
// contradicts a checkpoint fails loudly. Fields irrelevant to the named
// pricer are rejected, not ignored.
type PricerSpec struct {
	// Name is the registered pricer name ("oracle", "fixed", "random",
	// and — when the experiments package is linked in — "drl", "online").
	Name string `json:"name"`
	// Price is the posted price of the "fixed" pricer.
	Price float64 `json:"price,omitempty"`
	// Seed drives the pricer's own randomness ("random") or learner
	// initialization ("drl", "online"); 0 adopts
	// PricerBuildOptions.DefaultSeed.
	Seed int64 `json:"seed,omitempty"`
	// TrainEpisodes is the offline training budget of "drl" and
	// warm-started "online" (0: the builder's default).
	TrainEpisodes int `json:"train_episodes,omitempty"`
	// UpdateEvery is the "online" optimization cadence in pricing rounds
	// (0: the builder's default, or the checkpoint's when resuming).
	UpdateEvery int `json:"update_every,omitempty"`
	// WarmStart selects warm (offline-trained) vs cold "online" start;
	// nil means warm.
	WarmStart *bool `json:"warm_start,omitempty"`
	// WarmStartFile warm-starts "online" from a checkpoint file instead
	// of training in-process.
	WarmStartFile string `json:"warm_start_file,omitempty"`
	// HistoryLen is the observation history length L ("drl", "online";
	// 0 adopts the default or the checkpoint's metadata).
	HistoryLen int `json:"history_len,omitempty"`
	// LR is the Adam learning rate ("drl", or "online" with
	// WarmStartFile; 0 adopts the default or the checkpoint's metadata).
	LR float64 `json:"lr,omitempty"`
}

// CheckAllowedFields rejects parameter fields the named pricer does not
// take: every set field must appear in allowed (JSON names). Builders
// call it first so a typo'd or misplaced scenario parameter errors
// instead of being silently ignored.
func (s PricerSpec) CheckAllowedFields(allowed ...string) error {
	set := make(map[string]bool)
	if s.Price != 0 {
		set["price"] = true
	}
	if s.Seed != 0 {
		set["seed"] = true
	}
	if s.TrainEpisodes != 0 {
		set["train_episodes"] = true
	}
	if s.UpdateEvery != 0 {
		set["update_every"] = true
	}
	if s.WarmStart != nil {
		set["warm_start"] = true
	}
	if s.WarmStartFile != "" {
		set["warm_start_file"] = true
	}
	if s.HistoryLen != 0 {
		set["history_len"] = true
	}
	if s.LR != 0 {
		set["lr"] = true
	}
	for _, a := range allowed {
		delete(set, a)
	}
	if len(set) == 0 {
		return nil
	}
	extra := make([]string, 0, len(set))
	for f := range set {
		extra = append(extra, f)
	}
	sort.Strings(extra)
	return fmt.Errorf("sim: pricer %q does not take %s", s.Name, strings.Join(extra, ", "))
}

// SeedOr returns the spec's seed, falling back to def when unset.
func (s PricerSpec) SeedOr(def int64) int64 {
	if s.Seed != 0 {
		return s.Seed
	}
	return def
}

// PricerBuildOptions carries host-environment hooks a declarative spec
// cannot express: seed inheritance, snapshot plumbing, and logging.
type PricerBuildOptions struct {
	// DefaultSeed seeds stochastic pricers whose spec leaves Seed 0 —
	// typically the enclosing simulation's or scenario's seed.
	DefaultSeed int64
	// SnapshotEvery and OnSnapshot wire mid-run resume checkpoints into
	// an "online" pricer (see OnlinePricerConfig).
	SnapshotEvery int
	OnSnapshot    func(*nn.Checkpoint)
	// Logf, when non-nil, receives builder progress messages (training
	// announcements, warm-start provenance).
	Logf func(format string, args ...any)
}

// Printf forwards a builder progress message to Logf when set.
func (o PricerBuildOptions) Printf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// PricerBuilder constructs a pricer from its declarative spec.
type PricerBuilder func(spec PricerSpec, opts PricerBuildOptions) (Pricer, error)

// pricerBuilders is the registry behind NewPricerFromSpec. The analytic
// pricers register here; the experiments package adds "drl" and "online"
// from its init (database/sql-style), keeping the sim→experiments
// dependency arrow pointing the right way.
var pricerBuilders = make(map[string]PricerBuilder)

// RegisterPricer adds a named pricer builder. It panics on a duplicate
// or empty registration — both are wiring bugs, not runtime conditions.
func RegisterPricer(name string, build PricerBuilder) {
	if name == "" || build == nil {
		panic("sim: RegisterPricer needs a name and a builder")
	}
	if _, dup := pricerBuilders[name]; dup {
		panic("sim: RegisterPricer called twice for " + name)
	}
	pricerBuilders[name] = build
}

// RegisteredPricers lists the registered pricer names, sorted.
func RegisteredPricers() []string {
	names := make([]string, 0, len(pricerBuilders))
	for n := range pricerBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewPricerFromSpec builds the pricer a spec describes, via the
// registry.
func NewPricerFromSpec(spec PricerSpec, opts PricerBuildOptions) (Pricer, error) {
	build, ok := pricerBuilders[spec.Name]
	if !ok {
		return nil, fmt.Errorf("sim: unknown pricer %q (registered: %s)", spec.Name, strings.Join(RegisteredPricers(), ", "))
	}
	return build(spec, opts)
}

func init() {
	RegisterPricer("oracle", func(spec PricerSpec, opts PricerBuildOptions) (Pricer, error) {
		if err := spec.CheckAllowedFields(); err != nil {
			return nil, err
		}
		return NewOraclePricer(), nil
	})
	RegisterPricer("fixed", func(spec PricerSpec, opts PricerBuildOptions) (Pricer, error) {
		if err := spec.CheckAllowedFields("price"); err != nil {
			return nil, err
		}
		if !(spec.Price > 0) || math.IsInf(spec.Price, 0) {
			return nil, fmt.Errorf("sim: pricer \"fixed\" needs price set positive and finite, got %g", spec.Price)
		}
		return NewFixedPricer(spec.Price), nil
	})
	RegisterPricer("random", func(spec PricerSpec, opts PricerBuildOptions) (Pricer, error) {
		if err := spec.CheckAllowedFields("seed"); err != nil {
			return nil, err
		}
		return NewRandomPricer(spec.SeedOr(opts.DefaultSeed)), nil
	})
}
