package sim

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vtmig/internal/pomdp"
	"vtmig/internal/rl"
	"vtmig/internal/stackelberg"
)

// The golden tests pin the exact numeric sim.Report of every built-in
// pricer at a fixed seed — the simulator-level arm of the determinism
// contract: the same seed yields the same report, bit for bit, regardless
// of kernel batching, collection workers, shard counts, or GOMAXPROCS.
// Regenerate after an intentional numeric change with
//
//	go test ./internal/sim -run Golden -update
//
// (or `make golden`, which regenerates the experiments goldens too).
var updateGolden = flag.Bool("update", false, "rewrite the golden files instead of comparing")

// goldenSimConfig is the fixed scenario every pricer golden runs.
func goldenSimConfig() Config {
	cfg := DefaultConfig()
	cfg.DurationS = 120
	cfg.Seed = 123
	return cfg
}

// goldenFrozenAgent trains the small fixed-seed agent deployed by the
// frozen-DRL and warm-started online goldens.
func goldenFrozenAgent(t *testing.T) (*rl.PPO, pomdp.Config) {
	t.Helper()
	envCfg := pomdp.Config{
		Game:       stackelberg.DefaultGame(),
		HistoryLen: 3,
		Rounds:     30,
		Reward:     pomdp.RewardBinary,
		Seed:       123,
	}
	vec, err := pomdp.NewVecEnv(envCfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := rl.DefaultPPOConfig()
	pcfg.Seed = 123
	pcfg.MiniBatch = 10
	lo, hi := vec.ActionBounds()
	agent := rl.NewPPO(vec.ObsDim(), vec.ActDim(), lo, hi, pcfg)
	rl.NewVecTrainer(vec, agent, rl.TrainerConfig{
		Episodes:         4,
		RoundsPerEpisode: 30,
		UpdateEvery:      10,
	}).Run()
	return agent, envCfg
}

// checkGoldenReport compares the serialized report (FormatGoldenReport)
// against testdata/<name>, or rewrites the file under -update.
func checkGoldenReport(t *testing.T, name string, rep Report) {
	t.Helper()
	got := FormatGoldenReport(rep)
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update to record): %v", path, err)
	}
	if err := DiffGoldenReports(string(wantBytes), got, GoldenTol); err != nil {
		t.Errorf("%s: %v", name, err)
	}
}

// runGoldenSim executes the fixed golden scenario with the given pricer.
func runGoldenSim(t *testing.T, pricer Pricer) Report {
	t.Helper()
	cfg := goldenSimConfig()
	cfg.Pricer = pricer
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s.Run()
}

func TestGoldenReportOracle(t *testing.T) {
	checkGoldenReport(t, "report_oracle_golden.txt", runGoldenSim(t, NewOraclePricer()))
}

func TestGoldenReportFixed(t *testing.T) {
	checkGoldenReport(t, "report_fixed_golden.txt", runGoldenSim(t, NewFixedPricer(25)))
}

func TestGoldenReportRandom(t *testing.T) {
	checkGoldenReport(t, "report_random_golden.txt", runGoldenSim(t, NewRandomPricer(123)))
}

func TestGoldenReportDRL(t *testing.T) {
	if testing.Short() {
		t.Skip("training golden skipped in -short mode")
	}
	agent, envCfg := goldenFrozenAgent(t)
	beliefCfg := envCfg
	beliefCfg.Rounds = 1 << 20
	belief, err := pomdp.NewGameEnv(beliefCfg)
	if err != nil {
		t.Fatal(err)
	}
	checkGoldenReport(t, "report_drl_golden.txt", runGoldenSim(t, NewDRLPricer(belief, agent)))
}

func TestGoldenReportOnline(t *testing.T) {
	if testing.Short() {
		t.Skip("training golden skipped in -short mode")
	}
	agent, envCfg := goldenFrozenAgent(t)
	pricer, err := NewOnlinePricer(OnlinePricerConfig{
		Game:        envCfg.Game,
		HistoryLen:  envCfg.HistoryLen,
		Agent:       agent,
		UpdateEvery: 10,
		Seed:        123,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGoldenReport(t, "report_online_golden.txt", runGoldenSim(t, pricer))
}
