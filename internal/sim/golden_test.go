package sim

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"vtmig/internal/pomdp"
	"vtmig/internal/rl"
	"vtmig/internal/stackelberg"
)

// The golden tests pin the exact numeric sim.Report of every built-in
// pricer at a fixed seed — the simulator-level arm of the determinism
// contract: the same seed yields the same report, bit for bit, regardless
// of kernel batching, collection workers, shard counts, or GOMAXPROCS.
// Regenerate after an intentional numeric change with
//
//	go test ./internal/sim -run Golden -update
//
// (or `make golden`, which regenerates the experiments goldens too).
var updateGolden = flag.Bool("update", false, "rewrite the golden files instead of comparing")

// goldenTol absorbs decimal formatting only; values are serialized with
// full float64 round-trip precision.
const goldenTol = 1e-9

// goldenSimConfig is the fixed scenario every pricer golden runs.
func goldenSimConfig() Config {
	cfg := DefaultConfig()
	cfg.DurationS = 120
	cfg.Seed = 123
	return cfg
}

// goldenFrozenAgent trains the small fixed-seed agent deployed by the
// frozen-DRL and warm-started online goldens.
func goldenFrozenAgent(t *testing.T) (*rl.PPO, pomdp.Config) {
	t.Helper()
	envCfg := pomdp.Config{
		Game:       stackelberg.DefaultGame(),
		HistoryLen: 3,
		Rounds:     30,
		Reward:     pomdp.RewardBinary,
		Seed:       123,
	}
	vec, err := pomdp.NewVecEnv(envCfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := rl.DefaultPPOConfig()
	pcfg.Seed = 123
	pcfg.MiniBatch = 10
	lo, hi := vec.ActionBounds()
	agent := rl.NewPPO(vec.ObsDim(), vec.ActDim(), lo, hi, pcfg)
	rl.NewVecTrainer(vec, agent, rl.TrainerConfig{
		Episodes:         4,
		RoundsPerEpisode: 30,
		UpdateEvery:      10,
	}).Run()
	return agent, envCfg
}

// formatReport serializes a report with full float64 precision: a summary
// row plus one row per migration.
func formatReport(rep Report) string {
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	b01 := func(v bool) string {
		if v {
			return "1"
		}
		return "0"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# report %s\n", rep.PricerName)
	fmt.Fprintln(&b, "| handovers,pricing_rounds,failed_rounds,deferred,opted_out,msp_revenue,mean_aotm,max_aotm,mean_vmu_utility,placement_failures,mean_sensing_aoi,simulated_s")
	fmt.Fprintln(&b, strings.Join([]string{
		strconv.Itoa(rep.Handovers), strconv.Itoa(rep.PricingRounds), strconv.Itoa(rep.FailedRounds),
		strconv.Itoa(rep.Deferred), strconv.Itoa(rep.OptedOut), g(rep.MSPRevenue),
		g(rep.MeanAoTM), g(rep.MaxAoTM), g(rep.MeanVMUUtility),
		strconv.Itoa(rep.PlacementFailures), g(rep.MeanSensingAoI), g(rep.SimulatedS),
	}, ","))
	fmt.Fprintln(&b, "# migrations")
	fmt.Fprintln(&b, "| vehicle,start_s,from_rsu,to_rsu,price,bandwidth_mhz,aotm,data_moved_mb,downtime_s,duration_s,vmu_utility,msp_profit,pre_copy_converged")
	for _, m := range rep.Migrations {
		fmt.Fprintln(&b, strings.Join([]string{
			strconv.Itoa(m.VehicleID), g(m.StartS), strconv.Itoa(m.FromRSU), strconv.Itoa(m.ToRSU),
			g(m.Price), g(m.BandwidthMHz), g(m.AoTM), g(m.DataMovedMB),
			g(m.DowntimeS), g(m.DurationS), g(m.VMUUtility), g(m.MSPProfit), b01(m.PreCopyConverged),
		}, ","))
	}
	return b.String()
}

// checkGoldenReport compares the serialized report against
// testdata/<name>, or rewrites the file under -update.
func checkGoldenReport(t *testing.T, name string, rep Report) {
	t.Helper()
	got := formatReport(rep)
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update to record): %v", path, err)
	}
	compareGoldenReport(t, name, string(wantBytes), got)
}

// compareGoldenReport diffs two serialized reports cell by cell within
// goldenTol relative tolerance (headers exactly).
func compareGoldenReport(t *testing.T, name, want, got string) {
	t.Helper()
	wantLines := strings.Split(strings.TrimRight(want, "\n"), "\n")
	gotLines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(wantLines) != len(gotLines) {
		t.Fatalf("%s: %d lines, golden has %d", name, len(gotLines), len(wantLines))
	}
	for ln := range wantLines {
		w, g := wantLines[ln], gotLines[ln]
		if strings.HasPrefix(w, "#") || strings.HasPrefix(w, "|") {
			if w != g {
				t.Fatalf("%s line %d: header %q, golden %q", name, ln+1, g, w)
			}
			continue
		}
		wc, gc := strings.Split(w, ","), strings.Split(g, ",")
		if len(wc) != len(gc) {
			t.Fatalf("%s line %d: %d cells, golden has %d", name, ln+1, len(gc), len(wc))
		}
		for i := range wc {
			wv, err1 := strconv.ParseFloat(wc[i], 64)
			gv, err2 := strconv.ParseFloat(gc[i], 64)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s line %d cell %d: parse errors %v/%v", name, ln+1, i, err1, err2)
			}
			if diff := math.Abs(wv - gv); diff > goldenTol*math.Max(1, math.Max(math.Abs(wv), math.Abs(gv))) {
				t.Errorf("%s line %d cell %d: got %v, golden %v (diff %g)", name, ln+1, i, gv, wv, diff)
			}
		}
	}
}

// runGoldenSim executes the fixed golden scenario with the given pricer.
func runGoldenSim(t *testing.T, pricer Pricer) Report {
	t.Helper()
	cfg := goldenSimConfig()
	cfg.Pricer = pricer
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s.Run()
}

func TestGoldenReportOracle(t *testing.T) {
	checkGoldenReport(t, "report_oracle_golden.txt", runGoldenSim(t, NewOraclePricer()))
}

func TestGoldenReportFixed(t *testing.T) {
	checkGoldenReport(t, "report_fixed_golden.txt", runGoldenSim(t, NewFixedPricer(25)))
}

func TestGoldenReportRandom(t *testing.T) {
	checkGoldenReport(t, "report_random_golden.txt", runGoldenSim(t, NewRandomPricer(123)))
}

func TestGoldenReportDRL(t *testing.T) {
	if testing.Short() {
		t.Skip("training golden skipped in -short mode")
	}
	agent, envCfg := goldenFrozenAgent(t)
	beliefCfg := envCfg
	beliefCfg.Rounds = 1 << 20
	belief, err := pomdp.NewGameEnv(beliefCfg)
	if err != nil {
		t.Fatal(err)
	}
	checkGoldenReport(t, "report_drl_golden.txt", runGoldenSim(t, NewDRLPricer(belief, agent)))
}

func TestGoldenReportOnline(t *testing.T) {
	if testing.Short() {
		t.Skip("training golden skipped in -short mode")
	}
	agent, envCfg := goldenFrozenAgent(t)
	pricer, err := NewOnlinePricer(OnlinePricerConfig{
		Game:        envCfg.Game,
		HistoryLen:  envCfg.HistoryLen,
		Agent:       agent,
		UpdateEvery: 10,
		Seed:        123,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGoldenReport(t, "report_online_golden.txt", runGoldenSim(t, pricer))
}
