package sim

import (
	"math"
	"testing"

	"vtmig/internal/pomdp"
)

// FuzzSimConfigValidate pins the configuration contract: Validate (and
// New behind it) must reject broken configurations with an error — never
// a panic — and any configuration Validate accepts must construct.
func FuzzSimConfigValidate(f *testing.F) {
	base := DefaultConfig()
	f.Add(base.Vehicles, base.SpeedMinMps, base.SpeedMaxMps, base.TimeStepS, base.DurationS,
		base.AlphaMin, base.AlphaMax, base.VTMemoryMinMB, base.VTMemoryMaxMB,
		base.PricingFailureRate, base.Cost, base.PMax, base.SensingPeriodS, base.SensingDelayS,
		false, 0.0, 0.0, 0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(0, -1.0, 0.0, 0.0, -5.0, 0.0, -1.0, 0.0, -1.0, 1.5, -2.0, -2.0, 0.0, -1.0,
		true, -0.5, 0.0, -3, 7, -10.0, 20.0, 2.0, 0.0, -1.0)
	f.Add(3, 5.0, 4.0, 1.0, 60.0, 5.0, 4.0, 100.0, 50.0, 0.99, 50.0, 5.0, 0.5, 0.0,
		false, 0.1, 30.0, 8, 2, 0.0, 50.0, 120.0, 0.5, 0.8)
	f.Add(1, math.Inf(1), math.Inf(1), 1e-9, 1e12, 1e300, 1e300, 1e300, 1e300, 0.0, 1e-300, 1e300, 1e-300, 1e300,
		true, math.Inf(1), math.NaN(), 1<<30, 99, math.NaN(), math.Inf(1), math.NaN(), math.Inf(1), math.NaN())
	f.Fuzz(func(t *testing.T, vehicles int,
		speedMin, speedMax, timeStep, duration,
		alphaMin, alphaMax, memMin, memMax,
		failureRate, cost, pmax, sensingPeriod, sensingDelay float64,
		useGrid bool, churnRate, churnDwell float64, churnMax, outageRSU int,
		outageStart, outageEnd, demandPeriod, demandDay, classWeight float64) {
		cfg := DefaultConfig()
		cfg.Vehicles = vehicles
		cfg.SpeedMinMps, cfg.SpeedMaxMps = speedMin, speedMax
		cfg.TimeStepS, cfg.DurationS = timeStep, duration
		cfg.AlphaMin, cfg.AlphaMax = alphaMin, alphaMax
		cfg.VTMemoryMinMB, cfg.VTMemoryMaxMB = memMin, memMax
		cfg.PricingFailureRate = failureRate
		cfg.Cost, cfg.PMax = cost, pmax
		cfg.SensingPeriodS, cfg.SensingDelayS = sensingPeriod, sensingDelay
		if useGrid {
			cfg.Mobility = MobilityGrid
			cfg.RSUCount = 0
			cfg.Grid = GridConfig{Rows: 3, Cols: 3, SpacingM: 400}
		}
		cfg.Churn = ChurnConfig{ArrivalRatePerS: churnRate, MeanDwellS: churnDwell, MaxVehicles: churnMax}
		cfg.Outages = []OutageWindow{{RSU: outageRSU, StartS: outageStart, EndS: outageEnd}}
		cfg.Demand = DemandConfig{PeriodS: demandPeriod, DayFraction: demandDay, NightSpeedFactor: 0.5, NightSensingFactor: 2}
		cfg.Classes = []VehicleClass{{Name: "fuzzed", Weight: classWeight}}

		// Neither Validate nor New may panic, whatever the numbers; an
		// accepted configuration must build a simulator. Cap the vehicle
		// count so accepted configs stay allocation-bounded.
		if vehicles > 1<<12 {
			t.Skip("vehicle count outside the fuzzed range")
		}
		if err := cfg.Validate(); err != nil {
			return
		}
		if _, err := New(cfg); err != nil {
			t.Fatalf("Validate accepted a config New rejects: %v (%+v)", err, cfg)
		}
	})
}

// FuzzOnlinePricerConfigValidate extends the pin to the online pricer's
// configuration: invalid values error rather than panic.
func FuzzOnlinePricerConfigValidate(f *testing.F) {
	f.Add(4, 20, int64(1), 0, 0.0)
	f.Add(-1, -1, int64(0), 99, -2.0)
	f.Add(0, 0, int64(7), 2, 0.5)
	f.Fuzz(func(t *testing.T, historyLen, updateEvery int, seed int64, reward int, tolFrac float64) {
		if historyLen > 1<<10 {
			t.Skip("history length outside the fuzzed range")
		}
		cfg := onlineCfg()
		cfg.HistoryLen = historyLen
		cfg.UpdateEvery = updateEvery
		cfg.Seed = seed
		cfg.Reward = pomdp.RewardKind(reward)
		cfg.BestTolFrac = tolFrac
		if err := cfg.Validate(); err != nil {
			return
		}
		if _, err := NewOnlinePricer(cfg); err != nil {
			t.Fatalf("Validate accepted a config NewOnlinePricer rejects: %v", err)
		}
	})
}
