// Package sim is the end-to-end vehicular-metaverse simulator: vehicles
// drive along a highway of RSUs; every handover triggers a VT migration;
// each migration round runs the Stackelberg incentive mechanism to price
// bandwidth; granted bandwidth is held in an OFDMA pool while the pre-copy
// migration is in flight; and the Age of Twin Migration of every completed
// migration is recorded.
//
// The paper evaluates the mechanism in isolation; this simulator is the
// "prototype system" its conclusion lists as future work, and doubles as
// an integration harness for every substrate package.
package sim

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"vtmig/internal/channel"
	"vtmig/internal/migration"
	"vtmig/internal/rsu"
	"vtmig/internal/stackelberg"
)

// Pricer decides the MSP's unit bandwidth price for one migration round.
type Pricer interface {
	// Name identifies the pricer in reports.
	Name() string
	// PriceFor returns the price for the given round's game.
	PriceFor(g *stackelberg.Game) float64
}

// oraclePricer plays the closed-form Stackelberg equilibrium each round.
type oraclePricer struct{}

// NewOraclePricer returns the complete-information equilibrium pricer.
func NewOraclePricer() Pricer { return oraclePricer{} }

func (oraclePricer) Name() string { return "stackelberg-oracle" }
func (oraclePricer) PriceFor(g *stackelberg.Game) float64 {
	return g.Solve().Price
}

// fixedPricer posts a constant price.
type fixedPricer struct{ price float64 }

// NewFixedPricer returns a constant-price pricer.
func NewFixedPricer(price float64) Pricer { return fixedPricer{price: price} }

func (f fixedPricer) Name() string                         { return fmt.Sprintf("fixed(%.3g)", f.price) }
func (f fixedPricer) PriceFor(g *stackelberg.Game) float64 { return f.price }

// randomPricer draws a uniform price in [C, pmax] each round.
type randomPricer struct{ rng *rand.Rand }

// NewRandomPricer returns the paper's random baseline as a simulator
// pricer.
func NewRandomPricer(seed int64) Pricer {
	return &randomPricer{rng: rand.New(rand.NewSource(seed))}
}

func (r *randomPricer) Name() string { return "random" }
func (r *randomPricer) PriceFor(g *stackelberg.Game) float64 {
	return g.Cost + r.rng.Float64()*(g.PMax-g.Cost)
}

// PricerFunc adapts a function (e.g. a trained DRL policy closure) into a
// Pricer.
type PricerFunc struct {
	// Label names the pricer.
	Label string
	// Fn maps a round's game to a price.
	Fn func(g *stackelberg.Game) float64
}

// Name implements Pricer.
func (p PricerFunc) Name() string { return p.Label }

// PriceFor implements Pricer.
func (p PricerFunc) PriceFor(g *stackelberg.Game) float64 { return p.Fn(g) }

// Mobility kinds selectable via Config.Mobility.
const (
	// MobilityHighway is the circular highway world (the default; an
	// empty Config.Mobility means highway).
	MobilityHighway = "highway"
	// MobilityGrid is the Manhattan street-grid world with one RSU per
	// intersection.
	MobilityGrid = "grid"
)

// ShardConfig turns on region-sharded stepping: the RSU lattice is split
// into Regions contiguous id-blocks (row bands on the grid world,
// highway arcs on the circular world), each region's resident vehicles
// are stepped on their own goroutine into per-vehicle staging state, and
// cross-region handoffs travel through per-shard outboxes applied in
// fixed shard-index order at each tick boundary.
//
// Sharding is pure work partitioning — determinism contract rule 7: any
// region count × GOMAXPROCS produces a bit-identical sim.Report, trace,
// and online-pricer weights to the serial simulator. Everything
// order-sensitive (completions, outages, churn, handover observation,
// pricing, trace emission) stays serial; the parallel phase touches only
// per-vehicle-independent state (kinematics, sensing streams, staged
// serving-RSU lookups) that consumes no shared RNG draws.
type ShardConfig struct {
	// Regions is the number of contiguous RSU regions stepped in
	// parallel; 0 (the default) keeps the serial stepping path.
	Regions int
}

// Enabled reports whether region sharding is active.
func (sc ShardConfig) Enabled() bool { return sc.Regions > 0 }

// GridConfig parameterizes the Manhattan grid world (Config.Mobility ==
// MobilityGrid): Rows×Cols intersections spaced SpacingM apart, one RSU
// per intersection with coverage radius Config.RSURadiusM.
type GridConfig struct {
	// Rows and Cols count the horizontal and vertical streets (≥ 2 each).
	Rows, Cols int
	// SpacingM is the distance between adjacent parallel streets.
	SpacingM float64
	// TurnSeed salts the per-vehicle turn-decision RNG streams; 0 adopts
	// Config.Seed.
	TurnSeed int64
}

// VehicleClass describes one heterogeneous vehicle population. Zero
// fields adopt the corresponding top-level Config range, so a class only
// states what makes it different (the PR 6 adopt-or-match convention
// applied to workload description).
type VehicleClass struct {
	// Name labels the class in scenario files.
	Name string
	// Weight is the class's relative share of spawns (> 0; weights need
	// not sum to 1).
	Weight float64
	// SpeedMinMps and SpeedMaxMps override the speed range (both or
	// neither).
	SpeedMinMps, SpeedMaxMps float64
	// AlphaMin and AlphaMax override the immersion-coefficient range.
	AlphaMin, AlphaMax float64
	// VTMemoryMinMB and VTMemoryMaxMB override the twin-size range.
	VTMemoryMinMB, VTMemoryMaxMB float64
	// SensingPeriodS overrides the sensing update period.
	SensingPeriodS float64
}

// ChurnConfig turns on Poisson vehicle arrivals and exponential dwell
// departures. All churn randomness comes from a dedicated counted RNG
// stream (mathx.CountingSource) separate from the main simulation stream,
// so enabling churn never shifts the draws behind vehicle profiles or
// failure injection, and churn itself obeys the determinism contract.
type ChurnConfig struct {
	// ArrivalRatePerS is the Poisson arrival rate λ in vehicles per
	// simulated second; 0 disables churn entirely.
	ArrivalRatePerS float64
	// MeanDwellS is the mean of each vehicle's exponential dwell time.
	MeanDwellS float64
	// MaxVehicles caps the concurrent fleet (arrivals beyond it are
	// dropped); 0 means uncapped.
	MaxVehicles int
	// Seed seeds the churn stream; 0 derives a seed from Config.Seed.
	Seed int64
}

// Enabled reports whether churn is active.
func (c ChurnConfig) Enabled() bool { return c.ArrivalRatePerS > 0 }

// OutageWindow schedules one RSU outage: the RSU serves nobody while
// StartS ≤ t < EndS, so nearby vehicles re-home to the nearest live RSU
// (or go uncovered in a coverage hole).
type OutageWindow struct {
	// RSU is the affected RSU id.
	RSU int
	// StartS and EndS bound the outage in simulated seconds.
	StartS, EndS float64
}

// DemandConfig superimposes a day/night demand cycle: during the night
// fraction of each period vehicles slow down (fewer handovers, so less
// migration demand) and sensing updates thin out.
type DemandConfig struct {
	// PeriodS is the full day+night cycle length; 0 disables the cycle.
	PeriodS float64
	// DayFraction is the share of each period that is day (0 < f < 1).
	DayFraction float64
	// NightSpeedFactor scales vehicle speeds at night (> 0).
	NightSpeedFactor float64
	// NightSensingFactor scales sensing update periods at night (> 0; 2
	// means half the update rate).
	NightSensingFactor float64
}

// Enabled reports whether the demand cycle is active.
func (d DemandConfig) Enabled() bool { return d.PeriodS > 0 }

// Config parameterizes a simulation run.
type Config struct {
	// Mobility selects the road world: MobilityHighway ("" defaults to
	// it) or MobilityGrid.
	Mobility string
	// HighwayLengthM, RSUCount, and RSURadiusM build the highway
	// topology; RSURadiusM also serves as the grid RSU coverage radius.
	HighwayLengthM float64
	RSUCount       int
	RSURadiusM     float64
	// Grid configures the Manhattan grid world (Mobility == MobilityGrid).
	Grid GridConfig
	// Vehicles is the number of vehicles (= VMUs) at t = 0.
	Vehicles int
	// SpeedMinMps and SpeedMaxMps bound the per-vehicle constant speeds.
	SpeedMinMps, SpeedMaxMps float64
	// TimeStepS is the mobility update step in seconds.
	TimeStepS float64
	// DurationS is the simulated horizon in seconds.
	DurationS float64

	// Channel is the RSU-to-RSU link template; the per-round distance is
	// overridden with the actual source/destination RSU distance.
	Channel channel.Params
	// Cost, PMax, and BMaxMHz configure the MSP (model units).
	Cost, PMax, BMaxMHz float64

	// AlphaMin and AlphaMax bound the per-VMU immersion coefficients
	// (paper: [5, 20]).
	AlphaMin, AlphaMax float64
	// VTMemoryMinMB and VTMemoryMaxMB bound the twins' memory footprints
	// (paper: total data 100–300 MB).
	VTMemoryMinMB, VTMemoryMaxMB float64
	// DirtyRateMBps is the twins' page-dirty rate during migration.
	DirtyRateMBps float64

	// Pricer is the MSP's pricing strategy for migration rounds.
	Pricer Pricer
	// PricingFailureRate injects control-plane failures: with this
	// probability a round's pricing exchange is lost and the migrations
	// retry at the next step.
	PricingFailureRate float64

	// RSUCapacity is each RSU edge server's resource pool for hosting
	// twins.
	RSUCapacity rsu.Resources
	// TraceWriter, when non-nil, receives every simulation event as a
	// JSON line (see internal/trace).
	TraceWriter io.Writer
	// SensingPeriodS and SensingDelayS model the VMUs' physical-virtual
	// synchronization stream: one sensing update is generated every
	// period and delivered after the delay — except while the twin is
	// paused during stop-and-copy downtime, when updates are lost. The
	// report's sensing AoI aggregates the resulting age processes.
	SensingPeriodS, SensingDelayS float64

	// Classes partitions spawns into heterogeneous vehicle populations;
	// empty means one homogeneous population drawn from the top-level
	// ranges (and costs no extra RNG draws, keeping legacy runs
	// bit-identical).
	Classes []VehicleClass
	// Churn configures Poisson arrivals and exponential-dwell departures.
	Churn ChurnConfig
	// Outages schedules RSU downtime windows.
	Outages []OutageWindow
	// Demand configures the day/night demand cycle.
	Demand DemandConfig

	// Shards configures region-sharded parallel stepping (contract
	// rule 7); the zero value keeps the serial path.
	Shards ShardConfig

	// DiscardMigrationRecords drops the per-migration records from the
	// report, keeping only the streaming aggregates (counts, revenue,
	// mean/max AoTM, mean utility) — the fleet-scale mode where report
	// memory stays flat in migration count. Golden formatting of
	// individual migrations is unavailable with this set.
	DiscardMigrationRecords bool

	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig returns a 6-vehicle highway scenario aligned with the
// paper's parameter ranges.
func DefaultConfig() Config {
	return Config{
		HighwayLengthM: 8000,
		RSUCount:       8,
		RSURadiusM:     500,
		Vehicles:       6,
		SpeedMinMps:    20,
		SpeedMaxMps:    35,
		TimeStepS:      1,
		DurationS:      600,
		Channel:        channel.DefaultParams(),
		Cost:           5,
		PMax:           50,
		BMaxMHz:        0.5,
		AlphaMin:       5,
		AlphaMax:       20,
		VTMemoryMinMB:  100,
		VTMemoryMaxMB:  300,
		DirtyRateMBps:  20,
		Pricer:         NewOraclePricer(),
		RSUCapacity:    rsu.Resources{CPU: 16, GPU: 8, MemoryGB: 64, StorageGB: 1000},
		SensingPeriodS: 0.5,
		SensingDelayS:  0.05,
		Seed:           1,
	}
}

// EffectiveRSUCount is the number of RSUs the configured world will have:
// Grid.Rows×Grid.Cols for the grid world, Config.RSUCount otherwise.
func (c Config) EffectiveRSUCount() int {
	if c.Mobility == MobilityGrid {
		return c.Grid.Rows * c.Grid.Cols
	}
	return c.RSUCount
}

// resolvedClass is a VehicleClass with every adopted Config default
// filled in — the ranges spawns actually draw from.
type resolvedClass struct {
	speedMin, speedMax float64
	alphaMin, alphaMax float64
	memMin, memMax     float64
	sensingPeriodS     float64
}

// resolve fills a class's zero fields from the top-level Config ranges.
func (vc VehicleClass) resolve(c Config) resolvedClass {
	r := resolvedClass{
		speedMin: c.SpeedMinMps, speedMax: c.SpeedMaxMps,
		alphaMin: c.AlphaMin, alphaMax: c.AlphaMax,
		memMin: c.VTMemoryMinMB, memMax: c.VTMemoryMaxMB,
		sensingPeriodS: c.SensingPeriodS,
	}
	if vc.SpeedMinMps != 0 || vc.SpeedMaxMps != 0 {
		r.speedMin, r.speedMax = vc.SpeedMinMps, vc.SpeedMaxMps
	}
	if vc.AlphaMin != 0 || vc.AlphaMax != 0 {
		r.alphaMin, r.alphaMax = vc.AlphaMin, vc.AlphaMax
	}
	if vc.VTMemoryMinMB != 0 || vc.VTMemoryMaxMB != 0 {
		r.memMin, r.memMax = vc.VTMemoryMinMB, vc.VTMemoryMaxMB
	}
	if vc.SensingPeriodS != 0 {
		r.sensingPeriodS = vc.SensingPeriodS
	}
	return r
}

// Validate reports whether the configuration is usable. Checks are
// written in the !(x > 0) form where it matters so NaNs are rejected
// rather than slipping through a reversed comparison.
func (c Config) Validate() error {
	switch c.Mobility {
	case "", MobilityHighway:
		if !(c.HighwayLengthM > 0) {
			return fmt.Errorf("sim: Config.HighwayLengthM must be positive, got %g", c.HighwayLengthM)
		}
		if c.RSUCount < 1 {
			return fmt.Errorf("sim: Config.RSUCount must be at least 1, got %d", c.RSUCount)
		}
	case MobilityGrid:
		if c.Grid.Rows < 2 || c.Grid.Cols < 2 {
			return fmt.Errorf("sim: Config.Grid needs at least 2 rows and 2 cols, got %dx%d", c.Grid.Rows, c.Grid.Cols)
		}
		if !(c.Grid.SpacingM > 0) || math.IsInf(c.Grid.SpacingM, 0) {
			return fmt.Errorf("sim: Config.Grid.SpacingM must be positive and finite, got %g", c.Grid.SpacingM)
		}
		if c.RSUCount != 0 && c.RSUCount != c.Grid.Rows*c.Grid.Cols {
			return fmt.Errorf("sim: Config.RSUCount %d conflicts with Config.Grid (%dx%d grid has %d intersection RSUs); leave RSUCount 0 to adopt it",
				c.RSUCount, c.Grid.Rows, c.Grid.Cols, c.Grid.Rows*c.Grid.Cols)
		}
	default:
		return fmt.Errorf("sim: Config.Mobility %q unknown (want %q or %q)", c.Mobility, MobilityHighway, MobilityGrid)
	}
	if !(c.RSURadiusM > 0) {
		return fmt.Errorf("sim: Config.RSURadiusM must be positive, got %g", c.RSURadiusM)
	}
	if c.Vehicles < 1 {
		return fmt.Errorf("sim: Config.Vehicles must be at least 1, got %d", c.Vehicles)
	}
	if !(c.SpeedMinMps > 0) || c.SpeedMaxMps < c.SpeedMinMps {
		return fmt.Errorf("sim: Config.SpeedMinMps/SpeedMaxMps range [%g, %g] invalid (need 0 < min <= max)", c.SpeedMinMps, c.SpeedMaxMps)
	}
	if !(c.TimeStepS > 0) {
		return fmt.Errorf("sim: Config.TimeStepS must be positive, got %g", c.TimeStepS)
	}
	if !(c.DurationS > 0) {
		return fmt.Errorf("sim: Config.DurationS must be positive, got %g", c.DurationS)
	}
	if !(c.AlphaMin > 0) || c.AlphaMax < c.AlphaMin {
		return fmt.Errorf("sim: Config.AlphaMin/AlphaMax range [%g, %g] invalid (need 0 < min <= max)", c.AlphaMin, c.AlphaMax)
	}
	if !(c.VTMemoryMinMB > 0) || c.VTMemoryMaxMB < c.VTMemoryMinMB {
		return fmt.Errorf("sim: Config.VTMemoryMinMB/VTMemoryMaxMB range [%g, %g] invalid (need 0 < min <= max)", c.VTMemoryMinMB, c.VTMemoryMaxMB)
	}
	if !(c.PricingFailureRate >= 0) || c.PricingFailureRate >= 1 {
		return fmt.Errorf("sim: Config.PricingFailureRate %g out of [0, 1)", c.PricingFailureRate)
	}
	if c.Pricer == nil {
		return fmt.Errorf("sim: Config.Pricer must not be nil")
	}
	if !(c.Cost > 0) || c.PMax <= c.Cost {
		return fmt.Errorf("sim: Config.Cost/PMax price range [%g, %g] invalid (need 0 < cost < pmax)", c.Cost, c.PMax)
	}
	if err := c.RSUCapacity.Validate(); err != nil {
		return fmt.Errorf("sim: Config.RSUCapacity: %w", err)
	}
	if !(c.SensingPeriodS > 0) {
		return fmt.Errorf("sim: Config.SensingPeriodS must be positive, got %g", c.SensingPeriodS)
	}
	if !(c.SensingDelayS >= 0) {
		return fmt.Errorf("sim: Config.SensingDelayS must not be negative, got %g", c.SensingDelayS)
	}
	for i, cl := range c.Classes {
		if !(cl.Weight > 0) || math.IsInf(cl.Weight, 0) {
			return fmt.Errorf("sim: Config.Classes[%d] (%q) Weight must be positive and finite, got %g", i, cl.Name, cl.Weight)
		}
		r := cl.resolve(c)
		if !(r.speedMin > 0) || r.speedMax < r.speedMin {
			return fmt.Errorf("sim: Config.Classes[%d] (%q) speed range [%g, %g] invalid (need 0 < min <= max)", i, cl.Name, r.speedMin, r.speedMax)
		}
		if !(r.alphaMin > 0) || r.alphaMax < r.alphaMin {
			return fmt.Errorf("sim: Config.Classes[%d] (%q) alpha range [%g, %g] invalid (need 0 < min <= max)", i, cl.Name, r.alphaMin, r.alphaMax)
		}
		if !(r.memMin > 0) || r.memMax < r.memMin {
			return fmt.Errorf("sim: Config.Classes[%d] (%q) VT memory range [%g, %g] invalid (need 0 < min <= max)", i, cl.Name, r.memMin, r.memMax)
		}
		if !(r.sensingPeriodS > 0) || math.IsInf(r.sensingPeriodS, 0) {
			return fmt.Errorf("sim: Config.Classes[%d] (%q) SensingPeriodS must be positive and finite, got %g", i, cl.Name, r.sensingPeriodS)
		}
	}
	if !(c.Churn.ArrivalRatePerS >= 0) || math.IsInf(c.Churn.ArrivalRatePerS, 0) {
		return fmt.Errorf("sim: Config.Churn.ArrivalRatePerS must be finite and non-negative, got %g", c.Churn.ArrivalRatePerS)
	}
	if c.Churn.Enabled() {
		if !(c.Churn.MeanDwellS > 0) || math.IsInf(c.Churn.MeanDwellS, 0) {
			return fmt.Errorf("sim: Config.Churn.MeanDwellS must be positive and finite, got %g", c.Churn.MeanDwellS)
		}
		if c.Churn.MaxVehicles < 0 {
			return fmt.Errorf("sim: Config.Churn.MaxVehicles must not be negative, got %d", c.Churn.MaxVehicles)
		}
	}
	rsus := c.EffectiveRSUCount()
	for i, w := range c.Outages {
		if w.RSU < 0 || w.RSU >= rsus {
			return fmt.Errorf("sim: Config.Outages[%d].RSU %d out of range (world has %d RSUs)", i, w.RSU, rsus)
		}
		if !(w.StartS >= 0) || !(w.EndS > w.StartS) {
			return fmt.Errorf("sim: Config.Outages[%d] window [%g, %g) invalid (need 0 <= start < end)", i, w.StartS, w.EndS)
		}
	}
	if c.Shards.Regions < 0 {
		return fmt.Errorf("sim: Config.Shards.Regions must not be negative, got %d", c.Shards.Regions)
	}
	if !(c.Demand.PeriodS >= 0) || math.IsInf(c.Demand.PeriodS, 0) {
		return fmt.Errorf("sim: Config.Demand.PeriodS must be finite and non-negative, got %g", c.Demand.PeriodS)
	}
	if c.Demand.Enabled() {
		if !(c.Demand.DayFraction > 0) || !(c.Demand.DayFraction < 1) {
			return fmt.Errorf("sim: Config.Demand.DayFraction %g out of (0, 1)", c.Demand.DayFraction)
		}
		if !(c.Demand.NightSpeedFactor > 0) || math.IsInf(c.Demand.NightSpeedFactor, 0) {
			return fmt.Errorf("sim: Config.Demand.NightSpeedFactor must be positive and finite, got %g", c.Demand.NightSpeedFactor)
		}
		if !(c.Demand.NightSensingFactor > 0) || math.IsInf(c.Demand.NightSensingFactor, 0) {
			return fmt.Errorf("sim: Config.Demand.NightSensingFactor must be positive and finite, got %g", c.Demand.NightSensingFactor)
		}
	}
	return nil
}

// MigrationRecord describes one completed VT migration.
type MigrationRecord struct {
	VehicleID        int
	StartS           float64
	FromRSU, ToRSU   int
	Price            float64
	BandwidthMHz     float64
	AoTM             float64
	DataMovedMB      float64
	DowntimeS        float64
	DurationS        float64
	VMUUtility       float64
	MSPProfit        float64
	PreCopyConverged bool
}

// Report aggregates a simulation run. Every aggregate field is
// maintained streaming (accumulated in completion order as migrations
// finish), so a run with Config.DiscardMigrationRecords set reports the
// same numbers with memory flat in fleet size.
type Report struct {
	// Migrations are all completed migrations in completion order; nil
	// when Config.DiscardMigrationRecords is set.
	Migrations []MigrationRecord
	// Completed counts completed migrations — len(Migrations) when
	// records are kept, and the only completion count when they are
	// discarded.
	Completed int
	// Handovers counts detected serving-RSU changes (excluding first
	// attaches).
	Handovers int
	// PricingRounds counts executed incentive rounds.
	PricingRounds int
	// FailedRounds counts rounds lost to injected failures.
	FailedRounds int
	// Deferred counts migrations postponed by failures or exhausted
	// bandwidth.
	Deferred int
	// OptedOut counts migrations whose VMU declined to buy bandwidth
	// (zero best response at the posted price).
	OptedOut int
	// MSPRevenue is Σ (p − C)·b over all grants.
	MSPRevenue float64
	// MeanAoTM and MaxAoTM summarize migration freshness.
	MeanAoTM, MaxAoTM float64
	// MeanVMUUtility averages follower utilities over migrations.
	MeanVMUUtility float64
	// PlacementFailures counts migrations whose destination edge server
	// had no headroom (the twin stays at the source, served remotely).
	PlacementFailures int
	// Arrivals and Departures count churn events (0 without churn).
	Arrivals, Departures int
	// MeanSensingAoI is the time-average Age of Information of the
	// vehicles' sensing streams (physical-virtual synchronization),
	// averaged over vehicles. Migration downtime loses updates and shows
	// up here.
	MeanSensingAoI float64
	// SimulatedS is the simulated horizon.
	SimulatedS float64
	// PricerName records the MSP strategy.
	PricerName string
}

// completion is a scheduled migration-finished event.
type completion struct {
	at     float64
	record MigrationRecord
}

// completionHeap is a min-heap on completion time.
type completionHeap []completion

func (h completionHeap) Len() int           { return len(h) }
func (h completionHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h completionHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)        { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// vmuProfile is a vehicle's static game profile.
type vmuProfile struct {
	alpha float64
	vt    migration.VTSpec
}

// pendingMigration is a handover waiting for a pricing round.
type pendingMigration struct {
	vehicleID      int
	fromRSU, toRSU int
}
