// Package sim is the end-to-end vehicular-metaverse simulator: vehicles
// drive along a highway of RSUs; every handover triggers a VT migration;
// each migration round runs the Stackelberg incentive mechanism to price
// bandwidth; granted bandwidth is held in an OFDMA pool while the pre-copy
// migration is in flight; and the Age of Twin Migration of every completed
// migration is recorded.
//
// The paper evaluates the mechanism in isolation; this simulator is the
// "prototype system" its conclusion lists as future work, and doubles as
// an integration harness for every substrate package.
package sim

import (
	"fmt"
	"io"
	"math/rand"

	"vtmig/internal/channel"
	"vtmig/internal/migration"
	"vtmig/internal/rsu"
	"vtmig/internal/stackelberg"
)

// Pricer decides the MSP's unit bandwidth price for one migration round.
type Pricer interface {
	// Name identifies the pricer in reports.
	Name() string
	// PriceFor returns the price for the given round's game.
	PriceFor(g *stackelberg.Game) float64
}

// oraclePricer plays the closed-form Stackelberg equilibrium each round.
type oraclePricer struct{}

// NewOraclePricer returns the complete-information equilibrium pricer.
func NewOraclePricer() Pricer { return oraclePricer{} }

func (oraclePricer) Name() string { return "stackelberg-oracle" }
func (oraclePricer) PriceFor(g *stackelberg.Game) float64 {
	return g.Solve().Price
}

// fixedPricer posts a constant price.
type fixedPricer struct{ price float64 }

// NewFixedPricer returns a constant-price pricer.
func NewFixedPricer(price float64) Pricer { return fixedPricer{price: price} }

func (f fixedPricer) Name() string                         { return fmt.Sprintf("fixed(%.3g)", f.price) }
func (f fixedPricer) PriceFor(g *stackelberg.Game) float64 { return f.price }

// randomPricer draws a uniform price in [C, pmax] each round.
type randomPricer struct{ rng *rand.Rand }

// NewRandomPricer returns the paper's random baseline as a simulator
// pricer.
func NewRandomPricer(seed int64) Pricer {
	return &randomPricer{rng: rand.New(rand.NewSource(seed))}
}

func (r *randomPricer) Name() string { return "random" }
func (r *randomPricer) PriceFor(g *stackelberg.Game) float64 {
	return g.Cost + r.rng.Float64()*(g.PMax-g.Cost)
}

// PricerFunc adapts a function (e.g. a trained DRL policy closure) into a
// Pricer.
type PricerFunc struct {
	// Label names the pricer.
	Label string
	// Fn maps a round's game to a price.
	Fn func(g *stackelberg.Game) float64
}

// Name implements Pricer.
func (p PricerFunc) Name() string { return p.Label }

// PriceFor implements Pricer.
func (p PricerFunc) PriceFor(g *stackelberg.Game) float64 { return p.Fn(g) }

// Config parameterizes a simulation run.
type Config struct {
	// HighwayLengthM, RSUCount, and RSURadiusM build the road topology.
	HighwayLengthM float64
	RSUCount       int
	RSURadiusM     float64
	// Vehicles is the number of vehicles (= VMUs).
	Vehicles int
	// SpeedMinMps and SpeedMaxMps bound the per-vehicle constant speeds.
	SpeedMinMps, SpeedMaxMps float64
	// TimeStepS is the mobility update step in seconds.
	TimeStepS float64
	// DurationS is the simulated horizon in seconds.
	DurationS float64

	// Channel is the RSU-to-RSU link template; the per-round distance is
	// overridden with the actual source/destination RSU distance.
	Channel channel.Params
	// Cost, PMax, and BMaxMHz configure the MSP (model units).
	Cost, PMax, BMaxMHz float64

	// AlphaMin and AlphaMax bound the per-VMU immersion coefficients
	// (paper: [5, 20]).
	AlphaMin, AlphaMax float64
	// VTMemoryMinMB and VTMemoryMaxMB bound the twins' memory footprints
	// (paper: total data 100–300 MB).
	VTMemoryMinMB, VTMemoryMaxMB float64
	// DirtyRateMBps is the twins' page-dirty rate during migration.
	DirtyRateMBps float64

	// Pricer is the MSP's pricing strategy for migration rounds.
	Pricer Pricer
	// PricingFailureRate injects control-plane failures: with this
	// probability a round's pricing exchange is lost and the migrations
	// retry at the next step.
	PricingFailureRate float64

	// RSUCapacity is each RSU edge server's resource pool for hosting
	// twins.
	RSUCapacity rsu.Resources
	// TraceWriter, when non-nil, receives every simulation event as a
	// JSON line (see internal/trace).
	TraceWriter io.Writer
	// SensingPeriodS and SensingDelayS model the VMUs' physical-virtual
	// synchronization stream: one sensing update is generated every
	// period and delivered after the delay — except while the twin is
	// paused during stop-and-copy downtime, when updates are lost. The
	// report's sensing AoI aggregates the resulting age processes.
	SensingPeriodS, SensingDelayS float64

	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig returns a 6-vehicle highway scenario aligned with the
// paper's parameter ranges.
func DefaultConfig() Config {
	return Config{
		HighwayLengthM: 8000,
		RSUCount:       8,
		RSURadiusM:     500,
		Vehicles:       6,
		SpeedMinMps:    20,
		SpeedMaxMps:    35,
		TimeStepS:      1,
		DurationS:      600,
		Channel:        channel.DefaultParams(),
		Cost:           5,
		PMax:           50,
		BMaxMHz:        0.5,
		AlphaMin:       5,
		AlphaMax:       20,
		VTMemoryMinMB:  100,
		VTMemoryMaxMB:  300,
		DirtyRateMBps:  20,
		Pricer:         NewOraclePricer(),
		RSUCapacity:    rsu.Resources{CPU: 16, GPU: 8, MemoryGB: 64, StorageGB: 1000},
		SensingPeriodS: 0.5,
		SensingDelayS:  0.05,
		Seed:           1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Vehicles < 1 {
		return fmt.Errorf("sim: need at least one vehicle, got %d", c.Vehicles)
	}
	if c.SpeedMinMps <= 0 || c.SpeedMaxMps < c.SpeedMinMps {
		return fmt.Errorf("sim: bad speed range [%g, %g]", c.SpeedMinMps, c.SpeedMaxMps)
	}
	if c.TimeStepS <= 0 || c.DurationS <= 0 {
		return fmt.Errorf("sim: bad time step %g or duration %g", c.TimeStepS, c.DurationS)
	}
	if c.AlphaMin <= 0 || c.AlphaMax < c.AlphaMin {
		return fmt.Errorf("sim: bad alpha range [%g, %g]", c.AlphaMin, c.AlphaMax)
	}
	if c.VTMemoryMinMB <= 0 || c.VTMemoryMaxMB < c.VTMemoryMinMB {
		return fmt.Errorf("sim: bad VT memory range [%g, %g]", c.VTMemoryMinMB, c.VTMemoryMaxMB)
	}
	if c.PricingFailureRate < 0 || c.PricingFailureRate >= 1 {
		return fmt.Errorf("sim: pricing failure rate %g out of [0, 1)", c.PricingFailureRate)
	}
	if c.Pricer == nil {
		return fmt.Errorf("sim: nil pricer")
	}
	if c.Cost <= 0 || c.PMax <= c.Cost {
		return fmt.Errorf("sim: bad price range [%g, %g]", c.Cost, c.PMax)
	}
	if err := c.RSUCapacity.Validate(); err != nil {
		return err
	}
	if c.SensingPeriodS <= 0 || c.SensingDelayS < 0 {
		return fmt.Errorf("sim: bad sensing period %g or delay %g", c.SensingPeriodS, c.SensingDelayS)
	}
	return nil
}

// MigrationRecord describes one completed VT migration.
type MigrationRecord struct {
	VehicleID        int
	StartS           float64
	FromRSU, ToRSU   int
	Price            float64
	BandwidthMHz     float64
	AoTM             float64
	DataMovedMB      float64
	DowntimeS        float64
	DurationS        float64
	VMUUtility       float64
	MSPProfit        float64
	PreCopyConverged bool
}

// Report aggregates a simulation run.
type Report struct {
	// Migrations are all completed migrations in completion order.
	Migrations []MigrationRecord
	// Handovers counts detected serving-RSU changes (excluding first
	// attaches).
	Handovers int
	// PricingRounds counts executed incentive rounds.
	PricingRounds int
	// FailedRounds counts rounds lost to injected failures.
	FailedRounds int
	// Deferred counts migrations postponed by failures or exhausted
	// bandwidth.
	Deferred int
	// OptedOut counts migrations whose VMU declined to buy bandwidth
	// (zero best response at the posted price).
	OptedOut int
	// MSPRevenue is Σ (p − C)·b over all grants.
	MSPRevenue float64
	// MeanAoTM and MaxAoTM summarize migration freshness.
	MeanAoTM, MaxAoTM float64
	// MeanVMUUtility averages follower utilities over migrations.
	MeanVMUUtility float64
	// PlacementFailures counts migrations whose destination edge server
	// had no headroom (the twin stays at the source, served remotely).
	PlacementFailures int
	// MeanSensingAoI is the time-average Age of Information of the
	// vehicles' sensing streams (physical-virtual synchronization),
	// averaged over vehicles. Migration downtime loses updates and shows
	// up here.
	MeanSensingAoI float64
	// SimulatedS is the simulated horizon.
	SimulatedS float64
	// PricerName records the MSP strategy.
	PricerName string
}

// completion is a scheduled migration-finished event.
type completion struct {
	at     float64
	record MigrationRecord
}

// completionHeap is a min-heap on completion time.
type completionHeap []completion

func (h completionHeap) Len() int           { return len(h) }
func (h completionHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h completionHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)        { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// vmuProfile is a vehicle's static game profile.
type vmuProfile struct {
	alpha float64
	vt    migration.VTSpec
}

// pendingMigration is a handover waiting for a pricing round.
type pendingMigration struct {
	vehicleID      int
	fromRSU, toRSU int
}
