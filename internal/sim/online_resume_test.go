package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"vtmig/internal/nn"
	"vtmig/internal/pomdp"
	"vtmig/internal/rl"
	"vtmig/internal/stackelberg"
)

// This file pins the rule-6 extension of the determinism contract at the
// simulation level: pausing an online-pricer run at an optimization-phase
// boundary, snapshotting the pricer, rebuilding it from the checkpoint
// (persisted through the binary encoding), and swapping it into the same
// simulation is bit-identical — sim.Report and final weights — to never
// having stopped, even when the learner's shard count and GOMAXPROCS
// differ between the two legs.

// resumePPOConfig is the learner configuration shared by every run in
// this file; the checkpoint fingerprint pins it across the swap (Seed and
// Shards are excluded from the fingerprint by design — rules 2/3 make
// them bit-transparent).
func resumePPOConfig(shards int) rl.PPOConfig {
	cfg := rl.DefaultPPOConfig()
	cfg.Seed = 4
	cfg.MiniBatch = 10
	cfg.Shards = shards
	return cfg
}

// resumeWarmAgent trains the warm-start agent exactly as onlineSimRun
// does, with the given offline collection workers and shard count.
func resumeWarmAgent(t *testing.T, collectWorkers, shards int) *rl.PPO {
	t.Helper()
	game := stackelberg.DefaultGame()
	vec, err := pomdp.NewVecEnv(pomdp.Config{
		Game:       game,
		HistoryLen: 3,
		Rounds:     20,
		Reward:     pomdp.RewardBinary,
		Seed:       4,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := vec.ActionBounds()
	agent := rl.NewPPO(vec.ObsDim(), vec.ActDim(), lo, hi, resumePPOConfig(shards))
	rl.NewVecTrainer(vec, agent, rl.TrainerConfig{
		Episodes:         4,
		RoundsPerEpisode: 20,
		UpdateEvery:      10,
		CollectWorkers:   collectWorkers,
	}).Run()
	return agent
}

// resumeSimulator builds the fixed-seed simulation every run in this file
// drives.
func resumeSimulator(t *testing.T, pricer Pricer) *Simulator {
	t.Helper()
	cfg := DefaultConfig()
	cfg.DurationS = 240
	cfg.Seed = 11
	cfg.Pricer = pricer
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// weightsOf deep-copies an agent's parameter values.
func weightsOf(agent *rl.PPO) [][]float64 {
	var weights [][]float64
	for _, p := range agent.Params() {
		weights = append(weights, append([]float64(nil), p.Value...))
	}
	return weights
}

// uninterruptedRun is the reference: one simulation straight through.
func uninterruptedRun(t *testing.T, workers, shards int) (Report, [][]float64, *OnlinePricer) {
	t.Helper()
	pricer, err := NewOnlinePricer(OnlinePricerConfig{
		Game:        stackelberg.DefaultGame(),
		HistoryLen:  3,
		Agent:       resumeWarmAgent(t, workers, shards),
		UpdateEvery: 10,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := resumeSimulator(t, pricer)
	rep := s.Run()
	return rep, weightsOf(pricer.Agent()), pricer
}

// splitRun runs the same simulation but pauses at the first
// optimization-phase boundary in the second half, snapshots the pricer,
// persists the checkpoint through the binary encoding, rebuilds the
// pricer from it under a different shard count and GOMAXPROCS, swaps it
// in, and finishes the run.
func splitRun(t *testing.T, workers, shards1, shards2, gmp1, gmp2 int) (Report, [][]float64, *OnlinePricer) {
	t.Helper()
	prev := runtime.GOMAXPROCS(gmp1)
	defer runtime.GOMAXPROCS(prev)

	game := stackelberg.DefaultGame()
	pricer1, err := NewOnlinePricer(OnlinePricerConfig{
		Game:        game,
		HistoryLen:  3,
		Agent:       resumeWarmAgent(t, workers, shards1),
		UpdateEvery: 10,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := resumeSimulator(t, pricer1)
	steps := int(s.cfg.DurationS / s.cfg.TimeStepS)

	current := pricer1
	swapped := false
	for i := 0; i < steps; i++ {
		s.Step()
		// An optimization phase just completed iff the stream is at a
		// boundary (no Flush runs mid-simulation, so pending ==
		// rounds mod cadence).
		atBoundary := current.Updates() > 0 && current.Rounds()%current.UpdateEvery() == 0
		if swapped || i < steps/2 || !atBoundary {
			continue
		}
		ck, err := current.Snapshot()
		if err != nil {
			t.Fatalf("snapshot at step %d: %v", i, err)
		}
		// Persist through the compact binary encoding — the sim-level
		// resume exercises the full save/load path, not just the
		// in-memory checkpoint.
		var buf bytes.Buffer
		if err := ck.SaveBinary(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := nn.LoadCheckpoint(&buf)
		if err != nil {
			t.Fatal(err)
		}
		runtime.GOMAXPROCS(gmp2)
		resumed, err := NewOnlinePricerFromCheckpoint(OnlinePricerConfig{
			Game: game,
			PPO:  resumePPOConfig(shards2),
		}, loaded)
		if err != nil {
			t.Fatalf("resuming pricer: %v", err)
		}
		if err := s.SetPricer(resumed); err != nil {
			t.Fatal(err)
		}
		current = resumed
		swapped = true
	}
	if !swapped {
		t.Fatal("no optimization-phase boundary reached in the second half; resume never exercised")
	}
	rep := s.Finish()
	return rep, weightsOf(current.Agent()), current
}

// TestOnlineSimResumeBitIdentical is the sim-level resume table: the
// split run must be bit-identical to the uninterrupted reference while
// offline collection workers, the shard count of either leg, and
// GOMAXPROCS of either leg all vary.
func TestOnlineSimResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("online resume table skipped in -short mode")
	}
	refRep, refW, refPricer := uninterruptedRun(t, 1, 1)
	if refRep.PricingRounds == 0 || refPricer.Updates() == 0 {
		t.Fatalf("reference run is trivial: %+v", refRep)
	}
	for _, tc := range []struct {
		workers, shards1, shards2, gmp1, gmp2 int
	}{
		{1, 1, 2, 1, 4},
		{2, 2, 1, 4, 1},
		{3, 1, 3, 2, 2},
		{2, 3, 2, 1, 2},
	} {
		name := fmt.Sprintf("workers=%d/shards=%d-%d/gomaxprocs=%d-%d",
			tc.workers, tc.shards1, tc.shards2, tc.gmp1, tc.gmp2)
		t.Run(name, func(t *testing.T) {
			rep, w, pricer := splitRun(t, tc.workers, tc.shards1, tc.shards2, tc.gmp1, tc.gmp2)
			if !reflect.DeepEqual(refRep, rep) {
				t.Fatalf("report diverged from uninterrupted reference:\nref: %+v\ngot: %+v", refRep, rep)
			}
			sameBits(t, name, refW, w)
			if pricer.Rounds() != refPricer.Rounds() || pricer.Updates() != refPricer.Updates() {
				t.Fatalf("stream counters diverged: rounds %d updates %d, want rounds %d updates %d",
					pricer.Rounds(), pricer.Updates(), refPricer.Rounds(), refPricer.Updates())
			}
			if pricer.BestUtility() != refPricer.BestUtility() {
				t.Fatalf("best utility %v, want %v", pricer.BestUtility(), refPricer.BestUtility())
			}
		})
	}
}

// TestOnlinePricerSnapshotRejectsMidSegment pins the phase-boundary
// guard: a pricer with staged transitions refuses to snapshot instead of
// silently dropping them.
func TestOnlinePricerSnapshotRejectsMidSegment(t *testing.T) {
	game := stackelberg.DefaultGame()
	pricer, err := NewOnlinePricer(OnlinePricerConfig{Game: game, HistoryLen: 2, UpdateEvery: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pricer.PriceFor(game)
	if pricer.Rounds() != 1 {
		t.Fatalf("rounds = %d, want 1", pricer.Rounds())
	}
	if _, err := pricer.Snapshot(); err == nil {
		t.Fatal("mid-segment snapshot succeeded")
	}
	// After flushing the partial segment, the boundary is reached and the
	// snapshot round-trips through both encodings into a working pricer.
	if _, ran := pricer.Flush(); !ran {
		t.Fatal("flush ran no phase")
	}
	ck, err := pricer.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := NewOnlinePricerFromCheckpoint(OnlinePricerConfig{Game: game}, ck)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Rounds() != pricer.Rounds() || resumed.Updates() != pricer.Updates() {
		t.Fatalf("resumed counters rounds=%d updates=%d, want rounds=%d updates=%d",
			resumed.Rounds(), resumed.Updates(), pricer.Rounds(), pricer.Updates())
	}
	if resumed.BestUtility() != pricer.BestUtility() {
		t.Fatalf("resumed best %v, want %v", resumed.BestUtility(), pricer.BestUtility())
	}
}

// TestOnlinePricerResumeConfigMismatches pins the named construction
// errors of NewOnlinePricerFromCheckpoint.
func TestOnlinePricerResumeConfigMismatches(t *testing.T) {
	game := stackelberg.DefaultGame()
	pricer, err := NewOnlinePricer(OnlinePricerConfig{Game: game, HistoryLen: 2, UpdateEvery: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pricer.PriceFor(game)
	if _, ran := pricer.Flush(); !ran {
		t.Fatal("flush ran no phase")
	}
	ck, err := pricer.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range map[string]OnlinePricerConfig{
		"history-mismatch":   {Game: game, HistoryLen: 7},
		"cadence-mismatch":   {Game: game, UpdateEvery: 9},
		"reward-mismatch":    {Game: game, Reward: pomdp.RewardBinary},
		"agent-set":          {Game: game, Agent: pricer.Agent()},
		"tolerance-mismatch": {Game: game, BestTolFrac: 0.5},
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := NewOnlinePricerFromCheckpoint(cfg, ck); err == nil {
				t.Fatalf("%s accepted", name)
			}
		})
	}
	if _, err := NewOnlinePricerFromCheckpoint(OnlinePricerConfig{Game: game}, nil); err == nil {
		t.Fatal("nil checkpoint accepted")
	}
	weightsOnly := &nn.Checkpoint{Version: ck.Version, Params: ck.Params, Pricer: ck.Pricer}
	if _, err := NewOnlinePricerFromCheckpoint(OnlinePricerConfig{Game: game}, weightsOnly); err == nil {
		t.Fatal("checkpoint without training state accepted")
	}
	noPricer := &nn.Checkpoint{Version: ck.Version, Params: ck.Params, Opt: ck.Opt, RNG: ck.RNG, Meta: ck.Meta}
	if _, err := NewOnlinePricerFromCheckpoint(OnlinePricerConfig{Game: game}, noPricer); err == nil {
		t.Fatal("checkpoint without pricer section accepted")
	}
}
