package sim

import (
	"reflect"
	"testing"
)

// FuzzShardPartition fuzzes the region-sharded simulator against the
// serial one over randomized grids, fleets, region counts, churn rates,
// and an outage window, checking after every step that the shard
// partition conserves the fleet (no vehicle lost, duplicated, or
// double-homed) and at the end that the sharded report DeepEqual-matches
// the serial reference — rule 7 under adversarial inputs. The seed corpus
// doubles as a table test in ordinary runs, and the whole fuzzer runs
// under -race in make race-shardsim.
func FuzzShardPartition(f *testing.F) {
	f.Add(uint8(3), uint8(4), uint8(2), uint8(12), int64(1), uint8(0), uint8(20))
	f.Add(uint8(2), uint8(2), uint8(1), uint8(1), int64(7), uint8(3), uint8(40))
	f.Add(uint8(6), uint8(5), uint8(9), uint8(30), int64(42), uint8(10), uint8(25))
	f.Add(uint8(4), uint8(4), uint8(16), uint8(8), int64(99), uint8(1), uint8(30))
	f.Fuzz(func(t *testing.T, rows, cols, regions, vehicles uint8, seed int64, churn, steps uint8) {
		cfg := DefaultConfig()
		cfg.Mobility = MobilityGrid
		cfg.RSUCount = 0
		cfg.Grid = GridConfig{
			Rows:     2 + int(rows)%5,
			Cols:     2 + int(cols)%5,
			SpacingM: 300,
		}
		cfg.RSURadiusM = 250
		cfg.Vehicles = 1 + int(vehicles)%30
		cfg.TimeStepS = 0.5
		cfg.DurationS = 1 // unused: the loop below drives the steps
		cfg.Seed = seed
		if churn%4 != 0 {
			cfg.Churn = ChurnConfig{
				ArrivalRatePerS: float64(churn%4) * 0.1,
				MeanDwellS:      30,
				MaxVehicles:     40,
			}
		}
		cfg.Outages = []OutageWindow{{RSU: 0, StartS: 2, EndS: 8}}
		nSteps := 1 + int(steps)%40

		serialCfg := cfg
		serial, err := New(serialCfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Shards.Regions = 1 + int(regions)%12
		sharded, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sharded.checkShardInvariants(); err != nil {
			t.Fatalf("before first step: %v", err)
		}
		for i := 0; i < nSteps; i++ {
			serial.Step()
			sharded.Step()
			if err := sharded.checkShardInvariants(); err != nil {
				t.Fatalf("regions=%d step %d: %v", cfg.Shards.Regions, i+1, err)
			}
		}
		refRep, rep := serial.Finish(), sharded.Finish()
		if !reflect.DeepEqual(refRep, rep) {
			t.Fatalf("regions=%d diverged after %d steps:\nserial: %+v\nsharded: %+v",
				cfg.Shards.Regions, nSteps, refRep, rep)
		}
	})
}
