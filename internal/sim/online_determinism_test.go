package sim

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"

	"vtmig/internal/pomdp"
	"vtmig/internal/rl"
	"vtmig/internal/stackelberg"
)

// This file pins rule 5 of the determinism contract: with a fixed
// simulator seed (and a fixed offline-training seed for the warm start),
// an online-pricer simulation produces a bit-identical sim.Report and
// bit-identical final network weights regardless of the offline
// CollectWorkers, the learner's shard count, and GOMAXPROCS. Transitions
// enter the rollout in simulator-round order and every optimization phase
// reuses the rule-3 sharded reduction, so no knob can reorder a single
// floating-point accumulation.

// onlineSimRun trains a warm-start agent with the given collection worker
// count, deploys it online with the given shard count, runs a fixed-seed
// simulation with the given simulator region count (0 = serial stepping),
// and returns the report plus the final weights.
func onlineSimRun(t *testing.T, collectWorkers, shards, regions int) (Report, [][]float64) {
	t.Helper()
	game := stackelberg.DefaultGame()
	envCfg := pomdp.Config{
		Game:       game,
		HistoryLen: 3,
		Rounds:     20,
		Reward:     pomdp.RewardBinary,
		Seed:       4,
	}
	vec, err := pomdp.NewVecEnv(envCfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := rl.DefaultPPOConfig()
	pcfg.Seed = 4
	pcfg.MiniBatch = 10
	pcfg.Shards = shards
	lo, hi := vec.ActionBounds()
	agent := rl.NewPPO(vec.ObsDim(), vec.ActDim(), lo, hi, pcfg)
	rl.NewVecTrainer(vec, agent, rl.TrainerConfig{
		Episodes:         4,
		RoundsPerEpisode: 20,
		UpdateEvery:      10,
		CollectWorkers:   collectWorkers,
	}).Run()

	pricer, err := NewOnlinePricer(OnlinePricerConfig{
		Game:        game,
		HistoryLen:  3,
		Agent:       agent,
		UpdateEvery: 10,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DurationS = 240
	cfg.Seed = 11
	cfg.Pricer = pricer
	cfg.Shards.Regions = regions
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Run()

	var weights [][]float64
	for _, p := range pricer.Agent().Params() {
		weights = append(weights, append([]float64(nil), p.Value...))
	}
	return rep, weights
}

// sameBits compares two weight snapshots bit for bit.
func sameBits(t *testing.T, label string, ref, got [][]float64) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: %d params, want %d", label, len(got), len(ref))
	}
	for pi := range ref {
		for i := range ref[pi] {
			if math.Float64bits(ref[pi][i]) != math.Float64bits(got[pi][i]) {
				t.Fatalf("%s: param %d[%d] = %v, want %v", label, pi, i, got[pi][i], ref[pi][i])
			}
		}
	}
}

// TestOnlineSimBitIdentical is the rule-5 table: CollectWorkers × shards
// × GOMAXPROCS, every cell bit-identical to the all-serial reference.
func TestOnlineSimBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("online determinism table skipped in -short mode")
	}
	refRep, refW := onlineSimRun(t, 1, 1, 0)
	if refRep.PricingRounds == 0 || len(refRep.Migrations) == 0 {
		t.Fatalf("reference run is trivial: %+v", refRep)
	}
	for _, workers := range []int{1, 2, 3} {
		for _, shards := range []int{1, 2, 3} {
			for _, gmp := range []int{1, 2, 4} {
				if workers == 1 && shards == 1 && gmp == runtime.GOMAXPROCS(0) {
					continue
				}
				name := fmt.Sprintf("workers=%d/shards=%d/gomaxprocs=%d", workers, shards, gmp)
				t.Run(name, func(t *testing.T) {
					prev := runtime.GOMAXPROCS(gmp)
					defer runtime.GOMAXPROCS(prev)
					rep, w := onlineSimRun(t, workers, shards, 0)
					if !reflect.DeepEqual(refRep, rep) {
						t.Fatalf("report diverged from serial reference:\nserial: %+v\ngot:    %+v", refRep, rep)
					}
					sameBits(t, name, refW, w)
				})
			}
		}
	}
}

// TestOnlineSimReproducible pins plain same-seed reproducibility of the
// online path (two identical runs, bit-identical report and weights) —
// the cheap smoke version of the table above, kept out of -short too
// because it trains.
func TestOnlineSimReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("online training test skipped in -short mode")
	}
	repA, wA := onlineSimRun(t, 2, 2, 0)
	repB, wB := onlineSimRun(t, 2, 2, 0)
	if !reflect.DeepEqual(repA, repB) {
		t.Fatalf("reports differ:\n%+v\n%+v", repA, repB)
	}
	sameBits(t, "repeat", wA, wB)
}
