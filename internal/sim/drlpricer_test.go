package sim

import (
	"math"
	"testing"

	"vtmig/internal/pomdp"
	"vtmig/internal/rl"
	"vtmig/internal/stackelberg"
)

// trainTinyAgent trains a small PPO pricing agent with vectorized
// collection on the paper's benchmark game — the policy the simulator
// deploys.
func trainTinyAgent(t *testing.T) (*rl.PPO, *pomdp.GameEnv) {
	t.Helper()
	game := stackelberg.DefaultGame()
	cfg := pomdp.Config{
		Game:       game,
		HistoryLen: 3,
		Rounds:     30,
		Reward:     pomdp.RewardBinary,
		Seed:       4,
	}
	vec, err := pomdp.NewVecEnv(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := rl.DefaultPPOConfig()
	pcfg.Seed = 4
	pcfg.MiniBatch = 10
	lo, hi := vec.ActionBounds()
	agent := rl.NewPPO(vec.ObsDim(), vec.ActDim(), lo, hi, pcfg)
	rl.NewVecTrainer(vec, agent, rl.TrainerConfig{
		Episodes:         4,
		RoundsPerEpisode: 30,
		UpdateEvery:      10,
	}).Run()

	// A long-horizon belief environment for deployment: the pricer steps
	// it once per pricing round for the whole simulation.
	beliefCfg := cfg
	beliefCfg.Rounds = 1 << 20
	belief, err := pomdp.NewGameEnv(beliefCfg)
	if err != nil {
		t.Fatal(err)
	}
	return agent, belief
}

// TestDRLPricerDrivesSimulation deploys a trained agent as the
// simulator's pricing strategy and checks the end-to-end run: rounds are
// priced inside the action interval and the report is consistent.
func TestDRLPricerDrivesSimulation(t *testing.T) {
	agent, belief := trainTinyAgent(t)

	cfg := DefaultConfig()
	cfg.DurationS = 120
	cfg.Seed = 3
	cfg.Pricer = NewDRLPricer(belief, agent)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Run()

	if rep.PricerName != "drl" {
		t.Fatalf("pricer name %q, want drl", rep.PricerName)
	}
	if rep.PricingRounds == 0 {
		t.Fatal("no pricing rounds executed")
	}
	for _, m := range rep.Migrations {
		if m.Price < cfg.Cost || m.Price > cfg.PMax {
			t.Fatalf("vehicle %d priced at %g outside [%g, %g]", m.VehicleID, m.Price, cfg.Cost, cfg.PMax)
		}
		if math.IsNaN(m.AoTM) || m.AoTM < 0 {
			t.Fatalf("vehicle %d AoTM %g", m.VehicleID, m.AoTM)
		}
	}
}

// TestDRLPricerReproducible pins that two identically seeded simulations
// with identically trained agents produce the same revenue.
func TestDRLPricerReproducible(t *testing.T) {
	run := func() Report {
		agent, belief := trainTinyAgent(t)
		cfg := DefaultConfig()
		cfg.DurationS = 60
		cfg.Seed = 5
		cfg.Pricer = NewDRLPricer(belief, agent)
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	a, b := run(), run()
	if math.Float64bits(a.MSPRevenue) != math.Float64bits(b.MSPRevenue) {
		t.Fatalf("revenue not reproducible: %v vs %v", a.MSPRevenue, b.MSPRevenue)
	}
	if a.PricingRounds != b.PricingRounds {
		t.Fatalf("pricing rounds %d vs %d", a.PricingRounds, b.PricingRounds)
	}
}
