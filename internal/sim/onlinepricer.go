package sim

import (
	"fmt"
	"math"
	"math/rand"

	"vtmig/internal/mathx"
	"vtmig/internal/nn"
	"vtmig/internal/pomdp"
	"vtmig/internal/rl"
	"vtmig/internal/stackelberg"
)

// OnlinePricerConfig configures the simulator's online continual-learning
// pricer: a PPO pricing agent that keeps training from live simulator
// rounds instead of being deployed frozen.
type OnlinePricerConfig struct {
	// Game is the reference game fixing the agent's interface: the
	// observation layout (one demand slot per reference VMU, prices
	// normalized over [Cost, PMax], demands over the game's demand scale)
	// and the action interval [Cost, PMax]. A warm-started agent must have
	// been trained on a pomdp.GameEnv over this game; for a cold start it
	// is also the source of the random initial history.
	Game *stackelberg.Game
	// HistoryLen is L, the number of past rounds in the observation
	// (paper: 4). It must match the warm-start agent's training value.
	HistoryLen int
	// Agent, when non-nil, warm-starts the pricer from an offline-trained
	// learner (e.g. experiments.TrainResult.Agent). The pricer owns and
	// keeps mutating the agent from here on — hand it a dedicated
	// instance, not one shared with a frozen pricer. Nil cold-starts a
	// fresh learner from PPO.
	Agent *rl.PPO
	// PPO configures the cold-start learner (ignored under warm start).
	// The zero value selects rl.DefaultPPOConfig(); Seed overrides
	// PPO.Seed either way.
	PPO rl.PPOConfig
	// UpdateEvery is |I|: an optimization phase runs whenever this many
	// live rounds have been collected. Zero selects the paper's 20.
	UpdateEvery int
	// Reward selects the learning signal computed from each live round at
	// the sampled price. The zero value selects pomdp.RewardShaped — the
	// round's leader utility normalized by that round's closed-form
	// equilibrium utility, a dense signal that stays comparable across
	// rounds of varying size and remaining bandwidth. pomdp.RewardBinary
	// applies Eq. (12) against the best live utility seen so far.
	Reward pomdp.RewardKind
	// BestTolFrac is the RewardBinary tolerance band, with the
	// pomdp.Config.BestTolFrac semantics (0 default band, negative exact).
	BestTolFrac float64
	// Seed drives the random initial history and the cold-start learner.
	// Zero selects 1.
	Seed int64
	// SnapshotEvery, when positive, captures a full resume checkpoint
	// after every SnapshotEvery-th completed optimization phase and hands
	// it to OnSnapshot. The checkpoint is exactly what
	// OnlinePricer.Snapshot produces: the learner's weights, Adam moments,
	// and captured RNG generator state, plus the pricer section — the
	// encoder's belief window, the current observation, the running-best
	// reward reference, and the stream counters — so
	// NewOnlinePricerFromCheckpoint resumes the online run bit-identically
	// (determinism contract rule 6). Snapshots land exactly on phase
	// boundaries, where the learning buffer is empty. Zero disables
	// mid-run snapshots.
	SnapshotEvery int
	// OnSnapshot receives the mid-run resume checkpoints; required when
	// SnapshotEvery is positive. It runs synchronously on the pricing
	// path — defer heavy persistence work out of the callback.
	OnSnapshot func(*nn.Checkpoint)
}

// withDefaults resolves the zero-value conveniences.
func (c OnlinePricerConfig) withDefaults() OnlinePricerConfig {
	if c.HistoryLen == 0 {
		c.HistoryLen = 4
	}
	if c.UpdateEvery == 0 {
		c.UpdateEvery = 20
	}
	if c.Reward == 0 {
		c.Reward = pomdp.RewardShaped
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Agent == nil && c.PPO.Epochs == 0 {
		// Epochs is positive in every valid PPO configuration, so zero
		// marks the config as unset.
		c.PPO = rl.DefaultPPOConfig()
	}
	return c
}

// Validate reports whether the configuration is usable (after the
// zero-value defaults are applied).
func (c OnlinePricerConfig) Validate() error {
	c = c.withDefaults()
	if c.Game == nil {
		return fmt.Errorf("sim: online pricer needs a reference game")
	}
	if err := c.Game.Validate(); err != nil {
		return err
	}
	if c.HistoryLen < 0 {
		// Zero already defaulted to the paper's value above, so only
		// negatives reach this check.
		return fmt.Errorf("sim: online pricer history length %d must not be negative", c.HistoryLen)
	}
	if c.UpdateEvery < 0 {
		return fmt.Errorf("sim: online pricer update interval %d must not be negative", c.UpdateEvery)
	}
	switch c.Reward {
	case pomdp.RewardBinary, pomdp.RewardShaped:
	default:
		return fmt.Errorf("sim: online pricer reward kind %d unknown", int(c.Reward))
	}
	if c.SnapshotEvery < 0 {
		return fmt.Errorf("sim: online pricer snapshot cadence %d must be non-negative", c.SnapshotEvery)
	}
	if c.SnapshotEvery > 0 && c.OnSnapshot == nil {
		return fmt.Errorf("sim: online pricer SnapshotEvery=%d needs an OnSnapshot callback", c.SnapshotEvery)
	}
	return nil
}

// OnlinePricer is the online continual-learning MSP pricing strategy: a
// PPO agent deployed like the frozen DRL pricer — it posts the
// deterministic (mean) price of the current belief state — whose belief
// window is driven by the live rounds themselves and whose policy keeps
// training from them.
//
// Each pricing round contributes one learning transition: the agent
// samples a stochastic price at the current observation, the round's
// actual game is evaluated at that sampled price (the followers'
// best-response demands and the resulting leader utility), the outcome is
// scored into a reward and recorded into the observation window, and the
// transition enters a rl.StreamCollector, which runs a sharded PPO
// optimization phase every UpdateEvery rounds. The stochastic sample
// drives the belief window — exactly like the frozen pricer's readout —
// so the observation stream stays on the policy's own distribution while
// the posted price remains the deterministic mean.
//
// Determinism (contract rule 5): the simulator feeds rounds serially, the
// pricer consumes the learner RNG in round order, and every update runs
// through the rule-1/rule-3 fixed-order kernels — so a fixed simulator
// seed (plus a warm-start agent from a fixed training seed) yields a
// bit-identical sim.Report and bit-identical final weights for any
// CollectWorkers, shard count, and GOMAXPROCS.
type OnlinePricer struct {
	agent       *rl.PPO
	col         *rl.StreamCollector
	enc         *pomdp.Encoder
	tracker     *pomdp.BestTracker
	reward      pomdp.RewardKind
	bestTolFrac float64

	// mid-run snapshot hooks (see OnlinePricerConfig).
	snapshotEvery int
	onSnapshot    func(*nn.Checkpoint)
	snapshots     int

	obs []float64 // current observation (copy; encoder rows rotate under it)

	evalScratch  stackelberg.EvalScratch
	solveScratch stackelberg.EvalScratch
}

var _ Pricer = (*OnlinePricer)(nil)

// NewOnlinePricer builds the online continual-learning pricer.
func NewOnlinePricer(cfg OnlinePricerConfig) (*OnlinePricer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	enc, err := pomdp.NewGameEncoder(cfg.HistoryLen, cfg.Game)
	if err != nil {
		return nil, err
	}
	agent := cfg.Agent
	if agent == nil {
		ppoCfg := cfg.PPO
		ppoCfg.Seed = cfg.Seed
		agent = rl.NewPPO(enc.ObsDim(), 1, []float64{cfg.Game.Cost}, []float64{cfg.Game.PMax}, ppoCfg)
	}
	p := &OnlinePricer{
		agent:         agent,
		col:           rl.NewStreamCollector(agent, cfg.UpdateEvery),
		enc:           enc,
		tracker:       pomdp.NewBestTracker(cfg.BestTolFrac),
		reward:        cfg.Reward,
		bestTolFrac:   cfg.BestTolFrac,
		snapshotEvery: cfg.SnapshotEvery,
		onSnapshot:    cfg.OnSnapshot,
		obs:           make([]float64, enc.ObsDim()),
	}
	if err := p.checkAgent(cfg); err != nil {
		return nil, err
	}
	p.warmHistory(cfg)
	return p, nil
}

// NewOnlinePricerFromCheckpoint resumes an online pricer from a
// checkpoint written by OnlinePricer.Snapshot (directly or through the
// OnSnapshot hook): the learner's full training state is restored and
// the belief window, current observation, running-best reward
// reference, and stream counters pick up exactly where the snapshotted
// pricer left off, so continuing the same simulation stream is
// bit-identical to never having stopped (determinism contract rule 6).
//
// cfg.Agent must be nil — the agent is rebuilt from the checkpoint.
// Zero-valued HistoryLen, UpdateEvery, Reward, and BestTolFrac adopt
// the checkpointed values; explicitly set ones must match them. Seed
// only matters for a restored pricer through PPO cold-start defaults
// and is otherwise ignored: the warm-history stage is skipped and the
// learner RNG continues the checkpointed stream.
func NewOnlinePricerFromCheckpoint(cfg OnlinePricerConfig, ck *nn.Checkpoint) (*OnlinePricer, error) {
	if ck == nil || ck.Pricer == nil {
		return nil, fmt.Errorf("sim: checkpoint carries no pricer section; only checkpoints written by OnlinePricer.Snapshot can resume an online run")
	}
	if err := ck.Validate(); err != nil {
		return nil, err
	}
	if ck.Opt == nil || ck.RNG == nil {
		return nil, fmt.Errorf("sim: pricer checkpoint lacks optimizer/RNG state; cannot resume training from it")
	}
	if cfg.Agent != nil {
		return nil, fmt.Errorf("sim: OnlinePricerConfig.Agent must be nil when resuming from a checkpoint")
	}
	ps := ck.Pricer
	if cfg.HistoryLen == 0 {
		cfg.HistoryLen = len(ps.History)
	} else if cfg.HistoryLen != len(ps.History) {
		return nil, fmt.Errorf("sim: config history length %d, checkpoint belief window has %d rounds", cfg.HistoryLen, len(ps.History))
	}
	if cfg.UpdateEvery == 0 {
		cfg.UpdateEvery = ps.UpdateEvery
	} else if cfg.UpdateEvery != ps.UpdateEvery {
		return nil, fmt.Errorf("sim: config update interval %d, checkpoint ran with %d", cfg.UpdateEvery, ps.UpdateEvery)
	}
	if cfg.Reward == 0 {
		cfg.Reward = pomdp.RewardKind(ps.Reward)
	} else if int(cfg.Reward) != ps.Reward {
		return nil, fmt.Errorf("sim: config reward kind %d, checkpoint ran with %d", int(cfg.Reward), ps.Reward)
	}
	if cfg.BestTolFrac == 0 {
		cfg.BestTolFrac = ps.BestTolFrac
	} else if cfg.BestTolFrac != ps.BestTolFrac {
		return nil, fmt.Errorf("sim: config best tolerance %g, checkpoint ran with %g", cfg.BestTolFrac, ps.BestTolFrac)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	enc, err := pomdp.NewGameEncoder(cfg.HistoryLen, cfg.Game)
	if err != nil {
		return nil, err
	}
	if width := len(ps.History[0]); width != 1+cfg.Game.N() {
		return nil, fmt.Errorf("sim: checkpoint belief rows have width %d, the reference game needs %d (1 price + %d demand slots) — was the checkpoint written over a different game size?",
			width, 1+cfg.Game.N(), cfg.Game.N())
	}
	ppoCfg := cfg.PPO
	ppoCfg.Seed = cfg.Seed
	agent := rl.NewPPO(enc.ObsDim(), 1, []float64{cfg.Game.Cost}, []float64{cfg.Game.PMax}, ppoCfg)
	if err := agent.Restore(ck); err != nil {
		return nil, err
	}
	p := &OnlinePricer{
		agent:         agent,
		col:           rl.NewStreamCollector(agent, cfg.UpdateEvery),
		enc:           enc,
		tracker:       pomdp.NewBestTracker(cfg.BestTolFrac),
		reward:        cfg.Reward,
		bestTolFrac:   cfg.BestTolFrac,
		snapshotEvery: cfg.SnapshotEvery,
		onSnapshot:    cfg.OnSnapshot,
		snapshots:     ps.Snapshots,
		obs:           make([]float64, enc.ObsDim()),
	}
	if err := p.enc.Restore(ps.History); err != nil {
		return nil, err
	}
	copy(p.obs, ps.Obs)
	if ps.BestSet {
		p.tracker.SetBest(ps.Best)
	}
	if err := p.col.Restore(ps.Rounds, ps.Updates); err != nil {
		return nil, err
	}
	return p, nil
}

// checkAgent verifies a warm-start agent against the reference
// interface. The dimension mismatches have named errors pointing at the
// configuration knob that causes them; the recovering probe remains as a
// backstop for anything else the first forward pass would panic on (the
// probe consumes no learner RNG).
func (p *OnlinePricer) checkAgent(cfg OnlinePricerConfig) (err error) {
	if got, want := p.agent.ObsDim(), p.enc.ObsDim(); got != want {
		return fmt.Errorf("sim: warm-start agent expects observation dim %d, but history length %d over the reference game gives %d — HistoryLen (or the game size) differs from the agent's training configuration",
			got, cfg.HistoryLen, want)
	}
	if got := p.agent.ActDim(); got != 1 {
		return fmt.Errorf("sim: online pricer needs a 1-dimensional price action, agent has %d", got)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: online pricer agent does not fit the reference game interface (obs dim %d, 1 action): %v",
				p.enc.ObsDim(), r)
		}
	}()
	if got := len(p.agent.MeanAction(p.obs)); got != 1 {
		return fmt.Errorf("sim: online pricer needs a 1-dimensional price action, agent has %d", got)
	}
	return nil
}

// warmHistory fills the observation window with HistoryLen random rounds
// on the reference game — the paper's "initial stage", mirroring
// pomdp.GameEnv.Reset — and captures the initial observation.
func (p *OnlinePricer) warmHistory(cfg OnlinePricerConfig) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.HistoryLen; i++ {
		price := cfg.Game.Cost + rng.Float64()*(cfg.Game.PMax-cfg.Game.Cost)
		eq := cfg.Game.EvaluateInto(&p.evalScratch, price)
		p.enc.Record(eq.Price, eq.Demands)
	}
	copy(p.obs, p.enc.Obs())
}

// Name implements Pricer.
func (p *OnlinePricer) Name() string { return "online-drl" }

// PriceFor implements Pricer: it posts the deterministic (mean) price for
// the current belief state and folds the round into the learning stream
// (see the type comment). The round's actual game g is consulted only as
// the MSP's own model of the followers — the incomplete-information
// setting of the paper is preserved: the agent still observes nothing but
// the (price, demand) history window.
func (p *OnlinePricer) PriceFor(g *stackelberg.Game) float64 {
	return p.PriceForPrepped(g, p.PrepQuote(g, &p.solveScratch))
}

// QuotePrep carries the pure, pricer-state-independent share of pricing
// one round: today, the round's closed-form equilibrium leader utility —
// the shaped-reward normalizer — which depends only on the game, never on
// the belief window, the learner, or the RNG.
type QuotePrep struct {
	// OracleUtility is the round's oracle (closed-form Stackelberg) leader
	// utility; meaningful only when HasOracle.
	OracleUtility float64
	// HasOracle records whether the prework included the oracle solve
	// (it does exactly when the pricer learns under the shaped reward).
	HasOracle bool
}

// PrepQuote computes the prework for pricing g: everything
// PriceForPrepped needs that is a pure function of the round's game. It
// never touches the pricer's mutable state and consumes no RNG, so a
// batching front end may fan PrepQuote calls out across goroutines — one
// scratch per worker, results landing in arrival-order slots (contract
// rule 2) — while the serial core consumes them in arrival order.
func (p *OnlinePricer) PrepQuote(g *stackelberg.Game, scratch *stackelberg.EvalScratch) QuotePrep {
	if p.reward != pomdp.RewardShaped {
		return QuotePrep{}
	}
	return QuotePrep{OracleUtility: g.SolveInto(scratch).MSPUtility, HasOracle: true}
}

// PriceForPrepped is PriceFor with the pure prework hoisted out:
// PriceFor(g) ≡ PriceForPrepped(g, p.PrepQuote(g, scratch)) bit for bit.
// Everything that remains — the policy forward pass and stochastic
// sample, the follower best-response at the sampled price, the belief
// window update, and the learning transition — chains through the
// pricer's mutable state and MUST apply strictly serially in arrival
// order (contract rules 5 and 8).
func (p *OnlinePricer) PriceForPrepped(g *stackelberg.Game, prep QuotePrep) float64 {
	if p.reward == pomdp.RewardShaped && !prep.HasOracle {
		panic("sim: PriceForPrepped under the shaped reward needs a PrepQuote with the oracle solve")
	}
	raw, envAct, logP, value, meanEnv := p.agent.SelectActionWithMean(p.obs)
	price := meanEnv[0]

	// Learning transition at the sampled price.
	sampled := mathx.Clamp(envAct[0], g.Cost, g.PMax)
	eq := g.EvaluateInto(&p.evalScratch, sampled)
	reward := p.tracker.Observe(eq.MSPUtility)
	if p.reward == pomdp.RewardShaped {
		if prep.OracleUtility > 0 {
			reward = eq.MSPUtility / prep.OracleUtility
		} else {
			reward = eq.MSPUtility
		}
	}

	p.enc.Record(eq.Price, eq.Demands)
	next := p.enc.Obs()
	_, ran := p.col.Add(p.obs, raw, logP, reward, value, false, next)
	copy(p.obs, next)
	if ran {
		p.maybeSnapshot()
	}
	return price
}

// QuoteBatch prices a batch of rounds in order — prices[i] answers
// games[i] — bit-identically to calling PriceFor on each game in
// sequence, for any way the same game stream is cut into batches
// (contract rule 8). The belief window chains each round's observation
// through the previous round's outcome, so the policy/belief/learning
// core can never legally batch across quotes; only the pure prework
// does. preps may be nil (the prework then runs inline) or carry one
// PrepQuote result per game.
func (p *OnlinePricer) QuoteBatch(games []*stackelberg.Game, preps []QuotePrep, prices []float64) {
	if len(prices) != len(games) {
		panic(fmt.Sprintf("sim: QuoteBatch prices length %d, want %d", len(prices), len(games)))
	}
	if preps != nil && len(preps) != len(games) {
		panic(fmt.Sprintf("sim: QuoteBatch preps length %d, want %d", len(preps), len(games)))
	}
	for i, g := range games {
		prep := QuotePrep{}
		if preps != nil {
			prep = preps[i]
		} else {
			prep = p.PrepQuote(g, &p.solveScratch)
		}
		prices[i] = p.PriceForPrepped(g, prep)
	}
}

// maybeSnapshot fires the mid-run snapshot hook when an optimization
// phase just completed and the cadence hits. The learning buffer is empty
// here, so the checkpoint resumes the run bit-identically.
func (p *OnlinePricer) maybeSnapshot() {
	if p.snapshotEvery <= 0 || p.col.Updates()%p.snapshotEvery != 0 {
		return
	}
	// Count the snapshot before capturing it, so the checkpoint records a
	// counter that includes itself and a resumed pricer continues the
	// numbering exactly.
	p.snapshots++
	ck, err := p.Snapshot()
	if err != nil {
		// Snapshot only fails mid-segment (impossible here — a phase just
		// completed) or on duplicate parameter names — a programming error
		// in the network construction.
		panic(fmt.Sprintf("sim: online pricer snapshot: %v", err))
	}
	p.onSnapshot(ck)
}

// Snapshot captures the pricer's complete resume state: the learner's
// full training checkpoint (weights, Adam moments, captured RNG
// generator state) plus the pricer section — the encoder's belief
// window (oldest round first), the current observation, the
// running-best reward reference, and the stream counters.
// NewOnlinePricerFromCheckpoint rebuilds a pricer from it that continues
// the run bit-identically (determinism contract rule 6).
//
// Snapshots are only valid on optimization-phase boundaries: pending
// transitions live in the on-policy learning buffer and cannot be
// checkpointed, so Snapshot errors while any are staged (Flush first,
// or snapshot through the SnapshotEvery hook, which always lands on a
// boundary).
func (p *OnlinePricer) Snapshot() (*nn.Checkpoint, error) {
	total, updates, err := p.col.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("sim: online pricer snapshot: %w", err)
	}
	ck, err := p.agent.Snapshot()
	if err != nil {
		return nil, err
	}
	ck.Pricer = &nn.PricerState{
		History:     p.enc.Snapshot(),
		Obs:         append([]float64(nil), p.obs...),
		Rounds:      total,
		Updates:     updates,
		Snapshots:   p.snapshots,
		UpdateEvery: p.col.UpdateEvery(),
		Reward:      int(p.reward),
		BestTolFrac: p.bestTolFrac,
	}
	if best := p.tracker.Best(); !math.IsInf(best, -1) {
		ck.Pricer.Best, ck.Pricer.BestSet = best, true
	}
	return ck, nil
}

// Flush closes the current partial learning segment with one final
// optimization phase (bootstrapping the value of the current belief
// state) and reports whether anything was pending. Transitions staged
// since the last phase are otherwise retained and consumed once later
// rounds complete the segment — appropriate while the pricer keeps
// serving; call Flush when a deployment ends and the trailing experience
// would be discarded with the pricer (RunOnlineStudy and vtmig-sim do).
// A flush that runs a phase counts toward the snapshot cadence like any
// other optimization phase.
func (p *OnlinePricer) Flush() (rl.UpdateStats, bool) {
	stats, ran := p.col.Flush(false, p.obs)
	if ran {
		p.maybeSnapshot()
	}
	return stats, ran
}

// Snapshots returns the number of mid-run checkpoints handed to
// OnSnapshot so far.
func (p *OnlinePricer) Snapshots() int { return p.snapshots }

// Agent exposes the (continually trained) learner, e.g. to snapshot its
// weights after a run.
func (p *OnlinePricer) Agent() *rl.PPO { return p.agent }

// Updates returns the number of optimization phases run so far.
func (p *OnlinePricer) Updates() int { return p.col.Updates() }

// UpdateEvery returns the effective optimization cadence in live rounds.
func (p *OnlinePricer) UpdateEvery() int { return p.col.UpdateEvery() }

// Rounds returns the number of live rounds learned from so far.
func (p *OnlinePricer) Rounds() int { return p.col.Total() }

// BestUtility returns the best live leader utility observed so far.
func (p *OnlinePricer) BestUtility() float64 { return p.tracker.Best() }
