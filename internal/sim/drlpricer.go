package sim

import (
	"fmt"

	"vtmig/internal/pomdp"
	"vtmig/internal/rl"
	"vtmig/internal/stackelberg"
)

// drlPricer deploys a trained PPO pricing agent as a simulator Pricer,
// closing the loop between the learning stack and the end-to-end
// discrete-event simulator: the policy that converged on the paper's
// benchmark posts the price of every migration round.
//
// The agent is a POMDP policy — it acts on a history window of its
// training game's (price, demand) outcomes, not on the round's actual
// game (which varies in size as handovers batch up). The pricer therefore
// carries a private instance of the training environment as the agent's
// belief state: each round it reads out the deterministic (mean) price
// for the current history and advances the history with a stochastic
// action, exactly like the harness's EvaluateAgent readout — rolling the
// deterministic policy forward on its own outputs drifts off the training
// distribution, so the stochastic policy drives the window.
type drlPricer struct {
	env   *pomdp.GameEnv
	agent *rl.PPO
	obs   []float64
	act   [1]float64
}

// NewDRLPricer wraps a trained agent and its training environment into a
// Pricer. env must be a fresh (or reusable) instance of the environment
// the agent was trained on; the pricer owns it from here on.
func NewDRLPricer(env *pomdp.GameEnv, agent *rl.PPO) Pricer {
	if env.ActDim() != 1 {
		panic(fmt.Sprintf("sim: DRL pricer needs a 1-dimensional price action, env has %d", env.ActDim()))
	}
	p := &drlPricer{env: env, agent: agent, obs: make([]float64, env.ObsDim())}
	copy(p.obs, env.Reset())
	return p
}

// Name implements Pricer.
func (p *drlPricer) Name() string { return "drl" }

// PriceFor implements Pricer: the deterministic policy's price for the
// current belief state. The round's actual game is not consulted — the
// MSP prices under incomplete information, as in the paper.
func (p *drlPricer) PriceFor(g *stackelberg.Game) float64 {
	_, envAct, _, _, meanEnv := p.agent.SelectActionWithMean(p.obs)
	price := meanEnv[0]
	p.act[0] = envAct[0]
	next, _, done := p.env.Step(p.act[:])
	copy(p.obs, next)
	if done {
		copy(p.obs, p.env.Reset())
	}
	return price
}
