package sim

import (
	"encoding/json"
	"math/rand"
	"sync"
	"testing"

	"vtmig/internal/aotm"
	"vtmig/internal/channel"
	"vtmig/internal/nn"
	"vtmig/internal/stackelberg"
)

// quoteGameStream builds n deterministic, varying quote games — the
// shape of traffic a serving front end prices round after round.
func quoteGameStream(t *testing.T, n int) []*stackelberg.Game {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	games := make([]*stackelberg.Game, n)
	for i := range games {
		k := 1 + rng.Intn(3)
		vmus := make([]stackelberg.VMU, k)
		for j := range vmus {
			vmus[j] = stackelberg.VMU{
				ID:       j,
				Alpha:    5 + rng.Float64()*15,
				DataSize: aotm.FromMB(100 + rng.Float64()*200),
			}
		}
		ch := channel.DefaultParams()
		ch.DistanceM = 200 + rng.Float64()*800
		g, err := stackelberg.NewGame(vmus, ch, 5, 50, 0)
		if err != nil {
			t.Fatalf("game %d: %v", i, err)
		}
		games[i] = g
	}
	return games
}

// TestQuoteBatchMatchesSerial pins contract rule 8 at the pricer layer:
// cutting the same game stream into batches of any size — with the pure
// prework computed separately per batch, worker-style — yields
// bit-identical prices and bit-identical final learner state to pricing
// every game one at a time.
func TestQuoteBatchMatchesSerial(t *testing.T) {
	const n = 40 // multiple of UpdateEvery(10): ends on a phase boundary
	games := quoteGameStream(t, n)

	serial, err := NewOnlinePricer(onlineCfg())
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for i, g := range games {
		want[i] = serial.PriceFor(g)
	}

	batched, err := NewOnlinePricer(onlineCfg())
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, n)
	sizes := []int{1, 4, 16, 3, 16}
	for i, si := 0, 0; i < n; si++ {
		size := sizes[si%len(sizes)]
		if i+size > n {
			size = n - i
		}
		chunk := games[i : i+size]
		// Prework fanned out like the engine does it: per-worker scratch,
		// results landing in arrival-order slots.
		preps := make([]QuotePrep, size)
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var scratch stackelberg.EvalScratch
				for j := w; j < size; j += 2 {
					preps[j] = batched.PrepQuote(chunk[j], &scratch)
				}
			}(w)
		}
		wg.Wait()
		batched.QuoteBatch(chunk, preps, got[i:i+size])
		i += size
	}

	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round %d: batched price %v, serial price %v", i, got[i], want[i])
		}
	}
	ckSerial := mustSnapshot(t, serial)
	ckBatched := mustSnapshot(t, batched)
	if !json.Valid(ckSerial) || string(ckSerial) != string(ckBatched) {
		t.Fatal("batched intake diverged from serial: final learner checkpoints differ")
	}
}

func mustSnapshot(t *testing.T, p *OnlinePricer) []byte {
	t.Helper()
	ck, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(ck)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestFrozenViewMatchesNextPrice pins the replica contract at the sim
// layer: a frozen view captured between rounds answers exactly the price
// the live pricer posts for its next quote, for any quoted game, without
// touching the live pricer's RNG or state.
func TestFrozenViewMatchesNextPrice(t *testing.T) {
	games := quoteGameStream(t, 14)
	p, err := NewOnlinePricer(onlineCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range games[:12] {
		p.PriceFor(g)
	}
	fv := p.FrozenView()
	if fv.Rounds() != 12 || fv.Updates() != p.Updates() {
		t.Fatalf("frozen view counters (rounds=%d updates=%d), live (12, %d)", fv.Rounds(), fv.Updates(), p.Updates())
	}
	frozenA, frozenB := fv.PriceFor(games[12]), fv.PriceFor(games[13])
	if frozenA != frozenB {
		t.Fatalf("frozen price depends on the quoted game: %v vs %v", frozenA, frozenB)
	}
	if next := p.PriceFor(games[12]); frozenA != next {
		t.Fatalf("frozen price %v, live pricer's next price %v", frozenA, next)
	}
}

// TestFrozenPricerFromCheckpoint pins the checkpoint-fed replica path:
// freezing the primary's rotated checkpoint reproduces, bit for bit, the
// price the primary posts for its first quote after that snapshot — and
// the frozen readout works from a weights-only checkpoint (no
// optimizer/RNG state), which a resuming pricer must refuse.
func TestFrozenPricerFromCheckpoint(t *testing.T) {
	games := quoteGameStream(t, 21)
	var cks []*nn.Checkpoint
	cfg := onlineCfg()
	cfg.SnapshotEvery = 1
	cfg.OnSnapshot = func(ck *nn.Checkpoint) { cks = append(cks, ck) }
	p, err := NewOnlinePricer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range games[:20] {
		p.PriceFor(g)
	}
	if len(cks) != 2 {
		t.Fatalf("got %d snapshots after 20 rounds at cadence 10, want 2", len(cks))
	}

	fz, err := NewFrozenPricerFromCheckpoint(onlineCfg(), cks[1])
	if err != nil {
		t.Fatal(err)
	}
	if fz.Rounds() != 20 || fz.Updates() != 2 || fz.Snapshots() != 2 {
		t.Fatalf("frozen counters rounds=%d updates=%d snapshots=%d, want 20/2/2", fz.Rounds(), fz.Updates(), fz.Snapshots())
	}
	if got, want := fz.PriceFor(games[20]), p.PriceFor(games[20]); got != want {
		t.Fatalf("frozen price %v, primary's first post-snapshot price %v", got, want)
	}

	// Concurrent quoting is safe: the frozen pricer is immutable.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if fz.PriceFor(games[i%len(games)]) != fz.Price() {
					panic("frozen price drifted")
				}
			}
		}()
	}
	wg.Wait()

	// A weights-only checkpoint freezes fine but cannot resume training.
	raw, err := json.Marshal(cks[1])
	if err != nil {
		t.Fatal(err)
	}
	var weightsOnly nn.Checkpoint
	if err := json.Unmarshal(raw, &weightsOnly); err != nil {
		t.Fatal(err)
	}
	weightsOnly.Opt, weightsOnly.RNG = nil, nil
	fz2, err := NewFrozenPricerFromCheckpoint(onlineCfg(), &weightsOnly)
	if err != nil {
		t.Fatalf("weights-only freeze: %v", err)
	}
	if fz2.Price() != fz.Price() {
		t.Fatalf("weights-only freeze price %v, full freeze %v", fz2.Price(), fz.Price())
	}
	if _, err := NewOnlinePricerFromCheckpoint(onlineCfg(), &weightsOnly); err == nil {
		t.Fatal("resuming from a weights-only checkpoint did not fail")
	}

	// Config misuses are refused loudly.
	badCfg := onlineCfg()
	badCfg.Agent = p.Agent()
	if _, err := NewFrozenPricerFromCheckpoint(badCfg, cks[1]); err == nil {
		t.Fatal("non-nil Agent was not refused")
	}
	badCfg = onlineCfg()
	badCfg.HistoryLen = 7
	if _, err := NewFrozenPricerFromCheckpoint(badCfg, cks[1]); err == nil {
		t.Fatal("history-length mismatch was not refused")
	}
	if _, err := NewFrozenPricerFromCheckpoint(onlineCfg(), &nn.Checkpoint{}); err == nil {
		t.Fatal("checkpoint without a pricer section was not refused")
	}
}
