package sim

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// GoldenTol is the relative tolerance golden-report comparisons allow per
// numeric cell. It absorbs decimal formatting only; values are serialized
// with full float64 round-trip precision, so any real numeric drift trips
// it.
const GoldenTol = 1e-9

// FormatGoldenReport serializes a report in the golden-file format: a
// summary row plus one row per migration, every float at full float64
// round-trip precision. The format is pinned by the committed golden
// files under internal/sim/testdata and internal/scenario/testdata —
// changing it means regenerating all of them (`make golden`).
func FormatGoldenReport(rep Report) string {
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	b01 := func(v bool) string {
		if v {
			return "1"
		}
		return "0"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# report %s\n", rep.PricerName)
	fmt.Fprintln(&b, "| handovers,pricing_rounds,failed_rounds,deferred,opted_out,msp_revenue,mean_aotm,max_aotm,mean_vmu_utility,placement_failures,mean_sensing_aoi,simulated_s")
	fmt.Fprintln(&b, strings.Join([]string{
		strconv.Itoa(rep.Handovers), strconv.Itoa(rep.PricingRounds), strconv.Itoa(rep.FailedRounds),
		strconv.Itoa(rep.Deferred), strconv.Itoa(rep.OptedOut), g(rep.MSPRevenue),
		g(rep.MeanAoTM), g(rep.MaxAoTM), g(rep.MeanVMUUtility),
		strconv.Itoa(rep.PlacementFailures), g(rep.MeanSensingAoI), g(rep.SimulatedS),
	}, ","))
	fmt.Fprintln(&b, "# migrations")
	fmt.Fprintln(&b, "| vehicle,start_s,from_rsu,to_rsu,price,bandwidth_mhz,aotm,data_moved_mb,downtime_s,duration_s,vmu_utility,msp_profit,pre_copy_converged")
	for _, m := range rep.Migrations {
		fmt.Fprintln(&b, strings.Join([]string{
			strconv.Itoa(m.VehicleID), g(m.StartS), strconv.Itoa(m.FromRSU), strconv.Itoa(m.ToRSU),
			g(m.Price), g(m.BandwidthMHz), g(m.AoTM), g(m.DataMovedMB),
			g(m.DowntimeS), g(m.DurationS), g(m.VMUUtility), g(m.MSPProfit), b01(m.PreCopyConverged),
		}, ","))
	}
	return b.String()
}

// DiffGoldenReports compares two serialized golden reports cell by cell:
// header lines ("#", "|") must match exactly, numeric cells within tol
// relative tolerance (GoldenTol is the convention). It returns nil when
// they match and a descriptive error naming the first differing line
// otherwise.
func DiffGoldenReports(want, got string, tol float64) error {
	wantLines := strings.Split(strings.TrimRight(want, "\n"), "\n")
	gotLines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(wantLines) != len(gotLines) {
		return fmt.Errorf("%d lines, golden has %d", len(gotLines), len(wantLines))
	}
	for ln := range wantLines {
		w, g := wantLines[ln], gotLines[ln]
		if strings.HasPrefix(w, "#") || strings.HasPrefix(w, "|") {
			if w != g {
				return fmt.Errorf("line %d: header %q, golden %q", ln+1, g, w)
			}
			continue
		}
		wc, gc := strings.Split(w, ","), strings.Split(g, ",")
		if len(wc) != len(gc) {
			return fmt.Errorf("line %d: %d cells, golden has %d", ln+1, len(gc), len(wc))
		}
		for i := range wc {
			wv, err1 := strconv.ParseFloat(wc[i], 64)
			gv, err2 := strconv.ParseFloat(gc[i], 64)
			if err1 != nil || err2 != nil {
				return fmt.Errorf("line %d cell %d: parse errors %v/%v", ln+1, i, err1, err2)
			}
			if diff := math.Abs(wv - gv); diff > tol*math.Max(1, math.Max(math.Abs(wv), math.Abs(gv))) {
				return fmt.Errorf("line %d cell %d: got %v, golden %v (diff %g)", ln+1, i, gv, wv, diff)
			}
		}
	}
	return nil
}
