package serve_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vtmig/internal/serve"
)

func TestHTTPQuoteStatsHealth(t *testing.T) {
	s := mustOpen(t, testConfig(t.TempDir()))
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"vmus":[{"id":0,"alpha":7,"data_mb":150},{"id":1,"alpha":12,"data_mb":220}],"distance_m":400}`
	resp, err := http.Post(ts.URL+"/v1/quote", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quote status = %d", resp.StatusCode)
	}
	var q serve.QuoteResponse
	if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
		t.Fatal(err)
	}
	if q.Round != 1 || q.Price < 5 || q.Price > 50 {
		t.Fatalf("quote response %+v", q)
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 1 || st.JournalEntries != 1 {
		t.Fatalf("stats %+v, want rounds=1 journal_entries=1", st)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
}

func TestHTTPQuoteErrors(t *testing.T) {
	s := mustOpen(t, testConfig(t.TempDir()))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/quote", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`not json`); code != http.StatusBadRequest {
		t.Fatalf("malformed body status = %d", code)
	}
	if code := post(`{"vmus":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty VMUs status = %d", code)
	}
	if code := post(`{"vmus":[{"id":0,"alpha":7,"data_mb":150}],"bogus":1}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field status = %d", code)
	}
	if code := post(`{"vmus":[{"id":0,"alpha":-7,"data_mb":150}]}`); code != http.StatusBadRequest {
		t.Fatalf("invalid game status = %d", code)
	}

	// GET on the quote route is not part of the API.
	resp, err := http.Get(ts.URL + "/v1/quote")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/quote status = %d", resp.StatusCode)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if code := post(`{"vmus":[{"id":0,"alpha":7,"data_mb":150}]}`); code != http.StatusServiceUnavailable {
		t.Fatalf("quote after Close status = %d", code)
	}
}
