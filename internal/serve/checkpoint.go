package serve

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"vtmig/internal/nn"
)

// Checkpoint files are named by the pricer's snapshot ordinal —
// checkpoint-000000.bin is the boot snapshot, checkpoint-000001.bin the
// first rotation, and so on — in the compact binary encoding. The journal
// header names the ordinal it extends, so recovery never guesses which
// checkpoint a journal belongs to.
const checkpointPattern = "checkpoint-%06d.bin"

// checkpointPath returns the file a given snapshot ordinal lives at.
func checkpointPath(dir string, snapshots int) string {
	return filepath.Join(dir, fmt.Sprintf(checkpointPattern, snapshots))
}

// writeCheckpoint atomically persists ck at path (temp file + fsync +
// rename) and returns the CRC-32 of the file bytes — the value the
// journal header binds to. When a file already exists at path — a replay
// re-reaching a rotation the crashed process already persisted — the
// rewrite must be byte-identical: replay is deterministic, so a
// difference means the on-disk state and the journal diverged, and the
// write refuses instead of papering over it.
func writeCheckpoint(path string, ck *nn.Checkpoint) (uint32, error) {
	var buf bytes.Buffer
	if err := ck.SaveBinary(&buf); err != nil {
		return 0, fmt.Errorf("serve: encoding checkpoint: %w", err)
	}
	crc := crc32.ChecksumIEEE(buf.Bytes())
	if old, err := os.ReadFile(path); err == nil {
		if !bytes.Equal(old, buf.Bytes()) {
			return 0, fmt.Errorf("serve: replayed checkpoint %s differs from the one on disk — journal and checkpoints no longer describe the same run", path)
		}
		return crc, nil
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("serve: creating checkpoint: %w", err)
	}
	_, err = f.Write(buf.Bytes())
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("serve: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("serve: committing checkpoint: %w", err)
	}
	return crc, nil
}

// loadCheckpoint reads the checkpoint at path, returning the decoded
// checkpoint and the CRC-32 of the raw file bytes for the journal-binding
// check. A missing file is reported with os.IsNotExist semantics via the
// wrapped error.
func loadCheckpoint(path string) (*nn.Checkpoint, uint32, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	ck, err := nn.LoadCheckpoint(bytes.NewReader(data))
	if err != nil {
		return nil, 0, fmt.Errorf("serve: loading checkpoint %s: %w", path, err)
	}
	return ck, crc32.ChecksumIEEE(data), nil
}

// pruneCheckpoints removes checkpoint files with ordinals the retention
// policy no longer needs: everything older than keep files back from
// bound, where bound is the ordinal the on-disk journal binds to. The
// bound checkpoint itself is never pruned — deleting it would orphan the
// journal. Prune errors are reported but recovery never depends on a
// prune having happened.
func pruneCheckpoints(dir string, bound, keep int) error {
	matches, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.bin"))
	if err != nil {
		return err
	}
	var firstErr error
	for _, m := range matches {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(m), checkpointPattern, &n); err != nil {
			continue // not ours
		}
		if n <= bound-keep {
			if err := os.Remove(m); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}
