package serve

import "vtmig/internal/nn"

// Abandon simulates a crash for tests: the intake goroutine stops, but
// none of Close's graceful-shutdown work happens — no journal sync, no
// flush. Since journal appends are unbuffered, the on-disk state is
// exactly what a kill -9 after the last acknowledged quote would leave.
func (s *Server) Abandon() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.inflight.Wait()
	close(s.jobs)
	<-s.done
}

// AgentCheckpoint exposes the learner's full training state (weights,
// Adam moments, RNG position) for bit-identity assertions.
func (s *Server) AgentCheckpoint() (*nn.Checkpoint, error) {
	return s.pricer.Agent().Snapshot()
}

// JournalPath exposes the live journal file for corruption-injection
// tests.
func (s *Server) JournalPath() string { return s.journal.path }

// CheckpointPathFor exposes the checkpoint naming scheme to tests.
func CheckpointPathFor(dir string, snapshots int) string { return checkpointPath(dir, snapshots) }
