package serve

import "vtmig/internal/nn"

// Abandon simulates a crash for tests: the intake goroutine stops, but
// none of Close's graceful-shutdown work happens — no journal sync, no
// flush. Every acknowledged quote's entry was flushed before its batch
// was acknowledged (and any still-staged entries were never acked), so
// the on-disk state is exactly what a kill -9 after the last
// acknowledged quote would leave.
func (s *Server) Abandon() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.inflight.Wait()
	close(s.jobs)
	<-s.done
}

// AgentCheckpoint exposes the learner's full training state (weights,
// Adam moments, RNG position) for bit-identity assertions.
func (s *Server) AgentCheckpoint() (*nn.Checkpoint, error) {
	return s.pricer.Agent().Snapshot()
}

// JournalPath exposes the live journal file for corruption-injection
// tests.
func (s *Server) JournalPath() string { return s.st.journal.path }

// CheckpointPathFor exposes the checkpoint naming scheme to tests.
func CheckpointPathFor(dir string, snapshots int) string { return checkpointPath(dir, snapshots) }

// ProcessBatch drives the engine synchronously with one pre-formed
// arrival-ordered batch, bypassing the intake queue. The rule-8 table
// tests pin exact batch cuts with it — live intake cuts depend on queue
// timing, which is precisely what rule 8 promises is irrelevant. Only
// for servers with no concurrent Quote traffic.
func (s *Server) ProcessBatch(reqs []QuoteRequest) ([]QuoteResponse, []error) {
	replies := s.eng.processBatch(reqs)
	resps := make([]QuoteResponse, len(replies))
	errs := make([]error, len(replies))
	for i, r := range replies {
		resps[i], errs[i] = r.resp, r.err
	}
	return resps, errs
}

// SetPreworkWorkers pins the engine's prework fan-out width — the knob
// GOMAXPROCS feeds at Open — so the bit-identity table can sweep it
// without re-execing the test binary.
func (s *Server) SetPreworkWorkers(n int) { s.eng.workers = n }
