package serve

import "context"

// The intake layer is the only place concurrency meets the engine: it
// assigns arrival order (the order jobs leave the queue) and forms
// batches at the natural queue boundary — whatever is already waiting
// when the previous batch finishes, capped at Config.BatchMax, never
// waiting for more traffic. Batch boundaries carry no meaning (contract
// rule 8): the engine makes any cut of the stream bit-identical to
// serial intake, so batching only amortizes prework and journal writes
// under load while an idle server still answers every quote alone.

type quoteJob struct {
	req   QuoteRequest
	reply chan quoteReply
}

type quoteReply struct {
	resp QuoteResponse
	err  error
}

// intake is the single serializing consumer: it drains the queue into
// arrival-ordered batches and acknowledges each batch only after the
// engine has flushed its journal entries (acknowledged ⇒ durable).
func (s *Server) intake() {
	defer close(s.done)
	batch := make([]quoteJob, 0, s.cfg.BatchMax)
	reqs := make([]QuoteRequest, 0, s.cfg.BatchMax)
	for job := range s.jobs {
		batch = append(batch[:0], job)
	drain:
		for len(batch) < s.cfg.BatchMax {
			select {
			case j, ok := <-s.jobs:
				if !ok {
					break drain
				}
				batch = append(batch, j)
			default:
				break drain
			}
		}
		reqs = reqs[:0]
		for _, j := range batch {
			reqs = append(reqs, j.req)
		}
		replies := s.eng.processBatch(reqs)
		s.syncStats()
		for i, j := range batch {
			j.reply <- replies[i]
		}
	}
}

// Quote prices one round. It blocks until the intake goroutine reaches
// the request (or ctx is done; a request already enqueued is still
// journaled and learned from even if the caller gives up — the round
// entered the stream the moment it was accepted).
func (s *Server) Quote(ctx context.Context, req QuoteRequest) (QuoteResponse, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return QuoteResponse{}, ErrClosed
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()
	job := quoteJob{req: req, reply: make(chan quoteReply, 1)}
	select {
	case s.jobs <- job:
	case <-ctx.Done():
		return QuoteResponse{}, ctx.Err()
	}
	select {
	case r := <-job.reply:
		return r.resp, r.err
	case <-ctx.Done():
		return QuoteResponse{}, ctx.Err()
	}
}
