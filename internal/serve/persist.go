package serve

import (
	"vtmig/internal/nn"
)

// store is the persistence boundary the engine writes through: the
// write-ahead staging and flushing of journal entries. The engine never
// sees files, rotation mechanics, or pruning — it stages each round
// before applying it and the intake layer flushes before acknowledging,
// which together keep the invariant every recovery path relies on:
// checkpoint + flushed journal ≽ every acknowledged round.
type store interface {
	// nextSeq returns the sequence number the next staged entry must
	// carry (1-based since the bound checkpoint).
	nextSeq() int
	// stage write-ahead-stages one round's journal entry in memory.
	stage(e journalEntry) error
	// flush makes every staged entry durable in one write; it must run
	// before any round staged since the last flush is acknowledged.
	flush() error
	// generation counts checkpoint rotations. An entry staged at an older
	// generation than the current one has been superseded by a checkpoint
	// and is durable through it even if never flushed.
	generation() int
}

// diskStore is the on-disk persistence layer: the live journal plus
// checkpoint rotation and pruning in one state directory. The engine
// uses it through the store interface; the Server additionally drives
// rotate from the pricer's snapshot hook and reads entryCount for stats.
type diskStore struct {
	dir     string
	keep    int
	gameFP  string
	journal *journalWriter
	gen     int
}

var _ store = (*diskStore)(nil)

func (d *diskStore) nextSeq() int               { return d.journal.nextSeq() }
func (d *diskStore) stage(e journalEntry) error { return d.journal.stage(e) }
func (d *diskStore) flush() error               { return d.journal.flush() }
func (d *diskStore) generation() int            { return d.gen }

// entryCount reports how many rounds the live journal covers (flushed
// plus staged) since the last rotation.
func (d *diskStore) entryCount() int { return d.journal.entries + d.journal.staged }

// header builds the journal header binding to a checkpoint's pricer
// section and CRC.
func (d *diskStore) header(ps *nn.PricerState, crc uint32) journalHeader {
	return journalHeader{
		Magic:         journalMagic,
		Version:       journalVersion,
		Snapshots:     ps.Snapshots,
		Rounds:        ps.Rounds,
		Updates:       ps.Updates,
		CheckpointCRC: crc,
		Game:          d.gameFP,
	}
}

// rotate performs one checkpoint rotation: persist ck, truncate the
// journal to extend it (discarding staged entries the checkpoint now
// covers), and prune old checkpoints. prune is false during recovery
// replay, where the on-disk journal still binds the old checkpoint until
// the replayed journal commits.
func (d *diskStore) rotate(ck *nn.Checkpoint, prune bool) error {
	crc, err := writeCheckpoint(checkpointPath(d.dir, ck.Pricer.Snapshots), ck)
	if err != nil {
		return err
	}
	if err := d.journal.rotate(d.header(ck.Pricer, crc)); err != nil {
		return err
	}
	d.gen++
	if prune {
		if err := pruneCheckpoints(d.dir, ck.Pricer.Snapshots, d.keep); err != nil {
			return err
		}
	}
	return nil
}

// close releases the journal, flushing staged entries first.
func (d *diskStore) close() error { return d.journal.Close() }
