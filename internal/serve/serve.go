// Package serve puts the simulator's online continual-learning pricer
// (sim.OnlinePricer) behind a long-running request/response front end
// with audit-grade durability, layered so that scale-out never touches
// the determinism contract:
//
//   - The intake layer (intake.go) assigns arrival order and forms
//     batches at the natural queue boundary.
//   - The engine (engine.go) is the pure core — (state, orderedBatch) →
//     (state, responses, journal entries). It fans the pure per-round
//     prework across workers in arrival-order slots and applies the
//     policy/belief/learning core strictly serially in arrival order, so
//     any batch size is bit-identical to one-at-a-time (contract rule 8,
//     with rule 5 intact at the process boundary).
//   - The persistence layer (persist.go, journal.go, checkpoint.go)
//     stages write-ahead journal entries, flushes them before anything
//     is acknowledged, and rotates full resume checkpoints at
//     optimization-phase boundaries.
//   - Read replicas (replica.go) freeze a rotated checkpoint into a
//     learner-free pricer and serve quote-only traffic at arbitrary
//     fan-out, answering bit-identically to the primary's price at the
//     same snapshot ordinal.
//
// A crashed or restarted server rebuilds its exact serving state — same
// quotes, same weights, bit for bit — by restoring the latest checkpoint
// and replaying the journal in order (rule 6's strict restore: a journal
// whose checkpoint is missing, mismatched, or corrupt refuses loudly
// instead of cold-starting).
package serve

import (
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"vtmig/internal/nn"
	"vtmig/internal/rl"
	"vtmig/internal/sim"
	"vtmig/internal/stackelberg"
)

// maxQuoteVMUs caps one round's follower count against hostile requests;
// it matches the binary checkpoint reader's hostile-input posture rather
// than any model limit.
const maxQuoteVMUs = 4096

// ErrClosed is returned by Quote after Close has begun.
var ErrClosed = errors.New("serve: server is shut down")

// RequestError marks a quote rejected for what it asked, not for server
// state — HTTP handlers map it to a 400 instead of a 503.
type RequestError struct{ Err error }

func (e *RequestError) Error() string { return e.Err.Error() }
func (e *RequestError) Unwrap() error { return e.Err }

// QuoteVMU describes one follower of a quoted round.
type QuoteVMU struct {
	// ID identifies the VMU within the round (unique per request).
	ID int `json:"id"`
	// Alpha is the immersion coefficient α_n (paper range [5, 20]).
	Alpha float64 `json:"alpha"`
	// DataMB is the twin's total migrated data in megabytes.
	DataMB float64 `json:"data_mb"`
}

// QuoteRequest describes one pricing round: the followers about to
// migrate, and optionally the round's channel distance and remaining
// bandwidth pool. Cost, PMax, and the channel template come from the
// server's reference game — the request carries only what varies per
// round, exactly like the simulator's buildGame.
type QuoteRequest struct {
	// VMUs are the round's followers (at least one).
	VMUs []QuoteVMU `json:"vmus"`
	// DistanceM overrides the reference channel's source–destination RSU
	// distance in meters (0 keeps the reference distance).
	DistanceM float64 `json:"distance_m,omitempty"`
	// AvailableMHz is the bandwidth pool remaining for this round in MHz
	// (0 uses the reference game's BMax).
	AvailableMHz float64 `json:"available_mhz,omitempty"`
}

// QuoteResponse is the answer to one quote.
type QuoteResponse struct {
	// Price is the posted unit bandwidth price, clamped to the round's
	// [Cost, PMax].
	Price float64 `json:"price"`
	// Round is the server's global intake ordinal: how many rounds the
	// learner has been fed, this one included. It is the audit handle —
	// the round survives in the journal (and eventually a checkpoint)
	// under this position. A read replica reports the frozen state's
	// round count instead: how many rounds the answer has seen.
	Round int `json:"round"`
	// Updates is the number of optimization phases completed so far.
	Updates int `json:"updates"`
}

// Stats is a point-in-time view of the serving state.
type Stats struct {
	// Rounds, Updates, and Snapshots mirror the pricer's counters.
	Rounds    int `json:"rounds"`
	Updates   int `json:"updates"`
	Snapshots int `json:"snapshots"`
	// Pending counts rounds staged since the last optimization phase
	// (they live in the journal, not in any checkpoint).
	Pending int `json:"pending"`
	// BestUtility is the best live leader utility observed, when BestSet
	// (JSON cannot carry the -Inf that means "nothing yet").
	BestUtility float64 `json:"best_utility"`
	BestSet     bool    `json:"best_set"`
	// JournalEntries counts entries in the live journal since the last
	// rotation.
	JournalEntries int `json:"journal_entries"`
	// ReplayedRounds counts journal entries replayed at the last Open;
	// TornDropped counts torn trailing lines dropped there.
	ReplayedRounds int `json:"replayed_rounds"`
	TornDropped    int `json:"torn_dropped"`
	// RotateErrors counts failed checkpoint rotations (the journal then
	// keeps extending the previous checkpoint, so the state stays
	// recoverable); LastRotateError is the most recent failure.
	RotateErrors    int    `json:"rotate_errors"`
	LastRotateError string `json:"last_rotate_error,omitempty"`
}

// Config parameterizes a Server.
type Config struct {
	// Dir is the durable state directory: the journal and rotated
	// checkpoints live here. Required.
	Dir string
	// Game is the reference game fixing the pricing interface (observation
	// layout, [Cost, PMax] interval, channel template). Nil selects
	// stackelberg.DefaultGame. It must be identical across restarts of the
	// same state directory (fingerprinted in the journal header).
	Game *stackelberg.Game
	// HistoryLen, UpdateEvery, Seed, PPO, and Agent configure the pricer
	// exactly as in sim.OnlinePricerConfig. On a resume, zero-valued
	// HistoryLen/UpdateEvery adopt the checkpointed values and Agent must
	// be nil (the learner is rebuilt from the checkpoint).
	HistoryLen  int
	UpdateEvery int
	Seed        int64
	PPO         rl.PPOConfig
	Agent       *rl.PPO
	// SnapshotEvery is the checkpoint-rotation cadence in optimization
	// phases. Zero selects 1 — rotate at every phase boundary, keeping the
	// journal no longer than UpdateEvery rounds.
	SnapshotEvery int
	// KeepCheckpoints is how many rotated checkpoints to retain besides
	// the one the journal binds to (audit trail). Zero selects 2.
	KeepCheckpoints int
	// QueueDepth bounds the intake queue. Zero selects 256.
	QueueDepth int
	// BatchMax caps how many queued quotes one intake batch may coalesce.
	// Batching is a pure throughput knob — any value yields bit-identical
	// responses, journal bytes, and learner weights (contract rule 8) —
	// so this only bounds per-batch latency and memory. Zero selects 16;
	// 1 disables batching.
	BatchMax int
}

// withDefaults resolves the zero-value conveniences.
func (c Config) withDefaults() Config {
	if c.Game == nil {
		c.Game = stackelberg.DefaultGame()
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 1
	}
	if c.KeepCheckpoints == 0 {
		c.KeepCheckpoints = 2
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.BatchMax == 0 {
		c.BatchMax = 16
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Dir == "" {
		return fmt.Errorf("serve: Config.Dir is required")
	}
	if c.SnapshotEvery < 0 || c.KeepCheckpoints < 0 || c.QueueDepth < 0 || c.BatchMax < 0 {
		return fmt.Errorf("serve: negative SnapshotEvery/KeepCheckpoints/QueueDepth/BatchMax")
	}
	return nil
}

// Server is the journaled online-pricing daemon: the intake, engine, and
// persistence layers assembled over one state directory (see the package
// comment for the layering). Construct with Open, serve quotes with
// Quote (or the HTTP front end from Handler), and shut down with Close.
// All methods are safe for concurrent use; the engine and its pricer are
// only ever touched by the intake goroutine.
type Server struct {
	cfg    Config
	game   *stackelberg.Game
	pricer *sim.OnlinePricer
	st     *diskStore
	eng    *engine

	jobs     chan quoteJob
	done     chan struct{}
	inflight sync.WaitGroup

	mu     sync.Mutex
	closed bool
	stats  Stats

	// replaying and rotateErr belong to the recovery path: rotations
	// re-reached during replay must not prune, and their failures abort
	// the recovery instead of degrading it.
	replaying bool
	rotateErr error
}

// Open builds the serving state from cfg.Dir and starts the intake
// goroutine. A directory without a journal cold-starts (or warm-starts
// from cfg.Agent) and immediately persists a boot checkpoint, so from the
// first request on, the state is always recoverable as checkpoint +
// journal. A directory with a journal recovers: the bound checkpoint is
// restored strictly and the journal replays through the identical intake
// path, leaving the server bit-identical to the one that crashed.
func Open(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if err := cfg.Game.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: creating state dir: %w", err)
	}
	s := &Server{cfg: cfg, game: cfg.Game, done: make(chan struct{})}
	jpath := filepath.Join(cfg.Dir, journalName)
	if _, err := os.Stat(jpath); err == nil {
		if err := s.recoverState(jpath); err != nil {
			return nil, err
		}
	} else if errors.Is(err, fs.ErrNotExist) {
		if err := s.boot(jpath); err != nil {
			return nil, err
		}
	} else {
		return nil, fmt.Errorf("serve: probing journal: %w", err)
	}
	s.jobs = make(chan quoteJob, cfg.QueueDepth)
	go s.intake()
	return s, nil
}

// newStore assembles the persistence layer over an opened journal.
func (s *Server) newStore(journal *journalWriter) *diskStore {
	return &diskStore{
		dir:     s.cfg.Dir,
		keep:    s.cfg.KeepCheckpoints,
		gameFP:  gameFingerprint(s.game),
		journal: journal,
	}
}

// newEngine assembles the engine layer over the pricer and store, with
// the prework fan-out sized to the machine (the width is invisible in
// every output — contract rule 8).
func (s *Server) newEngine() *engine {
	return &engine{game: s.game, pricer: s.pricer, store: s.st, workers: runtime.GOMAXPROCS(0)}
}

// boot builds a fresh pricer and persists the boot checkpoint + empty
// journal before serving anything.
func (s *Server) boot(jpath string) error {
	if stale, _ := filepath.Glob(filepath.Join(s.cfg.Dir, "checkpoint-*.bin")); len(stale) > 0 {
		return fmt.Errorf("serve: state dir %s has %d checkpoint(s) but no journal — refusing to cold-start over existing state (restore the journal, or empty the directory to really start fresh)",
			s.cfg.Dir, len(stale))
	}
	p, err := sim.NewOnlinePricer(s.pricerConfig())
	if err != nil {
		return err
	}
	ck, err := p.Snapshot()
	if err != nil {
		return fmt.Errorf("serve: boot checkpoint: %w", err)
	}
	crc, err := writeCheckpoint(checkpointPath(s.cfg.Dir, ck.Pricer.Snapshots), ck)
	if err != nil {
		return err
	}
	s.pricer = p
	s.st = s.newStore(nil)
	journal, err := newJournal(jpath, s.st.header(ck.Pricer, crc))
	if err != nil {
		return err
	}
	s.st.journal = journal
	s.eng = s.newEngine()
	s.syncStats()
	return nil
}

// recoverState rebuilds the server from the journal at jpath and its
// bound checkpoint, replaying every journaled round through the normal
// engine path. The replay appends to a shadow journal and only renames it
// over the real one once the replay completes, so a crash mid-recovery
// leaves the original journal untouched and recovery simply restarts.
func (s *Server) recoverState(jpath string) error {
	h, entries, torn, err := readJournal(jpath)
	if err != nil {
		return err
	}
	if fp := gameFingerprint(s.game); h.Game != fp {
		return fmt.Errorf("serve: journal %s was written against a different reference game\n  journal: %s\n  config:  %s", jpath, h.Game, fp)
	}
	if s.cfg.Agent != nil {
		return fmt.Errorf("serve: Config.Agent must be nil when resuming state dir %s — the learner is rebuilt from its checkpoint", s.cfg.Dir)
	}
	ckPath := checkpointPath(s.cfg.Dir, h.Snapshots)
	ck, crc, err := loadCheckpoint(ckPath)
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("serve: journal %s extends checkpoint %d (%s), which is gone — rotated away or deleted; refusing to cold-start: a journaled state is restored exactly or not at all",
			jpath, h.Snapshots, ckPath)
	}
	if err != nil {
		return err
	}
	if crc != h.CheckpointCRC {
		return fmt.Errorf("serve: checkpoint %s does not match the journal binding (CRC %08x, journal expects %08x) — the files describe different runs", ckPath, crc, h.CheckpointCRC)
	}
	ps := ck.Pricer
	if ps == nil {
		return fmt.Errorf("serve: checkpoint %s carries no pricer section", ckPath)
	}
	if ps.Snapshots != h.Snapshots || ps.Rounds != h.Rounds || ps.Updates != h.Updates {
		return fmt.Errorf("serve: checkpoint %s counters (snapshots=%d rounds=%d updates=%d) disagree with the journal header (snapshots=%d rounds=%d updates=%d)",
			ckPath, ps.Snapshots, ps.Rounds, ps.Updates, h.Snapshots, h.Rounds, h.Updates)
	}
	p, err := sim.NewOnlinePricerFromCheckpoint(s.pricerConfig(), ck)
	if err != nil {
		return err
	}
	s.pricer = p
	s.st = s.newStore(nil)
	journal, err := newJournal(jpath+".replay", h)
	if err != nil {
		return err
	}
	s.st.journal = journal
	s.eng = s.newEngine()
	s.replaying = true
	for _, e := range entries {
		// Replay batches one round at a time; rule 8 makes the cut
		// irrelevant, and per-round replies keep the failing entry exact.
		replies := s.eng.processBatch([]QuoteRequest{e.Req})
		if err := replies[0].err; err != nil {
			return fmt.Errorf("serve: replaying journal entry %d: %w", e.Seq, err)
		}
		if s.rotateErr != nil {
			return fmt.Errorf("serve: replaying journal entry %d: %w", e.Seq, s.rotateErr)
		}
	}
	s.replaying = false
	if err := os.Rename(s.st.journal.path, jpath); err != nil {
		return fmt.Errorf("serve: committing replayed journal: %w", err)
	}
	s.st.journal.path = jpath
	if err := pruneCheckpoints(s.cfg.Dir, s.pricer.Snapshots(), s.cfg.KeepCheckpoints); err != nil {
		return fmt.Errorf("serve: pruning checkpoints: %w", err)
	}
	s.syncStats()
	s.mu.Lock()
	s.stats.ReplayedRounds = len(entries)
	s.stats.TornDropped = torn
	s.mu.Unlock()
	return nil
}

// pricerConfig assembles the sim.OnlinePricerConfig both boot and
// recovery build the pricer from; the OnSnapshot hook routes rotations
// back into the server.
func (s *Server) pricerConfig() sim.OnlinePricerConfig {
	return sim.OnlinePricerConfig{
		Game:          s.game,
		HistoryLen:    s.cfg.HistoryLen,
		Agent:         s.cfg.Agent,
		PPO:           s.cfg.PPO,
		UpdateEvery:   s.cfg.UpdateEvery,
		Seed:          s.cfg.Seed,
		SnapshotEvery: s.cfg.SnapshotEvery,
		OnSnapshot:    s.onSnapshot,
	}
}

// onSnapshot is the pricer's SnapshotEvery hook: rotate the checkpoint
// and journal through the persistence layer. It runs synchronously on
// the intake goroutine (inside the engine's serial core), so rotation
// and journaling never race. A failed rotation during live serving is
// recorded and the journal keeps extending the previous checkpoint —
// every round since it is still journaled, so the state remains exactly
// recoverable; during replay it aborts the recovery instead.
func (s *Server) onSnapshot(ck *nn.Checkpoint) {
	err := s.st.rotate(ck, !s.replaying)
	if err == nil {
		return
	}
	if s.replaying {
		s.rotateErr = err
		return
	}
	s.mu.Lock()
	s.stats.RotateErrors++
	s.stats.LastRotateError = err.Error()
	s.mu.Unlock()
}

// syncStats refreshes the shared stats view from the pricer; the intake
// goroutine calls it after every batch.
func (s *Server) syncStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Rounds = s.pricer.Rounds()
	s.stats.Updates = s.pricer.Updates()
	s.stats.Snapshots = s.pricer.Snapshots()
	s.stats.Pending = s.pricer.Rounds() % s.pricer.UpdateEvery()
	if best := s.pricer.BestUtility(); !math.IsInf(best, -1) {
		s.stats.BestUtility, s.stats.BestSet = best, true
	}
	s.stats.JournalEntries = s.st.entryCount()
}

// Stats returns a point-in-time view of the serving state.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Dir returns the durable state directory.
func (s *Server) Dir() string { return s.cfg.Dir }

// Close stops accepting quotes, drains the intake queue, and closes the
// journal. The final partial learning segment is deliberately NOT
// flushed: its rounds live in the journal, and a later Open replays them
// into the learner exactly as if the server had never stopped.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.inflight.Wait()
	close(s.jobs)
	<-s.done
	return s.st.close()
}

// gameFingerprint pins the reference game's full parameterization for the
// journal header: N followers with their ids/αs/data sizes, the channel
// template, and the MSP constants. Two servers with equal fingerprints
// build identical games from identical requests.
func gameFingerprint(g *stackelberg.Game) string {
	ids := make([]string, len(g.VMUs))
	for i, v := range g.VMUs {
		ids[i] = fmt.Sprintf("%d:%g:%g", v.ID, v.Alpha, v.DataSize)
	}
	sort.Strings(ids)
	return fmt.Sprintf("vmus=[%v] ch=%+v C=%g pmax=%g bmax=%g", ids, g.Channel, g.Cost, g.PMax, g.BMax)
}
