// Package serve puts the simulator's online continual-learning pricer
// (sim.OnlinePricer) behind a long-running request/response front end
// with audit-grade durability. Quote requests are answered from the live
// learner; every completed round feeds back into it through one
// serializing intake goroutine, so transitions enter the learning stream
// strictly in arrival order — determinism contract rule 5 applied at a
// process boundary. Durability follows the snapshot + journal pillar:
// full resume checkpoints rotate at optimization-phase boundaries (the
// pricer's SnapshotEvery hook), and every intake round between rotations
// is journaled as a JSON line before it is applied. A crashed or
// restarted server rebuilds its exact serving state — same quotes, same
// weights, bit for bit — by restoring the latest checkpoint and replaying
// the journal in order (rule 6's strict restore: a journal whose
// checkpoint is missing, mismatched, or corrupt refuses loudly instead of
// cold-starting).
package serve

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"vtmig/internal/aotm"
	"vtmig/internal/mathx"
	"vtmig/internal/nn"
	"vtmig/internal/rl"
	"vtmig/internal/sim"
	"vtmig/internal/stackelberg"
)

// maxQuoteVMUs caps one round's follower count against hostile requests;
// it matches the binary checkpoint reader's hostile-input posture rather
// than any model limit.
const maxQuoteVMUs = 4096

// ErrClosed is returned by Quote after Close has begun.
var ErrClosed = errors.New("serve: server is shut down")

// RequestError marks a quote rejected for what it asked, not for server
// state — HTTP handlers map it to a 400 instead of a 503.
type RequestError struct{ Err error }

func (e *RequestError) Error() string { return e.Err.Error() }
func (e *RequestError) Unwrap() error { return e.Err }

// QuoteVMU describes one follower of a quoted round.
type QuoteVMU struct {
	// ID identifies the VMU within the round (unique per request).
	ID int `json:"id"`
	// Alpha is the immersion coefficient α_n (paper range [5, 20]).
	Alpha float64 `json:"alpha"`
	// DataMB is the twin's total migrated data in megabytes.
	DataMB float64 `json:"data_mb"`
}

// QuoteRequest describes one pricing round: the followers about to
// migrate, and optionally the round's channel distance and remaining
// bandwidth pool. Cost, PMax, and the channel template come from the
// server's reference game — the request carries only what varies per
// round, exactly like the simulator's buildGame.
type QuoteRequest struct {
	// VMUs are the round's followers (at least one).
	VMUs []QuoteVMU `json:"vmus"`
	// DistanceM overrides the reference channel's source–destination RSU
	// distance in meters (0 keeps the reference distance).
	DistanceM float64 `json:"distance_m,omitempty"`
	// AvailableMHz is the bandwidth pool remaining for this round in MHz
	// (0 uses the reference game's BMax).
	AvailableMHz float64 `json:"available_mhz,omitempty"`
}

// QuoteResponse is the answer to one quote.
type QuoteResponse struct {
	// Price is the posted unit bandwidth price, clamped to the round's
	// [Cost, PMax].
	Price float64 `json:"price"`
	// Round is the server's global intake ordinal: how many rounds the
	// learner has been fed, this one included. It is the audit handle —
	// the round survives in the journal (and eventually a checkpoint)
	// under this position.
	Round int `json:"round"`
	// Updates is the number of optimization phases completed so far.
	Updates int `json:"updates"`
}

// Stats is a point-in-time view of the serving state.
type Stats struct {
	// Rounds, Updates, and Snapshots mirror the pricer's counters.
	Rounds    int `json:"rounds"`
	Updates   int `json:"updates"`
	Snapshots int `json:"snapshots"`
	// Pending counts rounds staged since the last optimization phase
	// (they live in the journal, not in any checkpoint).
	Pending int `json:"pending"`
	// BestUtility is the best live leader utility observed, when BestSet
	// (JSON cannot carry the -Inf that means "nothing yet").
	BestUtility float64 `json:"best_utility"`
	BestSet     bool    `json:"best_set"`
	// JournalEntries counts entries in the live journal since the last
	// rotation.
	JournalEntries int `json:"journal_entries"`
	// ReplayedRounds counts journal entries replayed at the last Open;
	// TornDropped counts torn trailing lines dropped there.
	ReplayedRounds int `json:"replayed_rounds"`
	TornDropped    int `json:"torn_dropped"`
	// RotateErrors counts failed checkpoint rotations (the journal then
	// keeps extending the previous checkpoint, so the state stays
	// recoverable); LastRotateError is the most recent failure.
	RotateErrors    int    `json:"rotate_errors"`
	LastRotateError string `json:"last_rotate_error,omitempty"`
}

// Config parameterizes a Server.
type Config struct {
	// Dir is the durable state directory: the journal and rotated
	// checkpoints live here. Required.
	Dir string
	// Game is the reference game fixing the pricing interface (observation
	// layout, [Cost, PMax] interval, channel template). Nil selects
	// stackelberg.DefaultGame. It must be identical across restarts of the
	// same state directory (fingerprinted in the journal header).
	Game *stackelberg.Game
	// HistoryLen, UpdateEvery, Seed, PPO, and Agent configure the pricer
	// exactly as in sim.OnlinePricerConfig. On a resume, zero-valued
	// HistoryLen/UpdateEvery adopt the checkpointed values and Agent must
	// be nil (the learner is rebuilt from the checkpoint).
	HistoryLen  int
	UpdateEvery int
	Seed        int64
	PPO         rl.PPOConfig
	Agent       *rl.PPO
	// SnapshotEvery is the checkpoint-rotation cadence in optimization
	// phases. Zero selects 1 — rotate at every phase boundary, keeping the
	// journal no longer than UpdateEvery rounds.
	SnapshotEvery int
	// KeepCheckpoints is how many rotated checkpoints to retain besides
	// the one the journal binds to (audit trail). Zero selects 2.
	KeepCheckpoints int
	// QueueDepth bounds the intake queue. Zero selects 256.
	QueueDepth int
}

// withDefaults resolves the zero-value conveniences.
func (c Config) withDefaults() Config {
	if c.Game == nil {
		c.Game = stackelberg.DefaultGame()
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 1
	}
	if c.KeepCheckpoints == 0 {
		c.KeepCheckpoints = 2
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Dir == "" {
		return fmt.Errorf("serve: Config.Dir is required")
	}
	if c.SnapshotEvery < 0 || c.KeepCheckpoints < 0 || c.QueueDepth < 0 {
		return fmt.Errorf("serve: negative SnapshotEvery/KeepCheckpoints/QueueDepth")
	}
	return nil
}

// Server is the journaled online-pricing daemon core: one pricer, one
// journal, one serializing intake goroutine. Construct with Open, serve
// quotes with Quote (or the HTTP front end from Handler), and shut down
// with Close. All methods are safe for concurrent use; the pricer itself
// is only ever touched by the intake goroutine.
type Server struct {
	cfg     Config
	game    *stackelberg.Game
	pricer  *sim.OnlinePricer
	journal *journalWriter

	jobs     chan quoteJob
	done     chan struct{}
	inflight sync.WaitGroup

	mu     sync.Mutex
	closed bool
	stats  Stats

	// replaying and rotateErr belong to the recovery path: rotations
	// re-reached during replay must not prune, and their failures abort
	// the recovery instead of degrading it.
	replaying bool
	rotateErr error
}

type quoteJob struct {
	req   QuoteRequest
	reply chan quoteReply
}

type quoteReply struct {
	resp QuoteResponse
	err  error
}

// Open builds the serving state from cfg.Dir and starts the intake
// goroutine. A directory without a journal cold-starts (or warm-starts
// from cfg.Agent) and immediately persists a boot checkpoint, so from the
// first request on, the state is always recoverable as checkpoint +
// journal. A directory with a journal recovers: the bound checkpoint is
// restored strictly and the journal replays through the identical intake
// path, leaving the server bit-identical to the one that crashed.
func Open(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if err := cfg.Game.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: creating state dir: %w", err)
	}
	s := &Server{cfg: cfg, game: cfg.Game, done: make(chan struct{})}
	jpath := filepath.Join(cfg.Dir, journalName)
	if _, err := os.Stat(jpath); err == nil {
		if err := s.recoverState(jpath); err != nil {
			return nil, err
		}
	} else if errors.Is(err, fs.ErrNotExist) {
		if err := s.boot(jpath); err != nil {
			return nil, err
		}
	} else {
		return nil, fmt.Errorf("serve: probing journal: %w", err)
	}
	s.jobs = make(chan quoteJob, cfg.QueueDepth)
	go s.intake()
	return s, nil
}

// boot builds a fresh pricer and persists the boot checkpoint + empty
// journal before serving anything.
func (s *Server) boot(jpath string) error {
	if stale, _ := filepath.Glob(filepath.Join(s.cfg.Dir, "checkpoint-*.bin")); len(stale) > 0 {
		return fmt.Errorf("serve: state dir %s has %d checkpoint(s) but no journal — refusing to cold-start over existing state (restore the journal, or empty the directory to really start fresh)",
			s.cfg.Dir, len(stale))
	}
	p, err := sim.NewOnlinePricer(s.pricerConfig())
	if err != nil {
		return err
	}
	ck, err := p.Snapshot()
	if err != nil {
		return fmt.Errorf("serve: boot checkpoint: %w", err)
	}
	crc, err := writeCheckpoint(checkpointPath(s.cfg.Dir, ck.Pricer.Snapshots), ck)
	if err != nil {
		return err
	}
	s.journal, err = newJournal(jpath, s.header(ck.Pricer, crc))
	if err != nil {
		return err
	}
	s.pricer = p
	s.syncStats()
	return nil
}

// recoverState rebuilds the server from the journal at jpath and its
// bound checkpoint, replaying every journaled round through the normal
// intake path. The replay appends to a shadow journal and only renames it
// over the real one once the replay completes, so a crash mid-recovery
// leaves the original journal untouched and recovery simply restarts.
func (s *Server) recoverState(jpath string) error {
	h, entries, torn, err := readJournal(jpath)
	if err != nil {
		return err
	}
	if fp := gameFingerprint(s.game); h.Game != fp {
		return fmt.Errorf("serve: journal %s was written against a different reference game\n  journal: %s\n  config:  %s", jpath, h.Game, fp)
	}
	if s.cfg.Agent != nil {
		return fmt.Errorf("serve: Config.Agent must be nil when resuming state dir %s — the learner is rebuilt from its checkpoint", s.cfg.Dir)
	}
	ckPath := checkpointPath(s.cfg.Dir, h.Snapshots)
	ck, crc, err := loadCheckpoint(ckPath)
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("serve: journal %s extends checkpoint %d (%s), which is gone — rotated away or deleted; refusing to cold-start: a journaled state is restored exactly or not at all",
			jpath, h.Snapshots, ckPath)
	}
	if err != nil {
		return err
	}
	if crc != h.CheckpointCRC {
		return fmt.Errorf("serve: checkpoint %s does not match the journal binding (CRC %08x, journal expects %08x) — the files describe different runs", ckPath, crc, h.CheckpointCRC)
	}
	ps := ck.Pricer
	if ps == nil {
		return fmt.Errorf("serve: checkpoint %s carries no pricer section", ckPath)
	}
	if ps.Snapshots != h.Snapshots || ps.Rounds != h.Rounds || ps.Updates != h.Updates {
		return fmt.Errorf("serve: checkpoint %s counters (snapshots=%d rounds=%d updates=%d) disagree with the journal header (snapshots=%d rounds=%d updates=%d)",
			ckPath, ps.Snapshots, ps.Rounds, ps.Updates, h.Snapshots, h.Rounds, h.Updates)
	}
	p, err := sim.NewOnlinePricerFromCheckpoint(s.pricerConfig(), ck)
	if err != nil {
		return err
	}
	s.pricer = p
	s.journal, err = newJournal(jpath+".replay", h)
	if err != nil {
		return err
	}
	s.replaying = true
	for _, e := range entries {
		if _, err := s.process(e.Req); err != nil {
			return fmt.Errorf("serve: replaying journal entry %d: %w", e.Seq, err)
		}
		if s.rotateErr != nil {
			return fmt.Errorf("serve: replaying journal entry %d: %w", e.Seq, s.rotateErr)
		}
	}
	s.replaying = false
	if err := os.Rename(s.journal.path, jpath); err != nil {
		return fmt.Errorf("serve: committing replayed journal: %w", err)
	}
	s.journal.path = jpath
	if err := pruneCheckpoints(s.cfg.Dir, s.pricer.Snapshots(), s.cfg.KeepCheckpoints); err != nil {
		return fmt.Errorf("serve: pruning checkpoints: %w", err)
	}
	s.syncStats()
	s.mu.Lock()
	s.stats.ReplayedRounds = len(entries)
	s.stats.TornDropped = torn
	s.mu.Unlock()
	return nil
}

// pricerConfig assembles the sim.OnlinePricerConfig both boot and
// recovery build the pricer from; the OnSnapshot hook routes rotations
// back into the server.
func (s *Server) pricerConfig() sim.OnlinePricerConfig {
	return sim.OnlinePricerConfig{
		Game:          s.game,
		HistoryLen:    s.cfg.HistoryLen,
		Agent:         s.cfg.Agent,
		PPO:           s.cfg.PPO,
		UpdateEvery:   s.cfg.UpdateEvery,
		Seed:          s.cfg.Seed,
		SnapshotEvery: s.cfg.SnapshotEvery,
		OnSnapshot:    s.onSnapshot,
	}
}

// header builds the journal header binding to a checkpoint's pricer
// section and CRC.
func (s *Server) header(ps *nn.PricerState, crc uint32) journalHeader {
	return journalHeader{
		Magic:         journalMagic,
		Version:       journalVersion,
		Snapshots:     ps.Snapshots,
		Rounds:        ps.Rounds,
		Updates:       ps.Updates,
		CheckpointCRC: crc,
		Game:          gameFingerprint(s.game),
	}
}

// onSnapshot is the pricer's SnapshotEvery hook: persist the checkpoint,
// truncate the journal to extend it, prune old checkpoints. It runs
// synchronously on the intake goroutine, so rotation and journaling never
// race. A failed rotation during live serving is recorded and the journal
// keeps extending the previous checkpoint — every round since it is still
// journaled, so the state remains exactly recoverable; during replay it
// aborts the recovery instead.
func (s *Server) onSnapshot(ck *nn.Checkpoint) {
	err := s.rotate(ck)
	if err == nil {
		return
	}
	if s.replaying {
		s.rotateErr = err
		return
	}
	s.mu.Lock()
	s.stats.RotateErrors++
	s.stats.LastRotateError = err.Error()
	s.mu.Unlock()
}

// rotate performs one checkpoint rotation.
func (s *Server) rotate(ck *nn.Checkpoint) error {
	crc, err := writeCheckpoint(checkpointPath(s.cfg.Dir, ck.Pricer.Snapshots), ck)
	if err != nil {
		return err
	}
	if err := s.journal.rotate(s.header(ck.Pricer, crc)); err != nil {
		return err
	}
	if !s.replaying {
		// During replay the on-disk journal still binds the old
		// checkpoint; pruning waits until the replayed journal commits.
		if err := pruneCheckpoints(s.cfg.Dir, ck.Pricer.Snapshots, s.cfg.KeepCheckpoints); err != nil {
			return err
		}
	}
	return nil
}

// buildGame assembles a round's game from a request over the reference
// game — a pure function of (request, reference), which is what makes a
// journaled request replayable.
func (s *Server) buildGame(req QuoteRequest) (*stackelberg.Game, error) {
	if len(req.VMUs) == 0 {
		return nil, fmt.Errorf("serve: quote request has no VMUs")
	}
	if len(req.VMUs) > maxQuoteVMUs {
		return nil, fmt.Errorf("serve: quote request has %d VMUs, cap is %d", len(req.VMUs), maxQuoteVMUs)
	}
	if bad(req.DistanceM) || req.DistanceM < 0 {
		return nil, fmt.Errorf("serve: quote distance %g must be a non-negative finite number of meters", req.DistanceM)
	}
	if bad(req.AvailableMHz) || req.AvailableMHz < 0 {
		return nil, fmt.Errorf("serve: quote available bandwidth %g must be a non-negative finite number of MHz", req.AvailableMHz)
	}
	ch := s.game.Channel
	if req.DistanceM > 0 {
		ch.DistanceM = req.DistanceM
	}
	bmax := s.game.BMax
	if req.AvailableMHz > 0 {
		bmax = req.AvailableMHz
	}
	vmus := make([]stackelberg.VMU, len(req.VMUs))
	for i, v := range req.VMUs {
		if bad(v.Alpha) || bad(v.DataMB) {
			return nil, fmt.Errorf("serve: quote VMU %d has non-finite parameters (alpha=%g, data=%g MB)", v.ID, v.Alpha, v.DataMB)
		}
		vmus[i] = stackelberg.VMU{ID: v.ID, Alpha: v.Alpha, DataSize: aotm.FromMB(v.DataMB)}
	}
	return stackelberg.NewGame(vmus, ch, s.game.Cost, s.game.PMax, bmax)
}

// bad reports a non-finite float.
func bad(x float64) bool { return math.IsNaN(x) || math.IsInf(x, 0) }

// process applies one quote on the intake goroutine: validate and build
// the round's game, journal the request (write-ahead: an acknowledged
// round is always recoverable), then price it — which also feeds the
// round into the learner and may trigger an optimization phase and a
// checkpoint rotation. Replay drives the identical path.
func (s *Server) process(req QuoteRequest) (QuoteResponse, error) {
	g, err := s.buildGame(req)
	if err != nil {
		return QuoteResponse{}, &RequestError{err}
	}
	if err := s.journal.append(journalEntry{Seq: s.journal.nextSeq(), Req: req}); err != nil {
		return QuoteResponse{}, err
	}
	price := mathx.Clamp(s.pricer.PriceFor(g), g.Cost, g.PMax)
	resp := QuoteResponse{Price: price, Round: s.pricer.Rounds(), Updates: s.pricer.Updates()}
	s.syncStats()
	return resp, nil
}

// syncStats refreshes the shared stats view from the pricer; the intake
// goroutine calls it after every state change.
func (s *Server) syncStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Rounds = s.pricer.Rounds()
	s.stats.Updates = s.pricer.Updates()
	s.stats.Snapshots = s.pricer.Snapshots()
	s.stats.Pending = s.pricer.Rounds() % s.pricer.UpdateEvery()
	if best := s.pricer.BestUtility(); !math.IsInf(best, -1) {
		s.stats.BestUtility, s.stats.BestSet = best, true
	}
	s.stats.JournalEntries = s.journal.entries
}

// intake is the single serializing consumer: jobs apply strictly in
// arrival order, which keeps rule 5 intact behind a concurrent front end.
func (s *Server) intake() {
	defer close(s.done)
	for job := range s.jobs {
		resp, err := s.process(job.req)
		job.reply <- quoteReply{resp, err}
	}
}

// Quote prices one round. It blocks until the intake goroutine reaches
// the request (or ctx is done; a request already enqueued is still
// journaled and learned from even if the caller gives up — the round
// entered the stream the moment it was accepted).
func (s *Server) Quote(ctx context.Context, req QuoteRequest) (QuoteResponse, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return QuoteResponse{}, ErrClosed
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()
	job := quoteJob{req: req, reply: make(chan quoteReply, 1)}
	select {
	case s.jobs <- job:
	case <-ctx.Done():
		return QuoteResponse{}, ctx.Err()
	}
	select {
	case r := <-job.reply:
		return r.resp, r.err
	case <-ctx.Done():
		return QuoteResponse{}, ctx.Err()
	}
}

// Stats returns a point-in-time view of the serving state.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Dir returns the durable state directory.
func (s *Server) Dir() string { return s.cfg.Dir }

// Close stops accepting quotes, drains the intake queue, and closes the
// journal. The final partial learning segment is deliberately NOT
// flushed: its rounds live in the journal, and a later Open replays them
// into the learner exactly as if the server had never stopped.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.inflight.Wait()
	close(s.jobs)
	<-s.done
	return s.journal.Close()
}

// gameFingerprint pins the reference game's full parameterization for the
// journal header: N followers with their ids/αs/data sizes, the channel
// template, and the MSP constants. Two servers with equal fingerprints
// build identical games from identical requests.
func gameFingerprint(g *stackelberg.Game) string {
	ids := make([]string, len(g.VMUs))
	for i, v := range g.VMUs {
		ids[i] = fmt.Sprintf("%d:%g:%g", v.ID, v.Alpha, v.DataSize)
	}
	sort.Strings(ids)
	return fmt.Sprintf("vmus=[%v] ch=%+v C=%g pmax=%g bmax=%g", ids, g.Channel, g.Cost, g.PMax, g.BMax)
}
