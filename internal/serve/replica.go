package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"vtmig/internal/mathx"
	"vtmig/internal/rl"
	"vtmig/internal/sim"
	"vtmig/internal/stackelberg"
)

// ReplicaConfig parameterizes a read replica.
type ReplicaConfig struct {
	// Dir is the primary's state directory. The replica only ever reads
	// from it: rotated checkpoints feed the frozen pricer, and the
	// journal header pins the reference game the checkpoints were
	// written against.
	Dir string
	// Game is the reference game, with the Config.Game semantics; it must
	// fingerprint-match the primary's journal header.
	Game *stackelberg.Game
	// HistoryLen and PPO describe the primary's learner exactly as in
	// Config (zero HistoryLen adopts the checkpointed belief window; PPO
	// must describe the checkpointed architecture).
	HistoryLen int
	PPO        rl.PPOConfig
	// Refresh, when positive, polls Dir for newer rotated checkpoints at
	// this cadence and swaps them in without interrupting quote traffic.
	// Zero serves the Open-time checkpoint until Refresh is called
	// explicitly.
	Refresh time.Duration
}

// ReplicaStats is a point-in-time view of a replica, served at
// /v1/stats in place of the primary's Stats.
type ReplicaStats struct {
	// Replica marks the payload so clients can tell the two stats shapes
	// apart.
	Replica bool `json:"replica"`
	// Snapshots is the snapshot ordinal of the loaded checkpoint;
	// Rounds/Updates are the frozen state's counters at that ordinal.
	Snapshots int `json:"snapshots"`
	Rounds    int `json:"rounds"`
	Updates   int `json:"updates"`
	// CheckpointAgeS is the staleness signal: seconds since the loaded
	// checkpoint file was written by the primary.
	CheckpointAgeS float64 `json:"checkpoint_age_s"`
	// Refreshes counts checkpoint swaps since Open (the boot load
	// included); RefreshErrors counts failed refresh attempts, which
	// leave the previous frozen state serving.
	Refreshes        int    `json:"refreshes"`
	RefreshErrors    int    `json:"refresh_errors"`
	LastRefreshError string `json:"last_refresh_error,omitempty"`
}

// Replica is a checkpoint-fed read replica: it freezes the primary's
// latest rotated checkpoint into a learner-free pricer
// (sim.FrozenPricer) and answers quote-only traffic from it — no
// journal, no learning, no serialization point, so replicas scale
// horizontally and one Replica serves any number of concurrent quotes.
// Every answer is bit-identical to the price the primary posted for its
// first quote after the same snapshot ordinal (the frozen readout
// reproduces the primary's deterministic mean readout bit for bit —
// contract rules 1 and 8). Construct with OpenReplica; swap in newer
// checkpoints with Refresh or the ReplicaConfig.Refresh poller.
type Replica struct {
	cfg  ReplicaConfig
	game *stackelberg.Game

	state atomic.Pointer[replicaState]

	mu             sync.Mutex
	closed         bool
	refreshes      int
	refreshErrors  int
	lastRefreshErr string

	stop chan struct{}
	done chan struct{}
}

// replicaState is one immutable loaded checkpoint: the frozen pricer
// plus the file's write time (the staleness reference).
type replicaState struct {
	fz      *sim.FrozenPricer
	written time.Time
}

// OpenReplica opens a read replica over the primary's state directory.
// The directory must hold a journaled primary state (a journal whose
// game fingerprint matches cfg.Game and at least one rotated
// checkpoint); the latest checkpoint is frozen strictly — a missing or
// corrupt one refuses loudly, exactly like primary recovery.
func OpenReplica(cfg ReplicaConfig) (*Replica, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: ReplicaConfig.Dir is required")
	}
	if cfg.Refresh < 0 {
		return nil, fmt.Errorf("serve: negative ReplicaConfig.Refresh")
	}
	if cfg.Game == nil {
		cfg.Game = stackelberg.DefaultGame()
	}
	if err := cfg.Game.Validate(); err != nil {
		return nil, err
	}
	h, err := readJournalHeader(filepath.Join(cfg.Dir, journalName))
	if err != nil {
		return nil, err
	}
	if fp := gameFingerprint(cfg.Game); h.Game != fp {
		return nil, fmt.Errorf("serve: primary state dir %s was written against a different reference game\n  journal: %s\n  config:  %s", cfg.Dir, h.Game, fp)
	}
	r := &Replica{cfg: cfg, game: cfg.Game, stop: make(chan struct{}), done: make(chan struct{})}
	if err := r.Refresh(); err != nil {
		return nil, err
	}
	if cfg.Refresh > 0 {
		go r.poll()
	} else {
		close(r.done)
	}
	return r, nil
}

// Refresh scans the primary's directory for the latest rotated
// checkpoint and, if it is newer than the loaded one, freezes and swaps
// it in atomically; in-flight quotes keep answering from the state they
// started with. On error the previous state keeps serving (recorded in
// Stats); returns nil when already current.
func (r *Replica) Refresh() error {
	err := r.refresh()
	if err == nil {
		return nil
	}
	r.mu.Lock()
	r.refreshErrors++
	r.lastRefreshErr = err.Error()
	r.mu.Unlock()
	return err
}

func (r *Replica) refresh() error {
	path, ordinal, err := latestCheckpoint(r.cfg.Dir)
	if err != nil {
		return err
	}
	if cur := r.state.Load(); cur != nil && cur.fz.Snapshots() >= ordinal {
		return nil
	}
	ck, _, err := loadCheckpoint(path)
	if err != nil {
		return err
	}
	fz, err := sim.NewFrozenPricerFromCheckpoint(sim.OnlinePricerConfig{
		Game:       r.game,
		HistoryLen: r.cfg.HistoryLen,
		PPO:        r.cfg.PPO,
	}, ck)
	if err != nil {
		return err
	}
	written := time.Now()
	if fi, err := os.Stat(path); err == nil {
		written = fi.ModTime()
	}
	r.state.Store(&replicaState{fz: fz, written: written})
	r.mu.Lock()
	r.refreshes++
	r.mu.Unlock()
	return nil
}

// poll is the background refresher behind ReplicaConfig.Refresh.
func (r *Replica) poll() {
	defer close(r.done)
	t := time.NewTicker(r.cfg.Refresh)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.Refresh() // errors are recorded in Stats; keep serving
		}
	}
}

// Quote answers one round from the frozen state. The request is
// validated exactly like on the primary (same RequestError surface); the
// price is the frozen deterministic readout clamped to the round's
// [Cost, PMax], and Round/Updates report the frozen state's counters.
func (r *Replica) Quote(_ context.Context, req QuoteRequest) (QuoteResponse, error) {
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return QuoteResponse{}, ErrClosed
	}
	g, err := buildQuoteGame(r.game, req)
	if err != nil {
		return QuoteResponse{}, &RequestError{err}
	}
	fz := r.state.Load().fz
	price := mathx.Clamp(fz.PriceFor(g), g.Cost, g.PMax)
	return QuoteResponse{Price: price, Round: fz.Rounds(), Updates: fz.Updates()}, nil
}

// Stats returns a point-in-time view of the replica.
func (r *Replica) Stats() ReplicaStats {
	st := r.state.Load()
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReplicaStats{
		Replica:          true,
		Snapshots:        st.fz.Snapshots(),
		Rounds:           st.fz.Rounds(),
		Updates:          st.fz.Updates(),
		CheckpointAgeS:   time.Since(st.written).Seconds(),
		Refreshes:        r.refreshes,
		RefreshErrors:    r.refreshErrors,
		LastRefreshError: r.lastRefreshErr,
	}
}

// Dir returns the primary state directory the replica reads from.
func (r *Replica) Dir() string { return r.cfg.Dir }

// Close stops the background refresher and rejects further quotes. It
// never touches the primary's files.
func (r *Replica) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		<-r.done
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	close(r.stop)
	<-r.done
	return nil
}

// latestCheckpoint locates the highest-ordinal rotated checkpoint in
// dir.
func latestCheckpoint(dir string) (string, int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.bin"))
	if err != nil {
		return "", 0, fmt.Errorf("serve: scanning %s for checkpoints: %w", dir, err)
	}
	best, bestOrdinal := "", -1
	for _, p := range paths {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(p), checkpointPattern, &n); err != nil {
			continue
		}
		if n > bestOrdinal {
			best, bestOrdinal = p, n
		}
	}
	if best == "" {
		return "", 0, fmt.Errorf("serve: no rotated checkpoint in %s — is it a primary's state directory?", dir)
	}
	return best, bestOrdinal, nil
}

// readJournalHeader parses only the first line of a journal — enough to
// pin the reference game without reading the entry tail a live primary
// keeps appending to.
func readJournalHeader(path string) (journalHeader, error) {
	var h journalHeader
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return h, fmt.Errorf("serve: %s has no journal — a replica needs a primary's state directory", filepath.Dir(path))
	}
	if err != nil {
		return h, fmt.Errorf("serve: reading journal header: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	if !sc.Scan() {
		return h, fmt.Errorf("serve: journal %s is empty — not even a header; the state directory is corrupt", path)
	}
	if err := decodeStrict(sc.Bytes(), &h); err != nil {
		return h, fmt.Errorf("serve: journal %s header: %w", path, err)
	}
	if h.Magic != journalMagic {
		return h, fmt.Errorf("serve: %s is not a vtmig-serve journal (magic %q)", path, h.Magic)
	}
	if h.Version != journalVersion {
		return h, fmt.Errorf("serve: journal %s has version %d, this build reads %d", path, h.Version, journalVersion)
	}
	return h, nil
}
