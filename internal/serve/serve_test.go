package serve_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"vtmig/internal/rl"
	"vtmig/internal/serve"
	"vtmig/internal/stackelberg"
)

// testConfig keeps the learner tiny and the rotation cadence tight so a
// few hundred quotes exercise many phases and rotations.
func testConfig(dir string) serve.Config {
	ppo := rl.DefaultPPOConfig()
	ppo.Hidden = []int{8, 8}
	ppo.Epochs = 2
	ppo.MiniBatch = 5
	return serve.Config{
		Dir:           dir,
		HistoryLen:    3,
		UpdateEvery:   5,
		Seed:          7,
		PPO:           ppo,
		SnapshotEvery: 2,
	}
}

// reqStream generates a deterministic stream of valid quote requests:
// 1–3 VMUs with the paper's α ∈ [5, 20] and data ∈ [100, 300] MB,
// distances in [200, 1000] m.
func reqStream(n int) []serve.QuoteRequest {
	rng := rand.New(rand.NewSource(42))
	reqs := make([]serve.QuoteRequest, n)
	for i := range reqs {
		vmus := make([]serve.QuoteVMU, 1+rng.Intn(3))
		for j := range vmus {
			vmus[j] = serve.QuoteVMU{
				ID:     j,
				Alpha:  5 + 15*rng.Float64(),
				DataMB: 100 + 200*rng.Float64(),
			}
		}
		reqs[i] = serve.QuoteRequest{
			VMUs:      vmus,
			DistanceM: 200 + 800*rng.Float64(),
		}
	}
	return reqs
}

func mustOpen(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	s, err := serve.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func quoteAll(t *testing.T, s *serve.Server, reqs []serve.QuoteRequest) []float64 {
	t.Helper()
	prices := make([]float64, len(reqs))
	for i, req := range reqs {
		resp, err := s.Quote(context.Background(), req)
		if err != nil {
			t.Fatalf("Quote %d: %v", i, err)
		}
		if resp.Round != 0 && resp.Round <= 0 {
			t.Fatalf("Quote %d: bad round %d", i, resp.Round)
		}
		prices[i] = resp.Price
	}
	return prices
}

func agentBytes(t *testing.T, s *serve.Server) []byte {
	t.Helper()
	ck, err := s.AgentCheckpoint()
	if err != nil {
		t.Fatalf("AgentCheckpoint: %v", err)
	}
	var buf bytes.Buffer
	if err := ck.SaveBinary(&buf); err != nil {
		t.Fatalf("SaveBinary: %v", err)
	}
	return buf.Bytes()
}

func TestServeQuoteLearnsAndRotates(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, testConfig(dir))
	defer s.Close()

	reqs := reqStream(23)
	prices := quoteAll(t, s, reqs)
	g := stackelberg.DefaultGame()
	for i, p := range prices {
		if math.IsNaN(p) || p < g.Cost || p > g.PMax {
			t.Fatalf("price %d = %g outside [%g, %g]", i, p, g.Cost, g.PMax)
		}
	}
	st := s.Stats()
	// 23 rounds at UpdateEvery=5 → 4 phases; SnapshotEvery=2 → rotations
	// at phases 2 and 4 (snapshots 1 and 2, after the boot snapshot 0).
	if st.Rounds != 23 || st.Updates != 4 || st.Snapshots != 2 || st.Pending != 3 {
		t.Fatalf("stats = %+v, want rounds=23 updates=4 snapshots=2 pending=3", st)
	}
	if !st.BestSet {
		t.Fatalf("BestSet false after 23 rounds")
	}
	// Journal binds checkpoint 2 and holds the 3 rounds since rotation.
	if st.JournalEntries != 3 {
		t.Fatalf("JournalEntries = %d, want 3", st.JournalEntries)
	}
	if _, err := os.Stat(serve.CheckpointPathFor(dir, 2)); err != nil {
		t.Fatalf("bound checkpoint missing: %v", err)
	}
}

func TestServeCrashRecoveryBitIdentical(t *testing.T) {
	reqs := reqStream(200)
	const crashAt = 123 // not a multiple of UpdateEvery: pending rounds must replay

	// Leg A: uninterrupted.
	a := mustOpen(t, testConfig(t.TempDir()))
	pricesA := quoteAll(t, a, reqs)
	wantAgent := agentBytes(t, a)
	wantStats := a.Stats()
	if err := a.Close(); err != nil {
		t.Fatalf("Close(a): %v", err)
	}

	// Leg B: crash after crashAt quotes, recover, continue.
	dir := t.TempDir()
	b := mustOpen(t, testConfig(dir))
	head := quoteAll(t, b, reqs[:crashAt])
	b.Abandon()

	b2 := mustOpen(t, testConfig(dir))
	defer b2.Close()
	st := b2.Stats()
	if st.Rounds != crashAt {
		t.Fatalf("recovered rounds = %d, want %d", st.Rounds, crashAt)
	}
	if st.ReplayedRounds == 0 {
		t.Fatalf("recovery replayed no rounds; journal should hold the tail since the last rotation")
	}
	tail := quoteAll(t, b2, reqs[crashAt:])

	got := append(append([]float64(nil), head...), tail...)
	for i := range pricesA {
		if got[i] != pricesA[i] {
			t.Fatalf("price %d diverges after crash recovery: %v != %v", i, got[i], pricesA[i])
		}
	}
	if !bytes.Equal(agentBytes(t, b2), wantAgent) {
		t.Fatalf("recovered learner state is not bit-identical to the uninterrupted run")
	}
	st = b2.Stats()
	if st.Rounds != wantStats.Rounds || st.Updates != wantStats.Updates || st.Snapshots != wantStats.Snapshots {
		t.Fatalf("recovered counters %+v, uninterrupted %+v", st, wantStats)
	}
}

func TestServeCleanRestartContinues(t *testing.T) {
	reqs := reqStream(60)
	a := mustOpen(t, testConfig(t.TempDir()))
	pricesA := quoteAll(t, a, reqs)
	wantAgent := agentBytes(t, a)
	a.Close()

	dir := t.TempDir()
	b := mustOpen(t, testConfig(dir))
	head := quoteAll(t, b, reqs[:31])
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	b2 := mustOpen(t, testConfig(dir))
	defer b2.Close()
	tail := quoteAll(t, b2, reqs[31:])
	got := append(head, tail...)
	for i := range pricesA {
		if got[i] != pricesA[i] {
			t.Fatalf("price %d diverges across clean restart: %v != %v", i, got[i], pricesA[i])
		}
	}
	if !bytes.Equal(agentBytes(t, b2), wantAgent) {
		t.Fatalf("restarted learner state is not bit-identical")
	}
}

func TestServeRecoverHeaderOnlyJournal(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, testConfig(dir))
	s.Abandon() // crash before any quote: journal is header-only

	s2 := mustOpen(t, testConfig(dir))
	defer s2.Close()
	st := s2.Stats()
	if st.Rounds != 0 || st.ReplayedRounds != 0 || st.TornDropped != 0 {
		t.Fatalf("header-only recovery stats = %+v, want zeros", st)
	}
	if _, err := s2.Quote(context.Background(), reqStream(1)[0]); err != nil {
		t.Fatalf("Quote after header-only recovery: %v", err)
	}
}

func TestServeRefusesEmptyJournal(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, testConfig(dir))
	jpath := s.JournalPath()
	s.Abandon()
	if err := os.Truncate(jpath, 0); err != nil {
		t.Fatal(err)
	}
	_, err := serve.Open(testConfig(dir))
	if err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("Open over empty journal: %v, want empty-journal refusal", err)
	}
}

func TestServeTornTrailingLineDropped(t *testing.T) {
	reqs := reqStream(23)
	dir := t.TempDir()
	s := mustOpen(t, testConfig(dir))
	quoteAll(t, s, reqs[:22])
	jpath := s.JournalPath()
	s.Abandon()

	// Simulate a crash mid-append: the journal gains a partial line that
	// was never acknowledged.
	f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"req":{"vm`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := mustOpen(t, testConfig(dir))
	defer s2.Close()
	st := s2.Stats()
	if st.TornDropped != 1 {
		t.Fatalf("TornDropped = %d, want 1", st.TornDropped)
	}
	if st.Rounds != 22 {
		t.Fatalf("recovered rounds = %d, want 22 (torn line excluded)", st.Rounds)
	}
	// The recovered server continues exactly like one that never saw the
	// torn bytes.
	ref := mustOpen(t, testConfig(t.TempDir()))
	defer ref.Close()
	refPrices := quoteAll(t, ref, reqs)
	if got, err := s2.Quote(context.Background(), reqs[22]); err != nil || got.Price != refPrices[22] {
		t.Fatalf("post-recovery quote = (%v, %v), want price %v", got.Price, err, refPrices[22])
	}
}

func TestServeRefusesRotatedAwayCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, testConfig(dir))
	quoteAll(t, s, reqStream(23)) // snapshots 2; journal binds checkpoint 2
	s.Abandon()
	if err := os.Remove(serve.CheckpointPathFor(dir, 2)); err != nil {
		t.Fatal(err)
	}
	_, err := serve.Open(testConfig(dir))
	if err == nil || !strings.Contains(err.Error(), "refusing to cold-start") {
		t.Fatalf("Open with rotated-away checkpoint: %v, want loud refusal", err)
	}
}

func TestServeRefusesCheckpointCRCMismatch(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, testConfig(dir))
	quoteAll(t, s, reqStream(23))
	s.Abandon()
	path := serve.CheckpointPathFor(dir, 2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := serve.Open(testConfig(dir)); err == nil {
		t.Fatalf("Open with corrupted bound checkpoint succeeded")
	}
}

func TestServeRefusesMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, testConfig(dir))
	quoteAll(t, s, reqStream(4))
	jpath := s.JournalPath()
	s.Abandon()
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(data, []byte("\n"))
	lines[2] = []byte(`{"seq":2,"req":garbage}`)
	if err := os.WriteFile(jpath, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = serve.Open(testConfig(dir))
	if err == nil || !strings.Contains(err.Error(), "corrupt mid-file") {
		t.Fatalf("Open with mid-file corruption: %v, want corrupt-mid-file refusal", err)
	}
}

func TestServeRefusesSequenceGap(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, testConfig(dir))
	quoteAll(t, s, reqStream(4))
	jpath := s.JournalPath()
	s.Abandon()
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(data, []byte("\n"))
	// Drop entry 2 (line index 2: header is line 0).
	lines = append(lines[:2], lines[3:]...)
	if err := os.WriteFile(jpath, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = serve.Open(testConfig(dir))
	if err == nil || !strings.Contains(err.Error(), "missing or reordered") {
		t.Fatalf("Open with a sequence gap: %v, want missing/reordered refusal", err)
	}
}

func TestServeRefusesGameMismatch(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, testConfig(dir))
	quoteAll(t, s, reqStream(3))
	s.Abandon()
	cfg := testConfig(dir)
	g := stackelberg.DefaultGame()
	g.PMax = 60
	cfg.Game = g
	_, err := serve.Open(cfg)
	if err == nil || !strings.Contains(err.Error(), "different reference game") {
		t.Fatalf("Open with changed game: %v, want fingerprint refusal", err)
	}
}

func TestServeRefusesWarmStartOnResume(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, testConfig(dir))
	quoteAll(t, s, reqStream(3))
	s.Abandon()
	cfg := testConfig(dir)
	g := stackelberg.DefaultGame()
	cfg.Agent = rl.NewPPO(4*(1+g.N()), 1, []float64{g.Cost}, []float64{g.PMax}, rl.DefaultPPOConfig())
	_, err := serve.Open(cfg)
	if err == nil || !strings.Contains(err.Error(), "Agent must be nil") {
		t.Fatalf("Open resume with warm-start agent: %v, want refusal", err)
	}
}

func TestServeRefusesCheckpointsWithoutJournal(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, testConfig(dir))
	jpath := s.JournalPath()
	s.Abandon()
	if err := os.Remove(jpath); err != nil {
		t.Fatal(err)
	}
	_, err := serve.Open(testConfig(dir))
	if err == nil || !strings.Contains(err.Error(), "no journal") {
		t.Fatalf("Open with checkpoints but no journal: %v, want refusal", err)
	}
}

func TestServePrunesOldCheckpoints(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.KeepCheckpoints = 1
	s := mustOpen(t, cfg)
	defer s.Close()
	quoteAll(t, s, reqStream(60)) // 12 phases → snapshots 1..6
	matches, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("KeepCheckpoints=1 left %d checkpoints: %v", len(matches), matches)
	}
	if matches[0] != serve.CheckpointPathFor(dir, 6) {
		t.Fatalf("surviving checkpoint %s, want ordinal 6", matches[0])
	}
}

func TestServeRequestValidation(t *testing.T) {
	s := mustOpen(t, testConfig(t.TempDir()))
	defer s.Close()
	cases := []struct {
		name string
		req  serve.QuoteRequest
	}{
		{"no VMUs", serve.QuoteRequest{}},
		{"NaN alpha", serve.QuoteRequest{VMUs: []serve.QuoteVMU{{ID: 0, Alpha: math.NaN(), DataMB: 100}}}},
		{"Inf data", serve.QuoteRequest{VMUs: []serve.QuoteVMU{{ID: 0, Alpha: 5, DataMB: math.Inf(1)}}}},
		{"negative alpha", serve.QuoteRequest{VMUs: []serve.QuoteVMU{{ID: 0, Alpha: -1, DataMB: 100}}}},
		{"NaN distance", serve.QuoteRequest{VMUs: []serve.QuoteVMU{{ID: 0, Alpha: 5, DataMB: 100}}, DistanceM: math.NaN()}},
		{"negative bandwidth", serve.QuoteRequest{VMUs: []serve.QuoteVMU{{ID: 0, Alpha: 5, DataMB: 100}}, AvailableMHz: -1}},
		{"duplicate IDs", serve.QuoteRequest{VMUs: []serve.QuoteVMU{{ID: 0, Alpha: 5, DataMB: 100}, {ID: 0, Alpha: 6, DataMB: 100}}}},
	}
	for _, tc := range cases {
		_, err := s.Quote(context.Background(), tc.req)
		var reqErr *serve.RequestError
		if !errors.As(err, &reqErr) {
			t.Errorf("%s: err = %v, want RequestError", tc.name, err)
		}
	}
	// Rejected requests must not advance the learning stream or journal.
	if st := s.Stats(); st.Rounds != 0 || st.JournalEntries != 0 {
		t.Fatalf("rejected requests advanced state: %+v", st)
	}
}

func TestServeQuoteAfterCloseAndContextCancel(t *testing.T) {
	s := mustOpen(t, testConfig(t.TempDir()))
	req := reqStream(1)[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Quote(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("Quote with canceled ctx: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := s.Quote(context.Background(), req); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("Quote after Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestServeConcurrentQuotes drives many goroutines through the intake
// queue under the race detector: rounds all land, in some serial order.
func TestServeConcurrentQuotes(t *testing.T) {
	s := mustOpen(t, testConfig(t.TempDir()))
	defer s.Close()
	reqs := reqStream(8)
	const workers, perWorker = 16, 10
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := s.Quote(context.Background(), reqs[(w+i)%len(reqs)]); err != nil {
					errs <- fmt.Errorf("worker %d quote %d: %w", w, i, err)
					return
				}
				_ = s.Stats()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Rounds != workers*perWorker {
		t.Fatalf("rounds = %d, want %d", st.Rounds, workers*perWorker)
	}
}

func TestServeConfigValidate(t *testing.T) {
	if _, err := serve.Open(serve.Config{}); err == nil || !strings.Contains(err.Error(), "Dir") {
		t.Fatalf("Open without Dir: %v", err)
	}
	cfg := testConfig(t.TempDir())
	cfg.QueueDepth = -1
	if _, err := serve.Open(cfg); err == nil {
		t.Fatalf("Open with negative QueueDepth succeeded")
	}
}
