package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// maxQuoteBody bounds a quote request body; generous for maxQuoteVMUs
// followers yet small enough that a hostile client cannot balloon memory.
const maxQuoteBody = 1 << 20

// NewHTTPServer wraps a handler (Server.Handler or Replica.Handler) in
// an http.Server with the hardening a long-running public daemon needs:
// header-read and idle timeouts so slow-loris clients cannot pin
// connections forever. Quote bodies are already bounded (maxQuoteBody)
// and quote waits honor the request context, so no write timeout is
// imposed on legitimate slow learning phases.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// quoter is the shared quote surface of a primary Server and a read
// Replica — one HTTP front end serves both.
type quoter interface {
	Quote(ctx context.Context, req QuoteRequest) (QuoteResponse, error)
}

// Handler returns the server's HTTP API:
//
//	POST /v1/quote  — price one round (QuoteRequest in, QuoteResponse out)
//	GET  /v1/stats  — point-in-time Stats
//	GET  /healthz   — liveness probe
//
// Malformed or invalid requests get 400, a shut-down server 503; quotes
// themselves honor the request context, so client disconnects stop the
// wait (not the learning — an accepted round is journaled regardless).
func (s *Server) Handler() http.Handler {
	return newQuoteMux(s, func() any { return s.Stats() })
}

// Handler returns the replica's HTTP API — the same routes as the
// primary, with ReplicaStats (including the staleness signal) at
// /v1/stats.
func (r *Replica) Handler() http.Handler {
	return newQuoteMux(r, func() any { return r.Stats() })
}

// newQuoteMux assembles the shared route set over a quote surface and a
// stats payload.
func newQuoteMux(q quoter, stats func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/quote", handleQuote(q))
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	return mux
}

func handleQuote(q quoter) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req QuoteRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxQuoteBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "decoding quote request: " + err.Error()})
			return
		}
		resp, err := q.Quote(r.Context(), req)
		if err != nil {
			var reqErr *RequestError
			switch {
			case errors.As(err, &reqErr):
				writeJSON(w, http.StatusBadRequest, errorBody{Error: reqErr.Error()})
			case errors.Is(err, ErrClosed):
				writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
			default:
				writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			}
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
