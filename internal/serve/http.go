package serve

import (
	"encoding/json"
	"errors"
	"net/http"
)

// maxQuoteBody bounds a quote request body; generous for maxQuoteVMUs
// followers yet small enough that a hostile client cannot balloon memory.
const maxQuoteBody = 1 << 20

// Handler returns the server's HTTP API:
//
//	POST /v1/quote  — price one round (QuoteRequest in, QuoteResponse out)
//	GET  /v1/stats  — point-in-time Stats
//	GET  /healthz   — liveness probe
//
// Malformed or invalid requests get 400, a shut-down server 503; quotes
// themselves honor the request context, so client disconnects stop the
// wait (not the learning — an accepted round is journaled regardless).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/quote", s.handleQuote)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	return mux
}

func (s *Server) handleQuote(w http.ResponseWriter, r *http.Request) {
	var req QuoteRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxQuoteBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decoding quote request: " + err.Error()})
		return
	}
	resp, err := s.Quote(r.Context(), req)
	if err != nil {
		var reqErr *RequestError
		switch {
		case errors.As(err, &reqErr):
			writeJSON(w, http.StatusBadRequest, errorBody{Error: reqErr.Error()})
		case errors.Is(err, ErrClosed):
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
