package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vtmig/internal/serve"
)

// TestNewHTTPServerHardening pins the slow-loris posture: the wrapped
// http.Server must bound header reads and idle connections.
func TestNewHTTPServerHardening(t *testing.T) {
	srv := serve.NewHTTPServer("127.0.0.1:0", http.NotFoundHandler())
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("NewHTTPServer leaves ReadHeaderTimeout unset — slow-loris clients can hold connections open")
	}
	if srv.IdleTimeout <= 0 {
		t.Error("NewHTTPServer leaves IdleTimeout unset")
	}
	if srv.Addr != "127.0.0.1:0" {
		t.Errorf("Addr = %q", srv.Addr)
	}
}

// TestGracefulShutdownUnderLoad shuts the stack down while quote traffic
// is in flight, at both layers. At the core layer the count is exact:
// every Quote that returned success before Close finished must survive
// into the recovered state (acknowledged ⇒ durable), and the recovered
// round count equals the success count exactly — no lost acks, no
// phantom rounds. At the HTTP layer, Shutdown must complete cleanly with
// every in-flight request answered.
func TestGracefulShutdownUnderLoad(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.BatchMax = 8
	s := mustOpen(t, cfg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewHTTPServer(ln.Addr().String(), s.Handler())
	httpDone := make(chan error, 1)
	go func() { httpDone <- srv.Serve(ln) }()

	reqs := reqStream(8)
	body, _ := json.Marshal(reqs[0])
	url := "http://" + ln.Addr().String() + "/v1/quote"

	var succeeded atomic.Int64
	const workers = 8
	var wg sync.WaitGroup
	stopping := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				resp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
				if err != nil {
					return // shutdown closed the connection path
				}
				ok := resp.StatusCode == http.StatusOK
				resp.Body.Close()
				if !ok {
					if resp.StatusCode != http.StatusServiceUnavailable {
						panic(fmt.Sprintf("unexpected quote status %d", resp.StatusCode))
					}
					return
				}
				if succeeded.Add(1) > 60 {
					select {
					case <-stopping:
						return
					default:
					}
				}
			}
		}()
	}

	// Let real load build up, then shut down with requests in flight.
	for succeeded.Load() < 40 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown under load: %v", err)
	}
	close(stopping)
	wg.Wait()
	if err := <-httpDone; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	httpOK := succeeded.Load()
	if httpOK < 40 {
		t.Fatalf("only %d quotes succeeded before shutdown", httpOK)
	}

	// Second wave at the core layer: Quote and Close race directly, and
	// here the accounting is exact.
	var coreOK atomic.Int64
	var qg sync.WaitGroup
	for w := 0; w < workers; w++ {
		qg.Add(1)
		go func(w int) {
			defer qg.Done()
			for i := 0; i < 20; i++ {
				_, err := s.Quote(context.Background(), reqs[(w+i)%len(reqs)])
				switch err {
				case nil:
					coreOK.Add(1)
				case serve.ErrClosed:
					return
				default:
					panic(fmt.Sprintf("quote during shutdown: %v", err))
				}
			}
		}(w)
	}
	for coreOK.Load() < 20 {
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close under load: %v", err)
	}
	qg.Wait()

	r := mustOpen(t, testConfig(dir))
	defer r.Close()
	want := int(httpOK + coreOK.Load())
	if got := r.Stats().Rounds; got != want {
		t.Fatalf("recovered %d rounds, %d quotes were acknowledged", got, want)
	}
}
