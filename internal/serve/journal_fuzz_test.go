package serve_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"vtmig/internal/rl"
	"vtmig/internal/serve"
)

// fuzzConfig keeps the learner as small as the validators allow and the
// rotation cadence at its tightest, so one baseline state builds in
// milliseconds per fuzz iteration.
func fuzzConfig(dir string) serve.Config {
	ppo := rl.DefaultPPOConfig()
	ppo.Hidden = []int{4}
	ppo.Epochs = 1
	ppo.MiniBatch = 2
	return serve.Config{
		Dir:         dir,
		HistoryLen:  2,
		UpdateEvery: 2,
		Seed:        5,
		PPO:         ppo,
	}
}

// buildFuzzState boots a tiny server, feeds it three quotes (one
// rotation at round 2, one journaled round after it), and returns the
// journal path and its valid bytes. The directory then holds checkpoints
// at ordinals 0 (rounds 0) and 1 (rounds 2).
func buildFuzzState(t testing.TB, dir string) (string, []byte) {
	s, err := serve.Open(fuzzConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range reqStream(3) {
		if _, err := s.Quote(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, "journal.jsonl")
	valid, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	return jpath, valid
}

// FuzzJournalRecover feeds hostile journal bytes — torn lines, sequence
// gaps, CRC flips, truncated or malformed headers, arbitrary mutations —
// through the full Open recovery path over a real checkpoint directory.
// The contract: recover to a state derived from a real checkpoint plus
// the parsed entries, or refuse loudly. Never panic, and never silently
// cold-start past the journal.
func FuzzJournalRecover(f *testing.F) {
	_, valid := buildFuzzState(f, f.TempDir())
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:10])           // truncated header
	f.Add(valid[:len(valid)-4]) // torn trailing entry line
	f.Add([]byte("not json at all\n"))
	f.Add(bytes.Replace(valid, []byte(`"checkpoint_crc":`), []byte(`"checkpoint_crc":1`), 1)) // CRC flip
	f.Add(bytes.Replace(valid, []byte(`"seq":1`), []byte(`"seq":3`), 1))                      // sequence gap
	if i := bytes.IndexByte(valid, '\n'); i >= 0 {
		f.Add(append(append([]byte{}, valid[:i+1]...), valid[:i+1]...)) // header where an entry belongs
		f.Add(valid[:i+1])                                              // header only
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		jpath, _ := buildFuzzState(t, dir)
		if err := os.WriteFile(jpath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := serve.Open(fuzzConfig(dir))
		if err != nil {
			return // refused loudly — the acceptable outcome for hostile bytes
		}
		st := s.Stats()
		// Whatever opened must be a real checkpoint (rounds 0 or 2)
		// extended by exactly the entries the journal yielded — anything
		// else is a silent cold-start or an invented state.
		if base := st.Rounds - st.ReplayedRounds; base != 0 && base != 2 {
			t.Errorf("recovered state extends no existing checkpoint: rounds=%d replayed=%d", st.Rounds, st.ReplayedRounds)
		}
		if err := s.Close(); err != nil {
			t.Errorf("closing recovered server: %v", err)
		}
		// A state that opened once must keep opening (recovery is
		// repeatable, not a one-shot salvage).
		s2, err := serve.Open(fuzzConfig(dir))
		if err != nil {
			t.Fatalf("second open of a recovered state: %v", err)
		}
		s2.Close()
	})
}
