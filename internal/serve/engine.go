package serve

import (
	"fmt"
	"math"
	"sync"

	"vtmig/internal/aotm"
	"vtmig/internal/mathx"
	"vtmig/internal/sim"
	"vtmig/internal/stackelberg"
)

// engine is the pure pricing core of the serving stack: one step is
// (state, orderedBatch) → (state, responses, staged journal entries). It
// owns the reference game and the OnlinePricer and writes durability
// through the store interface; it never touches the network, the queue,
// or the clock. Batching is a pure throughput knob (contract rule 8):
// the per-round prework — request validation, game construction, and the
// shaped-reward oracle solve — is a pure function of the request, so the
// engine fans it across workers with results landing in arrival-order
// slots (rule 2), while the policy/belief/learning core consumes them
// strictly serially in arrival order (rule 5; the belief window chains
// each round's observation through the previous round's outcome, so it
// can never legally batch). Any cut of the same request stream into
// batches therefore yields bit-identical responses, journal bytes, and
// learner weights.
type engine struct {
	game    *stackelberg.Game
	pricer  *sim.OnlinePricer
	store   store
	workers int
}

// prepped is one batch slot after the parallel prework: the round's
// validated game and pure pricing prework, or the validation error.
type prepped struct {
	g    *stackelberg.Game
	prep sim.QuotePrep
	err  error
}

// prework fills slots[i] from reqs[i], fanning the pure per-round work
// across e.workers goroutines in strided arrival-order slots with one
// evaluation scratch per worker. Slot assignment is positional, so the
// fan-out width never changes what lands where.
func (e *engine) prework(reqs []QuoteRequest, slots []prepped) {
	n := len(reqs)
	w := e.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		var scratch stackelberg.EvalScratch
		for i := range reqs {
			slots[i] = e.prepOne(reqs[i], &scratch)
		}
		return
	}
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			var scratch stackelberg.EvalScratch
			for i := k; i < n; i += w {
				slots[i] = e.prepOne(reqs[i], &scratch)
			}
		}(k)
	}
	wg.Wait()
}

// prepOne validates and builds one round's game and runs the pure
// pricing prework on it.
func (e *engine) prepOne(req QuoteRequest, scratch *stackelberg.EvalScratch) prepped {
	g, err := buildQuoteGame(e.game, req)
	if err != nil {
		return prepped{err: &RequestError{err}}
	}
	return prepped{g: g, prep: e.pricer.PrepQuote(g, scratch)}
}

// processBatch applies one arrival-ordered batch: parallel prework, then
// the strictly serial core — stage the round's journal entry
// (write-ahead), price it through the learner (which may rotate a
// checkpoint), and record the response — and finally one flush that
// makes the batch's staged entries durable before anything is
// acknowledged. Invalid requests are answered with a RequestError and
// consume neither a sequence number nor learner state. If the flush
// fails, every response whose journal entry is neither flushed nor
// superseded by a checkpoint rotation is replaced with the flush error:
// those rounds are in the learner but not durable, and acknowledging
// them would break the recovery invariant (the writer refuses further
// work until a restart replays the journal).
func (e *engine) processBatch(reqs []QuoteRequest) []quoteReply {
	slots := make([]prepped, len(reqs))
	e.prework(reqs, slots)
	replies := make([]quoteReply, len(reqs))
	gens := make([]int, len(reqs))
	applied := make([]bool, len(reqs))
	for i, p := range slots {
		if p.err != nil {
			replies[i] = quoteReply{err: p.err}
			continue
		}
		if err := e.store.stage(journalEntry{Seq: e.store.nextSeq(), Req: reqs[i]}); err != nil {
			replies[i] = quoteReply{err: err}
			continue
		}
		gens[i] = e.store.generation()
		price := mathx.Clamp(e.pricer.PriceForPrepped(p.g, p.prep), p.g.Cost, p.g.PMax)
		replies[i] = quoteReply{resp: QuoteResponse{Price: price, Round: e.pricer.Rounds(), Updates: e.pricer.Updates()}}
		applied[i] = true
	}
	if err := e.store.flush(); err != nil {
		for i := range replies {
			if applied[i] && gens[i] == e.store.generation() {
				replies[i] = quoteReply{err: err}
			}
		}
	}
	return replies
}

// buildQuoteGame assembles a round's game from a request over the
// reference game — a pure function of (request, reference), which is
// what makes a journaled request replayable and the prework fan-out
// order-free.
func buildQuoteGame(ref *stackelberg.Game, req QuoteRequest) (*stackelberg.Game, error) {
	if len(req.VMUs) == 0 {
		return nil, fmt.Errorf("serve: quote request has no VMUs")
	}
	if len(req.VMUs) > maxQuoteVMUs {
		return nil, fmt.Errorf("serve: quote request has %d VMUs, cap is %d", len(req.VMUs), maxQuoteVMUs)
	}
	if bad(req.DistanceM) || req.DistanceM < 0 {
		return nil, fmt.Errorf("serve: quote distance %g must be a non-negative finite number of meters", req.DistanceM)
	}
	if bad(req.AvailableMHz) || req.AvailableMHz < 0 {
		return nil, fmt.Errorf("serve: quote available bandwidth %g must be a non-negative finite number of MHz", req.AvailableMHz)
	}
	ch := ref.Channel
	if req.DistanceM > 0 {
		ch.DistanceM = req.DistanceM
	}
	bmax := ref.BMax
	if req.AvailableMHz > 0 {
		bmax = req.AvailableMHz
	}
	vmus := make([]stackelberg.VMU, len(req.VMUs))
	for i, v := range req.VMUs {
		if bad(v.Alpha) || bad(v.DataMB) {
			return nil, fmt.Errorf("serve: quote VMU %d has non-finite parameters (alpha=%g, data=%g MB)", v.ID, v.Alpha, v.DataMB)
		}
		vmus[i] = stackelberg.VMU{ID: v.ID, Alpha: v.Alpha, DataSize: aotm.FromMB(v.DataMB)}
	}
	return stackelberg.NewGame(vmus, ch, ref.Cost, ref.PMax, bmax)
}

// bad reports a non-finite float.
func bad(x float64) bool { return math.IsNaN(x) || math.IsInf(x, 0) }
