package serve_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vtmig/internal/serve"
	"vtmig/internal/stackelberg"
)

// replicaConfig mirrors testConfig for the read side: same reference
// game and learner architecture, no refresh poller (tests drive Refresh
// explicitly for determinism).
func replicaConfig(dir string) serve.ReplicaConfig {
	cfg := testConfig(dir)
	return serve.ReplicaConfig{Dir: dir, Game: cfg.Game, HistoryLen: cfg.HistoryLen, PPO: cfg.PPO}
}

// TestReplicaByteIdenticalToPrimary pins the replica half of contract
// rule 8: a replica opened on the primary's latest rotated checkpoint
// answers every quote with exactly the price the primary posts for its
// first round after that snapshot — same float bits — while reporting
// the snapshot's round ordinal; and Refresh tracks the primary across
// further rotations without breaking that identity.
func TestReplicaByteIdenticalToPrimary(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, testConfig(dir))
	defer s.Close()
	reqs := reqStream(140)
	// 120 rounds with UpdateEvery=5, SnapshotEvery=2 → a rotation lands
	// exactly at round 120 (snapshot ordinal 12).
	for _, req := range reqs[:120] {
		if _, err := s.Quote(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}

	r, err := serve.OpenReplica(replicaConfig(dir))
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	defer r.Close()
	rst := r.Stats()
	if !rst.Replica || rst.Snapshots != 12 || rst.Rounds != 120 || rst.Refreshes != 1 {
		t.Fatalf("replica stats after open: %+v", rst)
	}
	if rst.CheckpointAgeS < 0 {
		t.Fatalf("negative staleness %v", rst.CheckpointAgeS)
	}

	// The replica's answer must be byte-identical to the primary's answer
	// at the same snapshot ordinal — the primary's round 121 is the first
	// priced at the checkpointed state.
	fromReplica, err := r.Quote(context.Background(), reqs[120])
	if err != nil {
		t.Fatal(err)
	}
	fromPrimary, err := s.Quote(context.Background(), reqs[120])
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(fromReplica.Price) != math.Float64bits(fromPrimary.Price) {
		t.Fatalf("replica price %x, primary price %x", math.Float64bits(fromReplica.Price), math.Float64bits(fromPrimary.Price))
	}
	if fromReplica.Round != 120 || fromReplica.Updates != 24 {
		t.Fatalf("replica reports round %d updates %d, want the frozen 120/24", fromReplica.Round, fromReplica.Updates)
	}

	// A different request gets the same frozen price (the deterministic
	// readout depends only on the belief state, clamped per round).
	other, err := r.Quote(context.Background(), reqs[121])
	if err != nil {
		t.Fatal(err)
	}
	if other.Price != fromReplica.Price {
		t.Fatalf("frozen price varied across requests: %v vs %v", other.Price, fromReplica.Price)
	}

	// Refresh follows the primary to the next rotation (round 130,
	// ordinal 13) and restores the same next-round identity.
	for _, req := range reqs[121:130] {
		if _, err := s.Quote(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Refresh(); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if rst := r.Stats(); rst.Snapshots != 13 || rst.Rounds != 130 || rst.Refreshes != 2 {
		t.Fatalf("replica stats after refresh: %+v", rst)
	}
	fromReplica, err = r.Quote(context.Background(), reqs[130])
	if err != nil {
		t.Fatal(err)
	}
	fromPrimary, err = s.Quote(context.Background(), reqs[130])
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(fromReplica.Price) != math.Float64bits(fromPrimary.Price) {
		t.Fatalf("after refresh: replica price %x, primary price %x", math.Float64bits(fromReplica.Price), math.Float64bits(fromPrimary.Price))
	}

	// Request validation matches the primary's surface.
	var reqErr *serve.RequestError
	if _, err := r.Quote(context.Background(), serve.QuoteRequest{}); !errors.As(err, &reqErr) {
		t.Fatalf("invalid request: %v, want RequestError", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Quote(context.Background(), reqs[0]); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("quote after close: %v, want ErrClosed", err)
	}
}

// TestReplicaOpenRefusals covers the strict-open surface: no journal, no
// rotated checkpoint usable, or a mismatched reference game all refuse
// loudly instead of serving something wrong.
func TestReplicaOpenRefusals(t *testing.T) {
	if _, err := serve.OpenReplica(serve.ReplicaConfig{}); err == nil {
		t.Fatal("OpenReplica without Dir succeeded")
	}
	if _, err := serve.OpenReplica(serve.ReplicaConfig{Dir: t.TempDir()}); err == nil || !strings.Contains(err.Error(), "journal") {
		t.Fatalf("OpenReplica on empty dir: %v", err)
	}

	dir := t.TempDir()
	s := mustOpen(t, testConfig(dir))
	s.Close()
	cfg := replicaConfig(dir)
	other := *stackelberg.DefaultGame()
	other.Cost = 6
	cfg.Game = &other
	if _, err := serve.OpenReplica(cfg); err == nil || !strings.Contains(err.Error(), "different reference game") {
		t.Fatalf("OpenReplica with mismatched game: %v", err)
	}
}

// TestReplicaHTTP serves a replica through the shared HTTP front end:
// the quote payload is byte-identical to the primary's at the same
// ordinal, and /v1/stats carries the replica shape with its staleness
// signal.
func TestReplicaHTTP(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, testConfig(dir))
	defer s.Close()
	reqs := reqStream(11)
	for _, req := range reqs[:10] {
		if _, err := s.Quote(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	r, err := serve.OpenReplica(replicaConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	primarySrv := httptest.NewServer(s.Handler())
	defer primarySrv.Close()
	replicaSrv := httptest.NewServer(r.Handler())
	defer replicaSrv.Close()

	body, _ := json.Marshal(reqs[10])
	fromReplica := postJSON(t, replicaSrv.URL+"/v1/quote", string(body))
	fromPrimary := postJSON(t, primarySrv.URL+"/v1/quote", string(body))
	var pr, rr serve.QuoteResponse
	if err := json.Unmarshal([]byte(fromPrimary), &pr); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(fromReplica), &rr); err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(pr.Price) != math.Float64bits(rr.Price) {
		t.Fatalf("HTTP replica price %v, primary price %v", rr.Price, pr.Price)
	}

	resp, err := http.Get(replicaSrv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rst serve.ReplicaStats
	if err := json.NewDecoder(resp.Body).Decode(&rst); err != nil {
		t.Fatal(err)
	}
	if !rst.Replica || rst.Rounds != 10 {
		t.Fatalf("replica HTTP stats: %+v", rst)
	}
}

// postJSON posts a JSON body and returns the response body, failing on
// non-200.
func postJSON(t *testing.T, url, body string) string {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %d: %s", url, resp.StatusCode, raw)
	}
	return string(raw)
}
