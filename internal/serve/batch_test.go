package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"vtmig/internal/serve"
)

// quoteConcurrently pushes reqs through several goroutines so the
// intake loop actually forms multi-quote batches (arrival order is
// whatever the queue sees — rule 8 makes the cut irrelevant, not the
// order, so assertions compare one run against its own recovery).
func quoteConcurrently(t *testing.T, s *serve.Server, reqs []serve.QuoteRequest) {
	t.Helper()
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(reqs); i += workers {
				if _, err := s.Quote(context.Background(), reqs[i]); err != nil {
					errs <- fmt.Errorf("quote %d: %w", i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// batchRun is one cell of the rule-8 table: every response (or error
// string) in stream order, the final on-disk journal bytes, and the
// final learner checkpoint (weights, Adam moments, RNG position).
type batchRun struct {
	resps   []string
	journal []byte
	learner []byte
}

// runBatchTable runs the fixed 200-request stream (with a few invalid
// requests mixed in at fixed positions) through one server, cut into
// batches of size batch with the prework fan-out pinned to workers.
func runBatchTable(t *testing.T, batch, workers int) batchRun {
	t.Helper()
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.BatchMax = batch
	s := mustOpen(t, cfg)
	s.SetPreworkWorkers(workers)

	reqs := reqStream(200)
	for i := range reqs {
		if i%37 == 36 {
			reqs[i] = serve.QuoteRequest{} // invalid: no VMUs
		}
	}
	var run batchRun
	for i := 0; i < len(reqs); i += batch {
		end := i + batch
		if end > len(reqs) {
			end = len(reqs)
		}
		resps, errs := s.ProcessBatch(reqs[i:end])
		for j := range resps {
			if errs[j] != nil {
				run.resps = append(run.resps, "err: "+errs[j].Error())
				continue
			}
			run.resps = append(run.resps, fmt.Sprintf("price=%016x round=%d updates=%d",
				math.Float64bits(resps[j].Price), resps[j].Round, resps[j].Updates))
		}
	}
	ck, err := s.AgentCheckpoint()
	if err != nil {
		t.Fatalf("learner checkpoint: %v", err)
	}
	if run.learner, err = json.Marshal(ck); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if run.journal, err = os.ReadFile(filepath.Join(dir, "journal.jsonl")); err != nil {
		t.Fatal(err)
	}
	return run
}

// TestBatchIntakeBitIdentityTable pins contract rule 8 end to end: every
// batch size × prework fan-out width (the GOMAXPROCS knob) produces
// responses, final journal bytes, and final learner weights bit-identical
// to strictly serial intake. Run under -race by the serve-smoke target,
// which also exercises the prework goroutines for data races.
func TestBatchIntakeBitIdentityTable(t *testing.T) {
	ref := runBatchTable(t, 1, 1)
	if len(ref.resps) != 200 {
		t.Fatalf("reference run answered %d of 200 requests", len(ref.resps))
	}
	for _, batch := range []int{1, 4, 16} {
		for _, workers := range []int{1, 4} {
			if batch == 1 && workers == 1 {
				continue
			}
			t.Run(fmt.Sprintf("batch=%d/workers=%d", batch, workers), func(t *testing.T) {
				got := runBatchTable(t, batch, workers)
				for i := range ref.resps {
					if got.resps[i] != ref.resps[i] {
						t.Fatalf("response %d diverged from serial intake:\n  serial:  %s\n  batched: %s", i, ref.resps[i], got.resps[i])
					}
				}
				if string(got.journal) != string(ref.journal) {
					t.Error("journal bytes diverged from serial intake")
				}
				if string(got.learner) != string(ref.learner) {
					t.Error("final learner state diverged from serial intake")
				}
			})
		}
	}
}

// TestBatchedQuoteCrashRecovery reruns the crash-recovery bit-identity
// check through the live batched intake path: concurrent quoters force
// multi-quote batches, the server is abandoned mid-stream (no flush, no
// sync), and the recovered server must pick up with the exact learner
// state — acknowledged ⇒ durable even when acks are batched.
func TestBatchedQuoteCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.BatchMax = 8
	s := mustOpen(t, cfg)
	quoteConcurrently(t, s, reqStream(120))
	before, err := s.AgentCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	s.Abandon()

	r := mustOpen(t, testConfig(dir))
	defer r.Close()
	if got := r.Stats().Rounds; got != 120 {
		t.Fatalf("recovered %d rounds, want all 120 acknowledged ones", got)
	}
	after, err := r.AgentCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(before)
	b2, _ := json.Marshal(after)
	if string(b1) != string(b2) {
		t.Fatal("recovered learner state differs from the abandoned server's")
	}
}
