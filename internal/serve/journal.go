package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Journal file layout: JSON Lines. The first line is the header binding
// the journal to one checkpoint file (by snapshot ordinal and CRC-32 of
// the checkpoint bytes) and to the server's reference game; every
// following line is one intake entry, in exactly the order the intake
// goroutine applied it. Rebuilding the bound checkpoint and re-applying
// the entries in order therefore reconstructs the serving state bit for
// bit (determinism contract rule 5 at the process boundary).
const (
	journalMagic   = "vtmig-serve"
	journalVersion = 1
	journalName    = "journal.jsonl"
)

// journalHeader is the first line of a journal file. It pins everything a
// replay needs to be exact: which checkpoint the entries extend
// (Snapshots ordinal + the CRC-32 of the checkpoint file), the pricer
// counters at that checkpoint (cross-checked against the checkpoint's own
// pricer section), and a fingerprint of the reference game the quotes
// were priced against.
type journalHeader struct {
	Magic         string `json:"journal"`
	Version       int    `json:"version"`
	Snapshots     int    `json:"snapshots"`
	Rounds        int    `json:"rounds"`
	Updates       int    `json:"updates"`
	CheckpointCRC uint32 `json:"checkpoint_crc"`
	Game          string `json:"game"`
}

// journalEntry is one intake record: the quote request, tagged with its
// 1-based sequence number since the bound checkpoint. Requests are pure
// data — rebuilding the round's game from one is deterministic — so the
// entry alone replays the round exactly.
type journalEntry struct {
	Seq int          `json:"seq"`
	Req QuoteRequest `json:"req"`
}

// journalWriter stages entries in memory and flushes them to the live
// journal in one write per batch. The durability invariant is
// "acknowledged ⇒ durable", not "staged ⇒ durable": the intake layer
// flushes before any quote in a batch is acknowledged, so a crash can
// only ever lose staged entries whose quotes were never answered —
// exactly the state a serial, unbuffered writer would leave. Batching
// the appends this way coalesces a batch's write-ahead records into one
// syscall without changing a single on-disk byte relative to writing
// them one at a time. The writer is owned by the intake goroutine and
// needs no locking.
type journalWriter struct {
	f       *os.File
	path    string
	buf     []byte // staged entries, encoded, not yet durable
	seq     int
	entries int // entries flushed to disk since the last rotation
	staged  int // entries in buf awaiting flush
	failed  bool
}

// newJournal atomically creates a journal at path containing only the
// header (temp file + rename, synced), and returns a writer appending to
// it. A crash mid-creation leaves either the old journal or the new one,
// never a torn header.
func newJournal(path string, h journalHeader) (*journalWriter, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("serve: creating journal: %w", err)
	}
	w := &journalWriter{f: f, path: path}
	line, err := json.Marshal(h)
	if err == nil {
		_, err = f.Write(append(line, '\n'))
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("serve: writing journal header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("serve: syncing journal header: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("serve: committing journal: %w", err)
	}
	return w, nil
}

// stage encodes one entry into the in-memory batch buffer. Nothing
// touches the file, so a failed stage never corrupts the journal; the
// entry becomes durable at the next flush (or is superseded by a
// checkpoint rotation before then — see rotate).
func (w *journalWriter) stage(e journalEntry) error {
	if w.failed {
		return fmt.Errorf("serve: journal writer failed earlier; refusing further appends (restart the server to recover)")
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("serve: encoding journal entry %d: %w", e.Seq, err)
	}
	w.buf = append(w.buf, line...)
	w.buf = append(w.buf, '\n')
	w.seq = e.Seq
	w.staged++
	return nil
}

// flush writes every staged entry to the file in one syscall. The first
// failed flush marks the writer broken for good: a partial line may now
// sit mid-file, and writing past it would corrupt the journal beyond the
// torn-trailing-line case recovery knows how to handle.
func (w *journalWriter) flush() error {
	if w.staged == 0 {
		return nil
	}
	if w.failed {
		return fmt.Errorf("serve: journal writer failed earlier; refusing further appends (restart the server to recover)")
	}
	if _, err := w.f.Write(w.buf); err != nil {
		w.failed = true
		return fmt.Errorf("serve: flushing %d staged journal entries: %w", w.staged, err)
	}
	w.entries += w.staged
	w.staged = 0
	w.buf = w.buf[:0]
	return nil
}

// nextSeq returns the sequence number the next entry must carry.
func (w *journalWriter) nextSeq() int { return w.seq + 1 }

// rotate atomically replaces the journal with a fresh one containing only
// h — the truncation step of a checkpoint rotation. Entries still staged
// in memory are discarded, not flushed: a rotation only ever fires after
// the learner absorbed those rounds, so the checkpoint this header binds
// to already covers them, and flushing them first would leave bytes a
// serial writer's rotation would have truncated anyway. The old file
// handle is closed only after the new journal is committed; on any error
// the old journal (still binding the previous checkpoint, with all
// entries since it staged or flushed) remains the live one, so the state
// stays recoverable.
func (w *journalWriter) rotate(h journalHeader) error {
	if w.failed {
		return fmt.Errorf("serve: journal writer failed earlier; refusing rotation")
	}
	nw, err := newJournal(w.path, h)
	if err != nil {
		return err
	}
	w.f.Close()
	*w = *nw
	return nil
}

// Close flushes staged entries and releases the file handle, syncing as
// a courtesy for a clean shutdown.
func (w *journalWriter) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.flush()
	if serr := w.f.Sync(); err == nil {
		err = serr
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// readJournal parses a journal file into its header and ordered entries.
// A torn trailing line — the partial record of an append cut off by a
// crash — is dropped and counted: its quote was journaled but never
// acknowledged, so dropping it reconstructs exactly the state every
// answered quote saw. Every other irregularity (missing or malformed
// header, malformed or out-of-order entry anywhere before the last line)
// refuses loudly instead of guessing.
func readJournal(path string) (journalHeader, []journalEntry, int, error) {
	var h journalHeader
	data, err := os.ReadFile(path)
	if err != nil {
		return h, nil, 0, fmt.Errorf("serve: reading journal: %w", err)
	}
	if len(data) == 0 {
		return h, nil, 0, fmt.Errorf("serve: journal %s is empty — not even a header; the state directory is corrupt", path)
	}
	lines := bytes.Split(data, []byte("\n"))
	// A well-formed journal ends in a newline, so the final split element
	// is empty; anything non-empty there is a torn trailing line candidate.
	last := len(lines) - 1
	if len(lines[last]) == 0 {
		lines = lines[:last]
	}
	if err := decodeStrict(lines[0], &h); err != nil {
		return h, nil, 0, fmt.Errorf("serve: journal %s header: %w", path, err)
	}
	if h.Magic != journalMagic {
		return h, nil, 0, fmt.Errorf("serve: %s is not a vtmig-serve journal (magic %q)", path, h.Magic)
	}
	if h.Version != journalVersion {
		return h, nil, 0, fmt.Errorf("serve: journal %s has version %d, this build reads %d", path, h.Version, journalVersion)
	}
	var entries []journalEntry
	torn := 0
	for i, line := range lines[1:] {
		var e journalEntry
		if err := decodeStrict(line, &e); err != nil {
			if i == len(lines)-2 { // final line: torn by a crash mid-append
				torn = 1
				break
			}
			return h, nil, 0, fmt.Errorf("serve: journal %s entry line %d is corrupt mid-file: %w", path, i+2, err)
		}
		if e.Seq != i+1 {
			return h, nil, 0, fmt.Errorf("serve: journal %s entry line %d has sequence %d, want %d — entries are missing or reordered", path, i+2, e.Seq, i+1)
		}
		entries = append(entries, e)
	}
	return h, entries, torn, nil
}

// decodeStrict unmarshals one JSON line rejecting unknown fields and
// trailing garbage.
func decodeStrict(line []byte, v any) error {
	dec := json.NewDecoder(bufio.NewReader(bytes.NewReader(line)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}
