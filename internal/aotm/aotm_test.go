package aotm

import (
	"math"
	"testing"
	"testing/quick"

	"vtmig/internal/channel"
	"vtmig/internal/mathx"
)

func TestUnitConversions(t *testing.T) {
	if got := FromMB(200); got != 2 {
		t.Errorf("FromMB(200) = %v, want 2", got)
	}
	if got := ToMB(1.5); got != 150 {
		t.Errorf("ToMB(1.5) = %v, want 150", got)
	}
}

func TestAoTMBasic(t *testing.T) {
	if got := AoTM(2, 4); got != 0.5 {
		t.Errorf("AoTM(2,4) = %v, want 0.5", got)
	}
}

func TestAoTMZeroRateIsInf(t *testing.T) {
	if got := AoTM(1, 0); !math.IsInf(got, 1) {
		t.Errorf("AoTM(1,0) = %v, want +Inf", got)
	}
}

func TestAoTMValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		d, r float64
	}{{"zero data", 0, 1}, {"negative data", -1, 1}, {"negative rate", 1, -1}} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			AoTM(tc.d, tc.r)
		})
	}
}

func TestAoTMForBandwidthMatchesPaperExample(t *testing.T) {
	// D = 200 MB = 2 units, b = 0.135 MHz, e ≈ 38.54 ⇒ A ≈ 2/(0.135*38.54).
	ch := channel.DefaultParams()
	got := AoTMForBandwidth(FromMB(200), 0.135, ch)
	want := 2.0 / (0.135 * ch.SpectralEfficiency())
	if !mathx.AlmostEqual(got, want, 1e-12) {
		t.Errorf("AoTM = %v, want %v", got, want)
	}
}

func TestAoTMDecreasesWithBandwidth(t *testing.T) {
	ch := channel.DefaultParams()
	prev := math.Inf(1)
	for _, b := range []float64{0.01, 0.1, 0.5, 1} {
		a := AoTMForBandwidth(1, b, ch)
		if a >= prev {
			t.Fatalf("AoTM not decreasing at b=%v: %v >= %v", b, a, prev)
		}
		prev = a
	}
}

func TestImmersion(t *testing.T) {
	// G = α ln(1 + 1/A); α=5, A=1 ⇒ 5 ln 2.
	if got, want := Immersion(5, 1), 5*math.Log(2); !mathx.AlmostEqual(got, want, 1e-12) {
		t.Errorf("Immersion = %v, want %v", got, want)
	}
}

func TestImmersionZeroAtInfiniteAge(t *testing.T) {
	if got := Immersion(5, math.Inf(1)); got != 0 {
		t.Errorf("Immersion(inf age) = %v, want 0", got)
	}
}

func TestImmersionValidation(t *testing.T) {
	for _, tc := range []struct {
		name       string
		alpha, age float64
	}{{"zero alpha", 0, 1}, {"negative alpha", -1, 1}, {"zero age", 1, 0}} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			Immersion(tc.alpha, tc.age)
		})
	}
}

func TestImmersionForBandwidthClosedForm(t *testing.T) {
	// G(b) = α ln(1 + b·e/D) must match the composition of AoTM and
	// Immersion.
	ch := channel.DefaultParams()
	e := ch.SpectralEfficiency()
	alpha, d, b := 5.0, 2.0, 0.2
	got := ImmersionForBandwidth(alpha, d, b, ch)
	want := alpha * math.Log(1+b*e/d)
	if !mathx.AlmostEqual(got, want, 1e-12) {
		t.Errorf("ImmersionForBandwidth = %v, want %v", got, want)
	}
}

func TestImmersionForBandwidthZero(t *testing.T) {
	if got := ImmersionForBandwidth(5, 1, 0, channel.DefaultParams()); got != 0 {
		t.Errorf("zero bandwidth immersion = %v, want 0", got)
	}
}

// Properties: immersion is increasing in bandwidth and decreasing in data
// size — more bandwidth means fresher migration, bigger twins age more.
func TestImmersionMonotoneProperties(t *testing.T) {
	ch := channel.DefaultParams()
	f := func(seed uint8) bool {
		b := 0.01 + float64(seed%100)/100
		g1 := ImmersionForBandwidth(5, 2, b, ch)
		g2 := ImmersionForBandwidth(5, 2, b+0.05, ch)
		g3 := ImmersionForBandwidth(5, 2.5, b, ch)
		return g2 > g1 && g3 < g1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
