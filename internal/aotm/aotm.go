// Package aotm implements the paper's core metric: the Age of Twin
// Migration (AoTM), the time elapsed between the generation of the first
// Vehicular-Twin block and the reception of the last one during a VT
// migration, together with the immersion function that maps AoTM to VMU
// benefit.
//
// Units follow the reproduction's calibration (see DESIGN.md): data sizes
// are expressed in units of 100 MB and bandwidth in MHz, so that the
// paper's reported equilibrium prices, demands, and utilities are
// reproduced exactly.
package aotm

import (
	"fmt"
	"math"

	"vtmig/internal/channel"
)

// DataUnit100MB converts megabytes into the model's data unit.
const DataUnit100MB = 100.0

// FromMB converts a size in megabytes to model data units.
func FromMB(mb float64) float64 { return mb / DataUnit100MB }

// ToMB converts model data units to megabytes.
func ToMB(units float64) float64 { return units * DataUnit100MB }

// AoTM returns the Age of Twin Migration A = D/γ for total migrated data D
// (model units) and transmission rate γ (Eq. 1). It returns +Inf when the
// rate is zero (no bandwidth purchased ⇒ the migration never completes).
func AoTM(dataSize, rate float64) float64 {
	if dataSize <= 0 {
		panic(fmt.Sprintf("aotm: data size must be positive, got %g", dataSize))
	}
	if rate < 0 {
		panic(fmt.Sprintf("aotm: negative rate %g", rate))
	}
	if rate == 0 {
		return math.Inf(1)
	}
	return dataSize / rate
}

// AoTMForBandwidth computes A = D / (b·log2(1+SNR)) directly from the
// purchased bandwidth b (MHz) and the channel parameters.
func AoTMForBandwidth(dataSize, bandwidth float64, ch channel.Params) float64 {
	return AoTM(dataSize, ch.Rate(bandwidth))
}

// Immersion returns the immersion benefit G = α·ln(1 + 1/A) a VMU derives
// from a migration with age A (Section III-B.1). A fresher migration
// (smaller A) yields more immersion; A = +Inf yields zero.
func Immersion(alpha, age float64) float64 {
	if alpha <= 0 {
		panic(fmt.Sprintf("aotm: immersion coefficient must be positive, got %g", alpha))
	}
	if age <= 0 {
		panic(fmt.Sprintf("aotm: age must be positive, got %g", age))
	}
	if math.IsInf(age, 1) {
		return 0
	}
	return alpha * math.Log(1+1/age)
}

// ImmersionForBandwidth is the composed form G(b) = α·ln(1 + b·e/D) used
// by the Stackelberg analysis, where e is the spectral efficiency.
func ImmersionForBandwidth(alpha, dataSize, bandwidth float64, ch channel.Params) float64 {
	if bandwidth == 0 {
		return 0
	}
	return Immersion(alpha, AoTMForBandwidth(dataSize, bandwidth, ch))
}
