package multimsp

import (
	"math/rand"
	"reflect"
	"testing"

	"vtmig/internal/aotm"
	"vtmig/internal/channel"
	"vtmig/internal/stackelberg"
)

// randomMarket builds a market with randomized shape and parameters,
// biased toward the regimes that exercise every Evaluate branch: tight
// capacities (proportional admission), equal costs (price ties), and
// hopeless buyers (opt-out).
func randomMarket(t *testing.T, r *rand.Rand) *Market {
	t.Helper()
	nMSP := 1 + r.Intn(4)
	msps := make([]MSP, nMSP)
	sharedCost := 2 + 8*r.Float64()
	for j := range msps {
		cost := sharedCost
		if r.Intn(2) == 0 {
			cost = 2 + 8*r.Float64()
		}
		bmax := 0.0 // unconstrained
		if r.Intn(2) == 0 {
			bmax = 0.01 + 0.5*r.Float64() // often binding
		}
		msps[j] = MSP{ID: j, Cost: cost, BMax: bmax}
	}
	nVMU := 1 + r.Intn(8)
	vmus := make([]stackelberg.VMU, nVMU)
	for n := range vmus {
		vmus[n] = stackelberg.VMU{
			ID:       n,
			Alpha:    0.5 + 10*r.Float64(),
			DataSize: aotm.FromMB(50 + 450*r.Float64()),
		}
	}
	m, err := NewMarket(msps, vmus, channel.DefaultParams(), 50)
	if err != nil {
		t.Fatalf("randomMarket: %v", err)
	}
	return m
}

// randomPrices draws a price vector that mixes interior prices, shared
// (tie-inducing) prices, and near-PMax (opt-out-inducing) prices.
func randomPrices(m *Market, r *rand.Rand) []float64 {
	prices := make([]float64, len(m.MSPs))
	shared := m.MSPs[0].Cost + (m.PMax-m.MSPs[0].Cost)*r.Float64()
	for j, msp := range m.MSPs {
		switch r.Intn(3) {
		case 0:
			prices[j] = shared
		case 1:
			prices[j] = m.PMax
		default:
			prices[j] = msp.Cost + (m.PMax-msp.Cost)*r.Float64()
		}
	}
	return prices
}

// TestEvaluateIntoBitIdentical pins the destination-passing contract:
// EvaluateInto must reproduce Evaluate bit for bit on arbitrary markets,
// with one scratch reused across markets of different shapes.
func TestEvaluateIntoBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(20230711))
	var s EvalScratch
	for i := 0; i < 200; i++ {
		m := randomMarket(t, r)
		prices := randomPrices(m, r)
		want := m.Evaluate(prices)
		got := m.EvaluateInto(&s, prices)
		if !reflect.DeepEqual(want, *got) {
			t.Fatalf("iteration %d: EvaluateInto diverged from Evaluate\nprices %v\nwant %+v\ngot  %+v",
				i, prices, want, *got)
		}
	}
}

// TestEvaluateIntoSteadyStateAllocFree is the allocation regression gate
// behind BenchmarkAblationMultiMSP: once the scratch is warm, repeated
// evaluations must not allocate at all.
func TestEvaluateIntoSteadyStateAllocFree(t *testing.T) {
	m := duopoly(t)
	prices := []float64{20, 20}
	var s EvalScratch
	m.EvaluateInto(&s, prices)
	if allocs := testing.AllocsPerRun(100, func() {
		m.EvaluateInto(&s, prices)
	}); allocs != 0 {
		t.Errorf("warm EvaluateInto allocates %v times per run, want 0", allocs)
	}
}

// TestSolvePriceCompetitionAllocBound caps the whole grid search: the
// solver may allocate its setup (grids, scratch, result outcome) but
// nothing per grid point — previously it allocated six slices per
// evaluated price, ~274k per ablation cell.
func TestSolvePriceCompetitionAllocBound(t *testing.T) {
	m := duopoly(t)
	if allocs := testing.AllocsPerRun(5, func() {
		m.SolvePriceCompetition(300, 80)
	}); allocs > 64 {
		t.Errorf("SolvePriceCompetition(300, 80) allocates %v times per run, want <= 64", allocs)
	}
}
