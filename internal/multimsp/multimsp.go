// Package multimsp implements the paper's stated future-work extension:
// multiple Metaverse Service Providers competing to sell migration
// bandwidth to the same VMU population. Each MSP posts a unit price; every
// VMU purchases its best-response bandwidth from the provider that
// maximizes its utility (with deterministic round-robin tie-breaking), and
// over-subscribed providers admit demand proportionally.
//
// Price competition is resolved by iterated best response over a price
// grid (the profit function is discontinuous when a provider undercuts a
// rival, so grid search replaces the golden-section search used in the
// monopoly case). The package lets the experiments harness contrast the
// monopoly equilibrium of the base paper with Bertrand-style competition.
package multimsp

import (
	"fmt"
	"math"

	"vtmig/internal/channel"
	"vtmig/internal/mathx"
	"vtmig/internal/stackelberg"
)

// MSP is one competing provider.
type MSP struct {
	// ID is unique within a market.
	ID int
	// Cost is the provider's unit transmission cost.
	Cost float64
	// BMax is the provider's bandwidth pool in MHz (<= 0: unconstrained).
	BMax float64
}

// Validate reports whether the MSP parameters are admissible.
func (m MSP) Validate() error {
	if m.Cost <= 0 {
		return fmt.Errorf("multimsp: MSP %d: cost must be positive, got %g", m.ID, m.Cost)
	}
	return nil
}

// Market is a multi-provider bandwidth market.
type Market struct {
	// MSPs are the competing providers.
	MSPs []MSP
	// VMUs are the buyers (same follower model as the base game).
	VMUs []stackelberg.VMU
	// Channel is the shared RSU-to-RSU link model.
	Channel channel.Params
	// PMax caps every provider's price.
	PMax float64
}

// NewMarket constructs a validated market.
func NewMarket(msps []MSP, vmus []stackelberg.VMU, ch channel.Params, pmax float64) (*Market, error) {
	mkt := &Market{MSPs: msps, VMUs: vmus, Channel: ch, PMax: pmax}
	if err := mkt.Validate(); err != nil {
		return nil, err
	}
	return mkt, nil
}

// Validate reports whether the market is admissible.
func (m *Market) Validate() error {
	if len(m.MSPs) == 0 {
		return fmt.Errorf("multimsp: market needs at least one MSP")
	}
	if len(m.VMUs) == 0 {
		return fmt.Errorf("multimsp: market needs at least one VMU")
	}
	seen := make(map[int]bool, len(m.MSPs))
	for _, p := range m.MSPs {
		if err := p.Validate(); err != nil {
			return err
		}
		if seen[p.ID] {
			return fmt.Errorf("multimsp: duplicate MSP id %d", p.ID)
		}
		seen[p.ID] = true
		if m.PMax <= p.Cost {
			return fmt.Errorf("multimsp: pmax %g must exceed MSP %d cost %g", m.PMax, p.ID, p.Cost)
		}
	}
	for _, v := range m.VMUs {
		if err := v.Validate(); err != nil {
			return err
		}
	}
	return m.Channel.Validate()
}

// Outcome reports the market state for one price vector.
type Outcome struct {
	// Prices are the posted prices, indexed like MSPs.
	Prices []float64
	// Assignment maps each VMU index to the chosen MSP index (-1 when the
	// VMU opts out everywhere).
	Assignment []int
	// Demands are the admitted bandwidth purchases per VMU.
	Demands []float64
	// MSPUtilities are each provider's profits.
	MSPUtilities []float64
	// VMUUtilities are the buyers' utilities.
	VMUUtilities []float64
}

// vmuBestResponse mirrors the base game's Eq. (8) for an arbitrary price.
func (m *Market) vmuBestResponse(n int, price float64) float64 {
	v := m.VMUs[n]
	b := v.Alpha/price - v.DataSize/m.Channel.SpectralEfficiency()
	if b < 0 {
		return 0
	}
	return b
}

// vmuUtility mirrors the base game's Eq. (2).
func (m *Market) vmuUtility(n int, bandwidth, price float64) float64 {
	if bandwidth == 0 {
		return 0
	}
	v := m.VMUs[n]
	e := m.Channel.SpectralEfficiency()
	return v.Alpha*math.Log(1+bandwidth*e/v.DataSize) - price*bandwidth
}

// EvalScratch holds the reusable buffers of EvaluateInto and
// SolvePriceCompetition, so repeated evaluations of one market (grid
// searches, ablation sweeps) allocate nothing after the first call. The
// zero value is ready to use.
type EvalScratch struct {
	outcome Outcome
	ties    []int
	trial   []float64
	grids   [][]float64
}

// grow sizes the scratch's outcome slices for a market shape.
func (s *EvalScratch) grow(msps, vmus int) {
	if cap(s.outcome.Prices) < msps {
		s.outcome.Prices = make([]float64, msps)
		s.outcome.MSPUtilities = make([]float64, msps)
	}
	if cap(s.outcome.Assignment) < vmus {
		s.outcome.Assignment = make([]int, vmus)
		s.outcome.Demands = make([]float64, vmus)
		s.outcome.VMUUtilities = make([]float64, vmus)
	}
	s.outcome.Prices = s.outcome.Prices[:msps]
	s.outcome.MSPUtilities = s.outcome.MSPUtilities[:msps]
	s.outcome.Assignment = s.outcome.Assignment[:vmus]
	s.outcome.Demands = s.outcome.Demands[:vmus]
	s.outcome.VMUUtilities = s.outcome.VMUUtilities[:vmus]
}

// Evaluate computes the market outcome for a posted price vector: each VMU
// selects the utility-maximizing provider (round-robin on ties), then each
// provider proportionally admits demand up to its capacity. The returned
// Outcome owns freshly allocated slices; use EvaluateInto on a hot path.
func (m *Market) Evaluate(prices []float64) Outcome {
	var s EvalScratch
	return *m.EvaluateInto(&s, prices)
}

// EvaluateInto is Evaluate with destination passing: the outcome reuses
// the scratch's buffers and stays valid until the scratch's next use.
// The arithmetic is Evaluate's exactly — the two are bit-identical.
func (m *Market) EvaluateInto(s *EvalScratch, prices []float64) *Outcome {
	if len(prices) != len(m.MSPs) {
		panic(fmt.Sprintf("multimsp: price vector length %d, want %d", len(prices), len(m.MSPs)))
	}
	s.grow(len(m.MSPs), len(m.VMUs))
	out := &s.outcome
	copy(out.Prices, prices)

	// Provider selection with deterministic round-robin tie-breaking.
	tieRotor := 0
	for n := range m.VMUs {
		best := -1
		bestU := 0.0 // opting out yields 0
		ties := s.ties[:0]
		for j, p := range prices {
			b := m.vmuBestResponse(n, p)
			if b <= 0 {
				continue
			}
			u := m.vmuUtility(n, b, p)
			switch {
			case u > bestU+1e-12:
				best, bestU = j, u
				ties = ties[:0]
				ties = append(ties, j)
			case best >= 0 && mathx.AlmostEqual(u, bestU, 1e-12):
				ties = append(ties, j)
			}
		}
		s.ties = ties
		if len(ties) > 1 {
			best = ties[tieRotor%len(ties)]
			tieRotor++
		}
		out.Assignment[n] = best
		d := 0.0
		if best >= 0 {
			d = m.vmuBestResponse(n, prices[best])
		}
		out.Demands[n] = d
	}

	// Capacity admission per provider.
	for j, msp := range m.MSPs {
		if msp.BMax <= 0 {
			continue
		}
		var total float64
		for n, a := range out.Assignment {
			if a == j {
				total += out.Demands[n]
			}
		}
		if total > msp.BMax {
			scale := msp.BMax / total
			for n, a := range out.Assignment {
				if a == j {
					out.Demands[n] *= scale
				}
			}
		}
	}

	// Utilities.
	for j := range out.MSPUtilities {
		out.MSPUtilities[j] = 0
	}
	for n, a := range out.Assignment {
		if a < 0 {
			out.VMUUtilities[n] = 0
			continue
		}
		out.VMUUtilities[n] = m.vmuUtility(n, out.Demands[n], prices[a])
		out.MSPUtilities[a] += (prices[a] - m.MSPs[a].Cost) * out.Demands[n]
	}
	return out
}

// EquilibriumResult reports the price-competition fixed point.
type EquilibriumResult struct {
	// Outcome is the market state at the final prices.
	Outcome Outcome
	// Iterations is the number of best-response sweeps performed.
	Iterations int
	// Converged is false when the dynamics still cycled at the sweep cap
	// (possible in Bertrand-style games at grid resolution).
	Converged bool
}

// SolvePriceCompetition runs iterated best response over a price grid:
// each provider in turn picks the grid price maximizing its profit given
// the rivals' prices, until no provider moves or maxSweeps is reached.
func (m *Market) SolvePriceCompetition(gridN, maxSweeps int) EquilibriumResult {
	if gridN < 2 {
		panic(fmt.Sprintf("multimsp: gridN must be >= 2, got %d", gridN))
	}
	if maxSweeps < 1 {
		panic(fmt.Sprintf("multimsp: maxSweeps must be >= 1, got %d", maxSweeps))
	}
	prices := make([]float64, len(m.MSPs))
	for j := range prices {
		prices[j] = m.PMax // start from the monopoly-friendly top
	}
	// One scratch serves every grid evaluation, and each provider's price
	// grid is computed once up front (Linspace is pure, so hoisting it out
	// of the sweep loop changes nothing).
	var s EvalScratch
	s.trial = make([]float64, len(m.MSPs))
	s.grids = make([][]float64, len(m.MSPs))
	for j, msp := range m.MSPs {
		s.grids[j] = mathx.Linspace(msp.Cost, m.PMax, gridN)
	}
	var sweeps int
	converged := false
	for sweeps = 0; sweeps < maxSweeps; sweeps++ {
		moved := false
		for j := range m.MSPs {
			bestP, bestU := prices[j], math.Inf(-1)
			for _, p := range s.grids[j] {
				copy(s.trial, prices)
				s.trial[j] = p
				u := m.EvaluateInto(&s, s.trial).MSPUtilities[j]
				if u > bestU+1e-12 {
					bestU, bestP = u, p
				}
			}
			if bestP != prices[j] {
				prices[j] = bestP
				moved = true
			}
		}
		if !moved {
			converged = true
			break
		}
	}
	return EquilibriumResult{
		Outcome:    m.Evaluate(prices),
		Iterations: sweeps,
		Converged:  converged,
	}
}

// MonopolyBenchmark solves the single-MSP Stackelberg game over the same
// VMUs (using the first MSP's cost and capacity) for comparison.
func (m *Market) MonopolyBenchmark() (stackelberg.Equilibrium, error) {
	g, err := stackelberg.NewGame(m.VMUs, m.Channel, m.MSPs[0].Cost, m.PMax, m.MSPs[0].BMax)
	if err != nil {
		return stackelberg.Equilibrium{}, err
	}
	return g.Solve(), nil
}
