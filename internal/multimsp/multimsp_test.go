package multimsp

import (
	"testing"

	"vtmig/internal/aotm"
	"vtmig/internal/channel"
	"vtmig/internal/mathx"
	"vtmig/internal/stackelberg"
)

func benchmarkVMUs() []stackelberg.VMU {
	return []stackelberg.VMU{
		{ID: 0, Alpha: 5, DataSize: aotm.FromMB(200)},
		{ID: 1, Alpha: 5, DataSize: aotm.FromMB(100)},
	}
}

func duopoly(t *testing.T) *Market {
	t.Helper()
	m, err := NewMarket(
		[]MSP{{ID: 0, Cost: 5, BMax: 0.5}, {ID: 1, Cost: 5, BMax: 0.5}},
		benchmarkVMUs(), channel.DefaultParams(), 50,
	)
	if err != nil {
		t.Fatalf("NewMarket: %v", err)
	}
	return m
}

func TestMarketValidation(t *testing.T) {
	ch := channel.DefaultParams()
	vmus := benchmarkVMUs()
	tests := []struct {
		name string
		msps []MSP
		vmus []stackelberg.VMU
		pmax float64
	}{
		{"no MSPs", nil, vmus, 50},
		{"no VMUs", []MSP{{ID: 0, Cost: 5}}, nil, 50},
		{"dup MSP ids", []MSP{{ID: 0, Cost: 5}, {ID: 0, Cost: 6}}, vmus, 50},
		{"zero cost", []MSP{{ID: 0, Cost: 0}}, vmus, 50},
		{"pmax below cost", []MSP{{ID: 0, Cost: 5}}, vmus, 5},
		{"bad vmu", []MSP{{ID: 0, Cost: 5}}, []stackelberg.VMU{{ID: 0, Alpha: 0, DataSize: 1}}, 50},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewMarket(tt.msps, tt.vmus, ch, tt.pmax); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestVMUsPickCheaperProvider(t *testing.T) {
	m := duopoly(t)
	out := m.Evaluate([]float64{30, 20})
	for n, a := range out.Assignment {
		if a != 1 {
			t.Errorf("VMU %d chose MSP %d, want 1 (cheaper)", n, a)
		}
	}
	if out.MSPUtilities[0] != 0 {
		t.Errorf("undercut MSP earned %v, want 0", out.MSPUtilities[0])
	}
	if out.MSPUtilities[1] <= 0 {
		t.Errorf("cheap MSP earned %v, want > 0", out.MSPUtilities[1])
	}
}

func TestTieBreakingSplitsLoad(t *testing.T) {
	m := duopoly(t)
	out := m.Evaluate([]float64{20, 20})
	// Round-robin tie-breaking must not send everyone to one provider.
	if out.Assignment[0] == out.Assignment[1] {
		t.Errorf("equal prices sent both VMUs to MSP %d", out.Assignment[0])
	}
}

func TestOptOutAtExtremePrices(t *testing.T) {
	m, err := NewMarket(
		[]MSP{{ID: 0, Cost: 5}},
		[]stackelberg.VMU{{ID: 0, Alpha: 5, DataSize: 50}}, // huge twin
		channel.DefaultParams(), 50,
	)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Evaluate([]float64{50})
	if out.Assignment[0] != -1 {
		t.Errorf("assignment = %d, want -1 (opt out)", out.Assignment[0])
	}
	if out.Demands[0] != 0 || out.VMUUtilities[0] != 0 {
		t.Errorf("opted-out VMU has demand %v, utility %v", out.Demands[0], out.VMUUtilities[0])
	}
}

func TestCapacityAdmissionScales(t *testing.T) {
	m, err := NewMarket(
		[]MSP{{ID: 0, Cost: 5, BMax: 0.05}}, // tiny pool
		benchmarkVMUs(), channel.DefaultParams(), 50,
	)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Evaluate([]float64{10})
	if got := mathx.Sum(out.Demands); got > 0.05+1e-9 {
		t.Errorf("admitted %v MHz, exceeds BMax 0.05", got)
	}
}

func TestCompetitionDrivesPricesDown(t *testing.T) {
	m := duopoly(t)
	res := m.SolvePriceCompetition(200, 60)
	mono, err := m.MonopolyBenchmark()
	if err != nil {
		t.Fatal(err)
	}
	for j, p := range res.Outcome.Prices {
		if p >= mono.Price {
			t.Errorf("MSP %d competitive price %v must be below monopoly %v", j, p, mono.Price)
		}
	}
	// Buyers must be better off under competition.
	if compTotal, monoTotal := mathx.Sum(res.Outcome.VMUUtilities), mathx.Sum(mono.VMUUtilities); compTotal <= monoTotal {
		t.Errorf("competition VMU utility %v must exceed monopoly %v", compTotal, monoTotal)
	}
}

func TestBertrandPricesApproachCost(t *testing.T) {
	// With equal costs and ample capacity, undercutting drives prices
	// near cost (within grid resolution).
	m, err := NewMarket(
		[]MSP{{ID: 0, Cost: 5}, {ID: 1, Cost: 5}},
		benchmarkVMUs(), channel.DefaultParams(), 50,
	)
	if err != nil {
		t.Fatal(err)
	}
	res := m.SolvePriceCompetition(400, 100)
	for j, p := range res.Outcome.Prices {
		if p > 5+(50-5)/399.0*4+1e-9 { // within a few grid steps of cost
			t.Errorf("MSP %d price %v did not approach cost 5", j, p)
		}
	}
}

func TestSingleMSPRecoversMonopoly(t *testing.T) {
	m, err := NewMarket(
		[]MSP{{ID: 0, Cost: 5, BMax: 0.5}},
		benchmarkVMUs(), channel.DefaultParams(), 50,
	)
	if err != nil {
		t.Fatal(err)
	}
	res := m.SolvePriceCompetition(2000, 10)
	mono, err := m.MonopolyBenchmark()
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(res.Outcome.Prices[0], mono.Price, 0.05) {
		t.Errorf("single-provider competitive price %v, monopoly %v", res.Outcome.Prices[0], mono.Price)
	}
	if !res.Converged {
		t.Error("single-provider dynamics must converge")
	}
}

func TestSolverValidation(t *testing.T) {
	m := duopoly(t)
	for _, tc := range []struct {
		name            string
		grid, maxSweeps int
	}{{"bad grid", 1, 10}, {"bad sweeps", 10, 0}} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			m.SolvePriceCompetition(tc.grid, tc.maxSweeps)
		})
	}
}

func TestEvaluatePriceLengthPanics(t *testing.T) {
	m := duopoly(t)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong price vector length did not panic")
		}
	}()
	m.Evaluate([]float64{10})
}
