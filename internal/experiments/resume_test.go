package experiments

import (
	"bytes"
	"math"
	"testing"

	"vtmig/internal/nn"
	"vtmig/internal/stackelberg"
)

// resumeDRLCfg is the small fixed-seed training the resume tests run.
func resumeDRLCfg() DRLConfig {
	cfg := DefaultDRLConfig()
	cfg.Episodes = 4
	cfg.Rounds = 20
	cfg.HistoryLen = 3
	cfg.UpdateEvery = 10
	cfg.PPO.MiniBatch = 10
	cfg.Restarts = 1
	cfg.Seed = 31
	return cfg
}

// TestResumeAgentMatchesStraightTraining is the experiments-level rule-6
// pin: train half the budget, persist the checkpoint through JSON, resume
// to the full budget, and compare against an uninterrupted run — final
// weights, evaluation price, and per-episode stats must match bit for
// bit, under serial and vectorized collection and across differing
// throughput knobs between the legs.
func TestResumeAgentMatchesStraightTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	game := stackelberg.DefaultGame()
	for _, tc := range []struct {
		name                     string
		collectEnvs              int
		firstWorkers, restShards int
	}{
		{name: "serial", collectEnvs: 1, firstWorkers: 1, restShards: 2},
		{name: "vec", collectEnvs: 2, firstWorkers: 3, restShards: 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := resumeDRLCfg()
			cfg.CollectEnvs = tc.collectEnvs

			straight, err := TrainAgent(game, cfg)
			if err != nil {
				t.Fatal(err)
			}

			half := cfg
			half.Episodes = cfg.Episodes / 2
			half.CollectWorkers = tc.firstWorkers
			first, err := TrainAgent(game, half)
			if err != nil {
				t.Fatal(err)
			}
			if first.Checkpoint == nil || first.Checkpoint.Meta == nil {
				t.Fatal("TrainResult carries no full checkpoint")
			}
			if first.Checkpoint.Meta.Episodes != half.Episodes {
				t.Fatalf("checkpoint at %d episodes, want %d", first.Checkpoint.Meta.Episodes, half.Episodes)
			}

			// Persist through JSON, as vtmig-train -checkpoint/-resume do.
			var buf bytes.Buffer
			if err := first.Checkpoint.Save(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := nn.LoadCheckpoint(&buf)
			if err != nil {
				t.Fatal(err)
			}

			rest := cfg
			rest.PPO.Shards = tc.restShards
			rest.Seed = 999 // ignored: the checkpoint pins the stream seed
			resumed, err := ResumeAgent(game, rest, loaded)
			if err != nil {
				t.Fatal(err)
			}

			if math.Float64bits(resumed.EvalPrice) != math.Float64bits(straight.EvalPrice) {
				t.Fatalf("resumed eval price %v, straight %v", resumed.EvalPrice, straight.EvalPrice)
			}
			sp, rp := straight.Agent.Params(), resumed.Agent.Params()
			for i := range sp {
				for j := range sp[i].Value {
					if math.Float64bits(sp[i].Value[j]) != math.Float64bits(rp[i].Value[j]) {
						t.Fatalf("param %q[%d]: %v vs %v", sp[i].Name, j, rp[i].Value[j], sp[i].Value[j])
					}
				}
			}
			if got, want := len(resumed.Episodes), cfg.Episodes-half.Episodes; got != want {
				t.Fatalf("resumed leg ran %d episodes, want %d", got, want)
			}
			tail := straight.Episodes[len(straight.Episodes)-len(resumed.Episodes):]
			for i := range tail {
				if math.Float64bits(tail[i].Return) != math.Float64bits(resumed.Episodes[i].Return) {
					t.Fatalf("episode %d return %v, straight %v", resumed.Episodes[i].Episode,
						resumed.Episodes[i].Return, tail[i].Return)
				}
			}
		})
	}
}

// TestResumeAgentRejectsMismatch pins the fingerprint and completeness
// checks.
func TestResumeAgentRejectsMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	game := stackelberg.DefaultGame()
	cfg := resumeDRLCfg()
	cfg.Episodes = 2
	res, err := TrainAgent(game, cfg)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("different-config", func(t *testing.T) {
		other := cfg
		other.Rounds = 25
		if _, err := ResumeAgent(game, other, res.Checkpoint); err == nil {
			t.Fatal("checkpoint resumed under a different configuration")
		}
	})
	t.Run("different-game", func(t *testing.T) {
		wider := *game
		wider.PMax *= 2 // same N ⇒ same observation layout, different dynamics
		if _, err := ResumeAgent(&wider, cfg, res.Checkpoint); err == nil {
			t.Fatal("checkpoint resumed on a different game")
		}
	})
	t.Run("weights-only", func(t *testing.T) {
		weightsOnly, err := nn.Snapshot(res.Agent.Params())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ResumeAgent(game, cfg, weightsOnly); err == nil {
			t.Fatal("weights-only checkpoint resumed")
		}
	})
	t.Run("beyond-budget", func(t *testing.T) {
		shorter := cfg
		shorter.Episodes = 1
		if _, err := ResumeAgent(game, shorter, res.Checkpoint); err == nil {
			t.Fatal("checkpoint beyond the budget resumed")
		}
	})
	t.Run("throughput-knobs-excluded", func(t *testing.T) {
		knobs := cfg
		knobs.CollectWorkers = 7
		knobs.PPO.Shards = 3
		knobs.Restarts = 5
		if knobs.Fingerprint(game) != cfg.Fingerprint(game) {
			t.Fatal("throughput knobs changed the fingerprint")
		}
		eps := cfg
		eps.Episodes = 100
		if eps.Fingerprint(game) != cfg.Fingerprint(game) {
			t.Fatal("episode budget changed the fingerprint")
		}
		reward := cfg
		reward.UpdateEvery = 5
		if reward.Fingerprint(game) == cfg.Fingerprint(game) {
			t.Fatal("UpdateEvery did not change the fingerprint")
		}
	})
}

// TestWarmStartAgentFromCheckpoint pins the deployment warm-start path of
// vtmig-sim: a full checkpoint restores the complete learner state
// (bit-identical weights), a weights-only one restores parameters, and an
// architecture mismatch fails loudly.
func TestWarmStartAgentFromCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	game := stackelberg.DefaultGame()
	cfg := resumeDRLCfg()
	cfg.Episodes = 2
	res, err := TrainAgent(game, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ppoCfg := cfg.PPO
	ppoCfg.Seed = cfg.Seed

	agent, full, err := WarmStartAgent(game, cfg.HistoryLen, ppoCfg, res.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if !full {
		t.Fatal("full checkpoint reported as weights-only")
	}
	ap, rp := agent.Params(), res.Agent.Params()
	for i := range ap {
		for j := range ap[i].Value {
			if math.Float64bits(ap[i].Value[j]) != math.Float64bits(rp[i].Value[j]) {
				t.Fatalf("param %q[%d] differs", ap[i].Name, j)
			}
		}
	}

	weightsOnly, err := nn.Snapshot(res.Agent.Params())
	if err != nil {
		t.Fatal(err)
	}
	if _, full, err = WarmStartAgent(game, cfg.HistoryLen, ppoCfg, weightsOnly); err != nil {
		t.Fatal(err)
	} else if full {
		t.Fatal("weights-only checkpoint reported as full")
	}

	if _, _, err := WarmStartAgent(game, cfg.HistoryLen+1, ppoCfg, res.Checkpoint); err == nil {
		t.Fatal("architecture mismatch warm start succeeded")
	}
}
