package experiments

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"vtmig/internal/stackelberg"
)

// The golden tests pin the exact numeric output of every figure pipeline
// at a fixed seed: the determinism contract is that the same seed yields
// the same figures, bit for bit, regardless of kernel batching or worker
// parallelism. Regenerate the files after an intentional numeric change
// with
//
//	go test ./internal/experiments -run Golden -update
var updateGolden = flag.Bool("update", false, "rewrite the golden files instead of comparing")

// goldenTol is the comparison tolerance. Golden values are serialized
// with full float64 round-trip precision, so this only absorbs decimal
// formatting, not real numeric drift.
const goldenTol = 1e-9

// goldenCfg is the reduced-size fixed-seed training configuration used by
// every golden test.
func goldenCfg() DRLConfig {
	cfg := DefaultDRLConfig()
	cfg.Episodes = 4
	cfg.Rounds = 30
	cfg.Seed = 123
	return cfg
}

// formatTables serializes tables with full float64 precision, one line
// per row.
func formatTables(tables []*Table) string {
	var b strings.Builder
	for _, t := range tables {
		fmt.Fprintf(&b, "# %s\n", t.Title)
		fmt.Fprintf(&b, "| %s\n", strings.Join(t.Columns, ","))
		for _, row := range t.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = strconv.FormatFloat(v, 'g', -1, 64)
			}
			fmt.Fprintln(&b, strings.Join(cells, ","))
		}
	}
	return b.String()
}

// checkGolden compares the serialized tables against testdata/<name>, or
// rewrites the file under -update.
func checkGolden(t *testing.T, name string, tables []*Table) {
	t.Helper()
	got := formatTables(tables)
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update to record): %v", path, err)
	}
	compareGolden(t, name, string(wantBytes), got)
}

// compareGolden diffs two serialized table dumps cell by cell within
// goldenTol relative tolerance.
func compareGolden(t *testing.T, name, want, got string) {
	t.Helper()
	wantLines := strings.Split(strings.TrimRight(want, "\n"), "\n")
	gotLines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(wantLines) != len(gotLines) {
		t.Fatalf("%s: %d lines, golden has %d", name, len(gotLines), len(wantLines))
	}
	for ln := range wantLines {
		w, g := wantLines[ln], gotLines[ln]
		if strings.HasPrefix(w, "#") || strings.HasPrefix(w, "|") {
			if w != g {
				t.Fatalf("%s line %d: header %q, golden %q", name, ln+1, g, w)
			}
			continue
		}
		wc, gc := strings.Split(w, ","), strings.Split(g, ",")
		if len(wc) != len(gc) {
			t.Fatalf("%s line %d: %d cells, golden has %d", name, ln+1, len(gc), len(wc))
		}
		for i := range wc {
			wv, err1 := strconv.ParseFloat(wc[i], 64)
			gv, err2 := strconv.ParseFloat(gc[i], 64)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s line %d cell %d: parse errors %v/%v", name, ln+1, i, err1, err2)
			}
			if diff := math.Abs(wv - gv); diff > goldenTol*math.Max(1, math.Max(math.Abs(wv), math.Abs(gv))) {
				t.Errorf("%s line %d cell %d: got %v, golden %v (diff %g)", name, ln+1, i, gv, wv, diff)
			}
		}
	}
}

func TestGoldenFig2(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	res, err := RunFig2(stackelberg.DefaultGame(), goldenCfg())
	if err != nil {
		t.Fatalf("RunFig2: %v", err)
	}
	checkGolden(t, "fig2_golden.txt", res.Tables())
}

func TestGoldenCostSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	res, err := RunCostSweep([]float64{5, 9}, goldenCfg())
	if err != nil {
		t.Fatalf("RunCostSweep: %v", err)
	}
	checkGolden(t, "fig3_cost_golden.txt", []*Table{res.Fig3a, res.Fig3b})
}

func TestGoldenVMUSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	res, err := RunVMUSweep([]int{2, 3}, goldenCfg())
	if err != nil {
		t.Fatalf("RunVMUSweep: %v", err)
	}
	checkGolden(t, "fig3_vmu_golden.txt", []*Table{res.Fig3c, res.Fig3d})
}

func TestGoldenSeedStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	study, err := RunSeedStudy(stackelberg.DefaultGame(), goldenCfg(), 3)
	if err != nil {
		t.Fatalf("RunSeedStudy: %v", err)
	}
	checkGolden(t, "seedstudy_golden.txt", []*Table{study.Table()})
}

// TestGoldenSolverAblation pins the closed-form vs IBR solver comparison;
// it is training-free and runs even in -short mode.
func TestGoldenSolverAblation(t *testing.T) {
	checkGolden(t, "ablation_solver_golden.txt", []*Table{RunSolverAblation()})
}

// TestGoldenHistoryAblation pins the history-length ablation output.
func TestGoldenHistoryAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	tab, err := RunHistoryAblation([]int{1, 4}, goldenCfg())
	if err != nil {
		t.Fatalf("RunHistoryAblation: %v", err)
	}
	checkGolden(t, "ablation_history_golden.txt", []*Table{tab})
}
