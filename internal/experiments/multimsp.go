package experiments

import (
	"fmt"

	"vtmig/internal/channel"
	"vtmig/internal/mathx"
	"vtmig/internal/multimsp"
	"vtmig/internal/stackelberg"
)

// RunMultiMSPAblation contrasts the paper's monopoly with the future-work
// multi-provider extension: for each provider count it reports the
// competitive price level, total provider profit, and total VMU utility on
// the two-VMU benchmark.
func RunMultiMSPAblation(providerCounts []int) (*Table, error) {
	t := &Table{
		Title:   "ablation: monopoly vs multi-MSP price competition",
		Columns: []string{"msps", "mean_price", "total_msp_profit", "total_vmu_utility"},
	}
	base := stackelberg.DefaultGame()
	for _, count := range providerCounts {
		if count < 1 {
			return nil, fmt.Errorf("experiments: invalid provider count %d", count)
		}
		if count == 1 {
			eq := base.Solve()
			t.AddRow(1, eq.Price, eq.MSPUtility, mathx.Sum(eq.VMUUtilities))
			continue
		}
		msps := make([]multimsp.MSP, count)
		for j := range msps {
			msps[j] = multimsp.MSP{ID: j, Cost: base.Cost, BMax: base.BMax}
		}
		market, err := multimsp.NewMarket(msps, base.VMUs, channel.DefaultParams(), base.PMax)
		if err != nil {
			return nil, fmt.Errorf("experiments: building %d-MSP market: %w", count, err)
		}
		res := market.SolvePriceCompetition(300, 80)
		t.AddRow(float64(count),
			mathx.Mean(res.Outcome.Prices),
			mathx.Sum(res.Outcome.MSPUtilities),
			mathx.Sum(res.Outcome.VMUUtilities),
		)
	}
	return t, nil
}
