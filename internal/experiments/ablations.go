package experiments

import (
	"context"
	"fmt"

	"vtmig/internal/pomdp"
	"vtmig/internal/stackelberg"
)

// RunHistoryAblation varies the observation history length L (the paper
// fixes L=4) and reports the learned policy's regret against the
// closed-form equilibrium. Ablation cells train concurrently through the
// shared worker pool, one row per length in input order.
func RunHistoryAblation(lengths []int, cfg DRLConfig) (*Table, error) {
	return RunHistoryAblationCtx(context.Background(), lengths, cfg)
}

// RunHistoryAblationCtx is RunHistoryAblation with cancellation.
func RunHistoryAblationCtx(ctx context.Context, lengths []int, cfg DRLConfig) (*Table, error) {
	t := &Table{
		Title:   "ablation: observation history length L",
		Columns: []string{"L", "drl_price", "eq_price", "drl_Us", "eq_Us", "regret_pct"},
	}
	game := stackelberg.DefaultGame()
	for _, l := range lengths {
		if l <= 0 {
			return nil, fmt.Errorf("experiments: invalid history length %d", l)
		}
	}
	results := make([]*TrainResult, len(lengths))
	err := defaultPool.Run(ctx, len(lengths), func(ctx context.Context, i int) error {
		c := cfg
		c.HistoryLen = lengths[i]
		res, err := TrainAgentCtx(ctx, game, c)
		if err != nil {
			return fmt.Errorf("experiments: history ablation at L=%d: %w", lengths[i], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, l := range lengths {
		res := results[i]
		t.AddRow(float64(l),
			res.EvalOutcome.Price, res.OracleOutcome.Price,
			res.EvalOutcome.MSPUtility, res.OracleOutcome.MSPUtility,
			regretPct(res.EvalOutcome.MSPUtility, res.OracleOutcome.MSPUtility),
		)
	}
	return t, nil
}

// RunRewardAblation compares the paper's binary reward (Eq. 12) with the
// dense shaped reward on the benchmark game. The two cells train
// concurrently through the shared worker pool.
func RunRewardAblation(cfg DRLConfig) (*Table, error) {
	return RunRewardAblationCtx(context.Background(), cfg)
}

// RunRewardAblationCtx is RunRewardAblation with cancellation.
func RunRewardAblationCtx(ctx context.Context, cfg DRLConfig) (*Table, error) {
	t := &Table{
		Title:   "ablation: binary (Eq. 12) vs shaped reward",
		Columns: []string{"reward_kind", "drl_price", "eq_price", "drl_Us", "eq_Us", "regret_pct"},
	}
	game := stackelberg.DefaultGame()
	kinds := []pomdp.RewardKind{pomdp.RewardBinary, pomdp.RewardShaped}
	results := make([]*TrainResult, len(kinds))
	err := defaultPool.Run(ctx, len(kinds), func(ctx context.Context, i int) error {
		c := cfg
		c.Reward = kinds[i]
		res, err := TrainAgentCtx(ctx, game, c)
		if err != nil {
			return fmt.Errorf("experiments: reward ablation (%v): %w", kinds[i], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		// Column 0 encodes the kind: 0 = binary, 1 = shaped.
		t.AddRow(float64(i),
			res.EvalOutcome.Price, res.OracleOutcome.Price,
			res.EvalOutcome.MSPUtility, res.OracleOutcome.MSPUtility,
			regretPct(res.EvalOutcome.MSPUtility, res.OracleOutcome.MSPUtility),
		)
	}
	return t, nil
}

// RunSolverAblation compares the closed-form follower equilibrium with the
// iterated-best-response solver across the price range.
func RunSolverAblation() *Table {
	t := &Table{
		Title:   "ablation: closed-form vs iterated-best-response followers",
		Columns: []string{"price", "closed_total_bw", "ibr_total_bw", "max_abs_diff"},
	}
	game := stackelberg.DefaultGame()
	for _, p := range []float64{6, 10, 20, 25.34, 35, 49} {
		closed := game.BestResponses(p)
		ibr := game.SolveFollowersIBR(p, 10, 1e-10)
		var sumC, sumI, maxDiff float64
		for i := range closed {
			sumC += closed[i]
			sumI += ibr[i]
			if d := abs(closed[i] - ibr[i]); d > maxDiff {
				maxDiff = d
			}
		}
		t.AddRow(p, sumC*BandwidthDisplayScale, sumI*BandwidthDisplayScale, maxDiff*BandwidthDisplayScale)
	}
	return t
}

// regretPct returns how far achieved falls short of optimal, in percent.
func regretPct(achieved, optimal float64) float64 {
	if optimal == 0 {
		return 0
	}
	return (optimal - achieved) / optimal * 100
}

// abs avoids importing math for one call site.
func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
