package experiments

import (
	"fmt"
	"os"

	"vtmig/internal/nn"
	"vtmig/internal/rl"
	"vtmig/internal/sim"
	"vtmig/internal/stackelberg"
)

// This file registers the learning pricers ("drl", "online") with the
// sim pricer registry, so any sim.PricerSpec naming them builds through
// sim.NewPricerFromSpec once this package is linked in — the
// database/sql registration pattern. The analytic pricers (oracle,
// fixed, random) are registered by sim itself.
func init() {
	sim.RegisterPricer("drl", buildDRLPricer)
	sim.RegisterPricer("online", buildOnlinePricer)
}

// defaultSpecEpisodes is the offline training budget a spec adopts when
// train_episodes is unset — the historical vtmig-sim default, sized for
// interactive runs rather than the full study's DefaultDRLConfig budget.
const defaultSpecEpisodes = 30

// trainForSpec runs the offline training a "drl" or warm-started
// "online" spec asks for: the paper's benchmark game, a single restart,
// and the spec's episode budget, seed, history length, and learning rate
// (unset fields adopt the defaults).
func trainForSpec(spec sim.PricerSpec, opts sim.PricerBuildOptions) (*TrainResult, error) {
	cfg := DefaultDRLConfig()
	cfg.Restarts = 1
	cfg.Episodes = spec.TrainEpisodes
	if cfg.Episodes == 0 {
		cfg.Episodes = defaultSpecEpisodes
	}
	if cfg.Episodes < 0 {
		return nil, fmt.Errorf("experiments: pricer %q: train_episodes %d must not be negative", spec.Name, cfg.Episodes)
	}
	cfg.Seed = spec.SeedOr(opts.DefaultSeed)
	if spec.HistoryLen != 0 {
		cfg.HistoryLen = spec.HistoryLen
	}
	if spec.LR != 0 {
		cfg.PPO.LR = spec.LR
	}
	opts.Printf("Training PPO pricing agent offline (%d episodes x %d rounds)...", cfg.Episodes, cfg.Rounds)
	res, err := TrainAgent(stackelberg.DefaultGame(), cfg)
	if err != nil {
		return nil, fmt.Errorf("offline training: %w", err)
	}
	return res, nil
}

// buildDRLPricer trains the MSP agent offline and deploys it frozen.
func buildDRLPricer(spec sim.PricerSpec, opts sim.PricerBuildOptions) (sim.Pricer, error) {
	if err := spec.CheckAllowedFields("seed", "train_episodes", "history_len", "lr"); err != nil {
		return nil, err
	}
	res, err := trainForSpec(spec, opts)
	if err != nil {
		return nil, err
	}
	return FrozenPricer(res)
}

// buildOnlinePricer deploys the online continual-learning pricer:
// warm-started from in-process offline training (the default), from a
// checkpoint file (warm_start_file — a full training checkpoint adopts
// its own architecture metadata, a mid-run pricer checkpoint resumes the
// online run exactly), or cold (warm_start false).
func buildOnlinePricer(spec sim.PricerSpec, opts sim.PricerBuildOptions) (sim.Pricer, error) {
	if err := spec.CheckAllowedFields("seed", "train_episodes", "update_every", "warm_start", "warm_start_file", "history_len", "lr"); err != nil {
		return nil, err
	}
	game := stackelberg.DefaultGame()
	onlineCfg := sim.OnlinePricerConfig{
		Game:          game,
		UpdateEvery:   spec.UpdateEvery,
		Seed:          spec.SeedOr(opts.DefaultSeed),
		SnapshotEvery: opts.SnapshotEvery,
		OnSnapshot:    opts.OnSnapshot,
	}
	// Reject a broken configuration before spending the offline training
	// budget on it.
	if err := onlineCfg.Validate(); err != nil {
		return nil, err
	}
	switch {
	case spec.WarmStartFile != "":
		res, err := ResolveWarmStart(spec.WarmStartFile, game, DefaultDRLConfig().PPO, spec.HistoryLen, spec.LR)
		if err != nil {
			return nil, err
		}
		ck := res.Checkpoint
		if ck.Pricer != nil {
			// Mid-run pricer checkpoint: resume the online run exactly
			// (belief window, best tracker, stream counters, learner).
			// Unset history_len/update_every adopt the checkpointed values;
			// explicitly set ones are matched by the resume constructor.
			onlineCfg.PPO = res.PPO
			onlineCfg.HistoryLen = spec.HistoryLen
			opts.Printf("Resuming online pricer from %s at round %d (update %d)",
				spec.WarmStartFile, ck.Pricer.Rounds, ck.Pricer.Updates)
			return sim.NewOnlinePricerFromCheckpoint(onlineCfg, ck)
		}
		agent, _, err := WarmStartAgent(game, res.HistoryLen, res.PPO, ck)
		if err != nil {
			return nil, err
		}
		kind := fmt.Sprintf("full training state (history %d, lr %g)", res.HistoryLen, res.PPO.LR)
		if !res.Full {
			kind = "weights only (legacy checkpoint; optimizer and RNG start fresh, history_len/lr fields apply)"
		}
		opts.Printf("Warm-starting online pricer from %s: %s", spec.WarmStartFile, kind)
		onlineCfg.Agent = agent
		onlineCfg.HistoryLen = res.HistoryLen
	case spec.WarmStart == nil || *spec.WarmStart:
		res, err := trainForSpec(spec, opts)
		if err != nil {
			return nil, err
		}
		onlineCfg.Agent = res.Agent
		onlineCfg.HistoryLen = res.Env.Config().HistoryLen
	}
	return sim.NewOnlinePricer(onlineCfg)
}

// WarmStartResolution is a loaded warm-start checkpoint plus the agent
// architecture resolved against it (see ResolveWarmStart).
type WarmStartResolution struct {
	// Checkpoint is the loaded file. Checkpoint.Pricer is non-nil for a
	// mid-run online-pricer snapshot — callers that cannot resume one
	// (vtmig-serve) must reject it themselves.
	Checkpoint *nn.Checkpoint
	// Full reports whether the checkpoint carries complete learner state
	// (optimizer moments and RNG stream), i.e. is not legacy weights-only.
	Full bool
	// HistoryLen is the resolved observation history length L.
	HistoryLen int
	// PPO is the learner configuration with the resolved learning rate.
	PPO rl.PPOConfig
}

// ResolveWarmStart loads a checkpoint file (JSON or binary — the loader
// auto-detects) and resolves the agent architecture with the
// adopt-or-match convention: a full checkpoint carries its own history
// length and learning rate, so unset requests (historyLen 0, lr 0) adopt
// them and explicitly set ones must match or the resolution fails loudly;
// a legacy weights-only checkpoint has no metadata, so the requests apply
// as given (historyLen 0 selects the paper's default, lr 0 keeps ppo.LR).
// Both vtmig-sim's and vtmig-serve's warm-start paths build on it.
func ResolveWarmStart(path string, game *stackelberg.Game, ppo rl.PPOConfig, historyLen int, lr float64) (*WarmStartResolution, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening checkpoint: %w", err)
	}
	defer f.Close()
	ck, err := nn.LoadCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	if lr != 0 {
		ppo.LR = lr
	}
	res := &WarmStartResolution{Checkpoint: ck, HistoryLen: historyLen, PPO: ppo}
	if res.HistoryLen == 0 {
		res.HistoryLen = DefaultDRLConfig().HistoryLen
	}
	if ck.Opt == nil || ck.RNG == nil {
		return res, nil
	}
	// A full checkpoint carries its own architecture metadata; the
	// requested values may only confirm it.
	res.Full = true
	derived, err := HistoryLenFromCheckpoint(ck, game)
	if err != nil {
		return nil, err
	}
	if historyLen != 0 && historyLen != derived {
		return nil, fmt.Errorf("history_len %d conflicts with %s, which was trained with history length %d (leave it unset to adopt it)",
			historyLen, path, derived)
	}
	res.HistoryLen = derived
	if ck.Meta != nil {
		if v, ok := rl.LRFromFingerprint(ck.Meta.PPO); ok {
			if lr != 0 && lr != v {
				return nil, fmt.Errorf("lr %g conflicts with %s, which was trained with learning rate %g (leave it unset to adopt it)",
					lr, path, v)
			}
			res.PPO.LR = v
		}
	}
	return res, nil
}
