package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// WorkerPool is the bounded parallel executor shared by the experiment
// harness: restarts, seed studies, sweep points, and ablation cells all
// fan out through it instead of spawning ad-hoc goroutines.
//
// Each Run call bounds its own concurrency at the pool width (default
// GOMAXPROCS), so nested fan-outs — a sweep whose points each train
// several restarts — cannot deadlock: inner Runs spawn their own bounded
// workers rather than competing for a global token they might already
// hold. Tasks are indexed, results land in caller-owned slots, and
// completion order never affects output order, so parallel experiments
// stay deterministic.
type WorkerPool struct {
	workers int
}

// NewWorkerPool returns a pool running at most workers tasks concurrently
// per Run call. workers <= 0 selects GOMAXPROCS.
func NewWorkerPool(workers int) *WorkerPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &WorkerPool{workers: workers}
}

// defaultPool is the shared executor used by the package-level experiment
// entry points.
var defaultPool = NewWorkerPool(0)

// Run executes task(ctx, i) for every i in [0, n), at most pool-width at
// a time. After all started tasks finish it returns the lowest-indexed
// genuine task failure, falling back to the first cancellation error when
// no task failed outright. A task failure or ctx cancellation stops
// remaining unstarted tasks; tasks should themselves observe ctx to stop
// early. A panicking task is converted into an error rather than killing
// the process with an unwound worker goroutine.
func (p *WorkerPool) Run(ctx context.Context, n int, task func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	var next atomic.Int64
	workers := p.workers
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = p.runOne(ctx, i, task)
				if errs[i] != nil {
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	// Prefer the lowest-indexed genuine task failure over the
	// context-cancellation errors recorded for tasks skipped after it, so
	// callers see the root cause rather than a propagated cancellation.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	return first
}

// runOne invokes one task, converting a panic into an error.
func (p *WorkerPool) runOne(ctx context.Context, i int, task func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiments: task %d panicked: %v", i, r)
		}
	}()
	return task(ctx, i)
}
