package experiments

import (
	"reflect"
	"testing"
)

// nonstationaryStudyCfg returns a test-sized study configuration.
func nonstationaryStudyCfg() NonstationaryStudyConfig {
	cfg := DefaultNonstationaryStudyConfig()
	cfg.Static.DurationS = 200
	cfg.NonStationary.DurationS = 200
	cfg.DRL.Episodes = 2
	cfg.DRL.Rounds = 20
	cfg.DRL.HistoryLen = 3
	cfg.DRL.UpdateEvery = 10
	cfg.DRL.PPO.MiniBatch = 10
	cfg.DRL.Seed = 5
	return cfg
}

// TestNonstationaryStudyCells checks the 2×2 structure: fixed cell
// order, both scenarios actually run, the online cells update, and the
// margins reconcile with the per-cell leader utilities.
func TestNonstationaryStudyCells(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	study, err := RunNonstationaryStudy(nonstationaryStudyCfg())
	if err != nil {
		t.Fatal(err)
	}
	want := []struct{ scenario, pricer string }{
		{"static", "frozen-drl"}, {"static", "online-warm"},
		{"nonstationary", "frozen-drl"}, {"nonstationary", "online-warm"},
	}
	if len(study.Arms) != len(want) {
		t.Fatalf("%d cells, want %d", len(study.Arms), len(want))
	}
	for i, w := range want {
		arm := study.Arms[i]
		if arm.Scenario != w.scenario || arm.Pricer != w.pricer {
			t.Fatalf("cell %d is %s/%s, want %s/%s", i, arm.Scenario, arm.Pricer, w.scenario, w.pricer)
		}
		if arm.Report.PricingRounds == 0 {
			t.Fatalf("%s/%s cell ran no pricing rounds", w.scenario, w.pricer)
		}
		if w.pricer == "online-warm" && arm.Updates == 0 {
			t.Fatalf("%s online cell never updated", w.scenario)
		}
		if w.pricer == "frozen-drl" && arm.Updates != 0 {
			t.Fatalf("%s frozen cell reports %d updates", w.scenario, arm.Updates)
		}
		if study.Arm(w.scenario, w.pricer) != &study.Arms[i] {
			t.Fatalf("Arm(%s, %s) lookup broken", w.scenario, w.pricer)
		}
	}
	// The two cells of one scenario must have run the identical workload.
	for _, sc := range []string{"static", "nonstationary"} {
		frozen, online := study.Arm(sc, "frozen-drl"), study.Arm(sc, "online-warm")
		if frozen.Report.Handovers != online.Report.Handovers {
			t.Fatalf("%s cells saw different workloads: %d vs %d handovers",
				sc, frozen.Report.Handovers, online.Report.Handovers)
		}
	}
	wantStatic := study.Arm("static", "online-warm").LeaderUtility - study.Arm("static", "frozen-drl").LeaderUtility
	wantNS := study.Arm("nonstationary", "online-warm").LeaderUtility - study.Arm("nonstationary", "frozen-drl").LeaderUtility
	if study.StaticMargin != wantStatic || study.NonstationaryMargin != wantNS {
		t.Fatalf("margins do not reconcile: %g/%g vs %g/%g",
			study.StaticMargin, study.NonstationaryMargin, wantStatic, wantNS)
	}
	if study.MarginGain != wantNS-wantStatic {
		t.Fatalf("MarginGain %g, want %g", study.MarginGain, wantNS-wantStatic)
	}
	if tab := study.Table(); len(tab.Rows) != 4 || len(tab.Columns) != 8 {
		t.Fatalf("table %d×%d, want 4×8", len(study.Table().Rows), len(study.Table().Columns))
	}
	if study.Arm("static", "nonsense") != nil || study.Arm("nonsense", "frozen-drl") != nil {
		t.Fatal("unknown cell resolved")
	}
}

// TestNonstationaryStudyDeterministic pins determinism contract rule 2
// for the study: two identically configured runs produce identical
// reports and margins.
func TestNonstationaryStudyDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	a, err := RunNonstationaryStudy(nonstationaryStudyCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunNonstationaryStudy(nonstationaryStudyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical studies diverged:\n %+v\n %+v", a, b)
	}
}

// TestNonstationaryStudyRejectsBadScenario pins the fail-before-training
// contract: a scenario that does not compile errors out immediately.
func TestNonstationaryStudyRejectsBadScenario(t *testing.T) {
	cfg := nonstationaryStudyCfg()
	cfg.NonStationary.Vehicles = -2
	if _, err := RunNonstationaryStudy(cfg); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}
