package experiments

import (
	"context"
	"fmt"

	"vtmig/internal/pomdp"
	"vtmig/internal/rl"
	"vtmig/internal/stackelberg"
)

// Fig2Result reproduces Fig. 2: the convergence of the DRL-based incentive
// mechanism on the two-VMU benchmark.
type Fig2Result struct {
	// Return is Fig. 2(a): the per-episode game return, converging to the
	// max round K as the policy learns to match the historical best
	// utility every round.
	Return *Series
	// Utility is Fig. 2(b): the deterministic policy's MSP utility after
	// each episode, converging to the Stackelberg equilibrium.
	Utility *Series
	// OracleUtility is the closed-form equilibrium U_s (the dashed
	// reference line).
	OracleUtility float64
	// Train carries the trained agent and final evaluation.
	Train *TrainResult
}

// Tables renders both panels as tables.
func (r *Fig2Result) Tables() []*Table {
	oracle := &Series{Name: "stackelberg_Us"}
	for i := range r.Utility.X {
		oracle.Append(r.Utility.X[i], r.OracleUtility)
	}
	return []*Table{
		SeriesTable("fig2a: return of each episode", "episode", r.Return),
		SeriesTable("fig2b: MSP utility convergence", "episode", r.Utility, oracle),
	}
}

// RunFig2 trains the MSP agent on the paper's two-VMU scenario (α₁=α₂=5,
// D₁=200 MB, D₂=100 MB, C=5) and records both convergence curves.
func RunFig2(game *stackelberg.Game, cfg DRLConfig) (*Fig2Result, error) {
	return RunFig2Ctx(context.Background(), game, cfg)
}

// RunFig2Ctx is RunFig2 with cancellation: training stops at the next
// episode boundary (the next episode-block boundary under vectorized
// collection) when ctx is cancelled and the cancellation error is
// returned.
func RunFig2Ctx(ctx context.Context, game *stackelberg.Game, cfg DRLConfig) (*Fig2Result, error) {
	// A separate evaluation environment keeps deterministic evaluations
	// from disturbing the training episode stream.
	evalEnv, err := pomdp.NewGameEnv(pomdp.Config{
		Game:       game,
		HistoryLen: cfg.HistoryLen,
		Rounds:     cfg.Rounds,
		Reward:     cfg.Reward,
		Seed:       cfg.Seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: building eval env: %w", err)
	}

	trainEnv, err := pomdp.NewGameEnv(pomdp.Config{
		Game:       game,
		HistoryLen: cfg.HistoryLen,
		Rounds:     cfg.Rounds,
		Reward:     cfg.Reward,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: building train env: %w", err)
	}
	ppoCfg := cfg.PPO
	ppoCfg.Seed = cfg.Seed
	lo, hi := trainEnv.ActionBounds()
	agent := rl.NewPPO(trainEnv.ObsDim(), trainEnv.ActDim(), lo, hi, ppoCfg)

	res := &Fig2Result{
		Return:        &Series{Name: "return"},
		Utility:       &Series{Name: "drl_Us"},
		OracleUtility: game.Solve().MSPUtility,
	}
	trainer, err := newTrainer(trainEnv, agent, cfg)
	if err != nil {
		return nil, err
	}
	// One scratch serves every per-episode utility probe; only the scalar
	// MSPUtility is read from the aliased report.
	var evalScratch stackelberg.EvalScratch
	trainer.OnEpisode = func(s rl.EpisodeStats) bool {
		res.Return.Append(float64(s.Episode), s.Return)
		price := EvaluateAgent(evalEnv, agent, cfg.HistoryLen+2)
		res.Utility.Append(float64(s.Episode), game.EvaluateInto(&evalScratch, price).MSPUtility)
		return ctx.Err() == nil
	}
	episodes := trainer.Run()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	price := EvaluateAgent(evalEnv, agent, 20)
	res.Train = &TrainResult{
		Agent:         agent,
		Env:           trainEnv,
		Episodes:      episodes,
		EvalPrice:     price,
		EvalOutcome:   game.Evaluate(price),
		OracleOutcome: game.Solve(),
	}
	return res, nil
}
