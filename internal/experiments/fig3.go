package experiments

import (
	"context"
	"fmt"

	"vtmig/internal/aotm"
	"vtmig/internal/baselines"
	"vtmig/internal/channel"
	"vtmig/internal/mathx"
	"vtmig/internal/stackelberg"
)

// BandwidthDisplayScale converts model-unit bandwidth (MHz) into the
// paper's plotted bandwidth unit (10 kHz); see the calibration note in
// DESIGN.md.
const BandwidthDisplayScale = 100

// baselineSeeds is the number of random/greedy episodes averaged per sweep
// point.
const baselineSeeds = 10

// CostSweepResult reproduces Fig. 3(a) and 3(b): the effect of the unit
// transmission cost C ∈ {5..9} on the two-VMU benchmark.
type CostSweepResult struct {
	// Fig3a holds per-cost MSP-side outcomes: DRL vs Stackelberg
	// equilibrium vs greedy vs random.
	Fig3a *Table
	// Fig3b holds per-cost VMU-side outcomes: total utility and total
	// bandwidth (in the paper's ×10 kHz display unit).
	Fig3b *Table
}

// RunCostSweep trains one DRL agent per cost value and compares it against
// the closed-form equilibrium and the baseline schemes (Fig. 3(a)/(b)).
func RunCostSweep(costs []float64, cfg DRLConfig) (*CostSweepResult, error) {
	return RunCostSweepCtx(context.Background(), costs, cfg)
}

// RunCostSweepCtx is RunCostSweep with cancellation. Sweep points train
// concurrently through the shared worker pool; each point is seeded
// independently, so the rows — appended in sweep order after all points
// finish — are identical to a sequential run.
func RunCostSweepCtx(ctx context.Context, costs []float64, cfg DRLConfig) (*CostSweepResult, error) {
	fig3a := &Table{
		Title: "fig3a: MSP utility & price vs transmission cost",
		Columns: []string{
			"cost", "drl_price", "eq_price",
			"drl_Us", "eq_Us", "greedy_Us", "random_Us",
		},
	}
	fig3b := &Table{
		Title: "fig3b: total VMU utility & bandwidth vs transmission cost",
		Columns: []string{
			"cost", "drl_bw_x10kHz", "eq_bw_x10kHz",
			"drl_vmu_utility", "eq_vmu_utility",
		},
	}
	type point struct {
		res            *TrainResult
		greedy, random float64
	}
	points := make([]point, len(costs))
	err := defaultPool.Run(ctx, len(costs), func(ctx context.Context, i int) error {
		game := stackelberg.DefaultGame()
		game.Cost = costs[i]
		res, err := TrainAgentCtx(ctx, game, cfg)
		if err != nil {
			return fmt.Errorf("experiments: cost sweep at C=%g: %w", costs[i], err)
		}
		greedyUs, randomUs := baselineUtilities(game, cfg.Rounds)
		points[i] = point{res: res, greedy: greedyUs, random: randomUs}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range costs {
		eq := points[i].res.OracleOutcome
		drl := points[i].res.EvalOutcome
		fig3a.AddRow(c, drl.Price, eq.Price, drl.MSPUtility, eq.MSPUtility, points[i].greedy, points[i].random)
		fig3b.AddRow(c,
			drl.TotalBandwidth*BandwidthDisplayScale,
			eq.TotalBandwidth*BandwidthDisplayScale,
			mathx.Sum(drl.VMUUtilities),
			mathx.Sum(eq.VMUUtilities),
		)
	}
	return &CostSweepResult{Fig3a: fig3a, Fig3b: fig3b}, nil
}

// VMUSweepResult reproduces Fig. 3(c) and 3(d): the effect of the number
// of VMUs N ∈ {1..6} with D=100 MB, α=5, C=5, Bmax=0.5 MHz.
type VMUSweepResult struct {
	// Fig3c holds per-N MSP outcomes.
	Fig3c *Table
	// Fig3d holds per-N average VMU outcomes.
	Fig3d *Table
}

// RunVMUSweep trains one DRL agent per population size and reports MSP and
// average-VMU outcomes (Fig. 3(c)/(d)).
func RunVMUSweep(ns []int, cfg DRLConfig) (*VMUSweepResult, error) {
	return RunVMUSweepCtx(context.Background(), ns, cfg)
}

// RunVMUSweepCtx is RunVMUSweep with cancellation; sweep points train
// concurrently through the shared worker pool with rows emitted in sweep
// order.
func RunVMUSweepCtx(ctx context.Context, ns []int, cfg DRLConfig) (*VMUSweepResult, error) {
	fig3c := &Table{
		Title:   "fig3c: MSP utility & price vs number of VMUs",
		Columns: []string{"n", "drl_price", "eq_price", "drl_Us", "eq_Us"},
	}
	fig3d := &Table{
		Title: "fig3d: average VMU utility & bandwidth vs number of VMUs",
		Columns: []string{
			"n", "drl_avg_bw_x10kHz", "eq_avg_bw_x10kHz",
			"drl_avg_vmu_utility", "eq_avg_vmu_utility",
		},
	}
	results := make([]*TrainResult, len(ns))
	err := defaultPool.Run(ctx, len(ns), func(ctx context.Context, i int) error {
		game, err := UniformGame(ns[i])
		if err != nil {
			return err
		}
		res, err := TrainAgentCtx(ctx, game, cfg)
		if err != nil {
			return fmt.Errorf("experiments: VMU sweep at N=%d: %w", ns[i], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, n := range ns {
		eq := results[i].OracleOutcome
		drl := results[i].EvalOutcome
		fig3c.AddRow(float64(n), drl.Price, eq.Price, drl.MSPUtility, eq.MSPUtility)
		fig3d.AddRow(float64(n),
			drl.TotalBandwidth/float64(n)*BandwidthDisplayScale,
			eq.TotalBandwidth/float64(n)*BandwidthDisplayScale,
			mathx.Mean(drl.VMUUtilities),
			mathx.Mean(eq.VMUUtilities),
		)
	}
	return &VMUSweepResult{Fig3c: fig3c, Fig3d: fig3d}, nil
}

// UniformGame builds the Fig. 3(c)/(d) scenario: n identical VMUs with
// D=100 MB, α=5, C=5, pmax=50, Bmax=0.5 MHz.
func UniformGame(n int) (*stackelberg.Game, error) {
	vmus := make([]stackelberg.VMU, n)
	for i := range vmus {
		vmus[i] = stackelberg.VMU{ID: i, Alpha: 5, DataSize: aotm.FromMB(100)}
	}
	return stackelberg.NewGame(vmus, channel.DefaultParams(), 5, 50, 0.5)
}

// baselineUtilities returns the mean MSP utility of the greedy and random
// schemes over K-round episodes, averaged over baselineSeeds seeds.
func baselineUtilities(game *stackelberg.Game, rounds int) (greedy, random float64) {
	for seed := int64(0); seed < baselineSeeds; seed++ {
		g := baselines.NewGreedy(game.Cost, game.PMax, 0.1, seed)
		r := baselines.NewRandom(game.Cost, game.PMax, seed)
		greedy += baselines.RunEpisode(game, g, rounds).MeanUtility
		random += baselines.RunEpisode(game, r, rounds).MeanUtility
	}
	return greedy / baselineSeeds, random / baselineSeeds
}
