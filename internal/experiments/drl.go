package experiments

import (
	"context"
	"fmt"

	"vtmig/internal/pomdp"
	"vtmig/internal/rl"
	"vtmig/internal/stackelberg"
)

// DRLConfig bundles everything needed to train the MSP agent on a game.
type DRLConfig struct {
	// Episodes is E (paper: 500).
	Episodes int
	// Rounds is K (paper: 100).
	Rounds int
	// HistoryLen is L (paper: 4).
	HistoryLen int
	// UpdateEvery is |I| (paper: 20).
	UpdateEvery int
	// Reward selects the reward signal (paper: binary, Eq. 12).
	Reward pomdp.RewardKind
	// PPO carries the learner hyper-parameters.
	PPO rl.PPOConfig
	// Restarts trains this many independently seeded agents and keeps the
	// one with the best evaluated utility. Sparse-reward PPO occasionally
	// collapses to a dead policy; independent restarts are the standard
	// remedy. Values below 1 mean 1.
	Restarts int
	// CollectEnvs is the number of parallel training environments for
	// vectorized rollout collection. Values below 2 (the default) train on
	// a single environment — the paper's Algorithm 1 and the configuration
	// pinned by the golden files. With W ≥ 2, episodes run in lockstep
	// blocks of W independently seeded environments (env i uses
	// pomdp.VecSeed(Seed, i)): the training trajectory changes (each
	// optimization phase sees W envs' transitions) but stays
	// bit-reproducible for a fixed seed and independent of CollectWorkers.
	CollectEnvs int
	// CollectWorkers is the number of goroutines stepping environments
	// during collection: 0 selects automatically, 1 steps serially. Any
	// value produces bit-identical results (determinism contract rule 4) —
	// it is purely a throughput knob.
	CollectWorkers int
	// Seed drives environment and learner randomness (restart r uses
	// Seed + r).
	Seed int64
}

// DefaultDRLConfig returns the configuration used by the experiment
// harness: the paper's L=4, K=100, |I|=20, M=10 with a practical number of
// episodes and learning rate (the paper's lr=1e-5 with E=500 is an
// ablation; see EXPERIMENTS.md).
func DefaultDRLConfig() DRLConfig {
	ppo := rl.DefaultPPOConfig()
	return DRLConfig{
		Episodes:    150,
		Rounds:      100,
		HistoryLen:  4,
		UpdateEvery: 20,
		Reward:      pomdp.RewardBinary,
		PPO:         ppo,
		Restarts:    2,
		Seed:        1,
	}
}

// TrainResult is a trained agent plus its learning history and final
// evaluation.
type TrainResult struct {
	// Agent is the trained PPO learner.
	Agent *rl.PPO
	// Env is the training environment (with vectorized collection, the
	// identically configured evaluation environment; training then runs
	// on the CollectEnvs-instance bundle derived from it).
	Env *pomdp.GameEnv
	// Episodes are per-episode training statistics; Episodes[i].Return is
	// the Fig. 2(a) curve.
	Episodes []rl.EpisodeStats
	// EvalPrice is the deterministic policy's converged price.
	EvalPrice float64
	// EvalOutcome is the full equilibrium report at EvalPrice.
	EvalOutcome stackelberg.Equilibrium
	// OracleOutcome is the closed-form Stackelberg equilibrium for
	// reference.
	OracleOutcome stackelberg.Equilibrium
}

// TrainAgent trains the MSP's PPO agent on the given game with
// Algorithm 1 and evaluates the resulting deterministic policy. With
// cfg.Restarts > 1 it trains several independently seeded agents in
// parallel (each with its own environment and network) and returns the
// one with the highest evaluated MSP utility.
func TrainAgent(game *stackelberg.Game, cfg DRLConfig) (*TrainResult, error) {
	return TrainAgentCtx(context.Background(), game, cfg)
}

// TrainAgentCtx is TrainAgent with cancellation: restarts fan out through
// the shared worker pool and stop at the next episode boundary — the next
// episode-block boundary under vectorized collection (CollectEnvs ≥ 2) —
// when ctx is cancelled.
func TrainAgentCtx(ctx context.Context, game *stackelberg.Game, cfg DRLConfig) (*TrainResult, error) {
	restarts := cfg.Restarts
	if restarts < 1 {
		restarts = 1
	}
	results := make([]*TrainResult, restarts)
	err := defaultPool.Run(ctx, restarts, func(ctx context.Context, r int) error {
		c := cfg
		c.Seed = cfg.Seed + int64(r)
		var err error
		results[r], err = trainOnce(ctx, game, c)
		return err
	})
	if err != nil {
		return nil, err
	}
	var best *TrainResult
	for r := 0; r < restarts; r++ {
		if best == nil || results[r].EvalOutcome.MSPUtility > best.EvalOutcome.MSPUtility {
			best = results[r]
		}
	}
	return best, nil
}

// trainOnce runs a single training with one seed, stopping at the next
// episode boundary when ctx is cancelled.
func trainOnce(ctx context.Context, game *stackelberg.Game, cfg DRLConfig) (*TrainResult, error) {
	env, err := pomdp.NewGameEnv(pomdp.Config{
		Game:       game,
		HistoryLen: cfg.HistoryLen,
		Rounds:     cfg.Rounds,
		Reward:     cfg.Reward,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: building env: %w", err)
	}
	ppoCfg := cfg.PPO
	ppoCfg.Seed = cfg.Seed
	lo, hi := env.ActionBounds()
	agent := rl.NewPPO(env.ObsDim(), env.ActDim(), lo, hi, ppoCfg)
	trainer, err := newTrainer(env, agent, cfg)
	if err != nil {
		return nil, err
	}
	trainer.OnEpisode = func(rl.EpisodeStats) bool { return ctx.Err() == nil }
	episodes := trainer.Run()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	price := EvaluateAgent(env, agent, 20)
	return &TrainResult{
		Agent:         agent,
		Env:           env,
		Episodes:      episodes,
		EvalPrice:     price,
		EvalOutcome:   game.Evaluate(price),
		OracleOutcome: game.Solve(),
	}, nil
}

// newTrainer builds the Algorithm 1 trainer for the given agent: the
// classic single-environment trainer when cfg.CollectEnvs < 2 (the
// golden-pinned serial path), otherwise a vectorized trainer over
// CollectEnvs independently seeded copies of env — derived from env's own
// configuration, so the vectorized and serial paths can never train on
// differently-configured environments. In vectorized mode env itself is
// kept out of training and serves as the evaluation environment.
func newTrainer(env *pomdp.GameEnv, agent *rl.PPO, cfg DRLConfig) (*rl.Trainer, error) {
	tcfg := rl.TrainerConfig{
		Episodes:         cfg.Episodes,
		RoundsPerEpisode: cfg.Rounds,
		UpdateEvery:      cfg.UpdateEvery,
		CollectWorkers:   cfg.CollectWorkers,
	}
	if cfg.CollectEnvs < 2 {
		return rl.NewTrainer(env, agent, tcfg), nil
	}
	vec, err := pomdp.NewVecEnv(env.Config(), cfg.CollectEnvs)
	if err != nil {
		return nil, fmt.Errorf("experiments: building vectorized envs: %w", err)
	}
	return rl.NewVecTrainer(vec, agent, tcfg), nil
}

// EvaluateAgent estimates the learned deterministic price. It plays the
// stochastic policy for the given number of rounds — keeping the
// observation history on the training distribution — and averages the
// deterministic (mean) action over the trailing half of the rounds.
//
// Rolling the deterministic policy forward on its own outputs is NOT a
// valid readout: constant-price histories never occur during training, so
// the deterministic closed loop can drift into spurious off-distribution
// fixed points.
func EvaluateAgent(env *pomdp.GameEnv, agent *rl.PPO, rounds int) float64 {
	obs := env.Reset()
	tail := rounds / 2
	if tail < 1 {
		tail = 1
	}
	var sum float64
	var count int
	for k := 0; k < rounds; k++ {
		if k >= rounds-tail {
			sum += agent.MeanAction(obs)[0]
			count++
		}
		_, envAct, _, _ := agent.SelectAction(obs)
		var done bool
		obs, _, done = env.Step(envAct)
		if done {
			obs = env.Reset()
		}
	}
	return sum / float64(count)
}

// ReturnSeries extracts the Fig. 2(a) learning curve (per-episode return).
func ReturnSeries(episodes []rl.EpisodeStats) *Series {
	s := &Series{Name: "return"}
	for _, e := range episodes {
		s.Append(float64(e.Episode), e.Return)
	}
	return s
}
