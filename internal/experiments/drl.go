package experiments

import (
	"context"
	"fmt"

	"vtmig/internal/nn"
	"vtmig/internal/pomdp"
	"vtmig/internal/rl"
	"vtmig/internal/stackelberg"
)

// DRLConfig bundles everything needed to train the MSP agent on a game.
type DRLConfig struct {
	// Episodes is E (paper: 500).
	Episodes int
	// Rounds is K (paper: 100).
	Rounds int
	// HistoryLen is L (paper: 4).
	HistoryLen int
	// UpdateEvery is |I| (paper: 20).
	UpdateEvery int
	// Reward selects the reward signal (paper: binary, Eq. 12).
	Reward pomdp.RewardKind
	// PPO carries the learner hyper-parameters.
	PPO rl.PPOConfig
	// Restarts trains this many independently seeded agents and keeps the
	// one with the best evaluated utility. Sparse-reward PPO occasionally
	// collapses to a dead policy; independent restarts are the standard
	// remedy. Values below 1 mean 1.
	Restarts int
	// CollectEnvs is the number of parallel training environments for
	// vectorized rollout collection. Values below 2 (the default) train on
	// a single environment — the paper's Algorithm 1 and the configuration
	// pinned by the golden files. With W ≥ 2, episodes run in lockstep
	// blocks of W independently seeded environments (env i uses
	// pomdp.VecSeed(Seed, i)): the training trajectory changes (each
	// optimization phase sees W envs' transitions) but stays
	// bit-reproducible for a fixed seed and independent of CollectWorkers.
	CollectEnvs int
	// CollectWorkers is the number of goroutines stepping environments
	// during collection: 0 selects automatically, 1 steps serially. Any
	// value produces bit-identical results (determinism contract rule 4) —
	// it is purely a throughput knob.
	CollectWorkers int
	// Seed drives environment and learner randomness (restart r uses
	// Seed + r).
	Seed int64
}

// DefaultDRLConfig returns the configuration used by the experiment
// harness: the paper's L=4, K=100, |I|=20, M=10 with a practical number of
// episodes and learning rate (the paper's lr=1e-5 with E=500 is an
// ablation; see EXPERIMENTS.md).
func DefaultDRLConfig() DRLConfig {
	ppo := rl.DefaultPPOConfig()
	return DRLConfig{
		Episodes:    150,
		Rounds:      100,
		HistoryLen:  4,
		UpdateEvery: 20,
		Reward:      pomdp.RewardBinary,
		PPO:         ppo,
		Restarts:    2,
		Seed:        1,
	}
}

// Fingerprint pins everything that determines the training stream bit
// for bit — the game (followers, channel, price interval, bandwidth
// cap), the episode schedule inputs (K, L, |I|, reward, CollectEnvs),
// and the PPO hyper-parameters — while excluding the pure throughput
// knobs (CollectWorkers, PPO.Shards, Restarts), the seed (carried by the
// checkpoint's RNG states), and the episode budget (the resume point).
// Training checkpoints embed it; ResumeAgent refuses a checkpoint whose
// fingerprint does not match the requested game and configuration, so a
// stream can never silently continue on a different game that happens to
// share the observation layout.
func (c DRLConfig) Fingerprint(game *stackelberg.Game) string {
	collectEnvs := c.CollectEnvs
	if collectEnvs < 2 {
		collectEnvs = 1
	}
	gameDesc := "<nil>"
	if game != nil {
		gameDesc = fmt.Sprintf("%+v", *game)
	}
	return fmt.Sprintf("drl-v1|game=%s|K=%d|L=%d|I=%d|reward=%s|collect-envs=%d|%s",
		gameDesc, c.Rounds, c.HistoryLen, c.UpdateEvery, c.Reward, collectEnvs, c.PPO.Fingerprint())
}

// TrainResult is a trained agent plus its learning history and final
// evaluation.
type TrainResult struct {
	// Agent is the trained PPO learner.
	Agent *rl.PPO
	// Checkpoint is the full training checkpoint captured at the end of
	// training, before the evaluation readout consumed any randomness:
	// weights, Adam state, the policy RNG position, every environment
	// stream's state, and Meta{Episodes, Fingerprint}. Save it with
	// Checkpoint.Save; ResumeAgent continues the run from it
	// bit-identically. With Restarts > 1 it belongs to the winning
	// restart (its seed is recorded in Checkpoint.RNG.Seed).
	Checkpoint *nn.Checkpoint
	// Env is the training environment (with vectorized collection, the
	// identically configured evaluation environment; training then runs
	// on the CollectEnvs-instance bundle derived from it).
	Env *pomdp.GameEnv
	// Episodes are per-episode training statistics; Episodes[i].Return is
	// the Fig. 2(a) curve.
	Episodes []rl.EpisodeStats
	// EvalPrice is the deterministic policy's converged price.
	EvalPrice float64
	// EvalOutcome is the full equilibrium report at EvalPrice.
	EvalOutcome stackelberg.Equilibrium
	// OracleOutcome is the closed-form Stackelberg equilibrium for
	// reference.
	OracleOutcome stackelberg.Equilibrium
}

// TrainAgent trains the MSP's PPO agent on the given game with
// Algorithm 1 and evaluates the resulting deterministic policy. With
// cfg.Restarts > 1 it trains several independently seeded agents in
// parallel (each with its own environment and network) and returns the
// one with the highest evaluated MSP utility.
func TrainAgent(game *stackelberg.Game, cfg DRLConfig) (*TrainResult, error) {
	return TrainAgentCtx(context.Background(), game, cfg)
}

// TrainAgentCtx is TrainAgent with cancellation: restarts fan out through
// the shared worker pool and stop at the next episode boundary — the next
// episode-block boundary under vectorized collection (CollectEnvs ≥ 2) —
// when ctx is cancelled.
func TrainAgentCtx(ctx context.Context, game *stackelberg.Game, cfg DRLConfig) (*TrainResult, error) {
	restarts := cfg.Restarts
	if restarts < 1 {
		restarts = 1
	}
	results := make([]*TrainResult, restarts)
	err := defaultPool.Run(ctx, restarts, func(ctx context.Context, r int) error {
		c := cfg
		c.Seed = cfg.Seed + int64(r)
		var err error
		results[r], err = trainOnce(ctx, game, c, nil)
		return err
	})
	if err != nil {
		return nil, err
	}
	var best *TrainResult
	for r := 0; r < restarts; r++ {
		if best == nil || results[r].EvalOutcome.MSPUtility > best.EvalOutcome.MSPUtility {
			best = results[r]
		}
	}
	return best, nil
}

// trainOnce runs a single training with one seed, stopping at the next
// episode boundary when ctx is cancelled. A non-nil resume checkpoint
// rewinds the freshly built trainer to the checkpointed episode before
// running (cfg.Episodes stays the TOTAL budget).
func trainOnce(ctx context.Context, game *stackelberg.Game, cfg DRLConfig, resume *nn.Checkpoint) (*TrainResult, error) {
	env, err := pomdp.NewGameEnv(pomdp.Config{
		Game:       game,
		HistoryLen: cfg.HistoryLen,
		Rounds:     cfg.Rounds,
		Reward:     cfg.Reward,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: building env: %w", err)
	}
	ppoCfg := cfg.PPO
	ppoCfg.Seed = cfg.Seed
	lo, hi := env.ActionBounds()
	agent := rl.NewPPO(env.ObsDim(), env.ActDim(), lo, hi, ppoCfg)
	trainer, err := newTrainer(env, agent, cfg)
	if err != nil {
		return nil, err
	}
	trainer.Fingerprint = cfg.Fingerprint(game)
	if resume != nil {
		if err := trainer.Restore(resume); err != nil {
			return nil, fmt.Errorf("experiments: restoring checkpoint: %w", err)
		}
	}
	trainer.OnEpisode = func(rl.EpisodeStats) bool { return ctx.Err() == nil }
	episodes := trainer.Run()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Snapshot the complete training state before the evaluation readout
	// consumes env/agent randomness, so a resumed run continues the
	// training stream exactly.
	ck, err := trainer.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("experiments: snapshotting training state: %w", err)
	}

	price := EvaluateAgent(env, agent, 20)
	return &TrainResult{
		Agent:         agent,
		Checkpoint:    ck,
		Env:           env,
		Episodes:      episodes,
		EvalPrice:     price,
		EvalOutcome:   game.Evaluate(price),
		OracleOutcome: game.Solve(),
	}, nil
}

// ResumeAgent continues a checkpointed training run: ck must be a full
// training checkpoint (TrainResult.Checkpoint, or a file written by
// vtmig-train -checkpoint), cfg describes the SAME training configured
// with the TOTAL episode budget, and the returned result is bit-identical
// to a run that never stopped — same final weights, same evaluation —
// regardless of CollectWorkers, PPO.Shards, and GOMAXPROCS (determinism
// contract rule 6). The configuration fingerprint is checked before
// anything runs; cfg.Seed and cfg.Restarts are ignored (the checkpoint
// pins the stream's seed, and a checkpoint always belongs to exactly one
// training stream). Episodes of the result cover only the resumed leg.
func ResumeAgent(game *stackelberg.Game, cfg DRLConfig, ck *nn.Checkpoint) (*TrainResult, error) {
	return ResumeAgentCtx(context.Background(), game, cfg, ck)
}

// ResumeAgentCtx is ResumeAgent with cancellation at episode boundaries.
func ResumeAgentCtx(ctx context.Context, game *stackelberg.Game, cfg DRLConfig, ck *nn.Checkpoint) (*TrainResult, error) {
	if ck == nil {
		return nil, fmt.Errorf("experiments: nil checkpoint")
	}
	if ck.Meta == nil || ck.RNG == nil || ck.Opt == nil {
		return nil, fmt.Errorf("experiments: checkpoint is weights-only; training cannot resume from it (write one with vtmig-train -checkpoint or TrainResult.Checkpoint)")
	}
	if got, want := ck.Meta.Fingerprint, cfg.Fingerprint(game); got != want {
		return nil, fmt.Errorf("experiments: checkpoint was trained under a different configuration\n  checkpoint: %s\n  requested:  %s", got, want)
	}
	if ck.Meta.Episodes > cfg.Episodes {
		return nil, fmt.Errorf("experiments: checkpoint already has %d episodes, beyond the requested total %d", ck.Meta.Episodes, cfg.Episodes)
	}
	cfg.Seed = ck.RNG.Seed
	cfg.Restarts = 1
	return trainOnce(ctx, game, cfg, ck)
}

// newTrainer builds the Algorithm 1 trainer for the given agent: the
// classic single-environment trainer when cfg.CollectEnvs < 2 (the
// golden-pinned serial path), otherwise a vectorized trainer over
// CollectEnvs independently seeded copies of env — derived from env's own
// configuration, so the vectorized and serial paths can never train on
// differently-configured environments. In vectorized mode env itself is
// kept out of training and serves as the evaluation environment.
func newTrainer(env *pomdp.GameEnv, agent *rl.PPO, cfg DRLConfig) (*rl.Trainer, error) {
	tcfg := rl.TrainerConfig{
		Episodes:         cfg.Episodes,
		RoundsPerEpisode: cfg.Rounds,
		UpdateEvery:      cfg.UpdateEvery,
		CollectWorkers:   cfg.CollectWorkers,
	}
	if cfg.CollectEnvs < 2 {
		return rl.NewTrainer(env, agent, tcfg), nil
	}
	vec, err := pomdp.NewVecEnv(env.Config(), cfg.CollectEnvs)
	if err != nil {
		return nil, fmt.Errorf("experiments: building vectorized envs: %w", err)
	}
	return rl.NewVecTrainer(vec, agent, tcfg), nil
}

// WarmStartAgent rebuilds a deployable PPO agent from a checkpoint for
// the given reference game: the network architecture comes from ppo
// (Hidden/Activation) and the observation layout from historyLen and the
// game, exactly as training on a pomdp.GameEnv over game would have built
// it — both must match the checkpoint, and the strict restore fails
// loudly otherwise. A full training checkpoint restores the complete
// learner state (full == true), so continued online training picks the
// stream up where the checkpoint left it; a legacy weights-only
// checkpoint restores parameters around a fresh optimizer and RNG
// (full == false).
func WarmStartAgent(game *stackelberg.Game, historyLen int, ppo rl.PPOConfig, ck *nn.Checkpoint) (agent *rl.PPO, full bool, err error) {
	if ck == nil {
		return nil, false, fmt.Errorf("experiments: nil checkpoint")
	}
	enc, err := pomdp.NewGameEncoder(historyLen, game)
	if err != nil {
		return nil, false, err
	}
	agent = rl.NewPPO(enc.ObsDim(), 1, []float64{game.Cost}, []float64{game.PMax}, ppo)
	if ck.Opt != nil && ck.RNG != nil {
		if err := agent.Restore(ck); err != nil {
			return nil, false, err
		}
		return agent, true, nil
	}
	if err := agent.RestoreWeights(ck); err != nil {
		return nil, false, err
	}
	return agent, false, nil
}

// HistoryLenFromCheckpoint derives the observation history length L a
// checkpointed agent was trained with over the given reference game from
// the input layer's parameter shapes: the observation dimension is
// len(trunk.l0.W)/len(trunk.l0.b), and every encoder row over an N-VMU
// game is 1+N wide. Tooling uses it to rebuild a matching agent from a
// checkpoint without the user repeating the -history flag.
func HistoryLenFromCheckpoint(ck *nn.Checkpoint, game *stackelberg.Game) (int, error) {
	if ck == nil {
		return 0, fmt.Errorf("experiments: nil checkpoint")
	}
	w, okW := ck.Params["trunk.l0.W"]
	b, okB := ck.Params["trunk.l0.b"]
	if !okW || !okB || len(b) == 0 {
		return 0, fmt.Errorf("experiments: checkpoint lacks the trunk.l0 input layer; cannot derive its history length")
	}
	if len(w)%len(b) != 0 {
		return 0, fmt.Errorf("experiments: checkpoint input layer is inconsistent (%d weights over %d biases)", len(w), len(b))
	}
	obsDim := len(w) / len(b)
	width := 1 + game.N()
	if obsDim%width != 0 || obsDim == 0 {
		return 0, fmt.Errorf("experiments: checkpoint observation dim %d does not tile into rows of 1+N=%d over this game — was it trained on a different game size?", obsDim, width)
	}
	return obsDim / width, nil
}

// EvaluateAgent estimates the learned deterministic price. It plays the
// stochastic policy for the given number of rounds — keeping the
// observation history on the training distribution — and averages the
// deterministic (mean) action over the trailing half of the rounds.
//
// Rolling the deterministic policy forward on its own outputs is NOT a
// valid readout: constant-price histories never occur during training, so
// the deterministic closed loop can drift into spurious off-distribution
// fixed points.
func EvaluateAgent(env *pomdp.GameEnv, agent *rl.PPO, rounds int) float64 {
	obs := env.Reset()
	tail := rounds / 2
	if tail < 1 {
		tail = 1
	}
	var sum float64
	var count int
	for k := 0; k < rounds; k++ {
		if k >= rounds-tail {
			sum += agent.MeanAction(obs)[0]
			count++
		}
		_, envAct, _, _ := agent.SelectAction(obs)
		var done bool
		obs, _, done = env.Step(envAct)
		if done {
			obs = env.Reset()
		}
	}
	return sum / float64(count)
}

// ReturnSeries extracts the Fig. 2(a) learning curve (per-episode return).
func ReturnSeries(episodes []rl.EpisodeStats) *Series {
	s := &Series{Name: "return"}
	for _, e := range episodes {
		s.Append(float64(e.Episode), e.Return)
	}
	return s
}
