package experiments

import (
	"context"
	"fmt"

	"vtmig/internal/baselines"
	"vtmig/internal/stackelberg"
)

// RunBaselineComparison plays every pricing scheme on the benchmark game
// for K-round episodes and reports the mean and best MSP utility of each,
// averaged over several seeds. It includes the paper's comparators
// (random, greedy) plus the reproduction's extra baselines (tabular
// Q-learning, two-probe model identification) and the DRL agent.
func RunBaselineComparison(game *stackelberg.Game, cfg DRLConfig, seeds int) (*Table, error) {
	return RunBaselineComparisonCtx(context.Background(), game, cfg, seeds)
}

// RunBaselineComparisonCtx is RunBaselineComparison with cancellation of
// the embedded DRL training.
func RunBaselineComparisonCtx(ctx context.Context, game *stackelberg.Game, cfg DRLConfig, seeds int) (*Table, error) {
	if seeds < 1 {
		return nil, fmt.Errorf("experiments: seeds must be >= 1, got %d", seeds)
	}
	t := &Table{
		Title: "baselines: mean/best MSP utility per scheme",
		// Column 0 encodes the scheme index in schemeNames order.
		Columns: []string{"scheme", "mean_Us", "best_Us", "eq_Us"},
	}
	oracle := game.Solve()

	mk := func(name string, seed int64) baselines.Policy {
		switch name {
		case "oracle":
			return baselines.NewOracle(game)
		case "greedy":
			return baselines.NewGreedy(game.Cost, game.PMax, 0.1, seed)
		case "random":
			return baselines.NewRandom(game.Cost, game.PMax, seed)
		case "qlearning":
			return baselines.NewQLearning(game.Cost, game.PMax, 46, 1.0, 1.0, 0.99, seed)
		case "identification":
			return baselines.NewIdentification(game.Cost, game.PMax, game.Cost)
		default:
			panic("experiments: unknown scheme " + name)
		}
	}

	for i, name := range BaselineSchemes {
		if name == "drl" {
			res, err := TrainAgentCtx(ctx, game, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: baseline comparison DRL: %w", err)
			}
			us := res.EvalOutcome.MSPUtility
			t.AddRow(float64(i), us, us, oracle.MSPUtility)
			continue
		}
		var mean, best float64
		for s := 0; s < seeds; s++ {
			r := baselines.RunEpisode(game, mk(name, int64(s)), cfg.Rounds)
			mean += r.MeanUtility / float64(seeds)
			best += r.BestUtility / float64(seeds)
		}
		t.AddRow(float64(i), mean, best, oracle.MSPUtility)
	}
	return t, nil
}

// BaselineSchemes lists the schemes of RunBaselineComparison in row
// order.
var BaselineSchemes = []string{"oracle", "drl", "identification", "qlearning", "greedy", "random"}
