// Package experiments regenerates every figure of the paper's evaluation
// (Fig. 2(a), 2(b), 3(a)–3(d)) plus the reproduction's ablations, printing
// the same rows/series the paper plots and optionally writing CSV.
package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled numeric table with named columns — one per figure
// panel.
type Table struct {
	// Title identifies the experiment (e.g. "fig3a").
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows hold the numeric cells; every row has len(Columns) cells.
	Rows [][]float64
}

// AddRow appends a row, validating its width.
func (t *Table) AddRow(cells ...float64) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: row width %d, want %d", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// WriteCSV writes the table as CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return fmt.Errorf("experiments: writing csv header: %w", err)
	}
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = strconv.FormatFloat(v, 'g', 8, 64)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return fmt.Errorf("experiments: writing csv row: %w", err)
		}
	}
	return nil
}

// String renders the table as aligned text for terminal output.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	cells := make([][]string, len(t.Rows))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for r, row := range t.Rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			s := strconv.FormatFloat(v, 'f', 3, 64)
			cells[r][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			fmt.Fprintf(&b, "%*s  ", widths[i], s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Series is a named (x, y) sequence — one plotted line.
type Series struct {
	Name string
	X, Y []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Tail returns the mean of the last k y-values (or all when fewer),
// the standard "converged value" readout for learning curves.
func (s *Series) Tail(k int) float64 {
	n := len(s.Y)
	if n == 0 {
		return 0
	}
	if k > n {
		k = n
	}
	var sum float64
	for _, v := range s.Y[n-k:] {
		sum += v
	}
	return sum / float64(k)
}

// SeriesTable lays out several series that share an x-axis as a Table.
// All series must have the same length and x-grid.
func SeriesTable(title, xName string, series ...*Series) *Table {
	if len(series) == 0 {
		panic("experiments: SeriesTable needs at least one series")
	}
	n := series[0].Len()
	cols := make([]string, 0, len(series)+1)
	cols = append(cols, xName)
	for _, s := range series {
		if s.Len() != n {
			panic(fmt.Sprintf("experiments: series %q has %d points, want %d", s.Name, s.Len(), n))
		}
		cols = append(cols, s.Name)
	}
	t := &Table{Title: title, Columns: cols}
	for i := 0; i < n; i++ {
		row := make([]float64, 0, len(cols))
		row = append(row, series[0].X[i])
		for _, s := range series {
			row = append(row, s.Y[i])
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
