package experiments

import (
	"context"
	"fmt"

	"vtmig/internal/pomdp"
	"vtmig/internal/rl"
	"vtmig/internal/sim"
	"vtmig/internal/stackelberg"
)

// OnlineStudyConfig parameterizes the online continual-learning study:
// the same fixed-seed simulation scenario is run once per pricing arm —
// the complete-information oracle, the frozen offline-trained DRL agent,
// the same agent continuing to learn online, and a cold-started online
// learner — and the arms' leader economics are compared.
type OnlineStudyConfig struct {
	// Sim is the simulation scenario; its Pricer field is ignored (each
	// arm installs its own) and its Seed fixes the vehicle process for
	// every arm.
	Sim sim.Config
	// Game is the offline training game and the online pricers' reference
	// game. Nil selects stackelberg.DefaultGame().
	Game *stackelberg.Game
	// DRL is the offline training configuration behind the frozen and
	// warm-started arms. The study trains it exactly ONCE and forks each
	// arm's agent from the result via the full-checkpoint Clone path
	// (weights, Adam moments, RNG position) — bit-identical to the
	// historical independent per-arm trainings, at half the training
	// cost, and the frozen agent's weights stay untouched by the online
	// arm's continued updates.
	DRL DRLConfig
	// UpdateEvery is the online pricers' optimization cadence in live
	// rounds. Zero selects DRL.UpdateEvery.
	UpdateEvery int
	// Reward is the online pricers' live learning signal. The zero value
	// selects pomdp.RewardShaped (see sim.OnlinePricerConfig).
	Reward pomdp.RewardKind
	// OnlinePPO optionally overrides the learner configuration of the
	// cold-started arm (zero Epochs selects DRL.PPO).
	OnlinePPO OnlinePPOConfig
}

// OnlinePPOConfig aliases the learner knobs the cold arm can override
// without pulling the whole rl surface into the study configuration.
type OnlinePPOConfig struct {
	// LR overrides the cold learner's Adam step size (0 keeps DRL.PPO.LR).
	LR float64
}

// OnlineArm is one pricer's outcome in the study.
type OnlineArm struct {
	// Name identifies the arm: "oracle", "frozen-drl", "online-warm", or
	// "online-cold".
	Name string
	// Report is the arm's full simulation report.
	Report sim.Report
	// LeaderUtility is the arm's average leader (MSP) utility per pricing
	// round — MSPRevenue / PricingRounds, the study's headline metric.
	LeaderUtility float64
	// Updates counts the online optimization phases (zero for the oracle
	// and frozen arms).
	Updates int
}

// OnlineStudy is the result of RunOnlineStudy.
type OnlineStudy struct {
	// Arms are the study's outcomes in fixed order: oracle, frozen-drl,
	// online-warm, online-cold.
	Arms []OnlineArm
}

// Arm returns the named arm, or nil.
func (s *OnlineStudy) Arm(name string) *OnlineArm {
	for i := range s.Arms {
		if s.Arms[i].Name == name {
			return &s.Arms[i]
		}
	}
	return nil
}

// Table lays the study out as one row per arm.
func (s *OnlineStudy) Table() *Table {
	t := &Table{
		Title: "online-study",
		Columns: []string{"arm", "leader_utility", "revenue", "pricing_rounds", "migrations",
			"mean_aotm", "mean_vmu_utility", "updates"},
	}
	for _, a := range s.Arms {
		t.AddRow(float64(armIndex(a.Name)), a.LeaderUtility, a.Report.MSPRevenue,
			float64(a.Report.PricingRounds), float64(len(a.Report.Migrations)),
			a.Report.MeanAoTM, a.Report.MeanVMUUtility, float64(a.Updates))
	}
	return t
}

// armIndex maps arm names onto the numeric first column of the table
// (tables are numeric; the fixed ordering doubles as the arm id).
func armIndex(name string) int {
	switch name {
	case "oracle":
		return 0
	case "frozen-drl":
		return 1
	case "online-warm":
		return 2
	case "online-cold":
		return 3
	}
	return -1
}

// deploymentBeliefRounds is the belief-environment horizon of a deployed
// frozen pricer: effectively unbounded, so the belief window is never
// reset mid-deployment.
const deploymentBeliefRounds = 1 << 20

// FrozenPricer deploys a trained agent as the simulator's frozen DRL
// pricing strategy: a fresh long-horizon belief environment with the
// agent's training configuration wraps it via sim.NewDRLPricer. The
// study's frozen arm and vtmig-sim's `-pricer drl` share the underlying
// construction (the study deploys a checkpoint-cloned copy instead of the
// training result's own instance).
func FrozenPricer(res *TrainResult) (sim.Pricer, error) {
	return frozenPricer(res.Env.Config(), res.Agent)
}

// frozenPricer wraps an agent in a fresh long-horizon belief environment
// derived from the training environment's configuration.
func frozenPricer(beliefCfg pomdp.Config, agent *rl.PPO) (sim.Pricer, error) {
	beliefCfg.Rounds = deploymentBeliefRounds
	belief, err := pomdp.NewGameEnv(beliefCfg)
	if err != nil {
		return nil, err
	}
	return sim.NewDRLPricer(belief, agent), nil
}

// DefaultOnlineStudyConfig returns a study over the default simulation
// scenario with a deliberately small offline budget: the point of the
// study is to measure what online continual learning adds on top of (or
// instead of) offline training.
func DefaultOnlineStudyConfig() OnlineStudyConfig {
	simCfg := sim.DefaultConfig()
	drl := DefaultDRLConfig()
	drl.Episodes = 20
	drl.Restarts = 1
	return OnlineStudyConfig{Sim: simCfg, DRL: drl}
}

// RunOnlineStudy runs the frozen-vs-online-vs-oracle comparison.
func RunOnlineStudy(cfg OnlineStudyConfig) (*OnlineStudy, error) {
	return RunOnlineStudyCtx(context.Background(), cfg)
}

// RunOnlineStudyCtx is RunOnlineStudy with cancellation: the four arms
// fan out through the shared worker pool (results assembled in fixed arm
// order, determinism contract rule 2), and the training arms stop at the
// next episode boundary when ctx is cancelled.
func RunOnlineStudyCtx(ctx context.Context, cfg OnlineStudyConfig) (*OnlineStudy, error) {
	game := cfg.Game
	if game == nil {
		game = stackelberg.DefaultGame()
	}
	updateEvery := cfg.UpdateEvery
	if updateEvery == 0 {
		updateEvery = cfg.DRL.UpdateEvery
	}

	// Train the shared offline agent exactly once, before the arm
	// fan-out. Each deployment arm forks an independent learner from the
	// trained state via the checkpoint Clone path, so no agent instance
	// is shared between the concurrently running frozen and learning
	// deployments — and the fork is bit-identical to the agent an
	// independent identically seeded training would have produced
	// (determinism contract rules 2 and 6).
	res, err := TrainAgentCtx(ctx, game, cfg.DRL)
	if err != nil {
		return nil, fmt.Errorf("experiments: training the study's shared agent: %w", err)
	}
	frozenAgent, err := res.Agent.Clone()
	if err != nil {
		return nil, fmt.Errorf("experiments: forking the frozen arm's agent: %w", err)
	}
	warmAgent, err := res.Agent.Clone()
	if err != nil {
		return nil, fmt.Errorf("experiments: forking the online-warm arm's agent: %w", err)
	}

	arms := []struct {
		name  string
		build func(ctx context.Context) (sim.Pricer, error)
	}{
		{"oracle", func(context.Context) (sim.Pricer, error) { return sim.NewOraclePricer(), nil }},
		{"frozen-drl", func(ctx context.Context) (sim.Pricer, error) {
			return frozenPricer(res.Env.Config(), frozenAgent)
		}},
		{"online-warm", func(ctx context.Context) (sim.Pricer, error) {
			return sim.NewOnlinePricer(sim.OnlinePricerConfig{
				Game:        game,
				HistoryLen:  cfg.DRL.HistoryLen,
				Agent:       warmAgent,
				UpdateEvery: updateEvery,
				Reward:      cfg.Reward,
				Seed:        cfg.DRL.Seed,
			})
		}},
		{"online-cold", func(context.Context) (sim.Pricer, error) {
			ppo := cfg.DRL.PPO
			if cfg.OnlinePPO.LR > 0 {
				ppo.LR = cfg.OnlinePPO.LR
			}
			return sim.NewOnlinePricer(sim.OnlinePricerConfig{
				Game:        game,
				HistoryLen:  cfg.DRL.HistoryLen,
				PPO:         ppo,
				UpdateEvery: updateEvery,
				Reward:      cfg.Reward,
				Seed:        cfg.DRL.Seed,
			})
		}},
	}

	study := &OnlineStudy{Arms: make([]OnlineArm, len(arms))}
	err = defaultPool.Run(ctx, len(arms), func(ctx context.Context, i int) error {
		pricer, err := arms[i].build(ctx)
		if err != nil {
			return fmt.Errorf("experiments: building %s arm: %w", arms[i].name, err)
		}
		simCfg := cfg.Sim
		simCfg.Pricer = pricer
		s, err := sim.New(simCfg)
		if err != nil {
			return fmt.Errorf("experiments: %s arm simulator: %w", arms[i].name, err)
		}
		rep := s.Run()
		arm := OnlineArm{Name: arms[i].name, Report: rep}
		if rep.PricingRounds > 0 {
			arm.LeaderUtility = rep.MSPRevenue / float64(rep.PricingRounds)
		}
		if op, ok := pricer.(*sim.OnlinePricer); ok {
			op.Flush() // close the trailing partial segment before reading the learner
			arm.Updates = op.Updates()
		}
		study.Arms[i] = arm
		return nil
	})
	if err != nil {
		return nil, err
	}
	return study, nil
}
