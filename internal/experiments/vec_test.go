package experiments

import (
	"math"
	"testing"

	"vtmig/internal/stackelberg"
)

// smallVecCfg returns a reduced training configuration with vectorized
// collection enabled.
func smallVecCfg(workers int) DRLConfig {
	cfg := DefaultDRLConfig()
	cfg.Episodes = 6
	cfg.Rounds = 30
	cfg.Restarts = 1
	cfg.CollectEnvs = 3
	cfg.CollectWorkers = workers
	return cfg
}

// TestFig2VectorizedWorkerInvariant pins rule 4 at the figure level: the
// full Fig. 2 pipeline with vectorized collection must produce identical
// curves for every worker count.
func TestFig2VectorizedWorkerInvariant(t *testing.T) {
	game := stackelberg.DefaultGame()
	ref, err := RunFig2(game, smallVecCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Return.Len() != 6 {
		t.Fatalf("vectorized fig2 recorded %d episodes, want 6", ref.Return.Len())
	}
	for _, workers := range []int{2, 5} {
		got, err := RunFig2(game, smallVecCfg(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Return.Y {
			if math.Float64bits(ref.Return.Y[i]) != math.Float64bits(got.Return.Y[i]) {
				t.Fatalf("workers=%d: episode %d return %v, serial collection %v",
					workers, i, got.Return.Y[i], ref.Return.Y[i])
			}
		}
		for i := range ref.Utility.Y {
			if math.Float64bits(ref.Utility.Y[i]) != math.Float64bits(got.Utility.Y[i]) {
				t.Fatalf("workers=%d: episode %d utility %v, serial collection %v",
					workers, i, got.Utility.Y[i], ref.Utility.Y[i])
			}
		}
	}
}

// TestTrainAgentVectorized checks the TrainAgent entry point with
// vectorized collection: training must complete, reproduce itself, and
// report the configured number of episodes.
func TestTrainAgentVectorized(t *testing.T) {
	game := stackelberg.DefaultGame()
	cfg := smallVecCfg(0) // automatic worker count
	a, err := TrainAgent(game, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Episodes) != cfg.Episodes {
		t.Fatalf("trained %d episodes, want %d", len(a.Episodes), cfg.Episodes)
	}
	b, err := TrainAgent(game, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a.EvalPrice) != math.Float64bits(b.EvalPrice) {
		t.Fatalf("vectorized training not reproducible: eval price %v vs %v", a.EvalPrice, b.EvalPrice)
	}
	for i := range a.Episodes {
		if math.Float64bits(a.Episodes[i].Return) != math.Float64bits(b.Episodes[i].Return) {
			t.Fatalf("episode %d return %v vs %v", i, a.Episodes[i].Return, b.Episodes[i].Return)
		}
	}
}
