package experiments

import (
	"context"
	"fmt"
	"math"

	"vtmig/internal/mathx"
	"vtmig/internal/stackelberg"
)

// SeedStudy reports the cross-seed variability of the DRL agent.
type SeedStudy struct {
	// Prices and Utilities hold the evaluated outcome per seed.
	Prices, Utilities []float64
	// OracleUtility is the equilibrium reference.
	OracleUtility float64
}

// RunSeedStudy trains one agent per seed in parallel and collects the
// evaluated price and MSP utility of each — the statistical robustness
// check behind the single-seed curves of Fig. 2.
func RunSeedStudy(game *stackelberg.Game, cfg DRLConfig, seeds int) (*SeedStudy, error) {
	return RunSeedStudyCtx(context.Background(), game, cfg, seeds)
}

// RunSeedStudyCtx is RunSeedStudy with cancellation; the per-seed
// trainings fan out through the shared worker pool.
func RunSeedStudyCtx(ctx context.Context, game *stackelberg.Game, cfg DRLConfig, seeds int) (*SeedStudy, error) {
	if seeds < 2 {
		return nil, fmt.Errorf("experiments: seed study needs >= 2 seeds, got %d", seeds)
	}
	study := &SeedStudy{
		Prices:        make([]float64, seeds),
		Utilities:     make([]float64, seeds),
		OracleUtility: game.Solve().MSPUtility,
	}
	err := defaultPool.Run(ctx, seeds, func(ctx context.Context, s int) error {
		c := cfg
		c.Restarts = 1 // the study wants raw per-seed outcomes
		c.Seed = cfg.Seed + int64(s)
		res, err := trainOnce(ctx, game, c, nil)
		if err != nil {
			return err
		}
		study.Prices[s] = res.EvalPrice
		study.Utilities[s] = res.EvalOutcome.MSPUtility
		return nil
	})
	if err != nil {
		return nil, err
	}
	return study, nil
}

// Table summarizes the study: mean, standard deviation, 95 % normal-
// approximation confidence half-width, and extremes for price and
// utility, plus the mean regret against the equilibrium.
func (s *SeedStudy) Table() *Table {
	t := &Table{
		Title:   "seed study: cross-seed robustness of the DRL agent",
		Columns: []string{"metric", "mean", "std", "ci95_halfwidth", "min", "max"},
	}
	n := float64(len(s.Utilities))
	addRow := func(idx float64, xs []float64) {
		lo, hi := mathx.MinMax(xs)
		std := mathx.StdDev(xs)
		t.AddRow(idx, mathx.Mean(xs), std, 1.96*std/math.Sqrt(n), lo, hi)
	}
	// Row 0: price; row 1: MSP utility; row 2: regret (%).
	addRow(0, s.Prices)
	addRow(1, s.Utilities)
	regrets := make([]float64, len(s.Utilities))
	for i, u := range s.Utilities {
		regrets[i] = regretPct(u, s.OracleUtility)
	}
	addRow(2, regrets)
	return t
}
