package experiments

import (
	"context"
	"fmt"

	"vtmig/internal/pomdp"
	"vtmig/internal/scenario"
	"vtmig/internal/sim"
	"vtmig/internal/stackelberg"
)

// NonstationaryStudyConfig parameterizes the non-stationarity study: one
// offline-trained agent is deployed frozen and online-continual on a
// stationary scenario and on a non-stationary one, and the online
// learner's margin over its frozen twin is compared across the two
// workloads. The study answers the question the scenario layer exists to
// pose: does continual learning pay off more when the workload actually
// drifts (churn, outages, demand cycles) than when it is static?
type NonstationaryStudyConfig struct {
	// Static is the stationary reference scenario; nil selects a
	// short default-highway scenario. Its Pricer field is ignored.
	Static *scenario.Scenario
	// NonStationary is the drifting scenario; nil selects a default
	// grid+churn+outages+demand workload. Its Pricer field is ignored.
	NonStationary *scenario.Scenario
	// Game is the offline training game and the online pricers' reference
	// game. Nil selects stackelberg.DefaultGame().
	Game *stackelberg.Game
	// DRL is the offline training configuration. The study trains it
	// exactly once and forks every arm's agent from the result.
	DRL DRLConfig
	// UpdateEvery is the online arms' optimization cadence in live
	// rounds. Zero selects DRL.UpdateEvery.
	UpdateEvery int
	// Reward is the online arms' live learning signal (zero:
	// pomdp.RewardShaped).
	Reward pomdp.RewardKind
}

// NonstationaryArm is one (scenario, pricer) cell of the study.
type NonstationaryArm struct {
	// Scenario is "static" or "nonstationary".
	Scenario string
	// Pricer is "frozen-drl" or "online-warm".
	Pricer string
	// Report is the cell's full simulation report.
	Report sim.Report
	// LeaderUtility is MSPRevenue / PricingRounds, the study metric.
	LeaderUtility float64
	// Updates counts the online optimization phases (zero when frozen).
	Updates int
}

// NonstationaryStudy is the result of RunNonstationaryStudy.
type NonstationaryStudy struct {
	// Arms are the four cells in fixed order: static/frozen-drl,
	// static/online-warm, nonstationary/frozen-drl,
	// nonstationary/online-warm.
	Arms []NonstationaryArm
	// StaticMargin and NonstationaryMargin are the online arm's leader
	// utility minus the frozen arm's, per scenario.
	StaticMargin        float64
	NonstationaryMargin float64
	// MarginGain is NonstationaryMargin − StaticMargin: positive means
	// online adaptation is worth more under workload drift than it is on
	// the stationary reference.
	MarginGain float64
}

// Arm returns the named cell, or nil.
func (s *NonstationaryStudy) Arm(scenarioName, pricer string) *NonstationaryArm {
	for i := range s.Arms {
		if s.Arms[i].Scenario == scenarioName && s.Arms[i].Pricer == pricer {
			return &s.Arms[i]
		}
	}
	return nil
}

// Table lays the study out as one row per cell.
func (s *NonstationaryStudy) Table() *Table {
	t := &Table{
		Title: "nonstationary-study",
		Columns: []string{"arm", "leader_utility", "revenue", "pricing_rounds", "migrations",
			"mean_aotm", "mean_vmu_utility", "updates"},
	}
	for i, a := range s.Arms {
		t.AddRow(float64(i), a.LeaderUtility, a.Report.MSPRevenue,
			float64(a.Report.PricingRounds), float64(len(a.Report.Migrations)),
			a.Report.MeanAoTM, a.Report.MeanVMUUtility, float64(a.Updates))
	}
	return t
}

// DefaultNonstationaryStudyConfig returns the study over a short
// stationary highway and a grid+churn+outages+demand workload — in-code
// equivalents of the committed static-highway and nonstationary scenario
// files, shortened for fast runs — with a small offline budget.
func DefaultNonstationaryStudyConfig() NonstationaryStudyConfig {
	drl := DefaultDRLConfig()
	drl.Episodes = 20
	drl.Restarts = 1
	return NonstationaryStudyConfig{
		Static: &scenario.Scenario{Name: "static", Seed: 123, DurationS: 300},
		NonStationary: &scenario.Scenario{
			Name: "nonstationary", Seed: 123, DurationS: 300,
			Mobility:  &scenario.Mobility{Kind: scenario.KindGrid, Rows: 3, Cols: 3, SpacingM: 500, RadiusM: 350},
			Churn:     &scenario.Churn{ArrivalRatePerS: 0.04, MeanDwellS: 150, MaxVehicles: 10},
			OutageGen: &scenario.OutageGen{Count: 3, MeanDurationS: 60},
			Demand:    &scenario.Demand{PeriodS: 150, DayFraction: 0.5, NightSpeedFactor: 0.6, NightSensingFactor: 1.5},
		},
		DRL: drl,
	}
}

// RunNonstationaryStudy runs the 2×2 frozen-vs-online, static-vs-drift
// comparison.
func RunNonstationaryStudy(cfg NonstationaryStudyConfig) (*NonstationaryStudy, error) {
	return RunNonstationaryStudyCtx(context.Background(), cfg)
}

// RunNonstationaryStudyCtx is RunNonstationaryStudy with cancellation:
// the four cells fan out through the shared worker pool (results
// assembled in fixed order, determinism contract rule 2) and training
// stops at the next episode boundary when ctx is cancelled.
func RunNonstationaryStudyCtx(ctx context.Context, cfg NonstationaryStudyConfig) (*NonstationaryStudy, error) {
	def := DefaultNonstationaryStudyConfig()
	if cfg.Static == nil {
		cfg.Static = def.Static
	}
	if cfg.NonStationary == nil {
		cfg.NonStationary = def.NonStationary
	}
	game := cfg.Game
	if game == nil {
		game = stackelberg.DefaultGame()
	}
	updateEvery := cfg.UpdateEvery
	if updateEvery == 0 {
		updateEvery = cfg.DRL.UpdateEvery
	}

	// Compile both workloads up front: a scenario that does not compile
	// should fail before any training is spent on it.
	scenarios := []struct {
		name string
		s    *scenario.Scenario
	}{{"static", cfg.Static}, {"nonstationary", cfg.NonStationary}}
	compiled := make([]sim.Config, len(scenarios))
	for i, sc := range scenarios {
		c, err := sc.s.CompileConfig()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s scenario: %w", sc.name, err)
		}
		compiled[i] = c
	}

	// Train the shared offline agent exactly once, then fork one
	// independent learner per cell so no agent instance is shared between
	// concurrently running deployments.
	res, err := TrainAgentCtx(ctx, game, cfg.DRL)
	if err != nil {
		return nil, fmt.Errorf("experiments: training the study's shared agent: %w", err)
	}

	type cell struct {
		scenario string
		pricer   string
		cfg      sim.Config
	}
	cells := make([]cell, 0, 4)
	for i, sc := range scenarios {
		cells = append(cells,
			cell{sc.name, "frozen-drl", compiled[i]},
			cell{sc.name, "online-warm", compiled[i]},
		)
	}

	study := &NonstationaryStudy{Arms: make([]NonstationaryArm, len(cells))}
	err = defaultPool.Run(ctx, len(cells), func(ctx context.Context, i int) error {
		agent, err := res.Agent.Clone()
		if err != nil {
			return fmt.Errorf("experiments: forking the %s/%s agent: %w", cells[i].scenario, cells[i].pricer, err)
		}
		var pricer sim.Pricer
		switch cells[i].pricer {
		case "frozen-drl":
			pricer, err = frozenPricer(res.Env.Config(), agent)
		case "online-warm":
			pricer, err = sim.NewOnlinePricer(sim.OnlinePricerConfig{
				Game:        game,
				HistoryLen:  cfg.DRL.HistoryLen,
				Agent:       agent,
				UpdateEvery: updateEvery,
				Reward:      cfg.Reward,
				Seed:        cfg.DRL.Seed,
			})
		}
		if err != nil {
			return fmt.Errorf("experiments: building the %s/%s pricer: %w", cells[i].scenario, cells[i].pricer, err)
		}
		simCfg := cells[i].cfg
		simCfg.Pricer = pricer
		s, err := sim.New(simCfg)
		if err != nil {
			return fmt.Errorf("experiments: %s/%s simulator: %w", cells[i].scenario, cells[i].pricer, err)
		}
		rep := s.Run()
		arm := NonstationaryArm{Scenario: cells[i].scenario, Pricer: cells[i].pricer, Report: rep}
		if rep.PricingRounds > 0 {
			arm.LeaderUtility = rep.MSPRevenue / float64(rep.PricingRounds)
		}
		if op, ok := pricer.(*sim.OnlinePricer); ok {
			op.Flush() // close the trailing partial segment before reading the learner
			arm.Updates = op.Updates()
		}
		study.Arms[i] = arm
		return nil
	})
	if err != nil {
		return nil, err
	}
	study.StaticMargin = study.Arm("static", "online-warm").LeaderUtility -
		study.Arm("static", "frozen-drl").LeaderUtility
	study.NonstationaryMargin = study.Arm("nonstationary", "online-warm").LeaderUtility -
		study.Arm("nonstationary", "frozen-drl").LeaderUtility
	study.MarginGain = study.NonstationaryMargin - study.StaticMargin
	return study, nil
}
