package experiments

import (
	"bytes"
	"strings"
	"testing"

	"vtmig/internal/pomdp"
	"vtmig/internal/stackelberg"
)

// quickCfg is a fast DRL configuration for tests: enough training to show
// learning, small enough to keep the suite quick.
func quickCfg() DRLConfig {
	cfg := DefaultDRLConfig()
	cfg.Episodes = 30
	cfg.Rounds = 60
	return cfg
}

func TestTableAddRowAndString(t *testing.T) {
	tab := &Table{Title: "t", Columns: []string{"a", "b"}}
	tab.AddRow(1, 2)
	tab.AddRow(3, 4)
	s := tab.String()
	if !strings.Contains(s, "== t ==") || !strings.Contains(s, "a") {
		t.Errorf("String output missing title/header: %q", s)
	}
	if len(tab.Rows) != 2 {
		t.Errorf("rows = %d, want 2", len(tab.Rows))
	}
}

func TestTableAddRowWidthPanics(t *testing.T) {
	tab := &Table{Title: "t", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("short row did not panic")
		}
	}()
	tab.AddRow(1)
}

func TestTableWriteCSV(t *testing.T) {
	tab := &Table{Title: "t", Columns: []string{"x", "y"}}
	tab.AddRow(1, 2.5)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	want := "x,y\n1,2.5\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestSeriesTailAndAppend(t *testing.T) {
	s := &Series{Name: "s"}
	for i := 0; i < 5; i++ {
		s.Append(float64(i), float64(i*10))
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Tail(2); got != 35 {
		t.Errorf("Tail(2) = %v, want 35", got)
	}
	if got := s.Tail(100); got != 20 {
		t.Errorf("Tail(100) = %v, want mean 20", got)
	}
	empty := &Series{}
	if got := empty.Tail(3); got != 0 {
		t.Errorf("empty Tail = %v, want 0", got)
	}
}

func TestSeriesTableLayout(t *testing.T) {
	a := &Series{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}}
	b := &Series{Name: "b", X: []float64{1, 2}, Y: []float64{30, 40}}
	tab := SeriesTable("joint", "x", a, b)
	if len(tab.Columns) != 3 || tab.Columns[2] != "b" {
		t.Fatalf("columns = %v", tab.Columns)
	}
	if tab.Rows[1][2] != 40 {
		t.Errorf("cell = %v, want 40", tab.Rows[1][2])
	}
}

func TestSeriesTableMismatchPanics(t *testing.T) {
	a := &Series{Name: "a", X: []float64{1}, Y: []float64{10}}
	b := &Series{Name: "b", X: []float64{1, 2}, Y: []float64{30, 40}}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched series did not panic")
		}
	}()
	SeriesTable("joint", "x", a, b)
}

func TestTrainAgentLearnsTowardEquilibrium(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	game := stackelberg.DefaultGame()
	cfg := quickCfg()
	res, err := TrainAgent(game, cfg)
	if err != nil {
		t.Fatalf("TrainAgent: %v", err)
	}
	if len(res.Episodes) != cfg.Episodes {
		t.Fatalf("episodes = %d, want %d", len(res.Episodes), cfg.Episodes)
	}
	// Even a short run must beat the worst case by a wide margin: regret
	// below 50% of the oracle utility.
	if res.EvalOutcome.MSPUtility < 0.5*res.OracleOutcome.MSPUtility {
		t.Errorf("eval Us = %v, oracle %v — learning is broken",
			res.EvalOutcome.MSPUtility, res.OracleOutcome.MSPUtility)
	}
	if res.EvalPrice < game.Cost || res.EvalPrice > game.PMax {
		t.Errorf("eval price %v outside [C, pmax]", res.EvalPrice)
	}
}

func TestRunFig2ProducesBothCurves(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	cfg := quickCfg()
	res, err := RunFig2(stackelberg.DefaultGame(), cfg)
	if err != nil {
		t.Fatalf("RunFig2: %v", err)
	}
	if res.Return.Len() != cfg.Episodes || res.Utility.Len() != cfg.Episodes {
		t.Fatalf("curve lengths = %d/%d, want %d", res.Return.Len(), res.Utility.Len(), cfg.Episodes)
	}
	if res.OracleUtility <= 0 {
		t.Error("oracle utility must be positive")
	}
	tables := res.Tables()
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) != cfg.Episodes {
			t.Errorf("%s rows = %d, want %d", tab.Title, len(tab.Rows), cfg.Episodes)
		}
	}
}

func TestRunCostSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	cfg := quickCfg()
	res, err := RunCostSweep([]float64{5, 9}, cfg)
	if err != nil {
		t.Fatalf("RunCostSweep: %v", err)
	}
	if len(res.Fig3a.Rows) != 2 || len(res.Fig3b.Rows) != 2 {
		t.Fatalf("row counts = %d/%d, want 2/2", len(res.Fig3a.Rows), len(res.Fig3b.Rows))
	}
	// Equilibrium columns must reproduce the paper: price rises with cost,
	// bandwidth falls.
	eqPriceC5, eqPriceC9 := res.Fig3a.Rows[0][2], res.Fig3a.Rows[1][2]
	if !(eqPriceC5 < eqPriceC9) {
		t.Errorf("eq price must rise with cost: %v vs %v", eqPriceC5, eqPriceC9)
	}
	eqBwC5, eqBwC9 := res.Fig3b.Rows[0][2], res.Fig3b.Rows[1][2]
	if !(eqBwC5 > eqBwC9) {
		t.Errorf("eq bandwidth must fall with cost: %v vs %v", eqBwC5, eqBwC9)
	}
	// DRL utility must beat the random baseline at every cost.
	for i, row := range res.Fig3a.Rows {
		drlUs, randomUs := row[3], row[6]
		if drlUs <= randomUs {
			t.Errorf("row %d: DRL Us %v must beat random %v", i, drlUs, randomUs)
		}
	}
}

func TestRunVMUSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	cfg := quickCfg()
	res, err := RunVMUSweep([]int{2, 6}, cfg)
	if err != nil {
		t.Fatalf("RunVMUSweep: %v", err)
	}
	// Equilibrium shape: Us grows with N; average VMU utility falls.
	eqUsN2, eqUsN6 := res.Fig3c.Rows[0][4], res.Fig3c.Rows[1][4]
	if !(eqUsN6 > eqUsN2) {
		t.Errorf("eq Us must grow with N: %v vs %v", eqUsN2, eqUsN6)
	}
	avgUtilN2, avgUtilN6 := res.Fig3d.Rows[0][4], res.Fig3d.Rows[1][4]
	if !(avgUtilN6 < avgUtilN2) {
		t.Errorf("avg VMU utility must fall with N: %v vs %v", avgUtilN2, avgUtilN6)
	}
}

func TestUniformGame(t *testing.T) {
	g, err := UniformGame(3)
	if err != nil {
		t.Fatalf("UniformGame: %v", err)
	}
	if g.N() != 3 {
		t.Errorf("N = %d, want 3", g.N())
	}
	for _, v := range g.VMUs {
		if v.Alpha != 5 || v.DataSize != 1 {
			t.Errorf("VMU %d = %+v, want alpha 5, data 1", v.ID, v)
		}
	}
}

func TestRunSolverAblationAgreement(t *testing.T) {
	tab := RunSolverAblation()
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tab.Rows {
		if diff := row[3]; diff > 0.01 {
			t.Errorf("price %v: closed-form and IBR differ by %v (×10kHz)", row[0], diff)
		}
	}
}

func TestRunHistoryAblationValidation(t *testing.T) {
	if _, err := RunHistoryAblation([]int{0}, quickCfg()); err == nil {
		t.Error("L=0 must error")
	}
}

func TestRunRewardAblationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	cfg := quickCfg()
	cfg.Episodes = 15
	tab, err := RunRewardAblation(cfg)
	if err != nil {
		t.Fatalf("RunRewardAblation: %v", err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (binary, shaped)", len(tab.Rows))
	}
}

func TestDefaultDRLConfigMatchesPaperStructure(t *testing.T) {
	cfg := DefaultDRLConfig()
	if cfg.HistoryLen != 4 {
		t.Errorf("L = %d, want 4", cfg.HistoryLen)
	}
	if cfg.Rounds != 100 {
		t.Errorf("K = %d, want 100", cfg.Rounds)
	}
	if cfg.UpdateEvery != 20 {
		t.Errorf("|I| = %d, want 20", cfg.UpdateEvery)
	}
	if cfg.PPO.Epochs != 10 {
		t.Errorf("M = %d, want 10", cfg.PPO.Epochs)
	}
	if cfg.Reward != pomdp.RewardBinary {
		t.Errorf("reward = %v, want binary", cfg.Reward)
	}
	if len(cfg.PPO.Hidden) != 2 || cfg.PPO.Hidden[0] != 64 || cfg.PPO.Hidden[1] != 64 {
		t.Errorf("hidden = %v, want [64 64]", cfg.PPO.Hidden)
	}
}

func TestRunMultiMSPAblation(t *testing.T) {
	tab, err := RunMultiMSPAblation([]int{1, 2})
	if err != nil {
		t.Fatalf("RunMultiMSPAblation: %v", err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	monoPrice, duoPrice := tab.Rows[0][1], tab.Rows[1][1]
	if duoPrice >= monoPrice {
		t.Errorf("duopoly price %v must undercut monopoly %v", duoPrice, monoPrice)
	}
	monoVMU, duoVMU := tab.Rows[0][3], tab.Rows[1][3]
	if duoVMU <= monoVMU {
		t.Errorf("duopoly VMU utility %v must exceed monopoly %v", duoVMU, monoVMU)
	}
}

func TestRunMultiMSPAblationValidation(t *testing.T) {
	if _, err := RunMultiMSPAblation([]int{0}); err == nil {
		t.Error("provider count 0 must error")
	}
}

func TestRunBaselineComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	cfg := quickCfg()
	tab, err := RunBaselineComparison(stackelberg.DefaultGame(), cfg, 3)
	if err != nil {
		t.Fatalf("RunBaselineComparison: %v", err)
	}
	if len(tab.Rows) != len(BaselineSchemes) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(BaselineSchemes))
	}
	// Row order follows BaselineSchemes; oracle (row 0) must dominate
	// random (last row) in mean utility, and identification must match
	// the equilibrium nearly exactly in best utility.
	oracleMean := tab.Rows[0][1]
	randomMean := tab.Rows[len(tab.Rows)-1][1]
	if oracleMean <= randomMean {
		t.Errorf("oracle mean %v must beat random %v", oracleMean, randomMean)
	}
	identBest := tab.Rows[2][2]
	eq := tab.Rows[2][3]
	if identBest < 0.999*eq {
		t.Errorf("identification best %v must reach equilibrium %v", identBest, eq)
	}
}

func TestRunBaselineComparisonValidation(t *testing.T) {
	if _, err := RunBaselineComparison(stackelberg.DefaultGame(), quickCfg(), 0); err == nil {
		t.Error("seeds=0 must error")
	}
}

func TestRunSeedStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	cfg := quickCfg()
	study, err := RunSeedStudy(stackelberg.DefaultGame(), cfg, 3)
	if err != nil {
		t.Fatalf("RunSeedStudy: %v", err)
	}
	if len(study.Prices) != 3 || len(study.Utilities) != 3 {
		t.Fatalf("sizes = %d/%d, want 3/3", len(study.Prices), len(study.Utilities))
	}
	for s, u := range study.Utilities {
		if u <= 0 || u > study.OracleUtility+1e-9 {
			t.Errorf("seed %d utility %v outside (0, oracle=%v]", s, u, study.OracleUtility)
		}
	}
	tab := study.Table()
	if len(tab.Rows) != 3 {
		t.Fatalf("table rows = %d, want 3", len(tab.Rows))
	}
	// Mean utility row must sit between min and max.
	if tab.Rows[1][1] < tab.Rows[1][4] || tab.Rows[1][1] > tab.Rows[1][5] {
		t.Errorf("mean %v outside [min %v, max %v]", tab.Rows[1][1], tab.Rows[1][4], tab.Rows[1][5])
	}
}

func TestRunSeedStudyValidation(t *testing.T) {
	if _, err := RunSeedStudy(stackelberg.DefaultGame(), quickCfg(), 1); err == nil {
		t.Error("seeds=1 must error")
	}
}
