package experiments

import (
	"context"
	"testing"

	"vtmig/internal/pomdp"
	"vtmig/internal/sim"
	"vtmig/internal/stackelberg"
)

// onlineStudyCfg returns a test-sized study configuration.
func onlineStudyCfg() OnlineStudyConfig {
	cfg := DefaultOnlineStudyConfig()
	cfg.Sim.DurationS = 300
	cfg.Sim.Seed = 1
	cfg.DRL.Episodes = 2
	cfg.DRL.Rounds = 20
	cfg.DRL.HistoryLen = 3
	cfg.DRL.UpdateEvery = 10
	cfg.DRL.PPO.MiniBatch = 10
	cfg.DRL.Seed = 5
	return cfg
}

// TestOnlineStudyArms checks the study's structure: all four arms run the
// identical scenario, the online arms actually update, and the table lays
// out one row per arm.
func TestOnlineStudyArms(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	study, err := RunOnlineStudy(onlineStudyCfg())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"oracle", "frozen-drl", "online-warm", "online-cold"}
	if len(study.Arms) != len(want) {
		t.Fatalf("%d arms, want %d", len(study.Arms), len(want))
	}
	for i, name := range want {
		arm := study.Arms[i]
		if arm.Name != name {
			t.Fatalf("arm %d is %q, want %q", i, arm.Name, name)
		}
		if arm.Report.PricingRounds == 0 {
			t.Fatalf("%s arm ran no pricing rounds", name)
		}
		if arm.Report.PricingRounds != study.Arms[0].Report.PricingRounds {
			t.Fatalf("%s arm ran %d rounds, oracle ran %d — scenario not identical",
				name, arm.Report.PricingRounds, study.Arms[0].Report.PricingRounds)
		}
		isOnline := name == "online-warm" || name == "online-cold"
		if isOnline && arm.Updates == 0 {
			t.Fatalf("%s arm never updated", name)
		}
		if !isOnline && arm.Updates != 0 {
			t.Fatalf("%s arm reports %d updates", name, arm.Updates)
		}
		if study.Arm(name) != &study.Arms[i] {
			t.Fatalf("Arm(%q) lookup broken", name)
		}
	}
	tab := study.Table()
	if len(tab.Rows) != len(want) || len(tab.Columns) != 8 {
		t.Fatalf("table %d×%d, want 4×8", len(tab.Rows), len(tab.Columns))
	}
	if study.Arm("nonsense") != nil {
		t.Fatal("unknown arm resolved")
	}
}

// TestOnlineStudyOnlineBeatsFrozen pins the committed headline scenario
// (recorded in BENCH_pr4.json): over a 1800-second default-scenario run
// with a deliberately small offline budget, continuing to learn online
// earns the MSP a higher average leader utility than deploying the same
// agent frozen. The run is fully deterministic (contract rules 1–5), so
// this is a regression pin, not a statistical claim.
func TestOnlineStudyOnlineBeatsFrozen(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	cfg := DefaultOnlineStudyConfig()
	cfg.Sim.DurationS = 1800
	cfg.Sim.Seed = 1
	cfg.DRL.Episodes = 10
	study, err := RunOnlineStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frozen := study.Arm("frozen-drl")
	warm := study.Arm("online-warm")
	oracle := study.Arm("oracle")
	if warm.LeaderUtility < frozen.LeaderUtility {
		t.Fatalf("online-warm leader utility %.4f below frozen %.4f",
			warm.LeaderUtility, frozen.LeaderUtility)
	}
	if oracle.LeaderUtility < warm.LeaderUtility {
		t.Fatalf("oracle %.4f below online-warm %.4f — oracle is the upper reference",
			oracle.LeaderUtility, warm.LeaderUtility)
	}
}

// TestOnlineStudySharedTrainingMatchesIndependent pins the PR-5 study
// refactor: the study now trains the offline agent once and forks the
// frozen and online-warm arms from it via the checkpoint Clone path. The
// fork must be indistinguishable from the historical behavior — an
// independent, identically seeded training deployed frozen produces the
// exact same simulation report as the study's frozen arm.
func TestOnlineStudySharedTrainingMatchesIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	cfg := onlineStudyCfg()
	study, err := RunOnlineStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}

	res, err := TrainAgent(stackelberg.DefaultGame(), cfg.DRL)
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := FrozenPricer(res)
	if err != nil {
		t.Fatal(err)
	}
	simCfg := cfg.Sim
	simCfg.Pricer = frozen
	s, err := sim.New(simCfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Run()

	arm := study.Arm("frozen-drl")
	if arm.Report.MSPRevenue != rep.MSPRevenue ||
		arm.Report.PricingRounds != rep.PricingRounds ||
		arm.Report.MeanAoTM != rep.MeanAoTM ||
		arm.Report.MeanVMUUtility != rep.MeanVMUUtility ||
		len(arm.Report.Migrations) != len(rep.Migrations) {
		t.Fatalf("study frozen arm diverged from independent training:\n  study:       revenue=%v rounds=%d aotm=%v\n  independent: revenue=%v rounds=%d aotm=%v",
			arm.Report.MSPRevenue, arm.Report.PricingRounds, arm.Report.MeanAoTM,
			rep.MSPRevenue, rep.PricingRounds, rep.MeanAoTM)
	}
}

// TestOnlineStudyCancellation pins that a cancelled context aborts the
// study with an error instead of hanging or panicking.
func TestOnlineStudyCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunOnlineStudyCtx(ctx, onlineStudyCfg()); err == nil {
		t.Fatal("cancelled study returned no error")
	}
}

// TestOnlineStudyRewardKinds checks that both live reward signals run end
// to end.
func TestOnlineStudyRewardKinds(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	cfg := onlineStudyCfg()
	cfg.Sim.DurationS = 120
	cfg.Reward = pomdp.RewardBinary
	study, err := RunOnlineStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if study.Arm("online-cold").Report.PricingRounds == 0 {
		t.Fatal("binary-reward study ran no rounds")
	}
}
