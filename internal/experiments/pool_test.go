package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkerPoolRunsAllTasks(t *testing.T) {
	p := NewWorkerPool(3)
	var done [17]atomic.Bool
	if err := p.Run(context.Background(), len(done), func(_ context.Context, i int) error {
		done[i].Store(true)
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range done {
		if !done[i].Load() {
			t.Errorf("task %d never ran", i)
		}
	}
}

func TestWorkerPoolBoundsConcurrency(t *testing.T) {
	const width = 2
	p := NewWorkerPool(width)
	var inFlight, peak atomic.Int64
	err := p.Run(context.Background(), 10, func(_ context.Context, i int) error {
		n := inFlight.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := peak.Load(); got > width {
		t.Errorf("peak concurrency %d exceeds pool width %d", got, width)
	}
}

func TestWorkerPoolReturnsLowestIndexedError(t *testing.T) {
	// Width 1 makes the schedule deterministic: task 0 fails first, the
	// rest are skipped as cancelled, and the root cause must surface.
	p := NewWorkerPool(1)
	errA := errors.New("a")
	err := p.Run(context.Background(), 8, func(_ context.Context, i int) error {
		return fmt.Errorf("task %d: %w", i, errA)
	})
	if !errors.Is(err, errA) || !strings.Contains(err.Error(), "task 0") {
		t.Errorf("err = %v, want task 0 failure", err)
	}
}

func TestWorkerPoolCancellationStopsUnstartedTasks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewWorkerPool(1)
	var ran atomic.Int64
	var once sync.Once
	err := p.Run(ctx, 100, func(ctx context.Context, i int) error {
		ran.Add(1)
		once.Do(cancel)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 100 {
		t.Errorf("all %d tasks ran despite cancellation", n)
	}
}

func TestWorkerPoolRecoversPanics(t *testing.T) {
	p := NewWorkerPool(2)
	err := p.Run(context.Background(), 4, func(_ context.Context, i int) error {
		if i == 2 {
			panic("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want panic converted to error", err)
	}
}

func TestWorkerPoolNestedRunsDoNotDeadlock(t *testing.T) {
	p := NewWorkerPool(2)
	err := p.Run(context.Background(), 4, func(ctx context.Context, i int) error {
		return p.Run(ctx, 4, func(context.Context, int) error { return nil })
	})
	if err != nil {
		t.Fatalf("nested Run: %v", err)
	}
}

func TestWorkerPoolZeroTasks(t *testing.T) {
	if err := NewWorkerPool(0).Run(context.Background(), 0, nil); err != nil {
		t.Fatalf("Run(0 tasks): %v", err)
	}
}
