package baselines

import (
	"fmt"
	"math/rand"

	"vtmig/internal/stackelberg"
)

// QLearning is a tabular ε-greedy Q-learning pricer over a discretized
// price grid. The pricing game is stateless from the MSP's perspective
// (followers best-respond memorylessly), so the table is a single row of
// action values — equivalently a multi-armed bandit with Q-learning
// updates. It is the classic "discretize and learn" comparator for the
// paper's continuous-action PPO agent.
type QLearning struct {
	prices  []float64
	q       []float64
	alpha   float64 // learning rate
	epsilon float64 // exploration probability
	decay   float64 // per-round multiplicative epsilon decay
	rng     *rand.Rand

	lastAction int
}

var _ Policy = (*QLearning)(nil)

// NewQLearning builds a Q-learning pricer with gridN prices spanning
// [lo, hi], learning rate alpha, initial exploration epsilon, and
// per-round epsilon decay (1 = no decay).
func NewQLearning(lo, hi float64, gridN int, alpha, epsilon, decay float64, seed int64) *QLearning {
	if lo >= hi {
		panic(fmt.Sprintf("baselines: qlearning price range inverted [%g, %g]", lo, hi))
	}
	if gridN < 2 {
		panic(fmt.Sprintf("baselines: qlearning needs >= 2 grid points, got %d", gridN))
	}
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("baselines: qlearning alpha %g out of (0, 1]", alpha))
	}
	if epsilon < 0 || epsilon > 1 {
		panic(fmt.Sprintf("baselines: qlearning epsilon %g out of [0, 1]", epsilon))
	}
	if decay <= 0 || decay > 1 {
		panic(fmt.Sprintf("baselines: qlearning decay %g out of (0, 1]", decay))
	}
	q := &QLearning{
		alpha:   alpha,
		epsilon: epsilon,
		decay:   decay,
		rng:     rand.New(rand.NewSource(seed)),
	}
	step := (hi - lo) / float64(gridN-1)
	for i := 0; i < gridN; i++ {
		q.prices = append(q.prices, lo+float64(i)*step)
	}
	q.q = make([]float64, gridN)
	q.lastAction = -1
	return q
}

// Name implements Policy.
func (q *QLearning) Name() string { return "qlearning" }

// Price explores with probability epsilon, otherwise exploits the best
// action value.
func (q *QLearning) Price(int) float64 {
	if q.rng.Float64() < q.epsilon {
		q.lastAction = q.rng.Intn(len(q.prices))
	} else {
		q.lastAction = argmax(q.q)
	}
	q.epsilon *= q.decay
	return q.prices[q.lastAction]
}

// Observe applies the stateless Q update Q(a) += α·(r − Q(a)) with the
// MSP utility as the reward.
func (q *QLearning) Observe(out stackelberg.Equilibrium) {
	if q.lastAction < 0 {
		return
	}
	a := q.lastAction
	q.q[a] += q.alpha * (out.MSPUtility - q.q[a])
}

// Reset clears the table and restores full exploration.
func (q *QLearning) Reset() {
	for i := range q.q {
		q.q[i] = 0
	}
	q.lastAction = -1
}

// BestPrice returns the current greedy price (for inspection).
func (q *QLearning) BestPrice() float64 { return q.prices[argmax(q.q)] }

// argmax returns the index of the largest value (first on ties).
func argmax(xs []float64) int {
	best := 0
	for i, v := range xs[1:] {
		if v > xs[best] {
			best = i + 1
		}
	}
	return best
}
