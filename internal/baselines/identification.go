package baselines

import (
	"fmt"
	"math"

	"vtmig/internal/stackelberg"
)

// Identification is a model-based pricing baseline that exploits the known
// demand structure instead of model-free learning: the aggregate best
// response is Σb(p) = A/p − B with A = Σα_n and B = ΣD_n/e, so observing
// the total demand at two distinct probe prices identifies (A, B) exactly,
// after which the MSP posts the closed-form optimum
// p* = sqrt(C·A/B) (Theorem 2 rewritten in the aggregate parameters).
//
// It quantifies how much of the DRL machinery the *model* already buys:
// under the paper's exact utility model, two probes suffice. Its weakness
// is exactly what motivates learning — any deviation from the assumed
// demand law (opt-outs at high prices, capacity scaling) biases the
// estimate, while PPO keeps tracking realized utility.
type Identification struct {
	cost   float64
	lo, hi float64

	probes    [2]float64 // probe prices
	demands   [2]float64 // observed total demand at each probe
	round     int
	a, b      float64 // identified A, B
	ident     bool
	bestPrice float64
}

var _ Policy = (*Identification)(nil)

// NewIdentification builds the baseline for a price range [lo, hi] and
// unit cost. Probes are placed at 1/3 and 2/3 of the range.
func NewIdentification(lo, hi, cost float64) *Identification {
	if lo >= hi {
		panic(fmt.Sprintf("baselines: identification price range inverted [%g, %g]", lo, hi))
	}
	if cost <= 0 {
		panic(fmt.Sprintf("baselines: identification cost must be positive, got %g", cost))
	}
	return &Identification{
		cost:   cost,
		lo:     lo,
		hi:     hi,
		probes: [2]float64{lo + (hi-lo)/3, lo + 2*(hi-lo)/3},
	}
}

// Name implements Policy.
func (id *Identification) Name() string { return "identification" }

// Price posts the two probes, then the identified optimum forever.
func (id *Identification) Price(int) float64 {
	switch {
	case id.round == 0:
		return id.probes[0]
	case id.round == 1:
		return id.probes[1]
	case id.ident:
		return id.bestPrice
	default:
		// Identification failed (degenerate observations): fall back to
		// the midpoint.
		return (id.lo + id.hi) / 2
	}
}

// Observe records probe outcomes and solves for (A, B) after the second.
func (id *Identification) Observe(out stackelberg.Equilibrium) {
	if id.round < 2 {
		id.demands[id.round] = out.TotalBandwidth
		id.round++
		if id.round == 2 {
			id.identify()
		}
		return
	}
	id.round++
}

// identify solves the 2×2 system b_i = A/p_i − B.
func (id *Identification) identify() {
	p1, p2 := id.probes[0], id.probes[1]
	b1, b2 := id.demands[0], id.demands[1]
	// b1 - b2 = A(1/p1 - 1/p2)  ⇒  A = (b1-b2)/(1/p1 - 1/p2).
	den := 1/p1 - 1/p2
	if den == 0 {
		return
	}
	a := (b1 - b2) / den
	b := a/p1 - b1
	if a <= 0 || b <= 0 {
		// Degenerate (e.g. both demands zero, or capacity scaling
		// flattened the curve): cannot identify.
		return
	}
	id.a, id.b = a, b
	id.bestPrice = clampf(math.Sqrt(id.cost*a/b), id.lo, id.hi)
	id.ident = true
}

// Reset forgets the identified model.
func (id *Identification) Reset() {
	id.round = 0
	id.ident = false
	id.a, id.b, id.bestPrice = 0, 0, 0
	id.demands = [2]float64{}
}

// Identified reports whether the model has been identified, returning the
// aggregate parameter estimates.
func (id *Identification) Identified() (a, b float64, ok bool) {
	return id.a, id.b, id.ident
}

// clampf bounds v to [lo, hi].
func clampf(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
