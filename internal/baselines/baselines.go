// Package baselines implements the comparison pricing schemes of
// Section V: the random scheme (the MSP prices uniformly at random each
// round) and the greedy scheme (the MSP reuses the best price observed in
// past rounds, with ε-exploration), plus a fixed-price scheme and the
// closed-form Stackelberg oracle used as reference lines.
package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"vtmig/internal/stackelberg"
)

// Policy is a pricing strategy for the MSP playing repeated rounds.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Price returns the price to post in the given round (zero-based).
	Price(round int) float64
	// Observe feeds back the realized outcome of the round so adaptive
	// policies can learn. The outcome's slice fields may alias
	// runner-owned scratch valid only for the duration of the call;
	// policies that retain them must copy.
	Observe(outcome stackelberg.Equilibrium)
	// Reset clears any per-episode state.
	Reset()
}

// Random prices uniformly at random in [C, pmax] each round — the paper's
// "random scheme".
type Random struct {
	lo, hi float64
	rng    *rand.Rand
}

var _ Policy = (*Random)(nil)

// NewRandom builds a random policy over [lo, hi].
func NewRandom(lo, hi float64, seed int64) *Random {
	if lo >= hi {
		panic(fmt.Sprintf("baselines: random price range inverted [%g, %g]", lo, hi))
	}
	return &Random{lo: lo, hi: hi, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Policy.
func (r *Random) Name() string { return "random" }

// Price draws uniformly from [lo, hi].
func (r *Random) Price(int) float64 { return r.lo + r.rng.Float64()*(r.hi-r.lo) }

// Observe is a no-op: the random scheme does not learn.
func (r *Random) Observe(stackelberg.Equilibrium) {}

// Reset is a no-op.
func (r *Random) Reset() {}

// Greedy reuses the best price found in past rounds and explores a random
// price with probability epsilon — the paper's "greedy scheme" ("the MSP
// determines the best price by selecting from past game rounds").
type Greedy struct {
	lo, hi  float64
	epsilon float64
	rng     *rand.Rand

	bestPrice   float64
	bestUtility float64
	lastPrice   float64
	seen        bool
}

var _ Policy = (*Greedy)(nil)

// NewGreedy builds a greedy policy over [lo, hi] with exploration rate
// epsilon in [0, 1].
func NewGreedy(lo, hi, epsilon float64, seed int64) *Greedy {
	if lo >= hi {
		panic(fmt.Sprintf("baselines: greedy price range inverted [%g, %g]", lo, hi))
	}
	if epsilon < 0 || epsilon > 1 {
		panic(fmt.Sprintf("baselines: epsilon %g out of [0,1]", epsilon))
	}
	return &Greedy{lo: lo, hi: hi, epsilon: epsilon, rng: rand.New(rand.NewSource(seed)), bestUtility: math.Inf(-1)}
}

// Name implements Policy.
func (g *Greedy) Name() string { return "greedy" }

// Price exploits the best past price, exploring randomly with probability
// epsilon (and always on the first round).
func (g *Greedy) Price(int) float64 {
	if !g.seen || g.rng.Float64() < g.epsilon {
		g.lastPrice = g.lo + g.rng.Float64()*(g.hi-g.lo)
	} else {
		g.lastPrice = g.bestPrice
	}
	return g.lastPrice
}

// Observe records the outcome and keeps the best (price, utility) pair.
func (g *Greedy) Observe(out stackelberg.Equilibrium) {
	if out.MSPUtility > g.bestUtility {
		g.bestUtility = out.MSPUtility
		g.bestPrice = out.Price
	}
	g.seen = true
}

// Reset clears the learned best price.
func (g *Greedy) Reset() {
	g.bestUtility = math.Inf(-1)
	g.bestPrice = 0
	g.seen = false
}

// Fixed posts a constant price every round.
type Fixed struct {
	price float64
	name  string
}

var _ Policy = (*Fixed)(nil)

// NewFixed builds a constant-price policy.
func NewFixed(price float64) *Fixed {
	return &Fixed{price: price, name: fmt.Sprintf("fixed(%.3g)", price)}
}

// Name implements Policy.
func (f *Fixed) Name() string { return f.name }

// Price returns the constant price.
func (f *Fixed) Price(int) float64 { return f.price }

// Observe is a no-op.
func (f *Fixed) Observe(stackelberg.Equilibrium) {}

// Reset is a no-op.
func (f *Fixed) Reset() {}

// Oracle posts the closed-form Stackelberg-equilibrium price computed with
// complete information — the upper reference of Figs. 2–3.
type Oracle struct {
	price float64
}

var _ Policy = (*Oracle)(nil)

// NewOracle solves the game once and caches the equilibrium price.
func NewOracle(g *stackelberg.Game) *Oracle {
	return &Oracle{price: g.Solve().Price}
}

// Name implements Policy.
func (o *Oracle) Name() string { return "stackelberg-oracle" }

// Price returns the equilibrium price.
func (o *Oracle) Price(int) float64 { return o.price }

// Observe is a no-op.
func (o *Oracle) Observe(stackelberg.Equilibrium) {}

// Reset is a no-op.
func (o *Oracle) Reset() {}
