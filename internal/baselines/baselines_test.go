package baselines

import (
	"math"
	"testing"

	"vtmig/internal/mathx"
	"vtmig/internal/stackelberg"
)

func TestRandomPricesWithinRange(t *testing.T) {
	r := NewRandom(5, 50, 1)
	for i := 0; i < 200; i++ {
		p := r.Price(i)
		if p < 5 || p > 50 {
			t.Fatalf("random price %v outside [5, 50]", p)
		}
	}
}

func TestRandomRangeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverted range did not panic")
		}
	}()
	NewRandom(50, 5, 1)
}

func TestGreedyExploitsBestPrice(t *testing.T) {
	g := stackelberg.DefaultGame()
	// With epsilon=0, after observing two rounds the policy must repeat
	// the better one.
	pol := NewGreedy(5, 50, 0, 1)
	pol.Price(0)
	pol.Observe(g.Evaluate(10))
	pol.Price(1)
	pol.Observe(g.Evaluate(25))
	if got := pol.Price(2); got != 25 {
		t.Errorf("greedy price = %v, want 25 (the better observed price)", got)
	}
}

func TestGreedyFirstRoundExplores(t *testing.T) {
	pol := NewGreedy(5, 50, 0, 7)
	p := pol.Price(0)
	if p < 5 || p > 50 {
		t.Errorf("first exploration price %v outside range", p)
	}
}

func TestGreedyResetForgets(t *testing.T) {
	g := stackelberg.DefaultGame()
	pol := NewGreedy(5, 50, 0, 1)
	pol.Observe(g.Evaluate(25))
	pol.Reset()
	// After reset the policy must explore again rather than replay 25.
	// (It can land on 25 by chance, so check the internal state instead.)
	if pol.seen || !math.IsInf(pol.bestUtility, -1) {
		t.Error("Reset did not clear greedy state")
	}
}

func TestGreedyValidation(t *testing.T) {
	for _, tc := range []struct {
		name       string
		lo, hi, ep float64
	}{{"inverted", 50, 5, 0.1}, {"bad epsilon", 5, 50, 1.5}} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			NewGreedy(tc.lo, tc.hi, tc.ep, 1)
		})
	}
}

func TestFixedAndOracle(t *testing.T) {
	g := stackelberg.DefaultGame()
	f := NewFixed(30)
	if f.Price(0) != 30 || f.Price(99) != 30 {
		t.Error("fixed policy must return its price")
	}
	o := NewOracle(g)
	want := g.Solve().Price
	if !mathx.AlmostEqual(o.Price(0), want, 1e-12) {
		t.Errorf("oracle price = %v, want %v", o.Price(0), want)
	}
}

func TestRunEpisodeOracleAchievesEquilibrium(t *testing.T) {
	g := stackelberg.DefaultGame()
	res := RunEpisode(g, NewOracle(g), 10)
	want := g.Solve().MSPUtility
	if !mathx.AlmostEqual(res.BestUtility, want, 1e-9) {
		t.Errorf("oracle best utility = %v, want %v", res.BestUtility, want)
	}
	if !mathx.AlmostEqual(res.MeanUtility, want, 1e-9) {
		t.Errorf("oracle mean utility = %v, want %v", res.MeanUtility, want)
	}
}

func TestRunEpisodeGreedyBeatsRandomOnAverage(t *testing.T) {
	g := stackelberg.DefaultGame()
	var greedyMean, randomMean float64
	const trials = 20
	for s := int64(0); s < trials; s++ {
		greedyMean += RunEpisode(g, NewGreedy(5, 50, 0.1, s), 100).MeanUtility
		randomMean += RunEpisode(g, NewRandom(5, 50, s), 100).MeanUtility
	}
	greedyMean /= trials
	randomMean /= trials
	if greedyMean <= randomMean {
		t.Errorf("greedy mean %v should beat random mean %v", greedyMean, randomMean)
	}
}

func TestRunEpisodeBestNeverBelowMean(t *testing.T) {
	g := stackelberg.DefaultGame()
	res := RunEpisode(g, NewRandom(5, 50, 3), 50)
	if res.BestUtility < res.MeanUtility {
		t.Errorf("best %v < mean %v", res.BestUtility, res.MeanUtility)
	}
	if res.Rounds != 50 {
		t.Errorf("rounds = %d, want 50", res.Rounds)
	}
}

func TestRunEpisodeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rounds=0 did not panic")
		}
	}()
	RunEpisode(stackelberg.DefaultGame(), NewFixed(10), 0)
}

func TestBaselineOrderingMatchesPaper(t *testing.T) {
	// Fig. 3(a): oracle ≥ greedy ≥ random in best achieved utility over a
	// long horizon (statistically).
	g := stackelberg.DefaultGame()
	oracle := RunEpisode(g, NewOracle(g), 100).BestUtility
	var greedy, random float64
	const trials = 20
	for s := int64(0); s < trials; s++ {
		greedy += RunEpisode(g, NewGreedy(5, 50, 0.1, s), 100).MeanUtility
		random += RunEpisode(g, NewRandom(5, 50, s), 100).MeanUtility
	}
	greedy /= trials
	random /= trials
	if !(oracle >= greedy-1e-9) {
		t.Errorf("oracle %v must be ≥ greedy %v", oracle, greedy)
	}
	if !(greedy > random) {
		t.Errorf("greedy mean %v must beat random mean %v", greedy, random)
	}
}

func TestQLearningFindsGoodPrice(t *testing.T) {
	g := stackelberg.DefaultGame()
	// The pricing reward is deterministic, so alpha=1 makes each arm's
	// estimate exact after one visit.
	q := NewQLearning(g.Cost, g.PMax, 46, 1.0, 1.0, 0.995, 1)
	res := RunEpisode(g, q, 2000)
	oracle := g.Solve()
	// After 2000 rounds with decayed exploration, the greedy price must
	// be within one grid step of the optimum.
	gridStep := (g.PMax - g.Cost) / 45
	if math.Abs(q.BestPrice()-oracle.Price) > gridStep+1e-9 {
		t.Errorf("qlearning best price %v, oracle %v (grid step %v)", q.BestPrice(), oracle.Price, gridStep)
	}
	if res.BestUtility < 0.99*oracle.MSPUtility {
		t.Errorf("qlearning best utility %v, oracle %v", res.BestUtility, oracle.MSPUtility)
	}
}

func TestQLearningReset(t *testing.T) {
	g := stackelberg.DefaultGame()
	q := NewQLearning(g.Cost, g.PMax, 10, 0.5, 0.5, 1, 1)
	RunEpisode(g, q, 50)
	q.Reset()
	for i, v := range q.q {
		if v != 0 {
			t.Fatalf("q[%d] = %v after Reset", i, v)
		}
	}
}

func TestQLearningValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"inverted range", func() { NewQLearning(50, 5, 10, 0.1, 0.1, 1, 1) }},
		{"short grid", func() { NewQLearning(5, 50, 1, 0.1, 0.1, 1, 1) }},
		{"bad alpha", func() { NewQLearning(5, 50, 10, 0, 0.1, 1, 1) }},
		{"bad epsilon", func() { NewQLearning(5, 50, 10, 0.1, 2, 1, 1) }},
		{"bad decay", func() { NewQLearning(5, 50, 10, 0.1, 0.1, 0, 1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.f()
		})
	}
}

func TestIdentificationRecoversModel(t *testing.T) {
	g := stackelberg.DefaultGame()
	g.BMax = 0 // no capacity scaling: the demand law is exact
	id := NewIdentification(g.Cost, g.PMax, g.Cost)
	res := RunEpisode(g, id, 10)
	a, b, ok := id.Identified()
	if !ok {
		t.Fatal("model not identified after two probes")
	}
	// True aggregates: A = Σα = 10, B = ΣD/e = 3/38.54.
	e := g.SpectralEfficiency()
	if !mathx.AlmostEqual(a, 10, 1e-6) {
		t.Errorf("identified A = %v, want 10", a)
	}
	if !mathx.AlmostEqual(b, 3/e, 1e-6) {
		t.Errorf("identified B = %v, want %v", b, 3/e)
	}
	// From round 3 on it plays the exact optimum.
	oracle := g.Solve()
	if !mathx.AlmostEqual(res.FinalOutcome.Price, oracle.Price, 1e-6) {
		t.Errorf("identified price %v, oracle %v", res.FinalOutcome.Price, oracle.Price)
	}
}

func TestIdentificationFallbackOnDegenerate(t *testing.T) {
	// A game where both probes land above every VMU's opt-out price:
	// demands are zero and identification must fail gracefully.
	vmus := []stackelberg.VMU{{ID: 0, Alpha: 5, DataSize: 50}}
	g, err := stackelberg.NewGame(vmus, stackelberg.DefaultGame().Channel, 5, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	id := NewIdentification(g.Cost, g.PMax, g.Cost)
	RunEpisode(g, id, 5)
	if _, _, ok := id.Identified(); ok {
		t.Error("degenerate observations must not identify")
	}
	// Fallback price must stay in range.
	p := id.Price(4)
	if p < g.Cost || p > g.PMax {
		t.Errorf("fallback price %v outside range", p)
	}
}

func TestIdentificationReset(t *testing.T) {
	g := stackelberg.DefaultGame()
	g.BMax = 0
	id := NewIdentification(g.Cost, g.PMax, g.Cost)
	RunEpisode(g, id, 5)
	id.Reset()
	if _, _, ok := id.Identified(); ok {
		t.Error("Reset did not clear identification")
	}
	if got := id.Price(0); got != id.probes[0] {
		t.Errorf("first price after Reset = %v, want probe %v", got, id.probes[0])
	}
}

func TestIdentificationValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"inverted", func() { NewIdentification(50, 5, 5) }},
		{"bad cost", func() { NewIdentification(5, 50, 0) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.f()
		})
	}
}
