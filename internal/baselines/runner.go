package baselines

import (
	"fmt"

	"vtmig/internal/mathx"
	"vtmig/internal/stackelberg"
)

// EpisodeResult summarizes one repeated-pricing episode.
type EpisodeResult struct {
	// Policy is the pricing policy's name.
	Policy string
	// Rounds is the number of rounds played.
	Rounds int
	// BestUtility is the highest MSP utility achieved in any round.
	BestUtility float64
	// BestPrice is the price that achieved BestUtility.
	BestPrice float64
	// MeanUtility is the MSP utility averaged over rounds.
	MeanUtility float64
	// FinalOutcome is the last round's full report.
	FinalOutcome stackelberg.Equilibrium
	// BestOutcome is the best round's full report.
	BestOutcome stackelberg.Equilibrium
}

// RunEpisode plays the pricing game for the given number of rounds with a
// policy choosing prices and followers best-responding.
func RunEpisode(g *stackelberg.Game, p Policy, rounds int) EpisodeResult {
	if rounds <= 0 {
		panic(fmt.Sprintf("baselines: rounds must be positive, got %d", rounds))
	}
	p.Reset()
	res := EpisodeResult{Policy: p.Name(), Rounds: rounds}
	utilities := make([]float64, 0, rounds)
	// One scratch serves the whole episode; the retained reports
	// (Best/FinalOutcome) are cloned out of it because the next round's
	// evaluation overwrites the aliased slices.
	var scratch stackelberg.EvalScratch
	for k := 0; k < rounds; k++ {
		price := p.Price(k)
		out := g.EvaluateInto(&scratch, price)
		p.Observe(out)
		utilities = append(utilities, out.MSPUtility)
		if k == 0 || out.MSPUtility > res.BestUtility {
			res.BestUtility = out.MSPUtility
			res.BestPrice = out.Price
			res.BestOutcome = out.Clone()
		}
		res.FinalOutcome = out
	}
	res.FinalOutcome = res.FinalOutcome.Clone()
	res.MeanUtility = mathx.Mean(utilities)
	return res
}
