package rl

import (
	"fmt"
	"math"
	"runtime"
	"testing"
)

// streamTransition is one precomputed external transition for the
// StreamCollector tests: the same fixed stream is replayed into
// differently configured learners, so any weight divergence is the
// learner's, not the stream's.
type streamTransition struct {
	obs, raw            []float64
	logP, reward, value float64
	done                bool
	next                []float64
}

// streamPPOCfg returns a small fast learner configuration for the stream
// tests.
func streamPPOCfg(seed int64) PPOConfig {
	cfg := DefaultPPOConfig()
	cfg.Seed = seed
	cfg.MiniBatch = 8
	cfg.Epochs = 3
	return cfg
}

// makeStream precomputes n transitions with an independent behavior
// policy on the deterministic allocEnv.
func makeStream(t *testing.T, n int) []streamTransition {
	t.Helper()
	env := newAllocEnv(6)
	actor := NewPPO(6, 1, []float64{0}, []float64{1}, streamPPOCfg(11))
	stream := make([]streamTransition, 0, n)
	obs := append([]float64(nil), env.Reset()...)
	for k := 0; k < n; k++ {
		raw, envAct, logP, value := actor.SelectAction(obs)
		next, reward, done := env.Step(envAct)
		tr := streamTransition{
			obs:    obs,
			raw:    append([]float64(nil), raw...),
			logP:   logP,
			reward: reward,
			value:  value,
			done:   done,
			next:   append([]float64(nil), next...),
		}
		stream = append(stream, tr)
		obs = tr.next
		if done {
			obs = append([]float64(nil), env.Reset()...)
		}
	}
	return stream
}

// feedStream replays a fixed stream into a fresh learner with the given
// shard count and returns the final network weights.
func feedStream(t *testing.T, stream []streamTransition, shards int) [][]float64 {
	t.Helper()
	cfg := streamPPOCfg(3)
	cfg.Shards = shards
	agent := NewPPO(len(stream[0].obs), len(stream[0].raw), []float64{0}, []float64{1}, cfg)
	col := NewStreamCollector(agent, 8)
	for _, tr := range stream {
		col.Add(tr.obs, tr.raw, tr.logP, tr.reward, tr.value, tr.done, tr.next)
	}
	last := stream[len(stream)-1]
	col.Flush(last.done, last.next)
	var weights [][]float64
	for _, p := range agent.Params() {
		weights = append(weights, append([]float64(nil), p.Value...))
	}
	return weights
}

// TestStreamCollectorShardBitIdentical pins determinism contract rule 5
// at the collector level: a fixed external transition stream produces
// bit-identical weights for every shard count × GOMAXPROCS combination,
// because the collector adds no ordering of its own and the update reuses
// the rule-3 sharded reduction.
func TestStreamCollectorShardBitIdentical(t *testing.T) {
	stream := makeStream(t, 40)
	ref := feedStream(t, stream, 1)
	for _, shards := range []int{2, 3, 5} {
		for _, gmp := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("shards=%d/gomaxprocs=%d", shards, gmp), func(t *testing.T) {
				prev := runtime.GOMAXPROCS(gmp)
				defer runtime.GOMAXPROCS(prev)
				got := feedStream(t, stream, shards)
				for pi := range ref {
					for i := range ref[pi] {
						if math.Float64bits(ref[pi][i]) != math.Float64bits(got[pi][i]) {
							t.Fatalf("param %d[%d]: %v != serial %v", pi, i, got[pi][i], ref[pi][i])
						}
					}
				}
			})
		}
	}
}

// TestStreamCollectorUpdateCadence pins the |I|-round update schedule and
// the Flush semantics.
func TestStreamCollectorUpdateCadence(t *testing.T) {
	stream := makeStream(t, 25)
	agent := NewPPO(len(stream[0].obs), 1, []float64{0}, []float64{1}, streamPPOCfg(3))
	col := NewStreamCollector(agent, 10)
	for k, tr := range stream {
		stats, ran := col.Add(tr.obs, tr.raw, tr.logP, tr.reward, tr.value, tr.done, tr.next)
		wantRan := (k+1)%10 == 0
		if ran != wantRan {
			t.Fatalf("transition %d: ran=%v, want %v", k, ran, wantRan)
		}
		if ran && stats.Samples == 0 {
			t.Fatalf("transition %d: phase ran with zero samples", k)
		}
	}
	if col.Updates() != 2 || col.Pending() != 5 || col.Total() != 25 {
		t.Fatalf("updates=%d pending=%d total=%d, want 2/5/25", col.Updates(), col.Pending(), col.Total())
	}
	last := stream[len(stream)-1]
	if _, ran := col.Flush(last.done, last.next); !ran {
		t.Fatal("Flush with a partial segment did not run")
	}
	if col.Updates() != 3 || col.Pending() != 0 {
		t.Fatalf("after Flush: updates=%d pending=%d", col.Updates(), col.Pending())
	}
	if _, ran := col.Flush(last.done, last.next); ran {
		t.Fatal("empty Flush ran an update")
	}
	if col.LastStats().Samples == 0 {
		t.Fatal("LastStats not retained")
	}
}

// TestStreamCollectorAllocationFree pins that the steady-state stream
// loop — staging plus periodic updates — does not allocate once the
// arenas and update scratch have grown.
func TestStreamCollectorAllocationFree(t *testing.T) {
	stream := makeStream(t, 16)
	agent := NewPPO(len(stream[0].obs), 1, []float64{0}, []float64{1}, streamPPOCfg(3))
	col := NewStreamCollector(agent, 8)
	feed := func() {
		for _, tr := range stream {
			col.Add(tr.obs, tr.raw, tr.logP, tr.reward, tr.value, tr.done, tr.next)
		}
	}
	feed() // warm-up grows arenas, minibatch scratch, Adam state
	if allocs := testing.AllocsPerRun(5, feed); allocs > 0 {
		t.Fatalf("steady-state stream loop allocates %.1f times per pass", allocs)
	}
}

// TestStreamCollectorValidation pins the constructor contract.
func TestStreamCollectorValidation(t *testing.T) {
	agent := NewPPO(2, 1, []float64{-1}, []float64{1}, streamPPOCfg(1))
	for _, bad := range []int{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("updateEvery=%d accepted", bad)
				}
			}()
			NewStreamCollector(agent, bad)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil agent accepted")
			}
		}()
		NewStreamCollector(nil, 10)
	}()
}
