package rl

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"vtmig/internal/mat"
	"vtmig/internal/mathx"
	"vtmig/internal/nn"
)

// The tests in this file pin the fourth rule of the determinism contract:
// vectorized collection merges independently seeded per-env streams in
// fixed env-index order, so any worker count (and any GOMAXPROCS) is
// bit-identical to serial collection — and a single-env vectorized
// trainer is bit-identical to the classic serial collect loop.

// vecTestEnv is a seeded deterministic environment that mutates its
// observation buffer in place (like the paper's POMDP) and terminates
// after horizon steps. Its RNG runs over a counting source and its
// observation window is fully rewritten by Reset, so it supports the
// SnapshotEnv episode-boundary checkpoint contract.
type vecTestEnv struct {
	rng        *rand.Rand
	src        *mathx.CountingSource
	seed       int64
	obs        []float64
	t, horizon int
}

func newVecTestEnv(obsDim int, seed int64, horizon int) *vecTestEnv {
	src := mathx.NewCountingSource(seed)
	return &vecTestEnv{rng: rand.New(src), src: src, seed: seed, obs: make([]float64, obsDim), horizon: horizon}
}

func (e *vecTestEnv) EnvSnapshot() nn.EnvState {
	return nn.EnvState{RNG: nn.RNGState{Seed: e.seed, Calls: e.src.Calls()}}
}

func (e *vecTestEnv) EnvRestore(st nn.EnvState) error {
	if st.RNG.Seed != e.seed {
		return fmt.Errorf("seed %d, want %d", st.RNG.Seed, e.seed)
	}
	e.src = mathx.NewCountingSourceAt(st.RNG.Seed, st.RNG.Calls)
	e.rng = rand.New(e.src)
	return nil
}

func (e *vecTestEnv) Reset() []float64 {
	e.t = 0
	for i := range e.obs {
		e.obs[i] = e.rng.Float64()
	}
	return e.obs
}

func (e *vecTestEnv) Step(action []float64) ([]float64, float64, bool) {
	e.t++
	for i := range e.obs {
		e.obs[i] = e.rng.Float64()
	}
	return e.obs, action[0] * (0.1 + e.obs[0]*0.01), e.t >= e.horizon
}

func (e *vecTestEnv) ObsDim() int                      { return len(e.obs) }
func (e *vecTestEnv) ActDim() int                      { return 1 }
func (e *vecTestEnv) ActionBounds() (lo, hi []float64) { return []float64{0}, []float64{1} }

// newVecTestSlice builds n envs with staggered horizons so some episodes
// terminate before the trainer's round bound — the live-set compaction
// path runs under every worker count.
func newVecTestSlice(n, obsDim int, seed int64, horizon int) *EnvSlice {
	envs := make([]Env, n)
	for i := range envs {
		h := horizon
		if h > 5 {
			h = horizon - 2*i // staggered early termination
			if h < 3 {
				h = 3
			}
		}
		envs[i] = newVecTestEnv(obsDim, seed+int64(i), h)
	}
	return NewEnvSlice(envs...)
}

// runVecTraining runs a short vectorized training and returns the agent
// and its per-episode returns.
func runVecTraining(envs, workers int, tcfg TrainerConfig, pcfg PPOConfig) (*PPO, []EpisodeStats) {
	vec := newVecTestSlice(envs, 6, 17, tcfg.RoundsPerEpisode+3)
	agent := NewPPO(6, 1, []float64{0}, []float64{1}, pcfg)
	tcfg.CollectWorkers = workers
	trainer := NewVecTrainer(vec, agent, tcfg)
	return agent, trainer.Run()
}

// statsEqualBits reports the first diverging episode between two runs.
func statsEqualBits(a, b []EpisodeStats) (string, bool) {
	if len(a) != len(b) {
		return fmt.Sprintf("episode count %d vs %d", len(a), len(b)), false
	}
	for i := range a {
		if math.Float64bits(a[i].Return) != math.Float64bits(b[i].Return) {
			return fmt.Sprintf("episode %d return %v vs %v", i, a[i].Return, b[i].Return), false
		}
		if a[i].FinalUpdate != b[i].FinalUpdate {
			return fmt.Sprintf("episode %d final update %+v vs %+v", i, a[i].FinalUpdate, b[i].FinalUpdate), false
		}
	}
	return "", true
}

// TestVecCollectWorkerBitIdentical pins the worker-count × GOMAXPROCS
// table: every cell must reproduce the workers=1 (serial collection)
// reference weights and statistics exactly, including with worker counts
// above the host core count.
func TestVecCollectWorkerBitIdentical(t *testing.T) {
	tcfg := TrainerConfig{Episodes: 7, RoundsPerEpisode: 30, UpdateEvery: 10}
	pcfg := DefaultPPOConfig()
	pcfg.Seed = 13

	serial, serialStats := runVecTraining(3, 1, tcfg, pcfg)

	for _, gmp := range []int{1, 2, 4} {
		for _, workers := range []int{1, 2, 3, 7, 16} {
			t.Run(fmt.Sprintf("gomaxprocs=%d/workers=%d", gmp, workers), func(t *testing.T) {
				prev := runtime.GOMAXPROCS(gmp)
				defer runtime.GOMAXPROCS(prev)

				agent, stats := runVecTraining(3, workers, tcfg, pcfg)
				if diff, ok := paramsEqualBits(serial.Params(), agent.Params()); !ok {
					t.Fatalf("weights diverged from serial collection: %s", diff)
				}
				if diff, ok := statsEqualBits(serialStats, stats); !ok {
					t.Fatalf("stats diverged from serial collection: %s", diff)
				}
			})
		}
	}
}

// TestVecAutoWorkersBitIdentical checks the automatic mode (CollectWorkers
// = 0) against the serial reference on an elevated GOMAXPROCS.
func TestVecAutoWorkersBitIdentical(t *testing.T) {
	tcfg := TrainerConfig{Episodes: 4, RoundsPerEpisode: 25, UpdateEvery: 10}
	pcfg := DefaultPPOConfig()
	pcfg.Seed = 3

	serial, serialStats := runVecTraining(4, 1, tcfg, pcfg)

	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	auto, autoStats := runVecTraining(4, 0, tcfg, pcfg)
	if diff, ok := paramsEqualBits(serial.Params(), auto.Params()); !ok {
		t.Fatalf("auto-worker weights diverged from serial collection: %s", diff)
	}
	if diff, ok := statsEqualBits(serialStats, autoStats); !ok {
		t.Fatalf("auto-worker stats diverged: %s", diff)
	}
}

// serialLoop replays the classic serial trainer body (Algorithm 1, lines
// 4–14) with the corrected transition semantics, anchoring what "serial
// collection" means for rule 4: the stored observation is a PRE-step
// snapshot — the s_t the action was selected at — because in-place
// environments mutate their observation slice during Step. (The seed's
// loop passed the aliased slice to Add after the step and therefore
// stored s_{t+1} in the Obs field; PR 5 fixed the collector, and this
// replica pins the corrected behavior.)
func serialLoop(env Env, agent *PPO, cfg TrainerConfig) []float64 {
	buf := NewRollout(cfg.RoundsPerEpisode)
	preObs := make([]float64, env.ObsDim())
	var rets []float64
	for e := 0; e < cfg.Episodes; e++ {
		obs := env.Reset()
		buf.Reset()
		var ret float64
		sinceUpdate := 0
		for k := 0; k < cfg.RoundsPerEpisode; k++ {
			raw, envAct, logP, value := agent.SelectAction(obs)
			copy(preObs, obs)
			next, reward, done := env.Step(envAct)
			terminal := done || k == cfg.RoundsPerEpisode-1
			buf.Add(preObs, raw, logP, reward, value, terminal)
			ret += reward
			obs = next
			sinceUpdate++
			if sinceUpdate >= cfg.UpdateEvery || terminal {
				bootstrap := 0.0
				if !terminal {
					bootstrap = agent.Value(obs)
				}
				buf.ComputeGAE(agent.cfg.Gamma, agent.cfg.Lambda, bootstrap)
				agent.Update(buf)
				sinceUpdate = 0
			}
			if done {
				break
			}
		}
		rets = append(rets, ret)
	}
	return rets
}

// TestSingleEnvTrainerMatchesSerialLoop pins the rule-4 anchor: a
// single-env Trainer (which routes through the VecCollector) reproduces
// the corrected serial collect loop bit for bit — including when |I| does
// not divide K, when |I| exceeds K, and when the episode terminates
// before the round bound.
func TestSingleEnvTrainerMatchesSerialLoop(t *testing.T) {
	for _, tc := range []struct {
		name    string
		cfg     TrainerConfig
		horizon int
	}{
		{name: "dividing", cfg: TrainerConfig{Episodes: 3, RoundsPerEpisode: 40, UpdateEvery: 10}, horizon: 100},
		{name: "non-dividing", cfg: TrainerConfig{Episodes: 3, RoundsPerEpisode: 7, UpdateEvery: 3}, horizon: 100},
		{name: "interval-exceeds-episode", cfg: TrainerConfig{Episodes: 3, RoundsPerEpisode: 10, UpdateEvery: 20}, horizon: 100},
		{name: "early-done", cfg: TrainerConfig{Episodes: 3, RoundsPerEpisode: 40, UpdateEvery: 10}, horizon: 23},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pcfg := DefaultPPOConfig()
			pcfg.Seed = 5

			oldAgent := NewPPO(6, 1, []float64{0}, []float64{1}, pcfg)
			oldRets := serialLoop(newVecTestEnv(6, 21, tc.horizon), oldAgent, tc.cfg)

			newAgent := NewPPO(6, 1, []float64{0}, []float64{1}, pcfg)
			stats := NewTrainer(newVecTestEnv(6, 21, tc.horizon), newAgent, tc.cfg).Run()

			if len(stats) != len(oldRets) {
				t.Fatalf("episode count %d, want %d", len(stats), len(oldRets))
			}
			for i := range oldRets {
				if math.Float64bits(oldRets[i]) != math.Float64bits(stats[i].Return) {
					t.Fatalf("episode %d return %v, serial loop %v", i, stats[i].Return, oldRets[i])
				}
			}
			if diff, ok := paramsEqualBits(oldAgent.Params(), newAgent.Params()); !ok {
				t.Fatalf("weights diverged from serial loop: %s", diff)
			}
		})
	}
}

// idEnv reports a constant observation equal to its id, never terminates
// on its own, and rewards its id — transitions are attributable to their
// env.
type idEnv struct {
	id  float64
	obs []float64
}

func (e *idEnv) Reset() []float64 {
	e.obs[0] = e.id
	return e.obs
}
func (e *idEnv) Step(action []float64) ([]float64, float64, bool) { return e.obs, e.id, false }
func (e *idEnv) ObsDim() int                                      { return 1 }
func (e *idEnv) ActDim() int                                      { return 1 }
func (e *idEnv) ActionBounds() (lo, hi []float64)                 { return []float64{0}, []float64{1} }

// TestVecMergeEnvOrder pins the fixed env-index merge order: with W
// distinguishable envs, every merged segment must lay the per-env
// sub-segments out ascending by env index, each in round order.
func TestVecMergeEnvOrder(t *testing.T) {
	const envs = 3
	es := make([]Env, envs)
	for i := range es {
		es[i] = &idEnv{id: float64(i + 1), obs: make([]float64, 1)}
	}
	agent := NewPPO(1, 1, []float64{0}, []float64{1}, DefaultPPOConfig())
	col := NewVecCollector(NewEnvSlice(es...), agent, 2)
	buf := NewRollout(0)

	col.Begin(envs)
	// two merge segments: rounds {0,1} and rounds {2,3,4}
	col.Step(false)
	col.Step(false)
	col.Merge(buf)
	col.Step(false)
	col.Step(false)
	col.Step(true)
	col.Merge(buf)

	want := make([]float64, 0, 15)
	for _, rounds := range []int{2, 3} {
		for e := 1; e <= envs; e++ {
			for r := 0; r < rounds; r++ {
				want = append(want, float64(e))
			}
		}
	}
	steps := buf.Steps()
	if len(steps) != len(want) {
		t.Fatalf("merged %d transitions, want %d", len(steps), len(want))
	}
	for i, tr := range steps {
		if tr.Obs[0] != want[i] {
			t.Fatalf("transition %d from env %g, want env %g", i, tr.Obs[0], want[i])
		}
		if tr.Done != (i >= 2*envs && (i-2*envs)%3 == 2) {
			t.Fatalf("transition %d terminal flag %v", i, tr.Done)
		}
	}
}

// TestVecGAEBoundaries pins mid-episode GAE segmentation under vectorized
// collection: each merged per-env segment must run the GAE recursion over
// exactly its own transitions, bootstrapped with V(current obs) when the
// segment ends mid-episode and 0 at the terminal round. The expected
// advantages are recomputed from the stored (Reward, Value, Done) fields:
// with no optimization between merges, a mid-episode segment's bootstrap
// equals the Value recorded on the same env's next transition.
func TestVecGAEBoundaries(t *testing.T) {
	const (
		envs = 2
		K    = 7
	)
	pcfg := DefaultPPOConfig()
	pcfg.Seed = 29
	vec := newVecTestSlice(envs, 4, 31, K+5)
	agent := NewPPO(4, 1, []float64{0}, []float64{1}, pcfg)
	col := NewVecCollector(vec, agent, 2)
	buf := NewRollout(0)

	col.Begin(envs)
	segRounds := []int{2, 2, 3} // merge boundaries mid-episode and at the end
	for si, rounds := range segRounds {
		for r := 0; r < rounds; r++ {
			last := si == len(segRounds)-1 && r == rounds-1
			col.Step(last)
		}
		col.Merge(buf)
	}

	steps := buf.Steps()
	if len(steps) != envs*K {
		t.Fatalf("collected %d transitions, want %d", len(steps), envs*K)
	}
	// Segment layout: per merge, env-ascending sub-segments of equal
	// length (no env terminates early here).
	type segment struct{ lo, hi, env int }
	var segs []segment
	idx := 0
	for _, rounds := range segRounds {
		for e := 0; e < envs; e++ {
			segs = append(segs, segment{lo: idx, hi: idx + rounds, env: e})
			idx += rounds
		}
	}
	// nextSegStart[e] maps env e's segment to the index of its next
	// segment's first transition.
	gamma, lambda := pcfg.Gamma, pcfg.Lambda
	for si, sg := range segs {
		bootstrap := 0.0
		if !steps[sg.hi-1].Done {
			next := -1
			for _, s2 := range segs[si+1:] {
				if s2.env == sg.env {
					next = s2.lo
					break
				}
			}
			if next < 0 {
				t.Fatalf("segment %d (env %d) ends mid-episode but has no successor", si, sg.env)
			}
			bootstrap = steps[next].Value
		}
		nextValue, nextAdv := bootstrap, 0.0
		for i := sg.hi - 1; i >= sg.lo; i-- {
			s := steps[i]
			notDone := 1.0
			if s.Done {
				notDone = 0
			}
			delta := s.Reward + gamma*nextValue*notDone - s.Value
			adv := delta + gamma*lambda*notDone*nextAdv
			if math.Float64bits(adv) != math.Float64bits(s.Advantage) {
				t.Fatalf("segment %d (env %d) transition %d: advantage %v, want %v",
					si, sg.env, i, s.Advantage, adv)
			}
			if want := adv + s.Value; math.Float64bits(want) != math.Float64bits(s.Return) {
				t.Fatalf("segment %d transition %d: return %v, want %v", si, i, s.Return, want)
			}
			nextValue, nextAdv = s.Value, adv
		}
	}
}

// TestVecCollectAllocationFree locks in the zero-allocation steady state
// of vectorized collection: after a warm-up block has grown the staging
// buffers, matrices, and worker pool, a full collect block (Begin, steps,
// merges) must not touch the heap — under serial and parallel stepping.
func TestVecCollectAllocationFree(t *testing.T) {
	for _, workers := range []int{1, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			vec := newVecTestSlice(3, 6, 43, 200)
			agent := NewPPO(6, 1, []float64{0}, []float64{1}, DefaultPPOConfig())
			col := NewVecCollector(vec, agent, workers)
			buf := NewRollout(0)

			block := func() {
				buf.Reset()
				col.Begin(3)
				for k := 0; k < 20; k++ {
					col.Step(k == 19)
					if (k+1)%5 == 0 {
						col.Merge(buf)
					}
				}
			}
			block() // warm-up grows scratch
			if n := testing.AllocsPerRun(10, block); n != 0 {
				t.Errorf("vectorized collection allocates %v times per block, want 0 in steady state", n)
			}
		})
	}
}

// TestSelectActionBatchMatchesSerial pins the batched action sampler: row
// r must be bit-identical to a serial SelectAction call sequence on the
// same observations — same forwards, same RNG stream.
func TestSelectActionBatchMatchesSerial(t *testing.T) {
	pcfg := DefaultPPOConfig()
	pcfg.Seed = 77
	serial := NewPPO(5, 2, []float64{0, -1}, []float64{1, 1}, pcfg)
	batched := NewPPO(5, 2, []float64{0, -1}, []float64{1, 1}, pcfg)

	rng := rand.New(rand.NewSource(8))
	const rows = 9
	obs := mat.New(rows, 5)
	obs.Randomize(rng, 1)

	var raw, envAct mat.Matrix
	logP := make([]float64, rows)
	values := make([]float64, rows)
	batched.SelectActionBatch(obs, &raw, &envAct, logP, values)

	for r := 0; r < rows; r++ {
		sRaw, sEnv, sLogP, sV := serial.SelectAction(obs.Row(r))
		for d := 0; d < 2; d++ {
			if math.Float64bits(sRaw[d]) != math.Float64bits(raw.At(r, d)) {
				t.Fatalf("row %d raw[%d]: %v vs %v", r, d, raw.At(r, d), sRaw[d])
			}
			if math.Float64bits(sEnv[d]) != math.Float64bits(envAct.At(r, d)) {
				t.Fatalf("row %d env[%d]: %v vs %v", r, d, envAct.At(r, d), sEnv[d])
			}
		}
		if math.Float64bits(sLogP) != math.Float64bits(logP[r]) {
			t.Fatalf("row %d logP: %v vs %v", r, logP[r], sLogP)
		}
		if math.Float64bits(sV) != math.Float64bits(values[r]) {
			t.Fatalf("row %d value: %v vs %v", r, values[r], sV)
		}
	}

	if n := testing.AllocsPerRun(20, func() {
		batched.SelectActionBatch(obs, &raw, &envAct, logP, values)
	}); n != 0 {
		t.Errorf("SelectActionBatch allocates %v times per call, want 0 once warm", n)
	}
}

// TestSelectActionWithMeanMatchesPair pins the combined readout against
// the MeanAction + SelectAction pair it replaces: same mean, same sample,
// same RNG stream, no allocation once warm.
func TestSelectActionWithMeanMatchesPair(t *testing.T) {
	pcfg := DefaultPPOConfig()
	pcfg.Seed = 19
	pair := NewPPO(4, 1, []float64{2}, []float64{9}, pcfg)
	comb := NewPPO(4, 1, []float64{2}, []float64{9}, pcfg)

	rng := rand.New(rand.NewSource(6))
	obs := make([]float64, 4)
	for step := 0; step < 5; step++ {
		for i := range obs {
			obs[i] = rng.Float64()
		}
		wantMean := append([]float64(nil), pair.MeanAction(obs)...)
		wantRaw, wantEnv, wantLogP, wantV := pair.SelectAction(obs)

		raw, env, logP, v, meanEnv := comb.SelectActionWithMean(obs)
		if math.Float64bits(meanEnv[0]) != math.Float64bits(wantMean[0]) {
			t.Fatalf("step %d mean: %v vs %v", step, meanEnv[0], wantMean[0])
		}
		if math.Float64bits(raw[0]) != math.Float64bits(wantRaw[0]) ||
			math.Float64bits(env[0]) != math.Float64bits(wantEnv[0]) ||
			math.Float64bits(logP) != math.Float64bits(wantLogP) ||
			math.Float64bits(v) != math.Float64bits(wantV) {
			t.Fatalf("step %d sample diverged from SelectAction", step)
		}
	}
	if n := testing.AllocsPerRun(20, func() { comb.SelectActionWithMean(obs) }); n != 0 {
		t.Errorf("SelectActionWithMean allocates %v times per call, want 0 once warm", n)
	}
}

func TestSelectActionBatchLengthMismatchPanics(t *testing.T) {
	agent := NewPPO(3, 1, []float64{0}, []float64{1}, DefaultPPOConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("short logP/values did not panic")
		}
	}()
	var raw, envAct mat.Matrix
	agent.SelectActionBatch(mat.New(4, 3), &raw, &envAct, make([]float64, 3), make([]float64, 4))
}

// TestEnvSliceValidation pins the EnvSlice construction contract.
func TestEnvSliceValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("empty", func() { NewEnvSlice() })
	mustPanic("dim mismatch", func() {
		NewEnvSlice(newVecTestEnv(4, 1, 10), newVecTestEnv(5, 1, 10))
	})

	vec := newVecTestSlice(3, 4, 1, 10)
	if vec.NumEnvs() != 3 || vec.ObsDim() != 4 || vec.ActDim() != 1 {
		t.Fatalf("EnvSlice shape: envs=%d obs=%d act=%d", vec.NumEnvs(), vec.ObsDim(), vec.ActDim())
	}
	lo, hi := vec.ActionBounds()
	if lo[0] != 0 || hi[0] != 1 {
		t.Fatalf("EnvSlice bounds [%g, %g]", lo[0], hi[0])
	}
	if vec.EnvAt(2) == nil {
		t.Fatal("EnvAt(2) nil")
	}
}

// TestTrainerOnEpisodeEarlyStop pins the early-stop contract under serial
// and vectorized collection: serial training stops immediately after the
// rejecting episode; vectorized training stops at the end of its episode
// block.
func TestTrainerOnEpisodeEarlyStop(t *testing.T) {
	tcfg := TrainerConfig{Episodes: 9, RoundsPerEpisode: 12, UpdateEvery: 6}
	pcfg := DefaultPPOConfig()
	pcfg.Seed = 2

	t.Run("serial", func(t *testing.T) {
		agent := NewPPO(6, 1, []float64{0}, []float64{1}, pcfg)
		trainer := NewTrainer(newVecTestEnv(6, 3, 100), agent, tcfg)
		trainer.OnEpisode = func(s EpisodeStats) bool { return s.Episode < 2 }
		stats := trainer.Run()
		if len(stats) != 3 {
			t.Fatalf("serial early stop ran %d episodes, want 3", len(stats))
		}
	})

	t.Run("vectorized", func(t *testing.T) {
		agent := NewPPO(6, 1, []float64{0}, []float64{1}, pcfg)
		trainer := NewVecTrainer(newVecTestSlice(4, 6, 3, 100), agent, tcfg)
		trainer.OnEpisode = func(s EpisodeStats) bool { return s.Episode != 1 }
		stats := trainer.Run()
		if len(stats) != 4 {
			t.Fatalf("vectorized early stop ran %d episodes, want 4 (one block)", len(stats))
		}
		for i, s := range stats {
			if s.Episode != i {
				t.Fatalf("episode %d numbered %d", i, s.Episode)
			}
		}
	})
}

// TestVecTrainerEpisodeCountRemainder checks that a final partial block
// (Episodes not a multiple of NumEnvs) runs exactly the remaining
// episodes.
func TestVecTrainerEpisodeCountRemainder(t *testing.T) {
	tcfg := TrainerConfig{Episodes: 5, RoundsPerEpisode: 8, UpdateEvery: 4}
	pcfg := DefaultPPOConfig()
	pcfg.Seed = 6
	agent := NewPPO(6, 1, []float64{0}, []float64{1}, pcfg)
	stats := NewVecTrainer(newVecTestSlice(3, 6, 11, 100), agent, tcfg).Run()
	if len(stats) != 5 {
		t.Fatalf("ran %d episodes, want 5", len(stats))
	}
	for i, s := range stats {
		if s.Episode != i {
			t.Fatalf("episode %d numbered %d", i, s.Episode)
		}
		if s.MeanReward != s.Return/8 {
			t.Fatalf("episode %d mean reward %v, return %v", i, s.MeanReward, s.Return)
		}
	}
}
