package rl

import (
	"math/rand"
	"testing"
)

// The tests in this file lock in the zero-allocation steady state of the
// training hot path: after a warm-up pass has grown every scratch buffer
// to its final size, action selection, rollout collection, GAE, and the
// full PPO optimization phase must not touch the heap again.

// allocEnv is a trivial deterministic environment for allocation tests —
// the real pomdp env calls into the Stackelberg solver, whose report
// structs would dominate the measurement.
type allocEnv struct {
	rng *rand.Rand
	obs []float64
	t   int
}

func newAllocEnv(obsDim int) *allocEnv {
	return &allocEnv{rng: rand.New(rand.NewSource(9)), obs: make([]float64, obsDim)}
}

func (e *allocEnv) Reset() []float64 {
	e.t = 0
	for i := range e.obs {
		e.obs[i] = e.rng.Float64()
	}
	return e.obs
}

func (e *allocEnv) Step(action []float64) ([]float64, float64, bool) {
	e.t++
	for i := range e.obs {
		e.obs[i] = e.rng.Float64()
	}
	return e.obs, action[0] * 0.1, e.t >= 100
}

// newAllocAgent builds a paper-sized learner plus a filled rollout buffer.
func newAllocAgent(tb testing.TB) (*PPO, *Rollout, *allocEnv) {
	return newAllocAgentCfg(tb, DefaultPPOConfig())
}

// newAllocAgentCfg is newAllocAgent with an explicit configuration.
func newAllocAgentCfg(tb testing.TB, cfg PPOConfig) (*PPO, *Rollout, *allocEnv) {
	tb.Helper()
	env := newAllocEnv(12)
	agent := NewPPO(12, 1, []float64{0}, []float64{1}, cfg)
	buf := NewRollout(100)
	obs := env.Reset()
	for k := 0; k < 100; k++ {
		raw, envAct, logP, value := agent.SelectAction(obs)
		next, reward, done := env.Step(envAct)
		buf.Add(obs, raw, logP, reward, value, done)
		obs = next
		if done {
			obs = env.Reset()
		}
	}
	buf.ComputeGAE(0.95, 0.95, 0)
	return agent, buf, env
}

func TestSelectActionAllocationFree(t *testing.T) {
	agent, _, env := newAllocAgent(t)
	obs := env.Reset()
	if n := testing.AllocsPerRun(50, func() { agent.SelectAction(obs) }); n != 0 {
		t.Errorf("SelectAction allocates %v times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { agent.MeanAction(obs) }); n != 0 {
		t.Errorf("MeanAction allocates %v times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() { agent.Value(obs) }); n != 0 {
		t.Errorf("Value allocates %v times per call, want 0", n)
	}
}

func TestUpdateAllocationFree(t *testing.T) {
	agent, buf, _ := newAllocAgent(t)
	agent.Update(buf) // warm-up: grows minibatch scratch, Adam state
	if n := testing.AllocsPerRun(10, func() { agent.Update(buf) }); n != 0 {
		t.Errorf("PPO Update allocates %v times per call, want 0 in steady state", n)
	}
}

// TestUpdateShardedAllocationFree locks in that the sharded update path
// stays allocation-free after warm-up: the worker clones and their shard
// caches are created on the first sharded minibatch and reused, and the
// per-update goroutine fan-out goes through pre-bound function values, so
// no closure is built per spawn.
func TestUpdateShardedAllocationFree(t *testing.T) {
	for _, shards := range []int{2, 4} {
		cfg := DefaultPPOConfig()
		cfg.Shards = shards
		agent, buf, _ := newAllocAgentCfg(t, cfg)
		agent.Update(buf) // warm-up: grows workers, shard caches, Adam state
		if n := testing.AllocsPerRun(10, func() { agent.Update(buf) }); n != 0 {
			t.Errorf("sharded (S=%d) PPO Update allocates %v times per call, want 0 in steady state", shards, n)
		}
	}
}

func TestRolloutCollectionAllocationFree(t *testing.T) {
	agent, buf, env := newAllocAgent(t)
	// One full collect cycle per run; the arenas were grown by the warm-up
	// fill inside newAllocAgent, so Reset+Add must reuse them.
	if n := testing.AllocsPerRun(10, func() {
		buf.Reset()
		obs := env.Reset()
		for k := 0; k < 100; k++ {
			raw, envAct, logP, value := agent.SelectAction(obs)
			next, reward, done := env.Step(envAct)
			buf.Add(obs, raw, logP, reward, value, done)
			obs = next
			if done {
				obs = env.Reset()
			}
		}
		buf.ComputeGAE(0.95, 0.95, 0)
	}); n != 0 {
		t.Errorf("rollout collection allocates %v times per cycle, want 0 in steady state", n)
	}
}
