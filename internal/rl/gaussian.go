package rl

import (
	"math"
	"math/rand"
)

// log(2π), the normalization constant of the Gaussian log-density.
const log2Pi = 1.8378770664093453

// gaussianSample draws a ~ N(mean, exp(logStd)²) element-wise.
func gaussianSample(rng *rand.Rand, mean, logStd, dst []float64) []float64 {
	for i := range mean {
		dst[i] = mean[i] + math.Exp(logStd[i])*rng.NormFloat64()
	}
	return dst
}

// gaussianLogProb returns the log-density of action under the diagonal
// Gaussian N(mean, exp(logStd)²).
func gaussianLogProb(action, mean, logStd []float64) float64 {
	var lp float64
	for i := range mean {
		std := math.Exp(logStd[i])
		z := (action[i] - mean[i]) / std
		lp += -0.5*z*z - logStd[i] - 0.5*log2Pi
	}
	return lp
}

// gaussianLogProbGrads computes the gradient of the log-density with
// respect to the mean (into dMean) and the log-std (into dLogStd).
//
//	∂logp/∂μᵢ       = (aᵢ-μᵢ)/σᵢ²
//	∂logp/∂logσᵢ    = ((aᵢ-μᵢ)/σᵢ)² - 1
func gaussianLogProbGrads(action, mean, logStd, dMean, dLogStd []float64) {
	for i := range mean {
		std := math.Exp(logStd[i])
		z := (action[i] - mean[i]) / std
		dMean[i] = z / std
		dLogStd[i] = z*z - 1
	}
}

// gaussianEntropy returns the differential entropy of the diagonal
// Gaussian: Σᵢ (logσᵢ + ½log(2πe)).
func gaussianEntropy(logStd []float64) float64 {
	var h float64
	for _, ls := range logStd {
		h += ls + 0.5*(log2Pi+1)
	}
	return h
}
