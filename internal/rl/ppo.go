package rl

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"vtmig/internal/mat"
	"vtmig/internal/mathx"
	"vtmig/internal/nn"
)

// PPOConfig collects the hyper-parameters of the PPO learner. The defaults
// returned by DefaultPPOConfig match Section V of the paper where the paper
// specifies a value, and standard PPO practice elsewhere.
type PPOConfig struct {
	// Gamma is the reward discount factor γ ∈ [0, 1].
	Gamma float64
	// Lambda is the GAE smoothing factor λ ∈ [0, 1].
	Lambda float64
	// ClipEps is the PPO clipping radius ε of Eq. (19).
	ClipEps float64
	// ValueCoef is the value-loss coefficient c of Eq. (14).
	ValueCoef float64
	// EntropyCoef weights an optional entropy bonus (0 disables; the paper
	// does not use one).
	EntropyCoef float64
	// LR is the Adam learning rate (the paper uses 1e-5; our default is
	// larger because we normalize advantages).
	LR float64
	// MaxGradNorm bounds the global gradient norm per minibatch
	// (<= 0 disables clipping).
	MaxGradNorm float64
	// Epochs is M, the number of update epochs per optimization phase.
	Epochs int
	// MiniBatch is |I|, the minibatch size.
	MiniBatch int
	// NormalizeAdv enables advantage normalization per update phase.
	NormalizeAdv bool
	// FullEpochs switches from the paper's Algorithm 1 (each of the M
	// iterations samples one random minibatch of size |I| from the buffer)
	// to standard PPO (each of the M epochs sweeps the whole buffer in
	// shuffled minibatches).
	FullEpochs bool
	// Hidden lists hidden-layer widths (the paper: two layers of 64).
	Hidden []int
	// Activation is the hidden nonlinearity.
	Activation nn.Activation
	// InitLogStd seeds the Gaussian exploration log-scale.
	InitLogStd float64
	// MinLogStd floors the log-scale so exploration never collapses to
	// exactly zero during training.
	MinLogStd float64
	// Shards is the number of minibatch shards used for parallel gradient
	// accumulation during Update. Each shard runs the per-row forward/
	// backward work on its own worker over a contiguous row range; the
	// cross-row gradient sums are then reduced serially in fixed shard
	// order, so every shard count produces weights bit-identical to the
	// serial pass regardless of GOMAXPROCS (the third rule of the
	// determinism contract). 0 (the default) selects automatically:
	// min(GOMAXPROCS, 4) shards, falling back to serial when the
	// minibatch is too small to amortize the fan-out. 1 forces the serial
	// path.
	Shards int
	// Seed drives weight initialization and action sampling.
	Seed int64
}

// DefaultPPOConfig returns the configuration used throughout the
// reproduction.
func DefaultPPOConfig() PPOConfig {
	return PPOConfig{
		Gamma:        0.95,
		Lambda:       0.95,
		ClipEps:      0.2,
		ValueCoef:    0.5,
		EntropyCoef:  0.0,
		LR:           3e-4,
		MaxGradNorm:  0.5,
		Epochs:       10,
		MiniBatch:    20,
		NormalizeAdv: true,
		Hidden:       []int{64, 64},
		Activation:   nn.ActTanh,
		InitLogStd:   -0.5,
		MinLogStd:    -4,
		Seed:         1,
	}
}

// Fingerprint pins the learner hyper-parameters that determine the
// training stream bit for bit, normalizing the pure throughput knob
// (Shards) and the seed (checkpoints carry the seed separately in their
// RNG states). PPO.Snapshot embeds it in the checkpoint metadata and
// every full Restore checks it, so a checkpoint cannot silently continue
// under different hyper-parameters (e.g. another learning rate applied
// to restored Adam moments).
func (c PPOConfig) Fingerprint() string {
	c.Shards = 0
	c.Seed = 0
	return fmt.Sprintf("ppo-v1|%+v", c)
}

// LRFromFingerprint extracts the Adam learning rate recorded in a
// PPOConfig fingerprint (Checkpoint.Meta.PPO), so tooling can rebuild a
// matching learner from a full checkpoint without the user repeating the
// training flags. It returns false when the string carries no parseable
// LR token (e.g. a legacy or foreign fingerprint).
func LRFromFingerprint(fp string) (float64, bool) {
	const key = " LR:"
	i := strings.Index(fp, key)
	if i < 0 {
		return 0, false
	}
	rest := fp[i+len(key):]
	if j := strings.IndexAny(rest, " }"); j >= 0 {
		rest = rest[:j]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil || !(v > 0) {
		return 0, false
	}
	return v, true
}

// validate panics on nonsensical settings; every violation is a
// programming error in the caller.
func (c PPOConfig) validate() {
	if c.Epochs <= 0 || c.MiniBatch <= 0 {
		panic(fmt.Sprintf("rl: PPO Epochs=%d MiniBatch=%d must be positive", c.Epochs, c.MiniBatch))
	}
	if c.ClipEps <= 0 || c.ClipEps >= 1 {
		panic(fmt.Sprintf("rl: PPO ClipEps=%g must be in (0,1)", c.ClipEps))
	}
	if c.LR <= 0 {
		panic(fmt.Sprintf("rl: PPO LR=%g must be positive", c.LR))
	}
	if c.Shards < 0 {
		panic(fmt.Sprintf("rl: PPO Shards=%d must be non-negative", c.Shards))
	}
}

// PPO is the proximal-policy-optimization learner of Section IV. It owns
// the actor–critic network, the optimizer, and the action-sampling RNG.
//
// The policy operates in a normalized action space: the Gaussian lives in
// [-1, 1] per dimension (so a zero-initialized mean starts at the center
// of the environment's action interval and the exploration scale is
// interval-relative), and actions are affinely mapped to [lo, hi] before
// being handed to the environment. Rollout buffers store the raw
// normalized samples.
type PPO struct {
	cfg PPOConfig
	net *ActorCritic
	opt *nn.Adam
	// rng draws exclusively from src, a counting source, so the whole
	// policy RNG stream — weight initialization, action sampling,
	// minibatch shuffles — is checkpointable as a (seed, calls) pair.
	rng *rand.Rand
	src *mathx.CountingSource
	// rngSeed is the seed src started from: cfg.Seed at construction,
	// the checkpointed seed after a Restore.
	rngSeed int64

	actLo, actHi []float64

	// scratch reused across calls; the steady-state training loop is
	// allocation-free.
	sample     []float64
	rawBuf     []float64
	envBuf     []float64
	meanEnvBuf []float64
	idx        []int
	obsB       mat.Matrix // minibatch×obsDim gather buffer
	dMeanB     mat.Matrix // minibatch×actDim
	dLogStdB   mat.Matrix
	dValueB    []float64

	// sharded-update machinery (see shard.go): per-shard workers created
	// lazily on the first sharded minibatch and reused across updates,
	// plus per-row loss slots the master reduces row-ascending so sharded
	// statistics match the serial pass bit for bit.
	workers       []*ppoWorker
	shardWG       sync.WaitGroup
	rowPolicyLoss []float64
	rowValueLoss  []float64
	rowEntropy    []float64
	rowClipped    []float64
}

// NewPPO builds a PPO learner for an environment with the given
// observation/action dimensions and action bounds.
func NewPPO(obsDim, actDim int, actLo, actHi []float64, cfg PPOConfig) *PPO {
	cfg.validate()
	if len(actLo) != actDim || len(actHi) != actDim {
		panic(fmt.Sprintf("rl: action bounds length %d/%d, want %d", len(actLo), len(actHi), actDim))
	}
	for i := range actLo {
		if actLo[i] >= actHi[i] {
			panic(fmt.Sprintf("rl: action bound %d inverted: [%g, %g]", i, actLo[i], actHi[i]))
		}
	}
	src := mathx.NewCountingSource(cfg.Seed)
	rng := rand.New(src)
	return &PPO{
		cfg:     cfg,
		net:     NewActorCritic(obsDim, actDim, cfg.Hidden, cfg.Activation, cfg.InitLogStd, rng),
		opt:     nn.NewAdam(cfg.LR),
		rng:     rng,
		src:     src,
		rngSeed: cfg.Seed,
		actLo:   append([]float64(nil), actLo...),
		actHi:   append([]float64(nil), actHi...),
		sample:  make([]float64, actDim),
		rawBuf:  make([]float64, actDim),
		envBuf:  make([]float64, actDim),
	}
}

// Config returns the learner's configuration.
func (p *PPO) Config() PPOConfig { return p.cfg }

// ObsDim returns the observation dimension the network was built for.
func (p *PPO) ObsDim() int { return p.net.ObsDim() }

// ActDim returns the action dimension the network was built for.
func (p *PPO) ActDim() int { return p.net.ActDim() }

// Params exposes the network parameters (for checkpointing).
func (p *PPO) Params() []*nn.Param { return p.net.Params() }

// Snapshot captures the learner's complete training state as a versioned
// checkpoint: parameter values, the per-parameter Adam moments and step
// count, and the policy RNG stream position. A learner restored from it
// continues training bit-identically to one that never stopped
// (determinism contract rule 6). Trainer.Snapshot adds the environment
// streams and training metadata on top.
func (p *PPO) Snapshot() (*nn.Checkpoint, error) {
	ck, err := nn.Snapshot(p.net.Params())
	if err != nil {
		return nil, err
	}
	if ck.Opt, err = p.opt.StateSnapshot(p.net.Params()); err != nil {
		return nil, err
	}
	ck.RNG = &nn.RNGState{Seed: p.rngSeed, Calls: p.src.Calls(), State: p.src.StateSnapshot()}
	ck.Meta = &nn.TrainMeta{PPO: p.cfg.Fingerprint()}
	return ck, nil
}

// Restore replaces the learner's full training state with a checkpointed
// one. The checkpoint must carry the optimizer and RNG sections (use
// RestoreWeights for a params-only warm start) and must match the
// network's architecture exactly — unknown, missing, or mis-sized entries
// are rejected before anything is applied. The RNG stream continues the
// snapshotted stream exactly: version-2 checkpoints carry the captured
// generator state and restore in constant time; older ones replay the
// (seed, calls) pair.
func (p *PPO) Restore(ck *nn.Checkpoint) error {
	if ck == nil {
		return fmt.Errorf("rl: nil checkpoint")
	}
	if err := ck.Validate(); err != nil {
		return err
	}
	if ck.Opt == nil || ck.RNG == nil {
		return fmt.Errorf("rl: checkpoint lacks optimizer/RNG state (weights-only?); use RestoreWeights to warm-start parameters alone")
	}
	if ck.Meta != nil && ck.Meta.PPO != "" && ck.Meta.PPO != p.cfg.Fingerprint() {
		return fmt.Errorf("rl: checkpoint was trained under different learner hyper-parameters\n  checkpoint: %s\n  learner:    %s", ck.Meta.PPO, p.cfg.Fingerprint())
	}
	// Validate the optimizer section against the live parameters before
	// touching them, so a failed restore leaves the learner unchanged.
	if err := p.opt.RestoreState(p.net.Params(), ck.Opt); err != nil {
		return err
	}
	if err := ck.Restore(p.net.Params()); err != nil {
		return err
	}
	src, err := mathx.NewCountingSourceFromState(ck.RNG.Seed, ck.RNG.Calls, ck.RNG.State)
	if err != nil {
		return fmt.Errorf("rl: restoring policy RNG: %w", err)
	}
	p.rngSeed = ck.RNG.Seed
	p.src = src
	p.rng = rand.New(p.src)
	return nil
}

// RestoreWeights applies only the checkpoint's parameter values — a
// deployment warm start that keeps the learner's own optimizer state and
// RNG stream. Resuming training from it is NOT bit-identical to continued
// training; use Restore with a full checkpoint for that.
func (p *PPO) RestoreWeights(ck *nn.Checkpoint) error {
	if ck == nil {
		return fmt.Errorf("rl: nil checkpoint")
	}
	return ck.Restore(p.net.Params())
}

// Clone returns an independent learner in exactly the receiver's training
// state — same weights, optimizer moments, and RNG stream position — via
// an in-memory Snapshot/Restore round trip. The clone shares nothing
// mutable with the receiver, so e.g. a frozen deployment and a continuing
// learner can fork from one trained agent.
func (p *PPO) Clone() (*PPO, error) {
	ck, err := p.Snapshot()
	if err != nil {
		return nil, err
	}
	q := NewPPO(p.net.ObsDim(), p.net.ActDim(), p.actLo, p.actHi, p.cfg)
	if err := q.Restore(ck); err != nil {
		return nil, err
	}
	return q, nil
}

// Denormalize maps a raw normalized action (clamped to [-1, 1]) onto the
// environment's action interval. The result is freshly allocated; the hot
// path uses denormalizeInto instead.
func (p *PPO) Denormalize(raw []float64) []float64 {
	return p.denormalizeInto(make([]float64, len(raw)), raw)
}

// denormalizeInto writes the denormalized form of raw into dst and
// returns dst.
func (p *PPO) denormalizeInto(dst, raw []float64) []float64 {
	for i := range raw {
		z := mathx.Clamp(raw[i], -1, 1)
		dst[i] = p.actLo[i] + (z+1)/2*(p.actHi[i]-p.actLo[i])
	}
	return dst
}

// SelectAction samples an action from the current policy at obs. It
// returns the raw normalized Gaussian sample (stored in the rollout; its
// log-prob is logProb), the environment action (the denormalized,
// bounds-respecting form), and the value estimate V(obs). The returned
// slices alias learner-owned scratch overwritten by the next SelectAction
// or MeanAction call; callers that retain them must copy (Rollout.Add
// already does).
func (p *PPO) SelectAction(obs []float64) (raw, env []float64, logProb, value float64) {
	mean, logStd, v := p.net.Forward(obs)
	gaussianSample(p.rng, mean, logStd, p.sample)
	copy(p.rawBuf, p.sample)
	logProb = gaussianLogProb(p.rawBuf, mean, logStd)
	return p.rawBuf, p.denormalizeInto(p.envBuf, p.rawBuf), logProb, v
}

// SelectActionWithMean is SelectAction plus the deterministic (mean)
// environment action of the same forward pass, for deployment readouts
// that act on the mean while driving their belief state with the
// stochastic sample (e.g. the simulator's DRL pricer) — one forward
// instead of a SelectAction/MeanAction pair. All returned slices alias
// learner-owned scratch overwritten by the next action-selection call.
func (p *PPO) SelectActionWithMean(obs []float64) (raw, env []float64, logP, value float64, meanEnv []float64) {
	mean, logStd, v := p.net.Forward(obs)
	p.meanEnvBuf = growSlice(p.meanEnvBuf, len(mean))
	p.denormalizeInto(p.meanEnvBuf, mean)
	gaussianSample(p.rng, mean, logStd, p.sample)
	copy(p.rawBuf, p.sample)
	logP = gaussianLogProb(p.rawBuf, mean, logStd)
	return p.rawBuf, p.denormalizeInto(p.envBuf, p.rawBuf), logP, v, p.meanEnvBuf
}

// SelectActionBatch samples one stochastic action per observation row in
// a single batched forward pass — the collection-phase counterpart of the
// batched minibatch update. Row r of raw/envAct and element r of
// logP/values are bit-identical to a serial SelectAction on obs.Row(r):
// the forward pass goes through the batched kernels (whose rows reproduce
// the sample-at-a-time pass bitwise, contract rule 1) and the sampler
// consumes the learner's RNG strictly row-ascending, so the stream
// matches the per-row call sequence exactly regardless of how callers
// later fan the sampled actions out across workers (contract rule 4).
//
// raw and envAct are resized to obs.Rows×ActDim; logP and values must
// have length obs.Rows.
func (p *PPO) SelectActionBatch(obs, raw, envAct *mat.Matrix, logP, values []float64) {
	rows := obs.Rows
	if len(logP) != rows || len(values) != rows {
		panic(fmt.Sprintf("rl: SelectActionBatch logP/values lengths %d/%d, want %d",
			len(logP), len(values), rows))
	}
	actDim := p.net.ActDim()
	raw.Resize(rows, actDim)
	envAct.Resize(rows, actDim)
	means, logStd, vals := p.net.ForwardBatch(obs)
	copy(values, vals)
	for r := 0; r < rows; r++ {
		rawR := raw.Row(r)
		gaussianSample(p.rng, means.Row(r), logStd, rawR)
		logP[r] = gaussianLogProb(rawR, means.Row(r), logStd)
		p.denormalizeInto(envAct.Row(r), rawR)
	}
}

// MeanAction returns the deterministic (mean) action mapped to the
// environment bounds — the policy used for evaluation after training. The
// returned slice aliases learner-owned scratch overwritten by the next
// SelectAction or MeanAction call.
func (p *PPO) MeanAction(obs []float64) []float64 {
	mean, _, _ := p.net.Forward(obs)
	return p.denormalizeInto(p.envBuf, mean)
}

// MeanActionBatch evaluates the deterministic (mean) policy readout for
// every observation row in one batched forward pass, writing the
// denormalized environment actions into the rows of dst (resized to
// obs.Rows×ActDim). It is the evaluation counterpart of
// SelectActionBatch and consumes NO RNG: the batched kernels reproduce
// the per-row Forward bit for bit (contract rule 1) and nothing touches
// the sampling stream, so interleaving frozen evaluation — e.g. a read
// replica's readout of a rotated checkpoint — with live training leaves
// the training stream bit-identical.
func (p *PPO) MeanActionBatch(obs, dst *mat.Matrix) {
	dst.Resize(obs.Rows, p.net.ActDim())
	means, _, _ := p.net.ForwardBatch(obs)
	for r := 0; r < obs.Rows; r++ {
		p.denormalizeInto(dst.Row(r), means.Row(r))
	}
}

// Values evaluates the critic V(s) for every observation row in one
// batched pass and stores the results in dst (length obs.Rows), returning
// dst — the batched counterpart of calling Value per rollout step.
func (p *PPO) Values(obs *mat.Matrix, dst []float64) []float64 {
	if len(dst) != obs.Rows {
		panic(fmt.Sprintf("rl: Values dst length %d, want %d", len(dst), obs.Rows))
	}
	_, _, vals := p.net.ForwardBatch(obs)
	copy(dst, vals)
	return dst
}

// Value returns the critic's estimate V(obs).
func (p *PPO) Value(obs []float64) float64 {
	_, _, v := p.net.Forward(obs)
	return v
}

// UpdateStats summarizes one Update call.
type UpdateStats struct {
	// PolicyLoss is the mean negative clipped surrogate over all
	// minibatch samples (lower is better for the optimizer).
	PolicyLoss float64
	// ValueLoss is the mean squared TD error against V^targ.
	ValueLoss float64
	// Entropy is the mean policy entropy.
	Entropy float64
	// ClipFraction is the fraction of samples whose ratio was clipped.
	ClipFraction float64
	// Samples is the number of gradient samples processed.
	Samples int
}

// Update runs the paper's optimization phase (Eq. 14): M epochs of
// minibatch stochastic gradient ascent on
// L^CLIP − c·L^VF (+ β·entropy), sampling minibatches from the rollout
// buffer. Advantages must already be computed via ComputeGAE.
func (p *PPO) Update(buf *Rollout) UpdateStats {
	steps := buf.Steps()
	n := len(steps)
	if n == 0 {
		return UpdateStats{}
	}
	if p.cfg.NormalizeAdv {
		buf.NormalizeAdvantages()
	}

	var stats UpdateStats
	if cap(p.idx) < n {
		p.idx = make([]int, n)
	}
	idx := p.idx[:n]
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < p.cfg.Epochs; epoch++ {
		p.rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		if p.cfg.FullEpochs {
			for start := 0; start < n; start += p.cfg.MiniBatch {
				end := start + p.cfg.MiniBatch
				if end > n {
					end = n
				}
				p.updateMiniBatch(steps, idx[start:end], &stats)
			}
			continue
		}
		// Algorithm 1, lines 11–13: one random minibatch of size |I|
		// sampled from BF per iteration m.
		size := p.cfg.MiniBatch
		if size > n {
			size = n
		}
		p.updateMiniBatch(steps, idx[:size], &stats)
	}
	if stats.Samples > 0 {
		inv := 1 / float64(stats.Samples)
		stats.PolicyLoss *= inv
		stats.ValueLoss *= inv
		stats.Entropy *= inv
		stats.ClipFraction *= inv
	}
	return stats
}

// updateMiniBatch accumulates gradients of the PPO loss over one minibatch
// and applies a single Adam step. The whole minibatch runs through the
// network as one batched forward/backward pass — the policy is evaluated
// for every selected rollout step at once — with gradient accumulation
// ordered so the result is bit-identical to the sample-at-a-time loop it
// replaced. With more than one effective shard the per-row work fans out
// across workers (see shard.go) and produces the same bits.
func (p *PPO) updateMiniBatch(steps []Transition, batch []int, stats *UpdateStats) {
	if shards := p.effectiveShards(len(batch)); shards > 1 {
		p.updateMiniBatchSharded(steps, batch, stats, shards)
		return
	}
	params := p.net.Params()
	nn.ZeroGrads(params)
	scale := 1 / float64(len(batch))

	b := len(batch)
	obsDim, actDim := p.net.ObsDim(), p.net.ActDim()
	p.obsB.Resize(b, obsDim)
	p.dMeanB.Resize(b, actDim)
	p.dLogStdB.Resize(b, actDim)
	p.dValueB = growSlice(p.dValueB, b)
	for bi, i := range batch {
		copy(p.obsB.Row(bi), steps[i].Obs)
	}

	means, logStd, values := p.net.ForwardBatch(&p.obsB)

	for bi, i := range batch {
		dMean, dLogStd := p.dMeanB.Row(bi), p.dLogStdB.Row(bi)
		dValue, policyLoss, valueLoss, clipped :=
			p.rowLoss(&steps[i], means.Row(bi), logStd, values[bi], dMean, dLogStd, scale)
		p.dValueB[bi] = dValue
		if clipped {
			stats.ClipFraction++
		}
		stats.PolicyLoss += policyLoss
		stats.ValueLoss += valueLoss
		stats.Entropy += gaussianEntropy(logStd)
		stats.Samples++
	}

	p.net.BackwardBatch(&p.dMeanB, &p.dLogStdB, p.dValueB)

	nn.ClipGradNorm(params, p.cfg.MaxGradNorm)
	p.opt.Step(params)
	p.clampLogStd()
}

// rowLoss computes one rollout sample's contribution to the minibatch
// loss: it fills the scaled, sign-flipped gradient rows dMean and dLogStd
// and returns the scaled value-head gradient plus the per-row statistics
// terms. The serial and sharded update paths share it verbatim, which is
// what makes their numbers bit-identical.
func (p *PPO) rowLoss(tr *Transition, mean, logStd []float64, value float64, dMean, dLogStd []float64, scale float64) (dValue, policyLoss, valueLoss float64, clipped bool) {
	newLogP := gaussianLogProb(tr.Action, mean, logStd)
	ratio := math.Exp(newLogP - tr.LogProb)
	adv := tr.Advantage

	// Clipped surrogate (Eqs. 15, 19). The unclipped branch carries
	// gradient only when it attains the min.
	surr1 := ratio * adv
	clip := mathx.Clamp(ratio, 1-p.cfg.ClipEps, 1+p.cfg.ClipEps)
	surr2 := clip * adv

	// Gradient of the maximized objective w.r.t. mean/logstd.
	var dObjDLogP float64
	if surr1 <= surr2 {
		dObjDLogP = ratio * adv // d(r·A)/dlogp = r·A... chain below
	}
	gaussianLogProbGrads(tr.Action, mean, logStd, dMean, dLogStd)
	// We minimize loss = -objective, so flip signs. The entropy bonus
	// adds +β·H; dH/dlogσ = 1 per dimension.
	for d := range dMean {
		dMean[d] *= -dObjDLogP * scale
		dLogStd[d] = -dObjDLogP*dLogStd[d]*scale - p.cfg.EntropyCoef*scale
	}

	// Value loss (Eq. 16): (V - V^targ)². d/dV = 2(V - V^targ).
	vErr := value - tr.Return
	dValue = p.cfg.ValueCoef * 2 * vErr * scale
	return dValue, -math.Min(surr1, surr2), vErr * vErr, ratio != clip
}

// growSlice sizes s to length n, reusing capacity when possible. The
// contents are unspecified; callers fully overwrite them.
func growSlice(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// clampLogStd keeps the exploration scale above the configured floor.
func (p *PPO) clampLogStd() {
	ls := p.net.logStd
	for i := range ls.Value {
		if ls.Value[i] < p.cfg.MinLogStd {
			ls.Value[i] = p.cfg.MinLogStd
		}
	}
}
