package rl

import (
	"fmt"
	"math"
	"math/rand"

	"vtmig/internal/nn"
)

// ActorCritic is the paper's shared-parameter policy/value network: a
// common trunk (two hidden layers of 64 tanh units by default) feeding a
// policy-mean head and a state-value head, plus a state-independent
// learnable log-standard-deviation for the Gaussian policy.
type ActorCritic struct {
	obsDim, actDim int

	trunk   []nn.Module // Linear+Tanh pairs
	meanHd  *nn.Linear
	valueHd *nn.Linear
	logStd  *nn.Param

	params []*nn.Param

	// scratch buffers reused across calls
	meanOut      []float64
	meanGradBuf  []float64
	valueGradBuf []float64
	trunkGradBuf []float64
}

// NewActorCritic builds the network. hidden lists the hidden-layer widths
// (the paper uses {64, 64}); act is the hidden activation; initLogStd
// seeds the exploration scale.
func NewActorCritic(obsDim, actDim int, hidden []int, act nn.Activation, initLogStd float64, rng *rand.Rand) *ActorCritic {
	if obsDim <= 0 || actDim <= 0 {
		panic(fmt.Sprintf("rl: invalid dims obs=%d act=%d", obsDim, actDim))
	}
	if len(hidden) == 0 {
		panic("rl: ActorCritic needs at least one hidden layer")
	}
	ac := &ActorCritic{obsDim: obsDim, actDim: actDim}
	prev := obsDim
	for i, h := range hidden {
		lin := nn.NewLinear(fmt.Sprintf("trunk.l%d", i), prev, h, rng)
		ac.trunk = append(ac.trunk, lin, nn.NewActivation(act, h))
		prev = h
	}
	ac.meanHd = nn.NewLinear("head.mean", prev, actDim, rng)
	ac.valueHd = nn.NewLinear("head.value", prev, 1, rng)
	ac.logStd = &nn.Param{
		Name:  "policy.logstd",
		Value: make([]float64, actDim),
		Grad:  make([]float64, actDim),
	}
	for i := range ac.logStd.Value {
		ac.logStd.Value[i] = initLogStd
	}
	for _, m := range ac.trunk {
		ac.params = append(ac.params, m.Params()...)
	}
	ac.params = append(ac.params, ac.meanHd.Params()...)
	ac.params = append(ac.params, ac.valueHd.Params()...)
	ac.params = append(ac.params, ac.logStd)

	ac.meanOut = make([]float64, actDim)
	ac.meanGradBuf = make([]float64, actDim)
	ac.valueGradBuf = make([]float64, prev)
	ac.trunkGradBuf = make([]float64, prev)
	return ac
}

// Forward computes the policy mean, the log-std vector, and the state
// value for an observation, caching activations for a following Backward.
// The mean is tanh-squashed into (-1, 1) — the normalized action space —
// which prevents the saturation runaway where an unbounded mean drifts
// past the action clamp and all gradients die. The returned slices alias
// internal buffers.
func (ac *ActorCritic) Forward(obs []float64) (mean, logStd []float64, value float64) {
	if len(obs) != ac.obsDim {
		panic(fmt.Sprintf("rl: observation length %d, want %d", len(obs), ac.obsDim))
	}
	h := obs
	for _, m := range ac.trunk {
		h = m.Forward(h)
	}
	raw := ac.meanHd.Forward(h)
	for i, v := range raw {
		ac.meanOut[i] = math.Tanh(v)
	}
	value = ac.valueHd.Forward(h)[0]
	return ac.meanOut, ac.logStd.Value, value
}

// Backward accumulates gradients given dLoss/dMean (with respect to the
// squashed mean), dLoss/dLogStd, and dLoss/dValue for the observation
// passed to the immediately preceding Forward call.
func (ac *ActorCritic) Backward(dMean, dLogStd []float64, dValue float64) {
	for i, g := range dMean {
		// d tanh(u)/du = 1 - tanh(u)².
		ac.meanGradBuf[i] = g * (1 - ac.meanOut[i]*ac.meanOut[i])
	}
	gm := ac.meanHd.Backward(ac.meanGradBuf)
	gv := ac.valueHd.Backward([]float64{dValue})
	for i := range ac.trunkGradBuf {
		ac.trunkGradBuf[i] = gm[i] + gv[i]
	}
	g := ac.trunkGradBuf
	for i := len(ac.trunk) - 1; i >= 0; i-- {
		g = ac.trunk[i].Backward(g)
	}
	for i, d := range dLogStd {
		ac.logStd.Grad[i] += d
	}
}

// Params returns every learnable parameter (trunk, heads, log-std).
func (ac *ActorCritic) Params() []*nn.Param { return ac.params }

// ObsDim returns the observation width.
func (ac *ActorCritic) ObsDim() int { return ac.obsDim }

// ActDim returns the action width.
func (ac *ActorCritic) ActDim() int { return ac.actDim }
