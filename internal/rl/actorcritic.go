package rl

import (
	"fmt"
	"math"
	"math/rand"

	"vtmig/internal/mat"
	"vtmig/internal/nn"
)

// ActorCritic is the paper's shared-parameter policy/value network: a
// common trunk (two hidden layers of 64 tanh units by default) feeding a
// policy-mean head and a state-value head, plus a state-independent
// learnable log-standard-deviation for the Gaussian policy.
type ActorCritic struct {
	obsDim, actDim int

	trunk   []nn.BatchModule // Linear+Tanh pairs
	meanHd  *nn.Linear
	valueHd *nn.Linear
	logStd  *nn.Param

	params []*nn.Param

	// scratch buffers reused across sample-at-a-time calls
	meanOut      []float64
	meanGradBuf  []float64
	valueGradBuf []float64
	trunkGradBuf []float64
	dValBuf      [1]float64

	// scratch reused across batched calls, grown to the largest batch seen
	meanOutB   mat.Matrix // batch×actDim, tanh-squashed means
	valuesB    []float64  // batch state values
	meanGradB  mat.Matrix // batch×actDim
	valueDyB   mat.Matrix // batch×1
	trunkGradB mat.Matrix // batch×trunkOut
}

// NewActorCritic builds the network. hidden lists the hidden-layer widths
// (the paper uses {64, 64}); act is the hidden activation; initLogStd
// seeds the exploration scale.
func NewActorCritic(obsDim, actDim int, hidden []int, act nn.Activation, initLogStd float64, rng *rand.Rand) *ActorCritic {
	if obsDim <= 0 || actDim <= 0 {
		panic(fmt.Sprintf("rl: invalid dims obs=%d act=%d", obsDim, actDim))
	}
	if len(hidden) == 0 {
		panic("rl: ActorCritic needs at least one hidden layer")
	}
	ac := &ActorCritic{obsDim: obsDim, actDim: actDim}
	prev := obsDim
	for i, h := range hidden {
		lin := nn.NewLinear(fmt.Sprintf("trunk.l%d", i), prev, h, rng)
		ac.trunk = append(ac.trunk, lin, nn.NewActivation(act, h))
		prev = h
	}
	ac.meanHd = nn.NewLinear("head.mean", prev, actDim, rng)
	ac.valueHd = nn.NewLinear("head.value", prev, 1, rng)
	ac.logStd = &nn.Param{
		Name:  "policy.logstd",
		Value: make([]float64, actDim),
		Grad:  make([]float64, actDim),
	}
	for i := range ac.logStd.Value {
		ac.logStd.Value[i] = initLogStd
	}
	for _, m := range ac.trunk {
		ac.params = append(ac.params, m.Params()...)
	}
	ac.params = append(ac.params, ac.meanHd.Params()...)
	ac.params = append(ac.params, ac.valueHd.Params()...)
	ac.params = append(ac.params, ac.logStd)

	ac.meanOut = make([]float64, actDim)
	ac.meanGradBuf = make([]float64, actDim)
	ac.valueGradBuf = make([]float64, prev)
	ac.trunkGradBuf = make([]float64, prev)
	return ac
}

// Forward computes the policy mean, the log-std vector, and the state
// value for an observation, caching activations for a following Backward.
// The mean is tanh-squashed into (-1, 1) — the normalized action space —
// which prevents the saturation runaway where an unbounded mean drifts
// past the action clamp and all gradients die. The returned slices alias
// internal buffers.
func (ac *ActorCritic) Forward(obs []float64) (mean, logStd []float64, value float64) {
	if len(obs) != ac.obsDim {
		panic(fmt.Sprintf("rl: observation length %d, want %d", len(obs), ac.obsDim))
	}
	h := obs
	for _, m := range ac.trunk {
		h = m.Forward(h)
	}
	raw := ac.meanHd.Forward(h)
	for i, v := range raw {
		ac.meanOut[i] = math.Tanh(v)
	}
	value = ac.valueHd.Forward(h)[0]
	return ac.meanOut, ac.logStd.Value, value
}

// Backward accumulates gradients given dLoss/dMean (with respect to the
// squashed mean), dLoss/dLogStd, and dLoss/dValue for the observation
// passed to the immediately preceding Forward call.
func (ac *ActorCritic) Backward(dMean, dLogStd []float64, dValue float64) {
	for i, g := range dMean {
		// d tanh(u)/du = 1 - tanh(u)².
		ac.meanGradBuf[i] = g * (1 - ac.meanOut[i]*ac.meanOut[i])
	}
	gm := ac.meanHd.Backward(ac.meanGradBuf)
	ac.dValBuf[0] = dValue
	gv := ac.valueHd.Backward(ac.dValBuf[:])
	for i := range ac.trunkGradBuf {
		ac.trunkGradBuf[i] = gm[i] + gv[i]
	}
	g := ac.trunkGradBuf
	for i := len(ac.trunk) - 1; i >= 0; i-- {
		g = ac.trunk[i].Backward(g)
	}
	for i, d := range dLogStd {
		ac.logStd.Grad[i] += d
	}
}

// ForwardBatch evaluates the policy and value heads for every observation
// row in one batched pass — the entry point for minibatch updates and for
// batched policy evaluation across rollout steps. Row b of the returned
// mean matrix and element b of the returned value slice are bit-identical
// to Forward(obs.Row(b)). The returned mean matrix and value slice alias
// internal buffers overwritten by the next batched call; logStd aliases
// the parameter.
func (ac *ActorCritic) ForwardBatch(obs *mat.Matrix) (mean *mat.Matrix, logStd []float64, values []float64) {
	if obs.Cols != ac.obsDim {
		panic(fmt.Sprintf("rl: batch observation width %d, want %d", obs.Cols, ac.obsDim))
	}
	h := obs
	for _, m := range ac.trunk {
		h = m.ForwardBatch(h)
	}
	raw := ac.meanHd.ForwardBatch(h)
	ac.meanOutB.Resize(raw.Rows, raw.Cols)
	for i, v := range raw.Data {
		ac.meanOutB.Data[i] = math.Tanh(v)
	}
	vals := ac.valueHd.ForwardBatch(h)
	ac.valuesB = growSlice(ac.valuesB, vals.Rows)
	copy(ac.valuesB, vals.Data)
	return &ac.meanOutB, ac.logStd.Value, ac.valuesB
}

// BackwardBatch accumulates gradients for a whole minibatch given
// per-row dLoss/dMean, dLoss/dLogStd, and dLoss/dValue from the
// immediately preceding ForwardBatch. Gradients accumulate row-ascending,
// bit-identical to calling Forward/Backward once per row in order.
func (ac *ActorCritic) BackwardBatch(dMean, dLogStd *mat.Matrix, dValue []float64) {
	batch := ac.meanOutB.Rows
	if dMean.Rows != batch || dLogStd.Rows != batch || len(dValue) != batch {
		panic(fmt.Sprintf("rl: batch gradient sizes %d/%d/%d, want %d",
			dMean.Rows, dLogStd.Rows, len(dValue), batch))
	}
	ac.meanGradB.Resize(batch, ac.actDim)
	for i, g := range dMean.Data {
		sq := ac.meanOutB.Data[i]
		ac.meanGradB.Data[i] = g * (1 - sq*sq)
	}
	gm := ac.meanHd.BackwardBatch(&ac.meanGradB)
	ac.valueDyB.Resize(batch, 1)
	copy(ac.valueDyB.Data, dValue)
	gv := ac.valueHd.BackwardBatch(&ac.valueDyB)
	ac.trunkGradB.Resize(batch, gm.Cols)
	mat.AddTo(&ac.trunkGradB, gm, gv)
	g := &ac.trunkGradB
	for i := len(ac.trunk) - 1; i >= 0; i-- {
		g = ac.trunk[i].BackwardBatch(g)
	}
	ac.accumulateLogStdGrads(dLogStd)
}

// accumulateLogStdGrads folds a batch of per-row dLoss/dLogStd rows into
// the log-std gradient, rows ascending with one running accumulator per
// dimension — the shared reduction of the serial and sharded update
// paths.
func (ac *ActorCritic) accumulateLogStdGrads(dLogStd *mat.Matrix) {
	for j := 0; j < ac.actDim; j++ {
		acc := ac.logStd.Grad[j]
		for b := 0; b < dLogStd.Rows; b++ {
			acc += dLogStd.At(b, j)
		}
		ac.logStd.Grad[j] = acc
	}
}

// Params returns every learnable parameter (trunk, heads, log-std).
func (ac *ActorCritic) Params() []*nn.Param { return ac.params }

// ObsDim returns the observation width.
func (ac *ActorCritic) ObsDim() int { return ac.obsDim }

// ActDim returns the action width.
func (ac *ActorCritic) ActDim() int { return ac.actDim }
