package rl

import (
	"fmt"

	"vtmig/internal/mathx"
)

// Transition is one environment step as stored in the rollout buffer.
type Transition struct {
	Obs     []float64
	Action  []float64 // raw (pre-clamp) sample, whose log-prob was taken
	LogProb float64
	Reward  float64
	Value   float64
	Done    bool

	// Advantage and Return are filled in by ComputeGAE.
	Advantage float64
	Return    float64
}

// Rollout is the replay buffer BF of Algorithm 1. It collects transitions
// within an episode and computes advantages before updates. Observation
// and action copies live in per-buffer arenas that are recycled on Reset,
// so the steady-state collect–update loop does not allocate.
type Rollout struct {
	steps []Transition
	// gaeFrom marks the first index not yet covered by a ComputeGAE call,
	// supporting the paper's mid-episode updates every |I| rounds.
	gaeFrom int

	// obsArena and actArena back the Obs/Action copies of the stored
	// transitions; Reset rewinds them without freeing.
	obsArena, actArena []float64
	// advScratch is reused by NormalizeAdvantages.
	advScratch []float64
}

// NewRollout returns an empty buffer with the given capacity hint.
func NewRollout(capacity int) *Rollout {
	return &Rollout{steps: make([]Transition, 0, capacity)}
}

// arenaAppend copies xs onto the arena and returns the stored copy. The
// full slice expression caps the result so later arena growth cannot
// alias it.
func arenaAppend(arena *[]float64, xs []float64) []float64 {
	n := len(*arena)
	*arena = append(*arena, xs...)
	return (*arena)[n:len(*arena):len(*arena)]
}

// Add appends a transition. Obs and Action are copied into buffer-owned
// storage.
func (r *Rollout) Add(obs, action []float64, logProb, reward, value float64, done bool) {
	r.steps = append(r.steps, Transition{
		Obs:     arenaAppend(&r.obsArena, obs),
		Action:  arenaAppend(&r.actArena, action),
		LogProb: logProb,
		Reward:  reward,
		Value:   value,
		Done:    done,
	})
}

// AppendFrom appends every transition of src in order, copying the
// observation and action storage into the receiver's arenas. src is left
// untouched; the vectorized collector uses this to merge per-environment
// staging buffers into the shared rollout in fixed env-index order.
func (r *Rollout) AppendFrom(src *Rollout) {
	for i := range src.steps {
		s := &src.steps[i]
		r.Add(s.Obs, s.Action, s.LogProb, s.Reward, s.Value, s.Done)
	}
}

// Len returns the number of stored transitions.
func (r *Rollout) Len() int { return len(r.steps) }

// Steps returns the stored transitions. The slice and the Obs/Action
// storage it references are owned by the buffer and invalidated by Reset.
func (r *Rollout) Steps() []Transition { return r.steps }

// Reset discards all transitions (start of a new episode in Algorithm 1)
// and rewinds the arenas for reuse.
func (r *Rollout) Reset() {
	r.steps = r.steps[:0]
	r.gaeFrom = 0
	r.obsArena = r.obsArena[:0]
	r.actArena = r.actArena[:0]
}

// ComputeGAE fills Advantage and Return for all transitions added since
// the previous call, using Generalized Advantage Estimation with discount
// gamma and smoothing lambda. bootstrapValue is V(s_T) for the state
// following the last stored transition (zero if that state is terminal).
//
//	δ_t = r_t + γ·V_{t+1}·(1-done_t) - V_t
//	A_t = δ_t + γλ·(1-done_t)·A_{t+1}
//	Return_t = A_t + V_t   (the V^targ of Eq. 16)
func (r *Rollout) ComputeGAE(gamma, lambda, bootstrapValue float64) {
	if gamma < 0 || gamma > 1 {
		panic(fmt.Sprintf("rl: gamma %g out of [0,1]", gamma))
	}
	if lambda < 0 || lambda > 1 {
		panic(fmt.Sprintf("rl: lambda %g out of [0,1]", lambda))
	}
	seg := r.steps[r.gaeFrom:]
	nextValue := bootstrapValue
	var nextAdv float64
	for t := len(seg) - 1; t >= 0; t-- {
		s := &seg[t]
		notDone := 1.0
		if s.Done {
			notDone = 0
		}
		delta := s.Reward + gamma*nextValue*notDone - s.Value
		s.Advantage = delta + gamma*lambda*notDone*nextAdv
		s.Return = s.Advantage + s.Value
		nextValue = s.Value
		nextAdv = s.Advantage
	}
	r.gaeFrom = len(r.steps)
}

// NormalizeAdvantages rescales all advantages to zero mean and unit
// standard deviation, the standard PPO variance-reduction trick. It is a
// no-op for fewer than two transitions or zero variance.
func (r *Rollout) NormalizeAdvantages() {
	if len(r.steps) < 2 {
		return
	}
	if cap(r.advScratch) < len(r.steps) {
		r.advScratch = make([]float64, len(r.steps))
	}
	advs := r.advScratch[:len(r.steps)]
	for i := range r.steps {
		advs[i] = r.steps[i].Advantage
	}
	mean := mathx.Mean(advs)
	std := mathx.StdDev(advs)
	if std == 0 {
		return
	}
	for i := range r.steps {
		r.steps[i].Advantage = (r.steps[i].Advantage - mean) / std
	}
}
